#!/usr/bin/env python3
"""Fail if any curated BENCH_*.json records a min_speedup below 1.0.

The curated BENCH files committed at the repo root are the performance
trajectory: bench_ingest_columnar's [throughput] line carries a
`min_speedup` field (the worst columnar-vs-per-report ratio over the
d=1024 oracle cells), and the batch path regressing below the serial
path anywhere is a regression this gate refuses. Any other bench that
grows a min_speedup field is picked up automatically.

Usage:
    scripts/check_bench_regression.py [FILE_OR_DIR ...]

With no arguments, checks every BENCH_*.json next to the repo root
(the directory above this script). A directory argument is scanned for
BENCH_*.json files. Exits non-zero on any min_speedup < 1.0, on a
bench recorded with a failing exit code, or when nothing was checked.
"""

import glob
import json
import os
import sys


def collect(args):
    if not args:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        return sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    files = []
    for arg in args:
        if os.path.isdir(arg):
            files.extend(sorted(glob.glob(os.path.join(arg, "BENCH_*.json"))))
        else:
            files.append(arg)
    return files


def main(argv):
    files = collect(argv[1:])
    if not files:
        print("check_bench_regression: no BENCH_*.json files found",
              file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for path in files:
        with open(path) as f:
            record = json.load(f)
        name = record.get("bench", os.path.basename(path))
        if record.get("exit_code", 0) != 0:
            print(f"FAIL {name}: recorded exit_code "
                  f"{record['exit_code']} ({path})")
            failures += 1
            continue
        min_speedup = record.get("throughput", {}).get("min_speedup")
        if min_speedup is None:
            continue
        checked += 1
        if float(min_speedup) < 1.0:
            print(f"FAIL {name}: min_speedup={min_speedup} < 1.0 ({path})")
            failures += 1
        else:
            print(f"ok   {name}: min_speedup={min_speedup}")
    if checked == 0 and failures == 0:
        print("check_bench_regression: no min_speedup fields found",
              file=sys.stderr)
        return 2
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
