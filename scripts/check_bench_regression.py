#!/usr/bin/env python3
"""Fail on regressions recorded in the curated BENCH_*.json files.

The curated BENCH files committed at the repo root are the performance
trajectory. Three gates:

  * min_speedup >= 1.0 — bench_ingest_columnar's [throughput] line
    carries the worst columnar-vs-per-report ratio over the d=1024
    oracle cells; the batch path regressing below the serial path
    anywhere is a regression this gate refuses. Any other bench that
    grows a min_speedup field is picked up automatically.
  * metrics_ratio >= 0.95 — bench_obs_stages records the serving
    throughput with the metrics registry attached over detached; the
    observability layer may cost at most 5%.
  * recorder_ratio >= 0.95 — the same path with the round-event flight
    recorder attached on top of metrics; the lock-free ring may cost at
    most a further 5%.
  * root_merge_ratio >= 0.95 — bench_distributed records the
    single-aggregator merge tree against the monolith; the sketch-wire
    hop plus root merge may cost at most 5% at recorded scale. Any
    other bench that grows a root_merge_ratio field is picked up
    automatically.
  * stage p50s present and nonzero — bench_obs_stages' [throughput]
    line must carry stage_<name>_p50_ns for all 9 pipeline stages, and
    every stage except transport_rtt and sketch_merge must be nonzero
    (transport_rtt is wall-minus-busy and may legitimately clamp to 0
    on loopback; sketch_merge only runs in merge-tree sessions, which
    bench_obs_stages' monolith session is not).

Usage:
    scripts/check_bench_regression.py [FILE_OR_DIR ...]

With no arguments, checks every BENCH_*.json next to the repo root
(the directory above this script). A directory argument is scanned for
BENCH_*.json files. Exits non-zero on any gate failure, on a bench
recorded with a failing exit code, or when nothing was checked.
"""

import glob
import json
import os
import sys

STAGES = (
    "announce",
    "transport_rtt",
    "frame_decode",
    "arena_decode",
    "shard_fold",
    "merge",
    "sketch_merge",
    "estimate",
    "post_process",
)

# transport_rtt is wall-minus-busy and may clamp to 0 when the loopback
# answers faster than the router's own accounting granularity;
# sketch_merge only accumulates in merge-tree (RootSession) runs and is
# legitimately 0 for a monolith session.
ZERO_OK_STAGES = {"transport_rtt", "sketch_merge"}

MIN_METRICS_RATIO = 0.95
MIN_RECORDER_RATIO = 0.95
MIN_ROOT_MERGE_RATIO = 0.95


def collect(args):
    if not args:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        return sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    files = []
    for arg in args:
        if os.path.isdir(arg):
            files.extend(sorted(glob.glob(os.path.join(arg, "BENCH_*.json"))))
        else:
            files.append(arg)
    return files


def check_obs_stages(name, path, throughput):
    """Returns (checked, failures) for the observability gates."""
    failures = 0
    ratio = throughput.get("metrics_ratio")
    if ratio is None:
        print(f"FAIL {name}: missing metrics_ratio ({path})")
        failures += 1
    elif float(ratio) < MIN_METRICS_RATIO:
        print(f"FAIL {name}: metrics_ratio={ratio} < "
              f"{MIN_METRICS_RATIO} ({path})")
        failures += 1
    else:
        print(f"ok   {name}: metrics_ratio={ratio}")
    recorder_ratio = throughput.get("recorder_ratio")
    if recorder_ratio is None:
        print(f"FAIL {name}: missing recorder_ratio ({path})")
        failures += 1
    elif float(recorder_ratio) < MIN_RECORDER_RATIO:
        print(f"FAIL {name}: recorder_ratio={recorder_ratio} < "
              f"{MIN_RECORDER_RATIO} ({path})")
        failures += 1
    else:
        print(f"ok   {name}: recorder_ratio={recorder_ratio}")
    for stage in STAGES:
        key = f"stage_{stage}_p50_ns"
        p50 = throughput.get(key)
        if p50 is None:
            print(f"FAIL {name}: missing {key} ({path})")
            failures += 1
        elif float(p50) <= 0 and stage not in ZERO_OK_STAGES:
            print(f"FAIL {name}: {key}={p50} is not > 0 ({path})")
            failures += 1
    if failures == 0:
        print(f"ok   {name}: all {len(STAGES)} stage p50s recorded")
    return failures


def main(argv):
    files = collect(argv[1:])
    if not files:
        print("check_bench_regression: no BENCH_*.json files found",
              file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for path in files:
        with open(path) as f:
            record = json.load(f)
        name = record.get("bench", os.path.basename(path))
        if record.get("exit_code", 0) != 0:
            print(f"FAIL {name}: recorded exit_code "
                  f"{record['exit_code']} ({path})")
            failures += 1
            continue
        throughput = record.get("throughput", {})
        min_speedup = throughput.get("min_speedup")
        if min_speedup is not None:
            checked += 1
            if float(min_speedup) < 1.0:
                print(f"FAIL {name}: min_speedup={min_speedup} < 1.0 "
                      f"({path})")
                failures += 1
            else:
                print(f"ok   {name}: min_speedup={min_speedup}")
        root_merge_ratio = throughput.get("root_merge_ratio")
        if root_merge_ratio is not None:
            checked += 1
            if float(root_merge_ratio) < MIN_ROOT_MERGE_RATIO:
                print(f"FAIL {name}: root_merge_ratio={root_merge_ratio} "
                      f"< {MIN_ROOT_MERGE_RATIO} ({path})")
                failures += 1
            else:
                print(f"ok   {name}: root_merge_ratio={root_merge_ratio}")
        # Observability gates (bench_obs_stages, or anything recording a
        # metrics_ratio + stage latency sweep).
        if "metrics_ratio" in throughput or name == "bench_obs_stages":
            checked += 1
            failures += check_obs_stages(name, path, throughput)
    if checked == 0 and failures == 0:
        print("check_bench_regression: no gated fields found",
              file=sys.stderr)
        return 2
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
