#!/usr/bin/env bash
# Runs every bench binary and records one BENCH_<name>.json per bench so the
# performance trajectory of the repo can accumulate across PRs.
#
# Usage:
#   scripts/run_benches.sh [--build-dir DIR] [--out-dir DIR]
#                          [--scale S] [--reps R] [--threads K]
#                          [--connections C] [--depth D]
#
# Defaults run a fast smoke sweep (scale 0.05, 1 rep, all hardware threads).
# Pass --scale 1 for the full paper-sized experiments. Each JSON records the
# invocation (including the thread count), wall-clock seconds, exit code,
# the bench's table output, the bench-reported [throughput] line (threads,
# mechanism runs, runs/sec; bench_transport reports frames_per_s,
# socket_frames_per_s and end-to-end reports_per_s into
# BENCH_transport.json; bench_pipeline reports serial_rps vs pipelined_rps
# — end-to-end releases/sec of the serial vs pipelined serving path — and
# their speedup into BENCH_pipeline.json), and (where the bench supports
# --csv) the parsed CSV rows. bench_micro uses Google Benchmark's native
# JSON reporter instead (its BM_WireChecksum / BM_VerifyChecksums /
# BM_FrameRoundTrip entries are the checksum-kernel trajectory).
#
# --connections caps the multi-connection socket sweep of bench_transport
# and bench_pipeline (their [throughput] lines carry a connections=K field
# plus per-K socket_frames_per_s_cK / pipelined_rps_cK keys, all parsed
# into the JSON); other benches do not take the flag. --depth caps
# bench_transport's end-to-end connections x pipeline-depth serving
# matrix (per-cell serve_reports_per_s_cK_dD keys; on a 1-core host the
# matrix measures overhead, not scaling). bench_distributed records the
# merge-tree sweep (reports_per_s_single, reports_per_s_kK and the gated
# root_merge_ratio) into BENCH_distributed.json with the common flags.
set -u

BUILD_DIR=build
OUT_DIR=bench_results
SCALE=0.05
REPS=1
THREADS=$(nproc 2>/dev/null || echo 1)
CONNECTIONS=4
DEPTH=2

while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir)   BUILD_DIR=$2;   shift 2 ;;
    --out-dir)     OUT_DIR=$2;     shift 2 ;;
    --scale)       SCALE=$2;       shift 2 ;;
    --reps)        REPS=$2;        shift 2 ;;
    --threads)     THREADS=$2;     shift 2 ;;
    --connections) CONNECTIONS=$2; shift 2 ;;
    --depth)       DEPTH=$2;       shift 2 ;;
    -h|--help)
      sed -n '2,31p' "$0" | sed 's/^# \{0,1\}//'
      exit 0 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

# --threads must be a positive integer: a malformed value silently falling
# back to serial would corrupt the recorded perf trajectory.
case "$THREADS" in
  ''|*[!0-9]*)
    echo "error: --threads expects a positive integer, got '$THREADS'" >&2
    exit 2 ;;
esac
if [ "$THREADS" -lt 1 ]; then
  echo "error: --threads expects a positive integer, got '$THREADS'" >&2
  exit 2
fi
case "$CONNECTIONS" in
  ''|*[!0-9]*)
    echo "error: --connections expects a positive integer, got '$CONNECTIONS'" >&2
    exit 2 ;;
esac
if [ "$CONNECTIONS" -lt 1 ]; then
  echo "error: --connections expects a positive integer, got '$CONNECTIONS'" >&2
  exit 2
fi
case "$DEPTH" in
  ''|*[!0-9]*)
    echo "error: --depth expects a positive integer, got '$DEPTH'" >&2
    exit 2 ;;
esac
if [ "$DEPTH" -lt 1 ]; then
  echo "error: --depth expects a positive integer, got '$DEPTH'" >&2
  exit 2
fi

if [ ! -d "$BUILD_DIR" ]; then
  echo "build directory '$BUILD_DIR' not found; run:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"

failures=0
for bench in "$BUILD_DIR"/bench_*; do
  # Regular executable files only (the out-dir may live inside the build dir).
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name=$(basename "$bench")
  short=${name#bench_}
  json="$OUT_DIR/BENCH_${short}.json"

  if [ "$name" = "bench_micro" ]; then
    # Google Benchmark has its own flag set and JSON reporter.
    echo "== $name -> $json"
    "$bench" --benchmark_format=json --benchmark_min_time=0.01 \
      > "$json" 2>"$OUT_DIR/${name}.stderr" || failures=$((failures + 1))
    continue
  fi

  csv="$OUT_DIR/${name}.csv"
  txt="$OUT_DIR/${name}.txt"
  rm -f "$csv"
  # Only the socket-capable benches take the multi-connection sweep cap;
  # bench_transport additionally takes the pipeline-depth matrix cap.
  conn_args=""
  case "$name" in
    bench_transport) conn_args="--connections=$CONNECTIONS --depth=$DEPTH" ;;
    bench_pipeline)  conn_args="--connections=$CONNECTIONS" ;;
  esac
  echo "== $name (scale=$SCALE reps=$REPS threads=$THREADS${conn_args:+ $conn_args}) -> $json"
  start=$(date +%s.%N)
  # shellcheck disable=SC2086  # conn_args is one optional flag
  "$bench" --scale="$SCALE" --reps="$REPS" --threads="$THREADS" \
    $conn_args --csv="$csv" > "$txt" 2>&1
  status=$?
  end=$(date +%s.%N)
  [ $status -ne 0 ] && failures=$((failures + 1))

  if ! BENCH_NAME=$name BENCH_SCALE=$SCALE BENCH_REPS=$REPS \
       BENCH_THREADS=$THREADS BENCH_STATUS=$status \
       BENCH_CONNECTIONS="${conn_args:+$CONNECTIONS}" \
       BENCH_START=$start BENCH_END=$end \
       BENCH_TXT=$txt BENCH_CSV=$csv python3 - "$json" <<'PYEOF'
import csv, json, os, sys

rows = []
csv_path = os.environ["BENCH_CSV"]
if os.path.exists(csv_path):
    with open(csv_path, newline="") as f:
        rows = list(csv.DictReader(f))

with open(os.environ["BENCH_TXT"]) as f:
    table = f.read()

# Benches print one machine-parseable "[throughput] k=v ..." line recording
# the engine thread count, mechanism runs and runs/sec of the sweep.
throughput = {}
for line in table.splitlines():
    if line.startswith("[throughput]"):
        for token in line.split()[1:]:
            key, _, value = token.partition("=")
            try:
                throughput[key] = int(value) if "." not in value \
                    else float(value)
            except ValueError:
                throughput[key] = value

record = {
    "bench": os.environ["BENCH_NAME"],
    "scale": float(os.environ["BENCH_SCALE"]),
    "reps": int(os.environ["BENCH_REPS"]),
    "threads": int(os.environ["BENCH_THREADS"]),
    "exit_code": int(os.environ["BENCH_STATUS"]),
}
# Socket-capable benches record their multi-connection sweep cap.
if os.environ.get("BENCH_CONNECTIONS"):
    record["connections"] = int(os.environ["BENCH_CONNECTIONS"])
record |= {
    "wall_seconds": round(
        float(os.environ["BENCH_END"]) - float(os.environ["BENCH_START"]), 3),
    "throughput": throughput,
    "table": table,
    "rows": rows,
}
with open(sys.argv[1], "w") as f:
    json.dump(record, f, indent=2)
    f.write("\n")
PYEOF
  then
    echo "failed to write $json" >&2
    failures=$((failures + 1))
  fi
done

echo
echo "results in $OUT_DIR/ ($(ls "$OUT_DIR"/BENCH_*.json 2>/dev/null | wc -l) JSON files, $failures failures)"
exit $((failures > 0))
