// The network transport subsystem (src/transport/): frame codec, streaming
// decoder, loopback socket + batch-file transports, and the out-of-order
// RoundBuffer in front of the sharded ingest.
//
// The acceptance pin: a MechanismSession driven over the loopback socket
// with shuffled + late (after the end-of-round marker) + duplicated
// delivery produces releases bit-identical to the in-process transport for
// all 5 oracles, and a batch-file replay of the recorded frames reproduces
// them again.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/mechanism.h"
#include "fo/wire.h"
#include "service/client_fleet.h"
#include "service/session.h"
#include "transport/batch_file.h"
#include "transport/frame.h"
#include "transport/round_buffer.h"
#include "transport/socket.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace ldpids {
namespace {

using service::ClientFleet;
using service::MechanismSession;
using service::RoundRequest;
using service::SessionOptions;
using transport::DeliverResult;
using transport::Frame;
using transport::FrameDecoder;
using transport::FrameDemux;
using transport::FrameKind;
using transport::FrameLogWriter;
using transport::FrameSender;
using transport::FrameStats;
using transport::MakeBufferedTransport;
using transport::MakeDataFrame;
using transport::MakeEndRoundFrame;
using transport::RoundBuffer;
using transport::RoundBufferOptions;
using transport::SendRoundFrames;
using transport::SocketClient;
using transport::SocketListener;

constexpr std::size_t kDomain = 10;
constexpr double kEpsilon = 1.0;
constexpr uint64_t kSessionId = 0xA11CE;

uint32_t TruthValue(uint64_t user, std::size_t t) {
  return static_cast<uint32_t>((user + 3 * t) % kDomain);
}

MechanismConfig SessionConfig(const std::string& fo) {
  MechanismConfig c;
  c.epsilon = kEpsilon;
  c.window = 4;
  c.fo = fo;
  c.seed = 91;
  return c;
}

// --- frame codec ----------------------------------------------------------

TEST(FrameCodecTest, DataFrameRoundTrips) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const Frame frame = MakeDataFrame(7, 42, payload);
  const auto bytes = transport::EncodeFrame(frame);
  EXPECT_EQ(bytes.size(), transport::EncodedFrameSize(payload.size()));

  Frame decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(transport::TryDecodeFrame(bytes.data(), bytes.size(), &decoded,
                                      &consumed),
            transport::FrameError::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(decoded.session_id, 7u);
  EXPECT_EQ(decoded.timestamp, 42u);
  EXPECT_EQ(decoded.kind, FrameKind::kData);
  EXPECT_EQ(decoded.payload, payload);
}

TEST(FrameCodecTest, EndRoundMarkerCarriesTheExpectedCount) {
  const Frame marker = MakeEndRoundFrame(9, 3, 12345);
  EXPECT_EQ(transport::EndRoundExpected(marker), 12345u);
  const auto bytes = transport::EncodeFrame(marker);
  Frame decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(transport::TryDecodeFrame(bytes.data(), bytes.size(), &decoded,
                                      &consumed),
            transport::FrameError::kOk);
  EXPECT_EQ(decoded.kind, FrameKind::kEndRound);
  EXPECT_EQ(transport::EndRoundExpected(decoded), 12345u);
  EXPECT_THROW(transport::EndRoundExpected(MakeDataFrame(1, 1, {})),
               std::invalid_argument);
}

TEST(FrameCodecTest, OversizePayloadIsRejectedAtBothEnds) {
  Frame frame = MakeDataFrame(1, 1, {});
  frame.payload = std::vector<uint8_t>(transport::kMaxFramePayload + 1);
  std::vector<uint8_t> out;
  EXPECT_THROW(transport::AppendEncodedFrame(frame, &out),
               std::invalid_argument);

  // A forged length field above the cap must be a typed reject, not an
  // attempted 4 GiB allocation.
  auto bytes = transport::EncodeFrame(MakeDataFrame(1, 1, {9, 9, 9}));
  bytes[22] = 0xFF;  // payload length bytes 20-23
  Frame decoded;
  std::size_t consumed = 0;
  EXPECT_EQ(transport::TryDecodeFrame(bytes.data(), bytes.size(), &decoded,
                                      &consumed),
            transport::FrameError::kOversize);
}

TEST(FrameDecoderTest, SplitAndMergedReadsYieldTheSameFrames) {
  std::vector<Frame> sent;
  std::vector<uint8_t> stream;
  Rng rng(11);
  for (uint64_t i = 0; i < 40; ++i) {
    std::vector<uint8_t> payload(rng.UniformInt(60));
    for (auto& b : payload) b = static_cast<uint8_t>(rng.NextU64());
    sent.push_back(MakeDataFrame(i % 3, i, payload));
    transport::AppendEncodedFrame(sent.back(), &stream);
  }

  // Byte-by-byte, all-at-once, and random chunk sizes must all reassemble
  // the identical frame sequence.
  for (int mode = 0; mode < 3; ++mode) {
    FrameDecoder decoder;
    std::size_t fed = 0;
    std::size_t count = 0;
    Frame frame;
    Rng chunk_rng(mode);
    while (fed < stream.size()) {
      std::size_t n = mode == 0   ? 1
                      : mode == 1 ? stream.size()
                                  : 1 + chunk_rng.UniformInt(97);
      n = std::min(n, stream.size() - fed);
      decoder.Append(stream.data() + fed, n);
      fed += n;
      while (decoder.Next(&frame)) {
        ASSERT_LT(count, sent.size());
        EXPECT_EQ(frame.session_id, sent[count].session_id);
        EXPECT_EQ(frame.timestamp, sent[count].timestamp);
        EXPECT_EQ(frame.payload, sent[count].payload);
        ++count;
      }
    }
    EXPECT_EQ(count, sent.size()) << "mode " << mode;
    EXPECT_EQ(decoder.stats().frames, sent.size());
    EXPECT_EQ(decoder.stats().errors(), 0u);
    EXPECT_EQ(decoder.pending_bytes(), 0u);
  }
}

TEST(FrameDecoderTest, ResynchronizesPastCorruptionAndCountsIt) {
  std::vector<uint8_t> stream;
  for (uint64_t i = 0; i < 10; ++i) {
    transport::AppendEncodedFrame(MakeDataFrame(1, i, {1, 2, 3}), &stream);
  }
  const std::size_t frame_size = transport::EncodedFrameSize(3);
  // Corrupt one byte inside frame 4's payload.
  stream[4 * frame_size + 25] ^= 0xFF;

  FrameDecoder decoder;
  decoder.Append(stream);
  Frame frame;
  std::vector<uint64_t> timestamps;
  while (decoder.Next(&frame)) timestamps.push_back(frame.timestamp);
  // Every frame except the corrupted one survives.
  EXPECT_EQ(timestamps,
            (std::vector<uint64_t>{0, 1, 2, 3, 5, 6, 7, 8, 9}));
  EXPECT_GT(decoder.stats().errors(), 0u);
  EXPECT_GT(decoder.stats().skipped_bytes, 0u);
}

// --- round buffer ---------------------------------------------------------

std::vector<std::vector<uint8_t>> FakePackets(std::size_t n, uint8_t tag) {
  std::vector<std::vector<uint8_t>> packets;
  for (std::size_t i = 0; i < n; ++i) {
    packets.push_back({tag, static_cast<uint8_t>(i)});
  }
  return packets;
}

TEST(RoundBufferTest, EarlyRoundsAreHeldUntilTheirTurn) {
  RoundBuffer buffer;
  // Round 1 arrives completely before round 0.
  for (auto& p : FakePackets(3, 1)) {
    EXPECT_EQ(buffer.Deliver(MakeDataFrame(0, 1, std::move(p))),
              DeliverResult::kBuffered);
  }
  EXPECT_EQ(buffer.Deliver(MakeEndRoundFrame(0, 1, 3)),
            DeliverResult::kEndMarker);
  for (auto& p : FakePackets(2, 0)) {
    buffer.Deliver(MakeDataFrame(0, 0, std::move(p)));
  }
  buffer.Deliver(MakeEndRoundFrame(0, 0, 2));

  EXPECT_EQ(buffer.TakeRound(0), FakePackets(2, 0));
  EXPECT_EQ(buffer.TakeRound(1), FakePackets(3, 1));
  EXPECT_EQ(buffer.next_round(), 2u);
  EXPECT_EQ(buffer.stats().rounds_drained, 2u);
  EXPECT_EQ(buffer.stats().packets_drained, 5u);
  EXPECT_EQ(buffer.stats().dropped(), 0u);
}

TEST(RoundBufferTest, StragglersAfterTheMarkerStillCount) {
  // The marker announces 3 distinct packets but arrives first
  // (marker-before-data); the round is complete only once all 3 land.
  RoundBuffer buffer;
  EXPECT_EQ(buffer.Deliver(MakeEndRoundFrame(0, 0, 3)),
            DeliverResult::kEndMarker);
  EXPECT_EQ(buffer.pending_rounds(), 1u);
  auto packets = FakePackets(3, 0);
  for (auto& p : packets) {
    buffer.Deliver(MakeDataFrame(0, 0, std::move(p)));
  }
  EXPECT_EQ(buffer.TakeRound(0), FakePackets(3, 0));
  EXPECT_EQ(buffer.stats().deadline_flushes, 0u);
  EXPECT_EQ(buffer.pending_rounds(), 0u);
}

TEST(RoundBufferTest, DuplicateCannotMaskALostPacket) {
  // Regression for the completion accounting: the sender announces 3
  // distinct packets; the network duplicates one and loses another, so 3
  // raw frames arrive but only 2 distinct packets. Counting raw arrivals
  // (the old logic) released the round as "complete" while silently
  // missing a real packet — completion must count identities.
  RoundBufferOptions options;
  options.round_deadline = std::chrono::milliseconds(50);
  RoundBuffer buffer(options);
  auto packets = FakePackets(3, 0);  // A, B, C
  buffer.Deliver(MakeEndRoundFrame(0, 0, 3));
  buffer.Deliver(MakeDataFrame(0, 0, std::vector<uint8_t>(packets[0])));
  buffer.Deliver(MakeDataFrame(0, 0, std::vector<uint8_t>(packets[0])));
  buffer.Deliver(MakeDataFrame(0, 0, std::vector<uint8_t>(packets[1])));
  // C never arrives. The round must NOT complete; the deadline flush hands
  // back the partial round and counts the masked loss.
  const auto drained = buffer.TakeRound(0);
  EXPECT_EQ(drained.size(), 3u);  // A, dup(A), B — all buffered frames
  EXPECT_EQ(buffer.stats().deadline_flushes, 1u);
  EXPECT_EQ(buffer.stats().masked_losses, 1u);
  EXPECT_EQ(buffer.stats().duplicate_frames, 1u);

  // Same delivery plus the "lost" packet: completes without any flush.
  buffer.Deliver(MakeEndRoundFrame(0, 1, 3));
  for (int copy = 0; copy < 2; ++copy) {
    buffer.Deliver(MakeDataFrame(0, 1, std::vector<uint8_t>(packets[0])));
  }
  buffer.Deliver(MakeDataFrame(0, 1, std::vector<uint8_t>(packets[1])));
  buffer.Deliver(MakeDataFrame(0, 1, std::vector<uint8_t>(packets[2])));
  EXPECT_EQ(buffer.TakeRound(1).size(), 4u);
  EXPECT_EQ(buffer.stats().deadline_flushes, 1u);  // unchanged
  EXPECT_EQ(buffer.stats().masked_losses, 1u);     // unchanged
}

TEST(RoundBufferTest, MarkerForClosedRoundIsATypedDropNotAFreshRound) {
  // Regression: an end-of-round marker for an already-drained round must
  // be counted as kClosedRound, never armed as a fresh PendingRound that
  // pins memory forever.
  RoundBuffer buffer;
  buffer.Deliver(MakeDataFrame(0, 0, {1}));
  buffer.Deliver(MakeEndRoundFrame(0, 0, 1));
  EXPECT_EQ(buffer.TakeRound(0).size(), 1u);
  EXPECT_EQ(buffer.pending_rounds(), 0u);

  EXPECT_EQ(buffer.Deliver(MakeEndRoundFrame(0, 0, 7)),
            DeliverResult::kClosedRound);
  EXPECT_EQ(buffer.stats().closed_round_drops, 1u);
  EXPECT_EQ(buffer.pending_rounds(), 0u);
}

TEST(RoundBufferTest, MarkerOutsideTheAdmissionWindowArmsNoState) {
  RoundBufferOptions options;
  options.max_lateness = 2;
  options.max_buffered_rounds = 8;
  RoundBuffer buffer(options);

  // A marker beyond max_buffered_rounds is a typed drop, not a pinned
  // pending round.
  EXPECT_EQ(buffer.Deliver(MakeEndRoundFrame(0, 8, 5)),
            DeliverResult::kTooEarly);
  EXPECT_EQ(buffer.stats().too_early_drops, 1u);
  EXPECT_EQ(buffer.pending_rounds(), 0u);

  // Establish round 5 as the newest traffic, then a marker too far behind
  // it is a kTooLate drop with no state armed for its round.
  EXPECT_EQ(buffer.Deliver(MakeDataFrame(0, 5, {1})),
            DeliverResult::kBuffered);
  EXPECT_EQ(buffer.Deliver(MakeEndRoundFrame(0, 2, 1)),
            DeliverResult::kTooLate);
  EXPECT_EQ(buffer.stats().too_late_drops, 1u);
  EXPECT_EQ(buffer.pending_rounds(), 1u);  // only round 5's data
}

TEST(RoundBufferTest, WatermarkPolicyDropsWithTypedReasons) {
  RoundBufferOptions options;
  options.max_lateness = 2;
  options.max_buffered_rounds = 8;
  RoundBuffer buffer(options);

  // Establish round 5 as the newest traffic.
  EXPECT_EQ(buffer.Deliver(MakeDataFrame(0, 5, {1})),
            DeliverResult::kBuffered);
  // 3 + 2 >= 5: still inside the lateness window.
  EXPECT_EQ(buffer.Deliver(MakeDataFrame(0, 3, {1})),
            DeliverResult::kBuffered);
  // 2 + 2 < 5: too far behind live traffic.
  EXPECT_EQ(buffer.Deliver(MakeDataFrame(0, 2, {1})),
            DeliverResult::kTooLate);
  // 8 >= 0 + 8: too far ahead of the next round to drain.
  EXPECT_EQ(buffer.Deliver(MakeDataFrame(0, 8, {1})),
            DeliverResult::kTooEarly);

  EXPECT_EQ(buffer.stats().too_late_drops, 1u);
  EXPECT_EQ(buffer.stats().too_early_drops, 1u);
  EXPECT_EQ(buffer.stats().buffered, 2u);
}

TEST(RoundBufferTest, DeadlineFlushReturnsPartialRoundAndClosesIt) {
  RoundBufferOptions options;
  options.round_deadline = std::chrono::milliseconds(50);
  RoundBuffer buffer(options);
  buffer.Deliver(MakeDataFrame(0, 0, {7}));
  // No marker ever arrives: the deadline flushes the partial round.
  const auto packets = buffer.TakeRound(0);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0], std::vector<uint8_t>{7});
  EXPECT_EQ(buffer.stats().deadline_flushes, 1u);
  // The round is now closed: re-delivery is a typed drop.
  EXPECT_EQ(buffer.Deliver(MakeDataFrame(0, 0, {8})),
            DeliverResult::kClosedRound);
  EXPECT_EQ(buffer.stats().closed_round_drops, 1u);
}

TEST(RoundBufferTest, RejectedFarFutureFrameDoesNotPoisonTheWatermark) {
  // Regression: a single forged frame with a huge round index must not
  // advance the lateness clock — only admitted frames move it, so
  // legitimate traffic keeps flowing after the hostile frame is dropped.
  RoundBufferOptions options;
  options.max_lateness = 2;
  options.max_buffered_rounds = 8;
  RoundBuffer buffer(options);
  EXPECT_EQ(buffer.Deliver(MakeDataFrame(0, 1u << 30, {9})),
            DeliverResult::kTooEarly);
  EXPECT_EQ(buffer.Deliver(MakeDataFrame(0, 0, {1})),
            DeliverResult::kBuffered);
  EXPECT_EQ(buffer.Deliver(MakeEndRoundFrame(0, 0, 1)),
            DeliverResult::kEndMarker);
  EXPECT_EQ(buffer.TakeRound(0).size(), 1u);
}

TEST(RoundBufferTest, RoundsMustBeTakenInOrder) {
  RoundBuffer buffer;
  EXPECT_THROW(buffer.TakeRound(3), std::logic_error);
}

TEST(FrameDemuxTest, RoutesBySessionAndCountsUnknownSessions) {
  RoundBuffer a;
  RoundBuffer b;
  FrameDemux demux;
  demux.Register(1, &a);
  demux.Register(2, &b);
  EXPECT_THROW(demux.Register(1, &a), std::invalid_argument);

  auto handler = demux.Handler();
  handler(MakeDataFrame(1, 0, {1}));
  handler(MakeDataFrame(2, 0, {2}));
  handler(MakeDataFrame(2, 0, {3}));
  handler(MakeDataFrame(99, 0, {4}));  // nobody listens on 99
  EXPECT_EQ(a.stats().buffered, 1u);
  EXPECT_EQ(b.stats().buffered, 2u);
  EXPECT_EQ(demux.unknown_session_drops(), 1u);
}

// --- batch-file transport -------------------------------------------------

TEST(BatchFileTest, WriteThenReplayReproducesEveryFrame) {
  const std::string path = ::testing::TempDir() + "frames_roundtrip.log";
  std::vector<Frame> sent;
  {
    FrameLogWriter writer(path);
    for (uint64_t i = 0; i < 25; ++i) {
      sent.push_back(MakeDataFrame(4, i / 5, {static_cast<uint8_t>(i)}));
      writer.Send(sent.back());
    }
    writer.Send(MakeEndRoundFrame(4, 4, 5));
    writer.Close();
    EXPECT_EQ(writer.frames_written(), 26u);
  }
  std::vector<Frame> replayed;
  const FrameStats stats = transport::ReplayFrameLog(
      path, [&](Frame&& f) { replayed.push_back(std::move(f)); },
      /*chunk_bytes=*/7);  // deliberately tiny reads
  ASSERT_EQ(replayed.size(), 26u);
  EXPECT_EQ(stats.frames, 26u);
  EXPECT_EQ(stats.errors(), 0u);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(replayed[i].timestamp, sent[i].timestamp);
    EXPECT_EQ(replayed[i].payload, sent[i].payload);
  }
  EXPECT_EQ(replayed.back().kind, FrameKind::kEndRound);
}

TEST(BatchFileTest, CorruptedLogDegradesToTypedStatsNotACrash) {
  const std::string path = ::testing::TempDir() + "frames_corrupt.log";
  {
    FrameLogWriter writer(path);
    for (uint64_t i = 0; i < 10; ++i) {
      writer.Send(MakeDataFrame(1, i, {1, 2, 3, 4}));
    }
  }
  // Flip a byte in the middle of the recording.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 100, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 100, SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  std::size_t count = 0;
  const FrameStats stats =
      transport::ReplayFrameLog(path, [&](Frame&&) { ++count; });
  EXPECT_EQ(count, 9u);  // the frame the flip landed in is lost
  EXPECT_GT(stats.errors(), 0u);
}

// --- socket transport -----------------------------------------------------

TEST(SocketTest, FramesSurviveTheLoopbackIntact) {
  std::mutex mu;
  std::vector<Frame> received;
  SocketListener listener(0, [&](Frame&& f) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(std::move(f));
  });
  {
    SocketClient client(listener.port(), /*flush_bytes=*/256);
    for (uint64_t i = 0; i < 200; ++i) {
      client.Send(MakeDataFrame(3, i, {static_cast<uint8_t>(i), 0x5A}));
    }
    client.Close();
    EXPECT_EQ(client.frames_sent(), 200u);
  }
  // The listener owns its own accept/read threads; wait for delivery
  // before tearing down (real consumers block on RoundBuffer completion
  // instead — Stop() is an immediate shutdown, not a drain).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (received.size() == 200u) break;
    }
    if (std::chrono::steady_clock::now() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  listener.Stop();
  ASSERT_EQ(received.size(), 200u);
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(received[i].timestamp, i);
    EXPECT_EQ(received[i].session_id, 3u);
  }
  EXPECT_EQ(listener.stats().frames, 200u);
  EXPECT_EQ(listener.stats().errors(), 0u);
  EXPECT_EQ(listener.connections(), 1u);
}

// --- end-to-end: socket + file replay vs in-process -----------------------

// Forwards every frame to several senders (socket + recorder tee).
class TeeSender : public FrameSender {
 public:
  explicit TeeSender(std::vector<FrameSender*> outs)
      : outs_(std::move(outs)) {}
  void Send(const Frame& frame) override {
    for (FrameSender* out : outs_) out->Send(frame);
  }
  void Flush() override {
    for (FrameSender* out : outs_) out->Flush();
  }

 private:
  std::vector<FrameSender*> outs_;
};

class TransportEquivalenceTest : public ::testing::TestWithParam<OracleId> {};

TEST_P(TransportEquivalenceTest,
       HostileSocketDeliveryAndFileReplayMatchInProcessBitForBit) {
  const std::string fo_name = OracleIdName(GetParam());
  constexpr uint64_t kUsers = 300;
  constexpr std::size_t kSteps = 6;
  const std::string log_path =
      ::testing::TempDir() + "transport_" + fo_name + ".log";

  SessionOptions options;
  options.num_shards = 2;
  options.num_threads = 1;

  // Reference: the PR 3 in-process transport.
  std::vector<Histogram> expected;
  {
    const ClientFleet fleet(kUsers, TruthValue, 4242);
    MechanismSession session(
        CreateMechanism("LBA", SessionConfig(fo_name), kUsers), kDomain,
        options, fleet.Transport(1));
    for (std::size_t t = 0; t < kSteps; ++t) {
      expected.push_back(session.Advance().release);
    }
  }

  // Socket path: same fleet, but the round's packets travel as frames over
  // a loopback TCP connection with a hostile delivery schedule — shuffled
  // order, ~1/5 duplicated, and a third of the round arriving after the
  // end-of-round marker ("late", still inside the round's window).
  uint64_t dupes_sent = 0;
  std::vector<Histogram> via_socket;
  {
    const ClientFleet fleet(kUsers, TruthValue, 4242);
    RoundBuffer buffer;
    FrameDemux demux;
    demux.Register(kSessionId, &buffer);
    SocketListener listener(0, demux.Handler());
    SocketClient socket_sender(listener.port());
    FrameLogWriter recorder(log_path);
    TeeSender network({&socket_sender, &recorder});

    auto announce = [&](const RoundRequest& request) {
      auto packets = fleet.ProduceRound(request, 1);
      Rng rng(HashCounter(999, request.round_index, 0));
      for (std::size_t i = packets.size(); i > 1; --i) {
        std::swap(packets[i - 1], packets[rng.UniformInt(i)]);
      }
      std::vector<std::vector<uint8_t>> dupes;
      for (std::size_t i = 0; i < packets.size(); i += 5) {
        dupes.push_back(packets[i]);
      }
      dupes_sent += dupes.size();
      const std::size_t early = packets.size() * 2 / 3;
      for (std::size_t i = 0; i < early; ++i) {
        network.Send(MakeDataFrame(kSessionId, request.round_index,
                                   packets[i]));
      }
      // The duplicates land mid-round (some of them *before* their
      // original — a retry overtaking the first copy), and the marker
      // overtakes the stragglers. It announces the distinct packet count:
      // completion must ride on identities, not raw arrivals, so the round
      // closes exactly when the last straggler lands.
      for (const auto& dupe : dupes) {
        network.Send(MakeDataFrame(kSessionId, request.round_index, dupe));
      }
      network.Send(MakeEndRoundFrame(kSessionId, request.round_index,
                                     packets.size()));
      for (std::size_t i = early; i < packets.size(); ++i) {
        network.Send(MakeDataFrame(kSessionId, request.round_index,
                                   packets[i]));
      }
      network.Flush();
    };

    MechanismSession session(
        CreateMechanism("LBA", SessionConfig(fo_name), kUsers), kDomain,
        options, MakeBufferedTransport(buffer, announce, 1));
    for (std::size_t t = 0; t < kSteps; ++t) {
      via_socket.push_back(session.Advance().release);
    }

    EXPECT_EQ(session.stats().duplicate, dupes_sent) << fo_name;
    EXPECT_EQ(session.stats().malformed, 0u);
    EXPECT_EQ(buffer.stats().duplicate_frames, dupes_sent) << fo_name;
    EXPECT_EQ(buffer.stats().masked_losses, 0u);
    EXPECT_EQ(buffer.stats().deadline_flushes, 0u);
    EXPECT_EQ(buffer.stats().dropped(), 0u);
    recorder.Close();
    socket_sender.Close();
    listener.Stop();
    EXPECT_EQ(listener.stats().errors(), 0u);
  }
  EXPECT_EQ(via_socket, expected) << fo_name;

  // Batch-file replay: the recorded traffic re-drives a fresh server. The
  // whole recording is delivered up front, so every round but the first is
  // "early" — the buffer holds them all (watermark knobs widened).
  std::vector<Histogram> via_replay;
  {
    RoundBufferOptions replay_options;
    replay_options.max_lateness = 1u << 20;
    replay_options.max_buffered_rounds = 1u << 20;
    RoundBuffer buffer(replay_options);
    const FrameStats stats = transport::ReplayFrameLog(
        log_path, [&](Frame&& f) { buffer.Deliver(std::move(f)); });
    EXPECT_EQ(stats.errors(), 0u);

    MechanismSession session(
        CreateMechanism("LBA", SessionConfig(fo_name), kUsers), kDomain,
        options, MakeBufferedTransport(buffer, nullptr, 1));
    for (std::size_t t = 0; t < kSteps; ++t) {
      via_replay.push_back(session.Advance().release);
    }
    EXPECT_EQ(session.stats().duplicate, dupes_sent) << fo_name;
  }
  EXPECT_EQ(via_replay, expected) << fo_name;
}

INSTANTIATE_TEST_SUITE_P(AllOracles, TransportEquivalenceTest,
                         ::testing::ValuesIn(AllOracleIds()),
                         [](const auto& info) {
                           return std::string(OracleIdName(info.param));
                         });

// --- multi-connection ingest ----------------------------------------------

class MultiConnectionTest : public ::testing::TestWithParam<OracleId> {};

// A round striped across four socket connections — with shuffling and
// cross-connection duplicates, so one packet's copies can race each other
// on different TCP streams — must release bit-identically to the
// in-process (and therefore single-connection) run. Each connection gets
// its own listener-side reader thread and FrameDecoder; the RoundBuffer is
// the only merge point.
TEST_P(MultiConnectionTest, FourStripedConnectionsMatchOneBitForBit) {
  const std::string fo_name = OracleIdName(GetParam());
  constexpr uint64_t kUsers = 300;
  constexpr std::size_t kSteps = 4;
  constexpr std::size_t kConnections = 4;

  SessionOptions options;
  options.num_shards = 2;
  options.num_threads = 1;

  std::vector<Histogram> expected;
  {
    const ClientFleet fleet(kUsers, TruthValue, 4242);
    MechanismSession session(
        CreateMechanism("LBA", SessionConfig(fo_name), kUsers), kDomain,
        options, fleet.Transport(1));
    for (std::size_t t = 0; t < kSteps; ++t) {
      expected.push_back(session.Advance().release);
    }
  }

  uint64_t dupes_sent = 0;
  std::vector<Histogram> via_sockets;
  {
    const ClientFleet fleet(kUsers, TruthValue, 4242);
    RoundBuffer buffer;
    FrameDemux demux;
    demux.Register(kSessionId, &buffer);
    SocketListener listener(0, demux.Handler());
    std::vector<std::unique_ptr<SocketClient>> clients;
    std::vector<FrameSender*> senders;
    for (std::size_t c = 0; c < kConnections; ++c) {
      // Tiny flush threshold: the four streams interleave at a granularity
      // of a few frames instead of whole rounds.
      clients.push_back(
          std::make_unique<SocketClient>(listener.port(), /*flush_bytes=*/256));
      senders.push_back(clients.back().get());
    }

    auto announce = [&](const RoundRequest& request) {
      auto packets = fleet.ProduceRound(request, 1);
      Rng rng(HashCounter(777, request.round_index, 0));
      for (std::size_t i = packets.size(); i > 1; --i) {
        std::swap(packets[i - 1], packets[rng.UniformInt(i)]);
      }
      // Duplicate every fifth packet at the end of the list: round-robin
      // striping then lands most copies on a different connection than
      // their original, so dedup must hold across streams.
      const std::size_t originals = packets.size();
      for (std::size_t i = 0; i < originals; i += 5) {
        packets.push_back(packets[i]);
        ++dupes_sent;
      }
      SendRoundFrames(senders, kSessionId, request.round_index, packets);
    };

    MechanismSession session(
        CreateMechanism("LBA", SessionConfig(fo_name), kUsers), kDomain,
        options, MakeBufferedTransport(buffer, announce, 1));
    for (std::size_t t = 0; t < kSteps; ++t) {
      via_sockets.push_back(session.Advance().release);
    }

    // Drain the connections before reading any counters: with the copies
    // striped onto different connections than their originals, a round can
    // complete (every distinct frame arrived) and be drained while a
    // redundant copy is still in flight on another stream.
    for (auto& client : clients) client->Close();
    listener.Stop();
    // A straggler arriving after its round drained lands as a closed-round
    // drop. Only duplicates can straggle — completion requires all distinct
    // frames — so the drop and duplicate counters must account for every
    // copy between them, and no other drop reason may fire.
    const transport::RoundBufferStats bstats = buffer.stats();
    const uint64_t stragglers = bstats.closed_round_drops;
    EXPECT_EQ(session.stats().duplicate + stragglers, dupes_sent) << fo_name;
    EXPECT_EQ(session.stats().malformed, 0u);
    EXPECT_EQ(bstats.duplicate_frames + stragglers, dupes_sent) << fo_name;
    EXPECT_EQ(bstats.deadline_flushes, 0u);
    EXPECT_EQ(bstats.masked_losses, 0u);
    EXPECT_EQ(bstats.dropped(), stragglers);
    EXPECT_EQ(listener.connections(), kConnections);
    EXPECT_EQ(listener.stats().errors(), 0u);
  }
  EXPECT_EQ(via_sockets, expected) << fo_name;
}

INSTANTIATE_TEST_SUITE_P(AllOracles, MultiConnectionTest,
                         ::testing::ValuesIn(AllOracleIds()),
                         [](const auto& info) {
                           return std::string(OracleIdName(info.param));
                         });

// --- pooled decoder buffers -----------------------------------------------

// Frames decoded zero-copy alias the decoder's pooled block: the payload
// bytes must stay valid while the ref lives (even across further decoder
// traffic), and blocks must recycle — not accumulate — once payloads drop.
TEST(FrameDecoderPoolTest, PayloadsPinBlocksAndBlocksRecycle) {
  FrameDecoder decoder;
  Frame frame;
  std::vector<uint8_t> stream;
  std::vector<PayloadRef> held;
  // Push ~40 MiB of frames through the decoder while holding only one
  // round's payloads at a time. With in-flight refs the decoder must hop
  // blocks instead of compacting under them; with refs dropped it must
  // reuse, keeping the footprint a handful of blocks.
  for (int round = 0; round < 80; ++round) {
    stream.clear();
    std::vector<std::vector<uint8_t>> sent;
    for (uint64_t i = 0; i < 900; ++i) {
      std::vector<uint8_t> payload(600, static_cast<uint8_t>(i ^ round));
      transport::AppendEncodedFrame(
          MakeDataFrame(1, static_cast<uint64_t>(round), payload), &stream);
      sent.push_back(std::move(payload));
    }
    held.clear();  // previous round's refs drop -> blocks become reusable
    std::size_t fed = 0;
    while (fed < stream.size()) {
      const std::size_t n = std::min<std::size_t>(64 * 1024,
                                                  stream.size() - fed);
      decoder.Append(stream.data() + fed, n);
      fed += n;
      while (decoder.Next(&frame)) held.push_back(std::move(frame.payload));
    }
    ASSERT_EQ(held.size(), sent.size());
    for (std::size_t i = 0; i < held.size(); ++i) {
      ASSERT_EQ(held[i], sent[i]) << "round " << round << " frame " << i;
    }
  }
  EXPECT_EQ(decoder.stats().errors(), 0u);
  // Steady state is a small ring of recycled blocks, not one per chunk.
  EXPECT_LE(decoder.pool().allocated_blocks(), 8u);
  EXPECT_GT(decoder.pool().reused_blocks(), 0u);
}

}  // namespace
}  // namespace ldpids
