#include "fo/wire.h"

#include <gtest/gtest.h>

namespace ldpids {
namespace {

TEST(WireTest, GrrRoundTripAcrossDomainSizes) {
  for (std::size_t domain : {2u, 200u, 300u, 70000u, 100000u}) {
    const uint32_t value = static_cast<uint32_t>(domain - 1);
    const auto packet = EncodeGrrReport(value, domain, 42);
    const WireEnvelope env = DecodeEnvelope(packet);
    EXPECT_EQ(env.oracle, OracleId::kGrr);
    EXPECT_EQ(env.timestamp, 42u);
    EXPECT_EQ(DecodeGrrPayload(env, domain).value, value) << domain;
    EXPECT_EQ(packet.size(), EncodedReportSize(OracleId::kGrr, domain));
  }
}

TEST(WireTest, NonceRoundTripsAndIsPeekable) {
  const uint64_t nonce = 0x0123456789ABCDEFULL;
  const auto packet = EncodeOlhReport(7, 1, 3, nonce);
  EXPECT_EQ(DecodeEnvelope(packet).nonce, nonce);
  DecodedReport report;
  ASSERT_EQ(TryDecodeReport(packet, 16, &report), WireError::kOk);
  EXPECT_EQ(report.nonce, nonce);
  // The peek needs only the header prefix and never validates the payload.
  uint64_t peeked = 0;
  ASSERT_TRUE(PeekWireNonce(packet.data(), packet.size(), &peeked));
  EXPECT_EQ(peeked, nonce);
  EXPECT_FALSE(PeekWireNonce(packet.data(), 8, &peeked));
  auto bad_magic = packet;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(PeekWireNonce(bad_magic.data(), bad_magic.size(), &peeked));
}

TEST(WireTest, GrrRejectsValueOutsideDomain) {
  EXPECT_THROW(EncodeGrrReport(5, 5, 0), std::invalid_argument);
}

TEST(WireTest, BitVectorRoundTrip) {
  std::vector<bool> bits(117);
  for (std::size_t k = 0; k < bits.size(); ++k) bits[k] = (k % 3 == 0);
  const auto packet = EncodeBitVectorReport(bits, OracleId::kOue, 7);
  const WireEnvelope env = DecodeEnvelope(packet);
  EXPECT_EQ(env.oracle, OracleId::kOue);
  const BitVectorWireReport report = DecodeBitVectorPayload(env, 117);
  EXPECT_EQ(report.bits, bits);
  EXPECT_EQ(packet.size(), EncodedReportSize(OracleId::kOue, 117));
}

TEST(WireTest, BitVectorOnlyForUnaryOracles) {
  EXPECT_THROW(EncodeBitVectorReport({true}, OracleId::kGrr, 0),
               std::invalid_argument);
}

TEST(WireTest, OlhRoundTrip) {
  const auto packet = EncodeOlhReport(0xDEADBEEFCAFEF00DULL, 3, 99);
  const WireEnvelope env = DecodeEnvelope(packet);
  const OlhWireReport report = DecodeOlhPayload(env);
  EXPECT_EQ(report.seed, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(report.bucket, 3u);
  EXPECT_EQ(env.timestamp, 99u);
}

TEST(WireTest, HrRoundTrip) {
  const auto packet = EncodeHrReport(127, 5);
  const HrWireReport report = DecodeHrPayload(DecodeEnvelope(packet));
  EXPECT_EQ(report.column, 127u);
}

TEST(WireTest, DetectsTruncation) {
  auto packet = EncodeGrrReport(1, 4, 0);
  packet.pop_back();
  EXPECT_THROW(DecodeEnvelope(packet), std::runtime_error);
  EXPECT_THROW(DecodeEnvelope({}), std::runtime_error);
}

TEST(WireTest, DetectsBitFlips) {
  // Flip every byte position in turn; the decoder must reject each
  // corruption (magic, version, oracle id, lengths, payload, checksum).
  const auto original = EncodeOlhReport(123, 1, 17);
  for (std::size_t i = 0; i < original.size(); ++i) {
    auto corrupted = original;
    corrupted[i] ^= 0x40;
    EXPECT_THROW(
        {
          const WireEnvelope env = DecodeEnvelope(corrupted);
          (void)DecodeOlhPayload(env);
        },
        std::runtime_error)
        << "byte " << i;
  }
}

TEST(WireTest, DetectsLengthMismatch) {
  auto packet = EncodeHrReport(1, 0);
  packet.insert(packet.end() - 4, 0xFF);  // extra payload byte, stale length
  EXPECT_THROW(DecodeEnvelope(packet), std::runtime_error);
}

TEST(WireTest, PayloadTypeMismatchThrows) {
  const WireEnvelope env = DecodeEnvelope(EncodeHrReport(1, 0));
  EXPECT_THROW(DecodeGrrPayload(env, 4), std::runtime_error);
  EXPECT_THROW(DecodeOlhPayload(env), std::runtime_error);
  EXPECT_THROW(DecodeBitVectorPayload(env, 8), std::runtime_error);
}

TEST(WireTest, GrrDecodedValueMustFitDomain) {
  // Encode in a 256-value domain, decode claiming a 4-value domain: same
  // payload width, but the value 200 overflows.
  const auto packet = EncodeGrrReport(200, 256, 0);
  const WireEnvelope env = DecodeEnvelope(packet);
  EXPECT_THROW(DecodeGrrPayload(env, 4), std::runtime_error);
}

TEST(WireTest, ChecksumIsStable) {
  const uint8_t data[] = {1, 2, 3, 4};
  EXPECT_EQ(WireChecksum(data, 4), WireChecksum(data, 4));
  EXPECT_NE(WireChecksum(data, 4), WireChecksum(data, 3));
}

TEST(WireTest, HrReportIsSmallerThanOueForLargeDomains) {
  EXPECT_LT(EncodedReportSize(OracleId::kHr, 4096),
            EncodedReportSize(OracleId::kOue, 4096));
}

}  // namespace
}  // namespace ldpids
