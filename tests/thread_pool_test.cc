#include "util/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ldpids {
namespace {

TEST(HardwareThreadsTest, IsAtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ParallelFor(8, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SingleThreadRunsInlineOnCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(16);
  ParallelFor(1, ids.size(), [&](std::size_t i) {
    ids[i] = std::this_thread::get_id();
  });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ParallelForTest, ZeroAndOneTaskEdgeCases) {
  int calls = 0;
  ParallelFor(4, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(4, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, MoreThreadsThanTasks) {
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  ParallelFor(16, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, PropagatesTheFirstException) {
  EXPECT_THROW(
      ParallelFor(4, 100,
                  [&](std::size_t i) {
                    if (i == 37) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must stay usable after an exceptional job.
  std::atomic<int> count{0};
  ParallelFor(4, 50, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  ParallelFor(4, 8, [&](std::size_t outer) {
    ParallelFor(4, 8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, RepeatedJobsOnTheSharedPool) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    ParallelFor(8, 100, [&](std::size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 5050u);
  }
}

TEST(ThreadPoolTest, DedicatedPoolRunsTasksAcrossThreads) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(200);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, MaxThreadsCapIsHonoredAndCorrect) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(hits.size(), 2, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPoolTest, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  pool.ParallelFor(ids.size(), [&](std::size_t i) {
    ids[i] = std::this_thread::get_id();
  });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

}  // namespace
}  // namespace ldpids
