// The distributed aggregation tier (src/service/aggregator.h +
// fo/sketch_wire.h): partial-sketch codec, AggregatorNode / RootSession
// composition, and the UserAssignment load-balance policy.
//
// The acceptance pin: a RootSession merging K in-process aggregators'
// partial sketches releases bit-identical to a single-process
// MechanismSession ingesting the whole fleet, for all 5 oracles and
// K in {1, 2, 4} — including a hostile schedule (shuffled child ingest,
// duplicated partials, one partial arriving after the root's end-of-round
// marker). Failure rounds surface as typed SketchMergeStats: a silent
// child is `missing`, a mismatched or corrupt partial is never folded,
// and a round with no surviving users burns the session (PR 5 contract).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/mechanism.h"
#include "fo/frequency_oracle.h"
#include "fo/sketch_wire.h"
#include "fo/wire.h"
#include "service/aggregator.h"
#include "service/client_fleet.h"
#include "service/ingest.h"
#include "service/session.h"
#include "transport/frame.h"
#include "transport/round_buffer.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace ldpids {
namespace {

using service::AggregatorNode;
using service::AggregatorOptions;
using service::AssignMode;
using service::ClientFleet;
using service::MechanismSession;
using service::RootSession;
using service::RoundRequest;
using service::SessionOptions;
using service::UserAssignment;
using transport::MakePartialSketchFrame;
using transport::RoundBuffer;
using transport::RoundBufferOptions;

constexpr std::size_t kDomain = 10;
constexpr double kEpsilon = 1.0;
constexpr uint64_t kSessionId = 0xA11CE;
constexpr uint64_t kFleetSeed = 4242;

uint32_t TruthValue(uint64_t user, std::size_t t) {
  return static_cast<uint32_t>((user + 3 * t) % kDomain);
}

MechanismConfig SessionConfig(const std::string& fo) {
  MechanismConfig c;
  c.epsilon = kEpsilon;
  c.window = 4;
  c.fo = fo;
  c.seed = 91;
  return c;
}

// --- partial-sketch codec -------------------------------------------------

TEST(SketchWireTest, RoundTripsEveryField) {
  const FrequencyOracle& fo = GetFrequencyOracle("OUE");
  auto sketch = fo.CreateSketch({kEpsilon, kDomain});
  Rng rng(7);
  for (uint32_t u = 0; u < 40; ++u) sketch->AddUser(u % kDomain, rng);

  const auto payload = EncodePartialSketch(*sketch, OracleId::kOue,
                                           /*node_id=*/0xBEEF,
                                           /*round_index=*/17,
                                           /*timestamp=*/5, kEpsilon);
  EXPECT_EQ(payload.size(), EncodedPartialSketchSize(kDomain));

  PartialSketchView view;
  ASSERT_EQ(TryViewPartialSketch(payload, &view), SketchWireError::kOk);
  EXPECT_EQ(view.oracle, OracleId::kOue);
  EXPECT_EQ(view.node_id, 0xBEEFu);
  EXPECT_EQ(view.round_index, 17u);
  EXPECT_EQ(view.timestamp, 5u);
  EXPECT_EQ(view.epsilon_bits, EpsilonBits(kEpsilon));
  EXPECT_EQ(view.domain, kDomain);
  EXPECT_EQ(view.num_users, 40u);
  ASSERT_EQ(view.count_len, kDomain);
  Counts counts;
  sketch->ExportResolvedCounts(&counts);
  for (std::size_t i = 0; i < kDomain; ++i) {
    EXPECT_EQ(view.CountAt(i), counts[i]) << i;
  }

  uint64_t node = 0;
  ASSERT_TRUE(PeekPartialSketchNodeId(payload.data(), payload.size(), &node));
  EXPECT_EQ(node, 0xBEEFu);
}

TEST(SketchWireTest, TypedDecodeErrors) {
  const FrequencyOracle& fo = GetFrequencyOracle("GRR");
  auto sketch = fo.CreateSketch({kEpsilon, kDomain});
  Rng rng(3);
  sketch->AddUser(1, rng);
  auto payload =
      EncodePartialSketch(*sketch, OracleId::kGrr, 1, 0, 0, kEpsilon);
  PartialSketchView view;

  EXPECT_EQ(TryViewPartialSketch(payload.data(), 10, &view),
            SketchWireError::kTooShort);

  auto bad = payload;
  bad[0] ^= 0xFF;
  EXPECT_EQ(TryViewPartialSketch(bad, &view), SketchWireError::kBadMagic);

  bad = payload;
  bad[2] = 9;
  EXPECT_EQ(TryViewPartialSketch(bad, &view), SketchWireError::kBadVersion);

  bad = payload;
  bad[3] = 200;
  EXPECT_EQ(TryViewPartialSketch(bad, &view),
            SketchWireError::kUnknownOracle);

  // Truncating whole counts desyncs the declared length from the bytes.
  bad = payload;
  bad.resize(bad.size() - 8);
  EXPECT_EQ(TryViewPartialSketch(bad, &view),
            SketchWireError::kLengthMismatch);

  bad = payload;
  bad[kSketchWireHeaderSize] ^= 0x01;  // flip a count bit
  EXPECT_EQ(TryViewPartialSketch(bad, &view),
            SketchWireError::kChecksumMismatch);
}

// Absorbing an exported partial must be bit-identical to MergeFrom — the
// wire hop cannot perturb the exact shard-reduce, for any oracle.
TEST(SketchWireTest, AbsorbMatchesMergeFromBitForBit) {
  for (OracleId oracle : AllOracleIds()) {
    const FrequencyOracle& fo = GetFrequencyOracle(OracleIdName(oracle));
    const FoParams params{kEpsilon, kDomain};

    auto base_a = fo.CreateSketch(params);
    auto base_b = fo.CreateSketch(params);
    auto peer_a = fo.CreateSketch(params);
    auto peer_b = fo.CreateSketch(params);
    for (uint32_t u = 0; u < 60; ++u) {
      const uint32_t v = u % kDomain;
      Rng r1(HashCounter(11, u, 0)), r2(HashCounter(11, u, 0));
      base_a->AddUser(v, r1);
      base_b->AddUser(v, r2);
      Rng r3(HashCounter(12, u, 0)), r4(HashCounter(12, u, 0));
      peer_a->AddUser((v + 1) % kDomain, r3);
      peer_b->AddUser((v + 1) % kDomain, r4);
    }

    base_a->MergeFrom(*peer_a);

    Counts exported;
    peer_b->ExportResolvedCounts(&exported);
    ASSERT_EQ(exported.size(), kDomain) << OracleIdName(oracle);
    ASSERT_TRUE(base_b->AbsorbCounts(exported.data(), exported.size(),
                                     peer_b->num_users()));

    EXPECT_EQ(base_a->num_users(), base_b->num_users());
    Histogram via_merge, via_absorb;
    base_a->EstimateInto(&via_merge);
    base_b->EstimateInto(&via_absorb);
    EXPECT_EQ(via_merge, via_absorb) << OracleIdName(oracle);

    // Length mismatch: typed non-throwing reject, sketch untouched.
    Counts before;
    base_b->ExportResolvedCounts(&before);
    const uint64_t users_before = base_b->num_users();
    EXPECT_FALSE(base_b->AbsorbCounts(exported.data(), exported.size() - 1,
                                      5));
    Counts after;
    base_b->ExportResolvedCounts(&after);
    EXPECT_EQ(after, before) << OracleIdName(oracle);
    EXPECT_EQ(base_b->num_users(), users_before);
  }
}

TEST(SketchWireTest, MergeRejectsWithTypedReasons) {
  const FrequencyOracle& fo = GetFrequencyOracle("SUE");
  const FoParams params{kEpsilon, kDomain};
  auto peer = fo.CreateSketch(params);
  Rng rng(5);
  for (uint32_t u = 0; u < 20; ++u) peer->AddUser(u % kDomain, rng);
  const auto good =
      EncodePartialSketch(*peer, OracleId::kSue, 3, 8, 2, kEpsilon);

  auto root = fo.CreateSketch(params);
  std::vector<uint64_t> seen;
  SketchMergeStats stats;

  auto corrupt = good;
  corrupt[corrupt.size() / 2] ^= 0x40;
  EXPECT_FALSE(MergePartialSketch(corrupt.data(), corrupt.size(),
                                  OracleId::kSue, 8, kEpsilon, kDomain,
                                  root.get(), &seen, &stats));
  EXPECT_EQ(stats.malformed, 1u);

  EXPECT_FALSE(MergePartialSketch(good.data(), good.size(), OracleId::kGrr,
                                  8, kEpsilon, kDomain, root.get(), &seen,
                                  &stats));
  EXPECT_EQ(stats.wrong_oracle, 1u);

  EXPECT_FALSE(MergePartialSketch(good.data(), good.size(), OracleId::kSue,
                                  9, kEpsilon, kDomain, root.get(), &seen,
                                  &stats));
  EXPECT_EQ(stats.wrong_round, 1u);

  // Epsilon digest compares bit patterns: even a 1-ulp difference rejects.
  EXPECT_FALSE(MergePartialSketch(
      good.data(), good.size(), OracleId::kSue, 8,
      std::nextafter(kEpsilon, 2.0), kDomain, root.get(), &seen, &stats));
  EXPECT_EQ(stats.params_mismatch, 1u);

  EXPECT_TRUE(MergePartialSketch(good.data(), good.size(), OracleId::kSue,
                                 8, kEpsilon, kDomain, root.get(), &seen,
                                 &stats));
  EXPECT_EQ(stats.merged, 1u);
  EXPECT_EQ(stats.users_merged, 20u);

  // Same node again within the round: duplicate, not double-counted.
  EXPECT_FALSE(MergePartialSketch(good.data(), good.size(), OracleId::kSue,
                                  8, kEpsilon, kDomain, root.get(), &seen,
                                  &stats));
  EXPECT_EQ(stats.duplicate_node, 1u);
  EXPECT_EQ(root->num_users(), 20u);
  EXPECT_EQ(stats.total(), 6u);
}

// --- UserAssignment -------------------------------------------------------

TEST(UserAssignmentTest, RangeModeIsBalancedContiguousAndExhaustive) {
  const UserAssignment assign(4, 103, AssignMode::kRange);
  const auto slices = assign.PartitionAll();
  ASSERT_EQ(slices.size(), 4u);
  uint64_t total = 0;
  uint32_t prev_last = 0;
  for (std::size_t k = 0; k < slices.size(); ++k) {
    ASSERT_FALSE(slices[k].empty());
    // Balanced within one user and contiguous across nodes.
    EXPECT_NEAR(static_cast<double>(slices[k].size()), 103.0 / 4, 1.0);
    if (k > 0) {
      EXPECT_EQ(slices[k].front(), prev_last + 1);
    }
    EXPECT_TRUE(std::is_sorted(slices[k].begin(), slices[k].end()));
    prev_last = slices[k].back();
    total += slices[k].size();
    for (uint32_t user : slices[k]) EXPECT_EQ(assign.NodeOf(user), k);
  }
  EXPECT_EQ(total, 103u);
  EXPECT_EQ(prev_last, 102u);
}

TEST(UserAssignmentTest, StableHashPartitionsThePopulation) {
  const UserAssignment assign(3, 500, AssignMode::kStableHash, 77);
  const auto slices = assign.PartitionAll();
  std::vector<uint32_t> all;
  for (std::size_t k = 0; k < slices.size(); ++k) {
    for (uint32_t user : slices[k]) {
      EXPECT_EQ(assign.NodeOf(user), k);
      all.push_back(user);
    }
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 500u);
  for (uint32_t u = 0; u < 500; ++u) EXPECT_EQ(all[u], u);
  // A hash mode must not depend on the population size: the same user maps
  // to the same node in a bigger population (stability under growth).
  const UserAssignment grown(3, 100000, AssignMode::kStableHash, 77);
  for (uint32_t u = 0; u < 500; ++u) {
    EXPECT_EQ(grown.NodeOf(u), assign.NodeOf(u));
  }
}

TEST(UserAssignmentTest, CohortPartitionPreservesOrder) {
  const UserAssignment assign(2, 100, AssignMode::kRange);
  const std::vector<uint32_t> cohort = {90, 3, 55, 10, 72, 49};
  const auto slices = assign.Partition(cohort);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0], (std::vector<uint32_t>{3, 10, 49}));
  EXPECT_EQ(slices[1], (std::vector<uint32_t>{90, 55, 72}));
}

TEST(UserAssignmentTest, RejectsDegenerateShapes) {
  EXPECT_THROW(UserAssignment(0, 10), std::invalid_argument);
  EXPECT_THROW(UserAssignment(2, 0, AssignMode::kRange),
               std::invalid_argument);
}

// --- merge tree vs single process -----------------------------------------

// Drives one in-process merge tree: K AggregatorNodes, each ingesting its
// UserAssignment slice of the fleet's packets (shuffled per child — shard
// order must not matter), delivering partial sketches into the root's
// RoundBuffer. `hostile` additionally duplicates every partial and holds
// the last child's partial back until after the root's end-of-round
// marker, delivering it from a detached-then-joined thread mid-TakeRound.
class InProcessTree {
 public:
  InProcessTree(const std::string& fo_name, std::size_t num_children,
                uint64_t num_users, RoundBuffer& buffer, bool hostile)
      : fleet_(num_users, TruthValue, kFleetSeed),
        assign_(num_children, num_users, AssignMode::kRange),
        buffer_(buffer),
        hostile_(hostile) {
    const OracleId oracle = OracleIdFromName(fo_name);
    const FrequencyOracle& fo = GetFrequencyOracle(fo_name);
    for (std::size_t k = 0; k < num_children; ++k) {
      AggregatorOptions opts;
      opts.num_shards = 1;
      opts.node_id = 1000 + k;
      children_.push_back(
          std::make_unique<AggregatorNode>(fo, oracle, kDomain, opts));
    }
  }

  ~InProcessTree() {
    for (auto& t : stragglers_) t.join();
  }

  service::RoundAnnounce Announce() {
    return [this](const RoundRequest& request) { RunChildren(request); };
  }

  uint64_t dupes_sent() const { return dupes_sent_; }

 private:
  void RunChildren(const RoundRequest& request) {
    const auto slices = request.cohort != nullptr
                            ? assign_.Partition(*request.cohort)
                            : assign_.PartitionAll();
    std::vector<std::vector<uint8_t>> partials;
    for (std::size_t k = 0; k < children_.size(); ++k) {
      RoundRequest child_request = request;
      child_request.cohort = &slices[k];
      auto ingest = [this, k](const RoundRequest& req,
                              service::ReportRouter& router) {
        auto packets = fleet_.ProduceRound(req, 1);
        // Shuffle within the child: fold order must not matter.
        Rng rng(HashCounter(999, req.round_index, k));
        for (std::size_t i = packets.size(); i > 1; --i) {
          std::swap(packets[i - 1], packets[rng.UniformInt(i)]);
        }
        router.IngestBatch(packets, 1);
      };
      partials.push_back(
          children_[k]->RunRoundToPartial(child_request, ingest));
    }
    if (!hostile_) {
      for (auto& partial : partials) {
        buffer_.Deliver(MakePartialSketchFrame(
            kSessionId, request.round_index, std::move(partial)));
      }
      return;
    }
    // Hostile schedule: reversed delivery, every early partial
    // duplicated, and the last child's partial withheld entirely until
    // after the root's end-of-round marker — it lands mid-TakeRound from
    // a background thread, exercising completion-by-identity. (The
    // straggler is deliberately not duplicated upfront: a dupe would
    // carry its identity and complete the round early.)
    std::vector<uint8_t> straggler = std::move(partials.back());
    for (std::size_t i = partials.size() - 1; i-- > 0;) {
      buffer_.Deliver(MakePartialSketchFrame(kSessionId, request.round_index,
                                             partials[i]));
      buffer_.Deliver(MakePartialSketchFrame(kSessionId, request.round_index,
                                             partials[i]));
      ++dupes_sent_;
    }
    stragglers_.emplace_back(
        [this, round = request.round_index,
         payload = std::move(straggler)]() mutable {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          buffer_.Deliver(
              MakePartialSketchFrame(kSessionId, round, std::move(payload)));
        });
  }

  ClientFleet fleet_;
  UserAssignment assign_;
  RoundBuffer& buffer_;
  const bool hostile_;
  std::vector<std::unique_ptr<AggregatorNode>> children_;
  std::vector<std::thread> stragglers_;
  uint64_t dupes_sent_ = 0;
};

std::vector<Histogram> SingleProcessReference(const std::string& fo_name,
                                              uint64_t num_users,
                                              std::size_t steps) {
  const ClientFleet fleet(num_users, TruthValue, kFleetSeed);
  SessionOptions options;
  options.num_shards = 2;
  MechanismSession session(
      CreateMechanism("LBA", SessionConfig(fo_name), num_users), kDomain,
      options, fleet.Transport(1));
  std::vector<Histogram> releases;
  for (std::size_t t = 0; t < steps; ++t) {
    releases.push_back(session.Advance().release);
  }
  return releases;
}

class MergeTreeEquivalenceTest : public ::testing::TestWithParam<OracleId> {};

TEST_P(MergeTreeEquivalenceTest, RootMergeMatchesSingleProcessBitForBit) {
  const std::string fo_name = OracleIdName(GetParam());
  constexpr uint64_t kUsers = 300;
  constexpr std::size_t kSteps = 4;
  const auto expected = SingleProcessReference(fo_name, kUsers, kSteps);

  for (const std::size_t num_children : {1u, 2u, 4u}) {
    for (const bool hostile : {false, true}) {
      RoundBuffer buffer;
      InProcessTree tree(fo_name, num_children, kUsers, buffer, hostile);
      RootSession root(CreateMechanism("LBA", SessionConfig(fo_name), kUsers),
                       kDomain, SessionOptions{}, num_children, kSessionId,
                       buffer, tree.Announce());
      std::vector<Histogram> releases;
      for (std::size_t t = 0; t < kSteps; ++t) {
        releases.push_back(root.Advance().release);
      }
      EXPECT_EQ(releases, expected)
          << fo_name << " K=" << num_children << " hostile=" << hostile;

      const SketchMergeStats& merges = root.merge_stats();
      EXPECT_EQ(merges.merged, num_children * root.session().rounds())
          << fo_name << " K=" << num_children;
      EXPECT_EQ(merges.users_merged, kUsers * root.session().rounds());
      EXPECT_EQ(merges.missing, 0u);
      EXPECT_EQ(merges.malformed, 0u);
      EXPECT_EQ(merges.params_mismatch, 0u);
      if (hostile) {
        EXPECT_EQ(merges.duplicate_node, tree.dupes_sent())
            << fo_name << " K=" << num_children;
        EXPECT_EQ(buffer.stats().duplicate_frames, tree.dupes_sent());
      } else {
        EXPECT_EQ(merges.duplicate_node, 0u);
      }
      EXPECT_EQ(buffer.stats().deadline_flushes, 0u);
      EXPECT_EQ(buffer.stats().masked_losses, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOracles, MergeTreeEquivalenceTest,
                         ::testing::ValuesIn(AllOracleIds()),
                         [](const auto& info) {
                           return std::string(OracleIdName(info.param));
                         });

// A child whose slice is empty still emits a valid zero partial; the tree
// stays exact and nothing is "missing".
TEST(MergeTreeTest, ZeroReportChildKeepsTheRoundExact) {
  constexpr uint64_t kUsers = 120;
  constexpr std::size_t kSteps = 3;
  const auto expected = SingleProcessReference("OUE", kUsers, kSteps);

  const ClientFleet fleet(kUsers, TruthValue, kFleetSeed);
  const FrequencyOracle& fo = GetFrequencyOracle("OUE");
  AggregatorOptions opt0, opt1;
  opt0.node_id = 1;
  opt1.node_id = 2;
  AggregatorNode full(fo, OracleId::kOue, kDomain, opt0);
  AggregatorNode empty(fo, OracleId::kOue, kDomain, opt1);
  std::vector<uint32_t> everyone(kUsers);
  std::iota(everyone.begin(), everyone.end(), 0);
  const std::vector<uint32_t> nobody;

  RoundBuffer buffer;
  auto announce = [&](const RoundRequest& request) {
    auto ingest = [&fleet](const RoundRequest& req,
                           service::ReportRouter& router) {
      router.IngestBatch(fleet.ProduceRound(req, 1), 1);
    };
    RoundRequest all_req = request;
    all_req.cohort = request.cohort != nullptr ? request.cohort : &everyone;
    buffer.Deliver(MakePartialSketchFrame(
        kSessionId, request.round_index,
        full.RunRoundToPartial(all_req, ingest)));
    RoundRequest none_req = request;
    none_req.cohort = &nobody;
    buffer.Deliver(MakePartialSketchFrame(
        kSessionId, request.round_index,
        empty.RunRoundToPartial(none_req, ingest)));
  };

  RootSession root(CreateMechanism("LBA", SessionConfig("OUE"), kUsers),
                   kDomain, SessionOptions{}, 2, kSessionId, buffer,
                   announce);
  std::vector<Histogram> releases;
  for (std::size_t t = 0; t < kSteps; ++t) {
    releases.push_back(root.Advance().release);
  }
  EXPECT_EQ(releases, expected);
  EXPECT_EQ(root.merge_stats().merged, 2 * root.session().rounds());
  EXPECT_EQ(root.merge_stats().missing, 0u);
  EXPECT_EQ(buffer.stats().deadline_flushes, 0u);
}

// Hostile partials — wrong oracle, wrong epsilon, garbage bytes — are
// typed rejections at the root, never folded: the release still matches
// the single process exactly.
TEST(MergeTreeTest, MismatchedPartialsAreRejectedNotFolded) {
  constexpr uint64_t kUsers = 150;
  constexpr std::size_t kSteps = 2;
  const auto expected = SingleProcessReference("GRR", kUsers, kSteps);

  const ClientFleet fleet(kUsers, TruthValue, kFleetSeed);
  const FrequencyOracle& grr = GetFrequencyOracle("GRR");
  const FrequencyOracle& oue = GetFrequencyOracle("OUE");
  AggregatorOptions opts;
  opts.node_id = 7;
  AggregatorNode child(grr, OracleId::kGrr, kDomain, opts);

  RoundBuffer buffer;
  uint64_t hostiles_sent = 0;
  auto announce = [&](const RoundRequest& request) {
    auto ingest = [&fleet](const RoundRequest& req,
                           service::ReportRouter& router) {
      router.IngestBatch(fleet.ProduceRound(req, 1), 1);
    };
    auto legit = child.RunRoundToPartial(request, ingest);
    buffer.Deliver(MakePartialSketchFrame(kSessionId, request.round_index,
                                          std::move(legit)));
    // Forged partials from distinct "nodes", delivered after the legit
    // one (they add identities, so the round completes — and every one
    // must bounce with a typed reason).
    const FoParams params{request.epsilon, kDomain};
    auto forged_sketch = oue.CreateSketch(params);
    Rng rng(HashCounter(1234, request.round_index, 0));
    for (uint32_t u = 0; u < 30; ++u) forged_sketch->AddUser(1, rng);
    // Wrong oracle for this tree.
    buffer.Deliver(MakePartialSketchFrame(
        kSessionId, request.round_index,
        EncodePartialSketch(*forged_sketch, OracleId::kOue, 800,
                            request.round_index,
                            static_cast<uint32_t>(request.timestamp),
                            request.epsilon)));
    // Right oracle, tampered epsilon digest.
    auto grr_sketch = grr.CreateSketch(params);
    for (uint32_t u = 0; u < 30; ++u) grr_sketch->AddUser(2, rng);
    buffer.Deliver(MakePartialSketchFrame(
        kSessionId, request.round_index,
        EncodePartialSketch(*grr_sketch, OracleId::kGrr, 801,
                            request.round_index,
                            static_cast<uint32_t>(request.timestamp),
                            request.epsilon * 2)));
    // Plain garbage.
    buffer.Deliver(MakePartialSketchFrame(
        kSessionId, request.round_index,
        std::vector<uint8_t>{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}));
    hostiles_sent += 3;
  };

  RootSession root(CreateMechanism("LBA", SessionConfig("GRR"), kUsers),
                   kDomain, SessionOptions{}, 1, kSessionId, buffer,
                   announce);
  std::vector<Histogram> releases;
  for (std::size_t t = 0; t < kSteps; ++t) {
    releases.push_back(root.Advance().release);
  }
  EXPECT_EQ(releases, expected);
  const SketchMergeStats& merges = root.merge_stats();
  EXPECT_EQ(merges.merged, root.session().rounds());
  EXPECT_EQ(merges.wrong_oracle + merges.params_mismatch + merges.malformed,
            hostiles_sent);
  EXPECT_EQ(merges.wrong_oracle, hostiles_sent / 3);
  EXPECT_EQ(merges.params_mismatch, hostiles_sent / 3);
  EXPECT_EQ(merges.malformed, hostiles_sent / 3);
  EXPECT_EQ(merges.users_merged, kUsers * root.session().rounds());
}

// --- failure rounds -------------------------------------------------------

// One child dead mid-stream: its partial never arrives, the round flushes
// at the buffer deadline, and the root surfaces the loss as a typed
// `missing` count while the survivors' users keep the session alive.
TEST(MergeTreeTest, DeadChildSurfacesAsMissingStat) {
  constexpr uint64_t kUsers = 100;
  const ClientFleet fleet(kUsers, TruthValue, kFleetSeed);
  const FrequencyOracle& fo = GetFrequencyOracle("GRR");
  const UserAssignment assign(2, kUsers, AssignMode::kRange);
  const auto slices = assign.PartitionAll();
  AggregatorOptions opts;
  opts.node_id = 50;
  AggregatorNode survivor(fo, OracleId::kGrr, kDomain, opts);

  RoundBufferOptions buffer_options;
  buffer_options.round_deadline = std::chrono::milliseconds(50);
  RoundBuffer buffer(buffer_options);
  auto announce = [&](const RoundRequest& request) {
    RoundRequest child_request = request;
    child_request.cohort = &slices[0];
    auto ingest = [&fleet](const RoundRequest& req,
                           service::ReportRouter& router) {
      router.IngestBatch(fleet.ProduceRound(req, 1), 1);
    };
    buffer.Deliver(MakePartialSketchFrame(
        kSessionId, request.round_index,
        survivor.RunRoundToPartial(child_request, ingest)));
    // Child 1 died: nothing arrives for it, ever.
  };

  RootSession root(CreateMechanism("LBA", SessionConfig("GRR"), kUsers),
                   kDomain, SessionOptions{}, 2, kSessionId, buffer,
                   announce);
  (void)root.Advance();
  EXPECT_FALSE(root.failed());
  const SketchMergeStats& merges = root.merge_stats();
  EXPECT_EQ(merges.missing, root.session().rounds());
  EXPECT_EQ(merges.merged, root.session().rounds());
  EXPECT_EQ(merges.users_merged,
            slices[0].size() * root.session().rounds());
  EXPECT_EQ(buffer.stats().deadline_flushes, root.session().rounds());
}

// Every child dead: the round drains empty, zero users survive, and the
// session burns permanently — the PR 5 failed-round contract, verbatim.
TEST(MergeTreeTest, AllChildrenDeadBurnsTheSession) {
  constexpr uint64_t kUsers = 80;
  RoundBufferOptions buffer_options;
  buffer_options.round_deadline = std::chrono::milliseconds(30);
  RoundBuffer buffer(buffer_options);

  RootSession root(CreateMechanism("LBA", SessionConfig("GRR"), kUsers),
                   kDomain, SessionOptions{}, 3, kSessionId, buffer,
                   /*announce=*/nullptr);
  EXPECT_THROW(root.Advance(), std::runtime_error);
  EXPECT_TRUE(root.failed());
  EXPECT_THROW(root.Advance(), std::logic_error);
  EXPECT_EQ(root.merge_stats().missing, 3u * root.session().rounds());
  EXPECT_GE(buffer.stats().deadline_flushes, 1u);
}

}  // namespace
}  // namespace ldpids
