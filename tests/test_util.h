// Shared helpers for statistical assertions in the LDP-IDS test suite.
//
// Many properties under test are distributional (unbiasedness, variance
// formulas, LDP perturbation probabilities). The helpers below compute
// sample moments and standard errors so tests can assert with principled
// tolerances (a few standard errors) instead of magic numbers.
#ifndef LDPIDS_TESTS_TEST_UTIL_H_
#define LDPIDS_TESTS_TEST_UTIL_H_

#include <cmath>
#include <numeric>
#include <vector>

namespace ldpids::testing {

inline double SampleMean(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

inline double SampleVariance(const std::vector<double>& xs) {
  const double mean = SampleMean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(xs.size() - 1);
}

// Standard error of the sample mean.
inline double StdError(const std::vector<double>& xs) {
  return std::sqrt(SampleVariance(xs) / static_cast<double>(xs.size()));
}

// True if |observed_mean - expected| <= sigmas * standard error (plus a tiny
// absolute slack for exact-zero cases).
inline bool MeanWithin(const std::vector<double>& xs, double expected,
                       double sigmas = 5.0, double abs_slack = 1e-12) {
  return std::fabs(SampleMean(xs) - expected) <=
         sigmas * StdError(xs) + abs_slack;
}

}  // namespace ldpids::testing

#endif  // LDPIDS_TESTS_TEST_UTIL_H_
