#include "util/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ldpids {
namespace {

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(0.12345, 4), "0.1235");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"method", "mre"});
  t.AddRow({"LBU", "0.5"});
  t.AddRow({"LPA-long-name", "0.05"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("LPA-long-name"), std::string::npos);
  EXPECT_NE(out.find("method"), std::string::npos);
  // Every row starts at column 0 and columns align: the "mre" header and the
  // values must start at the same offset.
  const auto header_line = out.substr(0, out.find('\n'));
  EXPECT_GE(header_line.find("mre"), std::string("LPA-long-name").size());
}

TEST(TablePrinterTest, NumericRowFormatting) {
  TablePrinter t({"m", "a", "b"});
  t.AddRow("LPD", {0.12349, 1.5}, 4);
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("0.1235"), std::string::npos);
  EXPECT_NE(os.str().find("1.5000"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only-one"});
  std::ostringstream os;
  t.Print(os);  // must not crash
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace ldpids
