#include "core/population_manager.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ldpids {
namespace {

TEST(PopulationManagerTest, ConstructionValidation) {
  EXPECT_THROW(PopulationManager(0, 5), std::invalid_argument);
  EXPECT_THROW(PopulationManager(10, 0), std::invalid_argument);
}

TEST(PopulationManagerTest, SamplingShrinksPool) {
  Rng rng(1);
  PopulationManager pm(100, 4);
  EXPECT_EQ(pm.available(), 100u);
  const auto a = pm.Sample(30, rng);
  EXPECT_EQ(a.size(), 30u);
  EXPECT_EQ(pm.available(), 70u);
  const auto b = pm.Sample(10, rng);
  EXPECT_EQ(pm.available(), 60u);
  // Same timestamp: a and b must be disjoint.
  std::set<uint32_t> seen(a.begin(), a.end());
  for (uint32_t u : b) EXPECT_FALSE(seen.count(u)) << "user " << u;
}

TEST(PopulationManagerTest, RecyclingAfterWTimestamps) {
  Rng rng(2);
  PopulationManager pm(10, 3);
  pm.Sample(4, rng);  // t = 0
  pm.EndTimestamp();
  pm.Sample(3, rng);  // t = 1
  pm.EndTimestamp();
  EXPECT_EQ(pm.available(), 3u);
  pm.Sample(3, rng);  // t = 2
  pm.EndTimestamp();  // t=0's users recycle: 0 + 4
  EXPECT_EQ(pm.available(), 4u);
  pm.EndTimestamp();  // t=1's users recycle
  EXPECT_EQ(pm.available(), 7u);
  pm.EndTimestamp();  // t=2's users recycle
  EXPECT_EQ(pm.available(), 10u);
}

TEST(PopulationManagerTest, RecycledUsersCanReportAgain) {
  Rng rng(3);
  PopulationManager pm(5, 2);
  const auto first = pm.Sample(5, rng);  // everyone reports at t = 0
  EXPECT_EQ(first.size(), 5u);
  pm.EndTimestamp();
  EXPECT_EQ(pm.available(), 0u);
  pm.EndTimestamp();  // t = 1 passes with nobody
  EXPECT_EQ(pm.available(), 5u);
  // t = 2: distance from t = 0 is exactly w = 2 — allowed.
  const auto second = pm.Sample(5, rng);
  EXPECT_EQ(second.size(), 5u);
}

TEST(PopulationManagerTest, SamplingMoreThanAvailableClamps) {
  Rng rng(4);
  PopulationManager pm(6, 3);
  const auto got = pm.Sample(100, rng);
  EXPECT_EQ(got.size(), 6u);
  EXPECT_EQ(pm.available(), 0u);
  EXPECT_TRUE(pm.Sample(1, rng).empty());
}

TEST(PopulationManagerTest, LongRunNeverViolatesParticipationInvariant) {
  // Simulate an LPD-like schedule for many windows; the internal ledger
  // throws if any user is sampled twice within w timestamps.
  Rng rng(5);
  constexpr uint64_t kUsers = 500;
  constexpr std::size_t kW = 7;
  PopulationManager pm(kUsers, kW);
  for (std::size_t t = 0; t < 300; ++t) {
    ASSERT_NO_THROW(pm.Sample(kUsers / (2 * kW), rng)) << "t=" << t;
    if (t % 3 == 0) {
      ASSERT_NO_THROW(pm.Sample(pm.available() / 2, rng)) << "t=" << t;
    }
    pm.EndTimestamp();
  }
}

TEST(PopulationManagerTest, WindowOfOneRecyclesImmediately) {
  Rng rng(6);
  PopulationManager pm(4, 1);
  for (int t = 0; t < 10; ++t) {
    const auto got = pm.Sample(4, rng);
    ASSERT_EQ(got.size(), 4u);
    pm.EndTimestamp();
  }
}

TEST(PopulationManagerTest, TimestampCounterAdvances) {
  Rng rng(7);
  PopulationManager pm(10, 2);
  EXPECT_EQ(pm.current_timestamp(), 0u);
  pm.EndTimestamp();
  pm.EndTimestamp();
  EXPECT_EQ(pm.current_timestamp(), 2u);
}

}  // namespace
}  // namespace ldpids
