#include "analysis/monitor.h"

#include <gtest/gtest.h>

namespace ldpids {
namespace {

TEST(ThresholdMonitorTest, EmitsEnterAndExit) {
  ThresholdMonitor m(0.5);
  EXPECT_TRUE(m.Update(0.3).empty());
  const auto enter = m.Update(0.6);
  ASSERT_EQ(enter.size(), 1u);
  EXPECT_TRUE(enter[0].entered);
  EXPECT_EQ(enter[0].timestamp, 1u);
  EXPECT_DOUBLE_EQ(enter[0].value, 0.6);
  EXPECT_TRUE(m.active());
  EXPECT_TRUE(m.Update(0.9).empty());  // still above: no duplicate event
  const auto exit = m.Update(0.2);
  ASSERT_EQ(exit.size(), 1u);
  EXPECT_FALSE(exit[0].entered);
  EXPECT_FALSE(m.active());
}

TEST(ThresholdMonitorTest, HysteresisSuppressesFlapping) {
  ThresholdMonitor m(0.5, 0.1);
  m.Update(0.6);  // enter
  // Dips just below the threshold but above threshold - hysteresis: no exit.
  EXPECT_TRUE(m.Update(0.45).empty());
  EXPECT_TRUE(m.active());
  // Falls below 0.4: exit.
  EXPECT_EQ(m.Update(0.39).size(), 1u);
  EXPECT_FALSE(m.active());
}

TEST(ThresholdMonitorTest, ExactThresholdIsNotAbove) {
  ThresholdMonitor m(0.5);
  EXPECT_TRUE(m.Update(0.5).empty());
  EXPECT_FALSE(m.active());
}

TEST(ThresholdMonitorTest, NegativeHysteresisRejected) {
  EXPECT_THROW(ThresholdMonitor(0.5, -0.1), std::invalid_argument);
}

TEST(ThresholdMonitorTest, CountsTimestamps) {
  ThresholdMonitor m(1.0);
  for (int i = 0; i < 5; ++i) m.Update(0.0);
  EXPECT_EQ(m.timestamps(), 5u);
}

TEST(CusumDetectorTest, ParameterValidation) {
  EXPECT_THROW(CusumDetector(0.0, -0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(CusumDetector(0.0, 0.1, 0.0), std::invalid_argument);
}

TEST(CusumDetectorTest, NoDetectionOnStationaryNoise) {
  CusumDetector d(0.5, 0.05, 0.5);
  // Small oscillation around the reference stays within drift allowance.
  const double values[] = {0.52, 0.48, 0.51, 0.49, 0.5, 0.53, 0.47};
  for (double v : values) EXPECT_FALSE(d.Update(v));
}

TEST(CusumDetectorTest, DetectsUpwardLevelShift) {
  CusumDetector d(0.2, 0.02, 0.3);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(d.Update(0.2));
  bool detected = false;
  for (int i = 0; i < 10 && !detected; ++i) detected = d.Update(0.45);
  EXPECT_TRUE(detected);
  // After detection the reference re-centres: the new level is normal.
  EXPECT_DOUBLE_EQ(d.reference(), 0.45);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(d.Update(0.45));
}

TEST(CusumDetectorTest, DetectsDownwardLevelShift) {
  CusumDetector d(0.6, 0.02, 0.3);
  bool detected = false;
  for (int i = 0; i < 10 && !detected; ++i) detected = d.Update(0.3);
  EXPECT_TRUE(detected);
}

TEST(CusumDetectorTest, StatisticsResetAfterDetection) {
  CusumDetector d(0.0, 0.0, 0.5);
  d.Update(0.3);
  EXPECT_GT(d.positive_statistic(), 0.0);
  EXPECT_TRUE(d.Update(0.4));  // 0.3 + 0.4 > 0.5 -> detect
  EXPECT_DOUBLE_EQ(d.positive_statistic(), 0.0);
  EXPECT_DOUBLE_EQ(d.negative_statistic(), 0.0);
}

}  // namespace
}  // namespace ldpids
