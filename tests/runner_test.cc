#include "analysis/runner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace ldpids {
namespace {

MechanismConfig Config() {
  MechanismConfig c;
  c.epsilon = 1.0;
  c.window = 8;
  c.fo = "GRR";
  c.seed = 55;
  return c;
}

TEST(RunnerTest, RunMechanismIsReproduciblePerRepetition) {
  const auto data = MakeSinDataset(5000, 30, 0.05, 1);
  const auto a = RunMechanism(*data, "LPA", Config(), 0);
  const auto b = RunMechanism(*data, "LPA", Config(), 0);
  EXPECT_EQ(a.releases, b.releases);
  const auto c = RunMechanism(*data, "LPA", Config(), 1);
  EXPECT_NE(c.releases, a.releases);
}

TEST(RunnerTest, EvaluateAveragesOverRepetitions) {
  const auto data = MakeSinDataset(5000, 30, 0.05, 2);
  const RunMetrics m = EvaluateMechanism(*data, "LBU", Config(), 4);
  EXPECT_EQ(m.repetitions, 4u);
  EXPECT_GT(m.mre, 0.0);
  EXPECT_GT(m.mae, 0.0);
  EXPECT_GT(m.mse, 0.0);
  EXPECT_DOUBLE_EQ(m.cfpu, 1.0);                // LBU reports everyone, once
  EXPECT_DOUBLE_EQ(m.publication_rate, 1.0);    // always publishes
}

TEST(RunnerTest, MoreRepetitionsTightenTheEstimate) {
  const auto data = MakeSinDataset(5000, 30, 0.05, 3);
  const RunMetrics a = EvaluateMechanism(*data, "LPU", Config(), 2);
  const RunMetrics b = EvaluateMechanism(*data, "LPU", Config(), 2);
  // Same seeds -> identical metrics (deterministic pipeline).
  EXPECT_DOUBLE_EQ(a.mre, b.mre);
}

TEST(RunnerTest, AucIsPopulatedWhenEventsExist) {
  // The Sin stream swings widely, so above-threshold events exist.
  const auto data = MakeSinDataset(20000, 120, 0.05, 4);
  const RunMetrics m = EvaluateMechanism(*data, "LPU", Config(), 2);
  EXPECT_FALSE(std::isnan(m.auc));
  EXPECT_GT(m.auc, 0.5);  // must beat coin-flipping
  EXPECT_LE(m.auc, 1.0);
}

TEST(RunnerTest, SweepProducesOneResultPerConfig) {
  const auto data = MakeSinDataset(5000, 24, 0.05, 5);
  std::vector<MechanismConfig> configs;
  for (double eps : {0.5, 1.0, 2.0}) {
    MechanismConfig c = Config();
    c.epsilon = eps;
    configs.push_back(c);
  }
  const auto results = SweepMechanism(*data, "LPU", configs, 2);
  ASSERT_EQ(results.size(), 3u);
  // Error decreases with epsilon.
  EXPECT_GT(results[0].mse, results[2].mse);
}

}  // namespace
}  // namespace ldpids
