#include "analysis/runner.h"

#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace ldpids {
namespace {

// Bitwise equality of two metric sets (NaN-aware for the AUC field, which
// is NaN when the truth has no events). Used by the thread-count
// determinism suite: the parallel engine promises bit-identical results,
// so no tolerance is allowed.
void ExpectBitIdentical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.repetitions, b.repetitions);
  EXPECT_EQ(a.mre, b.mre);
  EXPECT_EQ(a.mae, b.mae);
  EXPECT_EQ(a.mse, b.mse);
  EXPECT_EQ(a.cfpu, b.cfpu);
  EXPECT_EQ(a.publication_rate, b.publication_rate);
  if (std::isnan(a.auc) || std::isnan(b.auc)) {
    EXPECT_TRUE(std::isnan(a.auc) && std::isnan(b.auc));
  } else {
    EXPECT_EQ(a.auc, b.auc);
  }
}

MechanismConfig Config() {
  MechanismConfig c;
  c.epsilon = 1.0;
  c.window = 8;
  c.fo = "GRR";
  c.seed = 55;
  return c;
}

TEST(RunnerTest, RunMechanismIsReproduciblePerRepetition) {
  const auto data = MakeSinDataset(5000, 30, 0.05, 1);
  const auto a = RunMechanism(*data, "LPA", Config(), 0);
  const auto b = RunMechanism(*data, "LPA", Config(), 0);
  EXPECT_EQ(a.releases, b.releases);
  const auto c = RunMechanism(*data, "LPA", Config(), 1);
  EXPECT_NE(c.releases, a.releases);
}

TEST(RunnerTest, EvaluateAveragesOverRepetitions) {
  const auto data = MakeSinDataset(5000, 30, 0.05, 2);
  const RunMetrics m = EvaluateMechanism(*data, "LBU", Config(), 4);
  EXPECT_EQ(m.repetitions, 4u);
  EXPECT_GT(m.mre, 0.0);
  EXPECT_GT(m.mae, 0.0);
  EXPECT_GT(m.mse, 0.0);
  EXPECT_DOUBLE_EQ(m.cfpu, 1.0);                // LBU reports everyone, once
  EXPECT_DOUBLE_EQ(m.publication_rate, 1.0);    // always publishes
}

TEST(RunnerTest, MoreRepetitionsTightenTheEstimate) {
  const auto data = MakeSinDataset(5000, 30, 0.05, 3);
  const RunMetrics a = EvaluateMechanism(*data, "LPU", Config(), 2);
  const RunMetrics b = EvaluateMechanism(*data, "LPU", Config(), 2);
  // Same seeds -> identical metrics (deterministic pipeline).
  EXPECT_DOUBLE_EQ(a.mre, b.mre);
}

TEST(RunnerTest, AucIsPopulatedWhenEventsExist) {
  // The Sin stream swings widely, so above-threshold events exist.
  const auto data = MakeSinDataset(20000, 120, 0.05, 4);
  const RunMetrics m = EvaluateMechanism(*data, "LPU", Config(), 2);
  EXPECT_FALSE(std::isnan(m.auc));
  EXPECT_GT(m.auc, 0.5);  // must beat coin-flipping
  EXPECT_LE(m.auc, 1.0);
}

TEST(RunnerParallelTest, EvaluateIsBitIdenticalAtOneTwoAndEightThreads) {
  // The determinism contract of the parallel engine: per-repetition seeds
  // derive statelessly and the reduction runs in fixed repetition order, so
  // every thread count must produce the same bits.
  const auto data = MakeSinDataset(20000, 60, 0.05, 4);
  for (const char* method : {"LBU", "LPA"}) {
    const RunMetrics serial = EvaluateMechanism(*data, method, Config(), 6, 1);
    const RunMetrics two = EvaluateMechanism(*data, method, Config(), 6, 2);
    const RunMetrics eight = EvaluateMechanism(*data, method, Config(), 6, 8);
    ExpectBitIdentical(serial, two);
    ExpectBitIdentical(serial, eight);
  }
}

TEST(RunnerParallelTest, PerUserSimulationIsAlsoThreadCountInvariant) {
  // The per-user path reads dataset values directly from the parallel
  // repetitions; it must be just as deterministic.
  const auto data = MakeSinDataset(2000, 24, 0.05, 9);
  MechanismConfig config = Config();
  config.per_user_simulation = true;
  const RunMetrics serial = EvaluateMechanism(*data, "LPU", config, 4, 1);
  const RunMetrics parallel = EvaluateMechanism(*data, "LPU", config, 4, 8);
  ExpectBitIdentical(serial, parallel);
}

TEST(RunnerParallelTest, SweepIsBitIdenticalAcrossThreadCounts) {
  const auto data = MakeSinDataset(5000, 24, 0.05, 5);
  std::vector<MechanismConfig> configs;
  for (double eps : {0.5, 1.0}) {
    MechanismConfig c = Config();
    c.epsilon = eps;
    configs.push_back(c);
  }
  const auto serial = SweepMechanism(*data, "LPD", configs, 3, 1);
  const auto parallel = SweepMechanism(*data, "LPD", configs, 3, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ExpectBitIdentical(serial[i], parallel[i]);
  }
}

TEST(RunnerParallelTest, RunCounterAdvancesByRepetitions) {
  const auto data = MakeSinDataset(2000, 16, 0.05, 6);
  const uint64_t before = TotalMechanismRunCount();
  EvaluateMechanism(*data, "LBU", Config(), 5, 2);
  EXPECT_EQ(TotalMechanismRunCount() - before, 5u);
}

TEST(RunnerTest, SweepProducesOneResultPerConfig) {
  const auto data = MakeSinDataset(5000, 24, 0.05, 5);
  std::vector<MechanismConfig> configs;
  for (double eps : {0.5, 1.0, 2.0}) {
    MechanismConfig c = Config();
    c.epsilon = eps;
    configs.push_back(c);
  }
  const auto results = SweepMechanism(*data, "LPU", configs, 2);
  ASSERT_EQ(results.size(), 3u);
  // Error decreases with epsilon.
  EXPECT_GT(results[0].mse, results[2].mse);
}

}  // namespace
}  // namespace ldpids
