#include "util/csv_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace ldpids {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CsvEscapeTest, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvEscape("abc"), "abc");
  EXPECT_EQ(CsvEscape("1.5"), "1.5");
}

TEST(CsvEscapeTest, QuotesFieldsWithSpecials) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = TempPath("csv_writer_basic.csv");
  {
    CsvWriter w(path, {"method", "eps", "mre"});
    w.WriteRow({"LBU", "1.0", "0.5"});
    w.WriteRow("LPA", {2.0, 0.05});
  }
  const std::string content = ReadAll(path);
  EXPECT_EQ(content, "method,eps,mre\nLBU,1.0,0.5\nLPA,2,0.05\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, RejectsWidthMismatch) {
  const std::string path = TempPath("csv_writer_width.csv");
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.WriteRow({"only-one"}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvWriterTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace ldpids
