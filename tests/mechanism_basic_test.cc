// Per-mechanism behavioural tests: publication schedules, message counts,
// input validation, and the exact CFPU formulas of Sections 5.4.3 / 6.3.3
// for the non-adaptive methods.
#include <memory>

#include <gtest/gtest.h>

#include "analysis/runner.h"
#include "core/factory.h"
#include "datagen/synthetic.h"

namespace ldpids {
namespace {

std::shared_ptr<BinarySyntheticDataset> SmallStream(std::size_t length = 60,
                                                    uint64_t users = 4000) {
  return MakeLnsDataset(users, length, /*sqrt_q=*/0.0025, /*seed=*/5);
}

MechanismConfig SmallConfig() {
  MechanismConfig c;
  c.epsilon = 1.0;
  c.window = 10;
  c.fo = "GRR";
  c.seed = 99;
  return c;
}

TEST(FactoryTest, CreatesAllMechanisms) {
  const auto data = SmallStream();
  for (const std::string& name : AllMechanismNames()) {
    auto m = CreateMechanism(name, SmallConfig(), data->num_users());
    EXPECT_EQ(m->name(), name);
  }
  EXPECT_THROW(CreateMechanism("XYZ", SmallConfig(), 100),
               std::invalid_argument);
}

TEST(FactoryTest, FamiliesPartitionAllNames) {
  auto all = AllMechanismNames();
  auto budget = BudgetDivisionMechanismNames();
  auto population = PopulationDivisionMechanismNames();
  EXPECT_EQ(budget.size() + population.size(), all.size());
}

TEST(MechanismTest, ConfigValidation) {
  MechanismConfig c = SmallConfig();
  c.epsilon = 0.0;
  EXPECT_THROW(CreateMechanism("LBU", c, 100), std::invalid_argument);
  c = SmallConfig();
  c.window = 0;
  EXPECT_THROW(CreateMechanism("LBU", c, 100), std::invalid_argument);
  EXPECT_THROW(CreateMechanism("LBU", SmallConfig(), 0),
               std::invalid_argument);
  // Population methods need enough users per window.
  EXPECT_THROW(CreateMechanism("LPU", SmallConfig(), 5),
               std::invalid_argument);
  EXPECT_THROW(CreateMechanism("LPD", SmallConfig(), 15),
               std::invalid_argument);
  EXPECT_THROW(CreateMechanism("LPA", SmallConfig(), 15),
               std::invalid_argument);
}

TEST(MechanismTest, StepsMustBeSequential) {
  const auto data = SmallStream();
  auto m = CreateMechanism("LBU", SmallConfig(), data->num_users());
  m->Step(*data, 0);
  EXPECT_THROW(m->Step(*data, 2), std::logic_error);
  EXPECT_THROW(m->Step(*data, 0), std::logic_error);
  m->Step(*data, 1);
}

TEST(MechanismTest, PopulationMismatchThrows) {
  const auto data = SmallStream();
  auto m = CreateMechanism("LBU", SmallConfig(), data->num_users() + 1);
  EXPECT_THROW(m->Step(*data, 0), std::invalid_argument);
}

TEST(LbuTest, PublishesEveryTimestampWithAllUsers) {
  const auto data = SmallStream();
  auto run = RunMechanism(*data, "LBU", SmallConfig());
  EXPECT_EQ(run.num_publications, data->length());
  // CFPU = 1 exactly (Table 2 row LBU).
  EXPECT_DOUBLE_EQ(run.Cfpu(), 1.0);
  for (const auto& r : run.releases) EXPECT_EQ(r.size(), 2u);
}

TEST(LspTest, PublishesOncePerWindow) {
  const auto data = SmallStream(60);
  const MechanismConfig c = SmallConfig();  // w = 10
  auto run = RunMechanism(*data, "LSP", c);
  EXPECT_EQ(run.num_publications, 6u);  // t = 0, 10, ..., 50
  for (std::size_t t = 0; t < 60; ++t) {
    EXPECT_EQ(run.published[t], t % 10 == 0) << "t=" << t;
  }
  // CFPU = 1/w exactly (Table 2 rows LSP/LPU).
  EXPECT_DOUBLE_EQ(run.Cfpu(), 1.0 / 10.0);
}

TEST(LspTest, ApproximationsRepeatLastRelease) {
  const auto data = SmallStream(25);
  auto run = RunMechanism(*data, "LSP", SmallConfig());
  for (std::size_t t = 1; t < 10; ++t) {
    EXPECT_EQ(run.releases[t], run.releases[0]) << "t=" << t;
  }
  EXPECT_NE(run.releases[10], run.releases[9]);
}

TEST(LpuTest, OneGroupPerTimestamp) {
  const auto data = SmallStream(40, 5000);
  const MechanismConfig c = SmallConfig();  // w = 10
  auto run = RunMechanism(*data, "LPU", c);
  EXPECT_EQ(run.num_publications, 40u);  // always fresh
  // Each timestamp exactly floor(N/w) reporters -> CFPU = 1/w.
  EXPECT_DOUBLE_EQ(run.Cfpu(), 0.1);
  EXPECT_EQ(run.total_messages, 40u * 500u);
}

TEST(BudgetAdaptiveTest, CfpuBetweenOneAndTwo) {
  // LBD/LBA: every user reports each timestamp for M1, and once more at
  // publication timestamps: 1 <= CFPU = 1 + m/w <= 2.
  const auto data = SmallStream(80);
  for (const std::string name : {"LBD", "LBA"}) {
    auto run = RunMechanism(*data, name, SmallConfig());
    EXPECT_GE(run.Cfpu(), 1.0) << name;
    EXPECT_LE(run.Cfpu(), 2.0) << name;
    const double expected =
        1.0 + static_cast<double>(run.num_publications) /
                  static_cast<double>(run.timestamps);
    EXPECT_NEAR(run.Cfpu(), expected, 1e-12) << name;
  }
}

TEST(PopulationAdaptiveTest, CfpuBelowUniform) {
  // LPD/LPA report strictly fewer messages than the 1/w of LPU whenever
  // some timestamps approximate (Section 6.3.3).
  const auto data = SmallStream(80);
  for (const std::string name : {"LPD", "LPA"}) {
    auto run = RunMechanism(*data, name, SmallConfig());
    EXPECT_GT(run.Cfpu(), 0.0) << name;
    EXPECT_LT(run.Cfpu(), 1.0 / 10.0 + 1e-9) << name;
  }
}

TEST(MechanismTest, RunIsDeterministicGivenSeed) {
  const auto data = SmallStream(30);
  for (const std::string& name : AllMechanismNames()) {
    auto a = RunMechanism(*data, name, SmallConfig(), /*repetition=*/3);
    auto b = RunMechanism(*data, name, SmallConfig(), /*repetition=*/3);
    EXPECT_EQ(a.releases, b.releases) << name;
    auto c = RunMechanism(*data, name, SmallConfig(), /*repetition=*/4);
    EXPECT_NE(c.releases, a.releases) << name;
  }
}

TEST(MechanismTest, MaxTimestampsTruncatesRun) {
  const auto data = SmallStream(50);
  auto m = CreateMechanism("LBU", SmallConfig(), data->num_users());
  const RunResult run = m->Run(*data, 7);
  EXPECT_EQ(run.timestamps, 7u);
  EXPECT_EQ(run.releases.size(), 7u);
}

}  // namespace
}  // namespace ldpids
