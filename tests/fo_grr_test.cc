#include "fo/grr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/rng.h"

namespace ldpids {
namespace {

TEST(GrrOracleTest, ProbabilitiesMatchEq1) {
  // p = e^eps / (e^eps + d - 1), q = 1 / (e^eps + d - 1).
  const double eps = 1.0;
  const std::size_t d = 5;
  const double e = std::exp(eps);
  EXPECT_DOUBLE_EQ(GrrOracle::KeepProbability(eps, d), e / (e + 4.0));
  EXPECT_DOUBLE_EQ(GrrOracle::LieProbability(eps, d), 1.0 / (e + 4.0));
}

TEST(GrrOracleTest, ProbabilityRatioIsExactlyExpEps) {
  // The LDP guarantee: P[report=v | true=v] / P[report=v | true=u] = e^eps.
  for (double eps : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    for (std::size_t d : {2u, 10u, 117u}) {
      const double ratio = GrrOracle::KeepProbability(eps, d) /
                           GrrOracle::LieProbability(eps, d);
      EXPECT_NEAR(ratio, std::exp(eps), 1e-9 * std::exp(eps));
    }
  }
}

TEST(GrrOracleTest, ReportDistributionMatchesProtocol) {
  // Empirically verify the per-user channel: a user with value 2 out of
  // d = 4 reports 2 with prob p and each other value with prob (1-p)/3 = q.
  const double eps = 1.0;
  const std::size_t d = 4;
  const GrrOracle oracle;
  Rng rng(1);
  constexpr int kUsers = 300000;
  auto sketch = oracle.CreateSketch({eps, d});
  for (int i = 0; i < kUsers; ++i) sketch->AddUser(2, rng);
  // The unbiased estimate of a point-mass-at-2 distribution is e_2.
  const Histogram est = sketch->Estimate();
  EXPECT_NEAR(est[2], 1.0, 0.02);
  EXPECT_NEAR(est[0], 0.0, 0.02);
  EXPECT_NEAR(est[1], 0.0, 0.02);
  EXPECT_NEAR(est[3], 0.0, 0.02);
}

TEST(GrrOracleTest, VarianceMatchesPaperEq2AtZeroFrequency) {
  // Eq. (2) with f = 0: (d - 2 + e^eps) / (n (e^eps - 1)^2).
  const GrrOracle oracle;
  for (double eps : {0.5, 1.0, 2.0}) {
    for (std::size_t d : {2u, 5u, 77u}) {
      const double e = std::exp(eps);
      const double expected = (d - 2.0 + e) / (10000.0 * (e - 1.0) * (e - 1.0));
      EXPECT_NEAR(oracle.Variance(eps, 10000, d, 0.0), expected,
                  1e-12 + expected * 1e-9)
          << "eps=" << eps << " d=" << d;
    }
  }
}

TEST(GrrOracleTest, EstimateIsUnbiasedOnSkewedInput) {
  const GrrOracle oracle;
  const std::size_t d = 6;
  const double eps = 0.8;
  Rng rng(2);
  // 100 repetitions of a 20k-user cohort with known composition.
  const Counts cohort = {8000, 6000, 3000, 2000, 900, 100};
  std::vector<double> est0, est5;
  for (int rep = 0; rep < 100; ++rep) {
    auto sketch = oracle.CreateSketch({eps, d});
    sketch->AddCohort(cohort, rng);
    const Histogram est = sketch->Estimate();
    est0.push_back(est[0]);
    est5.push_back(est[5]);
  }
  EXPECT_TRUE(testing::MeanWithin(est0, 0.4)) << testing::SampleMean(est0);
  EXPECT_TRUE(testing::MeanWithin(est5, 0.005)) << testing::SampleMean(est5);
}

TEST(GrrOracleTest, CohortAndPerUserPathsAgreeInMoments) {
  const GrrOracle oracle;
  const std::size_t d = 3;
  const double eps = 1.0;
  const Counts cohort = {500, 300, 200};
  Rng rng_a(3), rng_b(4);
  std::vector<double> exact, fast;
  for (int rep = 0; rep < 400; ++rep) {
    auto sa = oracle.CreateSketch({eps, d});
    for (std::size_t k = 0; k < d; ++k) {
      for (uint64_t i = 0; i < cohort[k]; ++i) {
        sa->AddUser(static_cast<uint32_t>(k), rng_a);
      }
    }
    exact.push_back(sa->Estimate()[0]);
    auto sb = oracle.CreateSketch({eps, d});
    sb->AddCohort(cohort, rng_b);
    fast.push_back(sb->Estimate()[0]);
  }
  // Same mean (0.5) and, per the distribution-equivalence claim, same
  // variance up to sampling error.
  EXPECT_TRUE(testing::MeanWithin(exact, 0.5));
  EXPECT_TRUE(testing::MeanWithin(fast, 0.5));
  const double var_exact = testing::SampleVariance(exact);
  const double var_fast = testing::SampleVariance(fast);
  EXPECT_NEAR(var_exact, var_fast, 0.35 * std::max(var_exact, var_fast));
}

TEST(GrrOracleTest, AddCohortMatchesAddUserAcrossAllBins) {
  // Distribution-equivalence of the two simulation paths over the *whole*
  // report histogram: for the same (epsilon, d) and cohort composition, the
  // O(n) per-user protocol and the O(d) cohort sampler must be statistically
  // indistinguishable — same per-bin mean (the true frequency, by
  // unbiasedness), zero-mean per-bin difference, and matching per-bin
  // variance up to sampling error.
  const GrrOracle oracle;
  const std::size_t d = 4;
  const double eps = 0.6;
  const Counts cohort = {400, 300, 200, 100};
  const double n = 1000.0;
  Rng rng_user(11), rng_cohort(12);
  constexpr int kReps = 300;
  std::vector<std::vector<double>> user_est(d), cohort_est(d), diff(d);
  for (int rep = 0; rep < kReps; ++rep) {
    auto su = oracle.CreateSketch({eps, d});
    for (std::size_t k = 0; k < d; ++k) {
      for (uint64_t i = 0; i < cohort[k]; ++i) {
        su->AddUser(static_cast<uint32_t>(k), rng_user);
      }
    }
    auto sc = oracle.CreateSketch({eps, d});
    sc->AddCohort(cohort, rng_cohort);
    const Histogram hu = su->Estimate();
    const Histogram hc = sc->Estimate();
    for (std::size_t k = 0; k < d; ++k) {
      user_est[k].push_back(hu[k]);
      cohort_est[k].push_back(hc[k]);
      diff[k].push_back(hu[k] - hc[k]);
    }
  }
  for (std::size_t k = 0; k < d; ++k) {
    const double f = static_cast<double>(cohort[k]) / n;
    EXPECT_TRUE(testing::MeanWithin(user_est[k], f))
        << "bin " << k << ": " << testing::SampleMean(user_est[k]);
    EXPECT_TRUE(testing::MeanWithin(cohort_est[k], f))
        << "bin " << k << ": " << testing::SampleMean(cohort_est[k]);
    EXPECT_TRUE(testing::MeanWithin(diff[k], 0.0))
        << "bin " << k << ": " << testing::SampleMean(diff[k]);
    const double vu = testing::SampleVariance(user_est[k]);
    const double vc = testing::SampleVariance(cohort_est[k]);
    EXPECT_NEAR(vu, vc, 0.35 * std::max(vu, vc)) << "bin " << k;
  }
}

TEST(GrrOracleTest, SketchRejectsBadInput) {
  const GrrOracle oracle;
  auto sketch = oracle.CreateSketch({1.0, 4});
  Rng rng(5);
  EXPECT_THROW(sketch->AddUser(4, rng), std::out_of_range);
  EXPECT_THROW(sketch->AddCohort({1, 2, 3}, rng), std::invalid_argument);
  EXPECT_THROW(sketch->Estimate(), std::logic_error);
}

TEST(GrrOracleTest, BytesPerReportScalesWithDomain) {
  const GrrOracle oracle;
  EXPECT_EQ(oracle.BytesPerReport(2), 1u);
  EXPECT_EQ(oracle.BytesPerReport(256), 1u);
  EXPECT_EQ(oracle.BytesPerReport(257), 2u);
  EXPECT_EQ(oracle.BytesPerReport(100000), 4u);
}

}  // namespace
}  // namespace ldpids
