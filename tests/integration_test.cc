// End-to-end reproductions of the paper's qualitative findings, at reduced
// scale so they run in seconds. These are the "shape" assertions from
// DESIGN.md §5 in test form; the bench harness reproduces the full-size
// numbers.
#include <cmath>

#include <gtest/gtest.h>

#include "analysis/event_monitor.h"
#include "analysis/metrics.h"
#include "analysis/roc.h"
#include "analysis/runner.h"
#include "datagen/realworld_sim.h"
#include "datagen/synthetic.h"

namespace ldpids {
namespace {

MechanismConfig Config(double eps = 1.0, std::size_t w = 20) {
  MechanismConfig c;
  c.epsilon = eps;
  c.window = w;
  c.fo = "GRR";
  c.seed = 77;
  return c;
}

// Fig. 4's headline: population division dominates budget division.
TEST(IntegrationTest, PopulationDivisionBeatsBudgetDivision) {
  const auto data = MakeLnsDataset(40000, 160, 0.0025, 1);
  const double lbu = EvaluateMechanism(*data, "LBU", Config(), 2).mre;
  const double lbd = EvaluateMechanism(*data, "LBD", Config(), 2).mre;
  const double lba = EvaluateMechanism(*data, "LBA", Config(), 2).mre;
  const double lpu = EvaluateMechanism(*data, "LPU", Config(), 2).mre;
  const double lpd = EvaluateMechanism(*data, "LPD", Config(), 2).mre;
  const double lpa = EvaluateMechanism(*data, "LPA", Config(), 2).mre;
  // Every population-division method beats every budget-division one.
  for (double p : {lpu, lpd, lpa}) {
    for (double b : {lbu, lbd, lba}) {
      EXPECT_LT(p, b);
    }
  }
}

// Fig. 4 trend: error decreases with epsilon for all methods.
TEST(IntegrationTest, ErrorDecreasesWithEpsilon) {
  const auto data = MakeLnsDataset(30000, 120, 0.0025, 2);
  for (const std::string name : {"LBU", "LBA", "LPU", "LPA"}) {
    const double lo = EvaluateMechanism(*data, name, Config(0.5), 2).mse;
    const double hi = EvaluateMechanism(*data, name, Config(2.5), 2).mse;
    EXPECT_LT(hi, lo) << name;
  }
}

// Fig. 5 trend: error grows with w (fewer users/budget per timestamp).
TEST(IntegrationTest, ErrorGrowsWithWindow) {
  const auto data = MakeLnsDataset(30000, 150, 0.0025, 3);
  for (const std::string name : {"LBU", "LPU"}) {
    const double small_w =
        EvaluateMechanism(*data, name, Config(1.0, 10), 2).mse;
    const double large_w =
        EvaluateMechanism(*data, name, Config(1.0, 50), 2).mse;
    EXPECT_GT(large_w, small_w) << name;
  }
}

// Fig. 6(a)/(b) trend: error decreases with population size.
TEST(IntegrationTest, ErrorDecreasesWithPopulation) {
  for (const std::string name : {"LBU", "LPA"}) {
    const auto small = MakeLnsDataset(10000, 100, 0.0025, 4);
    const auto large = MakeLnsDataset(80000, 100, 0.0025, 4);
    const double mse_small = EvaluateMechanism(*small, name, Config(), 2).mse;
    const double mse_large = EvaluateMechanism(*large, name, Config(), 2).mse;
    EXPECT_LT(mse_large, mse_small) << name;
  }
}

// Fig. 6(c) trend: data-dependent methods degrade as fluctuation grows.
TEST(IntegrationTest, AdaptiveErrorGrowsWithFluctuation) {
  const auto calm = MakeLnsDataset(30000, 120, 0.001, 5);
  const auto wild = MakeLnsDataset(30000, 120, 0.008, 5);
  for (const std::string name : {"LPD", "LPA", "LSP"}) {
    const double mse_calm = EvaluateMechanism(*calm, name, Config(), 2).mse;
    const double mse_wild = EvaluateMechanism(*wild, name, Config(), 2).mse;
    EXPECT_GT(mse_wild, mse_calm) << name;
  }
}

// Fig. 7's headline: LSP has good MRE but poor event detection; the
// adaptive population methods detect events well.
TEST(IntegrationTest, EventDetectionLpaBeatsLsp) {
  // A stream with clear bursts.
  std::vector<double> probs(240, 0.1);
  for (std::size_t t = 0; t < probs.size(); ++t) {
    if ((t / 7) % 9 == 4) probs[t] = 0.35;  // short bursts
  }
  const auto data = std::make_shared<BinarySyntheticDataset>(
      "bursty", 50000, std::move(probs), 6);
  const auto truth = data->TrueStream();

  auto auc_of = [&](const std::string& name) {
    double total = 0.0;
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto run = RunMechanism(*data, name, Config(1.0, 40), rep);
      std::vector<double> scores;
      std::vector<bool> labels;
      if (!PrepareEventDetection(truth, run.releases, &scores, &labels)) {
        ADD_FAILURE() << "no events in truth";
        return 0.0;
      }
      total += RocAuc(scores, labels);
    }
    return total / kReps;
  };
  const double auc_lpa = auc_of("LPA");
  const double auc_lsp = auc_of("LSP");
  EXPECT_GT(auc_lpa, auc_lsp);
  EXPECT_GT(auc_lpa, 0.8);
}

// Table 2 shape: CFPU orderings LBD > LBA > LBU = 1 and
// LPU = LSP = 1/w > LPD > LPA.
TEST(IntegrationTest, CfpuOrderingMatchesTable2) {
  const auto data = MakeLnsDataset(40000, 160, 0.0025, 7);
  const auto cfg = Config(1.0, 20);
  const double lbu = EvaluateMechanism(*data, "LBU", cfg, 2).cfpu;
  const double lbd = EvaluateMechanism(*data, "LBD", cfg, 2).cfpu;
  const double lba = EvaluateMechanism(*data, "LBA", cfg, 2).cfpu;
  const double lsp = EvaluateMechanism(*data, "LSP", cfg, 2).cfpu;
  const double lpu = EvaluateMechanism(*data, "LPU", cfg, 2).cfpu;
  const double lpd = EvaluateMechanism(*data, "LPD", cfg, 2).cfpu;
  const double lpa = EvaluateMechanism(*data, "LPA", cfg, 2).cfpu;

  EXPECT_DOUBLE_EQ(lbu, 1.0);
  EXPECT_GT(lbd, 1.0);
  EXPECT_GT(lba, 1.0);
  EXPECT_GT(lbd, lba);  // BD publishes more often than BA
  EXPECT_DOUBLE_EQ(lsp, 0.05);
  EXPECT_DOUBLE_EQ(lpu, 0.05);
  EXPECT_LT(lpd, 0.05 + 1e-12);
  EXPECT_LT(lpa, lpu);
}

// Real-world-like categorical streams work end-to-end.
TEST(IntegrationTest, CategoricalStreamsEndToEnd) {
  RealWorldSimOptions o;
  o.scale = 0.02;
  const auto data = MakeTaxiLikeDataset(o);
  for (const std::string name : {"LBA", "LPA"}) {
    const RunMetrics m = EvaluateMechanism(*data, name, Config(1.0, 5), 2);
    EXPECT_GT(m.mre, 0.0) << name;
    EXPECT_TRUE(std::isfinite(m.mre)) << name;
  }
}

}  // namespace
}  // namespace ldpids
