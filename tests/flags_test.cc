#include "util/flags.h"

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace ldpids {
namespace {

Flags MakeFlags(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;  // keep pointers alive
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesEqualsForm) {
  const Flags f = MakeFlags({"--scale=0.25", "--fo=OUE"});
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 1.0), 0.25);
  EXPECT_EQ(f.GetString("fo", "GRR"), "OUE");
}

TEST(FlagsTest, ParsesSpaceForm) {
  const Flags f = MakeFlags({"--reps", "5"});
  EXPECT_EQ(f.GetInt("reps", 1), 5);
}

TEST(FlagsTest, BareFlagIsTrue) {
  const Flags f = MakeFlags({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.GetBool("quiet", false));
}

TEST(FlagsTest, BoolParsesCommonSpellings) {
  EXPECT_TRUE(MakeFlags({"--x=YES"}).GetBool("x", false));
  EXPECT_TRUE(MakeFlags({"--x=1"}).GetBool("x", false));
  EXPECT_TRUE(MakeFlags({"--x=on"}).GetBool("x", false));
  EXPECT_FALSE(MakeFlags({"--x=no"}).GetBool("x", true));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags f = MakeFlags({});
  EXPECT_EQ(f.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(f.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 2.5), 2.5);
}

TEST(FlagsTest, EnvironmentFallback) {
  ::setenv("LDPIDS_FROM_ENV", "7", 1);
  const Flags f = MakeFlags({});
  EXPECT_EQ(f.GetInt("from-env", 0), 7);
  ::unsetenv("LDPIDS_FROM_ENV");
}

TEST(FlagsTest, CommandLineBeatsEnvironment) {
  ::setenv("LDPIDS_SCALE", "0.9", 1);
  const Flags f = MakeFlags({"--scale=0.1"});
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 1.0), 0.1);
  ::unsetenv("LDPIDS_SCALE");
}

TEST(FlagsTest, PositionalArgumentsAreKept) {
  const Flags f = MakeFlags({"first", "--k=v", "second"});
  ASSERT_EQ(f.num_positional(), 2u);
  EXPECT_EQ(f.positional(0), "first");
  EXPECT_EQ(f.positional(1), "second");
  EXPECT_THROW(f.positional(2), std::out_of_range);
}

TEST(ThreadCountFlagTest, ParsesPositiveValues) {
  EXPECT_EQ(ThreadCountFlag(MakeFlags({"--threads=4"}), 1), 4u);
  EXPECT_EQ(ThreadCountFlag(MakeFlags({"--threads", "16"}), 1), 16u);
}

TEST(ThreadCountFlagTest, FallsBackToDefaultWhenAbsent) {
  EXPECT_EQ(ThreadCountFlag(MakeFlags({}), 7), 7u);
}

TEST(ThreadCountFlagTest, RejectsZeroAndNegative) {
  EXPECT_THROW(ThreadCountFlag(MakeFlags({"--threads=0"}), 1),
               std::invalid_argument);
  EXPECT_THROW(ThreadCountFlag(MakeFlags({"--threads=-3"}), 1),
               std::invalid_argument);
}

TEST(ThreadCountFlagTest, RejectsMalformedValues) {
  EXPECT_THROW(ThreadCountFlag(MakeFlags({"--threads=many"}), 1),
               std::invalid_argument);
  // Strict parse: trailing garbage is rejected, not truncated.
  EXPECT_THROW(ThreadCountFlag(MakeFlags({"--threads=8abc"}), 1),
               std::invalid_argument);
  EXPECT_THROW(ThreadCountFlag(MakeFlags({"--threads=2.5"}), 1),
               std::invalid_argument);
}

TEST(ThreadCountFlagTest, ReadsEnvironmentFallback) {
  ::setenv("LDPIDS_THREADS", "3", 1);
  EXPECT_EQ(ThreadCountFlag(MakeFlags({}), 1), 3u);
  ::unsetenv("LDPIDS_THREADS");
}

TEST(BenchScaleTest, ClampsToUnitInterval) {
  EXPECT_DOUBLE_EQ(BenchScale(MakeFlags({"--scale=0.5"})), 0.5);
  EXPECT_DOUBLE_EQ(BenchScale(MakeFlags({"--scale=3.0"})), 1.0);
  EXPECT_DOUBLE_EQ(BenchScale(MakeFlags({"--scale=-1"})), 1.0);
  EXPECT_DOUBLE_EQ(BenchScale(MakeFlags({})), 1.0);
}

}  // namespace
}  // namespace ldpids
