#include "analysis/postprocess.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "analysis/runner.h"
#include "datagen/synthetic.h"

namespace ldpids {
namespace {

bool OnSimplex(const Histogram& h, double tol = 1e-9) {
  double total = 0.0;
  for (double x : h) {
    if (x < -tol) return false;
    total += x;
  }
  return std::fabs(total - 1.0) <= tol;
}

TEST(SimplexProjectionTest, FixesNegativeAndOverflowingHistograms) {
  for (const Histogram& h : std::vector<Histogram>{
           {-0.2, 0.5, 0.9},
           {2.0, 3.0},
           {-1.0, -2.0, 0.1},
           {0.25, 0.25, 0.25, 0.25}}) {
    const Histogram p = ProjectToSimplex(h);
    EXPECT_TRUE(OnSimplex(p));
  }
}

TEST(SimplexProjectionTest, SimplexPointsAreFixedPoints) {
  const Histogram h = {0.1, 0.2, 0.7};
  const Histogram p = ProjectToSimplex(h);
  for (std::size_t k = 0; k < h.size(); ++k) EXPECT_NEAR(p[k], h[k], 1e-12);
}

TEST(SimplexProjectionTest, KnownProjection) {
  // Projecting (1.2, 0.2) onto the simplex: shift both by theta = 0.2
  // -> (1.0, 0.0).
  const Histogram p = ProjectToSimplex({1.2, 0.2});
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
}

TEST(NormSubTest, ProducesSimplexHistograms) {
  for (const Histogram& h : std::vector<Histogram>{
           {-0.2, 0.5, 0.9},
           {0.6, 0.6},
           {-0.5, 0.2, 0.1},
           {0.0, 0.0, 0.0}}) {
    EXPECT_TRUE(OnSimplex(NormSub(h)));
  }
}

TEST(NormSubTest, UniformShiftWhenNoClippingNeeded) {
  // (0.2, 0.4): deficit 0.4 split evenly -> (0.4, 0.6).
  const Histogram p = NormSub({0.2, 0.4});
  EXPECT_NEAR(p[0], 0.4, 1e-12);
  EXPECT_NEAR(p[1], 0.6, 1e-12);
}

TEST(NormSubTest, ClipsAndRedistributes) {
  // (-0.5, 0.5, 0.5): first shift +1/6 each -> (-1/3, 2/3, 2/3); clip the
  // negative and re-balance the remaining two to sum 1.
  const Histogram p = NormSub({-0.5, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
  EXPECT_NEAR(p[2], 0.5, 1e-12);
}

TEST(ApplyPostProcessTest, DispatchesAllModes) {
  const Histogram h = {-0.1, 0.6, 0.6};
  EXPECT_EQ(ApplyPostProcess(h, PostProcess::kNone), h);
  const Histogram clamped = ApplyPostProcess(h, PostProcess::kClamp);
  EXPECT_DOUBLE_EQ(clamped[0], 0.0);
  EXPECT_TRUE(OnSimplex(ApplyPostProcess(h, PostProcess::kSimplex)));
  EXPECT_TRUE(OnSimplex(ApplyPostProcess(h, PostProcess::kNormSub)));
}

TEST(ParsePostProcessTest, NamesRoundTrip) {
  for (PostProcess mode :
       {PostProcess::kNone, PostProcess::kClamp, PostProcess::kSimplex,
        PostProcess::kNormSub}) {
    EXPECT_EQ(ParsePostProcess(PostProcessName(mode)), mode);
  }
  EXPECT_EQ(ParsePostProcess("Norm-Sub"), PostProcess::kNormSub);
  EXPECT_THROW(ParsePostProcess("bogus"), std::invalid_argument);
}

TEST(PostProcessIntegrationTest, NormSubReleasesAreConsistent) {
  const auto data = MakeLnsDataset(5000, 60, 0.0025, 2);
  MechanismConfig c;
  c.epsilon = 1.0;
  c.window = 10;
  c.post_process = PostProcess::kNormSub;
  const RunResult run = RunMechanism(*data, "LPU", c);
  for (const Histogram& r : run.releases) {
    EXPECT_TRUE(OnSimplex(r, 1e-6));
  }
}

TEST(PostProcessIntegrationTest, ConsistencyImprovesMreOnSparseDomains) {
  // Negative-bin noise dominates MRE on sparse categorical streams; the
  // simplex/norm-sub steps should never hurt much and typically help a lot.
  const auto data = std::make_shared<DistributionSequenceDataset>(
      "sparse", 20000,
      std::vector<Histogram>(40, Histogram{0.85, 0.05, 0.04, 0.03, 0.02,
                                           0.01}),
      9);
  MechanismConfig base;
  base.epsilon = 0.5;
  base.window = 10;
  const auto truth = data->TrueStream();
  const double raw =
      MeanRelativeError(truth, RunMechanism(*data, "LPU", base).releases);
  base.post_process = PostProcess::kNormSub;
  const double processed =
      MeanRelativeError(truth, RunMechanism(*data, "LPU", base).releases);
  EXPECT_LT(processed, raw);
}

}  // namespace
}  // namespace ldpids
