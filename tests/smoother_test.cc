#include "analysis/smoother.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "analysis/runner.h"
#include "datagen/synthetic.h"
#include "fo/frequency_oracle.h"

namespace ldpids {
namespace {

TEST(StreamSmootherTest, ConstructionValidation) {
  EXPECT_THROW(StreamSmoother(0, 0.1), std::invalid_argument);
  EXPECT_THROW(StreamSmoother(2, -0.1), std::invalid_argument);
}

TEST(StreamSmootherTest, FirstMeasurementInitializesExactly) {
  StreamSmoother s(2, 0.01);
  const Histogram first = {0.3, 0.7};
  EXPECT_EQ(s.Update(first, true, 0.05), first);
  EXPECT_DOUBLE_EQ(s.posterior_variance(), 0.05);
}

TEST(StreamSmootherTest, PredictionOnlyGrowsUncertainty) {
  StreamSmoother s(2, 0.01);
  s.Update({0.5, 0.5}, true, 0.05);
  const double p0 = s.posterior_variance();
  s.Update({0.0, 0.0}, false, 0.0);  // approximation: no correction
  EXPECT_DOUBLE_EQ(s.posterior_variance(), p0 + 0.01);
}

TEST(StreamSmootherTest, CorrectionMovesTowardsMeasurement) {
  StreamSmoother s(2, 0.01);
  s.Update({0.5, 0.5}, true, 0.05);
  const Histogram out = s.Update({0.9, 0.1}, true, 0.05);
  EXPECT_GT(out[0], 0.5);
  EXPECT_LT(out[0], 0.9);
  // Gain = P/(P+R) with P = 0.06: K ~ 0.5454 -> x ~ 0.5 + 0.5454*0.4.
  EXPECT_NEAR(out[0], 0.5 + (0.06 / 0.11) * 0.4, 1e-9);
}

TEST(StreamSmootherTest, RepeatedMeasurementsShrinkVarianceBelowR) {
  StreamSmoother s(1, 0.0);  // wait: domain must be >= 1; 1 is allowed here
  s.Update({0.4}, true, 0.1);
  for (int i = 0; i < 20; ++i) s.Update({0.4}, true, 0.1);
  // With Q = 0, repeated measurements average: P -> R / n.
  EXPECT_LT(s.posterior_variance(), 0.1 / 10.0);
}

TEST(StreamSmootherTest, DomainMismatchThrows) {
  StreamSmoother s(2, 0.01);
  EXPECT_THROW(s.Update({0.1, 0.2, 0.7}, true, 0.01), std::invalid_argument);
}

TEST(EstimateProcessVarianceTest, MatchesHandComputation) {
  // Steps: (0.1, -0.1) then (0.0, 0.0): mean square = (0.01+0.01)/4.
  const std::vector<Histogram> stream = {
      {0.5, 0.5}, {0.6, 0.4}, {0.6, 0.4}};
  EXPECT_NEAR(EstimateProcessVariance(stream), 0.005, 1e-12);
  EXPECT_DOUBLE_EQ(EstimateProcessVariance({{0.5, 0.5}}), 0.0);
}

TEST(SmoothRunTest, ReducesErrorOnNoisyPublishEveryStepStream) {
  // LBU publishes a very noisy estimate at every timestamp; Kalman
  // smoothing with the analytically-known measurement variance must cut
  // the MSE substantially on a slowly drifting stream.
  const auto data = MakeLnsDataset(20000, 150, 0.0025, 3);
  const auto truth = data->TrueStream();
  MechanismConfig c;
  c.epsilon = 1.0;
  c.window = 20;
  const RunResult run = RunMechanism(*data, "LBU", c);

  const double r = GetFrequencyOracle("GRR").MeanVariance(
      c.epsilon / static_cast<double>(c.window), data->num_users(), 2);
  const double q = EstimateProcessVariance(truth);
  const auto smoothed = SmoothRun(run, q, r);

  const double mse_raw = MeanSquaredError(truth, run.releases);
  const double mse_smooth = MeanSquaredError(truth, smoothed);
  EXPECT_LT(mse_smooth, 0.5 * mse_raw)
      << "raw=" << mse_raw << " smooth=" << mse_smooth;
}

TEST(SmoothRunTest, HandlesAdaptiveRunsWithApproximations) {
  const auto data = MakeLnsDataset(20000, 120, 0.0025, 4);
  const auto truth = data->TrueStream();
  MechanismConfig c;
  c.epsilon = 1.0;
  c.window = 20;
  const RunResult run = RunMechanism(*data, "LPA", c);
  // Measurement variance varies per publication in LPA; use a conservative
  // constant (the dissimilarity-cohort variance) and require smoothing not
  // to blow the error up.
  const double r = GetFrequencyOracle("GRR").MeanVariance(
      c.epsilon, data->num_users() / (2 * c.window), 2);
  const auto smoothed =
      SmoothRun(run, EstimateProcessVariance(truth), r);
  const double mse_raw = MeanSquaredError(truth, run.releases);
  const double mse_smooth = MeanSquaredError(truth, smoothed);
  EXPECT_LT(mse_smooth, 2.0 * mse_raw);
}

TEST(SmoothRunTest, EmptyRunYieldsEmptyOutput) {
  RunResult run;
  EXPECT_TRUE(SmoothRun(run, 0.01, 0.01).empty());
}

}  // namespace
}  // namespace ldpids
