// Flight recorder tests: ring semantics (ordering, wraparound, drop
// accounting), in-flight marks and track closing, concurrent writers
// against a concurrent snapshotter (the seqlock must never surface a torn
// event — the TSan job runs this test), Chrome-trace rendering, and the
// session integration: recording changes nothing about the releases.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "obs/flight_recorder.h"
#include "obs/stage_trace.h"
#include "service/client_fleet.h"
#include "service/session.h"

namespace ldpids {
namespace {

using obs::FlightRecorder;
using obs::FlightRecorderSnapshot;
using obs::RenderChromeTrace;
using obs::RoundEvent;
using obs::Stage;

TEST(FlightRecorderTest, RecordsEventsInOrder) {
  FlightRecorder recorder(64);
  const uint32_t track = recorder.RegisterTrack("s0");
  recorder.Record(track, Stage::kAnnounce, 0, 100, 200);
  recorder.Record(track, Stage::kTransportRtt, 0, 200, 900, 50, 2);
  recorder.Record(track, Stage::kEstimate, 0, 900, 1000);

  const FlightRecorderSnapshot snap = recorder.Snapshot();
  ASSERT_EQ(snap.tracks.size(), 1u);
  EXPECT_EQ(snap.tracks[0], "s0");
  EXPECT_FALSE(snap.closed[0]);
  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(snap.events[0].stage, Stage::kAnnounce);
  EXPECT_EQ(snap.events[1].stage, Stage::kTransportRtt);
  EXPECT_EQ(snap.events[1].reports, 50u);
  EXPECT_EQ(snap.events[1].drops, 2u);
  EXPECT_EQ(snap.events[2].t_end_ns, 1000u);
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_EQ(snap.total_recorded, 3u);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder recorder(100);
  EXPECT_EQ(recorder.capacity(), 128u);
}

TEST(FlightRecorderTest, WraparoundKeepsNewestAndCountsDropped) {
  FlightRecorder recorder(16);
  const uint32_t track = recorder.RegisterTrack("s");
  for (uint64_t i = 0; i < 40; ++i) {
    recorder.Record(track, Stage::kMerge, i, i * 10, i * 10 + 5);
  }
  const FlightRecorderSnapshot snap = recorder.Snapshot();
  EXPECT_EQ(snap.total_recorded, 40u);
  EXPECT_EQ(snap.dropped, 40u - recorder.capacity());
  ASSERT_EQ(snap.events.size(), recorder.capacity());
  // The survivors are exactly the newest ring-capacity events, in order.
  EXPECT_EQ(snap.events.front().round_index, 40u - recorder.capacity());
  EXPECT_EQ(snap.events.back().round_index, 39u);
  for (std::size_t i = 1; i < snap.events.size(); ++i) {
    EXPECT_EQ(snap.events[i].round_index,
              snap.events[i - 1].round_index + 1);
  }
}

TEST(FlightRecorderTest, InFlightMarksAppearAndClear) {
  FlightRecorder recorder;
  const uint32_t track = recorder.RegisterTrack("s");
  recorder.BeginStage(track, Stage::kTransportRtt, 7, 12345);
  FlightRecorderSnapshot snap = recorder.Snapshot();
  ASSERT_EQ(snap.in_flight.size(), 1u);
  EXPECT_EQ(snap.in_flight[0].stage, Stage::kTransportRtt);
  EXPECT_EQ(snap.in_flight[0].round_index, 7u);
  EXPECT_EQ(snap.in_flight[0].t_start_ns, 12345u);

  // Record of the same (track, stage) clears the mark.
  recorder.Record(track, Stage::kTransportRtt, 7, 12345, 20000);
  snap = recorder.Snapshot();
  EXPECT_TRUE(snap.in_flight.empty());

  // Distinct stages hold independent marks (pipelined overlap).
  recorder.BeginStage(track, Stage::kAnnounce, 8, 100);
  recorder.BeginStage(track, Stage::kEstimate, 7, 200);
  snap = recorder.Snapshot();
  EXPECT_EQ(snap.in_flight.size(), 2u);
}

TEST(FlightRecorderTest, CloseTrackClearsMarksAndFlagsClosed) {
  FlightRecorder recorder;
  const uint32_t track = recorder.RegisterTrack("s");
  recorder.BeginStage(track, Stage::kShardFold, 3, 999);
  recorder.CloseTrack(track);
  const FlightRecorderSnapshot snap = recorder.Snapshot();
  EXPECT_TRUE(snap.closed[0]);
  EXPECT_TRUE(snap.in_flight.empty());
  // Idempotent, and out-of-range tracks are ignored.
  recorder.CloseTrack(track);
  recorder.CloseTrack(10'000);
}

// Hammer the ring from several writer threads while a reader snapshots
// continuously: every surfaced event must be internally consistent
// (writer id encoded in every field), proving the seqlock never tears.
TEST(FlightRecorderTest, ConcurrentWritersNeverTearEvents) {
  FlightRecorder recorder(256);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  std::vector<uint32_t> tracks;
  for (int w = 0; w < kWriters; ++w) {
    std::string name = "w";
    name += std::to_string(w);
    tracks.push_back(recorder.RegisterTrack(name));
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const FlightRecorderSnapshot snap = recorder.Snapshot();
      for (const RoundEvent& ev : snap.events) {
        // All fields of one event must agree on the writer.
        const uint64_t w = ev.track;
        ASSERT_LT(w, static_cast<uint64_t>(kWriters));
        ASSERT_EQ(ev.t_start_ns % kWriters, w);
        ASSERT_EQ(ev.t_end_ns % kWriters, w);
        ASSERT_EQ(ev.reports % kWriters, w);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const uint64_t base = static_cast<uint64_t>(w);
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        recorder.Record(tracks[static_cast<std::size_t>(w)], Stage::kMerge,
                        i, base + i * kWriters, base + (i + 1) * kWriters,
                        base + i * kWriters);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(recorder.total_recorded(), kWriters * kPerWriter);
}

TEST(ChromeTraceTest, RendersRebaseAndMetadata) {
  FlightRecorder recorder;
  const uint32_t track = recorder.RegisterTrack("session \"a\"");
  recorder.Record(track, Stage::kAnnounce, 0, 5'000'000, 6'000'000);
  recorder.Record(track, Stage::kEstimate, 0, 6'000'000, 9'500'000, 42, 1);
  const std::string trace = RenderChromeTrace(recorder.Snapshot());

  // Top-level schema keys.
  EXPECT_EQ(trace.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Thread metadata with the (escaped) track name.
  EXPECT_NE(trace.find("\"name\":\"thread_name\",\"ph\":\"M\""),
            std::string::npos);
  EXPECT_NE(trace.find("session \\\"a\\\""), std::string::npos);
  // Duration events, microseconds, rebased to the oldest start.
  EXPECT_NE(trace.find("\"name\":\"announce\",\"cat\":\"round\",\"ph\":\"X\","
                       "\"ts\":0,\"dur\":1000"),
            std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"estimate\",\"cat\":\"round\",\"ph\":\"X\","
                       "\"ts\":1000,\"dur\":3500"),
            std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"round\":0,\"reports\":42,\"drops\":1}"),
            std::string::npos);
}

TEST(ChromeTraceTest, EmptyRecorderRendersValidEmptyTrace) {
  FlightRecorder recorder;
  EXPECT_EQ(RenderChromeTrace(recorder.Snapshot()),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

// --- session integration --------------------------------------------------

constexpr std::size_t kDomain = 10;
constexpr uint64_t kUsers = 300;
constexpr std::size_t kSteps = 5;

uint32_t TruthValue(uint64_t user, std::size_t t) {
  return static_cast<uint32_t>((user + 3 * t) % kDomain);
}

MechanismConfig RecorderConfig() {
  MechanismConfig c;
  c.epsilon = 1.0;
  c.window = 4;
  c.fo = "GRR";
  c.seed = 91;
  return c;
}

std::vector<StepResult> RunWithRecorder(FlightRecorder* recorder,
                                        std::size_t depth) {
  const service::ClientFleet fleet(kUsers, TruthValue, 4242);
  service::SessionOptions options;
  options.num_shards = 2;
  options.pipeline_depth = depth;
  options.recorder = recorder;
  if (recorder != nullptr) options.metrics_label = "rec";
  service::MechanismSession session(
      CreateMechanism("LBA", RecorderConfig(), kUsers), kDomain, options,
      fleet.Transport(1));
  std::vector<StepResult> steps;
  for (std::size_t t = 0; t < kSteps; ++t) steps.push_back(session.Advance());
  return steps;
}

TEST(FlightRecorderSessionTest, RecorderDoesNotChangeReleases) {
  for (const std::size_t depth : {std::size_t{1}, std::size_t{2}}) {
    FlightRecorder recorder;
    const std::vector<StepResult> bare = RunWithRecorder(nullptr, depth);
    const std::vector<StepResult> recorded =
        RunWithRecorder(&recorder, depth);
    ASSERT_EQ(bare.size(), recorded.size());
    for (std::size_t t = 0; t < bare.size(); ++t) {
      EXPECT_EQ(bare[t].published, recorded[t].published) << t;
      EXPECT_EQ(bare[t].release, recorded[t].release) << t;
    }
  }
}

TEST(FlightRecorderSessionTest, SessionEmitsEventsPerStageAndClosesTrack) {
  FlightRecorder recorder;
  RunWithRecorder(&recorder, 2);
  const FlightRecorderSnapshot snap = recorder.Snapshot();
  ASSERT_EQ(snap.tracks.size(), 1u);
  EXPECT_EQ(snap.tracks[0], "rec");
  EXPECT_TRUE(snap.closed[0]) << "destroyed session must close its track";
  EXPECT_TRUE(snap.in_flight.empty());
  ASSERT_FALSE(snap.events.empty());

  // Every consumed round carries the full announce..estimate event chain,
  // and at least one post-process event exists per step.
  std::size_t per_stage[obs::kNumStages] = {};
  uint64_t max_round = 0;
  for (const RoundEvent& ev : snap.events) {
    ++per_stage[static_cast<std::size_t>(ev.stage)];
    EXPECT_LE(ev.t_start_ns, ev.t_end_ns);
    max_round = std::max(max_round, ev.round_index);
  }
  const std::size_t rounds = per_stage[static_cast<std::size_t>(
      Stage::kAnnounce)];
  EXPECT_GE(rounds, kSteps);
  EXPECT_EQ(max_round + 1, rounds);
  for (const Stage s :
       {Stage::kTransportRtt, Stage::kArenaDecode, Stage::kShardFold,
        Stage::kMerge, Stage::kEstimate}) {
    EXPECT_EQ(per_stage[static_cast<std::size_t>(s)], rounds)
        << obs::StageName(s);
  }
  EXPECT_GE(per_stage[static_cast<std::size_t>(Stage::kPostProcess)],
            kSteps);

  // The transport-RTT events carry the round's acceptance accounting.
  const RoundEvent* rtt = nullptr;
  for (const RoundEvent& ev : snap.events) {
    if (ev.stage == Stage::kTransportRtt) rtt = &ev;
  }
  ASSERT_NE(rtt, nullptr);
  EXPECT_GT(rtt->reports, 0u);

  // And the whole thing renders as a loadable Chrome trace.
  const std::string trace = RenderChromeTrace(snap);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"transport_rtt\""), std::string::npos);
}

}  // namespace
}  // namespace ldpids
