#include "stream/window.h"

#include <gtest/gtest.h>

namespace ldpids {
namespace {

TEST(SlidingWindowSumTest, RejectsZeroWindow) {
  EXPECT_THROW(SlidingWindowSum(0), std::invalid_argument);
}

TEST(SlidingWindowSumTest, SumBeforeWindowFills) {
  SlidingWindowSum w(4);
  EXPECT_DOUBLE_EQ(w.Sum(), 0.0);
  w.Push(1.0);
  EXPECT_DOUBLE_EQ(w.Sum(), 1.0);
  w.Push(2.0);
  EXPECT_DOUBLE_EQ(w.Sum(), 3.0);
}

TEST(SlidingWindowSumTest, EvictsOldValues) {
  SlidingWindowSum w(3);
  w.Push(1.0);
  w.Push(2.0);
  w.Push(3.0);
  EXPECT_DOUBLE_EQ(w.Sum(), 6.0);
  w.Push(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.Sum(), 15.0);
  w.Push(0.0);  // evicts 2.0
  EXPECT_DOUBLE_EQ(w.Sum(), 13.0);
}

TEST(SlidingWindowSumTest, WindowOfOneTracksLastValue) {
  SlidingWindowSum w(1);
  w.Push(5.0);
  EXPECT_DOUBLE_EQ(w.Sum(), 5.0);
  w.Push(7.0);
  EXPECT_DOUBLE_EQ(w.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(w.SumLastWMinus1(), 0.0);
}

TEST(SlidingWindowSumTest, SumLastWMinus1ExcludesOldest) {
  SlidingWindowSum w(3);
  w.Push(1.0);
  w.Push(2.0);
  // Window not full yet: everything counts.
  EXPECT_DOUBLE_EQ(w.SumLastWMinus1(), 3.0);
  w.Push(4.0);
  // Full: drop the oldest (1.0).
  EXPECT_DOUBLE_EQ(w.SumLastWMinus1(), 6.0);
  w.Push(8.0);  // window {2,4,8}
  EXPECT_DOUBLE_EQ(w.SumLastWMinus1(), 12.0);
}

TEST(SlidingWindowSumTest, ValueAgo) {
  SlidingWindowSum w(3);
  w.Push(1.0);
  w.Push(2.0);
  w.Push(3.0);
  EXPECT_DOUBLE_EQ(w.ValueAgo(0), 3.0);
  EXPECT_DOUBLE_EQ(w.ValueAgo(1), 2.0);
  EXPECT_DOUBLE_EQ(w.ValueAgo(2), 1.0);
  EXPECT_THROW(w.ValueAgo(3), std::out_of_range);
  w.Push(9.0);
  EXPECT_DOUBLE_EQ(w.ValueAgo(0), 9.0);
  EXPECT_DOUBLE_EQ(w.ValueAgo(2), 2.0);
}

TEST(SlidingWindowSumTest, ValueAgoBeforeFull) {
  SlidingWindowSum w(5);
  w.Push(4.0);
  EXPECT_DOUBLE_EQ(w.ValueAgo(0), 4.0);
  EXPECT_THROW(w.ValueAgo(1), std::out_of_range);
}

TEST(SlidingWindowSumTest, LongRunMatchesNaiveSum) {
  SlidingWindowSum w(7);
  std::vector<double> history;
  double expected;
  for (int i = 0; i < 100; ++i) {
    const double v = (i * 37 % 11) - 5.0;
    w.Push(v);
    history.push_back(v);
    expected = 0.0;
    const std::size_t start = history.size() > 7 ? history.size() - 7 : 0;
    for (std::size_t j = start; j < history.size(); ++j) {
      expected += history[j];
    }
    ASSERT_NEAR(w.Sum(), expected, 1e-9) << "at step " << i;
  }
}

}  // namespace
}  // namespace ldpids
