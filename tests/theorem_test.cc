// Executable checks of the paper's analytic results:
//   * Theorem 6.1  — MSE_LPU < MSE_LBU for GRR and OUE, analytically over a
//                    parameter grid and empirically end-to-end;
//   * Section 6.3.2 — population division beats budget division publication
//                    for publication counts m >= 1 (Eqs. 8-11);
//   * Lemma-level   — V(eps, n) scaling facts the mechanisms rely on.
#include <cmath>

#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "analysis/runner.h"
#include "datagen/synthetic.h"
#include "fo/frequency_oracle.h"

namespace ldpids {
namespace {

// Theorem 6.1 (analytic): V(eps, N/w) < V(eps/w, N) for GRR and OUE.
TEST(Theorem61Test, PopulationDivisionBeatsBudgetDivisionAnalytically) {
  for (const std::string fo_name : {"GRR", "OUE"}) {
    const auto& fo = GetFrequencyOracle(fo_name);
    for (double eps : {0.5, 1.0, 2.0, 3.0}) {
      for (uint64_t w : {2ull, 5ull, 20ull, 50ull}) {
        for (std::size_t d : {2u, 10u, 117u}) {
          const uint64_t n = 100000;
          const double mse_lpu = fo.MeanVariance(eps, n / w, d);
          const double mse_lbu = fo.MeanVariance(eps / static_cast<double>(w),
                                                 n, d);
          EXPECT_LT(mse_lpu, mse_lbu)
              << fo_name << " eps=" << eps << " w=" << w << " d=" << d;
        }
      }
    }
  }
}

// The gap must *grow* with w: budget division degrades like
// (e^{eps/w}-1)^{-2} ~ w^2/eps^2 while population division only pays w/n.
TEST(Theorem61Test, GapGrowsWithWindowSize) {
  const auto& grr = GetFrequencyOracle("GRR");
  const uint64_t n = 100000;
  double prev_ratio = 0.0;
  for (uint64_t w : {2ull, 4ull, 8ull, 16ull, 32ull}) {
    const double ratio =
        grr.MeanVariance(1.0 / static_cast<double>(w), n, 5) /
        grr.MeanVariance(1.0, n / w, 5);
    EXPECT_GT(ratio, prev_ratio) << "w=" << w;
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 10.0);  // at w=32 the gap is enormous
}

// Theorem 6.1 (empirical): run LBU and LPU end-to-end on the same stream.
TEST(Theorem61Test, LpuBeatsLbuEmpirically) {
  const auto data = MakeLnsDataset(50000, 100, 0.0025, 31);
  MechanismConfig c;
  c.epsilon = 1.0;
  c.window = 20;
  c.fo = "GRR";
  const auto lbu = EvaluateMechanism(*data, "LBU", c, 3);
  const auto lpu = EvaluateMechanism(*data, "LPU", c, 3);
  EXPECT_LT(lpu.mse, lbu.mse);
  EXPECT_LT(lpu.mre, lbu.mre);
}

// Section 6.3.2, Eq. (10) vs Eq. (8): for any m publications, the m-th
// population-division publication V(eps, N/2^{m+1}) is below the
// budget-division V(eps/2^{m+1}, N).
TEST(Section632Test, DistributionScheduleErrorComparison) {
  const auto& grr = GetFrequencyOracle("GRR");
  const uint64_t n = 200000;
  const double eps = 1.0;
  for (int m = 1; m <= 6; ++m) {
    const double denom = std::pow(2.0, m + 1);
    const double v_lpd = grr.MeanVariance(eps, static_cast<uint64_t>(n / denom), 5);
    const double v_lbd = grr.MeanVariance(eps / denom, n, 5);
    EXPECT_LT(v_lpd, v_lbd) << "m=" << m;
  }
}

// Section 6.3.2, Eq. (11) vs Eq. (9): absorption schedules.
TEST(Section632Test, AbsorptionScheduleErrorComparison) {
  const auto& grr = GetFrequencyOracle("GRR");
  const uint64_t n = 200000;
  const double eps = 1.0;
  const double w = 20.0;
  for (double m : {1.0, 2.0, 5.0, 10.0, 19.0}) {
    const double share = (w + m) / (4.0 * w * m);
    const double v_lpa =
        grr.MeanVariance(eps, static_cast<uint64_t>(share * n), 5);
    const double v_lba = grr.MeanVariance(share * eps, n, 5);
    EXPECT_LT(v_lpa, v_lba) << "m=" << m;
  }
}

// LBA's error grows more mildly with m than LBD's (Section 5.4.2): compare
// the m-th publication budgets eps/2^{m+1} (LBD) vs (w+m)eps/(4wm) (LBA).
TEST(Section542Test, AbsorptionDegradesMoreMildlyThanDistribution) {
  const double eps = 1.0;
  const double w = 20.0;
  for (double m : {3.0, 5.0, 10.0}) {
    const double lbd_budget = eps / std::pow(2.0, m + 1);
    const double lba_budget = (w + m) * eps / (4.0 * w * m);
    EXPECT_GT(lba_budget, lbd_budget) << "m=" << m;
  }
}

// V(eps, n) sanity: strictly decreasing in eps, exactly 1/n in population.
TEST(VarianceScalingTest, MonotoneInEpsilonInverseInPopulation) {
  for (const std::string& name : AllFrequencyOracleNames()) {
    const auto& fo = GetFrequencyOracle(name);
    double prev = std::numeric_limits<double>::infinity();
    for (double eps : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const double v = fo.MeanVariance(eps, 1000, 8);
      EXPECT_LT(v, prev) << name << " eps=" << eps;
      prev = v;
    }
    EXPECT_NEAR(fo.MeanVariance(1.0, 500, 8),
                4.0 * fo.MeanVariance(1.0, 2000, 8),
                fo.MeanVariance(1.0, 500, 8) * 1e-9);
  }
}

}  // namespace
}  // namespace ldpids
