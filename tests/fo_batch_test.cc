// Tests for the adaptive FoSketch::AddUsers batch entry point and the
// deferred (batched) OLH support resolution.
//
// Contract under test: AddUsers is distribution-equivalent to calling
// AddUser per element. Where the sampling path is shared the equivalence is
// seed-pinned exact — small batches replay the per-user protocol verbatim,
// large batches replay the AddCohort path verbatim — and across the switch
// it holds in expectation (the estimates stay unbiased).
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fo/frequency_oracle.h"
#include "test_util.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace ldpids {
namespace {

std::vector<uint32_t> CyclingValues(std::size_t n, std::size_t d) {
  std::vector<uint32_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<uint32_t>(i % d);
  }
  return values;
}

class FoBatchTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FoBatchTest, SmallBatchMatchesPerUserExactly) {
  // 3 users is below every oracle's batch threshold, so AddUsers must
  // replay the exact per-user protocol: same RNG stream, same estimate.
  const auto& fo = GetFrequencyOracle(GetParam());
  const FoParams params{1.0, 8};
  const std::vector<uint32_t> values = {1, 5, 5};

  Rng rng_batch(42);
  auto batched = fo.CreateSketch(params);
  batched->AddUsers(values, rng_batch);

  Rng rng_loop(42);
  auto looped = fo.CreateSketch(params);
  for (uint32_t v : values) looped->AddUser(v, rng_loop);

  EXPECT_EQ(batched->num_users(), looped->num_users());
  EXPECT_EQ(batched->Estimate(), looped->Estimate());
}

TEST_P(FoBatchTest, LargeBatchMatchesCohortExactly) {
  // 5000 users is above every oracle's threshold, so AddUsers must tally
  // the counts and replay the AddCohort sampling path verbatim.
  const auto& fo = GetFrequencyOracle(GetParam());
  const std::size_t d = 8;
  const FoParams params{1.0, d};
  const std::vector<uint32_t> values = CyclingValues(5000, d);

  Rng rng_batch(7);
  auto batched = fo.CreateSketch(params);
  batched->AddUsers(values, rng_batch);

  Rng rng_cohort(7);
  auto cohort = fo.CreateSketch(params);
  cohort->AddCohort(CountValues(values, d), rng_cohort);

  EXPECT_EQ(batched->num_users(), cohort->num_users());
  EXPECT_EQ(batched->Estimate(), cohort->Estimate());
}

TEST_P(FoBatchTest, BatchedEstimateIsUnbiasedAcrossRepetitions) {
  // Expectation-level equivalence across the adaptive switch: the batched
  // estimate of a skewed cohort must center on the true frequencies.
  const auto& fo = GetFrequencyOracle(GetParam());
  const std::size_t d = 4;
  const FoParams params{1.0, d};
  // 1000 users: 700 hold value 0, 200 hold value 1, 100 hold value 3.
  std::vector<uint32_t> values;
  values.insert(values.end(), 700, 0);
  values.insert(values.end(), 200, 1);
  values.insert(values.end(), 100, 3);

  Rng rng(123);
  std::vector<double> est0, est2;
  for (int rep = 0; rep < 80; ++rep) {
    auto sketch = fo.CreateSketch(params);
    sketch->AddUsers(values, rng);
    const Histogram est = sketch->Estimate();
    est0.push_back(est[0]);
    est2.push_back(est[2]);
  }
  EXPECT_TRUE(testing::MeanWithin(est0, 0.7, 5.5)) << testing::SampleMean(est0);
  EXPECT_TRUE(testing::MeanWithin(est2, 0.0, 5.5)) << testing::SampleMean(est2);
}

TEST_P(FoBatchTest, RejectsOutOfDomainValueInBatchPath) {
  const auto& fo = GetFrequencyOracle(GetParam());
  const std::size_t d = 4;
  Rng rng(5);
  // Large batch -> the tally path must validate each value.
  std::vector<uint32_t> values = CyclingValues(1000, d);
  values[500] = static_cast<uint32_t>(d);  // out of domain
  auto sketch = fo.CreateSketch({1.0, d});
  EXPECT_THROW(sketch->AddUsers(values, rng), std::out_of_range);
}

TEST_P(FoBatchTest, DomainAccessorMatchesParams) {
  const auto& fo = GetFrequencyOracle(GetParam());
  EXPECT_EQ(fo.CreateSketch({1.0, 17})->domain(), 17u);
}

INSTANTIATE_TEST_SUITE_P(AllOracles, FoBatchTest,
                         ::testing::Values("GRR", "OUE", "OLH", "SUE", "HR"));

// --- OLH deferred support resolution ---

TEST(OlhDeferredResolveTest, InterleavedEstimatesMatchEndToEndResolution) {
  // Resolution is pure bookkeeping (no RNG), so estimating mid-stream must
  // not change anything: two sketches fed the same 700-report stream agree
  // even when one of them resolves (via Estimate) after every 100 users.
  const auto& fo = GetFrequencyOracle("OLH");
  const std::size_t d = 16;
  Rng rng_a(99), rng_b(99);
  auto interleaved = fo.CreateSketch({1.0, d});
  auto end_to_end = fo.CreateSketch({1.0, d});
  Histogram scratch;
  for (int u = 0; u < 700; ++u) {
    const uint32_t v = static_cast<uint32_t>(u % d);
    interleaved->AddUser(v, rng_a);
    end_to_end->AddUser(v, rng_b);
    if (u % 100 == 99) interleaved->EstimateInto(&scratch);
  }
  EXPECT_EQ(interleaved->Estimate(), end_to_end->Estimate());
}

TEST(OlhDeferredResolveTest, ManyUsersCrossResolveBatchBoundaries) {
  // 1300 users crosses the internal resolve-batch size multiple times; the
  // estimate must still center on the (degenerate) truth.
  const auto& fo = GetFrequencyOracle("OLH");
  const std::size_t d = 4;
  Rng rng(3);
  auto sketch = fo.CreateSketch({1.0, d});
  for (int u = 0; u < 1300; ++u) sketch->AddUser(2, rng);
  const Histogram est = sketch->Estimate();
  EXPECT_NEAR(est[2], 1.0, 0.25);
  EXPECT_NEAR(est[0], 0.0, 0.25);
}

TEST(OlhDeferredResolveTest, EstimateIsIdempotent) {
  const auto& fo = GetFrequencyOracle("OLH");
  Rng rng(4);
  auto sketch = fo.CreateSketch({1.0, 8});
  for (int u = 0; u < 50; ++u) sketch->AddUser(static_cast<uint32_t>(u % 8), rng);
  const Histogram first = sketch->Estimate();
  const Histogram second = sketch->Estimate();
  EXPECT_EQ(first, second);
}

// --- Mixed ingestion ---

TEST(FoMixedIngestTest, MixedAddUserAndCohortAccumulate) {
  // AddUser and AddCohort commute into one sketch; num_users tracks both.
  const auto& fo = GetFrequencyOracle("OLH");
  const std::size_t d = 8;
  Rng rng(11);
  auto sketch = fo.CreateSketch({1.0, d});
  for (int u = 0; u < 20; ++u) sketch->AddUser(static_cast<uint32_t>(u % d), rng);
  Counts cohort(d, 50);
  sketch->AddCohort(cohort, rng);
  EXPECT_EQ(sketch->num_users(), 20u + 50u * d);
  const Histogram est = sketch->Estimate();
  double sum = 0.0;
  for (double f : est) sum += f;
  EXPECT_NEAR(sum, 1.0, 0.35);  // unbiased estimates sum near 1
}

}  // namespace
}  // namespace ldpids
