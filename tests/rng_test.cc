#include "util/rng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace ldpids {
namespace {

TEST(SplitMix64Test, AdvancesStateDeterministically) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, 42u);  // state moved
}

TEST(Mix64Test, IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  // Adjacent inputs should map far apart (avalanche sanity check).
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 1000; ++x) outputs.insert(Mix64(x));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(HashCounterTest, DistinguishesArgumentOrder) {
  EXPECT_NE(HashCounter(1, 2, 3), HashCounter(1, 3, 2));
  EXPECT_NE(HashCounter(1, 2, 3), HashCounter(2, 2, 3));
  EXPECT_EQ(HashCounter(9, 8, 7), HashCounter(9, 8, 7));
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  std::vector<double> xs(200000);
  for (double& x : xs) x = rng.NextDouble();
  EXPECT_TRUE(testing::MeanWithin(xs, 0.5)) << testing::SampleMean(xs);
  // Variance of U(0,1) is 1/12.
  EXPECT_NEAR(testing::SampleVariance(xs), 1.0 / 12.0, 0.002);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(13);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntIsUniform) {
  Rng rng(17);
  constexpr uint64_t kBound = 7;
  constexpr int kDraws = 140000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(kBound)];
  const double expected = static_cast<double>(kDraws) / kBound;
  for (uint64_t k = 0; k < kBound; ++k) {
    // 5-sigma binomial bound.
    const double sigma = std::sqrt(expected * (1.0 - 1.0 / kBound));
    EXPECT_NEAR(counts[k], expected, 5.0 * sigma) << "bucket " << k;
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  for (double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    int hits = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(p);
    const double sigma = std::sqrt(kDraws * std::max(p * (1 - p), 1e-12));
    EXPECT_NEAR(hits, p * kDraws, 5.0 * sigma + 1.0) << "p=" << p;
  }
}

TEST(RngTest, BernoulliEdgeCasesAreExact) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, ForkProducesIndependentLookingStream) {
  Rng parent(29);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.NextU64() == child.NextU64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng rng(31);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), std::numeric_limits<uint64_t>::max());
  (void)rng();
}

}  // namespace
}  // namespace ldpids
