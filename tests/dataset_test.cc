#include "stream/dataset.h"

#include <atomic>
#include <cstddef>

#include <gtest/gtest.h>

#include "datagen/csv_dataset.h"
#include "datagen/synthetic.h"
#include "util/thread_pool.h"

namespace ldpids {
namespace {

InMemoryDataset MakeFixture() {
  // 4 users, 3 timestamps, domain 3.
  return InMemoryDataset("fixture",
                         {{0, 1, 2},
                          {0, 1, 2},
                          {1, 2, 0},
                          {2, 2, 2}},
                         3);
}

TEST(StreamDatasetTest, TrueCountsMatchHandCount) {
  const auto data = MakeFixture();
  EXPECT_EQ(data.TrueCounts(0), (Counts{2, 1, 1}));
  EXPECT_EQ(data.TrueCounts(1), (Counts{0, 2, 2}));
  EXPECT_EQ(data.TrueCounts(2), (Counts{1, 0, 3}));
}

TEST(StreamDatasetTest, TrueCountsAreCachedAndStable) {
  const auto data = MakeFixture();
  const Counts& first = data.TrueCounts(1);
  const Counts& second = data.TrueCounts(1);
  EXPECT_EQ(&first, &second);  // same cached object
}

TEST(StreamDatasetTest, TrueFrequenciesNormalize) {
  const auto data = MakeFixture();
  const Histogram h = data.TrueFrequencies(0);
  EXPECT_DOUBLE_EQ(h[0], 0.5);
  EXPECT_DOUBLE_EQ(h[1], 0.25);
  EXPECT_DOUBLE_EQ(h[2], 0.25);
}

TEST(StreamDatasetTest, SubsetCountsConsistentWithValues) {
  const auto data = MakeFixture();
  const Counts sub = data.SubsetCounts({0, 3}, 2);
  EXPECT_EQ(sub, (Counts{0, 0, 2}));
  const Counts all = data.SubsetCounts({0, 1, 2, 3}, 0);
  EXPECT_EQ(all, data.TrueCounts(0));
}

TEST(StreamDatasetTest, TrueStreamCoversAllTimestamps) {
  const auto data = MakeFixture();
  const auto stream = data.TrueStream();
  ASSERT_EQ(stream.size(), 3u);
  EXPECT_EQ(stream[2][2], 0.75);
}

TEST(StreamDatasetTest, OutOfRangeTimestampThrows) {
  const auto data = MakeFixture();
  EXPECT_THROW(data.TrueCounts(3), std::out_of_range);
}

TEST(InMemoryDatasetTest, ValidatesInput) {
  EXPECT_THROW(InMemoryDataset("x", {}, 2), std::invalid_argument);
  EXPECT_THROW(InMemoryDataset("x", {{0, 1}, {0}}, 2), std::invalid_argument);
  EXPECT_THROW(InMemoryDataset("x", {{0, 2}}, 2), std::invalid_argument);
  EXPECT_THROW(InMemoryDataset("x", {{0, 1}}, 1), std::invalid_argument);
}

TEST(StreamDatasetTest, TrueCountsIsThreadSafeOnAColdCache) {
  // The parallel evaluation engine may hit a dataset's lazy count cache
  // from several threads before anything warmed it; first accesses must
  // fill slots exactly once and agree with a serially-warmed twin.
  const auto warm = MakeSinDataset(2000, 40, 0.05, 7);
  const auto cold = MakeSinDataset(2000, 40, 0.05, 7);
  for (std::size_t t = 0; t < warm->length(); ++t) warm->TrueCounts(t);
  std::atomic<int> mismatches{0};
  ParallelFor(8, 4 * cold->length(), [&](std::size_t i) {
    const std::size_t t = i % cold->length();
    if (cold->TrueCounts(t) != warm->TrueCounts(t)) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ldpids
