#include "analysis/roc.h"

#include <gtest/gtest.h>

namespace ldpids {
namespace {

TEST(RocTest, PerfectClassifierHasAucOne) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<bool> labels = {true, true, false, false};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 1.0);
}

TEST(RocTest, InvertedClassifierHasAucZero) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<bool> labels = {true, true, false, false};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.0);
}

TEST(RocTest, ConstantScoresGiveHalf) {
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const std::vector<bool> labels = {true, false, true, false};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.5);
}

TEST(RocTest, KnownMixedCase) {
  // scores: P=.9, N=.8, P=.7, N=.1 -> pairs: (.9>.8),(.9>.1),(.7<.8),(.7>.1)
  // AUC = 3/4.
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.1};
  const std::vector<bool> labels = {true, false, true, false};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.75);
}

TEST(RocTest, CurveEndpointsAndMonotonicity) {
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.4, 0.2};
  const std::vector<bool> labels = {true, false, true, false, false};
  const auto curve = ComputeRoc(scores, labels);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().false_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].false_positive_rate,
              curve[i - 1].false_positive_rate);
    EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
  }
}

TEST(RocTest, TiedScoresAreHandledAsOnePoint) {
  const std::vector<double> scores = {0.5, 0.5, 0.1};
  const std::vector<bool> labels = {true, false, false};
  const auto curve = ComputeRoc(scores, labels);
  // Points: (0,0), then the tie consumes one P and one N -> (0.5, 1.0),
  // then (1,1).
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[1].false_positive_rate, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].true_positive_rate, 1.0);
}

TEST(RocTest, TprAtFprInterpolates) {
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.4};
  const std::vector<bool> labels = {true, false, true, false};
  const auto curve = ComputeRoc(scores, labels);
  // At fpr=0 we already have tpr=0.5 (first positive outscores all).
  EXPECT_DOUBLE_EQ(TprAtFpr(curve, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(TprAtFpr(curve, 1.0), 1.0);
  const double mid = TprAtFpr(curve, 0.25);
  EXPECT_GE(mid, 0.5);
  EXPECT_LE(mid, 1.0);
}

TEST(RocTest, RequiresBothClasses) {
  EXPECT_THROW(ComputeRoc({0.1, 0.2}, {true, true}), std::invalid_argument);
  EXPECT_THROW(ComputeRoc({0.1, 0.2}, {false, false}),
               std::invalid_argument);
  EXPECT_THROW(ComputeRoc({}, {}), std::invalid_argument);
  EXPECT_THROW(ComputeRoc({0.1}, {true, false}), std::invalid_argument);
}

}  // namespace
}  // namespace ldpids
