// src/obs/ unit tests: counter/gauge/histogram semantics, log2 bucket
// boundaries, concurrent-increment exactness, snapshot isolation, the
// stats-struct feeds, and golden exposition output for both exporters.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "obs/stats_feed.h"

namespace ldpids::obs {
namespace {

TEST(CounterTest, AddAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c_total");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAddIncludingNegative) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("g");
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.value(), -3);
  g.Set(0);
  EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 is exactly v == 0; bucket k holds [2^(k-1), 2^k).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  for (std::size_t k = 1; k + 1 < Histogram::kNumBuckets; ++k) {
    EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << (k - 1)), k) << k;
    EXPECT_EQ(Histogram::BucketIndex((uint64_t{1} << k) - 1), k) << k;
  }
  // Everything at or above 2^(kNumBuckets-2) lands in the open top bucket.
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1}
                                   << (Histogram::kNumBuckets - 2)),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024u);
}

TEST(HistogramTest, ObserveFillsBucketsCountAndSum) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("h_ns");
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);
  h.Observe(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.bucket(0), 1u);   // 0
  EXPECT_EQ(h.bucket(1), 1u);   // 1 in [1,2)
  EXPECT_EQ(h.bucket(3), 1u);   // 5 in [4,8)
  EXPECT_EQ(h.bucket(10), 1u);  // 1000 in [512,1024)
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(HistogramTest, QuantileInterpolatesInsideOwningBucket) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("h_ns");
  MetricsSnapshot empty_snap = registry.Snapshot();
  EXPECT_EQ(empty_snap.FindHistogram("h_ns")->Quantile(0.5), 0u);

  h.Observe(0);
  h.Observe(0);
  MetricsSnapshot zeros = registry.Snapshot();
  EXPECT_EQ(zeros.FindHistogram("h_ns")->Quantile(0.99), 0u);

  Histogram& single = registry.GetHistogram("single_ns");
  single.Observe(1000);
  MetricsSnapshot snap = registry.Snapshot();
  // One observation in [512, 1024): any quantile interpolates to the
  // bucket's upper bound.
  EXPECT_EQ(snap.FindHistogram("single_ns")->Quantile(0.5), 1024u);
  // Quantiles are monotone in q.
  const HistogramSample* s = snap.FindHistogram("h_ns");
  EXPECT_LE(s->Quantile(0.0), s->Quantile(1.0));
}

TEST(RegistryTest, SameNameDifferentTypeThrows) {
  MetricsRegistry registry;
  registry.GetCounter("x_total");
  EXPECT_THROW(registry.GetGauge("x_total"), std::logic_error);
  EXPECT_THROW(registry.GetHistogram("x_total"), std::logic_error);
  // Same name + type is the same instance, not an error.
  EXPECT_EQ(&registry.GetCounter("x_total"), &registry.GetCounter("x_total"));
}

TEST(RegistryTest, LabelOrderIsCanonicalized) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("m_total", {{"b", "2"}, {"a", "1"}});
  Counter& b = registry.GetCounter("m_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
  a.Add(3);
  MetricsSnapshot snap = registry.Snapshot();
  const CounterSample* s =
      snap.FindCounter("m_total", {{"b", "2"}, {"a", "1"}});
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value, 3u);
}

TEST(RegistryTest, RenderLabelsEscapes) {
  EXPECT_EQ(RenderLabels({{"k", "a\"b\\c\nd"}}), "k=\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(RenderLabels({}), "");
  EXPECT_EQ(RenderLabels({{"a", "1"}, {"b", "2"}}), "a=\"1\",b=\"2\"");
}

TEST(RegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c_total");
  Histogram& h = registry.GetHistogram("h_ns");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.Add(1);
        h.Observe(static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // Threads 0..7 observe constants: 0 -> bucket 0, 1 -> bucket 1,
  // {2,3} -> bucket 2, {4..7} -> bucket 3.
  EXPECT_EQ(h.bucket(0), kPerThread);
  EXPECT_EQ(h.bucket(1), kPerThread);
  EXPECT_EQ(h.bucket(2), 2 * kPerThread);
  EXPECT_EQ(h.bucket(3), 4 * kPerThread);
}

TEST(RegistryTest, SnapshotIsIsolatedFromLaterWrites) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c_total");
  c.Add(5);
  const MetricsSnapshot before = registry.Snapshot();
  c.Add(100);
  registry.GetGauge("late_gauge").Set(1);
  const MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(before.FindCounter("c_total")->value, 5u);
  EXPECT_EQ(before.gauges.size(), 0u);
  EXPECT_EQ(after.FindCounter("c_total")->value, 105u);
  EXPECT_EQ(after.gauges.size(), 1u);
}

TEST(ExportTest, PrometheusGoldenOutput) {
  MetricsRegistry registry;
  registry.GetCounter("demo_requests_total", {{"code", "200"}}).Add(3);
  registry.GetCounter("demo_requests_total", {{"code", "500"}}).Add(1);
  registry.GetGauge("demo_pending").Set(-2);
  Histogram& h = registry.GetHistogram("demo_latency_ns");
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);
  h.Observe(1000);
  const std::string expected =
      "# TYPE demo_requests_total counter\n"
      "demo_requests_total{code=\"200\"} 3\n"
      "demo_requests_total{code=\"500\"} 1\n"
      "# TYPE demo_pending gauge\n"
      "demo_pending -2\n"
      "# TYPE demo_latency_ns histogram\n"
      "demo_latency_ns_bucket{le=\"0\"} 1\n"
      "demo_latency_ns_bucket{le=\"2\"} 2\n"
      "demo_latency_ns_bucket{le=\"8\"} 3\n"
      "demo_latency_ns_bucket{le=\"1024\"} 4\n"
      "demo_latency_ns_bucket{le=\"+Inf\"} 4\n"
      "demo_latency_ns_sum 1006\n"
      "demo_latency_ns_count 4\n";
  EXPECT_EQ(RenderPrometheus(registry.Snapshot()), expected);
}

TEST(ExportTest, JsonGoldenOutput) {
  MetricsRegistry registry;
  registry.GetCounter("demo_requests_total", {{"code", "200"}}).Add(3);
  registry.GetGauge("demo_pending").Set(-2);
  Histogram& h = registry.GetHistogram("demo_latency_ns");
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);
  h.Observe(1000);
  // Pin the scrape-ordering metadata so the golden stays deterministic
  // (live values are tested separately below).
  MetricsSnapshot snap = registry.Snapshot();
  snap.ts_unix_ms = 1754000000000;
  snap.seq = 7;
  // p50 rank 2 lands in [1,2) at its upper edge; p99 rank 4 in [512,1024).
  const std::string expected =
      "{\"ts_unix_ms\":1754000000000,\"seq\":7,"
      "\"counters\":["
      "{\"name\":\"demo_requests_total\",\"labels\":{\"code\":\"200\"},"
      "\"value\":3}"
      "],\"gauges\":["
      "{\"name\":\"demo_pending\",\"labels\":{},\"value\":-2}"
      "],\"histograms\":["
      "{\"name\":\"demo_latency_ns\",\"labels\":{},\"count\":4,"
      "\"sum_ns\":1006,\"p50_ns\":2,\"p99_ns\":1024,\"buckets\":["
      "{\"le_ns\":0,\"count\":1},{\"le_ns\":2,\"count\":1},"
      "{\"le_ns\":8,\"count\":1},{\"le_ns\":1024,\"count\":1}]}"
      "]}";
  EXPECT_EQ(RenderJson(snap), expected);
}

TEST(ExportTest, SnapshotsCarryOrderableTimestampAndSequence) {
  MetricsRegistry registry;
  registry.GetCounter("c_total").Add(1);
  const MetricsSnapshot a = registry.Snapshot();
  const MetricsSnapshot b = registry.Snapshot();
  EXPECT_EQ(a.seq, 1u);
  EXPECT_EQ(b.seq, 2u);
  EXPECT_GT(a.ts_unix_ms, 0u);
  EXPECT_LE(a.ts_unix_ms, b.ts_unix_ms);
  // The rendered document leads with the ordering metadata.
  const std::string json = RenderJson(a);
  EXPECT_EQ(json.rfind("{\"ts_unix_ms\":", 0), 0u);
  EXPECT_NE(json.find(",\"seq\":1,"), std::string::npos);
}

TEST(StageTraceTest, NullStageSetIsInertAndTimerRecords) {
  StageSet inert;
  EXPECT_FALSE(inert.enabled());
  inert.Record(Stage::kMerge, 123);  // must not crash

  MetricsRegistry registry;
  StageSet stages(&registry, "s0");
  EXPECT_TRUE(stages.enabled());
  { StageTimer timer(&stages, Stage::kEstimate); }
  stages.Record(Stage::kMerge, 77);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.histograms.size(), kNumStages);
  const HistogramSample* estimate = snap.FindHistogram(
      kStageDurationMetric, {{"stage", "estimate"}, {"session", "s0"}});
  ASSERT_NE(estimate, nullptr);
  EXPECT_EQ(estimate->count, 1u);
  const HistogramSample* merge = snap.FindHistogram(
      kStageDurationMetric, {{"stage", "merge"}, {"session", "s0"}});
  ASSERT_NE(merge, nullptr);
  EXPECT_EQ(merge->sum, 77u);
}

TEST(StageTraceTest, StageNamesAreCanonical) {
  EXPECT_STREQ(StageName(Stage::kAnnounce), "announce");
  EXPECT_STREQ(StageName(Stage::kTransportRtt), "transport_rtt");
  EXPECT_STREQ(StageName(Stage::kFrameDecode), "frame_decode");
  EXPECT_STREQ(StageName(Stage::kArenaDecode), "arena_decode");
  EXPECT_STREQ(StageName(Stage::kShardFold), "shard_fold");
  EXPECT_STREQ(StageName(Stage::kMerge), "merge");
  EXPECT_STREQ(StageName(Stage::kEstimate), "estimate");
  EXPECT_STREQ(StageName(Stage::kPostProcess), "post_process");
}

TEST(StatsFeedTest, FrameFeedAddAndIdempotentPublish) {
  MetricsRegistry registry;
  FrameStatsFeed feed(&registry, {{"session", "t"}});
  transport::FrameStats s;
  s.frames = 10;
  s.data_frames = 9;
  s.end_round_frames = 1;
  s.bytes = 480;
  s.checksum_mismatch = 2;
  s.skipped_bytes = 7;
  feed.Publish(s);
  feed.Publish(s);  // same cumulative snapshot: no double count
  s.frames = 12;
  s.data_frames = 11;
  s.bytes = 600;
  feed.Publish(s);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(
      snap.FindCounter("ldpids_frame_frames_total", {{"session", "t"}})->value,
      12u);
  EXPECT_EQ(snap.FindCounter("ldpids_frame_bytes_total", {{"session", "t"}})
                ->value,
            600u);
  EXPECT_EQ(snap.FindCounter("ldpids_frame_errors_total",
                             {{"session", "t"},
                              {"reason", "checksum_mismatch"}})
                ->value,
            2u);
  EXPECT_EQ(snap.FindCounter("ldpids_frame_errors_total",
                             {{"session", "t"}, {"reason", "bad_magic"}})
                ->value,
            0u);
}

TEST(StatsFeedTest, IngestFeedResultLabels) {
  MetricsRegistry registry;
  IngestStatsFeed feed(&registry);
  service::IngestStats s;
  s.accepted = 100;
  s.duplicate = 4;
  s.malformed = 1;
  feed.Add(s);
  feed.Add(s);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.FindCounter("ldpids_ingest_reports_total",
                             {{"result", "accepted"}})
                ->value,
            200u);
  EXPECT_EQ(snap.FindCounter("ldpids_ingest_reports_total",
                             {{"result", "duplicate"}})
                ->value,
            8u);
  EXPECT_EQ(snap.FindCounter("ldpids_ingest_reports_total",
                             {{"result", "sketch_rejected"}})
                ->value,
            0u);
}

TEST(StatsFeedTest, RoundBufferFeedPendingGaugeAndDropReasons) {
  MetricsRegistry registry;
  RoundBufferStatsFeed feed(&registry, {{"session", "rb"}});
  transport::RoundBufferStats s;
  s.buffered = 50;
  s.end_markers = 2;
  s.closed_round_drops = 3;
  s.rounds_drained = 2;
  s.packets_drained = 47;
  feed.Publish(s);
  feed.SetPending(5);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.FindCounter("ldpids_roundbuf_buffered_total",
                             {{"session", "rb"}})
                ->value,
            50u);
  EXPECT_EQ(snap.FindCounter("ldpids_roundbuf_drops_total",
                             {{"session", "rb"}, {"reason", "closed_round"}})
                ->value,
            3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "ldpids_roundbuf_pending_rounds");
  EXPECT_EQ(snap.gauges[0].value, 5);
}

}  // namespace
}  // namespace ldpids::obs
