// Rolling time-series and health-model tests. The clock is injected
// everywhere, so stalls are staged, not slept: a round that "hangs" is a
// BeginStage with the fake clock advanced past the stall threshold.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace ldpids::obs {
namespace {

constexpr uint64_t kSec = 1'000'000'000ull;

TEST(RateWindowTest, SlopeAcrossWindow) {
  RateWindow window(10 * kSec);
  EXPECT_EQ(window.RatePerSec(), 0.0);
  window.Observe(0, 0);
  EXPECT_EQ(window.RatePerSec(), 0.0);  // one sample: no slope yet
  window.Observe(2 * kSec, 100);
  EXPECT_DOUBLE_EQ(window.RatePerSec(), 50.0);
  window.Observe(4 * kSec, 400);
  EXPECT_DOUBLE_EQ(window.RatePerSec(), 100.0);
}

TEST(RateWindowTest, EvictsOldSamplesButKeepsTwo) {
  RateWindow window(5 * kSec);
  window.Observe(0, 0);
  window.Observe(1 * kSec, 10);
  window.Observe(20 * kSec, 200);
  // The t=0 sample is far outside the window; rate uses the survivors.
  EXPECT_GT(window.RatePerSec(), 0.0);
  EXPECT_LE(window.size(), 2u);
}

TEST(RateWindowTest, CounterResetReanchors) {
  RateWindow window(10 * kSec);
  window.Observe(0, 1000);
  window.Observe(1 * kSec, 2000);
  window.Observe(2 * kSec, 5);  // restart: cumulative fell
  EXPECT_EQ(window.RatePerSec(), 0.0);
  window.Observe(3 * kSec, 105);
  EXPECT_DOUBLE_EQ(window.RatePerSec(), 100.0);
}

TEST(DurationWindowTest, QuantilesAndEviction) {
  DurationWindow window(4);
  EXPECT_EQ(window.Quantile(0.99), 0u);
  for (uint64_t v : {10u, 20u, 30u, 40u}) window.Observe(v);
  EXPECT_EQ(window.Quantile(0.0), 10u);
  EXPECT_EQ(window.Quantile(0.5), 20u);
  EXPECT_EQ(window.Quantile(1.0), 40u);
  window.Observe(50);  // evicts 10
  EXPECT_EQ(window.size(), 4u);
  EXPECT_EQ(window.Quantile(0.0), 20u);
  EXPECT_EQ(window.Quantile(1.0), 50u);
}

TEST(TimeseriesTrackerTest, TracksCountersAcrossSnapshots) {
  MetricsRegistry registry;
  Counter& a =
      registry.GetCounter("reqs_total", {{"session", "a"}});
  Counter& b =
      registry.GetCounter("reqs_total", {{"session", "b"}});
  TimeseriesTracker tracker;

  a.Add(100);
  b.Add(10);
  tracker.Observe(registry.Snapshot(), 0);
  a.Add(100);
  b.Add(30);
  tracker.Observe(registry.Snapshot(), 1 * kSec);

  EXPECT_DOUBLE_EQ(tracker.RatePerSec("reqs_total", "session", "a"), 100.0);
  EXPECT_DOUBLE_EQ(tracker.RatePerSec("reqs_total", "session", "b"), 30.0);
  EXPECT_EQ(tracker.RatePerSec("reqs_total", "session", "zzz"), 0.0);
  EXPECT_EQ(tracker.RatePerSec("no_such_total"), 0.0);
}

// --- health model ---------------------------------------------------------

struct FakeClock {
  uint64_t now_ns = 0;
  std::function<uint64_t()> fn() {
    return [this] { return now_ns; };
  }
};

HealthOptions FastOptions(FakeClock* clock) {
  HealthOptions opts;
  opts.stall_multiplier = 4.0;
  opts.min_stall_ns = 1 * kSec;
  opts.min_rounds_for_silence = 3;
  opts.now = clock->fn();
  return opts;
}

// Feed `n` healthy rounds of ~100ms cadence ending at *t.
void FeedHealthyRounds(FlightRecorder* recorder, uint32_t track,
                       uint64_t* t, uint64_t start_round, uint64_t n) {
  for (uint64_t r = 0; r < n; ++r) {
    const uint64_t round = start_round + r;
    const uint64_t t0 = *t;
    recorder->Record(track, Stage::kAnnounce, round, t0, t0 + 1'000'000);
    recorder->Record(track, Stage::kTransportRtt, round, t0 + 1'000'000,
                     t0 + 60'000'000, 100, 0);
    recorder->Record(track, Stage::kEstimate, round, t0 + 60'000'000,
                     t0 + 80'000'000);
    recorder->Record(track, Stage::kPostProcess, round, t0 + 80'000'000,
                     t0 + 100'000'000);
    *t += 100'000'000;  // 100 ms cadence
  }
}

TEST(HealthModelTest, HealthySessionIsReady) {
  FlightRecorder recorder;
  const uint32_t track = recorder.RegisterTrack("s");
  FakeClock clock;
  MetricsRegistry registry;
  HealthModel model(&registry, &recorder, FastOptions(&clock));

  uint64_t t = 1 * kSec;
  FeedHealthyRounds(&recorder, track, &t, 0, 10);
  clock.now_ns = t;
  const HealthReport report = model.Update();
  EXPECT_TRUE(report.live);
  EXPECT_TRUE(report.ready);
  EXPECT_EQ(report.open_sessions, 1u);
  EXPECT_TRUE(report.stalls.empty());
  EXPECT_EQ(registry.GetGauge("ldpids_health_stalled_sessions").value(), 0);
  EXPECT_EQ(registry.GetGauge("ldpids_health_up").value(), 1);
}

TEST(HealthModelTest, InFlightStallFlipsHealthAndGauge) {
  FlightRecorder recorder;
  const uint32_t track = recorder.RegisterTrack("wedged");
  FakeClock clock;
  MetricsRegistry registry;
  HealthModel model(&registry, &recorder, FastOptions(&clock));

  uint64_t t = 1 * kSec;
  FeedHealthyRounds(&recorder, track, &t, 0, 10);

  // Round 10 enters transport and never finishes. Threshold is
  // max(1s floor, 4 x p99(~59ms)) = 1s.
  recorder.BeginStage(track, Stage::kTransportRtt, 10, t);
  clock.now_ns = t + 500'000'000;  // 0.5 s in: still fine
  EXPECT_TRUE(model.Update().ready);

  clock.now_ns = t + 3 * kSec;  // 3 s in: stalled
  const HealthReport report = model.Update();
  EXPECT_TRUE(report.live);
  EXPECT_FALSE(report.ready);
  ASSERT_FALSE(report.stalls.empty());
  EXPECT_EQ(report.stalls[0].session, "wedged");
  EXPECT_EQ(report.stalls[0].stage, "transport_rtt");
  EXPECT_EQ(report.stalls[0].round_index, 10u);
  EXPECT_GT(report.stalls[0].age_ns, report.stalls[0].threshold_ns);
  EXPECT_GT(registry.GetGauge("ldpids_health_stalled_sessions").value(), 0);
  EXPECT_EQ(registry.GetGauge("ldpids_health_up").value(), 0);

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"ready\":false"), std::string::npos);
  EXPECT_NE(json.find("\"session\":\"wedged\""), std::string::npos);

  // The stage completes after all: health recovers on the next update.
  recorder.Record(track, Stage::kTransportRtt, 10, t, clock.now_ns, 100, 0);
  clock.now_ns += 100'000'000;
  EXPECT_TRUE(model.Update().ready);
  EXPECT_EQ(registry.GetGauge("ldpids_health_stalled_sessions").value(), 0);
}

TEST(HealthModelTest, SilenceStallDetectedFromRoundCadence) {
  FlightRecorder recorder;
  const uint32_t track = recorder.RegisterTrack("silent");
  FakeClock clock;
  MetricsRegistry registry;
  HealthModel model(&registry, &recorder, FastOptions(&clock));

  uint64_t t = 1 * kSec;
  FeedHealthyRounds(&recorder, track, &t, 0, 10);
  clock.now_ns = t;
  EXPECT_TRUE(model.Update().ready);

  // No new rounds, no in-flight mark (the whole pipeline went quiet).
  clock.now_ns = t + 10 * kSec;
  const HealthReport report = model.Update();
  EXPECT_FALSE(report.ready);
  ASSERT_FALSE(report.stalls.empty());
  EXPECT_EQ(report.stalls[0].stage, "round_gap");
}

TEST(HealthModelTest, ClosedTrackIsNeverStalled) {
  FlightRecorder recorder;
  const uint32_t track = recorder.RegisterTrack("done");
  FakeClock clock;
  MetricsRegistry registry;
  HealthModel model(&registry, &recorder, FastOptions(&clock));

  uint64_t t = 1 * kSec;
  FeedHealthyRounds(&recorder, track, &t, 0, 10);
  recorder.BeginStage(track, Stage::kTransportRtt, 10, t);
  recorder.CloseTrack(track);  // session ended (clears the mark too)

  clock.now_ns = t + 100 * kSec;
  const HealthReport report = model.Update();
  EXPECT_TRUE(report.ready);
  EXPECT_EQ(report.open_sessions, 0u);
}

TEST(HealthModelTest, FreshTrackNeedsHistoryBeforeSilenceApplies) {
  FlightRecorder recorder;
  const uint32_t track = recorder.RegisterTrack("fresh");
  FakeClock clock;
  MetricsRegistry registry;
  HealthModel model(&registry, &recorder, FastOptions(&clock));

  // Two rounds (< min_rounds_for_silence), then a long quiet spell: a
  // session warming up must not be declared stalled by cadence.
  uint64_t t = 1 * kSec;
  FeedHealthyRounds(&recorder, track, &t, 0, 2);
  clock.now_ns = t + 100 * kSec;
  EXPECT_TRUE(model.Update().ready);
}

TEST(WatchdogTest, BackgroundPollerPublishesGauges) {
  FlightRecorder recorder;
  const uint32_t track = recorder.RegisterTrack("s");
  MetricsRegistry registry;
  // Real clock here: the watchdog just needs to run Update at least once.
  HealthModel model(&registry, &recorder, {});
  {
    Watchdog watchdog(&model, /*period_ms=*/10);
    recorder.Record(track, Stage::kMerge, 0, NowNs() - 1000, NowNs());
    const HealthReport report = model.LastReport();
    EXPECT_TRUE(report.live);
  }  // destructor joins promptly even with a long period
  EXPECT_EQ(registry.GetGauge("ldpids_health_up").value(), 1);
}

}  // namespace
}  // namespace ldpids::obs
