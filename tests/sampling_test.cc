#include "util/sampling.h"
#include <cmath>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ldpids {
namespace {

TEST(SampleFromPoolTest, RemovesRequestedCount) {
  Rng rng(1);
  std::vector<uint32_t> pool(100);
  std::iota(pool.begin(), pool.end(), 0u);
  const auto picked = SampleFromPool(rng, &pool, 30);
  EXPECT_EQ(picked.size(), 30u);
  EXPECT_EQ(pool.size(), 70u);
}

TEST(SampleFromPoolTest, PickedAndRemainingPartitionThePool) {
  Rng rng(2);
  std::vector<uint32_t> pool(200);
  std::iota(pool.begin(), pool.end(), 0u);
  const auto picked = SampleFromPool(rng, &pool, 77);
  std::set<uint32_t> all(picked.begin(), picked.end());
  all.insert(pool.begin(), pool.end());
  EXPECT_EQ(all.size(), 200u);  // no duplicates, no losses
}

TEST(SampleFromPoolTest, TakingMoreThanPoolTakesEverything) {
  Rng rng(3);
  std::vector<uint32_t> pool = {5, 6, 7};
  const auto picked = SampleFromPool(rng, &pool, 10);
  EXPECT_EQ(picked.size(), 3u);
  EXPECT_TRUE(pool.empty());
}

TEST(SampleFromPoolTest, ZeroCountTakesNothing) {
  Rng rng(4);
  std::vector<uint32_t> pool = {1, 2, 3};
  const auto picked = SampleFromPool(rng, &pool, 0);
  EXPECT_TRUE(picked.empty());
  EXPECT_EQ(pool.size(), 3u);
}

TEST(SampleFromPoolTest, SamplingIsUniform) {
  // Each of 20 elements should appear in a size-5 sample with probability
  // 1/4; over many trials the inclusion counts must concentrate.
  Rng rng(5);
  constexpr int kTrials = 40000;
  std::vector<int> inclusion(20, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<uint32_t> pool(20);
    std::iota(pool.begin(), pool.end(), 0u);
    for (uint32_t u : SampleFromPool(rng, &pool, 5)) ++inclusion[u];
  }
  const double expected = kTrials * 5.0 / 20.0;
  const double sigma = std::sqrt(kTrials * 0.25 * 0.75);
  for (int k = 0; k < 20; ++k) {
    EXPECT_NEAR(inclusion[k], expected, 5.0 * sigma) << "element " << k;
  }
}

TEST(SampleSubsetTest, ProducesDistinctElementsInRange) {
  Rng rng(6);
  const auto subset = SampleSubset(rng, 50, 20);
  EXPECT_EQ(subset.size(), 20u);
  std::set<uint32_t> unique(subset.begin(), subset.end());
  EXPECT_EQ(unique.size(), 20u);
  for (uint32_t u : subset) EXPECT_LT(u, 50u);
}

TEST(SampleSubsetTest, FullSubsetIsPermutation) {
  Rng rng(7);
  auto subset = SampleSubset(rng, 10, 10);
  std::sort(subset.begin(), subset.end());
  for (uint32_t k = 0; k < 10; ++k) EXPECT_EQ(subset[k], k);
}

}  // namespace
}  // namespace ldpids
