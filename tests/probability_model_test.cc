#include "datagen/probability_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ldpids {
namespace {

TEST(ReflectIntoUnitTest, InRangeUnchanged) {
  EXPECT_DOUBLE_EQ(ReflectIntoUnit(0.5), 0.5);
  EXPECT_DOUBLE_EQ(ReflectIntoUnit(kMinProb), kMinProb);
  EXPECT_DOUBLE_EQ(ReflectIntoUnit(kMaxProb), kMaxProb);
}

TEST(ReflectIntoUnitTest, ReflectsBelowAndAbove) {
  EXPECT_NEAR(ReflectIntoUnit(kMinProb - 0.01), kMinProb + 0.01, 1e-12);
  EXPECT_NEAR(ReflectIntoUnit(kMaxProb + 0.02), kMaxProb - 0.02, 1e-12);
  // Far excursions still land in range.
  EXPECT_GE(ReflectIntoUnit(-3.7), kMinProb);
  EXPECT_LE(ReflectIntoUnit(-3.7), kMaxProb);
  EXPECT_GE(ReflectIntoUnit(12.3), kMinProb);
  EXPECT_LE(ReflectIntoUnit(12.3), kMaxProb);
}

TEST(LnsSequenceTest, StartsNearP0AndStaysInRange) {
  const auto seq = GenerateLnsSequence(800, 0.05, 0.0025, 1);
  ASSERT_EQ(seq.size(), 800u);
  EXPECT_NEAR(seq[0], 0.05, 0.01);
  for (double p : seq) {
    EXPECT_GE(p, kMinProb);
    EXPECT_LE(p, kMaxProb);
  }
}

TEST(LnsSequenceTest, IsDeterministicPerSeed) {
  EXPECT_EQ(GenerateLnsSequence(100, 0.05, 0.0025, 7),
            GenerateLnsSequence(100, 0.05, 0.0025, 7));
  EXPECT_NE(GenerateLnsSequence(100, 0.05, 0.0025, 7),
            GenerateLnsSequence(100, 0.05, 0.0025, 8));
}

TEST(LnsSequenceTest, FluctuationGrowsWithQ) {
  // Total step-to-step movement must grow with sqrt(Q).
  auto total_move = [](const std::vector<double>& seq) {
    double total = 0.0;
    for (std::size_t t = 1; t < seq.size(); ++t) {
      total += std::fabs(seq[t] - seq[t - 1]);
    }
    return total;
  };
  const double small = total_move(GenerateLnsSequence(500, 0.3, 0.001, 3));
  const double large = total_move(GenerateLnsSequence(500, 0.3, 0.008, 3));
  EXPECT_GT(large, 3.0 * small);
}

TEST(LnsSequenceTest, ZeroNoiseIsConstant) {
  const auto seq = GenerateLnsSequence(50, 0.1, 0.0, 1);
  for (double p : seq) EXPECT_DOUBLE_EQ(p, 0.1);
  EXPECT_THROW(GenerateLnsSequence(10, 0.1, -0.1, 1), std::invalid_argument);
}

TEST(SinSequenceTest, MatchesClosedForm) {
  const auto seq = GenerateSinSequence(100, 0.05, 0.01, 0.075);
  for (std::size_t t = 0; t < seq.size(); ++t) {
    EXPECT_NEAR(seq[t], 0.05 * std::sin(0.01 * t) + 0.075, 1e-12);
  }
}

TEST(SinSequenceTest, RangeRespectsAmplitude) {
  const auto seq =
      GenerateSinSequence(2000, SinDefaults::kAmplitude, SinDefaults::kB,
                          SinDefaults::kOffset);
  for (double p : seq) {
    EXPECT_GE(p, SinDefaults::kOffset - SinDefaults::kAmplitude - 1e-12);
    EXPECT_LE(p, SinDefaults::kOffset + SinDefaults::kAmplitude + 1e-12);
  }
}

TEST(StepSequenceTest, AlternatesEverySegment) {
  const auto seq = GenerateStepSequence(10, 0.1, 0.6, 3);
  const std::vector<double> expected = {0.1, 0.1, 0.1, 0.6, 0.6,
                                        0.6, 0.1, 0.1, 0.1, 0.6};
  ASSERT_EQ(seq.size(), expected.size());
  for (std::size_t t = 0; t < seq.size(); ++t) {
    EXPECT_DOUBLE_EQ(seq[t], expected[t]) << "t=" << t;
  }
  EXPECT_THROW(GenerateStepSequence(10, 0.1, 0.6, 0), std::invalid_argument);
}

TEST(SpikeSequenceTest, BurstsHavePeakLevelAndRequestedLength) {
  const auto seq = GenerateSpikeSequence(500, 0.1, 0.5, 4, 0.05, 3);
  std::size_t burst_steps = 0;
  for (double p : seq) {
    EXPECT_TRUE(p == 0.1 || p == 0.5);
    burst_steps += (p == 0.5);
  }
  // Expect roughly rate * length * burst_length peak steps; loose bound.
  EXPECT_GT(burst_steps, 20u);
  EXPECT_LT(burst_steps, 250u);
  // Bursts come in runs of (at least) burst_length (runs can merge).
  for (std::size_t t = 1; t + 3 < seq.size(); ++t) {
    if (seq[t] == 0.5 && seq[t - 1] == 0.1) {
      EXPECT_EQ(seq[t + 1], 0.5) << "burst too short at " << t;
      EXPECT_EQ(seq[t + 2], 0.5) << "burst too short at " << t;
      EXPECT_EQ(seq[t + 3], 0.5) << "burst too short at " << t;
    }
  }
  EXPECT_THROW(GenerateSpikeSequence(10, 0.1, 0.5, 0, 0.1, 1),
               std::invalid_argument);
}

TEST(SpikeSequenceTest, ZeroRateIsFlat) {
  const auto seq = GenerateSpikeSequence(100, 0.2, 0.8, 3, 0.0, 1);
  for (double p : seq) EXPECT_DOUBLE_EQ(p, 0.2);
}

TEST(LogSequenceTest, IsMonotoneNondecreasingTowardsAmplitude) {
  const auto seq = GenerateLogSequence(3000, 0.25, 0.01);
  for (std::size_t t = 1; t < seq.size(); ++t) {
    EXPECT_GE(seq[t], seq[t - 1] - 1e-12);
  }
  EXPECT_NEAR(seq[0], 0.125, 1e-12);          // A / 2 at t = 0
  EXPECT_NEAR(seq.back(), 0.25, 1e-3);        // saturates at A
}

}  // namespace
}  // namespace ldpids
