// Tests for the mean-estimation extension (src/mean): Duchi's one-bit
// oracle, numeric stream datasets, and the w-event mean mechanisms.
#include "mean/mean_oracle.h"
#include "mean/mean_stream.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/rng.h"

namespace ldpids {
namespace {

TEST(MeanOracleTest, ConstructionValidation) {
  EXPECT_THROW(MeanOracle(0.0), std::invalid_argument);
  EXPECT_THROW(MeanOracle(-1.0), std::invalid_argument);
}

TEST(MeanOracleTest, ReportsAreTwoPoint) {
  const MeanOracle oracle(1.0);
  Rng rng(1);
  const double c = oracle.report_magnitude();
  for (int i = 0; i < 1000; ++i) {
    const double r = oracle.Perturb(0.3, rng);
    EXPECT_TRUE(r == c || r == -c);
  }
  const double e = std::exp(1.0);
  EXPECT_NEAR(c, (e + 1.0) / (e - 1.0), 1e-12);
}

TEST(MeanOracleTest, PerturbationIsUnbiasedAcrossInputs) {
  const MeanOracle oracle(1.0);
  Rng rng(2);
  for (double x : {-1.0, -0.5, 0.0, 0.3, 1.0}) {
    std::vector<double> reports(60000);
    for (double& r : reports) r = oracle.Perturb(x, rng);
    EXPECT_TRUE(testing::MeanWithin(reports, x, 5.5))
        << "x=" << x << " mean=" << testing::SampleMean(reports);
  }
}

TEST(MeanOracleTest, VarianceMatchesClosedForm) {
  const MeanOracle oracle(0.8);
  Rng rng(3);
  const double x = 0.4;
  std::vector<double> reports(80000);
  for (double& r : reports) r = oracle.Perturb(x, rng);
  const double c = oracle.report_magnitude();
  EXPECT_NEAR(testing::SampleVariance(reports), c * c - x * x,
              0.05 * (c * c));
}

TEST(MeanOracleTest, EmpiricalLdpGuarantee) {
  // Two-point output: the likelihood ratio between the extreme inputs
  // x = 1 and x = -1 must be exactly e^eps on each output.
  const double eps = 1.3;
  const MeanOracle oracle(eps);
  const double c = oracle.report_magnitude();
  // P[+C | x] = 1/2 + x/(2C); ratio at x=1 vs x=-1:
  const double p_hi = 0.5 + 1.0 / (2.0 * c);
  const double p_lo = 0.5 - 1.0 / (2.0 * c);
  EXPECT_NEAR(p_hi / p_lo, std::exp(eps), 1e-9 * std::exp(eps));
}

TEST(MeanOracleTest, OutOfRangeValuesAreClamped) {
  const MeanOracle oracle(1.0);
  Rng rng(4);
  std::vector<double> reports(40000);
  for (double& r : reports) r = oracle.Perturb(5.0, rng);  // clamp to 1
  EXPECT_TRUE(testing::MeanWithin(reports, 1.0, 5.5));
}

TEST(MeanAccumulatorTest, AveragesReports) {
  MeanAccumulator acc;
  EXPECT_THROW(acc.Estimate(), std::logic_error);
  acc.Consume(1.0);
  acc.Consume(3.0);
  EXPECT_DOUBLE_EQ(acc.Estimate(), 2.0);
  EXPECT_EQ(acc.num_reports(), 2u);
}

TEST(NumericDatasetTest, ValuesInRangeAndDeterministic) {
  const auto data = MakeNumericSineDataset(500, 40);
  for (uint64_t u = 0; u < 50; ++u) {
    for (std::size_t t = 0; t < data->length(); t += 7) {
      const double v = data->value(u, t);
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
      EXPECT_DOUBLE_EQ(v, data->value(u, t));
    }
  }
}

TEST(NumericDatasetTest, TrueMeanTracksBaseSeries) {
  // Personal offsets are symmetric, so the population mean approximates
  // the base sine series.
  const auto data = MakeNumericSineDataset(100000, 30, 0.2, 0.3, 5);
  for (std::size_t t = 0; t < data->length(); t += 5) {
    const double base = 0.6 * std::sin(0.2 * static_cast<double>(t)) +
                        0.2 * std::sin(0.31 * 0.2 * static_cast<double>(t));
    EXPECT_NEAR(data->TrueMean(t), base, 0.02) << "t=" << t;
  }
}

TEST(MeanMechanismTest, FactoryAndValidation) {
  for (const std::string& name : AllMeanMechanismNames()) {
    EXPECT_NO_THROW(CreateMeanMechanism(name, 1.0, 10, 1000));
  }
  EXPECT_THROW(CreateMeanMechanism("nope", 1.0, 10, 1000),
               std::invalid_argument);
  EXPECT_THROW(CreateMeanMechanism("MeanLBU", 0.0, 10, 1000),
               std::invalid_argument);
  EXPECT_THROW(CreateMeanMechanism("MeanLPA", 1.0, 10, 15),
               std::invalid_argument);
}

TEST(MeanMechanismTest, RunShapesAndSequentiality) {
  const auto data = MakeNumericSineDataset(2000, 30);
  auto m = CreateMeanMechanism("MeanLPU", 1.0, 10, data->num_users());
  const MeanRunResult run = m->Run(*data);
  EXPECT_EQ(run.releases.size(), 30u);
  EXPECT_EQ(run.num_publications, 30u);
  EXPECT_DOUBLE_EQ(run.Cfpu(), 0.1);
  auto m2 = CreateMeanMechanism("MeanLPU", 1.0, 10, data->num_users());
  m2->Step(*data, 0);
  EXPECT_THROW(m2->Step(*data, 2), std::logic_error);
}

TEST(MeanMechanismTest, ReleasesTrackTheTrueMean) {
  const auto data = MakeNumericSineDataset(50000, 60, 0.1);
  for (const std::string& name : AllMeanMechanismNames()) {
    auto m = CreateMeanMechanism(name, 1.0, 10, data->num_users());
    const MeanRunResult run = m->Run(*data);
    double mae = 0.0;
    for (std::size_t t = 0; t < run.releases.size(); ++t) {
      mae += std::fabs(run.releases[t] - data->TrueMean(t));
    }
    mae /= static_cast<double>(run.releases.size());
    EXPECT_LT(mae, 0.25) << name;
  }
}

TEST(MeanMechanismTest, PopulationDivisionBeatsBudgetDivision) {
  // Theorem 6.1's phenomenon carries over to mean estimation.
  const auto data = MakeNumericSineDataset(40000, 80, 0.08);
  auto mse_of = [&](const std::string& name) {
    auto m = CreateMeanMechanism(name, 1.0, 20, data->num_users());
    const MeanRunResult run = m->Run(*data);
    double mse = 0.0;
    for (std::size_t t = 0; t < run.releases.size(); ++t) {
      const double diff = run.releases[t] - data->TrueMean(t);
      mse += diff * diff;
    }
    return mse / static_cast<double>(run.releases.size());
  };
  const double lbu = mse_of("MeanLBU");
  const double lpu = mse_of("MeanLPU");
  const double lpa = mse_of("MeanLPA");
  EXPECT_LT(lpu, lbu);
  EXPECT_LT(lpa, lbu);
}

TEST(MeanMechanismTest, AdaptiveSavesCommunication) {
  const auto data = MakeNumericSineDataset(40000, 100, 0.02);  // slow drift
  auto lpa = CreateMeanMechanism("MeanLPA", 1.0, 20, data->num_users());
  const MeanRunResult run = lpa->Run(*data);
  // Must publish sometimes but clearly less than every timestamp, and the
  // CFPU must stay at or below the uniform 1/w.
  EXPECT_GT(run.num_publications, 0u);
  EXPECT_LT(run.num_publications, run.timestamps);
  EXPECT_LE(run.Cfpu(), 1.0 / 20.0 + 1e-9);
}

TEST(MeanMechanismTest, LongRunKeepsParticipationInvariant) {
  const auto data = MakeNumericSineDataset(4000, 300, 0.05);
  auto lpa = CreateMeanMechanism("MeanLPA", 1.0, 10, data->num_users());
  EXPECT_NO_THROW(lpa->Run(*data));
}

}  // namespace
}  // namespace ldpids
