#include "datagen/realworld_sim.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/histogram.h"

namespace ldpids {
namespace {

TEST(RealWorldSimTest, PaperShapesAtFullScale) {
  RealWorldSimOptions o;
  const auto taxi = MakeTaxiLikeDataset(o);
  EXPECT_EQ(taxi->name(), "Taxi");
  EXPECT_EQ(taxi->num_users(), 10357u);
  EXPECT_EQ(taxi->length(), 886u);
  EXPECT_EQ(taxi->domain(), 5u);

  const auto foursquare = MakeFoursquareLikeDataset(o);
  EXPECT_EQ(foursquare->num_users(), 265149u);
  EXPECT_EQ(foursquare->length(), 447u);
  EXPECT_EQ(foursquare->domain(), 77u);

  const auto taobao = MakeTaobaoLikeDataset(o);
  EXPECT_EQ(taobao->num_users(), 1023154u);
  EXPECT_EQ(taobao->length(), 432u);
  EXPECT_EQ(taobao->domain(), 117u);
}

TEST(RealWorldSimTest, ScaleShrinksUsersAndLength) {
  RealWorldSimOptions o;
  o.scale = 0.1;
  const auto taxi = MakeTaxiLikeDataset(o);
  EXPECT_EQ(taxi->num_users(), 1035u);
  EXPECT_EQ(taxi->length(), 88u);
  EXPECT_EQ(taxi->domain(), 5u);  // domain never scales
}

TEST(RealWorldSimTest, DistributionsAreSkewed) {
  RealWorldSimOptions o;
  o.scale = 0.05;
  const auto data = MakeFoursquareLikeDataset(o);
  // Max bin clearly above uniform at every timestamp.
  for (std::size_t t = 0; t < data->length(); t += 5) {
    const Histogram pi = data->DistributionAt(t);
    const double top = *std::max_element(pi.begin(), pi.end());
    EXPECT_GT(top, 3.0 / static_cast<double>(pi.size())) << "t=" << t;
  }
}

TEST(RealWorldSimTest, ConsecutiveDistributionsAreClose) {
  // Temporal smoothness: streams must be autocorrelated, otherwise the
  // adaptive mechanisms have nothing to exploit.
  RealWorldSimOptions o;
  o.scale = 0.05;
  const auto data = MakeTaobaoLikeDataset(o);
  double total_l1 = 0.0;
  std::size_t steps = 0;
  for (std::size_t t = 1; t < data->length(); ++t) {
    total_l1 += L1Distance(data->DistributionAt(t - 1),
                           data->DistributionAt(t));
    ++steps;
  }
  EXPECT_LT(total_l1 / static_cast<double>(steps), 0.25);
}

TEST(RealWorldSimTest, DeterministicPerSeed) {
  RealWorldSimOptions a;
  a.scale = 0.02;
  RealWorldSimOptions b = a;
  const auto d1 = MakeTaxiLikeDataset(a);
  const auto d2 = MakeTaxiLikeDataset(b);
  for (std::size_t t = 0; t < d1->length(); ++t) {
    EXPECT_EQ(d1->DistributionAt(t), d2->DistributionAt(t));
  }
  b.seed = 999;
  const auto d3 = MakeTaxiLikeDataset(b);
  EXPECT_NE(d1->DistributionAt(0), d3->DistributionAt(0));
}

TEST(RealWorldSimTest, GenericBuilderRespectsArguments) {
  RealWorldSimOptions o;
  const auto data =
      MakeDriftingZipfDataset("custom", 500, 40, 9, /*per_day=*/8, o);
  EXPECT_EQ(data->name(), "custom");
  EXPECT_EQ(data->num_users(), 500u);
  EXPECT_EQ(data->length(), 40u);
  EXPECT_EQ(data->domain(), 9u);
}

TEST(RealWorldSimTest, SpikesCreateBursts) {
  // With aggressive spike settings, the max-bin series must show clearly
  // more dynamic range than with spikes disabled.
  RealWorldSimOptions calm;
  calm.scale = 0.05;
  calm.spike_probability = 0.0;
  calm.drift_stddev = 0.0;
  calm.daily_amplitude = 0.0;
  RealWorldSimOptions bursty = calm;
  bursty.spike_probability = 0.2;
  bursty.spike_magnitude = 2.0;

  auto range = [](const DistributionSequenceDataset& d) {
    double lo = 1.0, hi = 0.0;
    for (std::size_t t = 0; t < d.length(); ++t) {
      const Histogram pi = d.DistributionAt(t);
      const double top = *std::max_element(pi.begin(), pi.end());
      lo = std::min(lo, top);
      hi = std::max(hi, top);
    }
    return hi - lo;
  };
  const auto d_calm = MakeTaobaoLikeDataset(calm);
  const auto d_bursty = MakeTaobaoLikeDataset(bursty);
  EXPECT_GT(range(*d_bursty), range(*d_calm) + 0.01);
}

}  // namespace
}  // namespace ldpids
