// U64Set (the ingest shards' flat nonce filter) against std::unordered_set
// as the semantic reference, across growth, collisions and the zero-key
// sentinel.
#include <cstdint>
#include <unordered_set>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/u64_set.h"

namespace ldpids {
namespace {

TEST(U64SetTest, MatchesUnorderedSetOverRandomWorkload) {
  Rng rng(404);
  U64Set set;
  std::unordered_set<uint64_t> reference;
  for (int op = 0; op < 20000; ++op) {
    // Small key pool so lookups hit often; includes 0 (the slot sentinel).
    const uint64_t key = rng.UniformInt(4096);
    ASSERT_EQ(set.Contains(key), reference.count(key) != 0) << "op " << op;
    if (rng.Bernoulli(0.7)) {
      set.Insert(key);
      reference.insert(key);
      ASSERT_TRUE(set.Contains(key));
    }
    ASSERT_EQ(set.size(), reference.size());
  }
}

TEST(U64SetTest, ZeroKeyAndReinsertion) {
  U64Set set;
  EXPECT_FALSE(set.Contains(0));
  set.Insert(0);
  EXPECT_TRUE(set.Contains(0));
  EXPECT_EQ(set.size(), 1u);
  set.Insert(0);  // no-op
  EXPECT_EQ(set.size(), 1u);
  set.Insert(7);
  set.Insert(7);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(7));
  EXPECT_FALSE(set.Contains(8));
}

TEST(U64SetTest, SurvivesAdversariallySequentialKeys) {
  // Sequential nonces are the common case on the wire; Mix64 scattering
  // must keep probes short and membership exact through many growths.
  U64Set set;
  for (uint64_t i = 1; i <= 100000; ++i) set.Insert(i);
  EXPECT_EQ(set.size(), 100000u);
  for (uint64_t i = 1; i <= 100000; i += 997) EXPECT_TRUE(set.Contains(i));
  EXPECT_FALSE(set.Contains(100001));
  EXPECT_FALSE(set.Contains(0));
}

}  // namespace
}  // namespace ldpids
