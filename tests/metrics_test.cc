#include "analysis/metrics.h"

#include <gtest/gtest.h>

namespace ldpids {
namespace {

std::vector<Histogram> Truth() {
  return {{0.5, 0.5}, {0.2, 0.8}};
}

TEST(MetricsTest, PerfectReleaseScoresZero) {
  EXPECT_DOUBLE_EQ(MeanRelativeError(Truth(), Truth()), 0.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(Truth(), Truth()), 0.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError(Truth(), Truth()), 0.0);
}

TEST(MetricsTest, MaeMatchesHandComputation) {
  const std::vector<Histogram> released = {{0.6, 0.4}, {0.2, 0.8}};
  // Errors: 0.1, 0.1, 0, 0 over 4 cells -> 0.05.
  EXPECT_NEAR(MeanAbsoluteError(Truth(), released), 0.05, 1e-12);
}

TEST(MetricsTest, MseMatchesHandComputation) {
  const std::vector<Histogram> released = {{0.6, 0.4}, {0.2, 0.8}};
  // (0.01 + 0.01) / 4 = 0.005.
  EXPECT_NEAR(MeanSquaredError(Truth(), released), 0.005, 1e-12);
}

TEST(MetricsTest, MreDividesByTrueFrequency) {
  const std::vector<Histogram> truth = {{0.5, 0.5}};
  const std::vector<Histogram> released = {{0.6, 0.4}};
  // |0.1|/0.5 twice, averaged -> 0.2.
  EXPECT_NEAR(MeanRelativeError(truth, released), 0.2, 1e-12);
}

TEST(MetricsTest, MreFloorGuardsEmptyBins) {
  const std::vector<Histogram> truth = {{0.0, 1.0}};
  const std::vector<Histogram> released = {{0.05, 1.0}};
  // Bin 0: |0.05| / max(0, 0.01) = 5; bin 1: 0 -> mean 2.5.
  EXPECT_NEAR(MeanRelativeError(truth, released, 0.01), 2.5, 1e-12);
  // With a larger floor the error shrinks.
  EXPECT_NEAR(MeanRelativeError(truth, released, 0.1), 0.25, 1e-12);
}

TEST(MetricsTest, RejectsMisalignedStreams) {
  const std::vector<Histogram> short_release = {{0.5, 0.5}};
  EXPECT_THROW(MeanAbsoluteError(Truth(), short_release),
               std::invalid_argument);
  const std::vector<Histogram> wrong_domain = {{0.5, 0.4, 0.1}, {0.2, 0.8}};
  EXPECT_THROW(MeanAbsoluteError(Truth(), wrong_domain),
               std::invalid_argument);
  EXPECT_THROW(MeanAbsoluteError({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace ldpids
