#include "analysis/topk.h"

#include <gtest/gtest.h>

#include "analysis/runner.h"
#include "datagen/realworld_sim.h"

namespace ldpids {
namespace {

TEST(TopKIndicesTest, OrdersByFrequency) {
  const Histogram h = {0.1, 0.4, 0.2, 0.3};
  EXPECT_EQ(TopKIndices(h, 2), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(TopKIndices(h, 4), (std::vector<std::size_t>{1, 3, 2, 0}));
}

TEST(TopKIndicesTest, ClampsKAndBreaksTiesDeterministically) {
  const Histogram h = {0.5, 0.5};
  EXPECT_EQ(TopKIndices(h, 10), (std::vector<std::size_t>{0, 1}));
  const Histogram tied = {0.3, 0.3, 0.4};
  EXPECT_EQ(TopKIndices(tied, 2), (std::vector<std::size_t>{2, 0}));
}

TEST(TopKPrecisionTest, PerfectAndDisjoint) {
  const Histogram truth = {0.4, 0.3, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(TopKPrecision(truth, truth, 2), 1.0);
  const Histogram inverted = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(TopKPrecision(truth, inverted, 2), 0.0);
}

TEST(TopKPrecisionTest, PartialOverlap) {
  const Histogram truth = {0.4, 0.3, 0.2, 0.1};     // top-2 = {0, 1}
  const Histogram released = {0.4, 0.1, 0.3, 0.2};  // top-2 = {0, 2}
  EXPECT_DOUBLE_EQ(TopKPrecision(truth, released, 2), 0.5);
}

TEST(TopKPrecisionTest, Validation) {
  EXPECT_THROW(TopKPrecision({0.5, 0.5}, {1.0}, 1), std::invalid_argument);
}

TEST(TopKNcrTest, WeightsHigherRanksMore) {
  const Histogram truth = {0.4, 0.3, 0.2, 0.1};  // weights 0:2, 1:1 for k=2
  // Released top-2 = {0, 3}: recovers weight 2 of 3.
  const Histogram miss_second = {0.4, 0.0, 0.1, 0.3};
  EXPECT_NEAR(TopKNcr(truth, miss_second, 2), 2.0 / 3.0, 1e-12);
  // Released top-2 = {1, 3}: recovers weight 1 of 3.
  const Histogram miss_first = {0.0, 0.4, 0.1, 0.3};
  EXPECT_NEAR(TopKNcr(truth, miss_first, 2), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(TopKNcr(truth, truth, 2), 1.0);
}

TEST(StreamTopKPrecisionTest, AveragesAcrossTimestamps) {
  const std::vector<Histogram> truth = {{0.6, 0.4}, {0.3, 0.7}};
  const std::vector<Histogram> released = {{0.6, 0.4}, {0.8, 0.2}};
  // t=0 top-1 match (1.0), t=1 mismatch (0.0) -> 0.5.
  EXPECT_DOUBLE_EQ(StreamTopKPrecision(truth, released, 1), 0.5);
}

TEST(StreamTopKPrecisionTest, PopulationDivisionPreservesHeavyHitters) {
  // End-to-end: on a skewed categorical stream, LPA's releases should keep
  // most of the true top-5 most of the time, and clearly beat LBU's.
  RealWorldSimOptions o;
  o.scale = 0.2;
  const auto data = MakeFoursquareLikeDataset(o);  // N ~ 53k, d = 77
  const auto truth = data->TrueStream();
  MechanismConfig c;
  c.epsilon = 1.0;
  c.window = 10;
  c.fo = "OUE";  // the right oracle for a large domain
  const auto lpa = RunMechanism(*data, "LPA", c);
  const auto lbu = RunMechanism(*data, "LBU", c);
  const double p_lpa = StreamTopKPrecision(truth, lpa.releases, 3);
  const double p_lbu = StreamTopKPrecision(truth, lbu.releases, 3);
  EXPECT_GT(p_lpa, p_lbu + 0.1);
  EXPECT_GT(p_lpa, 0.5);
}

}  // namespace
}  // namespace ldpids
