#include "cdp/baselines.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "analysis/runner.h"
#include "cdp/laplace.h"
#include "datagen/synthetic.h"
#include "test_util.h"
#include "util/rng.h"

namespace ldpids {
namespace {

TEST(LaplaceMechanismTest, PerturbationIsUnbiasedWithKnownVariance) {
  Rng rng(1);
  const Histogram c = {0.3, 0.7};
  const double eps = 0.5;
  const uint64_t n = 1000;
  std::vector<double> bin0;
  for (int rep = 0; rep < 50000; ++rep) {
    bin0.push_back(LaplacePerturbHistogram(c, eps, n, 2.0, rng)[0]);
  }
  EXPECT_TRUE(testing::MeanWithin(bin0, 0.3));
  EXPECT_NEAR(testing::SampleVariance(bin0), LaplaceVariance(eps, n, 2.0),
              LaplaceVariance(eps, n, 2.0) * 0.1);
}

TEST(LaplaceMechanismTest, InputValidation) {
  Rng rng(2);
  EXPECT_THROW(LaplacePerturbHistogram({0.5}, 0.0, 10, 1.0, rng),
               std::invalid_argument);
  EXPECT_THROW(LaplacePerturbHistogram({0.5}, 1.0, 0, 1.0, rng),
               std::invalid_argument);
}

CdpConfig SmallCdpConfig() {
  CdpConfig c;
  c.epsilon = 1.0;
  c.window = 10;
  c.num_users = 20000;
  c.seed = 3;
  return c;
}

std::vector<Histogram> SmallTrueStream(std::size_t length = 80) {
  const auto data = MakeLnsDataset(20000, length, 0.0025, 17);
  return data->TrueStream();
}

TEST(CdpFactoryTest, CreatesAllMethods) {
  for (const std::string name : {"Uniform", "Sampling", "BD", "BA"}) {
    EXPECT_NO_THROW(CreateCdpMechanism(name, SmallCdpConfig())) << name;
  }
  EXPECT_THROW(CreateCdpMechanism("nope", SmallCdpConfig()),
               std::invalid_argument);
}

TEST(CdpMechanismTest, RunReleasesMatchStreamShape) {
  const auto stream = SmallTrueStream();
  for (const std::string name : {"Uniform", "Sampling", "BD", "BA"}) {
    auto m = CreateCdpMechanism(name, SmallCdpConfig());
    const auto releases = m->Run(stream);
    ASSERT_EQ(releases.size(), stream.size()) << name;
    for (const auto& r : releases) ASSERT_EQ(r.size(), 2u) << name;
    // CDP at n=20k is accurate: MAE well under 5%.
    EXPECT_LT(MeanAbsoluteError(stream, releases), 0.05) << name;
  }
}

TEST(CdpMechanismTest, AdaptiveBeatsUniformOnQuietStreams) {
  // On a static stream BD/BA approximate almost always and beat Uniform.
  const std::vector<Histogram> stream(100, Histogram{0.8, 0.2});
  auto uniform = CreateCdpMechanism("Uniform", SmallCdpConfig());
  auto ba = CreateCdpMechanism("BA", SmallCdpConfig());
  const double mse_uniform = MeanSquaredError(stream, uniform->Run(stream));
  const double mse_ba = MeanSquaredError(stream, ba->Run(stream));
  EXPECT_LT(mse_ba, mse_uniform);
}

TEST(CdpMechanismTest, DomainChangeMidStreamThrows) {
  auto m = CreateCdpMechanism("Uniform", SmallCdpConfig());
  m->Step({0.5, 0.5});
  EXPECT_THROW(m->Step({0.3, 0.3, 0.4}), std::invalid_argument);
}

// The motivating gap (paper Sections 1-2): with the same eps and w, CDP
// budget division hugely outperforms LDP budget division — this is why
// population division is needed at all.
TEST(CdpLdpGapTest, CdpUniformBeatsLdpUniform) {
  const auto data = MakeLnsDataset(20000, 80, 0.0025, 17);
  const auto truth = data->TrueStream();

  CdpConfig cdp = SmallCdpConfig();
  auto cdp_uniform = CreateCdpMechanism("Uniform", cdp);
  const double mse_cdp = MeanSquaredError(truth, cdp_uniform->Run(truth));

  MechanismConfig ldp;
  ldp.epsilon = 1.0;
  ldp.window = 10;
  ldp.fo = "GRR";
  const auto lbu = EvaluateMechanism(*data, "LBU", ldp, 2);
  EXPECT_LT(mse_cdp, lbu.mse / 10.0);
}

}  // namespace
}  // namespace ldpids
