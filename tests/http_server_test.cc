// Embedded HTTP scrape server tests: parser negatives and random-slice
// fuzzing (hostile bytes must yield typed results, never a crash), server
// behavior over real loopback sockets (404/405/400/431, keep-alive,
// pipelining, abrupt client close), concurrent scrapes, and the
// load-bearing integration property — scraping a serving session from
// multiple threads leaves its release stream bit-identical.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "obs/flight_recorder.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/scrape_endpoint.h"
#include "service/client_fleet.h"
#include "service/session.h"
#include "util/rng.h"

namespace ldpids {
namespace {

using obs::HttpParseResult;
using obs::HttpRequest;
using obs::HttpResponse;
using obs::HttpServer;
using obs::ParseHttpRequest;

HttpParseResult Parse(const std::string& raw, HttpRequest* req = nullptr,
                      std::size_t* consumed = nullptr) {
  HttpRequest local_req;
  std::size_t local_consumed = 0;
  return ParseHttpRequest(reinterpret_cast<const uint8_t*>(raw.data()),
                          raw.size(), req != nullptr ? req : &local_req,
                          consumed != nullptr ? consumed : &local_consumed);
}

// --- parser ---------------------------------------------------------------

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequest req;
  std::size_t consumed = 0;
  const std::string raw = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(Parse(raw, &req, &consumed), HttpParseResult::kOk);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/metrics");
  EXPECT_EQ(req.query, "");
  EXPECT_TRUE(req.keep_alive);
  EXPECT_EQ(consumed, raw.size());
}

TEST(HttpParserTest, SplitsQueryAndHonorsConnectionHeader) {
  HttpRequest req;
  ASSERT_EQ(Parse("GET /healthz?verbose=1 HTTP/1.1\r\n"
                  "Connection: close\r\n\r\n",
                  &req),
            HttpParseResult::kOk);
  EXPECT_EQ(req.path, "/healthz");
  EXPECT_EQ(req.query, "verbose=1");
  EXPECT_FALSE(req.keep_alive);
}

TEST(HttpParserTest, Http10DefaultsToClose) {
  HttpRequest req;
  ASSERT_EQ(Parse("GET / HTTP/1.0\r\n\r\n", &req), HttpParseResult::kOk);
  EXPECT_FALSE(req.keep_alive);
}

TEST(HttpParserTest, IncompleteNeedsMore) {
  EXPECT_EQ(Parse(""), HttpParseResult::kNeedMore);
  EXPECT_EQ(Parse("GET"), HttpParseResult::kNeedMore);
  EXPECT_EQ(Parse("GET /metrics HTTP/1.1\r\n"), HttpParseResult::kNeedMore);
  EXPECT_EQ(Parse("GET /metrics HTTP/1.1\r\nHost: x\r\n"),
            HttpParseResult::kNeedMore);
}

TEST(HttpParserTest, MalformedIsBadNotCrash) {
  EXPECT_EQ(Parse("\r\n\r\n"), HttpParseResult::kBad);
  EXPECT_EQ(Parse("GET\r\n\r\n"), HttpParseResult::kBad);
  EXPECT_EQ(Parse("GET /\r\n\r\n"), HttpParseResult::kBad);  // no version
  EXPECT_EQ(Parse("GET / HTTP/2.0\r\n\r\n"), HttpParseResult::kBad);
  EXPECT_EQ(Parse("GET metrics HTTP/1.1\r\n\r\n"), HttpParseResult::kBad);
  EXPECT_EQ(Parse("G\x01T / HTTP/1.1\r\n\r\n"), HttpParseResult::kBad);
  EXPECT_EQ(Parse(std::string("GET /\x00x HTTP/1.1\r\n\r\n", 20)),
            HttpParseResult::kBad);
}

TEST(HttpParserTest, BodiesAreRejected) {
  EXPECT_EQ(Parse("GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"),
            HttpParseResult::kBad);
  EXPECT_EQ(Parse("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            HttpParseResult::kBad);
  // An explicit zero-length body is tolerated (curl -X GET emits none,
  // but some clients send the header anyway).
  EXPECT_EQ(Parse("GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n"),
            HttpParseResult::kOk);
}

TEST(HttpParserTest, OversizedHeaderBlockIsTooLarge) {
  std::string raw = "GET / HTTP/1.1\r\n";
  while (raw.size() <= obs::kMaxHttpHeaderBytes) {
    raw += "X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
  }
  // No terminating blank line: the block already exceeds the cap.
  EXPECT_EQ(Parse(raw), HttpParseResult::kTooLarge);
  // Even with the terminator, over-cap blocks are refused.
  EXPECT_EQ(Parse(raw + "\r\n"), HttpParseResult::kTooLarge);
}

TEST(HttpParserTest, PipelinedRequestsParseOneAtATime) {
  const std::string one = "GET /a HTTP/1.1\r\n\r\n";
  const std::string two = one + "GET /b HTTP/1.1\r\n\r\n";
  HttpRequest req;
  std::size_t consumed = 0;
  ASSERT_EQ(Parse(two, &req, &consumed), HttpParseResult::kOk);
  EXPECT_EQ(req.path, "/a");
  EXPECT_EQ(consumed, one.size());
  HttpRequest req2;
  std::size_t consumed2 = 0;
  ASSERT_EQ(ParseHttpRequest(
                reinterpret_cast<const uint8_t*>(two.data()) + consumed,
                two.size() - consumed, &req2, &consumed2),
            HttpParseResult::kOk);
  EXPECT_EQ(req2.path, "/b");
}

TEST(HttpParserTest, BareLfLineEndingsAccepted) {
  HttpRequest req;
  ASSERT_EQ(Parse("GET /metrics HTTP/1.1\nHost: x\n\n", &req),
            HttpParseResult::kOk);
  EXPECT_EQ(req.path, "/metrics");
}

// Random hostile buffers and random slicings of valid requests: the
// parser must always return a typed result and never read out of bounds
// (ASan/UBSan jobs run this test too).
TEST(HttpParserTest, FuzzNeverCrashes) {
  Rng rng(20260809);
  const std::string valid = "GET /metrics.json?x=1 HTTP/1.1\r\n"
                            "Host: localhost\r\nAccept: */*\r\n\r\n";
  for (int iter = 0; iter < 20000; ++iter) {
    std::string buf;
    if (iter % 3 == 0) {
      // Pure noise.
      const std::size_t n = rng.UniformInt(200);
      for (std::size_t i = 0; i < n; ++i) {
        buf.push_back(static_cast<char>(rng.UniformInt(256)));
      }
    } else if (iter % 3 == 1) {
      // Valid request, truncated at a random byte.
      buf = valid.substr(0, rng.UniformInt(valid.size() + 1));
    } else {
      // Valid request with random corruptions.
      buf = valid;
      const std::size_t flips = 1 + rng.UniformInt(4);
      for (std::size_t f = 0; f < flips; ++f) {
        buf[rng.UniformInt(buf.size())] =
            static_cast<char>(rng.UniformInt(256));
      }
    }
    HttpRequest req;
    std::size_t consumed = 0;
    const HttpParseResult r = ParseHttpRequest(
        reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &req,
        &consumed);
    if (r == HttpParseResult::kOk) {
      EXPECT_LE(consumed, buf.size());
      EXPECT_GT(consumed, 0u);
    }
  }
}

// --- server over real sockets ---------------------------------------------

// Minimal blocking HTTP client: connects, sends `raw`, reads to EOF.
std::string RawRequest(uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return RawRequest(port, "GET " + path +
                              " HTTP/1.1\r\nConnection: close\r\n\r\n");
}

HttpServer MakeEchoServer() {
  return HttpServer(0, [](const HttpRequest& req) {
    if (req.path == "/boom") throw std::runtime_error("handler exploded");
    HttpResponse resp;
    resp.body = "path=" + req.path + " query=" + req.query;
    return resp;
  });
}

TEST(HttpServerTest, ServesAndEchoes) {
  HttpServer server = MakeEchoServer();
  const std::string resp = Get(server.port(), "/hello?a=b");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("path=/hello query=a=b"), std::string::npos);
  EXPECT_GE(server.requests_served(), 1u);
}

TEST(HttpServerTest, NonGetIs405AndBadRequestIs400) {
  HttpServer server = MakeEchoServer();
  EXPECT_NE(RawRequest(server.port(),
                       "POST / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(RawRequest(server.port(), "garbage\r\n\r\n").find("400"),
            std::string::npos);
}

TEST(HttpServerTest, OversizedHeadersAnswer431) {
  HttpServer server = MakeEchoServer();
  std::string raw = "GET / HTTP/1.1\r\n";
  while (raw.size() <= obs::kMaxHttpHeaderBytes) {
    raw += "X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
  }
  raw += "\r\n";
  EXPECT_NE(RawRequest(server.port(), raw).find("431"), std::string::npos);
}

TEST(HttpServerTest, HandlerExceptionAnswers503) {
  HttpServer server = MakeEchoServer();
  EXPECT_NE(Get(server.port(), "/boom").find("503"), std::string::npos);
}

TEST(HttpServerTest, HeadOmitsBody) {
  HttpServer server = MakeEchoServer();
  const std::string resp = RawRequest(
      server.port(), "HEAD /x HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_EQ(resp.find("path=/x"), std::string::npos);
}

TEST(HttpServerTest, KeepAlivePipelinedRequestsAllAnswered) {
  HttpServer server = MakeEchoServer();
  const std::string resp =
      RawRequest(server.port(), "GET /one HTTP/1.1\r\n\r\n"
                                "GET /two HTTP/1.1\r\n\r\n"
                                "GET /three HTTP/1.1\r\n"
                                "Connection: close\r\n\r\n");
  EXPECT_NE(resp.find("path=/one"), std::string::npos);
  EXPECT_NE(resp.find("path=/two"), std::string::npos);
  EXPECT_NE(resp.find("path=/three"), std::string::npos);
}

TEST(HttpServerTest, AbruptClientCloseDoesNotCrashServer) {
  HttpServer server = MakeEchoServer();
  for (int i = 0; i < 20; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    // Half a request, then slam the connection (RST via SO_LINGER 0 on
    // some stacks; plain close is hostile enough here).
    const char partial[] = "GET /met";
    (void)::send(fd, partial, sizeof(partial) - 1, 0);
    ::close(fd);
  }
  // The server must still answer.
  EXPECT_NE(Get(server.port(), "/ok").find("200 OK"), std::string::npos);
}

TEST(HttpServerTest, ConcurrentScrapesAllSucceed) {
  HttpServer server = MakeEchoServer();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string path =
            "/t" + std::to_string(th) + "n" + std::to_string(i);
        const std::string resp = Get(server.port(), path);
        if (resp.find("200 OK") != std::string::npos &&
            resp.find("path=" + path) != std::string::npos) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_GE(server.requests_served(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

// --- the write-only invariant under scrape load ---------------------------

// Releases must be bit-identical whether or not scrapers hammer every
// endpoint while the session serves rounds.
TEST(HttpServerTest, ConcurrentScrapingPinsReleasesBitIdentical) {
  constexpr std::size_t kDomain = 10;
  constexpr uint64_t kUsers = 400;
  constexpr std::size_t kSteps = 5;
  auto truth = [](uint64_t user, std::size_t t) -> uint32_t {
    return static_cast<uint32_t>((user + 7 * t) % kDomain);
  };
  MechanismConfig config;
  config.epsilon = 1.0;
  config.window = 4;
  config.fo = "OUE";
  config.seed = 33;

  auto run = [&](bool scraped) {
    const service::ClientFleet fleet(kUsers, truth, 777);
    obs::MetricsRegistry registry;
    obs::FlightRecorder recorder;
    service::SessionOptions options;
    options.num_shards = 2;
    options.pipeline_depth = 2;
    options.metrics = &registry;
    options.metrics_label = "scraped";
    options.recorder = &recorder;
    obs::ScrapeEndpoint endpoint(&registry, &recorder, {});

    std::atomic<bool> stop{false};
    std::vector<std::thread> scrapers;
    if (scraped) {
      for (const char* path :
           {"/metrics", "/metrics.json", "/healthz", "/statusz", "/trace"}) {
        scrapers.emplace_back([&endpoint, &stop, path] {
          while (!stop.load()) {
            const std::string resp = Get(endpoint.port(), path);
            ASSERT_FALSE(resp.empty());
          }
        });
      }
    }
    std::vector<StepResult> steps;
    {
      service::MechanismSession session(
          CreateMechanism("LBA", config, kUsers), kDomain, options,
          fleet.Transport(1));
      for (std::size_t t = 0; t < kSteps; ++t) {
        steps.push_back(session.Advance());
      }
    }
    stop.store(true);
    for (auto& s : scrapers) s.join();
    return steps;
  };

  const std::vector<StepResult> quiet = run(false);
  const std::vector<StepResult> noisy = run(true);
  ASSERT_EQ(quiet.size(), noisy.size());
  for (std::size_t t = 0; t < quiet.size(); ++t) {
    EXPECT_EQ(quiet[t].published, noisy[t].published) << t;
    EXPECT_EQ(quiet[t].release, noisy[t].release) << t;
  }
}

}  // namespace
}  // namespace ldpids
