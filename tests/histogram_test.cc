#include "util/histogram.h"

#include <gtest/gtest.h>

namespace ldpids {
namespace {

TEST(HistogramTest, CountsToFrequencies) {
  const Histogram h = CountsToFrequencies({2, 3, 5}, 10);
  EXPECT_DOUBLE_EQ(h[0], 0.2);
  EXPECT_DOUBLE_EQ(h[1], 0.3);
  EXPECT_DOUBLE_EQ(h[2], 0.5);
}

TEST(HistogramTest, CountsToFrequenciesRejectsZeroPopulation) {
  EXPECT_THROW(CountsToFrequencies({1}, 0), std::invalid_argument);
}

TEST(HistogramTest, CountValues) {
  const Counts c = CountValues({0, 1, 1, 2, 2, 2}, 4);
  EXPECT_EQ(c, (Counts{1, 2, 3, 0}));
}

TEST(HistogramTest, MeanSquaredDistance) {
  const Histogram a = {0.0, 1.0};
  const Histogram b = {1.0, 1.0};
  // ((0-1)^2 + 0) / 2 = 0.5
  EXPECT_DOUBLE_EQ(MeanSquaredDistance(a, b), 0.5);
  EXPECT_DOUBLE_EQ(MeanSquaredDistance(a, a), 0.0);
}

TEST(HistogramTest, L1Distance) {
  EXPECT_DOUBLE_EQ(L1Distance({0.1, 0.9}, {0.3, 0.7}), 0.4);
  EXPECT_DOUBLE_EQ(L1Distance({1.0}, {1.0}), 0.0);
}

TEST(HistogramTest, SumAndMean) {
  const Histogram h = {0.25, 0.25, 0.5};
  EXPECT_DOUBLE_EQ(Sum(h), 1.0);
  EXPECT_NEAR(Mean(h), 1.0 / 3.0, 1e-15);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(HistogramTest, ClampToUnit) {
  const Histogram h = ClampToUnit({-0.2, 0.5, 1.7});
  EXPECT_DOUBLE_EQ(h[0], 0.0);
  EXPECT_DOUBLE_EQ(h[1], 0.5);
  EXPECT_DOUBLE_EQ(h[2], 1.0);
}

TEST(HistogramTest, Normalize) {
  const Histogram h = Normalize({1.0, 3.0});
  EXPECT_DOUBLE_EQ(h[0], 0.25);
  EXPECT_DOUBLE_EQ(h[1], 0.75);
  // All-zero input is returned unchanged.
  const Histogram z = Normalize({0.0, 0.0});
  EXPECT_DOUBLE_EQ(z[0], 0.0);
  EXPECT_DOUBLE_EQ(z[1], 0.0);
}

}  // namespace
}  // namespace ldpids
