// FoSketch::MergeFrom (shard-reduce) coverage for all 5 oracles.
//
// The serving layer's contract: splitting one timestamp's users across K
// shards and merging the shard sketches must equal single-sketch ingestion
// of the same reports — exactly (bitwise) for the deterministic wire path,
// and as the exact count-weighted combination for the sampled simulation
// paths.
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fo/client.h"
#include "fo/frequency_oracle.h"
#include "fo/wire.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace ldpids {
namespace {

constexpr std::size_t kDomain = 12;
constexpr double kEpsilon = 1.2;
constexpr std::size_t kUsers = 600;

// Deterministic synthetic truth: user u holds u % kDomain biased by a hash.
uint32_t ValueOf(uint64_t user) {
  return static_cast<uint32_t>(HashCounter(71, user, 0) % kDomain);
}

// Wire packets for the whole population, one per user, reproducible.
std::vector<std::vector<uint8_t>> MakePackets(OracleId oracle) {
  std::vector<std::vector<uint8_t>> packets;
  packets.reserve(kUsers);
  for (uint64_t u = 0; u < kUsers; ++u) {
    Rng rng(HashCounter(5, u, static_cast<uint64_t>(oracle)));
    packets.push_back(
        PerturbToWire(oracle, ValueOf(u), kEpsilon, kDomain, 3, u, rng));
  }
  return packets;
}

DecodedReport MustDecode(const std::vector<uint8_t>& packet) {
  DecodedReport report;
  EXPECT_EQ(TryDecodeReport(packet, kDomain, &report), WireError::kOk);
  return report;
}

class FoMergeTest : public ::testing::TestWithParam<OracleId> {};

TEST_P(FoMergeTest, KShardWireIngestMergesToSingleShardExactly) {
  const OracleId oracle = GetParam();
  const FrequencyOracle& fo = GetFrequencyOracle(OracleIdName(oracle));
  const FoParams params{kEpsilon, kDomain};
  const auto packets = MakePackets(oracle);

  auto single = fo.CreateSketch(params);
  for (const auto& p : packets) {
    ASSERT_TRUE(single->AddReport(MustDecode(p)));
  }

  for (const std::size_t shards : {2u, 3u, 7u}) {
    std::vector<std::unique_ptr<FoSketch>> shard_sketches;
    for (std::size_t s = 0; s < shards; ++s) {
      shard_sketches.push_back(fo.CreateSketch(params));
    }
    for (std::size_t i = 0; i < packets.size(); ++i) {
      ASSERT_TRUE(
          shard_sketches[i % shards]->AddReport(MustDecode(packets[i])));
    }
    auto merged = std::move(shard_sketches[0]);
    for (std::size_t s = 1; s < shards; ++s) {
      merged->MergeFrom(*shard_sketches[s]);
    }
    EXPECT_EQ(merged->num_users(), single->num_users()) << shards;
    // Bitwise: counts are additive integers, the estimate is a pure
    // function of the summed counts.
    EXPECT_EQ(merged->Estimate(), single->Estimate())
        << OracleIdName(oracle) << " shards=" << shards;
  }
}

TEST_P(FoMergeTest, MergeOfSampledShardsIsTheCountWeightedCombination) {
  // The simulated (AddUsers / AddCohort) paths consume RNG, so K-shard
  // ingestion is a different random draw than single-shard — but merging
  // must still combine the realized counts exactly: every shipped
  // estimator is affine in counts/n, so the merged estimate equals the
  // n-weighted average of the shard estimates (an identity in exact
  // arithmetic; compared here to double rounding).
  const OracleId oracle = GetParam();
  const FrequencyOracle& fo = GetFrequencyOracle(OracleIdName(oracle));
  const FoParams params{kEpsilon, kDomain};

  std::vector<uint32_t> values_a, values_b;
  for (uint64_t u = 0; u < 400; ++u) values_a.push_back(ValueOf(u));
  for (uint64_t u = 400; u < kUsers; ++u) values_b.push_back(ValueOf(u));

  Rng rng_a(101), rng_b(202);
  auto shard_a = fo.CreateSketch(params);
  auto shard_b = fo.CreateSketch(params);
  shard_a->AddUsers(values_a, rng_a);
  shard_b->AddUsers(values_b, rng_b);

  const Histogram est_a = shard_a->Estimate();
  const Histogram est_b = shard_b->Estimate();
  const double na = static_cast<double>(shard_a->num_users());
  const double nb = static_cast<double>(shard_b->num_users());

  shard_a->MergeFrom(*shard_b);
  EXPECT_EQ(shard_a->num_users(), kUsers);
  const Histogram merged = shard_a->Estimate();
  ASSERT_EQ(merged.size(), kDomain);
  for (std::size_t k = 0; k < kDomain; ++k) {
    EXPECT_NEAR(merged[k], (na * est_a[k] + nb * est_b[k]) / (na + nb),
                1e-12)
        << OracleIdName(oracle) << " bin " << k;
  }
}

TEST_P(FoMergeTest, MergeIsSeedPinnedDeterministic) {
  // Same seeds -> the merged sketch reproduces bit for bit.
  const OracleId oracle = GetParam();
  const FrequencyOracle& fo = GetFrequencyOracle(OracleIdName(oracle));
  const FoParams params{kEpsilon, kDomain};
  auto build = [&] {
    Rng rng_a(11), rng_b(22);
    auto a = fo.CreateSketch(params);
    auto b = fo.CreateSketch(params);
    std::vector<uint32_t> values(200);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = ValueOf(i);
    }
    a->AddUsers(values, rng_a);
    b->AddUsers(values, rng_b);
    a->MergeFrom(*b);
    return a->Estimate();
  };
  EXPECT_EQ(build(), build());
}

TEST_P(FoMergeTest, MergingAnEmptyShardIsANoOpOnTheEstimate) {
  const OracleId oracle = GetParam();
  const FrequencyOracle& fo = GetFrequencyOracle(OracleIdName(oracle));
  const FoParams params{kEpsilon, kDomain};
  const auto packets = MakePackets(oracle);
  auto filled = fo.CreateSketch(params);
  for (const auto& p : packets) {
    ASSERT_TRUE(filled->AddReport(MustDecode(p)));
  }
  const Histogram before = filled->Estimate();
  auto empty = fo.CreateSketch(params);
  filled->MergeFrom(*empty);
  EXPECT_EQ(filled->Estimate(), before);
  EXPECT_EQ(filled->num_users(), kUsers);
}

TEST_P(FoMergeTest, IncompatibleMergesThrow) {
  const OracleId oracle = GetParam();
  const FrequencyOracle& fo = GetFrequencyOracle(OracleIdName(oracle));
  auto sketch = fo.CreateSketch({kEpsilon, kDomain});

  // Different domain.
  auto other_domain = fo.CreateSketch({kEpsilon, kDomain + 1});
  EXPECT_THROW(sketch->MergeFrom(*other_domain), std::invalid_argument);
  // Different epsilon (different perturbation probabilities).
  auto other_eps = fo.CreateSketch({kEpsilon * 3.0, kDomain});
  EXPECT_THROW(sketch->MergeFrom(*other_eps), std::invalid_argument);
  // Different oracle.
  for (OracleId other : AllOracleIds()) {
    if (other == oracle) continue;
    auto foreign = GetFrequencyOracle(OracleIdName(other))
                       .CreateSketch({kEpsilon, kDomain});
    EXPECT_THROW(sketch->MergeFrom(*foreign), std::invalid_argument)
        << OracleIdName(other);
  }
  // Self-merge (would double-count).
  EXPECT_THROW(sketch->MergeFrom(*sketch), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllOracles, FoMergeTest,
                         ::testing::ValuesIn(AllOracleIds()),
                         [](const auto& info) {
                           return std::string(OracleIdName(info.param));
                         });

}  // namespace
}  // namespace ldpids
