// Cross-cutting property suite: every (mechanism x frequency oracle)
// combination must uphold the same contract — valid releases, bounded
// communication, deterministic replay, privacy-invariant accounting, and
// tolerable error on a known stream.
#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "analysis/runner.h"
#include "core/factory.h"
#include "datagen/synthetic.h"

namespace ldpids {
namespace {

using MechFoCase = std::tuple<std::string, std::string>;

class MechanismPropertyTest : public ::testing::TestWithParam<MechFoCase> {
 protected:
  std::string mechanism() const { return std::get<0>(GetParam()); }
  std::string fo() const { return std::get<1>(GetParam()); }

  MechanismConfig Config() const {
    MechanismConfig c;
    c.epsilon = 1.0;
    c.window = 8;
    c.fo = fo();
    c.seed = 1234;
    return c;
  }
};

TEST_P(MechanismPropertyTest, RunProducesWellFormedOutput) {
  const auto data = MakeSinDataset(8000, 50, 0.05, 2);
  const RunResult run = RunMechanism(*data, mechanism(), Config());
  ASSERT_EQ(run.releases.size(), 50u);
  ASSERT_EQ(run.published.size(), 50u);
  EXPECT_EQ(run.timestamps, 50u);
  EXPECT_EQ(run.num_users, 8000u);
  for (const Histogram& r : run.releases) {
    ASSERT_EQ(r.size(), 2u);
    for (double x : r) {
      EXPECT_TRUE(std::isfinite(x));
      // Unbiased LDP estimates can exceed [0,1] — badly so for LBD whose
      // late-window publications carry eps/2^m — but never absurdly.
      EXPECT_GT(x, -25.0);
      EXPECT_LT(x, 25.0);
    }
  }
}

TEST_P(MechanismPropertyTest, MessagesNeverExceedTwoPerUserPerStep) {
  const auto data = MakeSinDataset(8000, 40, 0.05, 3);
  auto m = CreateMechanism(mechanism(), Config(), data->num_users());
  for (std::size_t t = 0; t < data->length(); ++t) {
    const StepResult step = m->Step(*data, t);
    EXPECT_LE(step.messages, 2 * data->num_users()) << "t=" << t;
  }
}

TEST_P(MechanismPropertyTest, DeterministicReplay) {
  const auto data = MakeLogDataset(6000, 30, 4);
  const RunResult a = RunMechanism(*data, mechanism(), Config());
  const RunResult b = RunMechanism(*data, mechanism(), Config());
  EXPECT_EQ(a.releases, b.releases);
  EXPECT_EQ(a.total_messages, b.total_messages);
}

TEST_P(MechanismPropertyTest, SurvivesManyWindowsWithoutInvariantViolation) {
  // The budget ledger / population manager throw on any w-event violation;
  // a long run passing is the executable form of Theorems 5.3 and 6.2.
  const auto data = MakeLnsDataset(4000, 240, 0.003, 5);
  EXPECT_NO_THROW(RunMechanism(*data, mechanism(), Config()));
}

TEST_P(MechanismPropertyTest, TracksTheStreamBetterThanTrivialZero) {
  // Every mechanism must beat the trivial "always release zeros" baseline
  // on MAE over a drifting stream.
  const auto data = MakeLogDataset(20000, 60, 6);
  const auto truth = data->TrueStream();
  const RunResult run = RunMechanism(*data, mechanism(), Config());
  std::vector<Histogram> zeros(truth.size(), Histogram(2, 0.0));
  EXPECT_LT(MeanAbsoluteError(truth, run.releases),
            MeanAbsoluteError(truth, zeros));
}

TEST_P(MechanismPropertyTest, PerUserSimulationAgreesInShape) {
  // The exact per-user client path must produce the same kind of output
  // (and similar error) as the cohort path; this also exercises
  // FoSketch::AddUser inside every mechanism.
  const auto data = MakeSinDataset(2000, 24, 0.05, 7);
  MechanismConfig c = Config();
  c.per_user_simulation = true;
  const RunResult exact = RunMechanism(*data, mechanism(), c);
  c.per_user_simulation = false;
  const RunResult fast = RunMechanism(*data, mechanism(), c);
  ASSERT_EQ(exact.releases.size(), fast.releases.size());
  const auto truth = data->TrueStream();
  const double mae_exact = MeanAbsoluteError(truth, exact.releases);
  const double mae_fast = MeanAbsoluteError(truth, fast.releases);
  // Same order of magnitude (both are the same mechanism).
  EXPECT_LT(mae_exact, 10.0 * mae_fast + 0.1);
  EXPECT_LT(mae_fast, 10.0 * mae_exact + 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, MechanismPropertyTest,
    ::testing::Combine(::testing::Values("LBU", "LSP", "LBD", "LBA", "LPU",
                                         "LPD", "LPA"),
                       ::testing::Values("GRR", "OUE", "OLH")),
    [](const ::testing::TestParamInfo<MechFoCase>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace ldpids
