// ReportArena must classify packets exactly like the per-packet decode
// path (same reasons, same order — see IngestShard::Ingest) and must
// reconstruct every staged row losslessly. These tests replicate the
// shard's classification with TryDecodeReport and diff the arena against
// it packet for packet.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fo/client.h"
#include "fo/hr.h"
#include "fo/olh.h"
#include "fo/report_arena.h"
#include "fo/wire.h"
#include "util/rng.h"

namespace ldpids {
namespace {

constexpr std::size_t kDomain = 61;
constexpr double kEpsilon = 1.0;
constexpr uint32_t kRound = 9;

// A batch exercising every classification: valid rows for the round,
// other-oracle and other-round packets, corruption, truncation, garbage,
// and wire-valid but out-of-range OLH/HR payloads.
std::vector<std::vector<uint8_t>> MixedBatch(OracleId round_oracle) {
  std::vector<std::vector<uint8_t>> packets;
  Rng rng(2026);
  uint64_t nonce = 1;
  for (OracleId oracle : AllOracleIds()) {
    for (int i = 0; i < 17; ++i) {
      const uint32_t v = static_cast<uint32_t>(rng.UniformInt(kDomain));
      packets.push_back(PerturbToWire(oracle, v, kEpsilon, kDomain, kRound,
                                      nonce++, rng));
    }
    // Same oracle, different round.
    packets.push_back(PerturbToWire(oracle, 0, kEpsilon, kDomain, kRound + 3,
                                    nonce++, rng));
  }
  // Out-of-range payloads that decode fine at wire level: the arena must
  // keep the row and clear in_range instead of rejecting.
  if (round_oracle == OracleId::kOlh) {
    packets.push_back(EncodeOlhReport(7, 4000, kRound, nonce++));
  }
  if (round_oracle == OracleId::kHr) {
    packets.push_back(EncodeHrReport(99999, kRound, nonce++));
  }
  // Corrupted copies of a few valid packets.
  for (std::size_t i = 0; i < 6; ++i) {
    auto bad = packets[i * 7 % packets.size()];
    bad[rng.UniformInt(bad.size())] ^=
        static_cast<uint8_t>(1 + rng.UniformInt(255));
    packets.push_back(std::move(bad));
  }
  // Truncations and garbage.
  packets.push_back({});
  packets.push_back({0xAD});
  std::vector<uint8_t> garbage(23);
  for (auto& b : garbage) b = static_cast<uint8_t>(rng.NextU64());
  packets.push_back(std::move(garbage));
  return packets;
}

bool ReportsEqual(const DecodedReport& a, const DecodedReport& b) {
  if (a.oracle != b.oracle || a.timestamp != b.timestamp ||
      a.nonce != b.nonce) {
    return false;
  }
  switch (a.oracle) {
    case OracleId::kGrr:
      return a.grr.value == b.grr.value;
    case OracleId::kOue:
    case OracleId::kSue:
      return a.bits.bits == b.bits.bits;
    case OracleId::kOlh:
      return a.olh.seed == b.olh.seed && a.olh.bucket == b.olh.bucket;
    case OracleId::kHr:
      return a.hr.column == b.hr.column;
  }
  return false;
}

TEST(ReportArenaTest, ClassificationMatchesPerPacketDecodeForEveryOracle) {
  for (OracleId oracle : AllOracleIds()) {
    const auto packets = MixedBatch(oracle);

    // Reference classification, in IngestShard's exact order.
    ArenaDecodeStats want;
    std::vector<DecodedReport> want_rows;
    for (const auto& p : packets) {
      DecodedReport r;
      const WireError err = TryDecodeReport(p, kDomain, &r);
      if (err != WireError::kOk) {
        ++want.malformed;
        ++want.wire_errors[static_cast<std::size_t>(err)];
      } else if (r.oracle != oracle) {
        ++want.wrong_oracle;
      } else if (r.timestamp != kRound) {
        ++want.wrong_timestamp;
      } else {
        ++want.decoded;
        want_rows.push_back(r);
      }
    }

    ReportArena arena;
    arena.BeginRound(oracle, kRound, {kEpsilon, kDomain});
    arena.AppendBatch(packets);

    EXPECT_EQ(arena.stats().decoded, want.decoded);
    EXPECT_EQ(arena.stats().malformed, want.malformed);
    EXPECT_EQ(arena.stats().wrong_oracle, want.wrong_oracle);
    EXPECT_EQ(arena.stats().wrong_timestamp, want.wrong_timestamp);
    EXPECT_EQ(arena.stats().total(), packets.size());
    for (std::size_t e = 0; e < kWireErrorCount; ++e) {
      EXPECT_EQ(arena.stats().wire_errors[e], want.wire_errors[e])
          << WireErrorName(static_cast<WireError>(e));
    }

    // Rows are the surviving packets, in packet order, reconstructible
    // bit-for-bit.
    ASSERT_EQ(arena.size(), want_rows.size());
    DecodedReport got;
    for (std::size_t i = 0; i < arena.size(); ++i) {
      arena.ReportAt(i, &got);
      EXPECT_TRUE(ReportsEqual(got, want_rows[i])) << "row " << i;
      EXPECT_EQ(arena.nonces()[i], want_rows[i].nonce);
    }
  }
}

TEST(ReportArenaTest, InRangeFlagsMirrorTheSketchRangeCheck) {
  {
    ReportArena arena;
    arena.BeginRound(OracleId::kOlh, kRound, {kEpsilon, kDomain});
    const uint64_t g = OlhOracle::BucketCount(kEpsilon);
    arena.Append(EncodeOlhReport(1, static_cast<uint32_t>(g - 1), kRound, 1));
    arena.Append(EncodeOlhReport(2, static_cast<uint32_t>(g), kRound, 2));
    ASSERT_EQ(arena.size(), 2u);
    EXPECT_EQ(arena.in_range()[0], 1);
    EXPECT_EQ(arena.in_range()[1], 0);
  }
  {
    ReportArena arena;
    arena.BeginRound(OracleId::kHr, kRound, {kEpsilon, kDomain});
    const uint64_t k = HrOracle::HadamardSize(kDomain);
    arena.Append(EncodeHrReport(static_cast<uint32_t>(k - 1), kRound, 1));
    arena.Append(EncodeHrReport(static_cast<uint32_t>(k), kRound, 2));
    ASSERT_EQ(arena.size(), 2u);
    EXPECT_EQ(arena.in_range()[0], 1);
    EXPECT_EQ(arena.in_range()[1], 0);
  }
}

TEST(ReportArenaTest, ConcatOfChunkDecodesMatchesSingleDecode) {
  for (OracleId oracle : AllOracleIds()) {
    const auto packets = MixedBatch(oracle);
    const FoParams params{kEpsilon, kDomain};

    ReportArena whole;
    whole.BeginRound(oracle, kRound, params);
    whole.AppendBatch(packets);

    ReportArena merged;
    merged.BeginRound(oracle, kRound, params);
    const std::size_t cut1 = packets.size() / 3;
    const std::size_t cut2 = 2 * packets.size() / 3;
    ReportArena chunk;
    for (auto [begin, end] : {std::pair<std::size_t, std::size_t>{0, cut1},
                              {cut1, cut2},
                              {cut2, packets.size()}}) {
      chunk.BeginRound(oracle, kRound, params);
      chunk.AppendRange(packets, begin, end);
      merged.Concat(chunk);
    }

    ASSERT_EQ(merged.size(), whole.size());
    EXPECT_EQ(merged.stats().decoded, whole.stats().decoded);
    EXPECT_EQ(merged.stats().malformed, whole.stats().malformed);
    EXPECT_EQ(merged.stats().wrong_oracle, whole.stats().wrong_oracle);
    EXPECT_EQ(merged.stats().wrong_timestamp, whole.stats().wrong_timestamp);
    DecodedReport a, b;
    for (std::size_t i = 0; i < whole.size(); ++i) {
      whole.ReportAt(i, &a);
      merged.ReportAt(i, &b);
      EXPECT_TRUE(ReportsEqual(a, b)) << "row " << i;
      EXPECT_EQ(merged.in_range()[i], whole.in_range()[i]) << "row " << i;
    }
  }
}

TEST(ReportArenaTest, ConcatRejectsMismatchedConfiguration) {
  ReportArena a, b;
  a.BeginRound(OracleId::kGrr, kRound, {kEpsilon, kDomain});
  b.BeginRound(OracleId::kGrr, kRound + 1, {kEpsilon, kDomain});
  EXPECT_THROW(a.Concat(b), std::invalid_argument);
  b.BeginRound(OracleId::kOue, kRound, {kEpsilon, kDomain});
  EXPECT_THROW(a.Concat(b), std::invalid_argument);
}

}  // namespace
}  // namespace ldpids
