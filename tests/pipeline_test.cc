// The pipelined serving path (SessionOptions::pipeline_depth > 1): rounds
// a mechanism pre-declares via CollectorContext::PlanNextCollect are
// announced early and folded on the session's ingest worker, overlapping
// the current round's estimation.
//
// The acceptance pin: the pipelined path produces releases bit-identical
// to the serial path for all 7 mechanisms x {GRR, OLH} at pipeline_depth
// in {1, 2, 4}, over both the in-process transport and a loopback-socket
// split transport with hostile delivery — pipelining reorders work, never
// packets. Plus: a StreamServer of pipelined sessions matches serial
// sessions, and a session whose rounds stop arriving mid-pipeline poisons
// cleanly (deadline flush -> zero-report failure) without deadlocking the
// ingest worker.
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/mechanism.h"
#include "fo/wire.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "service/client_fleet.h"
#include "service/ingest.h"
#include "service/session.h"
#include "service/stream_server.h"
#include "transport/frame.h"
#include "transport/round_buffer.h"
#include "transport/socket.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace ldpids {
namespace {

using service::ClientFleet;
using service::MechanismSession;
using service::RoundRequest;
using service::SessionOptions;
using service::SplitRoundTransport;
using service::StreamServer;
using transport::Frame;
using transport::FrameDemux;
using transport::MakeBufferedSplitTransport;
using transport::MakeDataFrame;
using transport::RoundBuffer;
using transport::RoundBufferOptions;
using transport::SendRoundFrames;
using transport::SocketClient;
using transport::SocketListener;

constexpr std::size_t kDomain = 10;
constexpr uint64_t kUsers = 300;
constexpr std::size_t kSteps = 6;
constexpr uint64_t kSessionId = 0x9147;

uint32_t TruthValue(uint64_t user, std::size_t t) {
  return static_cast<uint32_t>((user + 3 * t) % kDomain);
}

MechanismConfig PipeConfig(const std::string& fo) {
  MechanismConfig c;
  c.epsilon = 1.0;
  c.window = 4;
  c.fo = fo;
  c.seed = 91;
  return c;
}

SessionOptions PipeOptions(std::size_t depth) {
  SessionOptions options;
  options.num_shards = 2;
  options.num_threads = 1;
  options.pipeline_depth = depth;
  return options;
}

struct SessionRun {
  std::vector<StepResult> steps;
  std::string ingest_stats;
};

// Drives one session over the in-process fleet transport. The transport
// is opaque (produce + ingest in one call), so in pipelined mode planned
// rounds run whole on the ingest worker.
SessionRun RunInproc(const std::string& mechanism, const std::string& fo,
                     std::size_t depth) {
  const ClientFleet fleet(kUsers, TruthValue, 4242);
  MechanismSession session(CreateMechanism(mechanism, PipeConfig(fo), kUsers),
                           kDomain, PipeOptions(depth), fleet.Transport(1));
  SessionRun run;
  for (std::size_t t = 0; t < kSteps; ++t) {
    run.steps.push_back(session.Advance());
  }
  run.ingest_stats = session.stats().ToString();
  return run;
}

void ExpectSameRun(const SessionRun& expected, const SessionRun& actual,
                   const std::string& label, bool compare_stats = true) {
  ASSERT_EQ(actual.steps.size(), expected.steps.size()) << label;
  for (std::size_t t = 0; t < expected.steps.size(); ++t) {
    EXPECT_EQ(actual.steps[t].release, expected.steps[t].release)
        << label << " t=" << t;
    EXPECT_EQ(actual.steps[t].published, expected.steps[t].published)
        << label << " t=" << t;
    EXPECT_EQ(actual.steps[t].messages, expected.steps[t].messages)
        << label << " t=" << t;
  }
  // Stats accumulate in claim order == round order, so the whole
  // acceptance accounting must match too (a prefetched round counts only
  // once the mechanism consumes it).
  if (compare_stats) {
    EXPECT_EQ(actual.ingest_stats, expected.ingest_stats) << label;
  }
}

class PipelineEquivalenceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelineEquivalenceTest, PipelinedMatchesSerialAtEveryDepth) {
  const std::string mechanism = GetParam();
  for (const std::string fo : {"GRR", "OLH"}) {
    const SessionRun serial = RunInproc(mechanism, fo, 1);
    for (const std::size_t depth : {std::size_t{2}, std::size_t{4}}) {
      ExpectSameRun(serial, RunInproc(mechanism, fo, depth),
                    mechanism + "/" + fo + "/depth=" +
                        std::to_string(depth));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, PipelineEquivalenceTest,
                         ::testing::ValuesIn(AllMechanismNames()),
                         [](const auto& info) { return info.param; });

// Observability regression: with a metrics registry attached, every
// mechanism's stage-trace round counts must agree with its IngestStats
// totals at pipeline depths 1 and 2 — and the releases must stay
// bit-identical to the uninstrumented run (metrics are write-only).
TEST(PipelineStageTraceTest, StageRoundCountsMatchIngestTotals) {
  for (const std::string& mechanism : AllMechanismNames()) {
    for (const std::size_t depth : {std::size_t{1}, std::size_t{2}}) {
      const std::string label =
          mechanism + "/depth=" + std::to_string(depth);
      const SessionRun expected = RunInproc(mechanism, "GRR", depth);

      obs::MetricsRegistry registry;
      const ClientFleet fleet(kUsers, TruthValue, 4242);
      SessionOptions options = PipeOptions(depth);
      options.metrics = &registry;
      options.metrics_label = mechanism;
      MechanismSession session(
          CreateMechanism(mechanism, PipeConfig("GRR"), kUsers), kDomain,
          options, fleet.Transport(1));
      SessionRun run;
      for (std::size_t t = 0; t < kSteps; ++t) {
        run.steps.push_back(session.Advance());
      }
      run.ingest_stats = session.stats().ToString();
      ExpectSameRun(expected, run, label + "/instrumented");

      const obs::MetricsSnapshot snap = registry.Snapshot();
      const obs::Labels session_labels{{"session", mechanism}};
      auto stage_count = [&](obs::Stage stage) -> uint64_t {
        const auto* h = snap.FindHistogram(
            obs::kStageDurationMetric,
            {{"session", mechanism}, {"stage", obs::StageName(stage)}});
        return h == nullptr ? 0 : h->count;
      };

      // Announced rounds: one announce-stage observation per round, and
      // the rounds counter agrees with the session's own accounting.
      const uint64_t rounds = session.rounds();
      const auto* rounds_counter =
          snap.FindCounter("ldpids_session_rounds_total", session_labels);
      ASSERT_NE(rounds_counter, nullptr) << label;
      EXPECT_EQ(rounds_counter->value, rounds) << label;
      EXPECT_EQ(stage_count(obs::Stage::kAnnounce), rounds) << label;
      const auto* advances =
          snap.FindCounter("ldpids_session_advances_total", session_labels);
      ASSERT_NE(advances, nullptr) << label;
      EXPECT_EQ(advances->value, kSteps) << label;

      // Claimed rounds: the ingest-side stages all record exactly once
      // per consumed round; at depth 2 at most one announced round is
      // still prefetched (unclaimed) when the run stops.
      const uint64_t claimed = stage_count(obs::Stage::kEstimate);
      EXPECT_EQ(stage_count(obs::Stage::kTransportRtt), claimed) << label;
      EXPECT_EQ(stage_count(obs::Stage::kArenaDecode), claimed) << label;
      EXPECT_EQ(stage_count(obs::Stage::kShardFold), claimed) << label;
      EXPECT_EQ(stage_count(obs::Stage::kMerge), claimed) << label;
      EXPECT_LE(claimed, rounds) << label;
      EXPECT_LT(rounds - claimed, depth) << label;
      EXPECT_LE(stage_count(obs::Stage::kPostProcess), kSteps) << label;

      // The canonical ingest counters must reproduce IngestStats exactly:
      // accepted matches, and the result-labeled series sum to total().
      const service::IngestStats stats = session.stats();
      const auto* accepted = snap.FindCounter(
          "ldpids_ingest_reports_total",
          {{"session", mechanism}, {"result", "accepted"}});
      ASSERT_NE(accepted, nullptr) << label;
      EXPECT_EQ(accepted->value, stats.accepted) << label;
      uint64_t result_sum = 0;
      for (const auto& c : snap.counters) {
        if (c.name == "ldpids_ingest_reports_total") result_sum += c.value;
      }
      EXPECT_EQ(result_sum, stats.total()) << label;
    }
  }
}

// Socket path: the announce half fires on the session thread (producing
// the round's frames into a loopback TCP connection with shuffled +
// duplicated delivery) while the ingest worker folds earlier rounds; a
// prefetched round's traffic is therefore in flight during the previous
// round's estimate — and the releases must still match the serial
// in-process run bit for bit.
TEST(PipelineSocketTest, PipelinedSocketMatchesSerialInprocBitForBit) {
  for (const std::string fo : {"GRR", "OLH"}) {
    const SessionRun expected = RunInproc("LBA", fo, 1);

    const ClientFleet fleet(kUsers, TruthValue, 4242);
    RoundBuffer buffer;
    FrameDemux demux;
    demux.Register(kSessionId, &buffer);
    SocketListener listener(0, demux.Handler());
    SocketClient sender(listener.port());

    auto announce = [&](const RoundRequest& request) {
      auto packets = fleet.ProduceRound(request, 1);
      Rng rng(HashCounter(999, request.round_index, 0));
      for (std::size_t i = packets.size(); i > 1; --i) {
        std::swap(packets[i - 1], packets[rng.UniformInt(i)]);
      }
      const std::size_t n = packets.size();
      for (std::size_t i = 0; i < n; i += 5) {
        packets.push_back(packets[i]);  // ~1/5 duplicated in flight
      }
      SendRoundFrames(sender, kSessionId, request.round_index, packets);
    };

    SessionRun run;
    {
      MechanismSession session(
          CreateMechanism("LBA", PipeConfig(fo), kUsers), kDomain,
          PipeOptions(2), MakeBufferedSplitTransport(buffer, announce, 1));
      for (std::size_t t = 0; t < kSteps; ++t) {
        run.steps.push_back(session.Advance());
      }
      run.ingest_stats = session.stats().ToString();
      // The session destructor drains the final prefetched round (its
      // frames are already in flight) before the socket tears down.
    }
    // The hostile schedule duplicates ~1/5 of every round in flight, so
    // acceptance stats differ from the clean in-process reference by
    // exactly those rejected duplicates — the releases must not.
    ExpectSameRun(expected, run, "socket/" + fo, /*compare_stats=*/false);
    EXPECT_GT(buffer.stats().duplicate_frames, 0u) << fo;
    EXPECT_EQ(buffer.stats().masked_losses, 0u) << fo;
    EXPECT_EQ(buffer.stats().deadline_flushes, 0u) << fo;
    EXPECT_EQ(buffer.stats().dropped(), 0u) << fo;
    sender.Close();
    listener.Stop();
    EXPECT_EQ(listener.stats().errors(), 0u) << fo;
  }
}

// A StreamServer of pipelined sessions (one ingest worker per stream, on
// top of AdvanceAll's across-stream parallelism) matches serial sessions.
TEST(PipelineServerTest, PipelinedStreamServerMatchesSerialSessions) {
  const std::vector<std::string> mechanisms = {"LBA", "LBD", "LSP"};
  std::vector<std::vector<StepResult>> expected;
  for (const std::string& m : mechanisms) {
    expected.push_back(RunInproc(m, "GRR", 1).steps);
  }

  StreamServer server(2);
  const ClientFleet fleet(kUsers, TruthValue, 4242);
  for (const std::string& m : mechanisms) {
    server.AddSession(m, std::make_unique<MechanismSession>(
                             CreateMechanism(m, PipeConfig("GRR"), kUsers),
                             kDomain, PipeOptions(2), fleet.Transport(1)));
  }
  for (std::size_t t = 0; t < kSteps; ++t) {
    const std::vector<StepResult> releases = server.AdvanceAll();
    for (std::size_t i = 0; i < mechanisms.size(); ++i) {
      EXPECT_EQ(releases[i].release, expected[i][t].release)
          << mechanisms[i] << " t=" << t;
      EXPECT_EQ(releases[i].published, expected[i][t].published)
          << mechanisms[i] << " t=" << t;
    }
  }
}

// Failure path: the clients stop reporting mid-stream while a prefetched
// round is in flight. The missing round deadline-flushes to an empty
// round, the zero-report claim fails the session permanently, and the
// ingest worker — which still holds announced-but-undelivered rounds —
// drains and shuts down without deadlocking.
TEST(PipelinePoisonTest, DeadlineFlushMidPipelinePoisonsCleanly) {
  RoundBufferOptions options;
  options.round_deadline = std::chrono::milliseconds(50);
  RoundBuffer dead_buffer(options);

  const ClientFleet fleet(kUsers, TruthValue, 4242);
  class BufferSender : public transport::FrameSender {
   public:
    explicit BufferSender(RoundBuffer& buffer) : buffer_(buffer) {}
    void Send(const Frame& frame) override {
      Frame copy = frame;
      buffer_.Deliver(std::move(copy));
    }

   private:
    RoundBuffer& buffer_;
  };
  BufferSender delivering(dead_buffer);

  // Only round 0's packets ever arrive; every later announced round times
  // out at the 50 ms deadline and flushes empty.
  auto announce = [&](const RoundRequest& request) {
    if (request.round_index > 0) return;
    SendRoundFrames(delivering, kSessionId, request.round_index,
                    fleet.ProduceRound(request, 1));
  };

  MechanismSession session(
      CreateMechanism("LBA", PipeConfig("GRR"), kUsers), kDomain,
      PipeOptions(2), MakeBufferedSplitTransport(dead_buffer, announce, 1));

  bool failed = false;
  for (std::size_t t = 0; t < 3 && !failed; ++t) {
    try {
      session.Advance();
    } catch (const std::runtime_error&) {
      failed = true;
    }
  }
  ASSERT_TRUE(failed);
  EXPECT_TRUE(session.failed());
  // Permanently failed: the w-event accounting cannot be resumed.
  EXPECT_THROW(session.Advance(), std::logic_error);
  EXPECT_GE(dead_buffer.stats().deadline_flushes, 1u);
  // Destruction joins the ingest worker; reaching the end of this test
  // without hanging is the deadlock pin.
}

}  // namespace
}  // namespace ldpids
