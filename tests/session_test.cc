// Regression pins for the mechanism-session refactor: re-expressing the
// offline Run/Step path over the CollectorContext session API must not
// change a single bit of any release stream.
//
// The golden digests below were captured from the pre-session code (the
// fused StreamMechanism::CollectViaFo(StreamDataset) path) at the listed
// configuration, for all 7 mechanisms x {GRR, OLH} x {cohort, per-user}
// simulation. They are platform-stable: the entire pipeline is seeded
// xoshiro/counter-hash arithmetic on IEEE doubles.
#include <cstddef>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "analysis/runner.h"
#include "core/factory.h"
#include "core/mechanism.h"
#include "datagen/synthetic.h"
#include "util/histogram.h"

namespace ldpids {
namespace {

// FNV-1a over the raw bytes of the run's releases, publication flags and
// message counters. Bitwise: any change in any released double trips it.
uint64_t DigestRun(const RunResult& run) {
  uint64_t h = 1469598103934665603ULL;
  auto fold = [&h](const void* p, std::size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  };
  for (const Histogram& r : run.releases) {
    fold(r.data(), r.size() * sizeof(double));
  }
  for (bool p : run.published) {
    const unsigned char b = p ? 1 : 0;
    fold(&b, 1);
  }
  fold(&run.total_messages, sizeof(run.total_messages));
  fold(&run.num_publications, sizeof(run.num_publications));
  return h;
}

MechanismConfig PinnedConfig(const std::string& fo, bool per_user) {
  MechanismConfig c;
  c.epsilon = 1.0;
  c.window = 8;
  c.fo = fo;
  c.seed = 55;
  c.per_user_simulation = per_user;
  return c;
}

struct GoldenDigest {
  const char* mechanism;
  const char* fo;
  bool per_user;
  uint64_t digest;
};

// Captured from the pre-session implementation (PR 2 state) on
// MakeLnsDataset(4000, 40, 0.0025, 9) with PinnedConfig, repetition 0.
constexpr GoldenDigest kGoldens[] = {
    {"LBU", "GRR", false, 0x3A4A1057996DA8C9ULL},
    {"LSP", "GRR", false, 0x44FC0CFD71EB672DULL},
    {"LBD", "GRR", false, 0xF62CD7B850B9889FULL},
    {"LBA", "GRR", false, 0xE035EC7623B12F19ULL},
    {"LPU", "GRR", false, 0x2322AEC23811D703ULL},
    {"LPD", "GRR", false, 0x225E0D16A0396E07ULL},
    {"LPA", "GRR", false, 0x942567A533807D72ULL},
    {"LBU", "GRR", true, 0xAF956D093BECA523ULL},
    {"LSP", "GRR", true, 0x7EAD1764AB4D694DULL},
    {"LBD", "GRR", true, 0x4D42D2D2D8A525FDULL},
    {"LBA", "GRR", true, 0x0DEED22E4A481A2EULL},
    {"LPU", "GRR", true, 0x3D9015322C47D227ULL},
    {"LPD", "GRR", true, 0x23EC15E5BC81859FULL},
    {"LPA", "GRR", true, 0x234CB07872105801ULL},
    {"LBU", "OLH", false, 0x3F8545760C889DD1ULL},
    {"LSP", "OLH", false, 0x39D25E54B70AA04DULL},
    {"LBD", "OLH", false, 0x6386DF1099F12255ULL},
    {"LBA", "OLH", false, 0x57D52B274695F57FULL},
    {"LPU", "OLH", false, 0x57BD153CBBF769FDULL},
    {"LPD", "OLH", false, 0x40CB42AA245BBE11ULL},
    {"LPA", "OLH", false, 0x298738F21F676307ULL},
    {"LBU", "OLH", true, 0x8A02AA3F7575688FULL},
    {"LSP", "OLH", true, 0x7CE00A35101EB15DULL},
    {"LBD", "OLH", true, 0x768C393E5971EEB3ULL},
    {"LBA", "OLH", true, 0x0A01597C39661F46ULL},
    {"LPU", "OLH", true, 0x97D3717C82A4EC8CULL},
    {"LPD", "OLH", true, 0xD6E0A04EDCB12C6FULL},
    {"LPA", "OLH", true, 0x9B1940A6D85A2E86ULL},
};

TEST(SessionRegressionTest, RunOverSessionApiMatchesPreRefactorGoldens) {
  const auto data = MakeLnsDataset(4000, 40, 0.0025, 9);
  for (const GoldenDigest& golden : kGoldens) {
    const RunResult run = RunMechanism(
        *data, golden.mechanism,
        PinnedConfig(golden.fo, golden.per_user), 0);
    EXPECT_EQ(DigestRun(run), golden.digest)
        << golden.mechanism << "/" << golden.fo
        << (golden.per_user ? "/per-user" : "/cohort");
  }
}

// Driving Step(CollectorContext&, t) by hand must match Run(data) exactly:
// the offline path is a thin adapter over the session API, not a separate
// code path.
TEST(SessionApiTest, ManualSessionDriveMatchesRun) {
  const auto data = MakeLnsDataset(3000, 24, 0.0025, 4);
  for (const std::string& name : AllMechanismNames()) {
    const MechanismConfig config = PinnedConfig("GRR", false);
    auto reference = CreateMechanism(name, config, data->num_users());
    const RunResult expected = reference->Run(*data);

    auto fresh = CreateMechanism(name, config, data->num_users());
    RunResult actual;
    actual.num_users = data->num_users();
    actual.timestamps = data->length();
    // Step(data, t) builds a DatasetCollector per call; equality here
    // proves per-call collector construction is also invisible.
    for (std::size_t t = 0; t < data->length(); ++t) {
      StepResult step = fresh->Step(*data, t);
      actual.total_messages += step.messages;
      actual.num_publications += step.published ? 1 : 0;
      actual.published.push_back(step.published);
      actual.releases.push_back(std::move(step.release));
    }
    EXPECT_EQ(expected.releases, actual.releases) << name;
    EXPECT_EQ(expected.published, actual.published) << name;
    EXPECT_EQ(expected.total_messages, actual.total_messages) << name;
  }
}

TEST(SessionApiTest, SessionRunOverCollectorMatchesDatasetRun) {
  const auto data = MakeSinDataset(2500, 20, 0.05, 6);
  const MechanismConfig config = PinnedConfig("OUE", false);
  auto reference = CreateMechanism("LPA", config, data->num_users());
  const RunResult expected = reference->Run(*data);

  // Same stream via per-step session calls on a second instance (fresh
  // DatasetCollector per call, covering a non-GRR oracle).
  auto driven = CreateMechanism("LPA", config, data->num_users());
  RunResult actual;
  for (std::size_t t = 0; t < data->length(); ++t) {
    StepResult step = driven->Step(*data, t);
    actual.releases.push_back(std::move(step.release));
  }
  EXPECT_EQ(expected.releases, actual.releases);
}

TEST(SessionApiTest, StepEnforcesSequentialTimestampsThroughCollector) {
  const auto data = MakeSinDataset(1000, 10, 0.05, 3);
  auto m = CreateMechanism("LBU", PinnedConfig("GRR", false),
                           data->num_users());
  m->Step(*data, 0);
  EXPECT_THROW(m->Step(*data, 2), std::logic_error);
  EXPECT_THROW(m->Step(*data, 0), std::logic_error);
  m->Step(*data, 1);
}

TEST(SessionApiTest, CollectorPopulationMismatchThrows) {
  const auto data = MakeSinDataset(1000, 10, 0.05, 3);
  auto m = CreateMechanism("LBU", PinnedConfig("GRR", false), 999);
  EXPECT_THROW(m->Step(*data, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ldpids
