// Edge-of-parameter-space behaviour: degenerate windows, extreme budgets,
// minimal populations, and cross-feature interactions (post-processing on
// adaptive mechanisms, FO switching mid-family).
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "analysis/runner.h"
#include "core/factory.h"
#include "core/lpa.h"
#include "core/lpd.h"
#include "core/lpu.h"
#include "datagen/probability_model.h"
#include "datagen/synthetic.h"

namespace ldpids {
namespace {

MechanismConfig Config(double eps, std::size_t w) {
  MechanismConfig c;
  c.epsilon = eps;
  c.window = w;
  c.seed = 5;
  return c;
}

TEST(MechanismEdgeTest, WindowOfOneBehavesLikeRepeatedOneShot) {
  // w = 1: every mechanism may spend everything at every timestamp; no
  // mechanism should throw and LBU == LPU in structure (all users, full
  // budget each step for LBU; one group = everyone for LPU).
  const auto data = MakeSinDataset(3000, 20, 0.05, 1);
  for (const std::string& name : AllMechanismNames()) {
    const RunResult run = RunMechanism(*data, name, Config(1.0, 1));
    EXPECT_EQ(run.releases.size(), 20u) << name;
  }
  const RunResult lpu = RunMechanism(*data, "LPU", Config(1.0, 1));
  EXPECT_DOUBLE_EQ(lpu.Cfpu(), 1.0);  // group size N/1 = everyone
}

TEST(MechanismEdgeTest, HugeEpsilonGivesNearExactReleases) {
  const auto data = MakeSinDataset(20000, 30, 0.05, 2);
  const auto truth = data->TrueStream();
  for (const std::string name : {"LBU", "LPU"}) {
    const RunResult run = RunMechanism(*data, name, Config(50.0, 5));
    EXPECT_LT(MeanAbsoluteError(truth, run.releases), 0.02) << name;
  }
}

TEST(MechanismEdgeTest, TinyEpsilonStillSatisfiesAccountingAndRuns) {
  const auto data = MakeSinDataset(5000, 40, 0.05, 3);
  for (const std::string& name : AllMechanismNames()) {
    EXPECT_NO_THROW(RunMechanism(*data, name, Config(0.01, 10))) << name;
  }
}

TEST(MechanismEdgeTest, MinimalPopulationForPopulationDivision) {
  // Exactly 2*w users: LPD/LPA get one dissimilarity user per timestamp.
  const auto data = MakeSinDataset(20, 25, 0.05, 4);
  for (const std::string name : {"LPD", "LPA"}) {
    const RunResult run = RunMechanism(*data, name, Config(1.0, 10));
    EXPECT_EQ(run.releases.size(), 25u) << name;
  }
}

TEST(MechanismEdgeTest, LpaConstructionAtExactPopulationBoundary) {
  // Regression for the constructor-initialization hazard: LPA used to read
  // its config mid-initialization while the argument was being moved into
  // the base class. At the num_users == 2*w boundary the PopulationManager
  // must be built with the *validated* window, and the mechanism must run a
  // full stream (one dissimilarity user per timestamp, unit = N/(2w) = 1).
  const MechanismConfig c = Config(1.0, 10);
  LpaMechanism lpa(c, 20);
  EXPECT_EQ(lpa.config().window, 10u);
  EXPECT_EQ(lpa.num_users(), 20u);
  const auto data = MakeSinDataset(20, 25, 0.05, 11);
  const RunResult run = lpa.Run(*data);
  EXPECT_EQ(run.releases.size(), 25u);
  // One user short of the boundary must be rejected up front.
  EXPECT_THROW(LpaMechanism(c, 19), std::invalid_argument);
}

TEST(MechanismEdgeTest, PopulationMechanismsValidatePopulationUpFront) {
  // The same precondition family across all population-division mechanisms:
  // exactly-enough users construct, one fewer throws std::invalid_argument.
  const MechanismConfig c = Config(1.0, 8);
  EXPECT_NO_THROW(LpuMechanism(c, 8));
  EXPECT_THROW(LpuMechanism(c, 7), std::invalid_argument);
  EXPECT_NO_THROW(LpdMechanism(c, 16));
  EXPECT_THROW(LpdMechanism(c, 15), std::invalid_argument);
  EXPECT_NO_THROW(LpaMechanism(c, 16));
  EXPECT_THROW(LpaMechanism(c, 15), std::invalid_argument);
}

TEST(MechanismEdgeTest, PostProcessingComposesWithAdaptiveMechanisms) {
  // The processed release feeds the next dissimilarity comparison; the
  // pipeline must stay stable and at least as accurate in MRE terms.
  const auto data = MakeLnsDataset(20000, 80, 0.0025, 5);
  const auto truth = data->TrueStream();
  for (const std::string name : {"LBA", "LPA"}) {
    MechanismConfig raw = Config(1.0, 10);
    MechanismConfig pp = raw;
    pp.post_process = PostProcess::kNormSub;
    const double mre_raw =
        MeanRelativeError(truth, RunMechanism(*data, name, raw).releases);
    const double mre_pp =
        MeanRelativeError(truth, RunMechanism(*data, name, pp).releases);
    EXPECT_LT(mre_pp, mre_raw * 1.3) << name;  // never much worse
  }
}

TEST(MechanismEdgeTest, StepStreamPunishesLsp) {
  // The step workload flips levels every half-window; LSP's fixed sampling
  // misses every other level while LPA chases it.
  const auto probs = GenerateStepSequence(120, 0.1, 0.5, 7);
  const auto data =
      std::make_shared<BinarySyntheticDataset>("step", 40000, probs, 6);
  const auto truth = data->TrueStream();
  const double mse_lsp = MeanSquaredError(
      truth, RunMechanism(*data, "LSP", Config(1.0, 20)).releases);
  const double mse_lpa = MeanSquaredError(
      truth, RunMechanism(*data, "LPA", Config(1.0, 20)).releases);
  EXPECT_LT(mse_lpa, mse_lsp);
}

TEST(MechanismEdgeTest, AllFosDriveAdaptiveMechanisms) {
  const auto data = MakeSinDataset(8000, 24, 0.05, 7);
  for (const std::string& fo : AllFrequencyOracleNames()) {
    MechanismConfig c = Config(1.0, 8);
    c.fo = fo;
    for (const std::string name : {"LBA", "LPA"}) {
      EXPECT_NO_THROW(RunMechanism(*data, name, c)) << name << "+" << fo;
    }
  }
}

TEST(MechanismEdgeTest, StreamShorterThanWindow) {
  // T < w: a single (partial) window; everything must still account
  // correctly.
  const auto data = MakeSinDataset(4000, 5, 0.05, 8);
  for (const std::string& name : AllMechanismNames()) {
    const RunResult run = RunMechanism(*data, name, Config(1.0, 20));
    EXPECT_EQ(run.releases.size(), 5u) << name;
  }
}

TEST(MechanismEdgeTest, ZeroedFirstReleaseNeverLeaksNan) {
  const auto data = MakeLogDataset(4000, 15, 9);
  for (const std::string& name : AllMechanismNames()) {
    const RunResult run = RunMechanism(*data, name, Config(0.5, 10));
    for (const Histogram& r : run.releases) {
      for (double x : r) EXPECT_TRUE(std::isfinite(x)) << name;
    }
  }
}

}  // namespace
}  // namespace ldpids
