#include "datagen/csv_dataset.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace ldpids {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(LoadCsvDatasetTest, ParsesDenseMatrix) {
  const std::string path =
      WriteTemp("ds_basic.csv", "0,1,2\n2,2,2\n1,0,1\n");
  const auto data = LoadCsvDataset(path, 3, "mini");
  EXPECT_EQ(data->num_users(), 3u);
  EXPECT_EQ(data->length(), 3u);
  EXPECT_EQ(data->domain(), 3u);
  EXPECT_EQ(data->name(), "mini");
  EXPECT_EQ(data->value(0, 2), 2u);
  EXPECT_EQ(data->value(2, 1), 0u);
  EXPECT_EQ(data->TrueCounts(1), (Counts{1, 1, 1}));
  std::remove(path.c_str());
}

TEST(LoadCsvDatasetTest, InfersDomainFromMaxValue) {
  const std::string path = WriteTemp("ds_infer.csv", "0,4\n1,2\n");
  const auto data = LoadCsvDataset(path);
  EXPECT_EQ(data->domain(), 5u);
  std::remove(path.c_str());
}

TEST(LoadCsvDatasetTest, SkipsBlankLines) {
  const std::string path = WriteTemp("ds_blank.csv", "0,1\n\n1,1\n");
  const auto data = LoadCsvDataset(path, 2);
  EXPECT_EQ(data->num_users(), 2u);
  std::remove(path.c_str());
}

TEST(LoadCsvDatasetTest, ReportsBadCellsWithLocation) {
  const std::string path = WriteTemp("ds_bad.csv", "0,1\n0,oops\n");
  try {
    LoadCsvDataset(path, 2);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("oops"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(LoadCsvDatasetTest, MissingFileThrows) {
  EXPECT_THROW(LoadCsvDataset("/no/such/file.csv"), std::runtime_error);
}

TEST(LoadCsvDatasetTest, RaggedRowsThrow) {
  const std::string path = WriteTemp("ds_ragged.csv", "0,1,1\n0,1\n");
  EXPECT_THROW(LoadCsvDataset(path, 2), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(LoadCsvDatasetTest, ValueOutsideDeclaredDomainThrows) {
  const std::string path = WriteTemp("ds_dom.csv", "0,5\n");
  EXPECT_THROW(LoadCsvDataset(path, 3), std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ldpids
