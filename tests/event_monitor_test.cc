#include "analysis/event_monitor.h"

#include <gtest/gtest.h>

namespace ldpids {
namespace {

TEST(MonitoredStatisticTest, BinaryStreamsUseOnesFrequency) {
  const std::vector<Histogram> stream = {{0.9, 0.1}, {0.4, 0.6}};
  const auto stat = MonitoredStatistic(stream);
  EXPECT_DOUBLE_EQ(stat[0], 0.1);
  EXPECT_DOUBLE_EQ(stat[1], 0.6);
}

TEST(MonitoredStatisticTest, CategoricalStreamsUsePeakBin) {
  const std::vector<Histogram> stream = {{0.2, 0.5, 0.3}, {0.7, 0.2, 0.1}};
  const auto stat = MonitoredStatistic(stream);
  EXPECT_DOUBLE_EQ(stat[0], 0.5);
  EXPECT_DOUBLE_EQ(stat[1], 0.7);
}

TEST(MonitoredStatisticTest, EmptyStreamThrows) {
  EXPECT_THROW(MonitoredStatistic({}), std::invalid_argument);
}

TEST(EventThresholdTest, MatchesPaperFormula) {
  const std::vector<double> stat = {0.0, 1.0, 0.5};
  // 0.75 * (1 - 0) + 0 = 0.75.
  EXPECT_DOUBLE_EQ(EventThreshold(stat), 0.75);
  // Custom quantile.
  EXPECT_DOUBLE_EQ(EventThreshold(stat, 0.5), 0.5);
  // Offset range.
  EXPECT_DOUBLE_EQ(EventThreshold({0.2, 0.6}, 0.75), 0.75 * 0.4 + 0.2);
}

TEST(EventLabelsTest, StrictlyAbove) {
  const auto labels = EventLabels({0.1, 0.75, 0.8}, 0.75);
  EXPECT_FALSE(labels[0]);
  EXPECT_FALSE(labels[1]);  // equal is not above
  EXPECT_TRUE(labels[2]);
}

TEST(PrepareEventDetectionTest, ProducesAlignedScoresAndLabels) {
  const std::vector<Histogram> truth = {
      {0.9, 0.1}, {0.9, 0.1}, {0.9, 0.1}, {0.2, 0.8}};
  const std::vector<Histogram> released = {
      {0.85, 0.15}, {0.88, 0.12}, {0.9, 0.1}, {0.3, 0.7}};
  std::vector<double> scores;
  std::vector<bool> labels;
  ASSERT_TRUE(PrepareEventDetection(truth, released, &scores, &labels));
  ASSERT_EQ(scores.size(), 4u);
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_TRUE(labels[3]);
  EXPECT_FALSE(labels[0]);
  EXPECT_DOUBLE_EQ(scores[3], 0.7);
}

TEST(PrepareEventDetectionTest, DegenerateTruthReturnsFalse) {
  // Constant truth: no event exceeds the threshold (or all would).
  const std::vector<Histogram> flat(5, Histogram{0.5, 0.5});
  std::vector<double> scores;
  std::vector<bool> labels;
  EXPECT_FALSE(PrepareEventDetection(flat, flat, &scores, &labels));
  EXPECT_TRUE(scores.empty());
  EXPECT_TRUE(labels.empty());
}

TEST(PrepareEventDetectionTest, MisalignedThrows) {
  const std::vector<Histogram> truth = {{0.5, 0.5}};
  std::vector<double> scores;
  std::vector<bool> labels;
  EXPECT_THROW(PrepareEventDetection(truth, {}, &scores, &labels),
               std::invalid_argument);
}

}  // namespace
}  // namespace ldpids
