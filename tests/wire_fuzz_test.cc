// Fuzz-ish wire-protocol regression: the non-throwing decoders must
// survive arbitrary corruption without crashing, must never accept a
// packet whose checksum does not validate, and must round-trip every
// oracle's payload exactly.
//
// Deterministically seeded, so a pass is reproducible — this is a
// regression net over the decoder's bounds handling, not a statistical
// test.
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "fo/client.h"
#include "fo/wire.h"
#include "util/rng.h"

namespace ldpids {
namespace {

constexpr std::size_t kDomain = 117;
constexpr double kEpsilon = 1.0;

std::vector<std::vector<uint8_t>> SamplePackets() {
  std::vector<std::vector<uint8_t>> packets;
  Rng rng(2024);
  for (OracleId oracle : AllOracleIds()) {
    for (uint32_t v : {0u, 1u, 57u, static_cast<uint32_t>(kDomain - 1)}) {
      packets.push_back(
          PerturbToWire(oracle, v, kEpsilon, kDomain, 9, rng));
    }
  }
  return packets;
}

TEST(WireFuzzTest, RoundTripIsExactForEveryOracle) {
  Rng rng(7);
  for (OracleId oracle : AllOracleIds()) {
    for (int trial = 0; trial < 50; ++trial) {
      const uint32_t value =
          static_cast<uint32_t>(rng.UniformInt(kDomain));
      const uint32_t timestamp = static_cast<uint32_t>(rng.NextU64());
      // Re-perturb with a recorded RNG so the expected report is known.
      Rng record(HashCounter(1, trial, static_cast<uint64_t>(oracle)));
      Rng replay(HashCounter(1, trial, static_cast<uint64_t>(oracle)));
      const auto packet = PerturbToWire(oracle, value, kEpsilon, kDomain,
                                        timestamp, record);
      DecodedReport report;
      ASSERT_EQ(TryDecodeReport(packet, kDomain, &report), WireError::kOk);
      EXPECT_EQ(report.oracle, oracle);
      EXPECT_EQ(report.timestamp, timestamp);
      // Decoding the same client draw again must produce an identical
      // packet: encode -> decode -> re-encode is the identity.
      const auto re_encoded = PerturbToWire(oracle, value, kEpsilon,
                                            kDomain, timestamp, replay);
      EXPECT_EQ(packet, re_encoded);
      EXPECT_EQ(packet.size(), EncodedReportSize(oracle, kDomain));
    }
  }
}

TEST(WireFuzzTest, SingleByteCorruptionIsAlwaysRejected) {
  // Flip random bit patterns at every byte position of every oracle's
  // packet; TryDecodeReport must reject each one (and must not throw).
  for (const auto& original : SamplePackets()) {
    Rng rng(33);
    for (std::size_t pos = 0; pos < original.size(); ++pos) {
      for (int trial = 0; trial < 8; ++trial) {
        auto corrupted = original;
        const uint8_t mask =
            static_cast<uint8_t>(1 + rng.UniformInt(255));  // never 0
        corrupted[pos] ^= mask;
        DecodedReport report;
        WireError err = WireError::kOk;
        ASSERT_NO_THROW(
            err = TryDecodeReport(corrupted, kDomain, &report));
        EXPECT_NE(err, WireError::kOk)
            << "byte " << pos << " mask " << static_cast<int>(mask);
      }
    }
  }
}

TEST(WireFuzzTest, EveryTruncationIsRejected) {
  for (const auto& original : SamplePackets()) {
    for (std::size_t len = 0; len < original.size(); ++len) {
      std::vector<uint8_t> truncated(original.begin(),
                                     original.begin() + len);
      DecodedReport report;
      WireError err = WireError::kOk;
      ASSERT_NO_THROW(err = TryDecodeReport(truncated, kDomain, &report));
      EXPECT_NE(err, WireError::kOk) << "length " << len;
    }
    // Extension without fixing the declared length must be rejected too.
    auto extended = original;
    extended.push_back(0x00);
    DecodedReport report;
    EXPECT_EQ(TryDecodeReport(extended, kDomain, &report),
              WireError::kLengthMismatch);
  }
}

TEST(WireFuzzTest, RandomGarbageNeverDecodes) {
  Rng rng(4096);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> garbage(rng.UniformInt(64));
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    DecodedReport report;
    WireError err = WireError::kOk;
    ASSERT_NO_THROW(err = TryDecodeReport(garbage, kDomain, &report));
    EXPECT_NE(err, WireError::kOk);
  }
}

TEST(WireFuzzTest, ValidEnvelopeWrongDomainIsRejectedNotCrashed) {
  // A packet that is pristine on the wire but sized for a different domain
  // must be a typed rejection (payload size or value range), never a crash
  // or a silent mis-read.
  Rng rng(5);
  for (OracleId oracle : AllOracleIds()) {
    const auto packet =
        PerturbToWire(oracle, 3, kEpsilon, kDomain, 0, rng);
    for (std::size_t other_domain : {2u, 16u, 1000u}) {
      DecodedReport report;
      WireError err = WireError::kOk;
      ASSERT_NO_THROW(
          err = TryDecodeReport(packet, other_domain, &report));
      if (oracle == OracleId::kOue || oracle == OracleId::kSue) {
        EXPECT_EQ(err, WireError::kPayloadSize);
      }
      // GRR may alias when the byte width matches; OLH/HR payloads are
      // domain-independent on the wire, so kOk is acceptable there — the
      // sketch-level range check (AddReport) is the second line of
      // defense, covered in service_test.
    }
  }
}

TEST(WireFuzzTest, ThrowingDecodersCarryTypedReasons) {
  auto packet = EncodeHrReport(1, 0);
  packet[0] ^= 0xFF;
  try {
    DecodeEnvelope(packet);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "wire: bad magic");
  }
}

}  // namespace
}  // namespace ldpids
