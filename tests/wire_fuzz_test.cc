// Fuzz-ish wire-protocol regression: the non-throwing decoders must
// survive arbitrary corruption without crashing, must never accept a
// packet whose checksum does not validate, and must round-trip every
// oracle's payload exactly.
//
// Deterministically seeded, so a pass is reproducible — this is a
// regression net over the decoder's bounds handling, not a statistical
// test.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fo/client.h"
#include "fo/frequency_oracle.h"
#include "fo/report_arena.h"
#include "fo/sketch_wire.h"
#include "fo/wire.h"
#include "transport/frame.h"
#include "util/rng.h"

namespace ldpids {
namespace {

constexpr std::size_t kDomain = 117;
constexpr double kEpsilon = 1.0;

std::vector<std::vector<uint8_t>> SamplePackets() {
  std::vector<std::vector<uint8_t>> packets;
  Rng rng(2024);
  for (OracleId oracle : AllOracleIds()) {
    for (uint32_t v : {0u, 1u, 57u, static_cast<uint32_t>(kDomain - 1)}) {
      packets.push_back(
          PerturbToWire(oracle, v, kEpsilon, kDomain, 9, v, rng));
    }
  }
  return packets;
}

TEST(WireFuzzTest, RoundTripIsExactForEveryOracle) {
  Rng rng(7);
  for (OracleId oracle : AllOracleIds()) {
    for (int trial = 0; trial < 50; ++trial) {
      const uint32_t value =
          static_cast<uint32_t>(rng.UniformInt(kDomain));
      const uint32_t timestamp = static_cast<uint32_t>(rng.NextU64());
      // Re-perturb with a recorded RNG so the expected report is known.
      Rng record(HashCounter(1, trial, static_cast<uint64_t>(oracle)));
      Rng replay(HashCounter(1, trial, static_cast<uint64_t>(oracle)));
      const uint64_t nonce = rng.NextU64();
      const auto packet = PerturbToWire(oracle, value, kEpsilon, kDomain,
                                        timestamp, nonce, record);
      DecodedReport report;
      ASSERT_EQ(TryDecodeReport(packet, kDomain, &report), WireError::kOk);
      EXPECT_EQ(report.oracle, oracle);
      EXPECT_EQ(report.timestamp, timestamp);
      EXPECT_EQ(report.nonce, nonce);
      // Decoding the same client draw again must produce an identical
      // packet: encode -> decode -> re-encode is the identity.
      const auto re_encoded = PerturbToWire(oracle, value, kEpsilon,
                                            kDomain, timestamp, nonce,
                                            replay);
      EXPECT_EQ(packet, re_encoded);
      EXPECT_EQ(packet.size(), EncodedReportSize(oracle, kDomain));
    }
  }
}

TEST(WireFuzzTest, SingleByteCorruptionIsAlwaysRejected) {
  // Flip random bit patterns at every byte position of every oracle's
  // packet; TryDecodeReport must reject each one (and must not throw).
  for (const auto& original : SamplePackets()) {
    Rng rng(33);
    for (std::size_t pos = 0; pos < original.size(); ++pos) {
      for (int trial = 0; trial < 8; ++trial) {
        auto corrupted = original;
        const uint8_t mask =
            static_cast<uint8_t>(1 + rng.UniformInt(255));  // never 0
        corrupted[pos] ^= mask;
        DecodedReport report;
        WireError err = WireError::kOk;
        ASSERT_NO_THROW(
            err = TryDecodeReport(corrupted, kDomain, &report));
        EXPECT_NE(err, WireError::kOk)
            << "byte " << pos << " mask " << static_cast<int>(mask);
      }
    }
  }
}

TEST(WireFuzzTest, EveryTruncationIsRejected) {
  for (const auto& original : SamplePackets()) {
    for (std::size_t len = 0; len < original.size(); ++len) {
      std::vector<uint8_t> truncated(original.begin(),
                                     original.begin() + len);
      DecodedReport report;
      WireError err = WireError::kOk;
      ASSERT_NO_THROW(err = TryDecodeReport(truncated, kDomain, &report));
      EXPECT_NE(err, WireError::kOk) << "length " << len;
    }
    // Extension without fixing the declared length must be rejected too.
    auto extended = original;
    extended.push_back(0x00);
    DecodedReport report;
    EXPECT_EQ(TryDecodeReport(extended, kDomain, &report),
              WireError::kLengthMismatch);
  }
}

TEST(WireFuzzTest, RandomGarbageNeverDecodes) {
  Rng rng(4096);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> garbage(rng.UniformInt(64));
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    DecodedReport report;
    WireError err = WireError::kOk;
    ASSERT_NO_THROW(err = TryDecodeReport(garbage, kDomain, &report));
    EXPECT_NE(err, WireError::kOk);
  }
}

// --- checksum parity (fo/wire.cc WireChecksum) ----------------------------
// The checksum runs over the SIMD layer, so its value must be identical on
// every backend. This reference reimplements the algorithm with plain
// scalar arithmetic and no shared code: four SplitMix64 lanes absorbing
// little-endian words of 32-byte blocks, a zero-padded tail block, and a
// size+rotation lane fold. Both backends are fuzzed against it (the CI
// force-scalar job runs this file on generic), and golden values pin the
// on-the-wire function across platforms and future refactors.

uint64_t ReferenceMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint32_t ReferenceChecksum(const uint8_t* data, std::size_t size) {
  uint64_t lane[4] = {0x243F6A8885A308D3ULL ^ static_cast<uint64_t>(size),
                      0x13198A2E03707344ULL, 0xA4093822299F31D0ULL,
                      0x082EFA98EC4E6C89ULL};
  const auto absorb = [&lane](const uint8_t* block) {
    for (int j = 0; j < 4; ++j) {
      uint64_t w = 0;
      for (int b = 7; b >= 0; --b) {
        w = (w << 8) | block[8 * j + b];  // little-endian word assembly
      }
      lane[j] = ReferenceMix64(lane[j] ^ w);
    }
  };
  std::size_t i = 0;
  for (; i + 32 <= size; i += 32) absorb(data + i);
  if (i < size) {
    uint8_t tail[32] = {0};
    std::copy(data + i, data + size, tail);
    absorb(tail);
  }
  const auto rotl = [](uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  };
  return static_cast<uint32_t>(ReferenceMix64(
      static_cast<uint64_t>(size) ^ lane[0] ^ rotl(lane[1], 17) ^
      rotl(lane[2], 34) ^ rotl(lane[3], 51)));
}

TEST(ChecksumParityTest, BackendMatchesScalarReferenceOnFuzzedInputs) {
  // Random lengths 0..4KiB at every misalignment 0..7: the packet decoder
  // checksums byte ranges at arbitrary offsets inside socket buffers, so
  // alignment must never change the value (or crash a vector load).
  Rng rng(0xC45);
  std::vector<uint8_t> buffer(4096 + 8);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t len = rng.UniformInt(4097);
    const std::size_t offset = rng.UniformInt(8);
    for (std::size_t i = 0; i < len + offset; ++i) {
      buffer[i] = static_cast<uint8_t>(rng.NextU64());
    }
    const uint8_t* p = buffer.data() + offset;
    EXPECT_EQ(WireChecksum(p, len), ReferenceChecksum(p, len))
        << "len " << len << " offset " << offset;
  }
  // Every length through a few blocks, so block/tail boundaries (0, 31,
  // 32, 33, 64, ...) are all hit exactly.
  for (std::size_t len = 0; len <= 100; ++len) {
    EXPECT_EQ(WireChecksum(buffer.data() + 1, len),
              ReferenceChecksum(buffer.data() + 1, len))
        << "len " << len;
  }
}

TEST(ChecksumParityTest, GoldenValuesArePinned) {
  // Frozen values of the wire checksum function. These must never change:
  // recorded frame logs and cross-version client/server pairs depend on
  // the function being stable across platforms, backends and refactors.
  const struct {
    std::size_t len;
    uint32_t checksum;
  } kGolden[] = {
      {0u, 0x03516A10u},   {1u, 0x80E28689u},   {7u, 0x1978346Fu},
      {8u, 0xB4F1CA74u},   {31u, 0x19A6BDF8u},  {32u, 0xB1B63B56u},
      {33u, 0x5AD9F3F8u},  {64u, 0xA823BFC7u},  {255u, 0x74F17A7Au},
      {4096u, 0x4E7D3DF6u},
  };
  for (const auto& g : kGolden) {
    std::vector<uint8_t> buf(g.len);
    Rng rng(0xC0FFEE ^ static_cast<uint64_t>(g.len));
    for (auto& b : buf) b = static_cast<uint8_t>(rng.NextU64());
    EXPECT_EQ(WireChecksum(buf.data(), buf.size()), g.checksum)
        << "len " << g.len;
  }
}

TEST(ChecksumParityTest, VerifyChecksumsMatchesPerPacketVerdicts) {
  // The batched entry point must agree with recomputing each packet's
  // trailing checksum individually — including undersized spans.
  Rng rng(0xBA7C4);
  std::vector<std::vector<uint8_t>> spans;
  for (const auto& packet : SamplePackets()) {
    spans.push_back(packet);
    auto corrupted = packet;
    corrupted[rng.UniformInt(corrupted.size())] ^=
        static_cast<uint8_t>(1 + rng.UniformInt(255));
    spans.push_back(std::move(corrupted));
  }
  for (std::size_t n : {0u, 1u, 2u, 3u}) {
    std::vector<uint8_t> tiny(n);
    for (auto& b : tiny) b = static_cast<uint8_t>(rng.NextU64());
    spans.push_back(std::move(tiny));
  }
  std::vector<const uint8_t*> datas;
  std::vector<std::size_t> sizes;
  for (const auto& s : spans) {
    datas.push_back(s.data());
    sizes.push_back(s.size());
  }
  std::vector<uint8_t> ok(spans.size(), 0xCC);
  VerifyChecksums(datas.data(), sizes.data(), spans.size(), ok.data());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& s = spans[i];
    const bool want =
        s.size() >= 4 &&
        GetU32Le(s.data() + s.size() - 4) ==
            WireChecksum(s.data(), s.size() - 4);
    EXPECT_EQ(ok[i], want ? 1 : 0) << "span " << i;
  }
}

TEST(ChecksumParityTest, UniformSizeRunsMatchPerPacketVerdicts) {
  // A run of >= 8 equal-size spans takes the 8-wide batched kernel when
  // the build and CPU have AVX-512; its verdicts must match the per-span
  // recompute bit for bit across size classes (sub-block, exact-block and
  // multi-block inputs, valid and corrupted).
  Rng rng(0x8A7E5);
  for (const std::size_t len :
       {5u, 24u, 27u, 35u, 36u, 64u, 151u, 513u}) {
    std::vector<std::vector<uint8_t>> spans;
    for (int i = 0; i < 21; ++i) {
      std::vector<uint8_t> s(len);
      for (auto& b : s) b = static_cast<uint8_t>(rng.NextU64());
      PutU32Le(&s, WireChecksum(s.data(), s.size()));
      if (i % 5 == 2) {
        s[rng.UniformInt(s.size())] ^=
            static_cast<uint8_t>(1 + rng.UniformInt(255));
      }
      spans.push_back(std::move(s));
    }
    std::vector<const uint8_t*> datas;
    std::vector<std::size_t> sizes;
    for (const auto& s : spans) {
      datas.push_back(s.data());
      sizes.push_back(s.size());
    }
    std::vector<uint8_t> ok(spans.size(), 0xCC);
    VerifyChecksums(datas.data(), sizes.data(), spans.size(), ok.data());
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const auto& s = spans[i];
      const bool want = GetU32Le(s.data() + s.size() - 4) ==
                        WireChecksum(s.data(), s.size() - 4);
      EXPECT_EQ(ok[i], want ? 1 : 0) << "len " << len << " span " << i;
    }
  }
}

TEST(WireFuzzTest, ValidEnvelopeWrongDomainIsRejectedNotCrashed) {
  // A packet that is pristine on the wire but sized for a different domain
  // must be a typed rejection (payload size or value range), never a crash
  // or a silent mis-read.
  Rng rng(5);
  for (OracleId oracle : AllOracleIds()) {
    const auto packet =
        PerturbToWire(oracle, 3, kEpsilon, kDomain, 0, 3, rng);
    for (std::size_t other_domain : {2u, 16u, 1000u}) {
      DecodedReport report;
      WireError err = WireError::kOk;
      ASSERT_NO_THROW(
          err = TryDecodeReport(packet, other_domain, &report));
      if (oracle == OracleId::kOue || oracle == OracleId::kSue) {
        EXPECT_EQ(err, WireError::kPayloadSize);
      }
      // GRR may alias when the byte width matches; OLH/HR payloads are
      // domain-independent on the wire, so kOk is acceptable there — the
      // sketch-level range check (AddReport) is the second line of
      // defense, covered in service_test.
    }
  }
}

// --- frame codec (src/transport/frame.h) ----------------------------------
// The same contract one layer up: arbitrary corruption of a framed stream
// must never crash the streaming decoder and must never pass the checksum,
// and split/merged TCP reads must reassemble the identical frames.

std::vector<uint8_t> SampleFrameStream(
    std::vector<transport::Frame>* frames_out = nullptr) {
  std::vector<uint8_t> stream;
  Rng rng(77);
  uint64_t round = 0;
  for (const auto& packet : SamplePackets()) {
    transport::Frame frame =
        transport::MakeDataFrame(rng.NextU64() % 4, round++, packet);
    transport::AppendEncodedFrame(frame, &stream);
    if (frames_out != nullptr) frames_out->push_back(std::move(frame));
  }
  transport::Frame marker = transport::MakeEndRoundFrame(1, round, 20);
  transport::AppendEncodedFrame(marker, &stream);
  if (frames_out != nullptr) frames_out->push_back(std::move(marker));
  return stream;
}

TEST(FrameFuzzTest, SingleByteCorruptionNeverPassesTheChecksum) {
  // Flip random bit patterns at every byte of a single encoded frame; the
  // one-shot decoder must reject (or ask for more bytes), never accept.
  Rng rng(501);
  const auto packet = PerturbToWire(OracleId::kGrr, 1, kEpsilon, kDomain,
                                    0, 42, rng);
  const auto original =
      transport::EncodeFrame(transport::MakeDataFrame(9, 3, packet));
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    for (int trial = 0; trial < 8; ++trial) {
      auto corrupted = original;
      corrupted[pos] ^= static_cast<uint8_t>(1 + rng.UniformInt(255));
      transport::Frame frame;
      std::size_t consumed = 0;
      transport::FrameError err = transport::FrameError::kOk;
      ASSERT_NO_THROW(err = transport::TryDecodeFrame(
                          corrupted.data(), corrupted.size(), &frame,
                          &consumed));
      EXPECT_NE(err, transport::FrameError::kOk) << "byte " << pos;
    }
  }
}

TEST(FrameFuzzTest, CorruptedStreamsResyncAndNeverCrash) {
  // Flip a byte at every position of a multi-frame stream and run the full
  // streaming decoder over it: no crash, no bogus frame — every frame the
  // decoder does deliver is bit-identical to one that was sent, and at
  // most the frames overlapping the corruption are lost.
  std::vector<transport::Frame> sent;
  const auto stream = SampleFrameStream(&sent);
  Rng rng(93);
  for (std::size_t pos = 0; pos < stream.size(); ++pos) {
    auto corrupted = stream;
    corrupted[pos] ^= static_cast<uint8_t>(1 + rng.UniformInt(255));
    transport::FrameDecoder decoder;
    decoder.Append(corrupted);
    transport::Frame frame;
    std::size_t delivered = 0;
    std::size_t cursor = 0;
    while (decoder.Next(&frame)) {
      ++delivered;
      // Frames come out in order; find this one among the remaining sent
      // frames (corruption may have eaten some in between).
      bool found = false;
      for (; cursor < sent.size(); ++cursor) {
        if (sent[cursor].session_id == frame.session_id &&
            sent[cursor].timestamp == frame.timestamp &&
            sent[cursor].kind == frame.kind &&
            sent[cursor].payload == frame.payload) {
          ++cursor;
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "decoder fabricated a frame at byte " << pos;
    }
    // A flip in a length field makes the decoder wait for a frame longer
    // than the remaining stream — everything after it stays pending until
    // more traffic (or a connection timeout) resolves it. Otherwise at
    // most the two frames overlapping the corruption are lost.
    if (decoder.pending_bytes() == 0) {
      EXPECT_GE(delivered + 2, sent.size()) << "byte " << pos;
    }
    EXPECT_GT(decoder.stats().errors() + decoder.pending_bytes(), 0u)
        << "byte " << pos;
  }
}

TEST(FrameFuzzTest, TruncatedStreamsNeverYieldAPartialFrame) {
  std::vector<transport::Frame> sent;
  const auto stream = SampleFrameStream(&sent);
  // Cut the stream at every length; whole frames before the cut decode,
  // the partial tail never does.
  for (std::size_t len = 0; len < stream.size(); len += 3) {
    transport::FrameDecoder decoder;
    decoder.Append(stream.data(), len);
    transport::Frame frame;
    std::size_t count = 0;
    while (decoder.Next(&frame)) {
      ASSERT_LT(count, sent.size());
      EXPECT_EQ(frame.payload, sent[count].payload);
      ++count;
    }
    EXPECT_EQ(decoder.stats().errors(), 0u) << "length " << len;
    // Whatever did not fit stays pending; nothing partial was delivered.
    EXPECT_EQ(decoder.stats().bytes + decoder.pending_bytes(), len);
  }
}

TEST(FrameFuzzTest, RandomGarbageNeverDecodesAsAFrame) {
  Rng rng(8192);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> garbage(rng.UniformInt(200));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.NextU64());
    transport::FrameDecoder decoder;
    ASSERT_NO_THROW(decoder.Append(garbage));
    transport::Frame frame;
    ASSERT_FALSE(decoder.Next(&frame)) << "trial " << trial;
  }
}

TEST(FrameFuzzTest, SplitAndMergedReadsAgreeWithOneShotDecoding) {
  // TCP may hand the server any byte slicing of the stream; every slicing
  // must produce the identical frame sequence.
  std::vector<transport::Frame> sent;
  const auto stream = SampleFrameStream(&sent);
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    transport::FrameDecoder decoder;
    std::size_t fed = 0;
    std::size_t count = 0;
    transport::Frame frame;
    while (fed < stream.size()) {
      const std::size_t n =
          std::min(stream.size() - fed,
                   static_cast<std::size_t>(1 + rng.UniformInt(61)));
      decoder.Append(stream.data() + fed, n);
      fed += n;
      while (decoder.Next(&frame)) {
        ASSERT_LT(count, sent.size());
        EXPECT_EQ(frame.session_id, sent[count].session_id);
        EXPECT_EQ(frame.timestamp, sent[count].timestamp);
        EXPECT_EQ(frame.payload, sent[count].payload);
        ++count;
      }
    }
    EXPECT_EQ(count, sent.size()) << "trial " << trial;
    EXPECT_EQ(decoder.stats().errors(), 0u);
  }
}

// --- columnar batch decoder (fo/report_arena.h) ---------------------------
// The arena ingests the same byte soup the per-report decoders face, so it
// gets the same net: arbitrary corruption must never crash it (the suite
// runs under ASan+UBSan in CI), every packet must land in exactly one
// stats bucket, and its accept/reject classification must equal the
// per-report TryDecodeReport path packet for packet.

TEST(ArenaFuzzTest, CorruptedBatchesClassifyExactlyLikePerReportDecode) {
  Rng rng(617);
  for (OracleId oracle : AllOracleIds()) {
    // Valid packets for the round, plus heavy mutation: bit flips at
    // random positions, truncations, extensions, pure garbage.
    std::vector<std::vector<uint8_t>> packets;
    uint64_t nonce = 1;
    for (int i = 0; i < 40; ++i) {
      const uint32_t v = static_cast<uint32_t>(rng.UniformInt(kDomain));
      const uint32_t ts = rng.Bernoulli(0.8) ? 5u : 6u;
      packets.push_back(
          PerturbToWire(oracle, v, kEpsilon, kDomain, ts, nonce++, rng));
    }
    const std::size_t valid_count = packets.size();
    for (std::size_t i = 0; i < valid_count; ++i) {
      auto mutated = packets[i];
      switch (rng.UniformInt(4)) {
        case 0:
          mutated[rng.UniformInt(mutated.size())] ^=
              static_cast<uint8_t>(1 + rng.UniformInt(255));
          break;
        case 1:
          mutated.resize(rng.UniformInt(mutated.size()));
          break;
        case 2:
          mutated.push_back(static_cast<uint8_t>(rng.NextU64()));
          break;
        default:
          mutated.assign(rng.UniformInt(48),
                         static_cast<uint8_t>(rng.NextU64()));
          break;
      }
      packets.push_back(std::move(mutated));
    }

    ReportArena arena;
    arena.BeginRound(oracle, 5, {kEpsilon, kDomain});
    ASSERT_NO_THROW(arena.AppendBatch(packets));

    // Every packet lands in exactly one bucket.
    EXPECT_EQ(arena.stats().total(), packets.size());

    // Reference classification via the per-report decoder, in the ingest
    // shard's order.
    std::size_t want_rows = 0;
    ArenaDecodeStats want;
    for (const auto& p : packets) {
      DecodedReport report;
      WireError err = WireError::kOk;
      ASSERT_NO_THROW(err = TryDecodeReport(p, kDomain, &report));
      if (err != WireError::kOk) {
        ++want.malformed;
        ++want.wire_errors[static_cast<std::size_t>(err)];
      } else if (report.oracle != oracle) {
        ++want.wrong_oracle;
      } else if (report.timestamp != 5) {
        ++want.wrong_timestamp;
      } else {
        ++want_rows;
      }
    }
    EXPECT_EQ(arena.size(), want_rows);
    EXPECT_EQ(arena.stats().decoded, want_rows);
    EXPECT_EQ(arena.stats().malformed, want.malformed);
    EXPECT_EQ(arena.stats().wrong_oracle, want.wrong_oracle);
    EXPECT_EQ(arena.stats().wrong_timestamp, want.wrong_timestamp);
    for (std::size_t e = 0; e < kWireErrorCount; ++e) {
      EXPECT_EQ(arena.stats().wire_errors[e], want.wire_errors[e])
          << WireErrorName(static_cast<WireError>(e));
    }
  }
}

TEST(ArenaFuzzTest, RandomGarbageBatchesNeverProduceRows) {
  Rng rng(3131);
  ReportArena arena;
  arena.BeginRound(OracleId::kOue, 0, {kEpsilon, kDomain});
  std::vector<std::vector<uint8_t>> garbage(500);
  for (auto& p : garbage) {
    p.resize(rng.UniformInt(96));
    for (auto& b : p) b = static_cast<uint8_t>(rng.NextU64());
  }
  ASSERT_NO_THROW(arena.AppendBatch(garbage));
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_EQ(arena.stats().total(), garbage.size());
  EXPECT_EQ(arena.stats().malformed, garbage.size());
}

// --- partial-sketch codec (fo/sketch_wire.h) ------------------------------
// The merge tree's serialization boundary gets the same net as the report
// wire one layer down: arbitrary corruption of a partial-sketch payload
// must never crash TryViewPartialSketch, must never half-decode (the view
// is written only on kOk), and a corrupt or mismatched partial handed to
// MergePartialSketch must land in exactly one typed rejection bucket
// without touching the destination sketch.

std::vector<std::vector<uint8_t>> SamplePartials() {
  std::vector<std::vector<uint8_t>> partials;
  Rng rng(0x5EED);
  for (OracleId oracle : AllOracleIds()) {
    const FrequencyOracle& fo = GetFrequencyOracle(OracleIdName(oracle));
    for (const uint64_t users : {0u, 1u, 33u}) {
      auto sketch = fo.CreateSketch({kEpsilon, kDomain});
      for (uint64_t u = 0; u < users; ++u) {
        sketch->AddUser(static_cast<uint32_t>(u % kDomain), rng);
      }
      partials.push_back(EncodePartialSketch(
          *sketch, oracle, /*node_id=*/users + 1, /*round_index=*/4,
          /*timestamp=*/9, kEpsilon));
    }
  }
  return partials;
}

TEST(SketchWireFuzzTest, SingleByteCorruptionNeverDecodes) {
  for (const auto& original : SamplePartials()) {
    Rng rng(911);
    for (std::size_t pos = 0; pos < original.size(); ++pos) {
      for (int trial = 0; trial < 4; ++trial) {
        auto corrupted = original;
        corrupted[pos] ^= static_cast<uint8_t>(1 + rng.UniformInt(255));
        PartialSketchView view;
        view.node_id = 0xD1D1;  // sentinel: must survive a rejection
        SketchWireError err = SketchWireError::kOk;
        ASSERT_NO_THROW(
            err = TryViewPartialSketch(corrupted, &view));
        EXPECT_NE(err, SketchWireError::kOk)
            << "byte " << pos << " of " << original.size();
        // No partial decode: the view is untouched on every rejection.
        EXPECT_EQ(view.node_id, 0xD1D1u);
      }
    }
  }
}

TEST(SketchWireFuzzTest, TruncationsAndExtensionsNeverDecode) {
  for (const auto& original : SamplePartials()) {
    for (std::size_t len = 0; len < original.size(); ++len) {
      PartialSketchView view;
      SketchWireError err = SketchWireError::kOk;
      ASSERT_NO_THROW(
          err = TryViewPartialSketch(original.data(), len, &view));
      EXPECT_NE(err, SketchWireError::kOk) << "length " << len;
    }
    auto extended = original;
    extended.push_back(0x00);
    PartialSketchView view;
    EXPECT_NE(TryViewPartialSketch(extended, &view), SketchWireError::kOk);
  }
}

TEST(SketchWireFuzzTest, RandomGarbageNeverDecodes) {
  Rng rng(0xFA22);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> garbage(rng.UniformInt(kSketchWireHeaderSize * 3));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.NextU64());
    PartialSketchView view;
    SketchWireError err = SketchWireError::kOk;
    ASSERT_NO_THROW(err = TryViewPartialSketch(garbage, &view));
    EXPECT_NE(err, SketchWireError::kOk) << "trial " << trial;
  }
}

TEST(SketchWireFuzzTest, MergeNeverCrashesAndNeverSilentlyFolds) {
  // Heavy mutation against the merge edge itself: every payload — valid,
  // flipped, truncated, extended, garbage — lands in exactly one
  // SketchMergeStats bucket, and only bit-exact valid partials change the
  // destination sketch.
  Rng rng(0xF01D);
  for (OracleId oracle : AllOracleIds()) {
    const FrequencyOracle& fo = GetFrequencyOracle(OracleIdName(oracle));
    auto peer = fo.CreateSketch({kEpsilon, kDomain});
    for (uint32_t u = 0; u < 25; ++u) peer->AddUser(u % kDomain, rng);

    std::vector<std::vector<uint8_t>> payloads;
    uint64_t node = 1;
    for (int i = 0; i < 30; ++i) {
      payloads.push_back(EncodePartialSketch(*peer, oracle, node++, 4, 9,
                                             kEpsilon));
    }
    const std::size_t valid_count = payloads.size();
    for (std::size_t i = 0; i < valid_count; ++i) {
      auto mutated = payloads[i];
      switch (rng.UniformInt(4)) {
        case 0:
          mutated[rng.UniformInt(mutated.size())] ^=
              static_cast<uint8_t>(1 + rng.UniformInt(255));
          break;
        case 1:
          mutated.resize(rng.UniformInt(mutated.size()));
          break;
        case 2:
          mutated.push_back(static_cast<uint8_t>(rng.NextU64()));
          break;
        default:
          mutated.assign(rng.UniformInt(2 * kSketchWireHeaderSize),
                         static_cast<uint8_t>(rng.NextU64()));
          break;
      }
      payloads.push_back(std::move(mutated));
    }

    auto root = fo.CreateSketch({kEpsilon, kDomain});
    std::vector<uint64_t> seen;
    SketchMergeStats stats;
    std::size_t folded = 0;
    for (const auto& p : payloads) {
      bool ok = false;
      ASSERT_NO_THROW(ok = MergePartialSketch(
                          p.data(), p.size(), oracle, 4, kEpsilon, kDomain,
                          root.get(), &seen, &stats));
      if (ok) ++folded;
    }
    // Every payload classified exactly once; every valid one folded
    // (distinct node ids, so no dedup hits among the valid set), and the
    // user mass is exactly the folded partials' — a corrupt payload can
    // strip a partial, never fold one.
    EXPECT_EQ(stats.total(), payloads.size()) << OracleIdName(oracle);
    EXPECT_EQ(stats.merged, folded);
    EXPECT_GE(folded, valid_count);
    EXPECT_EQ(root->num_users(), folded * peer->num_users());
  }
}

TEST(SketchWireFuzzTest, MismatchedParamsAreTypedRejections) {
  // A pristine partial whose round coordinates disagree with the root's
  // expectations is a typed rejection — params mismatches across a merge
  // tree must never fold and never throw.
  const FrequencyOracle& fo = GetFrequencyOracle("OLH");
  auto peer = fo.CreateSketch({kEpsilon, kDomain});
  Rng rng(21);
  for (uint32_t u = 0; u < 10; ++u) peer->AddUser(u % kDomain, rng);
  const auto payload =
      EncodePartialSketch(*peer, OracleId::kOlh, 6, 4, 9, kEpsilon);

  auto root = fo.CreateSketch({kEpsilon, kDomain});
  std::vector<uint64_t> seen;
  SketchMergeStats stats;
  EXPECT_FALSE(MergePartialSketch(payload.data(), payload.size(),
                                  OracleId::kHr, 4, kEpsilon, kDomain,
                                  root.get(), &seen, &stats));
  EXPECT_FALSE(MergePartialSketch(payload.data(), payload.size(),
                                  OracleId::kOlh, 5, kEpsilon, kDomain,
                                  root.get(), &seen, &stats));
  EXPECT_FALSE(MergePartialSketch(payload.data(), payload.size(),
                                  OracleId::kOlh, 4, kEpsilon / 2, kDomain,
                                  root.get(), &seen, &stats));
  EXPECT_FALSE(MergePartialSketch(payload.data(), payload.size(),
                                  OracleId::kOlh, 4, kEpsilon, kDomain + 1,
                                  root.get(), &seen, &stats));
  EXPECT_EQ(stats.wrong_oracle, 1u);
  EXPECT_EQ(stats.wrong_round, 1u);
  EXPECT_EQ(stats.params_mismatch, 2u);
  EXPECT_EQ(stats.merged, 0u);
  EXPECT_EQ(root->num_users(), 0u);
}

TEST(WireFuzzTest, ThrowingDecodersCarryTypedReasons) {
  auto packet = EncodeHrReport(1, 0);
  packet[0] ^= 0xFF;
  try {
    DecodeEnvelope(packet);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "wire: bad magic");
  }
}

}  // namespace
}  // namespace ldpids
