// Bit-identity pinning of the vectorized frequency-oracle kernels.
//
// Two layers of pinning:
//   1. The fokernels primitives against naive scalar references — the FWHT
//      against the O(K^2) Hadamard sum, the OLH support scan against a
//      plain HashToBucket loop, the bit-column fold against per-bit
//      tallying, and EstimateAffine against the literal affine formula.
//   2. Every sketch's AddReports override against the scalar reference
//      (ReportAt + AddReport per row): identical num_users and EXACTLY
//      equal estimates (EXPECT_EQ on doubles — no tolerance), including
//      under shard merges and mixed AddUser/AddReports interleavings.
// The suite runs under both SIMD backends (the CI force-scalar job builds
// with -DLDPIDS_FORCE_SCALAR=ON), which pins avx2 == generic == scalar.
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fo/client.h"
#include "fo/fo_kernels.h"
#include "fo/frequency_oracle.h"
#include "fo/olh.h"
#include "fo/report_arena.h"
#include "fo/wire.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace ldpids {
namespace {

constexpr std::size_t kDomain = 100;  // crosses a 64-bit word boundary
constexpr double kEpsilon = 1.0;
constexpr uint32_t kRound = 4;

TEST(FoKernelTest, BackendNameIsReported) {
  const std::string name = fokernels::BackendName();
  EXPECT_TRUE(name == "avx2" || name == "generic") << name;
}

TEST(FoKernelTest, FwhtMatchesNaiveHadamardSum) {
  Rng rng(11);
  for (std::size_t n : {1u, 2u, 8u, 64u, 256u}) {
    std::vector<int64_t> a(n);
    for (auto& x : a) {
      x = static_cast<int64_t>(rng.UniformInt(2000)) - 1000;
    }
    std::vector<int64_t> want(n, 0);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        const bool positive = (std::popcount(r & c) & 1) == 0;
        want[r] += positive ? a[c] : -a[c];
      }
    }
    std::vector<int64_t> got = a;
    fokernels::Fwht(got.data(), n);
    EXPECT_EQ(got, want) << "n=" << n;
  }
}

TEST(FoKernelTest, OlhSupportScanMatchesHashToBucketLoop) {
  Rng rng(12);
  // Epsilons covering power-of-two g (4, 8) and odd g (3, 21).
  for (double eps : {0.5, 1.0, 2.0, 3.0}) {
    const uint64_t g = OlhOracle::BucketCount(eps);
    const std::size_t d = 37;
    const std::size_t count = 203;  // not a multiple of the lane width
    std::vector<uint64_t> seeds(count), buckets(count);
    for (std::size_t i = 0; i < count; ++i) {
      seeds[i] = rng.NextU64();
      buckets[i] = rng.UniformInt(g);
    }
    Counts want(d, 5);  // nonzero start: the kernel must accumulate
    for (std::size_t k = 0; k < d; ++k) {
      for (std::size_t i = 0; i < count; ++i) {
        want[k] += OlhOracle::HashToBucket(seeds[i],
                                           static_cast<uint32_t>(k), g) ==
                           buckets[i]
                       ? 1
                       : 0;
      }
    }
    Counts got(d, 5);
    fokernels::OlhSupportScan(seeds.data(), buckets.data(), count, d, g,
                              got.data());
    EXPECT_EQ(got, want) << "g=" << g;
  }
}

TEST(FoKernelTest, FoldBitColumnsMatchesPerBitTally) {
  Rng rng(13);
  for (std::size_t d : {3u, 64u, 100u, 130u}) {
    const std::size_t words = (d + 63) / 64;
    const std::size_t rows = 29;
    std::vector<uint64_t> bit_words(rows * words);
    for (auto& w : bit_words) w = rng.NextU64();
    // Zero the padding bits past d, as the arena repack guarantees.
    if (d % 64 != 0) {
      const uint64_t tail_mask = (uint64_t{1} << (d % 64)) - 1;
      for (std::size_t r = 0; r < rows; ++r) {
        bit_words[r * words + words - 1] &= tail_mask;
      }
    }
    // A shuffled subset of rows, with a repeat.
    std::vector<uint32_t> indices = {5, 0, 17, 28, 3, 5, 11};
    Counts want(d, 2);
    for (uint32_t r : indices) {
      for (std::size_t k = 0; k < d; ++k) {
        want[k] += (bit_words[r * words + k / 64] >> (k % 64)) & 1;
      }
    }
    Counts got(d, 2);
    fokernels::FoldBitColumns(bit_words.data(), words, indices.data(),
                              indices.size(), d, got.data());
    EXPECT_EQ(got, want) << "d=" << d;
  }
}

TEST(FoKernelTest, EstimateAffineMatchesScalarFormulaExactly) {
  Rng rng(14);
  for (std::size_t d : {1u, 4u, 7u, 100u}) {
    Counts counts(d);
    for (auto& c : counts) c = rng.UniformInt(1u << 20);
    const double inv_n = 1.0 / 48611.0;
    const double q = 0.217;
    const double denom = 0.3341;
    Histogram want(d), got(d);
    for (std::size_t k = 0; k < d; ++k) {
      want[k] = (static_cast<double>(counts[k]) * inv_n - q) / denom;
    }
    fokernels::EstimateAffine(counts.data(), d, inv_n, q, denom, got.data());
    for (std::size_t k = 0; k < d; ++k) {
      EXPECT_EQ(got[k], want[k]) << "d=" << d << " k=" << k;
    }
  }
}

// --- sketch-level pinning --------------------------------------------------

class FoSketchBatchTest : public ::testing::TestWithParam<std::string> {};

// One round's worth of valid packets for the oracle, staged in an arena.
void StageRound(OracleId oracle, std::size_t n, ReportArena* arena,
                std::vector<uint32_t>* indices) {
  Rng rng(HashCounter(99, static_cast<uint64_t>(oracle), n));
  std::vector<std::vector<uint8_t>> packets;
  packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.UniformInt(kDomain));
    packets.push_back(PerturbToWire(oracle, v, kEpsilon, kDomain, kRound,
                                    1000 + i, rng));
  }
  arena->BeginRound(oracle, kRound, {kEpsilon, kDomain});
  arena->AppendBatch(packets);
  ASSERT_EQ(arena->size(), n);
  indices->resize(n);
  for (std::size_t i = 0; i < n; ++i) (*indices)[i] = static_cast<uint32_t>(i);
}

void ExpectIdenticalEstimates(const FoSketch& a, const FoSketch& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  Histogram ha, hb;
  a.EstimateInto(&ha);
  b.EstimateInto(&hb);
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t k = 0; k < ha.size(); ++k) {
    EXPECT_EQ(ha[k], hb[k]) << "bin " << k;  // exact, no tolerance
  }
}

TEST_P(FoSketchBatchTest, AddReportsMatchesScalarAddReportLoop) {
  const FrequencyOracle& fo = GetFrequencyOracle(GetParam());
  const OracleId oracle = OracleIdFromName(GetParam());
  ReportArena arena;
  std::vector<uint32_t> indices;
  StageRound(oracle, 257, &arena, &indices);

  auto vec = fo.CreateSketch({kEpsilon, kDomain});
  vec->AddReports(ArenaSlice{&arena, indices.data(), indices.size()});

  auto scalar = fo.CreateSketch({kEpsilon, kDomain});
  DecodedReport r;
  for (uint32_t i : indices) {
    arena.ReportAt(i, &r);
    ASSERT_TRUE(scalar->AddReport(r));
  }

  ExpectIdenticalEstimates(*vec, *scalar);
}

TEST_P(FoSketchBatchTest, MergedSliceHalvesMatchWholeSlice) {
  const FrequencyOracle& fo = GetFrequencyOracle(GetParam());
  const OracleId oracle = OracleIdFromName(GetParam());
  ReportArena arena;
  std::vector<uint32_t> indices;
  StageRound(oracle, 250, &arena, &indices);
  const std::size_t half = indices.size() / 2;

  auto whole = fo.CreateSketch({kEpsilon, kDomain});
  whole->AddReports(ArenaSlice{&arena, indices.data(), indices.size()});

  auto left = fo.CreateSketch({kEpsilon, kDomain});
  left->AddReports(ArenaSlice{&arena, indices.data(), half});
  auto right = fo.CreateSketch({kEpsilon, kDomain});
  right->AddReports(
      ArenaSlice{&arena, indices.data() + half, indices.size() - half});
  left->MergeFrom(*right);

  ExpectIdenticalEstimates(*whole, *left);
}

TEST_P(FoSketchBatchTest, InterleavedAddUserAndAddReportsMatchesScalar) {
  // Simulated local users (AddUser) and wire reports (AddReports) feed the
  // same sketch; the batched path must leave the estimate exactly where
  // the per-report path does. Separate RNGs with one seed keep the
  // AddUser draws identical on both sides.
  const FrequencyOracle& fo = GetFrequencyOracle(GetParam());
  const OracleId oracle = OracleIdFromName(GetParam());
  ReportArena arena;
  std::vector<uint32_t> indices;
  StageRound(oracle, 120, &arena, &indices);
  const std::size_t half = indices.size() / 2;

  Rng rng_vec(321), rng_scalar(321);
  auto vec = fo.CreateSketch({kEpsilon, kDomain});
  auto scalar = fo.CreateSketch({kEpsilon, kDomain});
  DecodedReport r;

  for (uint32_t v = 0; v < 31; ++v) vec->AddUser(v % kDomain, rng_vec);
  vec->AddReports(ArenaSlice{&arena, indices.data(), half});
  for (uint32_t v = 0; v < 17; ++v) vec->AddUser(v % kDomain, rng_vec);
  vec->AddReports(
      ArenaSlice{&arena, indices.data() + half, indices.size() - half});

  for (uint32_t v = 0; v < 31; ++v) scalar->AddUser(v % kDomain, rng_scalar);
  for (std::size_t i = 0; i < half; ++i) {
    arena.ReportAt(indices[i], &r);
    ASSERT_TRUE(scalar->AddReport(r));
  }
  for (uint32_t v = 0; v < 17; ++v) scalar->AddUser(v % kDomain, rng_scalar);
  for (std::size_t i = half; i < indices.size(); ++i) {
    arena.ReportAt(indices[i], &r);
    ASSERT_TRUE(scalar->AddReport(r));
  }

  ExpectIdenticalEstimates(*vec, *scalar);
}

INSTANTIATE_TEST_SUITE_P(AllOracles, FoSketchBatchTest,
                         ::testing::Values("GRR", "OUE", "OLH", "SUE", "HR"));

}  // namespace
}  // namespace ldpids
