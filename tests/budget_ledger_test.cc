#include "core/budget_ledger.h"

#include <gtest/gtest.h>

namespace ldpids {
namespace {

TEST(BudgetLedgerTest, RejectsNonPositiveEpsilon) {
  EXPECT_THROW(BudgetLedger(0.0, 5), std::invalid_argument);
  EXPECT_THROW(BudgetLedger(-1.0, 5), std::invalid_argument);
}

TEST(BudgetLedgerTest, AccumulatesWithinWindow) {
  BudgetLedger ledger(1.0, 3);
  ledger.Record(0.1, 0.2);
  EXPECT_DOUBLE_EQ(ledger.WindowSpent(), 0.3);
  ledger.Record(0.1, 0.0);
  EXPECT_DOUBLE_EQ(ledger.WindowSpent(), 0.4);
  EXPECT_DOUBLE_EQ(ledger.WindowPublicationSpent(), 0.2);
}

TEST(BudgetLedgerTest, OldTimestampsExpire) {
  BudgetLedger ledger(1.0, 2);
  ledger.Record(0.0, 0.5);
  ledger.Record(0.0, 0.4);
  EXPECT_DOUBLE_EQ(ledger.WindowPublicationSpent(), 0.9);
  ledger.Record(0.0, 0.5);  // the first 0.5 slid out
  EXPECT_DOUBLE_EQ(ledger.WindowPublicationSpent(), 0.9);
}

TEST(BudgetLedgerTest, PublicationSpentInActiveWindowExcludesOldest) {
  BudgetLedger ledger(10.0, 3);
  ledger.Record(0.0, 1.0);
  ledger.Record(0.0, 2.0);
  // Window not full: everything is still active.
  EXPECT_DOUBLE_EQ(ledger.PublicationSpentInActiveWindow(), 3.0);
  ledger.Record(0.0, 4.0);
  // Full window {1,2,4}: at the next timestamp, the 1.0 is out.
  EXPECT_DOUBLE_EQ(ledger.PublicationSpentInActiveWindow(), 6.0);
}

TEST(BudgetLedgerTest, ThrowsWhenWindowExceedsEpsilon) {
  BudgetLedger ledger(1.0, 4);
  ledger.Record(0.25, 0.25);
  ledger.Record(0.25, 0.25);
  EXPECT_THROW(ledger.Record(0.25, 0.3), std::logic_error);
}

TEST(BudgetLedgerTest, ExactBudgetIsAllowed) {
  BudgetLedger ledger(1.0, 4);
  for (int i = 0; i < 20; ++i) {
    ASSERT_NO_THROW(ledger.Record(0.125, 0.125)) << "step " << i;
  }
  EXPECT_NEAR(ledger.WindowSpent(), 1.0, 1e-12);
}

TEST(BudgetLedgerTest, ExactSpendSurvivesFloatRoundingAcrossChainedAdds) {
  // w chained additions of eps/w do not sum to exactly eps in binary
  // floating point (7 * 0.1 = 0.7000000000000001 > 0.7). The 1e-9 relative
  // tolerance must accept this as "exactly on budget" at every timestamp of
  // a long stream, where the window sum is repeatedly rebuilt as old
  // contributions slide out and new ones arrive.
  const std::size_t w = 7;
  const double eps = 0.7;
  BudgetLedger ledger(eps, w);
  for (int t = 0; t < 200; ++t) {
    ASSERT_NO_THROW(ledger.Record(eps / (2.0 * w), eps / (2.0 * w)))
        << "timestamp " << t;
  }
  EXPECT_NEAR(ledger.WindowSpent(), eps, 1e-9);
}

TEST(BudgetLedgerTest, GenuineOverspendIsStillRejectedNearTheTolerance) {
  // A real violation just above the relative tolerance must throw even when
  // the window is otherwise exactly on budget: the slack exists to absorb
  // rounding, not to donate extra epsilon.
  const std::size_t w = 7;
  const double eps = 0.7;
  BudgetLedger ledger(eps, w);
  for (std::size_t t = 0; t + 1 < w; ++t) ledger.Record(0.1, 0.0);
  EXPECT_THROW(ledger.Record(0.1 + 1e-6, 0.0), std::logic_error);
}

TEST(BudgetLedgerTest, RejectsNegativeBudgets) {
  BudgetLedger ledger(1.0, 2);
  EXPECT_THROW(ledger.Record(-0.1, 0.0), std::logic_error);
  EXPECT_THROW(ledger.Record(0.0, -0.1), std::logic_error);
}

TEST(BudgetLedgerTest, RecoveryAfterExpiryAllowsFreshSpending) {
  BudgetLedger ledger(1.0, 2);
  ledger.Record(0.0, 1.0);
  ledger.Record(0.0, 0.0);
  // The full-eps record from two steps ago is out of the window now.
  ASSERT_NO_THROW(ledger.Record(0.0, 1.0));
}

}  // namespace
}  // namespace ldpids
