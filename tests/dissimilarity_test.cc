#include "core/dissimilarity.h"

#include <vector>

#include <gtest/gtest.h>

#include "fo/frequency_oracle.h"
#include "test_util.h"
#include "util/rng.h"

namespace ldpids {
namespace {

TEST(TrueDissimilarityTest, MatchesHandComputation) {
  const Histogram c = {0.5, 0.5};
  const Histogram r = {0.3, 0.7};
  // ((0.2)^2 + (0.2)^2) / 2 = 0.04.
  EXPECT_NEAR(TrueDissimilarity(c, r), 0.04, 1e-12);
  EXPECT_DOUBLE_EQ(TrueDissimilarity(c, c), 0.0);
}

TEST(EstimateDissimilarityTest, SubtractsVarianceCorrection) {
  const Histogram est = {0.6, 0.4};
  const Histogram r = {0.5, 0.5};
  // raw msd = 0.01; correction 0.003.
  EXPECT_NEAR(EstimateDissimilarity(est, r, 0.003), 0.007, 1e-12);
}

TEST(EstimateDissimilarityTest, CanBeNegative) {
  // When the stream has not moved, the raw distance is pure noise and the
  // debiased estimator hovers around zero, going negative about half the
  // time — callers must not clamp it.
  const Histogram est = {0.5, 0.5};
  const Histogram r = {0.5, 0.5};
  EXPECT_LT(EstimateDissimilarity(est, r, 0.001), 0.0);
}

// Theorem 5.2: E[dis] = dis* for every FO. This is the property that makes
// the adaptive strategy choice of LBD/LBA/LPD/LPA meaningful under LDP.
class DissimilarityUnbiasednessTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(DissimilarityUnbiasednessTest, EstimatorIsUnbiased) {
  const auto& fo = GetFrequencyOracle(GetParam());
  const std::size_t d = 4;
  const double eps = 1.0;
  const uint64_t n = 5000;
  Rng rng(42);

  // True current histogram and a stale "last release".
  const Histogram c_t = {0.4, 0.3, 0.2, 0.1};
  const Histogram r_l = {0.25, 0.25, 0.25, 0.25};
  const double dis_star = TrueDissimilarity(c_t, r_l);

  Counts cohort(d);
  for (std::size_t k = 0; k < d; ++k) {
    cohort[k] = static_cast<uint64_t>(c_t[k] * n);
  }

  std::vector<double> dis_samples;
  for (int rep = 0; rep < 800; ++rep) {
    auto sketch = fo.CreateSketch({eps, d});
    sketch->AddCohort(cohort, rng);
    const Histogram est = sketch->Estimate();
    dis_samples.push_back(
        EstimateDissimilarity(est, r_l, fo.MeanVariance(eps, n, d)));
  }
  EXPECT_TRUE(testing::MeanWithin(dis_samples, dis_star, 5.5))
      << "mean=" << testing::SampleMean(dis_samples)
      << " dis*=" << dis_star << " se=" << testing::StdError(dis_samples);
}

TEST_P(DissimilarityUnbiasednessTest, UnbiasedAtZeroDistance) {
  // Degenerate case: last release equals the truth; E[dis] must be ~0.
  const auto& fo = GetFrequencyOracle(GetParam());
  const std::size_t d = 3;
  const double eps = 0.8;
  const uint64_t n = 4000;
  Rng rng(43);
  const Histogram c_t = {0.5, 0.3, 0.2};
  Counts cohort = {2000, 1200, 800};
  std::vector<double> dis_samples;
  for (int rep = 0; rep < 800; ++rep) {
    auto sketch = fo.CreateSketch({eps, d});
    sketch->AddCohort(cohort, rng);
    dis_samples.push_back(EstimateDissimilarity(sketch->Estimate(), c_t,
                                                fo.MeanVariance(eps, n, d)));
  }
  EXPECT_TRUE(testing::MeanWithin(dis_samples, 0.0, 5.5))
      << testing::SampleMean(dis_samples);
}

INSTANTIATE_TEST_SUITE_P(AllOracles, DissimilarityUnbiasednessTest,
                         ::testing::Values("GRR", "OUE", "OLH", "SUE",
                                           "HR"));

}  // namespace
}  // namespace ldpids
