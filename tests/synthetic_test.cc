#include "datagen/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ldpids {
namespace {

TEST(BinarySyntheticDatasetTest, ShapeAndDomain) {
  BinarySyntheticDataset data("bin", 1000, {0.1, 0.5, 0.9}, 1);
  EXPECT_EQ(data.num_users(), 1000u);
  EXPECT_EQ(data.length(), 3u);
  EXPECT_EQ(data.domain(), 2u);
  EXPECT_EQ(data.name(), "bin");
}

TEST(BinarySyntheticDatasetTest, ValuesAreDeterministic) {
  BinarySyntheticDataset a("x", 100, {0.5, 0.5}, 9);
  BinarySyntheticDataset b("x", 100, {0.5, 0.5}, 9);
  BinarySyntheticDataset c("x", 100, {0.5, 0.5}, 10);
  int diff_seed_mismatch = 0;
  for (uint64_t u = 0; u < 100; ++u) {
    for (std::size_t t = 0; t < 2; ++t) {
      EXPECT_EQ(a.value(u, t), b.value(u, t));
      diff_seed_mismatch += (a.value(u, t) != c.value(u, t));
    }
  }
  EXPECT_GT(diff_seed_mismatch, 0);
}

TEST(BinarySyntheticDatasetTest, OnesFractionTracksProbability) {
  BinarySyntheticDataset data("p", 100000, {0.05, 0.3, 0.8}, 4);
  for (std::size_t t = 0; t < 3; ++t) {
    const double p = data.probabilities()[t];
    const double ones = data.TrueFrequencies(t)[1];
    // Binomial concentration: 5 sigma.
    const double sigma = std::sqrt(p * (1 - p) / 100000.0);
    EXPECT_NEAR(ones, p, 5.0 * sigma) << "t=" << t;
  }
}

TEST(BinarySyntheticDatasetTest, ValidatesInput) {
  EXPECT_THROW(BinarySyntheticDataset("x", 0, {0.5}, 1),
               std::invalid_argument);
  EXPECT_THROW(BinarySyntheticDataset("x", 10, {}, 1), std::invalid_argument);
  EXPECT_THROW(BinarySyntheticDataset("x", 10, {1.5}, 1),
               std::invalid_argument);
  EXPECT_THROW(BinarySyntheticDataset("x", 10, {-0.1}, 1),
               std::invalid_argument);
}

TEST(DistributionSequenceDatasetTest, FrequenciesTrackDistributions) {
  const Histogram pi0 = {0.7, 0.2, 0.1};
  const Histogram pi1 = {0.1, 0.1, 0.8};
  DistributionSequenceDataset data("cat", 200000, {pi0, pi1}, 5);
  for (std::size_t t = 0; t < 2; ++t) {
    const Histogram freq = data.TrueFrequencies(t);
    const Histogram pi = data.DistributionAt(t);
    for (std::size_t k = 0; k < 3; ++k) {
      const double sigma = std::sqrt(pi[k] * (1 - pi[k]) / 200000.0);
      EXPECT_NEAR(freq[k], pi[k], 5.0 * sigma) << "t=" << t << " k=" << k;
    }
  }
}

TEST(DistributionSequenceDatasetTest, NormalizesRows) {
  DistributionSequenceDataset data("raw", 100, {{2.0, 6.0}}, 1);
  const Histogram pi = data.DistributionAt(0);
  EXPECT_NEAR(pi[0], 0.25, 1e-12);
  EXPECT_NEAR(pi[1], 0.75, 1e-12);
}

TEST(DistributionSequenceDatasetTest, ValidatesInput) {
  EXPECT_THROW(DistributionSequenceDataset("x", 10, {}, 1),
               std::invalid_argument);
  EXPECT_THROW(DistributionSequenceDataset("x", 10, {{1.0}}, 1),
               std::invalid_argument);  // domain < 2
  EXPECT_THROW(DistributionSequenceDataset("x", 10, {{0.5, 0.5}, {1.0}}, 1),
               std::invalid_argument);  // ragged
  EXPECT_THROW(DistributionSequenceDataset("x", 10, {{0.0, 0.0}}, 1),
               std::invalid_argument);  // all-zero
  EXPECT_THROW(DistributionSequenceDataset("x", 10, {{-1.0, 2.0}}, 1),
               std::invalid_argument);  // negative
}

TEST(SyntheticFactoriesTest, PaperDefaults) {
  const auto lns = MakeLnsDataset();
  EXPECT_EQ(lns->name(), "LNS");
  EXPECT_EQ(lns->num_users(), 200000u);
  EXPECT_EQ(lns->length(), 800u);

  const auto sin = MakeSinDataset(1000, 50);
  EXPECT_EQ(sin->name(), "Sin");
  EXPECT_EQ(sin->length(), 50u);

  const auto log = MakeLogDataset(1000, 60);
  EXPECT_EQ(log->name(), "Log");
  // Log probabilities are monotone, so the ones-share should trend up from
  // t=0 to the end.
  EXPECT_GE(log->probabilities().back(), log->probabilities().front());
}

}  // namespace
}  // namespace ldpids
