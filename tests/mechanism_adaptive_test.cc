// Behavioural tests of the adaptive mechanisms (LBD, LBA, LPD, LPA): the
// publish/approximate decision must track the data — quiet streams mean few
// publications, jumpy streams mean many — and the absorption variants must
// honour their nullification schedule.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/runner.h"
#include "core/factory.h"
#include "datagen/csv_dataset.h"
#include "datagen/synthetic.h"

namespace ldpids {
namespace {

MechanismConfig Config(double eps = 1.0, std::size_t w = 10,
                       uint64_t seed = 7) {
  MechanismConfig c;
  c.epsilon = eps;
  c.window = w;
  c.fo = "GRR";
  c.seed = seed;
  return c;
}

// A perfectly static stream: after the initial publication, dis hovers
// around zero so adaptive methods should almost always approximate.
std::shared_ptr<BinarySyntheticDataset> StaticStream(std::size_t length) {
  return std::make_shared<BinarySyntheticDataset>(
      "static", 20000, std::vector<double>(length, 0.2), 3);
}

// A stream that jumps between two levels every few timestamps.
std::shared_ptr<BinarySyntheticDataset> JumpyStream(std::size_t length) {
  std::vector<double> probs(length);
  for (std::size_t t = 0; t < length; ++t) {
    probs[t] = (t / 4) % 2 == 0 ? 0.1 : 0.6;
  }
  return std::make_shared<BinarySyntheticDataset>("jumpy", 20000,
                                                  std::move(probs), 4);
}

class AdaptiveMechanismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AdaptiveMechanismTest, QuietStreamsGetFewPublications) {
  const auto data = StaticStream(100);
  const auto run = RunMechanism(*data, GetParam(), Config());
  // The Bernoulli realization noise is invisible at n=20000 against GRR
  // noise, so approximation should dominate: well under half the steps.
  EXPECT_LT(run.num_publications, 35u) << GetParam();
  EXPECT_GE(run.num_publications, 1u) << GetParam();
}

TEST_P(AdaptiveMechanismTest, JumpyStreamsGetMorePublications) {
  const auto quiet =
      RunMechanism(*StaticStream(100), GetParam(), Config());
  const auto jumpy = RunMechanism(*JumpyStream(100), GetParam(), Config());
  EXPECT_GT(jumpy.num_publications, quiet.num_publications) << GetParam();
}

TEST_P(AdaptiveMechanismTest, ApproximationsRepeatTheLastRelease) {
  const auto data = JumpyStream(60);
  const auto run = RunMechanism(*data, GetParam(), Config());
  for (std::size_t t = 1; t < run.timestamps; ++t) {
    if (!run.published[t]) {
      EXPECT_EQ(run.releases[t], run.releases[t - 1])
          << GetParam() << " t=" << t;
    }
  }
}

TEST_P(AdaptiveMechanismTest, FirstTimestampPublishes) {
  // r_0 is the zero vector, so dis at t=0 is large and every adaptive
  // method should start with a fresh publication.
  const auto data = StaticStream(5);
  const auto run = RunMechanism(*data, GetParam(), Config());
  EXPECT_TRUE(run.published[0]) << GetParam();
}

TEST_P(AdaptiveMechanismTest, LongRunKeepsPrivacyInvariants) {
  // 40 windows without the internal ledgers throwing = the w-event
  // accounting holds throughout (budget windows for LB*, per-user
  // participation for LP*).
  const auto data = MakeLnsDataset(4000, 400, 0.004, 11);
  EXPECT_NO_THROW(RunMechanism(*data, GetParam(), Config(1.0, 10)))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Adaptives, AdaptiveMechanismTest,
                         ::testing::Values("LBD", "LBA", "LPD", "LPA"));

TEST(LbaScheduleTest, PublicationNullifiesFollowingTimestamps) {
  // Feed LBA a stream with one step change; after the publication that
  // absorbs k allocations, the next k-1 timestamps are forced
  // approximations even though the stream keeps moving.
  std::vector<double> probs(30, 0.1);
  for (std::size_t t = 10; t < 30; ++t) probs[t] = 0.5 + 0.02 * (t - 10);
  const auto data = std::make_shared<BinarySyntheticDataset>(
      "step", 50000, std::move(probs), 9);
  const auto run = RunMechanism(*data, "LBA", Config(1.0, 8));
  // Find the publication at/after the jump.
  std::size_t pub_t = 0;
  for (std::size_t t = 9; t < 30; ++t) {
    if (run.published[t]) {
      pub_t = t;
      break;
    }
  }
  ASSERT_GT(pub_t, 0u);
  // The jump happened >= 8 quiet steps in, so the publication absorbed
  // several allocations and must nullify at least the next timestamp.
  EXPECT_FALSE(run.published[pub_t + 1]);
}

TEST(LpdTest, MinPublicationUsersSuppressesPublications) {
  // With u_min above the whole population, LPD may never publish.
  const auto data = JumpyStream(40);
  MechanismConfig c = Config();
  c.min_publication_users = data->num_users() + 1;
  const auto run = RunMechanism(*data, "LPD", c);
  EXPECT_EQ(run.num_publications, 0u);
  // Releases stay at the all-zero initial vector.
  for (const auto& r : run.releases) {
    EXPECT_EQ(r, Histogram(2, 0.0));
  }
}

TEST(LpdTest, PublicationCohortsShrinkWithinAWindowOfPublications) {
  // On a jumpy stream LPD publishes often; within one window the potential
  // cohort sizes must decay (exponential population distribution). We check
  // the aggregate: message count at publication timestamps is monotonically
  // non-increasing inside a window span.
  const auto data = JumpyStream(30);
  MechanismConfig c = Config(2.0, 15);
  auto mechanism = CreateMechanism("LPD", c, data->num_users());
  std::vector<uint64_t> pub_messages;
  const uint64_t dis_users = data->num_users() / (2 * c.window);
  for (std::size_t t = 0; t < 15; ++t) {  // first window only
    const StepResult step = mechanism->Step(*data, t);
    if (step.published) pub_messages.push_back(step.messages - dis_users);
  }
  ASSERT_GE(pub_messages.size(), 2u);
  for (std::size_t i = 1; i < pub_messages.size(); ++i) {
    EXPECT_LE(pub_messages[i], pub_messages[i - 1]) << "publication " << i;
  }
}

TEST(LbdTest, PublicationBudgetsDecayExponentially) {
  // Mirror of the LPD test on the budget side: each publication in the
  // first window gets half the remaining eps/2, so fresh-estimate noise
  // grows over consecutive publications. We verify via the schedule itself:
  // the first publication must consume eps/4 (all users report twice).
  const auto data = JumpyStream(20);
  const auto run = RunMechanism(*data, "LBD", Config());
  ASSERT_TRUE(run.published[0]);
  // Messages at t=0: N for M1 plus N for the publication.
  EXPECT_EQ(run.releases[0].size(), 2u);
}

TEST(AdaptiveOrderingTest, LpaBeatsLbaOnUtility) {
  // The paper's core claim, in miniature: population absorption achieves
  // lower error than budget absorption under identical conditions.
  const auto data = MakeLnsDataset(20000, 150, 0.0025, 21);
  const auto truth_metrics_lba =
      EvaluateMechanism(*data, "LBA", Config(), /*repetitions=*/3);
  const auto truth_metrics_lpa =
      EvaluateMechanism(*data, "LPA", Config(), /*repetitions=*/3);
  EXPECT_LT(truth_metrics_lpa.mse, truth_metrics_lba.mse);
}

}  // namespace
}  // namespace ldpids
