// End-to-end coverage of the online serving layer (src/service/): wire
// clients, defensive sharded ingestion, incremental mechanism sessions and
// the multi-session server.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/mechanism.h"
#include "fo/client.h"
#include "fo/frequency_oracle.h"
#include "fo/wire.h"
#include "service/client_fleet.h"
#include "service/ingest.h"
#include "service/session.h"
#include "service/stream_server.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ldpids {
namespace {

using service::ClientFleet;
using service::IngestResult;
using service::IngestShard;
using service::IngestStats;
using service::MechanismSession;
using service::ReportRouter;
using service::RoundRequest;
using service::SessionOptions;
using service::StreamServer;

constexpr std::size_t kDomain = 10;
constexpr double kEpsilon = 1.0;

uint32_t TruthValue(uint64_t user, std::size_t t) {
  return static_cast<uint32_t>((user + 3 * t) % kDomain);
}

// --- wire client vs simulation sketch -------------------------------------

TEST(WireClientTest, WireIngestionReproducesAddUserBitForBit) {
  // PerturbToWire draws randomness in exactly AddUser's order, so feeding
  // the decoded packets of same-seeded per-user streams into a sketch must
  // reproduce the simulation sketch exactly, for every oracle.
  for (OracleId oracle : AllOracleIds()) {
    const FrequencyOracle& fo = GetFrequencyOracle(OracleIdName(oracle));
    const FoParams params{kEpsilon, kDomain};
    auto simulated = fo.CreateSketch(params);
    auto wire = fo.CreateSketch(params);
    for (uint64_t u = 0; u < 500; ++u) {
      const uint32_t value = TruthValue(u, 0);
      Rng sim_rng(HashCounter(17, u, 0));
      Rng wire_rng(HashCounter(17, u, 0));
      simulated->AddUser(value, sim_rng);
      const auto packet =
          PerturbToWire(oracle, value, kEpsilon, kDomain, 0, u, wire_rng);
      DecodedReport report;
      ASSERT_EQ(TryDecodeReport(packet, kDomain, &report), WireError::kOk);
      ASSERT_TRUE(wire->AddReport(report));
    }
    EXPECT_EQ(wire->num_users(), simulated->num_users());
    EXPECT_EQ(wire->Estimate(), simulated->Estimate())
        << OracleIdName(oracle);
  }
}

// --- ingest shard / router ------------------------------------------------

std::vector<std::vector<uint8_t>> RoundPackets(OracleId oracle,
                                               uint32_t timestamp,
                                               std::size_t n) {
  std::vector<std::vector<uint8_t>> packets;
  for (uint64_t u = 0; u < n; ++u) {
    Rng rng(HashCounter(23, u, timestamp));
    packets.push_back(PerturbToWire(oracle, TruthValue(u, timestamp),
                                    kEpsilon, kDomain, timestamp, u, rng));
  }
  return packets;
}

TEST(IngestShardTest, CountsEveryRejectionReasonWithoutThrowing) {
  const FrequencyOracle& fo = GetFrequencyOracle("GRR");
  IngestShard shard(fo, {kEpsilon, kDomain}, OracleId::kGrr, /*timestamp=*/4);

  auto good = RoundPackets(OracleId::kGrr, 4, 3);
  EXPECT_EQ(shard.Ingest(good[0]), IngestResult::kAccepted);

  auto corrupted = good[1];
  corrupted[corrupted.size() / 2] ^= 0x5A;
  EXPECT_EQ(shard.Ingest(corrupted), IngestResult::kMalformed);

  // Valid packet, wrong oracle for this round.
  auto olh = RoundPackets(OracleId::kOlh, 4, 1);
  EXPECT_EQ(shard.Ingest(olh[0]), IngestResult::kWrongOracle);

  // Valid packet, stale timestamp.
  auto stale = RoundPackets(OracleId::kGrr, 3, 1);
  EXPECT_EQ(shard.Ingest(stale[0]), IngestResult::kWrongTimestamp);

  EXPECT_EQ(shard.stats().accepted, 1u);
  EXPECT_EQ(shard.stats().malformed, 1u);
  EXPECT_EQ(shard.stats().wrong_oracle, 1u);
  EXPECT_EQ(shard.stats().wrong_timestamp, 1u);
  EXPECT_EQ(shard.stats().total(), 4u);
  EXPECT_EQ(shard.stats().rejected(), 3u);
}

TEST(IngestShardTest, SketchRangeChecksAreTheSecondLineOfDefense) {
  // A forged OLH packet with a bucket beyond g, and an HR packet with a
  // column beyond K, decode fine at wire level but must be rejected by the
  // sketch — counted, not crashed.
  {
    const FrequencyOracle& fo = GetFrequencyOracle("OLH");
    IngestShard shard(fo, {kEpsilon, kDomain}, OracleId::kOlh, 0);
    // g = round(e^1)+1 = 4; bucket 4000 is out of range.
    const auto forged = EncodeOlhReport(123, 4000, 0);
    EXPECT_EQ(shard.Ingest(forged), IngestResult::kSketchRejected);
    EXPECT_EQ(shard.stats().sketch_rejected, 1u);
  }
  {
    const FrequencyOracle& fo = GetFrequencyOracle("HR");
    IngestShard shard(fo, {kEpsilon, kDomain}, OracleId::kHr, 0);
    // K = 16 for d = 10; column 99999 is out of range.
    const auto forged = EncodeHrReport(99999, 0);
    EXPECT_EQ(shard.Ingest(forged), IngestResult::kSketchRejected);
    EXPECT_EQ(shard.stats().sketch_rejected, 1u);
  }
}

class RouterShardingTest : public ::testing::TestWithParam<OracleId> {};

TEST_P(RouterShardingTest, MergedShardsMatchSingleShardBitForBit) {
  const OracleId oracle = GetParam();
  const FrequencyOracle& fo = GetFrequencyOracle(OracleIdName(oracle));
  const FoParams params{kEpsilon, kDomain};
  const auto packets = RoundPackets(oracle, 7, 800);

  ReportRouter single(fo, params, oracle, 7, 1);
  single.IngestBatch(packets, 1);
  IngestStats single_stats;
  auto single_sketch = single.Close(&single_stats);

  for (const std::size_t shards : {2u, 4u, 5u}) {
    for (const std::size_t threads : {1u, 4u}) {
      ReportRouter router(fo, params, oracle, 7, shards);
      router.IngestBatch(packets, threads);
      IngestStats stats;
      auto merged = router.Close(&stats);
      EXPECT_EQ(stats.accepted, single_stats.accepted);
      EXPECT_EQ(merged->num_users(), single_sketch->num_users());
      EXPECT_EQ(merged->Estimate(), single_sketch->Estimate())
          << OracleIdName(oracle) << " shards=" << shards
          << " threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOracles, RouterShardingTest,
                         ::testing::ValuesIn(AllOracleIds()),
                         [](const auto& info) {
                           return std::string(OracleIdName(info.param));
                         });

TEST(RouterTest, CloseIsFinalAndSerialNonceRoutingWorks) {
  const FrequencyOracle& fo = GetFrequencyOracle("GRR");
  ReportRouter router(fo, {kEpsilon, kDomain}, OracleId::kGrr, 0, 3);
  const auto packets = RoundPackets(OracleId::kGrr, 0, 9);
  for (const auto& p : packets) {
    EXPECT_EQ(router.Ingest(p), IngestResult::kAccepted);
  }
  // Nonce routing spreads the users over the shards deterministically.
  std::size_t routed = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    routed += router.shard(s).stats().accepted;
  }
  EXPECT_EQ(routed, 9u);
  auto sketch = router.Close(nullptr);
  EXPECT_EQ(sketch->num_users(), 9u);
  EXPECT_THROW(router.Ingest(packets[0]), std::logic_error);
  EXPECT_THROW(router.Close(nullptr), std::logic_error);
}

TEST(RouterTest, ZeroShardsPicksTheAdaptiveHardwareDefault) {
  const FrequencyOracle& fo = GetFrequencyOracle("GRR");
  ReportRouter router(fo, {kEpsilon, kDomain}, OracleId::kGrr, 0, 0);
  EXPECT_EQ(router.num_shards(), HardwareThreads());
}

TEST(IngestShardTest, SameWirePacketTwiceCountsTheUserOnce) {
  // Regression: a duplicated packet (network retry, replayed log) used to
  // fold into the sketch twice and double-count the user.
  const FrequencyOracle& fo = GetFrequencyOracle("GRR");
  IngestShard shard(fo, {kEpsilon, kDomain}, OracleId::kGrr, 0);
  const auto packets = RoundPackets(OracleId::kGrr, 0, 2);
  EXPECT_EQ(shard.Ingest(packets[0]), IngestResult::kAccepted);
  EXPECT_EQ(shard.Ingest(packets[0]), IngestResult::kDuplicate);
  EXPECT_EQ(shard.Ingest(packets[1]), IngestResult::kAccepted);
  EXPECT_EQ(shard.stats().accepted, 2u);
  EXPECT_EQ(shard.stats().duplicate, 1u);
  EXPECT_EQ(shard.sketch().num_users(), 2u);
}

TEST(IngestShardTest, SketchRejectionDoesNotBurnTheNonce) {
  // A forged OLH packet wearing user 7's nonce decodes but fails the
  // sketch's range check; the real report with the same nonce must still
  // be accepted afterwards.
  const FrequencyOracle& fo = GetFrequencyOracle("OLH");
  IngestShard shard(fo, {kEpsilon, kDomain}, OracleId::kOlh, 0);
  const auto forged = EncodeOlhReport(123, 4000, 0, /*nonce=*/7);
  EXPECT_EQ(shard.Ingest(forged), IngestResult::kSketchRejected);
  Rng rng(HashCounter(23, 7, 0));
  const auto real =
      PerturbToWire(OracleId::kOlh, 3, kEpsilon, kDomain, 0, 7, rng);
  EXPECT_EQ(shard.Ingest(real), IngestResult::kAccepted);
}

TEST_P(RouterShardingTest, DuplicatedDeliveryNeverChangesTheMergedSketch) {
  // Duplicates colocate with their original (nonce partition), so the
  // deduplicated merge is bit-identical to clean single-shard ingestion at
  // every shard count — and regardless of where the copies sit in the
  // batch.
  const OracleId oracle = GetParam();
  const FrequencyOracle& fo = GetFrequencyOracle(OracleIdName(oracle));
  const FoParams params{kEpsilon, kDomain};
  const auto clean = RoundPackets(oracle, 3, 200);

  ReportRouter reference(fo, params, oracle, 3, 1);
  reference.IngestBatch(clean, 1);
  auto expected = reference.Close(nullptr);

  auto noisy = clean;
  for (std::size_t i = 0; i < clean.size(); i += 7) {
    noisy.push_back(clean[i]);  // re-delivered copies arrive late
  }
  for (const std::size_t shards : {1u, 4u}) {
    ReportRouter router(fo, params, oracle, 3, shards);
    router.IngestBatch(noisy, 2);
    IngestStats stats;
    auto merged = router.Close(&stats);
    EXPECT_EQ(stats.duplicate, (clean.size() + 6) / 7)
        << OracleIdName(oracle) << " shards=" << shards;
    EXPECT_EQ(merged->num_users(), expected->num_users());
    EXPECT_EQ(merged->Estimate(), expected->Estimate())
        << OracleIdName(oracle) << " shards=" << shards;
  }
}

// --- mechanism sessions ---------------------------------------------------

MechanismConfig SessionConfig(const std::string& mechanism_fo = "GRR") {
  MechanismConfig c;
  c.epsilon = kEpsilon;
  c.window = 4;
  c.fo = mechanism_fo;
  c.seed = 91;
  return c;
}

std::unique_ptr<MechanismSession> MakeSession(const std::string& mechanism,
                                              const ClientFleet& fleet,
                                              std::size_t shards,
                                              std::size_t threads,
                                              const std::string& fo = "GRR") {
  SessionOptions options;
  options.num_shards = shards;
  options.num_threads = threads;
  return std::make_unique<MechanismSession>(
      CreateMechanism(mechanism, SessionConfig(fo), fleet.num_users()),
      kDomain, options, fleet.Transport(threads));
}

TEST(MechanismSessionTest, EveryMechanismServesOnlineEndToEnd) {
  const ClientFleet fleet(600, TruthValue, 2718);
  for (const std::string& name : AllMechanismNames()) {
    auto session = MakeSession(name, fleet, 2, 1);
    for (std::size_t t = 0; t < 10; ++t) {
      EXPECT_EQ(session->next_timestamp(), t);
      const StepResult step = session->Advance();
      ASSERT_EQ(step.release.size(), kDomain) << name << " t=" << t;
      for (double v : step.release) {
        EXPECT_TRUE(std::isfinite(v)) << name;
      }
    }
    // The server only saw wire packets; every accepted report is counted.
    EXPECT_GT(session->rounds(), 0u) << name;
    EXPECT_GT(session->stats().accepted, 0u) << name;
    EXPECT_EQ(session->stats().rejected(), 0u) << name;
  }
}

TEST(MechanismSessionTest, BudgetDivisionAccountingMatchesTheCohorts) {
  // LBU: whole population, one round per timestamp.
  const ClientFleet fleet(500, TruthValue, 1);
  auto session = MakeSession("LBU", fleet, 3, 1);
  for (std::size_t t = 0; t < 6; ++t) session->Advance();
  EXPECT_EQ(session->rounds(), 6u);
  EXPECT_EQ(session->stats().accepted, 6u * 500u);
}

TEST(MechanismSessionTest, ShardAndThreadCountsNeverChangeReleases) {
  // Sharded merge is exact and fleet randomness is stateless per
  // (user, round), so the released stream is bit-identical across every
  // shard/thread configuration.
  const ClientFleet fleet(600, TruthValue, 5050);
  auto reference = MakeSession("LPA", fleet, 1, 1);
  std::vector<Histogram> expected;
  for (std::size_t t = 0; t < 8; ++t) {
    expected.push_back(reference->Advance().release);
  }
  for (const std::size_t shards : {2u, 4u}) {
    for (const std::size_t threads : {1u, 4u}) {
      const ClientFleet same_fleet(600, TruthValue, 5050);
      auto session = MakeSession("LPA", same_fleet, shards, threads);
      for (std::size_t t = 0; t < 8; ++t) {
        EXPECT_EQ(session->Advance().release, expected[t])
            << "shards=" << shards << " threads=" << threads << " t=" << t;
      }
    }
  }
}

TEST(MechanismSessionTest, NonGrrOraclesServeOnline) {
  for (const std::string fo : {"OUE", "OLH", "SUE", "HR"}) {
    const ClientFleet fleet(400, TruthValue, 11);
    auto session = MakeSession("LBD", fleet, 2, 1, fo);
    for (std::size_t t = 0; t < 5; ++t) {
      const StepResult step = session->Advance();
      ASSERT_EQ(step.release.size(), kDomain) << fo;
    }
    EXPECT_EQ(session->stats().rejected(), 0u) << fo;
  }
}

TEST(MechanismSessionTest, CorruptedPacketsAreCountedAndSurvived) {
  const ClientFleet fleet(800, TruthValue, 404);
  SessionOptions options;
  options.num_shards = 2;
  options.num_threads = 1;
  // Corrupt every 10th user's packet in transit; drop every 97th.
  auto mangle = [](std::vector<uint8_t>& packet, uint64_t user,
                   uint64_t round) {
    (void)round;
    if (user % 97 == 0) return false;
    if (user % 10 == 0) packet[packet.size() / 2] ^= 0xFF;
    return true;
  };
  auto session = std::make_unique<MechanismSession>(
      CreateMechanism("LBU", SessionConfig(), fleet.num_users()), kDomain,
      options, fleet.Transport(1, mangle));
  for (std::size_t t = 0; t < 4; ++t) {
    const StepResult step = session->Advance();
    EXPECT_EQ(step.release.size(), kDomain);
  }
  EXPECT_GT(session->stats().malformed, 0u);
  EXPECT_GT(session->stats().accepted, 0u);
  EXPECT_EQ(session->stats().wrong_timestamp, 0u);
}

TEST(MechanismSessionTest, EmptyRoundThrowsInsteadOfFabricatingAnEstimate) {
  const ClientFleet fleet(100, TruthValue, 12);
  SessionOptions options;
  auto drop_all = [](std::vector<uint8_t>& packet, uint64_t, uint64_t) {
    (void)packet;
    return false;
  };
  MechanismSession session(
      CreateMechanism("LBU", SessionConfig(), fleet.num_users()), kDomain,
      options, fleet.Transport(1, drop_all));
  EXPECT_FALSE(session.failed());
  EXPECT_THROW(session.Advance(), std::runtime_error);
  // The failure interrupted the mechanism's w-event accounting mid-step,
  // so the session is permanently failed: no replays, no skips.
  EXPECT_TRUE(session.failed());
  EXPECT_THROW(session.Advance(), std::logic_error);
}

TEST(MechanismSessionTest, ConstructorValidates) {
  const ClientFleet fleet(100, TruthValue, 1);
  EXPECT_THROW(MechanismSession(nullptr, kDomain, {}, fleet.Transport(1)),
               std::invalid_argument);
  EXPECT_THROW(
      MechanismSession(CreateMechanism("LBU", SessionConfig(), 100), 1, {},
                       fleet.Transport(1)),
      std::invalid_argument);
  EXPECT_THROW(
      MechanismSession(CreateMechanism("LBU", SessionConfig(), 100),
                       kDomain, {}, nullptr),
      std::invalid_argument);
}

// --- stream server --------------------------------------------------------

TEST(StreamServerTest, ParallelAdvanceMatchesSerialSessions) {
  const std::vector<std::string> mechanisms = {"LBU", "LBA", "LPU", "LPA"};
  constexpr std::size_t kSteps = 6;

  // Reference: each session advanced serially on its own.
  std::vector<std::vector<Histogram>> expected;
  for (const std::string& name : mechanisms) {
    const ClientFleet fleet(600, TruthValue, 7000 + expected.size());
    auto session = MakeSession(name, fleet, 2, 1);
    std::vector<Histogram> releases;
    for (std::size_t t = 0; t < kSteps; ++t) {
      releases.push_back(session->Advance().release);
    }
    expected.push_back(std::move(releases));
  }

  // Server: same sessions advanced concurrently.
  StreamServer server(/*num_threads=*/4);
  std::vector<std::unique_ptr<ClientFleet>> fleets;
  for (std::size_t i = 0; i < mechanisms.size(); ++i) {
    fleets.push_back(
        std::make_unique<ClientFleet>(600, TruthValue, 7000 + i));
    server.AddSession(mechanisms[i],
                      MakeSession(mechanisms[i], *fleets[i], 2, 1));
  }
  ASSERT_EQ(server.num_sessions(), mechanisms.size());
  for (std::size_t t = 0; t < kSteps; ++t) {
    const std::vector<StepResult> releases = server.AdvanceAll();
    for (std::size_t i = 0; i < mechanisms.size(); ++i) {
      EXPECT_EQ(releases[i].release, expected[i][t])
          << server.name(i) << " t=" << t;
    }
  }
}

TEST(StreamServerTest, TracksSessionsByName) {
  StreamServer server(1);
  const ClientFleet fleet(200, TruthValue, 3);
  const std::size_t idx =
      server.AddSession("metrics/eu", MakeSession("LBU", fleet, 1, 1));
  EXPECT_EQ(server.name(idx), "metrics/eu");
  EXPECT_EQ(server.session(idx).next_timestamp(), 0u);
  EXPECT_THROW(server.AddSession("null", nullptr), std::invalid_argument);
  EXPECT_THROW(StreamServer(0), std::invalid_argument);
}

}  // namespace
}  // namespace ldpids
