// Oracle-specific tests for OUE, OLH, SUE and HR beyond the shared
// property suite (fo_property_test.cc).
#include <cmath>

#include <gtest/gtest.h>

#include "fo/hr.h"
#include "fo/olh.h"
#include "fo/oue.h"
#include "fo/sue.h"
#include "test_util.h"
#include "util/rng.h"

namespace ldpids {
namespace {

// --- OUE ---

TEST(OueOracleTest, ZeroFlipProbabilityMatchesFormula) {
  EXPECT_DOUBLE_EQ(OueOracle::ZeroFlipProbability(1.0),
                   1.0 / (std::exp(1.0) + 1.0));
  EXPECT_DOUBLE_EQ(OueOracle::OneProbability(), 0.5);
}

TEST(OueOracleTest, LdpRatioOfBitChannels) {
  // Per-bit guarantee: (p(1-q)) / (q(1-p)) = e^eps with p=1/2.
  for (double eps : {0.5, 1.0, 3.0}) {
    const double p = 0.5;
    const double q = OueOracle::ZeroFlipProbability(eps);
    EXPECT_NEAR((p * (1 - q)) / (q * (1 - p)), std::exp(eps),
                1e-9 * std::exp(eps));
  }
}

TEST(OueOracleTest, VarianceIsDomainIndependent) {
  const OueOracle oue;
  EXPECT_DOUBLE_EQ(oue.Variance(1.0, 1000, 2, 0.0),
                   oue.Variance(1.0, 1000, 1000, 0.0));
  // Known closed form at f=0: 4 e^eps / (n (e^eps - 1)^2).
  const double e = std::exp(1.0);
  EXPECT_NEAR(oue.Variance(1.0, 1000, 16, 0.0),
              4.0 * e / (1000.0 * (e - 1.0) * (e - 1.0)), 1e-12);
}

TEST(OueOracleTest, ReportIsDBits) {
  const OueOracle oue;
  EXPECT_EQ(oue.BytesPerReport(8), 1u);
  EXPECT_EQ(oue.BytesPerReport(9), 2u);
  EXPECT_EQ(oue.BytesPerReport(117), 15u);
}

// --- OLH ---

TEST(OlhOracleTest, BucketCountIsOptimalChoice) {
  // g = round(e^eps) + 1, never below 2.
  EXPECT_EQ(OlhOracle::BucketCount(1.0), 4u);   // e ~ 2.72 -> 3 + 1
  EXPECT_EQ(OlhOracle::BucketCount(2.0), 8u);   // e^2 ~ 7.39 -> 7 + 1
  EXPECT_EQ(OlhOracle::BucketCount(0.1), 2u);
}

TEST(OlhOracleTest, ReportSizeIndependentOfDomain) {
  const OlhOracle olh;
  EXPECT_EQ(olh.BytesPerReport(2), olh.BytesPerReport(1000000));
}

TEST(OlhOracleTest, SupportRateOfNonHeldValuesIsOneOverG) {
  // Empirically verify the 1/g cross-support rate that the estimator
  // assumes: with all users holding value 0, the support count of value 1
  // has mean n/g.
  const OlhOracle olh;
  const double eps = 1.0;
  const std::size_t d = 8;
  const double g = static_cast<double>(OlhOracle::BucketCount(eps));
  Rng rng(1);
  auto sketch = olh.CreateSketch({eps, d});
  constexpr int kUsers = 50000;
  for (int i = 0; i < kUsers; ++i) sketch->AddUser(0, rng);
  // est[1] should be ~0 (unbiased), so its support rate was ~1/g.
  const Histogram est = sketch->Estimate();
  EXPECT_NEAR(est[1], 0.0, 0.03);
  EXPECT_NEAR(est[0], 1.0, 0.03);
  (void)g;
}

// --- SUE ---

TEST(SueOracleTest, KeepProbabilityUsesHalfBudget) {
  const double e_half = std::exp(0.5);
  EXPECT_DOUBLE_EQ(SueOracle::KeepProbability(1.0), e_half / (e_half + 1.0));
}

TEST(SueOracleTest, DominatedByOueAtLowFrequencies) {
  // OUE's asymmetric (1/2, 1/(e^eps+1)) choice minimizes the variance of
  // *rare* items — the regime that dominates mean variance once d is
  // moderately large. (At d=2, f=1/2, the f p(1-p) term lets SUE win;
  // that is expected and why we compare at f=0 and at large d.)
  const SueOracle sue;
  const OueOracle oue;
  for (double eps : {0.5, 1.0, 2.0, 4.0}) {
    for (std::size_t d : {2u, 16u, 117u}) {
      EXPECT_LT(oue.Variance(eps, 1000, d, 0.0),
                sue.Variance(eps, 1000, d, 0.0))
          << "eps=" << eps << " d=" << d;
    }
    EXPECT_LT(oue.MeanVariance(eps, 1000, 117),
              sue.MeanVariance(eps, 1000, 117))
        << "eps=" << eps;
  }
}

TEST(SueOracleTest, TwoBitFlipRatioIsExpEps) {
  // Neighbouring one-hot encodings differ in two bits; the worst-case
  // likelihood ratio is (p/(1-p))^2 = e^eps.
  for (double eps : {0.5, 1.0, 2.0}) {
    const double p = SueOracle::KeepProbability(eps);
    EXPECT_NEAR(std::pow(p / (1 - p), 2.0), std::exp(eps),
                1e-9 * std::exp(eps));
  }
}

// --- HR ---

TEST(HrOracleTest, HadamardSizeIsNextPowerOfTwo) {
  EXPECT_EQ(HrOracle::HadamardSize(2), 4u);
  EXPECT_EQ(HrOracle::HadamardSize(3), 4u);
  EXPECT_EQ(HrOracle::HadamardSize(4), 8u);
  EXPECT_EQ(HrOracle::HadamardSize(117), 128u);
  EXPECT_EQ(HrOracle::HadamardSize(128), 256u);
}

TEST(HrOracleTest, ReportIsLogarithmicInDomain) {
  const HrOracle hr;
  // 117 values -> K = 128 -> 7 bits -> 1 byte; compare OUE's 15 bytes.
  EXPECT_EQ(hr.BytesPerReport(117), 1u);
  EXPECT_LT(hr.BytesPerReport(100000), 4u);
}

TEST(HrOracleTest, CrossSupportIsExactlyHalf) {
  // All users hold value 2; every other value's estimate must center on 0,
  // which relies on distinct Hadamard rows agreeing on exactly half the
  // columns.
  const HrOracle hr;
  Rng rng(2);
  const std::size_t d = 6;
  std::vector<double> est0, est2;
  for (int rep = 0; rep < 150; ++rep) {
    auto sketch = hr.CreateSketch({1.0, d});
    for (int i = 0; i < 2000; ++i) sketch->AddUser(2, rng);
    const Histogram est = sketch->Estimate();
    est0.push_back(est[0]);
    est2.push_back(est[2]);
  }
  EXPECT_TRUE(testing::MeanWithin(est0, 0.0, 5.5))
      << testing::SampleMean(est0);
  EXPECT_TRUE(testing::MeanWithin(est2, 1.0, 5.5))
      << testing::SampleMean(est2);
}

TEST(HrOracleTest, CommunicationAccuracyTradeoffVsOue) {
  // HR pays ~4x OUE's variance at eps=1 in exchange for exponentially
  // smaller reports; make the tradeoff explicit.
  const HrOracle hr;
  const OueOracle oue;
  const double v_hr = hr.MeanVariance(1.0, 10000, 117);
  const double v_oue = oue.MeanVariance(1.0, 10000, 117);
  EXPECT_GT(v_hr, v_oue);
  EXPECT_LT(v_hr, 10.0 * v_oue);
  EXPECT_LT(hr.BytesPerReport(117), oue.BytesPerReport(117));
}

}  // namespace
}  // namespace ldpids
