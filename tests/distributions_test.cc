#include "util/distributions.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/rng.h"

namespace ldpids {
namespace {

TEST(GaussianTest, MomentsMatch) {
  Rng rng(1);
  std::vector<double> xs(200000);
  for (double& x : xs) x = SampleGaussian(rng);
  EXPECT_TRUE(testing::MeanWithin(xs, 0.0));
  EXPECT_NEAR(testing::SampleVariance(xs), 1.0, 0.02);
}

TEST(GaussianTest, ScaledMomentsMatch) {
  Rng rng(2);
  std::vector<double> xs(100000);
  for (double& x : xs) x = SampleGaussian(rng, 3.0, 0.5);
  EXPECT_TRUE(testing::MeanWithin(xs, 3.0));
  EXPECT_NEAR(testing::SampleVariance(xs), 0.25, 0.01);
}

TEST(LaplaceTest, MomentsMatch) {
  Rng rng(3);
  const double scale = 2.0;
  std::vector<double> xs(200000);
  for (double& x : xs) x = SampleLaplace(rng, scale);
  EXPECT_TRUE(testing::MeanWithin(xs, 0.0));
  // Var(Lap(b)) = 2 b^2.
  EXPECT_NEAR(testing::SampleVariance(xs), 2.0 * scale * scale, 0.3);
}

TEST(LaplaceTest, MedianIsZeroAndTailsAreSymmetric) {
  Rng rng(4);
  int positive = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) positive += (SampleLaplace(rng, 1.0) > 0);
  EXPECT_NEAR(positive, kDraws / 2, 5.0 * std::sqrt(kDraws / 4.0));
}

TEST(BinomialTest, EdgeCases) {
  Rng rng(5);
  EXPECT_EQ(SampleBinomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(SampleBinomial(rng, 100, 0.0), 0u);
  EXPECT_EQ(SampleBinomial(rng, 100, 1.0), 100u);
  EXPECT_EQ(SampleBinomial(rng, 100, -0.1), 0u);
  EXPECT_EQ(SampleBinomial(rng, 100, 1.1), 100u);
}

// Both samplers (inversion for small n*p, BTRS for large) must match the
// binomial mean and variance; sweep regimes that hit each code path.
struct BinomialCase {
  uint64_t n;
  double p;
};

class BinomialMomentsTest : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialMomentsTest, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(6 + n);
  constexpr int kDraws = 60000;
  std::vector<double> xs(kDraws);
  for (double& x : xs) {
    const uint64_t k = SampleBinomial(rng, n, p);
    ASSERT_LE(k, n);
    x = static_cast<double>(k);
  }
  const double mean = static_cast<double>(n) * p;
  const double var = mean * (1.0 - p);
  EXPECT_TRUE(testing::MeanWithin(xs, mean, 5.0))
      << "n=" << n << " p=" << p << " mean=" << testing::SampleMean(xs);
  EXPECT_NEAR(testing::SampleVariance(xs), var, 5.0 * var / std::sqrt(kDraws) + 0.05)
      << "n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialMomentsTest,
    ::testing::Values(BinomialCase{5, 0.3},        // inversion
                      BinomialCase{100, 0.01},     // inversion, large n
                      BinomialCase{100, 0.99},     // symmetry + inversion
                      BinomialCase{50, 0.5},       // BTRS
                      BinomialCase{1000, 0.2},     // BTRS
                      BinomialCase{1000000, 0.5},  // BTRS, huge n
                      BinomialCase{200000, 0.001}  // inversion boundary
                      ));

TEST(MultinomialTest, CountsSumToN) {
  Rng rng(7);
  const std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  for (int i = 0; i < 100; ++i) {
    const auto counts = SampleMultinomial(rng, 1000, w);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0ull), 1000ull);
  }
}

TEST(MultinomialTest, MeansMatchWeights) {
  Rng rng(8);
  const std::vector<double> w = {0.1, 0.2, 0.3, 0.4};
  constexpr uint64_t kN = 10000;
  constexpr int kDraws = 20000;
  std::vector<double> totals(w.size(), 0.0);
  for (int i = 0; i < kDraws; ++i) {
    const auto counts = SampleMultinomial(rng, kN, w);
    for (std::size_t k = 0; k < w.size(); ++k) {
      totals[k] += static_cast<double>(counts[k]);
    }
  }
  for (std::size_t k = 0; k < w.size(); ++k) {
    const double mean = totals[k] / kDraws;
    const double expected = kN * w[k];
    const double sigma = std::sqrt(kN * w[k] * (1 - w[k]) / kDraws);
    EXPECT_NEAR(mean, expected, 6.0 * sigma) << "bucket " << k;
  }
}

TEST(MultinomialTest, ZeroWeightGetsZeroCounts) {
  Rng rng(9);
  const auto counts = SampleMultinomial(rng, 5000, {1.0, 0.0, 1.0});
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[0] + counts[2], 5000u);
}

TEST(MultinomialTest, RejectsInvalidWeights) {
  Rng rng(10);
  EXPECT_THROW(SampleMultinomial(rng, 10, {}), std::invalid_argument);
  EXPECT_THROW(SampleMultinomial(rng, 10, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(SampleMultinomial(rng, 10, {1.0, -1.0}), std::invalid_argument);
}

TEST(MultinomialTest, ScratchOverloadMatchesAllocatingOverloadExactly) {
  // The scratch-buffer overload must consume the identical RNG stream, so
  // seed-pinned results agree bit-for-bit.
  const std::vector<double> w = {0.5, 1.5, 3.0, 0.25};
  Rng rng_a(21), rng_b(21);
  std::vector<uint64_t> scratch;
  for (int round = 0; round < 10; ++round) {
    const auto allocated = SampleMultinomial(rng_a, 1000, w);
    SampleMultinomial(rng_b, 1000, w, &scratch);
    EXPECT_EQ(allocated, scratch) << "round " << round;
  }
}

TEST(MultinomialTest, ScratchOverloadResetsStaleBuffer) {
  // A dirty or wrongly-sized caller buffer must not leak into the result.
  Rng rng(22);
  std::vector<uint64_t> scratch = {99, 99, 99, 99, 99, 99, 99};
  SampleMultinomial(rng, 100, {1.0, 1.0, 1.0}, &scratch);
  ASSERT_EQ(scratch.size(), 3u);
  EXPECT_EQ(scratch[0] + scratch[1] + scratch[2], 100u);
}

TEST(HypergeometricTest, EdgeCases) {
  Rng rng(11);
  EXPECT_EQ(SampleHypergeometric(rng, 10, 5, 0), 0u);
  EXPECT_EQ(SampleHypergeometric(rng, 10, 0, 5), 0u);
  EXPECT_EQ(SampleHypergeometric(rng, 10, 10, 4), 4u);
  EXPECT_EQ(SampleHypergeometric(rng, 10, 3, 10), 3u);
}

struct HyperCase {
  uint64_t total, marked, draws;
};

class HypergeometricMomentsTest
    : public ::testing::TestWithParam<HyperCase> {};

TEST_P(HypergeometricMomentsTest, MeanAndVarianceMatch) {
  const auto [total, marked, draws] = GetParam();
  Rng rng(12 + total);
  constexpr int kDraws = 40000;
  std::vector<double> xs(kDraws);
  for (double& x : xs) {
    const uint64_t k = SampleHypergeometric(rng, total, marked, draws);
    ASSERT_LE(k, std::min(marked, draws));
    x = static_cast<double>(k);
  }
  const double N = static_cast<double>(total);
  const double K = static_cast<double>(marked);
  const double n = static_cast<double>(draws);
  const double mean = n * K / N;
  const double var = n * (K / N) * (1 - K / N) * (N - n) / (N - 1);
  EXPECT_TRUE(testing::MeanWithin(xs, mean, 5.5)) << testing::SampleMean(xs);
  EXPECT_NEAR(testing::SampleVariance(xs), var,
              6.0 * var / std::sqrt(kDraws) + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, HypergeometricMomentsTest,
    ::testing::Values(HyperCase{100, 30, 10},     // inversion
                      HyperCase{1000, 500, 100},  // symmetry paths
                      HyperCase{10000, 9000, 50},  // complement reduction
                      HyperCase{5000, 2500, 4000}  // large draws
                      ));

TEST(MultiHypergeometricTest, CountsSumToDraws) {
  Rng rng(13);
  const std::vector<uint64_t> categories = {100, 200, 300, 400};
  for (int i = 0; i < 200; ++i) {
    const auto counts = SampleMultiHypergeometric(rng, categories, 250);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0ull), 250ull);
    for (std::size_t k = 0; k < categories.size(); ++k) {
      EXPECT_LE(counts[k], categories[k]);
    }
  }
}

TEST(MultiHypergeometricTest, RejectsOverdraw) {
  Rng rng(14);
  EXPECT_THROW(SampleMultiHypergeometric(rng, {5, 5}, 11),
               std::invalid_argument);
}

TEST(MultiHypergeometricTest, ExactWhenDrawingEverything) {
  Rng rng(15);
  const std::vector<uint64_t> categories = {7, 3, 5};
  const auto counts = SampleMultiHypergeometric(rng, categories, 15);
  EXPECT_EQ(counts, categories);
}

TEST(ZipfWeightsTest, NormalizedAndDecreasing) {
  const auto w = ZipfWeights(10, 1.2);
  EXPECT_EQ(w.size(), 10u);
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-12);
  for (std::size_t k = 1; k < w.size(); ++k) EXPECT_LT(w[k], w[k - 1]);
}

TEST(ZipfWeightsTest, ZeroExponentIsUniform) {
  const auto w = ZipfWeights(4, 0.0);
  for (double x : w) EXPECT_NEAR(x, 0.25, 1e-12);
}

}  // namespace
}  // namespace ldpids
