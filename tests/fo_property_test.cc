// Parameterized property suite run against every frequency oracle: the
// stream mechanisms are FO-agnostic, so all FOs must satisfy the same
// contract (unbiasedness, analytic variance, cohort/per-user distributional
// equivalence, V(eps, n) monotonicity).
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "fo/frequency_oracle.h"
#include "test_util.h"
#include "util/rng.h"

namespace ldpids {
namespace {

using FoCase = std::tuple<std::string, double, std::size_t>;  // name, eps, d

class FoPropertyTest : public ::testing::TestWithParam<FoCase> {
 protected:
  const FrequencyOracle& oracle() const {
    return GetFrequencyOracle(std::get<0>(GetParam()));
  }
  double eps() const { return std::get<1>(GetParam()); }
  std::size_t d() const { return std::get<2>(GetParam()); }

  // A fixed skewed cohort over the domain (Zipf-ish).
  Counts MakeCohort(uint64_t n) const {
    Counts cohort(d(), 0);
    uint64_t left = n;
    for (std::size_t k = 0; k + 1 < d(); ++k) {
      cohort[k] = left / 2;
      left -= cohort[k];
    }
    cohort[d() - 1] = left;
    return cohort;
  }
};

TEST_P(FoPropertyTest, EstimateIsUnbiased) {
  Rng rng(100);
  const uint64_t n = 20000;
  const Counts cohort = MakeCohort(n);
  std::vector<double> first_bin, last_bin;
  for (int rep = 0; rep < 120; ++rep) {
    auto sketch = oracle().CreateSketch({eps(), d()});
    sketch->AddCohort(cohort, rng);
    const Histogram est = sketch->Estimate();
    ASSERT_EQ(est.size(), d());
    first_bin.push_back(est[0]);
    last_bin.push_back(est[d() - 1]);
  }
  const double f0 = static_cast<double>(cohort[0]) / n;
  const double fl = static_cast<double>(cohort[d() - 1]) / n;
  EXPECT_TRUE(testing::MeanWithin(first_bin, f0, 5.5))
      << testing::SampleMean(first_bin) << " vs " << f0;
  EXPECT_TRUE(testing::MeanWithin(last_bin, fl, 5.5))
      << testing::SampleMean(last_bin) << " vs " << fl;
}

TEST_P(FoPropertyTest, AnalyticVarianceMatchesEmpirical) {
  Rng rng(200);
  const uint64_t n = 20000;
  const Counts cohort = MakeCohort(n);
  const double f0 = static_cast<double>(cohort[0]) / n;
  std::vector<double> first_bin;
  constexpr int kReps = 600;
  for (int rep = 0; rep < kReps; ++rep) {
    auto sketch = oracle().CreateSketch({eps(), d()});
    sketch->AddCohort(cohort, rng);
    first_bin.push_back(sketch->Estimate()[0]);
  }
  const double analytic = oracle().Variance(eps(), n, d(), f0);
  const double empirical = testing::SampleVariance(first_bin);
  // Sample variance of kReps draws has relative sd ~ sqrt(2/kReps) ~ 5.8%;
  // allow 5 sigma.
  EXPECT_NEAR(empirical, analytic, 0.3 * analytic)
      << "analytic=" << analytic << " empirical=" << empirical;
}

TEST_P(FoPropertyTest, PerUserAndCohortMomentsAgree) {
  Rng rng_a(300), rng_b(301);
  const uint64_t n = 600;
  const Counts cohort = MakeCohort(n);
  std::vector<double> exact, fast;
  for (int rep = 0; rep < 300; ++rep) {
    auto sa = oracle().CreateSketch({eps(), d()});
    for (std::size_t k = 0; k < d(); ++k) {
      for (uint64_t i = 0; i < cohort[k]; ++i) {
        sa->AddUser(static_cast<uint32_t>(k), rng_a);
      }
    }
    exact.push_back(sa->Estimate()[0]);
    auto sb = oracle().CreateSketch({eps(), d()});
    sb->AddCohort(cohort, rng_b);
    fast.push_back(sb->Estimate()[0]);
  }
  const double f0 = static_cast<double>(cohort[0]) / n;
  EXPECT_TRUE(testing::MeanWithin(exact, f0, 5.5));
  EXPECT_TRUE(testing::MeanWithin(fast, f0, 5.5));
  const double ve = testing::SampleVariance(exact);
  const double vf = testing::SampleVariance(fast);
  EXPECT_NEAR(ve, vf, 0.4 * std::max(ve, vf));
}

TEST_P(FoPropertyTest, NumUsersTracksAdds) {
  Rng rng(400);
  auto sketch = oracle().CreateSketch({eps(), d()});
  EXPECT_EQ(sketch->num_users(), 0u);
  sketch->AddUser(0, rng);
  sketch->AddUser(1, rng);
  EXPECT_EQ(sketch->num_users(), 2u);
  Counts cohort(d(), 0);
  cohort[0] = 10;
  sketch->AddCohort(cohort, rng);
  EXPECT_EQ(sketch->num_users(), 12u);
}

TEST_P(FoPropertyTest, MeanVarianceDecreasesWithEpsilonAndUsers) {
  const auto& fo = oracle();
  EXPECT_GT(fo.MeanVariance(eps(), 1000, d()),
            fo.MeanVariance(eps() + 0.5, 1000, d()));
  EXPECT_GT(fo.MeanVariance(eps(), 1000, d()),
            fo.MeanVariance(eps(), 2000, d()));
  // And variance halves exactly when the population doubles (1/n scaling).
  EXPECT_NEAR(fo.MeanVariance(eps(), 1000, d()),
              2.0 * fo.MeanVariance(eps(), 2000, d()),
              1e-12 + fo.MeanVariance(eps(), 1000, d()) * 1e-9);
}

TEST_P(FoPropertyTest, BytesPerReportPositive) {
  EXPECT_GT(oracle().BytesPerReport(d()), 0u);
}

TEST_P(FoPropertyTest, RejectsInvalidParams) {
  EXPECT_THROW(oracle().CreateSketch({0.0, d()}), std::invalid_argument);
  EXPECT_THROW(oracle().CreateSketch({-1.0, d()}), std::invalid_argument);
  EXPECT_THROW(oracle().CreateSketch({eps(), 1}), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    AllOracles, FoPropertyTest,
    ::testing::Combine(::testing::Values("GRR", "OUE", "OLH", "SUE", "HR"),
                       ::testing::Values(0.5, 1.0, 2.0),
                       ::testing::Values(std::size_t{2}, std::size_t{5},
                                         std::size_t{16})),
    [](const ::testing::TestParamInfo<FoCase>& info) {
      return std::get<0>(info.param) + "_eps" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10)) +
             "_d" + std::to_string(std::get<2>(info.param));
    });

TEST(FoRegistryTest, LooksUpByNameCaseInsensitive) {
  EXPECT_EQ(GetFrequencyOracle("grr").name(), "GRR");
  EXPECT_EQ(GetFrequencyOracle("Oue").name(), "OUE");
  EXPECT_EQ(GetFrequencyOracle("OLH").name(), "OLH");
  EXPECT_THROW(GetFrequencyOracle("nope"), std::invalid_argument);
}

TEST(FoRegistryTest, AllNamesResolve) {
  for (const std::string& name : AllFrequencyOracleNames()) {
    EXPECT_EQ(GetFrequencyOracle(name).name(), name);
  }
}

// Wang et al.'s headline result, which the paper's population-division
// methods exploit: for moderate eps, OUE/OLH beat GRR once the domain is
// large, while GRR wins for small domains.
TEST(FoComparisonTest, OueBeatsGrrOnLargeDomains) {
  const auto& grr = GetFrequencyOracle("GRR");
  const auto& oue = GetFrequencyOracle("OUE");
  EXPECT_LT(oue.MeanVariance(1.0, 10000, 128),
            grr.MeanVariance(1.0, 10000, 128));
  EXPECT_LT(grr.MeanVariance(1.0, 10000, 2), oue.MeanVariance(1.0, 10000, 2));
}

}  // namespace
}  // namespace ldpids
