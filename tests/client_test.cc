#include "fo/client.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "fo/grr.h"
#include "test_util.h"

namespace ldpids {
namespace {

TEST(GrrClientTest, ReportsStayInDomain) {
  GrrClient client(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(client.Perturb(3, 1.0, 5), 5u);
  }
  EXPECT_THROW(client.Perturb(5, 1.0, 5), std::out_of_range);
}

TEST(GrrClientTest, KeepRateMatchesP) {
  GrrClient client(2);
  const double eps = 1.0;
  const std::size_t d = 4;
  constexpr int kReports = 200000;
  int kept = 0;
  for (int i = 0; i < kReports; ++i) kept += (client.Perturb(1, eps, d) == 1);
  const double p = GrrOracle::KeepProbability(eps, d);
  EXPECT_NEAR(kept, p * kReports, 5.0 * std::sqrt(kReports * p * (1 - p)));
}

TEST(GrrClientTest, EmpiricalLdpGuarantee) {
  // For every output o, P[o | v=0] / P[o | v=1] must lie within e^{+-eps}.
  const double eps = 0.7;
  const std::size_t d = 3;
  constexpr int kReports = 300000;
  GrrClient c0(3), c1(4);
  std::vector<int> count0(d, 0), count1(d, 0);
  for (int i = 0; i < kReports; ++i) {
    ++count0[c0.Perturb(0, eps, d)];
    ++count1[c1.Perturb(1, eps, d)];
  }
  for (std::size_t o = 0; o < d; ++o) {
    const double ratio = static_cast<double>(count0[o]) /
                         static_cast<double>(count1[o]);
    // 3 sigma slack on the empirical ratio.
    EXPECT_LT(ratio, std::exp(eps) * 1.05) << "output " << o;
    EXPECT_GT(ratio, std::exp(-eps) / 1.05) << "output " << o;
  }
}

TEST(GrrAggregatorTest, RoundTripIsUnbiased) {
  const double eps = 1.0;
  const std::size_t d = 4;
  // 30% value 0, 70% value 3.
  std::vector<double> est0;
  for (int rep = 0; rep < 60; ++rep) {
    GrrClient client(100 + rep);
    GrrAggregator agg(eps, d);
    for (int i = 0; i < 5000; ++i) {
      agg.Consume(client.Perturb(i % 10 < 3 ? 0 : 3, eps, d));
    }
    est0.push_back(agg.Estimate()[0]);
  }
  EXPECT_TRUE(testing::MeanWithin(est0, 0.3, 5.5))
      << testing::SampleMean(est0);
}

TEST(GrrAggregatorTest, InputValidation) {
  GrrAggregator agg(1.0, 3);
  EXPECT_THROW(agg.Estimate(), std::logic_error);
  EXPECT_THROW(agg.Consume(3), std::out_of_range);
  EXPECT_THROW(GrrAggregator(1.0, 1), std::invalid_argument);
  agg.Consume(0);
  EXPECT_EQ(agg.num_reports(), 1u);
  EXPECT_EQ(agg.Estimate().size(), 3u);
}

}  // namespace
}  // namespace ldpids
