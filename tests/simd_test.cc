// Pins the SIMD abstraction's lane semantics (src/util/simd/) and the
// exact invariant-divisor arithmetic (src/util/fastdiv.h).
//
// The FO kernels are only allowed to be fast because every backend
// computes the same bits: these tests compare each vector op lane-by-lane
// against a plain scalar evaluation of the documented semantics, on
// whichever backend this build selected. CI runs them under the default
// (AVX2 where available) and the -DLDPIDS_FORCE_SCALAR=ON build, so both
// backends are held to the same reference.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/fastdiv.h"
#include "util/rng.h"
#include "util/simd/simd.h"

namespace ldpids {
namespace {

namespace s = ldpids::simd;

// Bitwise equality for doubles: distinguishes -0.0 from 0.0 and pins NaN
// payloads, which value comparison would not.
bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

std::vector<uint64_t> RandomU64(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out(n);
  for (auto& x : out) x = rng.NextU64();
  return out;
}

TEST(SimdTest, BackendReportsFourLanes) {
  static_assert(s::kLanes == 4);
  SCOPED_TRACE(s::kBackendName);
#if defined(LDPIDS_SIMD_FORCE_GENERIC)
  EXPECT_STREQ(s::kBackendName, "generic");
#elif defined(__AVX2__)
  EXPECT_STREQ(s::kBackendName, "avx2");
#else
  EXPECT_STREQ(s::kBackendName, "generic");
#endif
}

TEST(SimdTest, U64LoadStoreRoundTrips) {
  auto in = RandomU64(s::kLanes, 1);
  uint64_t out[s::kLanes];
  s::StoreU64(out, s::LoadU64(in.data()));
  for (std::size_t i = 0; i < s::kLanes; ++i) {
    EXPECT_EQ(out[i], in[i]);
    EXPECT_EQ(s::GetU64(s::LoadU64(in.data()), i), in[i]);
  }
}

TEST(SimdTest, U64ArithmeticMatchesScalarLanes) {
  auto a = RandomU64(s::kLanes, 2);
  auto b = RandomU64(s::kLanes, 3);
  auto va = s::LoadU64(a.data());
  auto vb = s::LoadU64(b.data());
  uint64_t out[s::kLanes];

  s::StoreU64(out, s::AddU64(va, vb));
  for (std::size_t i = 0; i < s::kLanes; ++i) EXPECT_EQ(out[i], a[i] + b[i]);
  s::StoreU64(out, s::SubU64(va, vb));
  for (std::size_t i = 0; i < s::kLanes; ++i) EXPECT_EQ(out[i], a[i] - b[i]);
  s::StoreU64(out, s::XorU64(va, vb));
  for (std::size_t i = 0; i < s::kLanes; ++i) EXPECT_EQ(out[i], a[i] ^ b[i]);
  s::StoreU64(out, s::AndU64(va, vb));
  for (std::size_t i = 0; i < s::kLanes; ++i) EXPECT_EQ(out[i], a[i] & b[i]);
  s::StoreU64(out, s::OrU64(va, vb));
  for (std::size_t i = 0; i < s::kLanes; ++i) EXPECT_EQ(out[i], a[i] | b[i]);
  // Wrapping low-64 product, including lanes that overflow.
  s::StoreU64(out, s::MulLoU64(va, vb));
  for (std::size_t i = 0; i < s::kLanes; ++i) EXPECT_EQ(out[i], a[i] * b[i]);
}

TEST(SimdTest, U64ShiftsMatchScalarLanes) {
  auto a = RandomU64(s::kLanes, 4);
  auto va = s::LoadU64(a.data());
  uint64_t out[s::kLanes];
  for (unsigned k : {0u, 1u, 7u, 31u, 32u, 33u, 63u}) {
    s::StoreU64(out, s::ShrU64(va, k));
    for (std::size_t i = 0; i < s::kLanes; ++i) EXPECT_EQ(out[i], a[i] >> k);
    s::StoreU64(out, s::ShlU64(va, k));
    for (std::size_t i = 0; i < s::kLanes; ++i) EXPECT_EQ(out[i], a[i] << k);
  }
  // Per-lane variable shift; counts >= 64 must give 0 (vpsrlvq semantics).
  uint64_t counts[s::kLanes] = {0, 13, 63, 64};
  s::StoreU64(out, s::ShrVarU64(va, s::LoadU64(counts)));
  for (std::size_t i = 0; i < s::kLanes; ++i)
    EXPECT_EQ(out[i], counts[i] < 64 ? a[i] >> counts[i] : 0u);
}

TEST(SimdTest, CmpEqAndSelect) {
  uint64_t a[s::kLanes] = {5, 6, 7, 0};
  uint64_t b[s::kLanes] = {5, 9, 7, 1};
  auto mask = s::CmpEqU64(s::LoadU64(a), s::LoadU64(b));
  uint64_t m[s::kLanes];
  s::StoreU64(m, mask);
  for (std::size_t i = 0; i < s::kLanes; ++i)
    EXPECT_EQ(m[i], a[i] == b[i] ? ~uint64_t{0} : 0u);

  auto x = RandomU64(s::kLanes, 5);
  auto y = RandomU64(s::kLanes, 6);
  uint64_t sel[s::kLanes];
  s::StoreU64(sel, s::SelectU64(mask, s::LoadU64(x.data()), s::LoadU64(y.data())));
  for (std::size_t i = 0; i < s::kLanes; ++i)
    EXPECT_EQ(sel[i], a[i] == b[i] ? x[i] : y[i]);

  // The match-counting idiom the OLH scan uses: acc -= mask adds one per
  // matching lane (mask lanes are the two's-complement -1).
  auto acc = s::SubU64(s::ZeroU64(), mask);
  EXPECT_EQ(s::ReduceAddU64(acc), 2u);
}

TEST(SimdTest, ReduceAddU64UsesFixedOrder) {
  uint64_t a[s::kLanes] = {1, 10, 100, 1000};
  EXPECT_EQ(s::ReduceAddU64(s::LoadU64(a)), 1111u);
  // Wrapping is well-defined.
  uint64_t big[s::kLanes] = {~uint64_t{0}, 2, 0, 0};
  EXPECT_EQ(s::ReduceAddU64(s::LoadU64(big)), 1u);
}

TEST(SimdTest, F64OpsAreSingleRoundedPerLane) {
  Rng rng(7);
  double a[s::kLanes], b[s::kLanes], out[s::kLanes];
  for (int iter = 0; iter < 256; ++iter) {
    for (std::size_t i = 0; i < s::kLanes; ++i) {
      // Mix magnitudes so rounding actually happens.
      a[i] = (rng.NextDouble() - 0.5) * std::ldexp(1.0, int(rng.UniformInt(80)) - 40);
      b[i] = (rng.NextDouble() - 0.5) * std::ldexp(1.0, int(rng.UniformInt(80)) - 40);
    }
    auto va = s::LoadF64(a);
    auto vb = s::LoadF64(b);
    s::StoreF64(out, s::AddF64(va, vb));
    for (std::size_t i = 0; i < s::kLanes; ++i)
      EXPECT_TRUE(SameBits(out[i], a[i] + b[i]));
    s::StoreF64(out, s::SubF64(va, vb));
    for (std::size_t i = 0; i < s::kLanes; ++i)
      EXPECT_TRUE(SameBits(out[i], a[i] - b[i]));
    s::StoreF64(out, s::MulF64(va, vb));
    for (std::size_t i = 0; i < s::kLanes; ++i)
      EXPECT_TRUE(SameBits(out[i], a[i] * b[i]));
    s::StoreF64(out, s::DivF64(va, vb));
    for (std::size_t i = 0; i < s::kLanes; ++i)
      EXPECT_TRUE(SameBits(out[i], a[i] / b[i]));
  }
}

TEST(SimdTest, FmaMatchesStdFma) {
  Rng rng(8);
  double a[s::kLanes], b[s::kLanes], c[s::kLanes], out[s::kLanes];
  for (int iter = 0; iter < 256; ++iter) {
    for (std::size_t i = 0; i < s::kLanes; ++i) {
      a[i] = rng.NextDouble() * 3.0 - 1.5;
      b[i] = rng.NextDouble() * 3.0 - 1.5;
      c[i] = rng.NextDouble() * 1e-8;  // small addend exposes fused rounding
    }
    s::StoreF64(out, s::FmaF64(s::LoadF64(a), s::LoadF64(b), s::LoadF64(c)));
    for (std::size_t i = 0; i < s::kLanes; ++i)
      EXPECT_TRUE(SameBits(out[i], std::fma(a[i], b[i], c[i])));
  }
}

TEST(SimdTest, U64ToF64IsExactConversion) {
  uint64_t edge[s::kLanes] = {0, 1, (uint64_t{1} << 53) + 1, ~uint64_t{0}};
  double out[s::kLanes];
  s::StoreF64(out, s::U64ToF64(s::LoadU64(edge)));
  for (std::size_t i = 0; i < s::kLanes; ++i)
    EXPECT_TRUE(SameBits(out[i], static_cast<double>(edge[i])));
  auto rnd = RandomU64(s::kLanes, 9);
  s::StoreF64(out, s::U64ToF64(s::LoadU64(rnd.data())));
  for (std::size_t i = 0; i < s::kLanes; ++i)
    EXPECT_TRUE(SameBits(out[i], static_cast<double>(rnd[i])));
}

TEST(SimdTest, ReduceAddF64UsesFixedOrder) {
  // Chosen so (l0+l1)+(l2+l3) differs from left-to-right accumulation.
  double v[s::kLanes] = {1.0, std::ldexp(1.0, -60), std::ldexp(1.0, -60), -1.0};
  double expected = (v[0] + v[1]) + (v[2] + v[3]);
  EXPECT_TRUE(SameBits(s::ReduceAddF64(s::LoadF64(v)), expected));
}

// ---- fastdiv ------------------------------------------------------------

void CheckDivisor(uint64_t d, const std::vector<uint64_t>& xs) {
  U64Divisor div(d);
  ASSERT_EQ(div.divisor(), d);
  for (uint64_t x : xs) {
    ASSERT_EQ(div.Div(x), x / d) << "d=" << d << " x=" << x;
    ASSERT_EQ(div.Mod(x), x % d) << "d=" << d << " x=" << x;
  }
}

std::vector<uint64_t> AdversarialX(uint64_t d) {
  const uint64_t max = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> xs = {0, 1, 2, d - 1, d, d + 1, 2 * d - 1, 2 * d,
                              max, max - 1, max - d, max - d + 1};
  // Multiples of d and their neighbours near the top of the range, where
  // an off-by-one magic would first show.
  uint64_t top_multiple = max - max % d;
  xs.push_back(top_multiple);
  xs.push_back(top_multiple - 1);
  if (top_multiple >= d) xs.push_back(top_multiple - d);
  return xs;
}

TEST(FastDivTest, ExactForSmallDivisorsExhaustiveEdges) {
  auto rand_xs = RandomU64(512, 10);
  // Covers every OLH hash range g = round(e^eps)+1 up to eps ~ 8.5, all
  // small powers of two, and the odd/even mix around them.
  for (uint64_t d = 1; d <= 5000; ++d) {
    auto xs = AdversarialX(d);
    xs.insert(xs.end(), rand_xs.begin(), rand_xs.end());
    CheckDivisor(d, xs);
  }
}

TEST(FastDivTest, ExactForLargeAndPowerOfTwoDivisors) {
  auto rand_xs = RandomU64(512, 11);
  std::vector<uint64_t> divisors;
  for (unsigned k = 0; k < 64; ++k) {
    divisors.push_back(uint64_t{1} << k);                  // powers of two
    if (k >= 1) divisors.push_back((uint64_t{1} << k) + 1);  // just above
    if (k >= 2) divisors.push_back((uint64_t{1} << k) - 1);  // just below
  }
  Rng rng(12);
  for (int i = 0; i < 64; ++i) divisors.push_back(rng.NextU64() | 1);
  for (uint64_t d : divisors) {
    auto xs = AdversarialX(d);
    xs.insert(xs.end(), rand_xs.begin(), rand_xs.end());
    CheckDivisor(d, xs);
  }
}

TEST(FastDivTest, RandomDivisorsRandomOperands) {
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    uint64_t d = rng.UniformInt(1u << 20) + 1;
    uint64_t x = rng.NextU64();
    U64Divisor div(d);
    ASSERT_EQ(div.Div(x), x / d) << "d=" << d << " x=" << x;
    ASSERT_EQ(div.Mod(x), x % d) << "d=" << d << " x=" << x;
  }
}

}  // namespace
}  // namespace ldpids
