// Multi-process distributed aggregation demo: a root process fork/execs
// N aggregator processes, announces each collection round to them over
// per-child stdin pipes, and the children ship their round partials back
// as kPartialSketch frames over loopback TCP. The root's RoundBuffer
// reassembles (dedup by emitting node id, synthetic end-of-round marker
// carrying the fan-in), RootSession folds the partials, and the mechanism
// releases — bit-identical to a single process ingesting the whole fleet,
// which this binary verifies by running the in-process reference first
// and diffing every release.
//
// Topology (N = --aggregators):
//
//   child 0 (fork/exec) ── partial sketches ──┐
//   child 1 (fork/exec) ── over loopback TCP ─┼─> SocketListener
//   ...                                       │      └> FrameDemux
//   round descriptors over stdin pipes <──────┘           └> RoundBuffer
//                                                               └> RootSession
//
// Each child simulates its UserAssignment range slice of the client
// fleet: the union of the slices is exactly the population, and sketch
// state is additive integer counts, so *where* the folding happens (one
// process or N+1) never changes *what* is folded. Flags: --aggregators,
// --users, --timestamps, --fo. Exits non-zero if any release differs —
// CI runs this as the multi-process merge smoke.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/mechanism.h"
#include "fo/wire.h"
#include "service/aggregator.h"
#include "service/client_fleet.h"
#include "service/session.h"
#include "transport/frame.h"
#include "transport/round_buffer.h"
#include "transport/socket.h"
#include "util/flags.h"
#include "util/histogram.h"

namespace {

using namespace ldpids;
using service::AggregatorNode;
using service::AggregatorOptions;
using service::AssignMode;
using service::ClientFleet;
using service::MechanismSession;
using service::RootSession;
using service::RoundRequest;
using service::SessionOptions;
using service::UserAssignment;
using transport::FrameDemux;
using transport::RoundBuffer;
using transport::SocketClient;
using transport::SocketListener;

constexpr std::size_t kDomain = 12;
constexpr uint64_t kSessionId = 0xD157;
constexpr uint64_t kFleetSeed = 7;

uint32_t TruthValue(uint64_t user, std::size_t t) {
  return static_cast<uint32_t>((user + 5 * t) % kDomain);
}

MechanismConfig DemoConfig(const std::string& fo) {
  MechanismConfig config;
  config.epsilon = 1.0;
  config.window = 4;
  config.fo = fo;
  config.seed = 29;
  return config;
}

// One round announcement, root -> child, as a fixed 32-byte stdin record.
// EOF on the pipe is the shutdown signal.
struct RoundDescriptor {
  uint64_t round_index;
  uint64_t timestamp;
  uint64_t epsilon_bits;
  uint64_t domain;
};
static_assert(sizeof(RoundDescriptor) == 32, "descriptor is the pipe ABI");

bool ReadExact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<uint8_t*>(buf);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = read(fd, p + got, len - got);
    if (n == 0) return false;  // EOF: clean shutdown
    if (n < 0) {
      if (errno == EINTR) continue;
      std::perror("merge_tree child: read");
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void WriteExact(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = write(fd, p + sent, len - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::perror("merge_tree root: write");
      std::exit(1);
    }
    sent += static_cast<std::size_t>(n);
  }
}

// --- child process --------------------------------------------------------
// One aggregator: connect upstream, loop round descriptors from stdin,
// ingest this node's slice of the fleet, ship the partial.
int RunChild(const Flags& flags) {
  const auto node = static_cast<std::size_t>(flags.GetInt("child-node", 0));
  const auto nodes = static_cast<std::size_t>(flags.GetInt("child-nodes", 1));
  const auto port =
      static_cast<uint16_t>(flags.GetInt("child-port", 0));
  const auto users =
      static_cast<uint64_t>(flags.GetInt("users", 0));
  const std::string fo_name = flags.GetString("fo", "OUE");

  const ClientFleet fleet(users, TruthValue, kFleetSeed);
  const UserAssignment assign(nodes, users, AssignMode::kRange);
  const std::vector<uint32_t> slice = assign.PartitionAll()[node];

  AggregatorOptions options;
  options.node_id = 1 + node;  // distinct per child within the tree
  AggregatorNode aggregator(GetFrequencyOracle(fo_name),
                            OracleIdFromName(fo_name), kDomain, options);
  SocketClient upstream(port);

  RoundDescriptor desc;
  while (ReadExact(STDIN_FILENO, &desc, sizeof(desc))) {
    RoundRequest request;
    request.round_index = desc.round_index;
    request.timestamp = static_cast<std::size_t>(desc.timestamp);
    request.epsilon = EpsilonFromBits(desc.epsilon_bits);
    request.domain = static_cast<std::size_t>(desc.domain);
    request.oracle = aggregator.oracle();
    request.cohort = &slice;
    aggregator.RunRoundUpstream(
        request,
        [&fleet](const RoundRequest& req, service::ReportRouter& router) {
          router.IngestBatch(fleet.ProduceRound(req, 1), 1);
        },
        upstream, kSessionId);
  }
  upstream.Close();
  std::fprintf(stderr,
               "[child %zu] done: %llu rounds, %llu reports accepted\n",
               node, static_cast<unsigned long long>(aggregator.rounds()),
               static_cast<unsigned long long>(aggregator.stats().accepted));
  return 0;
}

// --- root process ---------------------------------------------------------

struct Child {
  pid_t pid = -1;
  int round_fd = -1;  // write end of the child's stdin pipe
};

Child SpawnChild(std::size_t node, std::size_t nodes, uint16_t port,
                 uint64_t users, const std::string& fo_name) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("merge_tree: pipe");
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("merge_tree: fork");
    std::exit(1);
  }
  if (pid == 0) {
    // Child: stdin <- pipe read end, then re-exec ourselves in child mode.
    dup2(fds[0], STDIN_FILENO);
    close(fds[0]);
    close(fds[1]);
    const std::string node_arg = "--child-node=" + std::to_string(node);
    const std::string nodes_arg = "--child-nodes=" + std::to_string(nodes);
    const std::string port_arg = "--child-port=" + std::to_string(port);
    const std::string users_arg = "--users=" + std::to_string(users);
    const std::string fo_arg = "--fo=" + fo_name;
    char* argv[] = {const_cast<char*>("merge_tree"),
                    const_cast<char*>("--role=aggregator"),
                    const_cast<char*>(node_arg.c_str()),
                    const_cast<char*>(nodes_arg.c_str()),
                    const_cast<char*>(port_arg.c_str()),
                    const_cast<char*>(users_arg.c_str()),
                    const_cast<char*>(fo_arg.c_str()),
                    nullptr};
    execv("/proc/self/exe", argv);
    std::perror("merge_tree: execv");
    _exit(127);
  }
  close(fds[0]);
  return Child{pid, fds[1]};
}

int RunRoot(const Flags& flags) {
  const auto aggregators =
      static_cast<std::size_t>(flags.GetInt("aggregators", 2));
  const auto users = static_cast<uint64_t>(flags.GetInt("users", 600));
  const auto steps =
      static_cast<std::size_t>(flags.GetInt("timestamps", 8));
  const std::string fo_name = flags.GetString("fo", "OUE");
  if (aggregators == 0 || users == 0 || steps == 0) {
    std::fprintf(stderr, "need --aggregators, --users, --timestamps > 0\n");
    return 2;
  }

  std::printf("merge tree: %zu aggregator processes, %llu users, "
              "%zu timestamps, FO=%s\n",
              aggregators, static_cast<unsigned long long>(users), steps,
              fo_name.c_str());

  // In-process reference first: the whole fleet through one session.
  std::vector<Histogram> expected;
  {
    const ClientFleet fleet(users, TruthValue, kFleetSeed);
    MechanismSession session(CreateMechanism("LBA", DemoConfig(fo_name),
                                             users),
                             kDomain, SessionOptions{}, fleet.Transport(1));
    for (std::size_t t = 0; t < steps; ++t) {
      expected.push_back(session.Advance().release);
    }
  }

  // The root's receive plane, up before any child connects.
  RoundBuffer buffer;
  FrameDemux demux;
  demux.Register(kSessionId, &buffer);
  SocketListener listener(0, demux.Handler());
  std::printf("root listening on 127.0.0.1:%u\n", listener.port());

  std::vector<Child> children;
  for (std::size_t k = 0; k < aggregators; ++k) {
    children.push_back(
        SpawnChild(k, aggregators, listener.port(), users, fo_name));
  }

  // Announce = push the round descriptor down every child's pipe. The
  // RootSession then injects its own end-of-round marker (expected = N)
  // and blocks in the RoundBuffer until every partial arrived.
  auto announce = [&children](const RoundRequest& request) {
    RoundDescriptor desc;
    desc.round_index = request.round_index;
    desc.timestamp = static_cast<uint64_t>(request.timestamp);
    desc.epsilon_bits = EpsilonBits(request.epsilon);
    desc.domain = static_cast<uint64_t>(request.domain);
    for (const Child& child : children) {
      WriteExact(child.round_fd, &desc, sizeof(desc));
    }
  };

  std::vector<Histogram> releases;
  {
    RootSession root(CreateMechanism("LBA", DemoConfig(fo_name), users),
                     kDomain, SessionOptions{}, aggregators, kSessionId,
                     buffer, announce);
    for (std::size_t t = 0; t < steps; ++t) {
      releases.push_back(root.Advance().release);
    }
    const SketchMergeStats& merges = root.merge_stats();
    std::printf("root merge: %s\n", merges.ToString().c_str());
    std::printf("round buffer: %s\n", buffer.stats().ToString().c_str());
  }

  // EOF the pipes so the children exit, then reap them.
  for (const Child& child : children) close(child.round_fd);
  int failures = 0;
  for (const Child& child : children) {
    int status = 0;
    if (waitpid(child.pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "child %d exited abnormally\n",
                   static_cast<int>(child.pid));
      ++failures;
    }
  }
  listener.Stop();
  // After Stop(): per-connection decoder stats have folded into the
  // aggregate (printing earlier would show 0 while children are live).
  std::printf("listener: %s\n", listener.stats().ToString().c_str());

  const bool identical = releases == expected;
  std::printf("releases identical to single process: %s (%zu steps)\n",
              identical ? "yes" : "NO", releases.size());
  if (!identical) {
    for (std::size_t t = 0; t < releases.size(); ++t) {
      if (releases[t] != expected[t]) {
        std::printf("  first divergence at t=%zu\n", t);
        break;
      }
    }
  }
  return identical && failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.GetString("role", "root") == "aggregator") {
    return RunChild(flags);
  }
  return RunRoot(flags);
}
