// Smart-metering collection with an explicit client/server message flow.
//
// Unlike the other examples (which drive a StreamMechanism over a dataset),
// this one plays out the deployment protocol by hand for the LPU scheme:
// each household owns a GrrClient; at every 15-minute slot the utility
// requests reports from one rotation group; only those clients perturb
// their reading and send one value over the (simulated) wire; the utility
// aggregates with GrrAggregator. The w-event guarantee is visible in the
// code: a household transmits at most once per w slots, always with the
// full budget.
//
// Demonstrates: the wire protocol (fo/client.h), manual population
// rotation, and what the server actually learns vs the ground truth.
#include <cstdio>
#include <vector>

#include "datagen/synthetic.h"
#include "fo/client.h"

int main() {
  using namespace ldpids;

  constexpr uint64_t kHouseholds = 60000;
  constexpr std::size_t kSlots = 96;      // one day at 15-minute slots
  constexpr std::size_t kWindow = 12;     // 3 hours of w-event protection
  constexpr double kEpsilon = 1.0;
  constexpr std::size_t kDomain = 2;      // "drawing above-average power?"

  // Ground truth: a daily load curve (sine) over the binary signal.
  const auto grid = MakeSinDataset(kHouseholds, kSlots, /*b=*/0.065);

  // Every household runs its own client instance (its own randomness).
  std::vector<GrrClient> clients;
  clients.reserve(kHouseholds);
  for (uint64_t u = 0; u < kHouseholds; ++u) {
    clients.emplace_back(/*seed=*/0xFEED0000ULL + u);
  }

  std::printf("slot  group       reports  est_high  true_high\n");
  double total_abs_err = 0.0;
  uint64_t total_messages = 0;
  for (std::size_t t = 0; t < kSlots; ++t) {
    // Population rotation: group g = t mod w reports at this slot. Each
    // household is in exactly one group, so any window of kWindow slots
    // hears from it at most once -> w-event epsilon-LDP by parallel
    // composition.
    const std::size_t group = t % kWindow;
    GrrAggregator aggregator(kEpsilon, kDomain);
    for (uint64_t u = group; u < kHouseholds; u += kWindow) {
      // Client side: read the meter, perturb locally, transmit one value.
      const uint32_t reading = grid->value(u, t);
      const uint32_t wire = clients[u].Perturb(reading, kEpsilon, kDomain);
      // Server side: consume the wire value.
      aggregator.Consume(wire);
    }
    total_messages += aggregator.num_reports();

    const double est = aggregator.Estimate()[1];
    const double truth = grid->TrueFrequencies(t)[1];
    total_abs_err += est > truth ? est - truth : truth - est;
    if (t % 8 == 0) {
      std::printf("%4zu  %4zu/%zu     %6llu   %.4f    %.4f\n", t, group,
                  kWindow, static_cast<unsigned long long>(
                               aggregator.num_reports()),
                  est, truth);
    }
  }

  std::printf("\nmean |error| over the day = %.5f\n",
              total_abs_err / kSlots);
  std::printf("messages per household per slot = %.4f (= 1/w = %.4f)\n",
              static_cast<double>(total_messages) /
                  (static_cast<double>(kHouseholds) * kSlots),
              1.0 / kWindow);
  return 0;
}
