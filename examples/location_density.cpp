// Location-density monitoring — the paper's motivating IoT scenario.
//
// A city is divided into d = 5 regions; a taxi fleet continuously reports
// which region each vehicle is in. The server maintains a live density map
// under w-event LDP with the LPA mechanism and raises an alert whenever the
// (privately estimated) peak density crosses a congestion threshold.
//
// Demonstrates: categorical domains, real-world-like workloads, event
// monitoring on releases, and detection-quality reporting (hits/misses
// against the unobservable ground truth).
#include <cstdio>

#include "analysis/event_monitor.h"
#include "analysis/roc.h"
#include "analysis/runner.h"
#include "core/factory.h"
#include "datagen/realworld_sim.h"

int main() {
  using namespace ldpids;

  // Simulated fleet with the T-Drive shape (N=10,357 taxis, 10-minute
  // slots, 5 regions), at 30% length for a quick demo.
  RealWorldSimOptions options;
  options.scale = 0.3;
  options.spike_probability = 0.03;  // occasional traffic events
  const auto city = MakeTaxiLikeDataset(options);

  MechanismConfig config;
  config.epsilon = 1.0;
  config.window = 30;  // 5 hours of protection at 10-minute slots
  config.fo = "GRR";
  auto mechanism = CreateMechanism("LPA", config, city->num_users());

  // Stream and monitor.
  std::vector<Histogram> releases;
  for (std::size_t t = 0; t < city->length(); ++t) {
    releases.push_back(mechanism->Step(*city, t).release);
  }

  const auto truth = city->TrueStream();
  const auto true_stat = MonitoredStatistic(truth);      // peak density
  const auto released_stat = MonitoredStatistic(releases);
  const double delta = EventThreshold(true_stat);        // 0.75 quantile rule

  std::printf("congestion threshold delta = %.4f (peak region share)\n\n",
              delta);
  int hits = 0, misses = 0, false_alarms = 0;
  for (std::size_t t = 0; t < truth.size(); ++t) {
    const bool real_event = true_stat[t] > delta;
    const bool alarm = released_stat[t] > delta;
    if (real_event && alarm) ++hits;
    if (real_event && !alarm) ++misses;
    if (!real_event && alarm) ++false_alarms;
    if (real_event || alarm) {
      std::printf("t=%4zu  true peak %.4f  est peak %.4f  %s\n", t,
                  true_stat[t], released_stat[t],
                  real_event ? (alarm ? "DETECTED" : "missed")
                             : "false alarm");
    }
  }
  std::printf("\nhits=%d  misses=%d  false alarms=%d\n", hits, misses,
              false_alarms);

  std::vector<double> scores;
  std::vector<bool> labels;
  if (PrepareEventDetection(truth, releases, &scores, &labels)) {
    std::printf("event-detection AUC = %.4f\n", RocAuc(scores, labels));
  }
  return 0;
}
