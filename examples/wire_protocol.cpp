// End-to-end wire protocol demo: clients encode perturbed reports into
// checksummed packets, the "network" mangles some of them, and the server
// decodes defensively and aggregates only the intact reports.
//
// Demonstrates: fo/wire.h non-throwing decoding with typed WireError
// reasons (the serving hot path never uses exceptions for routine
// corruption), per-reason rejection accounting, and that the estimate
// stays unbiased when packets are dropped uniformly at random (dropping is
// value-independent, so it only shrinks the cohort).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <vector>

#include "fo/client.h"
#include "fo/wire.h"
#include "util/rng.h"

int main() {
  using namespace ldpids;

  constexpr std::size_t kDomain = 8;
  constexpr double kEpsilon = 1.0;
  constexpr int kUsers = 40000;
  constexpr double kCorruptionRate = 0.02;

  Rng network_rng(123);
  GrrAggregator aggregator(kEpsilon, kDomain);
  int received = 0, rejected = 0;
  std::map<WireError, int> reject_reasons;

  for (int u = 0; u < kUsers; ++u) {
    // --- client side ---
    GrrClient client(1000 + static_cast<uint64_t>(u));
    const uint32_t true_value = (u % 10 < 7) ? 2u : 5u;  // 70% hold 2
    const uint32_t perturbed = client.Perturb(true_value, kEpsilon, kDomain);
    std::vector<uint8_t> packet =
        EncodeGrrReport(perturbed, kDomain, /*timestamp=*/0);

    // --- hostile network ---
    if (network_rng.Bernoulli(kCorruptionRate)) {
      packet[network_rng.UniformInt(packet.size())] ^= 0xFF;
    }

    // --- server side: never trust a packet ---
    // The typed decoders return a precise reason instead of throwing, so
    // the ingest edge can account for every rejection without exception
    // overhead — and without a catch-all that would hide decoder bugs.
    DecodedReport report;
    const WireError err = TryDecodeReport(packet, kDomain, &report);
    if (err == WireError::kOk) {
      aggregator.Consume(report.grr.value);
      ++received;
    } else {
      ++rejected;
      ++reject_reasons[err];
    }
  }

  std::printf("packets: %d accepted, %d rejected (%.2f%% loss)\n", received,
              rejected, 100.0 * rejected / kUsers);
  for (const auto& [reason, count] : reject_reasons) {
    std::printf("  rejected as '%s': %d\n", WireErrorName(reason), count);
  }
  std::printf("bytes per GRR report at d=%zu: %zu\n", kDomain,
              EncodedReportSize(OracleId::kGrr, kDomain));

  const Histogram est = aggregator.Estimate();
  std::printf("\n value  true   estimated\n");
  for (std::size_t k = 0; k < kDomain; ++k) {
    const double truth = (k == 2) ? 0.7 : (k == 5) ? 0.3 : 0.0;
    std::printf("   %zu    %.3f   %+.4f\n", k, truth, est[k]);
  }
  return 0;
}
