// End-to-end online serving demo: simulated client devices perturb their
// values, encode checksummed wire packets, a hostile network corrupts some
// in transit, and the serving layer (src/service/) ingests the survivors
// across shards, merges, and drives a w-event LDP mechanism one timestamp
// at a time — the server never sees a single true value.
//
// Demonstrates: ClientFleet -> wire packets -> ReportRouter (sharded,
// defensive decode) -> FoSketch merge -> MechanismSession releases, plus
// the per-reason rejection accounting a production ingest edge needs.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/factory.h"
#include "core/mechanism.h"
#include "service/client_fleet.h"
#include "service/session.h"
#include "util/histogram.h"
#include "util/rng.h"

int main() {
  using namespace ldpids;
  using service::ClientFleet;
  using service::MechanismSession;
  using service::SessionOptions;

  constexpr uint64_t kUsers = 30000;
  constexpr std::size_t kDomain = 8;
  constexpr std::size_t kTimestamps = 16;
  constexpr std::size_t kShards = 4;
  constexpr double kCorruptionRate = 0.01;

  // Ground truth held on-device: a burst moves the population's mode from
  // value 2 to value 5 halfway through the stream.
  auto truth = [](uint64_t user, std::size_t t) -> uint32_t {
    const uint64_t h = HashCounter(99, user, t);
    const uint32_t mode = t < kTimestamps / 2 ? 2u : 5u;
    return (h % 10) < 7 ? mode : static_cast<uint32_t>(h % kDomain);
  };
  const ClientFleet fleet(kUsers, truth, /*seed=*/2026);

  // Hostile network: ~1% of packets get a byte flipped in transit. The
  // ingest edge must reject them by checksum, never crash, never skew the
  // estimate (corruption is value-independent).
  Rng network_rng(7);
  auto mangle = [&network_rng](std::vector<uint8_t>& packet, uint64_t,
                               uint64_t) {
    if (network_rng.Bernoulli(kCorruptionRate)) {
      packet[network_rng.UniformInt(packet.size())] ^= 0xFF;
    }
    return true;  // corrupted packets still arrive; the server drops them
  };

  MechanismConfig config;
  config.epsilon = 1.0;
  config.window = 4;
  config.fo = "OUE";
  config.seed = 11;
  SessionOptions options;
  options.num_shards = kShards;
  options.num_threads = 1;

  MechanismSession session(
      CreateMechanism("LBA", config, kUsers), kDomain, options,
      fleet.Transport(/*num_threads=*/1, mangle));

  std::printf("online LDP-IDS serving: %llu clients, d=%zu, %zu shards, "
              "LBA + OUE, w=%zu\n\n",
              static_cast<unsigned long long>(kUsers), kDomain, kShards,
              config.window);
  std::printf("  t  published  est[2]   est[5]\n");
  for (std::size_t t = 0; t < kTimestamps; ++t) {
    const StepResult step = session.Advance();
    std::printf(" %2zu      %s     %+.3f   %+.3f\n", t,
                step.published ? "yes" : " no", step.release[2],
                step.release[5]);
  }

  std::printf("\nrounds: %llu   ingest: %s\n",
              static_cast<unsigned long long>(session.rounds()),
              session.stats().ToString().c_str());
  std::printf("(the mode handoff 2 -> 5 at t=%zu shows up in the releases "
              "while every report stayed eps-LDP on the wire)\n",
              kTimestamps / 2);
  return 0;
}
