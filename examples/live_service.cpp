// End-to-end online serving demo: simulated client devices perturb their
// values, encode checksummed wire packets, a hostile network corrupts some
// in transit, and the serving layer (src/service/) ingests the survivors
// across shards, merges, and drives a w-event LDP mechanism one timestamp
// at a time — the server never sees a single true value.
//
// `--transport` selects how the packets reach the server:
//   inproc  (default) PR 3's in-process RoundTransport callback;
//   socket  each round's packets travel as length-prefixed frames over a
//           loopback TCP connection into a RoundBuffer (src/transport/),
//           with shuffled delivery and ~2% of the round duplicated;
//   file    the same framed traffic is recorded to an append-only log,
//           then replayed into a second, fresh server — which must (and
//           does) publish the identical release stream.
// All three paths produce bit-identical releases: the ingest edge
// deduplicates by user nonce, shard assignment is nonce-keyed, and sketch
// state is additive, so delivery order and duplication never show.
//
// Other flags: --users, --timestamps, --shards (0 = one per hardware
// thread), --log (frame log path for --transport=file), --pipeline
// (SessionOptions::pipeline_depth; >= 2 overlaps the next round's
// ingestion with the current round's estimation — releases are identical
// at every depth; with --transport=socket the announce half runs on the
// session thread via the split transport so the next round's frames are
// in flight during the current estimate), --connections (socket mode
// only: stripe each round's frames across K loopback TCP connections;
// the RoundBuffer reassembles by distinct-packet count, so the releases
// are bit-identical at every K).
//
// Observability flags (src/obs/): --metrics-dump {json|text|both} prints
// an end-of-run snapshot of every registered metric (frame, round-buffer,
// arena, ingest counters plus per-stage latency histograms) — to stdout,
// or to --metrics-out PATH for machine consumption (CI validates the JSON
// with python3 -m json.tool). --metrics-every N prints a one-line stderr
// summary every N timestamps while the stream runs. Metrics never change
// the releases: instrumentation is write-only, pinned by the file-mode
// replay identity check running fully instrumented.
//
// Live scrape plane: --http-port N binds the embedded observability
// endpoint (obs/scrape_endpoint.h) on 127.0.0.1:N (0 = ephemeral; the
// bound port is printed as `[obs] http endpoint on 127.0.0.1:PORT`),
// serving /metrics, /metrics.json, /healthz, /statusz and /trace while
// the stream runs. --linger-ms M keeps the process (and the endpoint)
// alive M milliseconds after the run so external scrapers can collect the
// final state — CI's scrape smoke job curls every endpoint in that
// window. --trace-out PATH writes the flight recorder's ring as Chrome
// trace-event JSON at exit (open in chrome://tracing or ui.perfetto.dev).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <chrono>
#include <thread>

#include "core/factory.h"
#include "core/mechanism.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/scrape_endpoint.h"
#include "obs/stage_trace.h"
#include "obs/stats_feed.h"
#include "service/client_fleet.h"
#include "service/session.h"
#include "transport/batch_file.h"
#include "transport/frame.h"
#include "transport/round_buffer.h"
#include "transport/socket.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace {

using namespace ldpids;
using service::ClientFleet;
using service::IngestStats;
using service::MechanismSession;
using service::RoundRequest;
using service::SessionOptions;
using transport::Frame;
using transport::FrameDemux;
using transport::FrameLogWriter;
using transport::MakeBufferedTransport;
using transport::RoundBuffer;
using transport::RoundBufferOptions;
using transport::SendRoundFrames;
using transport::SocketClient;
using transport::SocketListener;

constexpr std::size_t kDomain = 8;
constexpr uint64_t kSessionId = 1;
constexpr double kCorruptionRate = 0.01;
constexpr double kDuplicationRate = 0.02;

struct DemoRun {
  std::vector<StepResult> steps;
  service::IngestStats ingest;
  uint64_t rounds = 0;
};

MechanismConfig DemoConfig() {
  MechanismConfig config;
  config.epsilon = 1.0;
  config.window = 4;
  config.fo = "OUE";
  config.seed = 11;
  return config;
}

// One-line live summary of the registry: rounds, accepted reports, and
// the p50 of the two most deployment-relevant stages. Sums across label
// sets so it works for any session/connection labeling.
void PrintObsSummary(const obs::MetricsRegistry& registry, std::size_t t) {
  const obs::MetricsSnapshot snap = registry.Snapshot();
  uint64_t rounds = 0;
  uint64_t accepted = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "ldpids_session_rounds_total") rounds += c.value;
    if (c.name == "ldpids_ingest_reports_total") {
      for (const auto& [key, value] : c.labels) {
        if (key == "result" && value == "accepted") accepted += c.value;
      }
    }
  }
  uint64_t rtt_p50 = 0;
  uint64_t estimate_p50 = 0;
  for (const auto& h : snap.histograms) {
    if (h.name != obs::kStageDurationMetric) continue;
    for (const auto& [key, value] : h.labels) {
      if (key != "stage") continue;
      if (value == "transport_rtt") rtt_p50 = h.Quantile(0.5);
      if (value == "estimate") estimate_p50 = h.Quantile(0.5);
    }
  }
  std::fprintf(stderr,
               "[obs] t=%zu rounds=%llu accepted=%llu "
               "transport_rtt_p50=%.1fus estimate_p50=%.1fus\n",
               t, static_cast<unsigned long long>(rounds),
               static_cast<unsigned long long>(accepted),
               static_cast<double>(rtt_p50) / 1e3,
               static_cast<double>(estimate_p50) / 1e3);
}

// Optional observability for a demo run: a registry to summarize every
// `every` timestamps (0 = never).
struct ObsOptions {
  const obs::MetricsRegistry* registry = nullptr;
  std::size_t every = 0;
};

// Drives one full session and collects its releases. `Transport` is
// either a service::RoundTransport or a service::SplitRoundTransport.
template <typename Transport>
DemoRun RunSession(uint64_t users, std::size_t timestamps,
                   SessionOptions options, Transport t,
                   const ObsOptions& obs_opts = {}) {
  MechanismSession session(CreateMechanism("LBA", DemoConfig(), users),
                           kDomain, options, std::move(t));
  DemoRun result;
  for (std::size_t step = 0; step < timestamps; ++step) {
    result.steps.push_back(session.Advance());
    if (obs_opts.registry != nullptr && obs_opts.every != 0 &&
        (step + 1) % obs_opts.every == 0) {
      PrintObsSummary(*obs_opts.registry, step + 1);
    }
  }
  result.ingest = session.stats();
  result.rounds = session.rounds();
  return result;
}

// End-of-run metrics dump: `mode` is json, text or both; written to
// `out_path` when non-empty (pure JSON stays machine-parseable there),
// stdout otherwise.
int DumpMetrics(obs::MetricsRegistry& registry, const std::string& mode,
                const std::string& out_path) {
  obs::TouchProcessMetrics(&registry);  // fresh uptime on the final dump
  const obs::MetricsSnapshot snap = registry.Snapshot();
  std::string rendered;
  if (mode == "json") {
    rendered = obs::RenderJson(snap) + "\n";
  } else if (mode == "text") {
    rendered = obs::RenderPrometheus(snap);
  } else {  // both
    rendered = obs::RenderJson(snap) + "\n" + obs::RenderPrometheus(snap);
  }
  if (out_path.empty()) {
    std::printf("\n--- metrics (%s) ---\n%s", mode.c_str(), rendered.c_str());
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write --metrics-out %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(rendered.data(), 1, rendered.size(), f);
  std::fclose(f);
  std::printf("\nmetrics (%s) written to %s\n", mode.c_str(),
              out_path.c_str());
  return 0;
}

void PrintReleases(const DemoRun& result) {
  std::printf("  t  published  est[2]   est[5]\n");
  for (std::size_t t = 0; t < result.steps.size(); ++t) {
    std::printf(" %2zu      %s     %+.3f   %+.3f\n", t,
                result.steps[t].published ? "yes" : " no",
                result.steps[t].release[2], result.steps[t].release[5]);
  }
  std::printf("\nrounds: %llu   ingest: %s\n",
              static_cast<unsigned long long>(result.rounds),
              result.ingest.ToString().c_str());
}

bool SameReleases(const DemoRun& a, const DemoRun& b) {
  if (a.steps.size() != b.steps.size()) return false;
  for (std::size_t t = 0; t < a.steps.size(); ++t) {
    if (a.steps[t].release != b.steps[t].release) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string mode = flags.GetString("transport", "inproc");
  const uint64_t users =
      static_cast<uint64_t>(flags.GetInt("users", 30000));
  const std::size_t timestamps =
      static_cast<std::size_t>(flags.GetInt("timestamps", 16));
  const std::size_t shards =
      static_cast<std::size_t>(flags.GetInt("shards", 4));
  const std::string log_path =
      flags.GetString("log", "live_service_frames.log");
  const int64_t pipeline = flags.GetInt("pipeline", 1);
  const int64_t connections = flags.GetInt("connections", 1);
  const std::string metrics_dump = flags.GetString("metrics-dump", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::size_t metrics_every =
      static_cast<std::size_t>(flags.GetInt("metrics-every", 0));
  const int64_t http_port = flags.GetInt("http-port", -1);
  const int64_t linger_ms = flags.GetInt("linger-ms", 0);
  const std::string trace_out = flags.GetString("trace-out", "");
  if (http_port > 65535) {
    std::fprintf(stderr, "--http-port must be <= 65535, got %lld\n",
                 static_cast<long long>(http_port));
    return 2;
  }
  if (!metrics_dump.empty() && metrics_dump != "json" &&
      metrics_dump != "text" && metrics_dump != "both") {
    std::fprintf(stderr,
                 "unknown --metrics-dump '%s' (want json, text or both)\n",
                 metrics_dump.c_str());
    return 2;
  }
  if (mode != "inproc" && mode != "socket" && mode != "file") {
    std::fprintf(stderr,
                 "unknown --transport '%s' (want inproc, socket or file)\n",
                 mode.c_str());
    return 2;
  }
  if (pipeline < 1) {
    std::fprintf(stderr, "--pipeline must be >= 1, got %lld\n",
                 static_cast<long long>(pipeline));
    return 2;
  }
  if (connections < 1) {
    std::fprintf(stderr, "--connections must be >= 1, got %lld\n",
                 static_cast<long long>(connections));
    return 2;
  }

  // Ground truth held on-device: a burst moves the population's mode from
  // value 2 to value 5 halfway through the stream.
  const std::size_t half = timestamps / 2;
  auto truth = [half](uint64_t user, std::size_t t) -> uint32_t {
    const uint64_t h = HashCounter(99, user, t);
    const uint32_t mode_value = t < half ? 2u : 5u;
    return (h % 10) < 7 ? mode_value : static_cast<uint32_t>(h % kDomain);
  };
  const ClientFleet fleet(users, truth, /*seed=*/2026);

  // Hostile network, applied on the client side of every transport: ~1% of
  // packets get a byte flipped in transit. The ingest edge must reject
  // them by checksum, never crash, never skew the estimate (corruption is
  // value-independent).
  Rng network_rng(7);
  auto mangle = [&network_rng](std::vector<uint8_t>& packet) {
    if (network_rng.Bernoulli(kCorruptionRate)) {
      packet[network_rng.UniformInt(packet.size())] ^= 0xFF;
    }
  };

  SessionOptions options;
  options.num_shards = shards;
  options.num_threads = 1;
  options.pipeline_depth = static_cast<std::size_t>(pipeline);

  // The demo always runs instrumented — releases are bit-identical either
  // way (the file-mode replay identity check runs fully instrumented), and
  // the --metrics-* flags only control what gets printed.
  obs::MetricsRegistry registry;
  options.metrics = &registry;
  options.metrics_label = "live";
  const ObsOptions obs_opts{&registry, metrics_every};

  // The flight recorder rides along unconditionally, like the registry:
  // recording is write-only and lock-free, and the releases stay
  // bit-identical with it attached.
  obs::FlightRecorder recorder;
  options.recorder = &recorder;
  obs::TouchProcessMetrics(&registry);
  std::unique_ptr<obs::ScrapeEndpoint> endpoint;
  if (http_port >= 0) {
    obs::ScrapeEndpointOptions endpoint_options;
    endpoint_options.port = static_cast<uint16_t>(http_port);
    endpoint = std::make_unique<obs::ScrapeEndpoint>(&registry, &recorder,
                                                     endpoint_options);
    std::printf("[obs] http endpoint on 127.0.0.1:%u\n", endpoint->port());
    std::fflush(stdout);
  }

  // Common exit path: trace export, metrics dump, then the linger window
  // (the scrape endpoint stays up through it for external collectors).
  auto finish = [&](int rc) -> int {
    if (!trace_out.empty()) {
      const obs::FlightRecorderSnapshot trace_snap = recorder.Snapshot();
      const std::string trace = obs::RenderChromeTrace(trace_snap);
      std::FILE* f = std::fopen(trace_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write --trace-out %s\n",
                     trace_out.c_str());
        if (rc == 0) rc = 1;
      } else {
        std::fwrite(trace.data(), 1, trace.size(), f);
        std::fclose(f);
        std::printf("chrome trace (%zu events) written to %s\n",
                    trace_snap.events.size(), trace_out.c_str());
      }
    }
    if (!metrics_dump.empty()) {
      const int dump_rc = DumpMetrics(registry, metrics_dump, metrics_out);
      if (rc == 0) rc = dump_rc;
    }
    if (linger_ms > 0 && endpoint != nullptr) {
      std::fprintf(stderr, "[obs] lingering %lld ms for scrapers\n",
                   static_cast<long long>(linger_ms));
      std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
    }
    return rc;
  };

  std::printf(
      "online LDP-IDS serving: %llu clients, d=%zu, %zu shards%s, "
      "LBA + OUE, w=%zu, transport=%s, pipeline_depth=%lld\n\n",
      static_cast<unsigned long long>(users), kDomain, shards,
      shards == 0 ? " (adaptive)" : "", DemoConfig().window, mode.c_str(),
      static_cast<long long>(pipeline));

  if (mode == "inproc") {
    const DemoRun result = RunSession(
        users, timestamps, options,
        fleet.Transport(1, [&mangle](std::vector<uint8_t>& packet, uint64_t,
                                     uint64_t) {
          mangle(packet);
          return true;
        }),
        obs_opts);
    PrintReleases(result);
    std::printf("(the mode handoff 2 -> 5 at t=%zu shows up in the "
                "releases while every report stayed eps-LDP on the wire)\n",
                half);
    return finish(0);
  }

  // Framed transports: the round's packets leave the fleet as frames, get
  // shuffled and partially duplicated in flight, and reassemble in a
  // RoundBuffer on the server side.
  Rng delivery_rng(13);
  uint64_t frames_duplicated = 0;
  auto send_round = [&](const std::vector<transport::FrameSender*>& senders,
                        const RoundRequest& request) {
    auto packets = fleet.ProduceRound(request, 1);
    for (auto& packet : packets) mangle(packet);
    // Shuffle delivery order and duplicate ~2% of the round.
    for (std::size_t i = packets.size(); i > 1; --i) {
      std::swap(packets[i - 1], packets[delivery_rng.UniformInt(i)]);
    }
    const std::size_t n = packets.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (delivery_rng.Bernoulli(kDuplicationRate)) {
        packets.push_back(packets[i]);
        ++frames_duplicated;
      }
    }
    SendRoundFrames(senders, kSessionId, request.round_index, packets);
  };

  if (mode == "socket") {
    RoundBuffer buffer;
    buffer.AttachMetrics(&registry, "live");
    FrameDemux demux;
    demux.Register(kSessionId, &buffer);
    SocketListener listener(0, demux.Handler());
    listener.AttachMetrics(&registry, "live");
    std::vector<std::unique_ptr<SocketClient>> clients;
    std::vector<transport::FrameSender*> senders;
    for (int64_t c = 0; c < connections; ++c) {
      clients.push_back(std::make_unique<SocketClient>(listener.port()));
      senders.push_back(clients.back().get());
    }
    std::printf("loopback listener on 127.0.0.1:%u, %lld connection%s\n\n",
                listener.port(), static_cast<long long>(connections),
                connections == 1 ? "" : "s");

    // Pipelined sessions want the split transport: the announce half (the
    // fleet answering over the socket) then runs on the session thread
    // while the ingest worker folds the previous round.
    const DemoRun result = RunSession(
        users, timestamps, options,
        transport::MakeBufferedSplitTransport(
            buffer,
            [&](const RoundRequest& request) { send_round(senders, request); },
            options.num_threads),
        obs_opts);
    for (auto& client : clients) client->Close();
    listener.Stop();
    PrintReleases(result);
    std::printf("frames duplicated in flight: %llu (rejected by nonce "
                "dedup; corrupted copies by checksum)\n",
                static_cast<unsigned long long>(frames_duplicated));
    // Per-connection decode accounting: stats() is the operator+= sum of
    // the per-connection entries, and the demo checks that here.
    const std::vector<transport::FrameStats> per_conn =
        listener.connection_stats();
    transport::FrameStats summed;
    for (std::size_t c = 0; c < per_conn.size(); ++c) {
      std::printf("  conn %zu: %s\n", c, per_conn[c].ToString().c_str());
      summed += per_conn[c];
    }
    std::printf("listener (%zu connections summed): %s\n", per_conn.size(),
                summed.ToString().c_str());
    std::printf("round buffer: %s\n", buffer.stats().ToString().c_str());
    return finish(0);
  }

  // --transport=file: record the framed traffic while serving live, then
  // replay the log into a second, fresh server and check both publish the
  // identical release stream.
  class RecordAndDeliver : public transport::FrameSender {
   public:
    RecordAndDeliver(FrameLogWriter& recorder, RoundBuffer& buffer)
        : recorder_(recorder), buffer_(buffer) {}
    void Send(const Frame& frame) override {
      recorder_.Send(frame);
      Frame copy = frame;
      buffer_.Deliver(std::move(copy));
    }
    void Flush() override { recorder_.Flush(); }

   private:
    FrameLogWriter& recorder_;
    RoundBuffer& buffer_;
  };

  DemoRun live;
  {
    RoundBuffer buffer;
    buffer.AttachMetrics(&registry, "live");
    FrameLogWriter recorder(log_path);
    RecordAndDeliver tee(recorder, buffer);
    live = RunSession(
        users, timestamps, options,
        MakeBufferedTransport(
            buffer,
            [&](const RoundRequest& request) { send_round({&tee}, request); },
            options.num_threads),
        obs_opts);
    recorder.Close();
    std::printf("recorded %llu frames (%llu bytes) -> %s\n\n",
                static_cast<unsigned long long>(recorder.frames_written()),
                static_cast<unsigned long long>(recorder.bytes_written()),
                log_path.c_str());
  }
  PrintReleases(live);

  // Replay: the whole recording lands up front, so every round beyond the
  // first arrives early — widen the watermark so the buffer holds it all.
  RoundBufferOptions replay_options;
  replay_options.max_lateness = ~uint64_t{0} / 2;
  replay_options.max_buffered_rounds = ~uint64_t{0} / 2;
  RoundBuffer replay_buffer(replay_options);
  replay_buffer.AttachMetrics(&registry, "replay");
  const transport::FrameStats replay_stats = transport::ReplayFrameLog(
      log_path,
      [&](Frame&& frame) { replay_buffer.Deliver(std::move(frame)); });
  // The log replayer owns its decoder, so its stats reach the canonical
  // frame metrics through a feed the demo owns.
  obs::FrameStatsFeed replay_feed(&registry,
                                  obs::Labels{{"session", "replay"}});
  replay_feed.Add(replay_stats);
  SessionOptions replay_session_options = options;
  replay_session_options.metrics_label = "replay";
  const DemoRun replayed =
      RunSession(users, timestamps, replay_session_options,
                 MakeBufferedTransport(replay_buffer, nullptr,
                                       options.num_threads),
                 obs_opts);
  std::printf("\nreplay: %s\n", replay_stats.ToString().c_str());
  if (!SameReleases(live, replayed)) {
    std::printf("replayed releases DIVERGED from the live run\n");
    return finish(1);
  }
  std::printf("replayed releases are bit-identical to the live run "
              "(%zu timestamps, %llu rounds)\n",
              replayed.steps.size(),
              static_cast<unsigned long long>(replayed.rounds));
  IngestStats combined = live.ingest;
  combined += replayed.ingest;
  std::printf("combined ingest over both runs: %s (%llu packets)\n",
              combined.ToString().c_str(),
              static_cast<unsigned long long>(combined.total()));
  return finish(0);
}
