// Ad-click share monitoring over a large categorical domain.
//
// A Taobao-like workload: ~1M customers, d = 117 ad categories, clicks
// aggregated every 10 minutes. Large domains are where the choice of
// frequency oracle matters — this example runs LPA with both GRR and OUE
// and shows OUE's variance advantage at d = 117, plus the communication
// budget each user actually pays (CFPU).
//
// Demonstrates: FO selection, MechanismConfig knobs, communication
// accounting, and comparing released top-categories with the truth.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "analysis/metrics.h"
#include "analysis/runner.h"
#include "core/factory.h"
#include "datagen/realworld_sim.h"

namespace {

// Indices of the top-k entries of a histogram.
std::vector<std::size_t> TopK(const ldpids::Histogram& h, std::size_t k) {
  std::vector<std::size_t> idx(h.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](std::size_t a, std::size_t b) { return h[a] > h[b]; });
  idx.resize(k);
  return idx;
}

}  // namespace

int main() {
  using namespace ldpids;

  RealWorldSimOptions options;
  options.scale = 0.15;  // ~150k customers, ~65 timestamps for the demo
  const auto clicks = MakeTaobaoLikeDataset(options);
  std::printf("workload: N=%llu users, d=%zu categories, T=%zu slots\n\n",
              static_cast<unsigned long long>(clicks->num_users()),
              clicks->domain(), clicks->length());

  const auto truth = clicks->TrueStream();
  for (const std::string fo : {"GRR", "OUE"}) {
    MechanismConfig config;
    config.epsilon = 1.0;
    config.window = 20;
    config.fo = fo;
    const RunResult run = RunMechanism(*clicks, "LPA", config);
    std::printf("LPA + %s:  MAE=%.5f  MRE=%.4f  CFPU=%.4f  publications=%llu\n",
                fo.c_str(), MeanAbsoluteError(truth, run.releases),
                MeanRelativeError(truth, run.releases), run.Cfpu(),
                static_cast<unsigned long long>(run.num_publications));
  }

  // Top-category agreement at the last timestamp with OUE.
  MechanismConfig config;
  config.epsilon = 1.0;
  config.window = 20;
  config.fo = "OUE";
  const RunResult run = RunMechanism(*clicks, "LPA", config);
  const std::size_t last = truth.size() - 1;
  const auto true_top = TopK(truth[last], 5);
  const auto est_top = TopK(run.releases[last], 5);
  std::printf("\ntop-5 categories at t=%zu (true -> estimated):\n", last);
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("  #%zu  cat %3zu (%.4f)  ->  cat %3zu (%.4f)\n", i + 1,
                true_top[i], truth[last][true_top[i]], est_top[i],
                run.releases[last][est_top[i]]);
  }
  return 0;
}
