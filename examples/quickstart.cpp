// Quickstart: collect a private stream with LPA in ~40 lines.
//
// A fleet of 50,000 simulated devices reports a binary signal (say, "is my
// meter drawing power right now") every timestamp. The server runs the LPA
// mechanism — the paper's best adaptive population-division method — and
// gets a fresh or approximated histogram each timestamp while every device
// enjoys w-event epsilon-LDP.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "analysis/metrics.h"
#include "core/factory.h"
#include "datagen/synthetic.h"

int main() {
  using namespace ldpids;

  // 1. Ground truth: an LNS (Gaussian random walk) binary stream.
  const auto data = MakeLnsDataset(/*num_users=*/50000, /*length=*/200);

  // 2. Configure the mechanism: eps = 1 over any window of w = 20
  //    timestamps, GRR as the frequency oracle.
  MechanismConfig config;
  config.epsilon = 1.0;
  config.window = 20;
  config.fo = "GRR";

  auto mechanism = CreateMechanism("LPA", config, data->num_users());

  // 3. Stream: one Step per timestamp. (Run() does the same loop.)
  std::vector<Histogram> releases;
  uint64_t messages = 0;
  for (std::size_t t = 0; t < data->length(); ++t) {
    StepResult step = mechanism->Step(*data, t);
    messages += step.messages;
    if (t < 5 || step.published) {
      std::printf("t=%3zu  %s  release[1]=%.4f  true[1]=%.4f\n", t,
                  step.published ? "PUBLISH" : "approx ",
                  step.release[1], data->TrueFrequencies(t)[1]);
    }
    releases.push_back(std::move(step.release));
  }

  // 4. Utility and communication summary.
  const auto truth = data->TrueStream();
  std::printf("\nMRE  = %.4f\n", MeanRelativeError(truth, releases));
  std::printf("CFPU = %.4f (reports per user per timestamp)\n",
              static_cast<double>(messages) /
                  (static_cast<double>(data->num_users()) *
                   static_cast<double>(data->length())));
  return 0;
}
