#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>

namespace ldpids::obs {

void RateWindow::Observe(uint64_t t_ns, uint64_t cumulative) {
  if (!samples_.empty() && cumulative < samples_.back().value) {
    // Counter reset: drop the old epoch, start a fresh window.
    samples_.clear();
  }
  samples_.push_back({t_ns, cumulative});
  while (samples_.size() > 2 &&
         t_ns - samples_.front().t_ns > window_ns_) {
    samples_.pop_front();
  }
}

double RateWindow::RatePerSec() const {
  if (samples_.size() < 2) return 0.0;
  const Sample& a = samples_.front();
  const Sample& b = samples_.back();
  if (b.t_ns <= a.t_ns) return 0.0;
  const double dv = static_cast<double>(b.value - a.value);
  const double dt_s = static_cast<double>(b.t_ns - a.t_ns) * 1e-9;
  return dv / dt_s;
}

void DurationWindow::Observe(uint64_t duration_ns) {
  ring_.push_back(duration_ns);
  while (ring_.size() > capacity_) ring_.pop_front();
}

uint64_t DurationWindow::Quantile(double q) const {
  if (ring_.empty()) return 0;
  std::vector<uint64_t> sorted(ring_.begin(), ring_.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::min(1.0, std::max(0.0, q));
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank > 0) --rank;
  return sorted[rank];
}

void TimeseriesTracker::Observe(const MetricsSnapshot& snap, uint64_t t_ns) {
  for (const CounterSample& c : snap.counters) {
    const std::string key = c.name + '\x1f' + RenderLabels(c.labels);
    auto it = series_.find(key);
    if (it == series_.end()) {
      Series s;
      s.name = c.name;
      s.labels = c.labels;
      s.window = RateWindow(window_ns_);
      it = series_.emplace(key, std::move(s)).first;
    }
    it->second.window.Observe(t_ns, c.value);
  }
}

double TimeseriesTracker::RatePerSec(const std::string& name,
                                     const std::string& label,
                                     const std::string& value) const {
  for (const auto& [key, s] : series_) {
    if (s.name != name) continue;
    if (!label.empty()) {
      bool match = false;
      for (const auto& [k, v] : s.labels) {
        if (k == label && v == value) {
          match = true;
          break;
        }
      }
      if (!match) continue;
    }
    return s.window.RatePerSec();
  }
  return 0.0;
}

}  // namespace ldpids::obs
