#include "obs/scrape_endpoint.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "obs/build_info.h"
#include "obs/export.h"

namespace ldpids::obs {

namespace {

const char kIndexBody[] =
    "ldpids live observability plane\n"
    "\n"
    "  /metrics        Prometheus text exposition\n"
    "  /metrics.json   structured JSON snapshot\n"
    "  /healthz        liveness + readiness (503 on stall)\n"
    "  /statusz        human status table\n"
    "  /trace          Chrome trace-event JSON (chrome://tracing, "
    "ui.perfetto.dev)\n";

std::string LabelValue(const Labels& labels, const std::string& key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return "";
}

void AppendCell(std::string* out, const std::string& value,
                std::size_t width) {
  out->append(value);
  for (std::size_t i = value.size(); i < width + 2; ++i) out->push_back(' ');
}

std::string FormatRate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", rate);
  return buf;
}

}  // namespace

ScrapeEndpoint::ScrapeEndpoint(MetricsRegistry* registry,
                               FlightRecorder* recorder,
                               ScrapeEndpointOptions opts)
    : registry_(registry), recorder_(recorder) {
  TouchProcessMetrics(registry_);
  if (recorder_ != nullptr) {
    health_ = std::make_unique<HealthModel>(registry_, recorder_, opts.health);
    if (opts.watchdog_period_ms > 0) {
      watchdog_ =
          std::make_unique<Watchdog>(health_.get(), opts.watchdog_period_ms);
    }
  }
  server_ = std::make_unique<HttpServer>(
      opts.port, [this](const HttpRequest& req) { return Handle(req); });
}

ScrapeEndpoint::~ScrapeEndpoint() {
  // Stop traffic before the health model / watchdog die under a handler.
  server_.reset();
  watchdog_.reset();
}

HttpResponse ScrapeEndpoint::Handle(const HttpRequest& req) {
  HttpResponse resp;
  if (req.path == "/") {
    resp.content_type = "text/plain; charset=utf-8";
    resp.body = kIndexBody;
    return resp;
  }
  if (req.path == "/metrics") {
    TouchProcessMetrics(registry_);
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = RenderPrometheus(registry_->Snapshot());
    return resp;
  }
  if (req.path == "/metrics.json") {
    TouchProcessMetrics(registry_);
    resp.content_type = "application/json";
    resp.body = RenderJson(registry_->Snapshot());
    return resp;
  }
  if (req.path == "/healthz") {
    HealthReport report;
    if (health_ != nullptr) {
      // With a watchdog the last report is fresh (<= one period old);
      // without one, evaluate now.
      report = watchdog_ != nullptr ? health_->LastReport()
                                    : health_->Update();
    }
    resp.status = report.ready ? 200 : 503;
    resp.content_type = "application/json";
    resp.body = report.ToJson();
    return resp;
  }
  if (req.path == "/statusz") {
    return ServeStatusz();
  }
  if (req.path == "/trace") {
    resp.content_type = "application/json";
    if (recorder_ != nullptr) {
      resp.body = RenderChromeTrace(recorder_->Snapshot());
    } else {
      resp.body = "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}";
    }
    return resp;
  }
  resp.status = 404;
  resp.content_type = "text/plain; charset=utf-8";
  resp.body = "404 not found\n\n";
  resp.body += kIndexBody;
  return resp;
}

HttpResponse ScrapeEndpoint::ServeStatusz() {
  TouchProcessMetrics(registry_);
  MetricsSnapshot snap = registry_->Snapshot();
  const uint64_t now = NowNs();

  HealthReport report;
  if (health_ != nullptr) report = health_->LastReport();

  // One row per ldpids_session_info gauge; columns joined from the
  // session's counters and the rolling rate tracker.
  struct Row {
    std::string session, mechanism, fo, pipeline, shards;
    uint64_t rounds = 0;
    uint64_t reports = 0;
    double rounds_per_s = 0.0;
    double reports_per_s = 0.0;
    std::string health = "ok";
  };
  std::vector<Row> rows;
  for (const GaugeSample& g : snap.gauges) {
    if (g.name != "ldpids_session_info") continue;
    Row row;
    row.session = LabelValue(g.labels, "session");
    row.mechanism = LabelValue(g.labels, "mechanism");
    row.fo = LabelValue(g.labels, "fo");
    row.pipeline = LabelValue(g.labels, "pipeline");
    row.shards = LabelValue(g.labels, "shards");
    rows.push_back(std::move(row));
  }
  for (const CounterSample& c : snap.counters) {
    const std::string session = LabelValue(c.labels, "session");
    for (Row& row : rows) {
      if (row.session != session) continue;
      if (c.name == "ldpids_session_rounds_total") {
        row.rounds = c.value;
      } else if (c.name == "ldpids_ingest_reports_total" &&
                 LabelValue(c.labels, "result") == "accepted") {
        row.reports = c.value;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(rates_mu_);
    rates_.Observe(snap, now);
    for (Row& row : rows) {
      row.rounds_per_s = rates_.RatePerSec("ldpids_session_rounds_total",
                                           "session", row.session);
      row.reports_per_s = rates_.RatePerSec("ldpids_ingest_reports_total",
                                            "session", row.session);
    }
  }
  for (const StallFinding& s : report.stalls) {
    for (Row& row : rows) {
      if (row.session == s.session) {
        row.health = "STALLED(" + s.stage + ")";
      }
    }
  }

  std::string out = "ldpids status\n=============\n";
  out += "version: ";
  out += BuildVersion();
  out += "  simd: ";
  out += SimdBackendName();
  out += "  sanitizer: ";
  out += SanitizerName();
  out += "\nuptime_s: ";
  out += std::to_string((now - ProcessStartNs()) / 1000000000ull);
  out += "  scrape_seq: ";
  out += std::to_string(snap.seq);
  out += "\nhealth: ";
  out += report.ready ? "ready" : "NOT READY";
  out += " (";
  out += std::to_string(report.open_sessions);
  out += " open sessions, ";
  out += std::to_string(report.stalls.size());
  out += " stalls)\n\n";

  const char* headers[] = {"session",  "mechanism", "fo",
                           "pipeline", "shards",    "rounds",
                           "reports",  "rounds/s",  "reports/s",
                           "health"};
  std::vector<std::vector<std::string>> cells;
  for (const Row& row : rows) {
    cells.push_back({row.session, row.mechanism, row.fo, row.pipeline,
                     row.shards, std::to_string(row.rounds),
                     std::to_string(row.reports),
                     FormatRate(row.rounds_per_s),
                     FormatRate(row.reports_per_s), row.health});
  }
  std::size_t widths[10];
  for (std::size_t c = 0; c < 10; ++c) {
    widths[c] = std::string(headers[c]).size();
    for (const auto& row : cells) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (std::size_t c = 0; c < 10; ++c) AppendCell(&out, headers[c], widths[c]);
  out += '\n';
  for (const auto& row : cells) {
    for (std::size_t c = 0; c < 10; ++c) AppendCell(&out, row[c], widths[c]);
    out += '\n';
  }
  if (rows.empty()) out += "(no sessions registered)\n";

  HttpResponse resp;
  resp.content_type = "text/plain; charset=utf-8";
  resp.body = std::move(out);
  return resp;
}

}  // namespace ldpids::obs
