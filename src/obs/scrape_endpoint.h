// The live observability plane's front door: one ScrapeEndpoint owns an
// embedded HttpServer and answers every diagnostic surface of a running
// aggregator process:
//
//   GET /metrics        Prometheus text exposition (RenderPrometheus)
//   GET /metrics.json   structured JSON snapshot (RenderJson)
//   GET /healthz        liveness + readiness; 503 when a session stalls
//   GET /statusz        human-oriented status table (text/plain)
//   GET /trace          flight-recorder ring as Chrome trace-event JSON
//   GET /               endpoint catalog
//
// Every handler renders from snapshots (MetricsRegistry::Snapshot,
// FlightRecorder::Snapshot), so scrapes never block the data plane and
// arbitrarily many concurrent scrapers observe a serving process without
// perturbing its releases. The endpoint also owns the HealthModel and —
// unless disabled — the Watchdog thread that keeps /healthz fresh.
#ifndef LDPIDS_OBS_SCRAPE_ENDPOINT_H_
#define LDPIDS_OBS_SCRAPE_ENDPOINT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace ldpids::obs {

struct ScrapeEndpointOptions {
  uint16_t port = 0;  // 0 = ephemeral (read the bound port from port())
  HealthOptions health;
  // Watchdog period; 0 disables the background poller, leaving /healthz
  // to evaluate on demand (each request then runs HealthModel::Update).
  uint64_t watchdog_period_ms = 500;
};

class ScrapeEndpoint {
 public:
  // `registry` must be non-null and outlive the endpoint. `recorder` may
  // be null: /trace then serves an empty trace and /healthz only the
  // process-liveness half.
  ScrapeEndpoint(MetricsRegistry* registry, FlightRecorder* recorder,
                 ScrapeEndpointOptions opts = {});
  ~ScrapeEndpoint();

  ScrapeEndpoint(const ScrapeEndpoint&) = delete;
  ScrapeEndpoint& operator=(const ScrapeEndpoint&) = delete;

  uint16_t port() const { return server_->port(); }

  // The routing logic, exposed so tests can exercise every endpoint
  // without a socket.
  HttpResponse Handle(const HttpRequest& req);

  HealthModel* health() { return health_.get(); }

 private:
  HttpResponse ServeStatusz();

  MetricsRegistry* registry_;
  FlightRecorder* recorder_;
  std::unique_ptr<HealthModel> health_;
  std::unique_ptr<Watchdog> watchdog_;

  // /statusz derives rates from successive snapshots; the tracker is not
  // thread-safe and concurrent scrapes share it.
  std::mutex rates_mu_;
  TimeseriesTracker rates_;

  std::unique_ptr<HttpServer> server_;  // last: dies first, stops traffic
};

}  // namespace ldpids::obs

#endif  // LDPIDS_OBS_SCRAPE_ENDPOINT_H_
