#include "obs/health.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

namespace ldpids::obs {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  int n = std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(v));
  out->append(buf, static_cast<std::size_t>(n));
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string HealthReport::ToJson() const {
  std::string out = "{\"live\":";
  out += live ? "true" : "false";
  out += ",\"ready\":";
  out += ready ? "true" : "false";
  out += ",\"open_sessions\":";
  AppendU64(&out, open_sessions);
  out += ",\"stalls\":[";
  bool first = true;
  for (const StallFinding& s : stalls) {
    if (!first) out += ',';
    first = false;
    out += "{\"session\":\"";
    AppendEscaped(&out, s.session);
    out += "\",\"stage\":\"";
    AppendEscaped(&out, s.stage);
    out += "\",\"round\":";
    AppendU64(&out, s.round_index);
    out += ",\"age_ms\":";
    AppendU64(&out, s.age_ns / 1000000);
    out += ",\"threshold_ms\":";
    AppendU64(&out, s.threshold_ns / 1000000);
    out += "}";
  }
  out += "]}";
  return out;
}

HealthModel::HealthModel(MetricsRegistry* registry,
                         const FlightRecorder* recorder, HealthOptions opts)
    : registry_(registry), recorder_(recorder), opts_(std::move(opts)) {
  if (!opts_.now) opts_.now = NowNs;
}

uint64_t HealthModel::StallThreshold(const DurationWindow& window) const {
  const uint64_t p99 = window.Quantile(0.99);
  const double scaled = opts_.stall_multiplier * static_cast<double>(p99);
  const uint64_t by_history = static_cast<uint64_t>(scaled);
  return std::max(opts_.min_stall_ns, by_history);
}

HealthReport HealthModel::Update() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t now = opts_.now();

  FlightRecorderSnapshot snap = recorder_->Snapshot();

  // Fold events we have not seen yet into the rolling windows. Events
  // older than our cursor were already folded; the cursor starts at
  // whatever the ring dropped, so a late-attaching model only sees what
  // the ring still holds.
  const uint64_t newest = snap.total_recorded;
  const uint64_t available_from = snap.dropped;
  uint64_t fold_from = std::max(consumed_events_, available_from);
  // snap.events is oldest-first, covering tickets
  // [available_from, newest) minus torn/overwritten skips; tickets are
  // not stored per event, so approximate by position.
  if (fold_from < newest && !snap.events.empty()) {
    const uint64_t have = static_cast<uint64_t>(snap.events.size());
    // Take the newest (newest - fold_from) events, capped by what we got.
    uint64_t take = newest - fold_from;
    if (take > have) take = have;
    for (uint64_t i = have - take; i < have; ++i) {
      const RoundEvent& ev = snap.events[static_cast<std::size_t>(i)];
      auto& tm = tracks_[ev.track];
      const uint64_t dur =
          ev.t_end_ns > ev.t_start_ns ? ev.t_end_ns - ev.t_start_ns : 0;
      tm.stage_durations[static_cast<std::size_t>(ev.stage)].Observe(dur);
      if (ev.t_end_ns > tm.newest_end_ns) {
        if (tm.newest_end_ns != 0) {
          tm.round_gaps.Observe(ev.t_end_ns - tm.newest_end_ns);
        }
        tm.newest_end_ns = ev.t_end_ns;
        tm.newest_round = ev.round_index;
      }
      if (ev.stage == Stage::kPostProcess) ++tm.rounds_seen;
    }
  }
  consumed_events_ = newest;

  HealthReport report;
  report.live = true;
  report.checked_at_ns = now;

  // In-flight stalls: a begun stage that has outlived its track's rolling
  // p99-based threshold.
  for (const InFlightStage& f : snap.in_flight) {
    if (f.track < snap.closed.size() && snap.closed[f.track]) continue;
    const auto it = tracks_.find(f.track);
    uint64_t threshold = opts_.min_stall_ns;
    if (it != tracks_.end()) {
      threshold = StallThreshold(
          it->second.stage_durations[static_cast<std::size_t>(f.stage)]);
    }
    if (now <= f.t_start_ns) continue;
    const uint64_t age = now - f.t_start_ns;
    if (age > threshold) {
      StallFinding finding;
      finding.session = f.track < snap.tracks.size()
                            ? snap.tracks[f.track]
                            : "track" + std::to_string(f.track);
      finding.stage = StageName(f.stage);
      finding.round_index = f.round_index;
      finding.age_ns = age;
      finding.threshold_ns = threshold;
      report.stalls.push_back(std::move(finding));
    }
  }

  // Silence stalls: an open track with an established cadence whose
  // newest completed round is too old.
  std::size_t open = 0;
  for (std::size_t t = 0; t < snap.tracks.size(); ++t) {
    const bool closed = t < snap.closed.size() && snap.closed[t];
    if (closed) continue;
    ++open;
    const auto it = tracks_.find(static_cast<uint32_t>(t));
    if (it == tracks_.end()) continue;
    const TrackModel& tm = it->second;
    if (tm.rounds_seen < opts_.min_rounds_for_silence) continue;
    if (tm.newest_end_ns == 0 || now <= tm.newest_end_ns) continue;
    const uint64_t age = now - tm.newest_end_ns;
    const uint64_t threshold = StallThreshold(tm.round_gaps);
    if (age > threshold) {
      StallFinding finding;
      finding.session = snap.tracks[t];
      finding.stage = "round_gap";
      finding.round_index = tm.newest_round;
      finding.age_ns = age;
      finding.threshold_ns = threshold;
      report.stalls.push_back(std::move(finding));
    }
  }
  report.open_sessions = open;
  report.ready = report.stalls.empty();

  if (registry_ != nullptr) {
    // Count distinct stalled sessions, not findings.
    std::vector<std::string> stalled;
    for (const StallFinding& s : report.stalls) {
      if (std::find(stalled.begin(), stalled.end(), s.session) ==
          stalled.end()) {
        stalled.push_back(s.session);
      }
    }
    registry_->GetGauge("ldpids_health_stalled_sessions")
        .Set(static_cast<int64_t>(stalled.size()));
    registry_->GetGauge("ldpids_health_up").Set(report.ready ? 1 : 0);
    registry_->GetGauge("ldpids_health_open_sessions")
        .Set(static_cast<int64_t>(open));
  }

  last_ = report;
  has_report_ = true;
  return report;
}

HealthReport HealthModel::LastReport() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (has_report_) return last_;
  }
  return Update();
}

Watchdog::Watchdog(HealthModel* model, uint64_t period_ms)
    : model_(model), period_ms_(period_ms) {
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      lock.unlock();
      model_->Update();
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                   [this] { return stop_; });
    }
  });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

}  // namespace ldpids::obs
