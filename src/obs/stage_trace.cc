#include "obs/stage_trace.h"

namespace ldpids::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kAnnounce:
      return "announce";
    case Stage::kTransportRtt:
      return "transport_rtt";
    case Stage::kFrameDecode:
      return "frame_decode";
    case Stage::kArenaDecode:
      return "arena_decode";
    case Stage::kShardFold:
      return "shard_fold";
    case Stage::kMerge:
      return "merge";
    case Stage::kSketchMerge:
      return "sketch_merge";
    case Stage::kEstimate:
      return "estimate";
    case Stage::kPostProcess:
      return "post_process";
  }
  return "unknown";
}

StageSet::StageSet(MetricsRegistry* registry,
                   const std::string& session_label) {
  if (registry == nullptr) return;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    Labels labels{{"stage", StageName(static_cast<Stage>(i))}};
    if (!session_label.empty()) labels.emplace_back("session", session_label);
    histograms_[i] = &registry->GetHistogram(kStageDurationMetric, labels);
  }
}

}  // namespace ldpids::obs
