// Low-overhead metrics registry for the serving data plane.
//
// The repo accumulated four ad-hoc stats structs (transport::FrameStats,
// transport::RoundBufferStats, ArenaDecodeStats, service::IngestStats)
// with no timing data and no machine-readable export. This registry is the
// canonical sink they all feed: named, labeled counters, gauges and
// log2-bucketed latency histograms, built so the hot path pays one relaxed
// atomic RMW per increment and readers take a consistent snapshot without
// ever blocking a writer.
//
// Design rules, in priority order:
//   * Releases stay bit-identical with metrics enabled. Nothing in here
//     draws randomness, reorders work, or feeds back into the data plane —
//     instrumentation is strictly write-only from the serving layer's
//     perspective.
//   * Hot-path increments are lock-free: Counter::Add / Gauge::Set /
//     Histogram::Observe are relaxed atomics on registry-owned storage.
//     Handles returned by Get* are stable for the registry's lifetime, so
//     components look their metrics up once and cache the pointer.
//   * Registration (Get* on a new name+labels) takes a mutex; it happens
//     once per metric, off the steady-state path.
//   * Snapshot() copies every value under the registration mutex, so a
//     scrape sees a stable metric set; values written concurrently with
//     the scrape land in the next one.
//
// Exporters (Prometheus text exposition, structured JSON) live in
// obs/export.h; per-pipeline-stage timing helpers in obs/stage_trace.h;
// the bridges from the legacy stats structs in obs/stats_feed.h.
#ifndef LDPIDS_OBS_METRICS_H_
#define LDPIDS_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ldpids::obs {

// Label set of one metric instance, e.g. {{"session","lba0"}}. Keys are
// sorted when the metric registers, so {{a,1},{b,2}} and {{b,2},{a,1}}
// name the same instance.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Canonical `key="value",key2="value2"` rendering (sorted by key); the
// exposition format and the registry's instance key both use it.
std::string RenderLabels(const Labels& labels);

// Monotonic event count. Add is wait-free; value() is a relaxed read (use
// MetricsRegistry::Snapshot for a consistent multi-metric view).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time level (pending rounds, live sessions). Set/Add wait-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log2-bucketed histogram for durations in nanoseconds. Bucket k counts
// observations v with bit_width(v) == k, i.e. v in [2^(k-1), 2^k); bucket
// 0 counts v == 0 and the last bucket absorbs everything at or above
// 2^(kNumBuckets-2) ns (~2.3 min). One Observe is one relaxed fetch_add on
// the bucket plus count/sum — no allocation, no lock, no float math.
class Histogram {
 public:
  // 0, then [2^0,2^1), ..., top bucket open-ended: 43 buckets spans 1 ns
  // to ~2.2 minutes per observation, which covers every pipeline stage.
  static constexpr std::size_t kNumBuckets = 43;

  static std::size_t BucketIndex(uint64_t v) {
    std::size_t k = 0;
    while (v != 0) {  // bit_width
      ++k;
      v >>= 1;
    }
    return k < kNumBuckets ? k : kNumBuckets - 1;
  }
  // Exclusive upper bound of bucket k (2^k ns); ~0 for the zero bucket.
  static uint64_t BucketUpperBound(std::size_t k) {
    return k == 0 ? 0 : uint64_t{1} << k;
  }

  void Observe(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(std::size_t k) const {
    return buckets_[k].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// One metric's values at snapshot time.
struct CounterSample {
  std::string name;
  Labels labels;
  uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  Labels labels;
  int64_t value = 0;
};
struct HistogramSample {
  std::string name;
  Labels labels;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t buckets[Histogram::kNumBuckets] = {};

  // Quantile estimate (q in [0,1]) by linear interpolation inside the
  // owning log2 bucket; 0 when the histogram is empty.
  uint64_t Quantile(double q) const;
};

// Consistent copy of a registry, ordered by (name, rendered labels).
struct MetricsSnapshot {
  // Scrape ordering metadata, stamped by MetricsRegistry::Snapshot():
  // wall-clock milliseconds at snapshot time and a per-registry monotonic
  // sequence number (first snapshot = 1). A series of scraped snapshots
  // can be ordered and rated offline even when the scraper's own clock or
  // delivery order is unreliable. Both render at the top level of
  // RenderJson.
  uint64_t ts_unix_ms = 0;
  uint64_t seq = 0;

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* FindCounter(const std::string& name,
                                   const Labels& labels = {}) const;
  const HistogramSample* FindHistogram(const std::string& name,
                                       const Labels& labels = {}) const;
};

// Owns every metric instance. Thread-safe; metrics are never removed, so
// returned references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the instance for (name, labels). Throws
  // std::logic_error when the name already exists with a different type
  // (one name must be one metric family).
  Counter& GetCounter(const std::string& name, const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const Labels& labels = {});
  Histogram& GetHistogram(const std::string& name, const Labels& labels = {});

  // Consistent point-in-time copy of every metric.
  MetricsSnapshot Snapshot() const;

  std::size_t size() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetEntry(const std::string& name, const Labels& labels, Kind kind);

  mutable std::mutex mu_;
  // Keyed by name + "\x1f" + rendered labels: deterministic iteration
  // order, so snapshots and expositions are stable across runs.
  std::map<std::string, Entry> entries_;
  // Snapshot sequence (see MetricsSnapshot::seq).
  mutable std::atomic<uint64_t> snapshot_seq_{0};
};

// Steady-clock nanoseconds, the time base for every stage histogram.
uint64_t NowNs();

// Wall-clock milliseconds since the Unix epoch (snapshot timestamps).
uint64_t UnixMillis();

}  // namespace ldpids::obs

#endif  // LDPIDS_OBS_METRICS_H_
