#include "obs/stats_feed.h"

namespace ldpids::obs {

namespace {

Labels WithReason(Labels labels, const char* reason) {
  labels.emplace_back("reason", reason);
  return labels;
}

Labels WithResult(Labels labels, const char* result) {
  labels.emplace_back("result", result);
  return labels;
}

}  // namespace

// --- FrameStatsFeed -------------------------------------------------------

FrameStatsFeed::FrameStatsFeed(MetricsRegistry* registry, const Labels& labels)
    : frames_(&registry->GetCounter("ldpids_frame_frames_total", labels)),
      data_frames_(
          &registry->GetCounter("ldpids_frame_data_frames_total", labels)),
      end_round_frames_(&registry->GetCounter(
          "ldpids_frame_end_round_frames_total", labels)),
      partial_sketch_frames_(&registry->GetCounter(
          "ldpids_frame_partial_sketch_frames_total", labels)),
      bytes_(&registry->GetCounter("ldpids_frame_bytes_total", labels)),
      skipped_bytes_(
          &registry->GetCounter("ldpids_frame_skipped_bytes_total", labels)),
      bad_magic_(&registry->GetCounter("ldpids_frame_errors_total",
                                       WithReason(labels, "bad_magic"))),
      bad_version_(&registry->GetCounter("ldpids_frame_errors_total",
                                         WithReason(labels, "bad_version"))),
      bad_kind_(&registry->GetCounter("ldpids_frame_errors_total",
                                      WithReason(labels, "bad_kind"))),
      oversize_(&registry->GetCounter("ldpids_frame_errors_total",
                                      WithReason(labels, "oversize"))),
      checksum_mismatch_(
          &registry->GetCounter("ldpids_frame_errors_total",
                                WithReason(labels, "checksum_mismatch"))),
      bad_control_(&registry->GetCounter("ldpids_frame_errors_total",
                                         WithReason(labels, "bad_control"))) {}

void FrameStatsFeed::Add(const transport::FrameStats& delta) {
  frames_->Add(delta.frames);
  data_frames_->Add(delta.data_frames);
  end_round_frames_->Add(delta.end_round_frames);
  partial_sketch_frames_->Add(delta.partial_sketch_frames);
  bytes_->Add(delta.bytes);
  skipped_bytes_->Add(delta.skipped_bytes);
  bad_magic_->Add(delta.bad_magic);
  bad_version_->Add(delta.bad_version);
  bad_kind_->Add(delta.bad_kind);
  oversize_->Add(delta.oversize);
  checksum_mismatch_->Add(delta.checksum_mismatch);
  bad_control_->Add(delta.bad_control);
}

void FrameStatsFeed::Publish(const transport::FrameStats& current) {
  transport::FrameStats delta = current;
  delta.frames -= last_.frames;
  delta.data_frames -= last_.data_frames;
  delta.end_round_frames -= last_.end_round_frames;
  delta.partial_sketch_frames -= last_.partial_sketch_frames;
  delta.bytes -= last_.bytes;
  delta.skipped_bytes -= last_.skipped_bytes;
  delta.bad_magic -= last_.bad_magic;
  delta.bad_version -= last_.bad_version;
  delta.bad_kind -= last_.bad_kind;
  delta.oversize -= last_.oversize;
  delta.checksum_mismatch -= last_.checksum_mismatch;
  delta.bad_control -= last_.bad_control;
  Add(delta);
  last_ = current;
}

// --- RoundBufferStatsFeed -------------------------------------------------

RoundBufferStatsFeed::RoundBufferStatsFeed(MetricsRegistry* registry,
                                           const Labels& labels)
    : buffered_(
          &registry->GetCounter("ldpids_roundbuf_buffered_total", labels)),
      end_markers_(
          &registry->GetCounter("ldpids_roundbuf_end_markers_total", labels)),
      closed_round_drops_(
          &registry->GetCounter("ldpids_roundbuf_drops_total",
                                WithReason(labels, "closed_round"))),
      too_late_drops_(&registry->GetCounter("ldpids_roundbuf_drops_total",
                                            WithReason(labels, "too_late"))),
      too_early_drops_(&registry->GetCounter("ldpids_roundbuf_drops_total",
                                             WithReason(labels, "too_early"))),
      rounds_drained_(&registry->GetCounter("ldpids_roundbuf_rounds_drained_total",
                                            labels)),
      packets_drained_(&registry->GetCounter(
          "ldpids_roundbuf_packets_drained_total", labels)),
      deadline_flushes_(&registry->GetCounter(
          "ldpids_roundbuf_deadline_flushes_total", labels)),
      duplicate_frames_(&registry->GetCounter(
          "ldpids_roundbuf_duplicate_frames_total", labels)),
      masked_losses_(
          &registry->GetCounter("ldpids_roundbuf_masked_losses_total", labels)),
      pending_rounds_(
          &registry->GetGauge("ldpids_roundbuf_pending_rounds", labels)) {}

void RoundBufferStatsFeed::Add(const transport::RoundBufferStats& delta) {
  buffered_->Add(delta.buffered);
  end_markers_->Add(delta.end_markers);
  closed_round_drops_->Add(delta.closed_round_drops);
  too_late_drops_->Add(delta.too_late_drops);
  too_early_drops_->Add(delta.too_early_drops);
  rounds_drained_->Add(delta.rounds_drained);
  packets_drained_->Add(delta.packets_drained);
  deadline_flushes_->Add(delta.deadline_flushes);
  duplicate_frames_->Add(delta.duplicate_frames);
  masked_losses_->Add(delta.masked_losses);
}

void RoundBufferStatsFeed::Publish(const transport::RoundBufferStats& current) {
  transport::RoundBufferStats delta = current;
  delta.buffered -= last_.buffered;
  delta.end_markers -= last_.end_markers;
  delta.closed_round_drops -= last_.closed_round_drops;
  delta.too_late_drops -= last_.too_late_drops;
  delta.too_early_drops -= last_.too_early_drops;
  delta.rounds_drained -= last_.rounds_drained;
  delta.packets_drained -= last_.packets_drained;
  delta.deadline_flushes -= last_.deadline_flushes;
  delta.duplicate_frames -= last_.duplicate_frames;
  delta.masked_losses -= last_.masked_losses;
  Add(delta);
  last_ = current;
}

void RoundBufferStatsFeed::SetPending(std::size_t pending_rounds) {
  pending_rounds_->Set(static_cast<int64_t>(pending_rounds));
}

// --- ArenaDecodeStatsFeed -------------------------------------------------

ArenaDecodeStatsFeed::ArenaDecodeStatsFeed(MetricsRegistry* registry,
                                           const Labels& labels)
    : decoded_(&registry->GetCounter("ldpids_arena_decoded_total", labels)),
      malformed_(&registry->GetCounter("ldpids_arena_rejects_total",
                                       WithReason(labels, "malformed"))),
      wrong_oracle_(&registry->GetCounter("ldpids_arena_rejects_total",
                                          WithReason(labels, "wrong_oracle"))),
      wrong_timestamp_(
          &registry->GetCounter("ldpids_arena_rejects_total",
                                WithReason(labels, "wrong_timestamp"))) {
  for (std::size_t e = 1; e < kWireErrorCount; ++e) {
    wire_errors_[e] = &registry->GetCounter(
        "ldpids_arena_wire_errors_total",
        WithReason(labels, WireErrorName(static_cast<WireError>(e))));
  }
}

void ArenaDecodeStatsFeed::Add(const ArenaDecodeStats& delta) {
  decoded_->Add(delta.decoded);
  malformed_->Add(delta.malformed);
  wrong_oracle_->Add(delta.wrong_oracle);
  wrong_timestamp_->Add(delta.wrong_timestamp);
  for (std::size_t e = 1; e < kWireErrorCount; ++e) {
    wire_errors_[e]->Add(delta.wire_errors[e]);
  }
}

void ArenaDecodeStatsFeed::Publish(const ArenaDecodeStats& current) {
  ArenaDecodeStats delta = current;
  delta.decoded -= last_.decoded;
  delta.malformed -= last_.malformed;
  delta.wrong_oracle -= last_.wrong_oracle;
  delta.wrong_timestamp -= last_.wrong_timestamp;
  for (std::size_t e = 0; e < kWireErrorCount; ++e) {
    delta.wire_errors[e] -= last_.wire_errors[e];
  }
  Add(delta);
  last_ = current;
}

// --- SketchMergeStatsFeed -------------------------------------------------

SketchMergeStatsFeed::SketchMergeStatsFeed(MetricsRegistry* registry,
                                           const Labels& labels)
    : merged_(&registry->GetCounter("ldpids_sketch_merge_partials_total",
                                    WithResult(labels, "merged"))),
      users_merged_(&registry->GetCounter("ldpids_sketch_merge_users_total",
                                          labels)),
      malformed_(&registry->GetCounter("ldpids_sketch_merge_partials_total",
                                       WithResult(labels, "malformed"))),
      wrong_oracle_(
          &registry->GetCounter("ldpids_sketch_merge_partials_total",
                                WithResult(labels, "wrong_oracle"))),
      wrong_round_(&registry->GetCounter("ldpids_sketch_merge_partials_total",
                                         WithResult(labels, "wrong_round"))),
      params_mismatch_(
          &registry->GetCounter("ldpids_sketch_merge_partials_total",
                                WithResult(labels, "params_mismatch"))),
      duplicate_node_(
          &registry->GetCounter("ldpids_sketch_merge_partials_total",
                                WithResult(labels, "duplicate_node"))),
      missing_(&registry->GetCounter("ldpids_sketch_merge_partials_total",
                                     WithResult(labels, "missing"))) {}

void SketchMergeStatsFeed::Add(const SketchMergeStats& delta) {
  merged_->Add(delta.merged);
  users_merged_->Add(delta.users_merged);
  malformed_->Add(delta.malformed);
  wrong_oracle_->Add(delta.wrong_oracle);
  wrong_round_->Add(delta.wrong_round);
  params_mismatch_->Add(delta.params_mismatch);
  duplicate_node_->Add(delta.duplicate_node);
  missing_->Add(delta.missing);
}

void SketchMergeStatsFeed::Publish(const SketchMergeStats& current) {
  SketchMergeStats delta = current;
  delta.merged -= last_.merged;
  delta.users_merged -= last_.users_merged;
  delta.malformed -= last_.malformed;
  delta.wrong_oracle -= last_.wrong_oracle;
  delta.wrong_round -= last_.wrong_round;
  delta.params_mismatch -= last_.params_mismatch;
  delta.duplicate_node -= last_.duplicate_node;
  delta.missing -= last_.missing;
  Add(delta);
  last_ = current;
}

// --- IngestStatsFeed ------------------------------------------------------

IngestStatsFeed::IngestStatsFeed(MetricsRegistry* registry,
                                 const Labels& labels)
    : accepted_(&registry->GetCounter("ldpids_ingest_reports_total",
                                      WithResult(labels, "accepted"))),
      malformed_(&registry->GetCounter("ldpids_ingest_reports_total",
                                       WithResult(labels, "malformed"))),
      wrong_oracle_(&registry->GetCounter("ldpids_ingest_reports_total",
                                          WithResult(labels, "wrong_oracle"))),
      wrong_timestamp_(
          &registry->GetCounter("ldpids_ingest_reports_total",
                                WithResult(labels, "wrong_timestamp"))),
      duplicate_(&registry->GetCounter("ldpids_ingest_reports_total",
                                       WithResult(labels, "duplicate"))),
      sketch_rejected_(&registry->GetCounter(
          "ldpids_ingest_reports_total",
          WithResult(labels, "sketch_rejected"))) {}

void IngestStatsFeed::Add(const service::IngestStats& delta) {
  accepted_->Add(delta.accepted);
  malformed_->Add(delta.malformed);
  wrong_oracle_->Add(delta.wrong_oracle);
  wrong_timestamp_->Add(delta.wrong_timestamp);
  duplicate_->Add(delta.duplicate);
  sketch_rejected_->Add(delta.sketch_rejected);
}

void IngestStatsFeed::Publish(const service::IngestStats& current) {
  service::IngestStats delta = current;
  delta.accepted -= last_.accepted;
  delta.malformed -= last_.malformed;
  delta.wrong_oracle -= last_.wrong_oracle;
  delta.wrong_timestamp -= last_.wrong_timestamp;
  delta.duplicate -= last_.duplicate;
  delta.sketch_rejected -= last_.sketch_rejected;
  Add(delta);
  last_ = current;
}

}  // namespace ldpids::obs
