#include "obs/build_info.h"

#include <cstdint>

#include "obs/metrics.h"
#include "util/simd/avx512.h"

namespace ldpids::obs {

const char* SimdBackendName() {
#if defined(LDPIDS_SIMD_FORCE_GENERIC) || !defined(__AVX2__)
  return "generic";
#else
  // The 4-lane backend is AVX2; the dispatched AVX-512 kernels upgrade
  // the hot paths when both the build and the CPU have the ISA.
  return simd::Avx512Available() ? "avx512" : "avx2";
#endif
}

const char* SanitizerName() {
#if defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__SANITIZE_THREAD__)
  return "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return "address";
#elif __has_feature(thread_sanitizer)
  return "thread";
#else
  return "none";
#endif
#else
  return "none";
#endif
}

const char* BuildVersion() { return "dev"; }

uint64_t ProcessStartNs() {
  // Latched on the first call; every later caller (any thread) sees the
  // same base. Static-local init is thread-safe in C++.
  static const uint64_t start_ns = NowNs();
  return start_ns;
}

void TouchProcessMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const uint64_t start = ProcessStartNs();  // latch before reading now
  registry
      ->GetGauge("ldpids_build_info", {{"version", BuildVersion()},
                                       {"simd", SimdBackendName()},
                                       {"sanitizer", SanitizerName()}})
      .Set(1);
  registry->GetGauge("ldpids_process_uptime_seconds")
      .Set(static_cast<int64_t>((NowNs() - start) / 1000000000ull));
}

}  // namespace ldpids::obs
