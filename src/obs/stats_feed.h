// Bridges from the data plane's per-component stats structs into the
// metrics registry, giving every counter they hold a canonical metric
// name:
//
//   transport::FrameStats      -> ldpids_frame_*
//   transport::RoundBufferStats-> ldpids_roundbuf_*
//   ArenaDecodeStats           -> ldpids_arena_*
//   service::IngestStats       -> ldpids_ingest_*
//
// The structs stay the in-component source of truth (cheap plain
// uint64 increments, per-round snapshots, ToString); a feed publishes
// them into registry counters so exporters and scrapes see them under
// stable names. Two publication styles:
//
//   Add(delta)        — the caller hands a fresh delta (e.g. one round's
//                       IngestStats); counters advance by it.
//   Publish(current)  — the caller hands the component's cumulative
//                       struct; the feed diffs it against the last
//                       published state and adds the difference. Safe to
//                       call repeatedly with the same snapshot.
//
// Feeds pre-register every counter at construction, so publishing on a
// hot path never touches the registry mutex. Each feed instance tracks
// one component's cumulative state: give each decoder/buffer/session its
// own feed (they may share labels — counters are additive).
//
// This header is the top of the obs dependency stack: it includes the
// component headers, so only .cc files should include it (component
// headers forward-declare the feed types).
#ifndef LDPIDS_OBS_STATS_FEED_H_
#define LDPIDS_OBS_STATS_FEED_H_

#include "fo/report_arena.h"
#include "fo/sketch_wire.h"
#include "obs/metrics.h"
#include "service/ingest.h"
#include "transport/frame.h"
#include "transport/round_buffer.h"

namespace ldpids::obs {

// FrameStats -> ldpids_frame_{frames,data_frames,end_round_frames,
// partial_sketch_frames,bytes,skipped_bytes}_total and
// ldpids_frame_errors_total{reason=...}.
class FrameStatsFeed {
 public:
  FrameStatsFeed(MetricsRegistry* registry, const Labels& labels = {});

  void Add(const transport::FrameStats& delta);
  void Publish(const transport::FrameStats& current);

 private:
  Counter* frames_;
  Counter* data_frames_;
  Counter* end_round_frames_;
  Counter* partial_sketch_frames_;
  Counter* bytes_;
  Counter* skipped_bytes_;
  Counter* bad_magic_;
  Counter* bad_version_;
  Counter* bad_kind_;
  Counter* oversize_;
  Counter* checksum_mismatch_;
  Counter* bad_control_;
  transport::FrameStats last_;
};

// RoundBufferStats -> ldpids_roundbuf_{buffered,end_markers,rounds_drained,
// packets_drained,deadline_flushes,duplicate_frames,masked_losses}_total,
// ldpids_roundbuf_drops_total{reason=...}, plus the
// ldpids_roundbuf_pending_rounds gauge (SetPending).
class RoundBufferStatsFeed {
 public:
  RoundBufferStatsFeed(MetricsRegistry* registry, const Labels& labels = {});

  void Add(const transport::RoundBufferStats& delta);
  void Publish(const transport::RoundBufferStats& current);
  void SetPending(std::size_t pending_rounds);

 private:
  Counter* buffered_;
  Counter* end_markers_;
  Counter* closed_round_drops_;
  Counter* too_late_drops_;
  Counter* too_early_drops_;
  Counter* rounds_drained_;
  Counter* packets_drained_;
  Counter* deadline_flushes_;
  Counter* duplicate_frames_;
  Counter* masked_losses_;
  Gauge* pending_rounds_;
  transport::RoundBufferStats last_;
};

// ArenaDecodeStats -> ldpids_arena_decoded_total,
// ldpids_arena_rejects_total{reason=...} and
// ldpids_arena_wire_errors_total{reason=<WireErrorName>} (kOk elided).
class ArenaDecodeStatsFeed {
 public:
  ArenaDecodeStatsFeed(MetricsRegistry* registry, const Labels& labels = {});

  void Add(const ArenaDecodeStats& delta);
  void Publish(const ArenaDecodeStats& current);

 private:
  Counter* decoded_;
  Counter* malformed_;
  Counter* wrong_oracle_;
  Counter* wrong_timestamp_;
  // Index 0 (kOk) stays null — a decoded packet is not a wire error.
  Counter* wire_errors_[kWireErrorCount] = {};
  ArenaDecodeStats last_;
};

// SketchMergeStats -> ldpids_sketch_merge_partials_total{result=...} and
// ldpids_sketch_merge_users_total (the root side of the merge tree; the
// per-aggregator emit side publishes ldpids_aggregator_* directly).
class SketchMergeStatsFeed {
 public:
  SketchMergeStatsFeed(MetricsRegistry* registry, const Labels& labels = {});

  void Add(const SketchMergeStats& delta);
  void Publish(const SketchMergeStats& current);

 private:
  Counter* merged_;
  Counter* users_merged_;
  Counter* malformed_;
  Counter* wrong_oracle_;
  Counter* wrong_round_;
  Counter* params_mismatch_;
  Counter* duplicate_node_;
  Counter* missing_;
  SketchMergeStats last_;
};

// IngestStats -> ldpids_ingest_reports_total{result=<IngestResultName>}.
class IngestStatsFeed {
 public:
  IngestStatsFeed(MetricsRegistry* registry, const Labels& labels = {});

  void Add(const service::IngestStats& delta);
  void Publish(const service::IngestStats& current);

 private:
  Counter* accepted_;
  Counter* malformed_;
  Counter* wrong_oracle_;
  Counter* wrong_timestamp_;
  Counter* duplicate_;
  Counter* sketch_rejected_;
  service::IngestStats last_;
};

}  // namespace ldpids::obs

#endif  // LDPIDS_OBS_STATS_FEED_H_
