// Small rolling time-series primitives for the health model and the
// /statusz rate columns. None of this is on the data-plane hot path:
// windows are owned by whoever polls (the watchdog thread or a scrape
// handler) and fed from snapshots, so no synchronization lives here —
// callers serialize access themselves.
#ifndef LDPIDS_OBS_TIMESERIES_H_
#define LDPIDS_OBS_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"

namespace ldpids::obs {

// Rolling rate over a wall window: feed (t_ns, cumulative_count) samples
// of a monotone counter; RatePerSec() is the slope across the retained
// window. Samples older than `window_ns` are evicted (the two newest are
// always kept, so a quiet counter still reports its last-known rate of
// zero instead of losing history).
class RateWindow {
 public:
  explicit RateWindow(uint64_t window_ns = 10ull * 1000 * 1000 * 1000)
      : window_ns_(window_ns) {}

  void Observe(uint64_t t_ns, uint64_t cumulative);
  // 0.0 until two samples exist. A counter reset (value decreasing, e.g.
  // a restarted session reusing a label) re-anchors the window.
  double RatePerSec() const;
  std::size_t size() const { return samples_.size(); }

 private:
  struct Sample {
    uint64_t t_ns;
    uint64_t value;
  };
  uint64_t window_ns_;
  std::deque<Sample> samples_;
};

// Last-K durations with percentile readout — the rolling baseline the
// stall detector compares in-flight ages and round gaps against.
class DurationWindow {
 public:
  explicit DurationWindow(std::size_t capacity = 64) : capacity_(capacity) {}

  void Observe(uint64_t duration_ns);
  // Nearest-rank quantile (q in [0,1]) over the retained durations;
  // 0 when empty.
  uint64_t Quantile(double q) const;
  std::size_t size() const { return ring_.size(); }

 private:
  std::size_t capacity_;
  std::deque<uint64_t> ring_;
};

// Tracks a RateWindow for every counter seen in successive
// MetricsSnapshots, keyed by name + labels. Feed each scrape's snapshot
// via Observe(); query by metric name plus one distinguishing label.
// /statusz uses this to show live reports/sec and rounds/sec per session
// without the data plane maintaining any derivative state.
class TimeseriesTracker {
 public:
  explicit TimeseriesTracker(uint64_t window_ns = 10ull * 1000 * 1000 * 1000)
      : window_ns_(window_ns) {}

  void Observe(const MetricsSnapshot& snap, uint64_t t_ns);

  // Rate of the counter `name` whose label set contains label==value
  // (with an empty label, the first instance of `name` wins). 0.0 when
  // no such counter has been observed twice.
  double RatePerSec(const std::string& name, const std::string& label = "",
                    const std::string& value = "") const;

 private:
  struct Series {
    std::string name;
    Labels labels;
    RateWindow window;
  };

  uint64_t window_ns_;
  // Keyed by name + '\x1f' + RenderLabels(labels), mirroring the
  // registry's instance key.
  std::unordered_map<std::string, Series> series_;
};

}  // namespace ldpids::obs

#endif  // LDPIDS_OBS_TIMESERIES_H_
