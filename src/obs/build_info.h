// Standard process-level metrics every export path should carry:
//
//   ldpids_build_info{version=...,simd=...,sanitizer=...} 1
//   ldpids_process_uptime_seconds                         <gauge>
//
// `simd` reports the kernel backend actually in effect at runtime
// (avx512 when the AVX-512 TUs are compiled in AND the CPU has them,
// avx2, or generic), so a scrape of a production box answers "which code
// paths is this binary really running" without a shell. `version` is a
// placeholder until a release stamping step exists (git SHA injection is
// a build-system concern, not a runtime one).
//
// TouchProcessMetrics is idempotent and cheap: call it once at startup
// for registration and again immediately before every Snapshot()/render
// so the uptime gauge is fresh on that export. Process start time is
// latched on the first call in the process (shared across registries).
#ifndef LDPIDS_OBS_BUILD_INFO_H_
#define LDPIDS_OBS_BUILD_INFO_H_

#include <cstdint>

namespace ldpids::obs {

class MetricsRegistry;

// "avx512", "avx2" or "generic" — compile-time backend refined by the
// runtime CPUID check for the AVX-512 dispatched kernels.
const char* SimdBackendName();

// "address", "thread", or "none" (UBSan has no reliable detection macro
// and piggybacks on the address build in CI).
const char* SanitizerName();

// Version placeholder ("dev") until release stamping exists.
const char* BuildVersion();

// Steady-clock nanoseconds latched at this process's first call into the
// obs layer; the uptime base.
uint64_t ProcessStartNs();

// Registers (first call) and refreshes (every call) the build-info gauge
// and the uptime gauge in `registry`. Safe from any thread.
void TouchProcessMetrics(MetricsRegistry* registry);

}  // namespace ldpids::obs

#endif  // LDPIDS_OBS_BUILD_INFO_H_
