// Dependency-free embedded HTTP/1.1 server for the observability plane.
//
// This is deliberately *not* a general web server: it exists so a running
// ldpids process can answer `GET /metrics`-style scrapes from curl,
// Prometheus, or a health checker without a single external dependency.
// Scope is pinned accordingly:
//   * GET and HEAD only (anything else answers 405),
//   * no request bodies (a Content-Length/Transfer-Encoding header
//     answers 400 — a scraper never sends one),
//   * loopback bind only, same as the frame transport's SocketListener.
//
// Defensive posture matches the wire decoders one layer down: every parse
// failure degrades to a typed 4xx response or a closed connection, never
// a crash, regardless of what bytes arrive. The parser is exposed as a
// free function (`ParseHttpRequest`) precisely so the fuzz/negative tests
// can drive it directly with hostile buffers and random slicings.
//
// Threading: one accept thread plus one thread per connection (scrapes
// are rare and short-lived; a thread per scraper costs nothing next to
// the serving data plane). The handler runs on connection threads and
// must be thread-safe; handlers here render from MetricsRegistry
// snapshots, which are safe by construction. Stop() — and the destructor
// — closes every socket and joins every thread.
#ifndef LDPIDS_OBS_HTTP_SERVER_H_
#define LDPIDS_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ldpids::obs {

// One parsed request. `target` is the raw request target; `path` and
// `query` split it at the first '?'.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string path;
  std::string query;
  // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; a Connection
  // header overrides either way.
  bool keep_alive = true;
};

enum class HttpParseResult : uint8_t {
  kNeedMore,  // no complete request in the buffer yet
  kOk,        // one request parsed; *consumed bytes were used
  kBad,       // malformed request line/headers (answer 400, close)
  kTooLarge,  // header block exceeds kMaxHttpHeaderBytes (431, close)
};

// Hard cap on the request line + header block. Anything larger is an
// attack or a mistake, never a scrape.
inline constexpr std::size_t kMaxHttpHeaderBytes = 16 * 1024;

// Parses one request from data[0, size). On kOk, fills `*request` and
// sets `*consumed` to the bytes the request occupied (pipelined requests
// parse one at a time). Never throws, never reads past `size`.
HttpParseResult ParseHttpRequest(const uint8_t* data, std::size_t size,
                                 HttpRequest* request,
                                 std::size_t* consumed);

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Canonical reason phrase for the status codes this server emits;
// "Unknown" otherwise.
const char* HttpStatusReason(int status);

// Serializes status line + headers + body (body omitted for HEAD).
std::string RenderHttpResponse(const HttpResponse& response,
                               bool keep_alive, bool head_only);

// Runs on connection threads; must be thread-safe.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  // Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts
  // accepting. Throws std::runtime_error on socket/bind/listen failure.
  HttpServer(uint16_t port, HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Stops accepting, closes every connection and joins all threads.
  void Stop();

  uint16_t port() const { return port_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ConnectionLoop(int fd);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  HttpHandler handler_;
  std::thread accept_thread_;

  std::mutex mu_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::vector<int> worker_fds_;
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> connections_{0};
};

}  // namespace ldpids::obs

#endif  // LDPIDS_OBS_HTTP_SERVER_H_
