#include "obs/http_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "transport/socket_util.h"

namespace ldpids::obs {

namespace {

// Case-insensitive ASCII comparison for header names/values.
bool IEquals(const std::string& a, const char* b) {
  std::size_t i = 0;
  for (; i < a.size(); ++i) {
    if (b[i] == '\0') return false;
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] + 32 : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? b[i] + 32 : b[i];
    if (ca != cb) return false;
  }
  return b[i] == '\0';
}

bool IsTokenChar(char c) {
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return true;
  return std::strchr("!#$%&'*+-.^_`|~", c) != nullptr;
}

// Strips optional leading/trailing spaces and tabs.
std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

}  // namespace

HttpParseResult ParseHttpRequest(const uint8_t* data, std::size_t size,
                                 HttpRequest* request,
                                 std::size_t* consumed) {
  // Find the end of the header block ("\r\n\r\n"; a lone "\n\n" is also
  // accepted — hand-typed `nc` requests use it). Scan is bounded by the
  // header cap so a slow-drip attacker cannot grow the buffer forever.
  const std::size_t scan = size < kMaxHttpHeaderBytes ? size
                                                      : kMaxHttpHeaderBytes;
  std::size_t header_end = 0;  // index one past the blank line
  for (std::size_t i = 0; i < scan; ++i) {
    if (data[i] == '\n') {
      if (i >= 1 && data[i - 1] == '\n') {
        header_end = i + 1;
        break;
      }
      if (i >= 3 && data[i - 1] == '\r' && data[i - 2] == '\n' &&
          data[i - 3] == '\r') {
        header_end = i + 1;
        break;
      }
    }
  }
  if (header_end == 0) {
    return size >= kMaxHttpHeaderBytes ? HttpParseResult::kTooLarge
                                       : HttpParseResult::kNeedMore;
  }

  // Split into lines (tolerating both \r\n and \n endings).
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < header_end; ++i) {
    if (data[i] != '\n') continue;
    std::size_t end = i;
    if (end > start && data[end - 1] == '\r') --end;
    lines.emplace_back(reinterpret_cast<const char*>(data) + start,
                       end - start);
    start = i + 1;
  }
  if (lines.empty() || lines.front().empty()) {
    return HttpParseResult::kBad;
  }

  // Request line: METHOD SP target SP HTTP/1.x
  const std::string& line = lines.front();
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return HttpParseResult::kBad;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) {
    return HttpParseResult::kBad;
  }
  HttpRequest parsed;
  parsed.method = line.substr(0, sp1);
  for (char c : parsed.method) {
    if (!IsTokenChar(c)) return HttpParseResult::kBad;
  }
  parsed.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (parsed.target.empty() || parsed.target[0] != '/') {
    return HttpParseResult::kBad;
  }
  for (char c : parsed.target) {
    if (static_cast<unsigned char>(c) <= 0x20 ||
        static_cast<unsigned char>(c) == 0x7f) {
      return HttpParseResult::kBad;
    }
  }
  const std::string version = line.substr(sp2 + 1);
  bool http10 = false;
  if (version == "HTTP/1.0") {
    http10 = true;
  } else if (version != "HTTP/1.1") {
    return HttpParseResult::kBad;
  }
  parsed.keep_alive = !http10;

  // Headers: name ":" value. A request body (Content-Length > 0 or any
  // Transfer-Encoding) is out of scope — scrapes are GETs.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& header = lines[i];
    if (header.empty()) break;  // blank line (already located above)
    const std::size_t colon = header.find(':');
    if (colon == std::string::npos || colon == 0) {
      return HttpParseResult::kBad;
    }
    const std::string name = header.substr(0, colon);
    for (char c : name) {
      if (!IsTokenChar(c)) return HttpParseResult::kBad;
    }
    const std::string value = Trim(header.substr(colon + 1));
    if (IEquals(name, "connection")) {
      if (IEquals(value, "close")) parsed.keep_alive = false;
      if (IEquals(value, "keep-alive")) parsed.keep_alive = true;
    } else if (IEquals(name, "transfer-encoding")) {
      return HttpParseResult::kBad;
    } else if (IEquals(name, "content-length")) {
      if (value.empty()) return HttpParseResult::kBad;
      for (char c : value) {
        if (c < '0' || c > '9') return HttpParseResult::kBad;
      }
      // Any declared body is rejected; "0" is tolerated (curl -X GET
      // with no data sends nothing, but some clients send it anyway).
      if (value.find_first_not_of('0') != std::string::npos) {
        return HttpParseResult::kBad;
      }
    }
  }

  const std::size_t qmark = parsed.target.find('?');
  if (qmark == std::string::npos) {
    parsed.path = parsed.target;
  } else {
    parsed.path = parsed.target.substr(0, qmark);
    parsed.query = parsed.target.substr(qmark + 1);
  }
  *request = std::move(parsed);
  *consumed = header_end;
  return HttpParseResult::kOk;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string RenderHttpResponse(const HttpResponse& response,
                               bool keep_alive, bool head_only) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += HttpStatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  if (!head_only) out += response.body;
  return out;
}

HttpServer::HttpServer(uint16_t port, HttpHandler handler)
    : handler_(std::move(handler)) {
  if (!handler_) {
    throw std::invalid_argument("http server needs a handler");
  }
  listen_fd_ = transport::BindLoopbackListener(port, &port_);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or a fatal accept error)
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    worker_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { ConnectionLoop(fd); });
  }
}

void HttpServer::ConnectionLoop(int fd) {
  std::vector<uint8_t> buffer;
  bool open = true;
  while (open) {
    // Parse everything already buffered before reading more (pipelined
    // requests answer back to back without waiting on the socket).
    HttpRequest request;
    std::size_t consumed = 0;
    const HttpParseResult result =
        ParseHttpRequest(buffer.data(), buffer.size(), &request, &consumed);
    if (result == HttpParseResult::kNeedMore) {
      constexpr std::size_t kChunk = 4096;
      const std::size_t used = buffer.size();
      buffer.resize(used + kChunk);
      const ssize_t n = ::recv(fd, buffer.data() + used, kChunk, 0);
      if (n < 0 && errno == EINTR) {
        buffer.resize(used);
        continue;
      }
      if (n <= 0) break;  // EOF (possibly mid-request) or shutdown
      buffer.resize(used + static_cast<std::size_t>(n));
      continue;
    }

    HttpResponse response;
    bool keep_alive = false;
    bool head_only = false;
    if (result == HttpParseResult::kTooLarge) {
      response.status = 431;
      response.body = "request header block too large\n";
    } else if (result == HttpParseResult::kBad) {
      response.status = 400;
      response.body = "malformed request\n";
    } else {
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<std::ptrdiff_t>(consumed));
      keep_alive = request.keep_alive;
      head_only = request.method == "HEAD";
      if (request.method != "GET" && request.method != "HEAD") {
        response.status = 405;
        response.body = "only GET and HEAD are served here\n";
      } else {
        try {
          response = handler_(request);
        } catch (const std::exception& e) {
          response = HttpResponse{};
          response.status = 503;
          response.body = std::string("handler failed: ") + e.what() + "\n";
        } catch (...) {
          response = HttpResponse{};
          response.status = 503;
          response.body = "handler failed\n";
        }
      }
      requests_served_.fetch_add(1, std::memory_order_relaxed);
    }

    const std::string wire =
        RenderHttpResponse(response, keep_alive, head_only);
    try {
      transport::SendAll(fd, reinterpret_cast<const uint8_t*>(wire.data()),
                         wire.size());
    } catch (...) {
      break;  // peer went away mid-response; nothing to salvage
    }
    open = keep_alive;
  }
  {
    // Deregister before closing: once the fd is closed the kernel may
    // recycle its number, and Stop() must never shutdown() a stale entry.
    std::lock_guard<std::mutex> lock(mu_);
    for (int& worker_fd : worker_fds_) {
      if (worker_fd == fd) {
        worker_fd = -1;
        break;
      }
    }
  }
  ::close(fd);
}

void HttpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      if (!accept_thread_.joinable() && workers_.empty()) return;
    }
    stopping_ = true;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : worker_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  worker_fds_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace ldpids::obs
