#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace ldpids::obs {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  int n = std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(v));
  out->append(buf, static_cast<std::size_t>(n));
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(RoundUpPow2(std::max<std::size_t>(capacity, 8))) {
  mask_ = slots_.size() - 1;
}

uint32_t FlightRecorder::RegisterTrack(const std::string& name) {
  std::lock_guard<std::mutex> lock(tracks_mu_);
  if (tracks_.size() >= kMaxTracks) {
    // Table full: alias everything past the cap onto the last slot
    // rather than crash — observability must never take the plane down.
    return static_cast<uint32_t>(kMaxTracks - 1);
  }
  auto state = std::make_unique<TrackState>();
  state->name = name;
  tracks_.push_back(std::move(state));
  const uint32_t id = static_cast<uint32_t>(tracks_.size() - 1);
  track_table_[id].store(tracks_.back().get(), std::memory_order_release);
  track_count_.store(id + 1, std::memory_order_release);
  return id;
}

void FlightRecorder::CloseTrack(uint32_t track) {
  TrackState* state = track_state(track);
  if (state == nullptr) return;
  state->closed.store(true, std::memory_order_relaxed);
  // A closed track has no pending work by definition; clear any marks a
  // failure path left behind so the health model never sees a ghost.
  for (auto& cell : state->in_flight) {
    cell.start_ns.store(0, std::memory_order_relaxed);
  }
}

void FlightRecorder::Record(uint32_t track, Stage stage, uint64_t round_index,
                            uint64_t t_start_ns, uint64_t t_end_ns,
                            uint64_t reports, uint64_t drops) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[static_cast<std::size_t>(ticket) & mask_];
  // Invalidate, write fields, publish. A reader that raced sees seq
  // change (or 0) and skips the slot.
  slot.seq.store(0, std::memory_order_release);
  slot.track.store(track, std::memory_order_relaxed);
  slot.stage.store(static_cast<uint32_t>(stage), std::memory_order_relaxed);
  slot.round_index.store(round_index, std::memory_order_relaxed);
  slot.t_start_ns.store(t_start_ns, std::memory_order_relaxed);
  slot.t_end_ns.store(t_end_ns, std::memory_order_relaxed);
  slot.reports.store(reports, std::memory_order_relaxed);
  slot.drops.store(drops, std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);

  EndStage(track, stage);
}

void FlightRecorder::BeginStage(uint32_t track, Stage stage,
                                uint64_t round_index, uint64_t now_ns) {
  TrackState* state = track_state(track);
  if (state == nullptr) return;
  auto& cell = state->in_flight[static_cast<std::size_t>(stage)];
  cell.round_index.store(round_index, std::memory_order_relaxed);
  // start_ns last: a health reader seeing a nonzero start also sees a
  // plausible round (exactness doesn't matter for stall detection).
  cell.start_ns.store(now_ns == 0 ? 1 : now_ns, std::memory_order_release);
}

void FlightRecorder::EndStage(uint32_t track, Stage stage) {
  TrackState* state = track_state(track);
  if (state == nullptr) return;
  state->in_flight[static_cast<std::size_t>(stage)].start_ns.store(
      0, std::memory_order_release);
}

FlightRecorderSnapshot FlightRecorder::Snapshot() const {
  FlightRecorderSnapshot snap;

  std::vector<TrackState*> states;
  {
    std::lock_guard<std::mutex> lock(tracks_mu_);
    snap.tracks.reserve(tracks_.size());
    states.reserve(tracks_.size());
    for (const auto& t : tracks_) {
      snap.tracks.push_back(t->name);
      states.push_back(t.get());
    }
  }
  snap.closed.reserve(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    snap.closed.push_back(states[i]->closed.load(std::memory_order_relaxed));
    for (std::size_t s = 0; s < kNumStages; ++s) {
      const auto& cell = states[i]->in_flight[s];
      const uint64_t start = cell.start_ns.load(std::memory_order_acquire);
      if (start == 0) continue;
      InFlightStage f;
      f.track = static_cast<uint32_t>(i);
      f.stage = static_cast<Stage>(s);
      f.round_index = cell.round_index.load(std::memory_order_relaxed);
      f.t_start_ns = start;
      snap.in_flight.push_back(f);
    }
  }

  const uint64_t total = next_.load(std::memory_order_acquire);
  snap.total_recorded = total;
  const uint64_t cap = slots_.size();
  const uint64_t first = total > cap ? total - cap : 0;
  snap.dropped = first;
  snap.events.reserve(static_cast<std::size_t>(total - first));
  for (uint64_t ticket = first; ticket < total; ++ticket) {
    const Slot& slot = slots_[static_cast<std::size_t>(ticket) & mask_];
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 != ticket + 1) continue;  // overwritten or still being written
    // Acquire field loads keep the seq re-read below from hoisting above
    // them (an acquire fence would too, but TSan cannot model fences).
    RoundEvent ev;
    ev.track = slot.track.load(std::memory_order_acquire);
    ev.stage = static_cast<Stage>(slot.stage.load(std::memory_order_acquire));
    ev.round_index = slot.round_index.load(std::memory_order_acquire);
    ev.t_start_ns = slot.t_start_ns.load(std::memory_order_acquire);
    ev.t_end_ns = slot.t_end_ns.load(std::memory_order_acquire);
    ev.reports = slot.reports.load(std::memory_order_acquire);
    ev.drops = slot.drops.load(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_acquire) != s1) continue;  // torn
    snap.events.push_back(ev);
  }
  return snap;
}

std::string RenderChromeTrace(const FlightRecorderSnapshot& snap) {
  // Rebase timestamps so the trace starts near 0 — steady-clock absolute
  // values are huge and chrome://tracing renders offsets anyway.
  uint64_t base_ns = ~0ull;
  for (const RoundEvent& ev : snap.events) {
    base_ns = std::min(base_ns, ev.t_start_ns);
  }
  if (base_ns == ~0ull) base_ns = 0;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < snap.tracks.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    AppendU64(&out, i);
    out += ",\"args\":{\"name\":\"";
    AppendEscaped(&out, snap.tracks[i]);
    out += "\"}}";
  }
  for (const RoundEvent& ev : snap.events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += StageName(ev.stage);
    out += "\",\"cat\":\"round\",\"ph\":\"X\",\"ts\":";
    AppendU64(&out, (ev.t_start_ns - base_ns) / 1000);
    out += ",\"dur\":";
    const uint64_t dur_ns =
        ev.t_end_ns > ev.t_start_ns ? ev.t_end_ns - ev.t_start_ns : 0;
    AppendU64(&out, dur_ns / 1000);
    out += ",\"pid\":1,\"tid\":";
    AppendU64(&out, ev.track);
    out += ",\"args\":{\"round\":";
    AppendU64(&out, ev.round_index);
    out += ",\"reports\":";
    AppendU64(&out, ev.reports);
    out += ",\"drops\":";
    AppendU64(&out, ev.drops);
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace ldpids::obs
