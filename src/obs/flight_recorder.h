// Round-event flight recorder: a fixed-capacity, lock-free ring that
// keeps the last N stage-transition events of the serving data plane, so
// a running (or just-crashed) process can always answer "what were the
// last few thousand things the pipeline did, and when".
//
// One event = one pipeline stage of one round on one track (a track is a
// session, registered once by name): {track, round_index, stage,
// t_start_ns, t_end_ns, reports, drops}. Sessions record events with
// *absolute* steady-clock windows, so a pipelined run's announce/ingest
// of round t+1 visibly overlaps round t's estimate when the ring is
// exported as Chrome trace-event JSON (RenderChromeTrace) and opened in
// chrome://tracing or Perfetto.
//
// Concurrency design (the recorder is written from session threads,
// ingest workers and — for in-flight marks — cleared from either):
//   * The ring is a seqlock-per-slot MPMC structure: writers claim a slot
//     with one relaxed fetch_add, invalidate its sequence, store the
//     fields, then publish the sequence with release order. Readers
//     validate the sequence before and after copying; a torn slot is
//     skipped, never misread. All slot fields are relaxed atomics, so the
//     scheme is data-race-free under TSan, not just "benign".
//   * Recording never allocates, never locks, never blocks: ~9 relaxed
//     stores per event. At 7 events per round the recorder costs nothing
//     next to a round's ingest work (gated by bench_obs_stages'
//     recorder_ratio >= 0.95).
//   * The ring overwrites oldest-first when full; Snapshot() reports how
//     many events have been overwritten (`dropped`).
//
// In-flight marks: BeginStage publishes "this track entered this stage at
// T"; the matching Record (or EndStage on a failure path) clears it. The
// health model (obs/health.h) reads these to catch a round that *never
// finishes* a stage — the one thing a completed-event ring cannot show.
#ifndef LDPIDS_OBS_FLIGHT_RECORDER_H_
#define LDPIDS_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/stage_trace.h"

namespace ldpids::obs {

// One completed stage of one round, copied out of the ring.
struct RoundEvent {
  uint32_t track = 0;
  Stage stage = Stage::kAnnounce;
  uint64_t round_index = 0;
  uint64_t t_start_ns = 0;
  uint64_t t_end_ns = 0;
  uint64_t reports = 0;  // accepted reports (set on the fold/merge events)
  uint64_t drops = 0;    // rejected/dropped packets of the round
};

// One stage currently in flight on a track (begun, not yet recorded).
struct InFlightStage {
  uint32_t track = 0;
  Stage stage = Stage::kAnnounce;
  uint64_t round_index = 0;
  uint64_t t_start_ns = 0;
};

struct FlightRecorderSnapshot {
  // Track names by id; closed[i] is true once the owning session ended
  // (destroyed or failed) — health checks skip closed tracks.
  std::vector<std::string> tracks;
  std::vector<bool> closed;
  // Oldest to newest. Events being written concurrently with the
  // snapshot are skipped, not torn.
  std::vector<RoundEvent> events;
  std::vector<InFlightStage> in_flight;
  uint64_t total_recorded = 0;  // lifetime events, including overwritten
  uint64_t dropped = 0;         // overwritten by ring wraparound
};

class FlightRecorder {
 public:
  // `capacity` is rounded up to a power of two; at ~7 events per round
  // the default keeps the last ~1170 rounds.
  explicit FlightRecorder(std::size_t capacity = 8192);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Registers a named track (mutex-protected; once per session, off the
  // hot path). Names need not be unique — ids are.
  uint32_t RegisterTrack(const std::string& name);
  // Marks a track closed: its rounds are over, so the health model must
  // not read its silence as a stall. Idempotent.
  void CloseTrack(uint32_t track);

  // Records one completed stage window. Also clears the track's matching
  // in-flight mark (if any). Wait-free.
  void Record(uint32_t track, Stage stage, uint64_t round_index,
              uint64_t t_start_ns, uint64_t t_end_ns, uint64_t reports = 0,
              uint64_t drops = 0);

  // Publishes/clears the "entered stage, not done yet" mark. A track has
  // at most one in-flight mark per stage (distinct stages of different
  // rounds may overlap under pipelining — e.g. announce of round t+1
  // while transport of round t runs — and land in distinct cells).
  void BeginStage(uint32_t track, Stage stage, uint64_t round_index,
                  uint64_t now_ns);
  void EndStage(uint32_t track, Stage stage);

  // Consistent copy: events oldest-first, torn slots skipped.
  FlightRecorderSnapshot Snapshot() const;

  std::size_t capacity() const { return slots_.size(); }
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  // All fields relaxed atomics; `seq` orders them (0 = empty/in-write,
  // otherwise 1-based ticket of the event occupying the slot).
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint32_t> track{0};
    std::atomic<uint32_t> stage{0};
    std::atomic<uint64_t> round_index{0};
    std::atomic<uint64_t> t_start_ns{0};
    std::atomic<uint64_t> t_end_ns{0};
    std::atomic<uint64_t> reports{0};
    std::atomic<uint64_t> drops{0};
  };

  // Per-track state; pointers stay stable (unique_ptr in a vector).
  struct TrackState {
    std::string name;
    std::atomic<bool> closed{false};
    // start_ns == 0 means "not in flight".
    struct Cell {
      std::atomic<uint64_t> start_ns{0};
      std::atomic<uint64_t> round_index{0};
    };
    Cell in_flight[kNumStages];
  };

  // Lock-free on the hot path: RegisterTrack publishes into a fixed
  // pointer table (release), Record/BeginStage/EndStage read it with a
  // bounds check against the published count (acquire). 1024 sessions
  // per process is far beyond anything the fleet harness spins up.
  static constexpr std::size_t kMaxTracks = 1024;

  TrackState* track_state(uint32_t track) const {
    if (track >= track_count_.load(std::memory_order_acquire)) return nullptr;
    return track_table_[track].load(std::memory_order_acquire);
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<uint64_t> next_{0};  // lifetime event count / next ticket

  mutable std::mutex tracks_mu_;  // serializes RegisterTrack only
  std::vector<std::unique_ptr<TrackState>> tracks_;  // owns TrackStates
  std::atomic<TrackState*> track_table_[kMaxTracks] = {};
  std::atomic<uint32_t> track_count_{0};
};

// Chrome trace-event JSON (the "JSON Array Format" wrapped in an object):
//   {"traceEvents": [
//      {"name":"estimate","cat":"round","ph":"X","ts":...,"dur":...,
//       "pid":1,"tid":<track>,"args":{"round":N,"reports":N,"drops":N}},
//      {"name":"thread_name","ph":"M",...}  (one per track)
//   ], "displayTimeUnit":"ms"}
// `ts`/`dur` are microseconds (Chrome's unit), rebased so the oldest
// event starts at 0. Load the output in chrome://tracing or
// https://ui.perfetto.dev to see pipelined stage overlap per session.
std::string RenderChromeTrace(const FlightRecorderSnapshot& snap);

}  // namespace ldpids::obs

#endif  // LDPIDS_OBS_FLIGHT_RECORDER_H_
