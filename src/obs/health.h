// Stall-detecting health model over the flight recorder.
//
// "Healthy" for a streaming LDP aggregator is not "the process responds"
// — a wedged ingest worker leaves the process perfectly responsive while
// releases silently stop. The model instead watches the flight
// recorder's event stream and declares a session unhealthy when it stops
// *progressing*:
//
//   * in-flight stall — a stage was begun (BeginStage) and has now been
//     running longer than max(min_stall, multiplier * rolling-p99 of
//     that track+stage's completed durations);
//   * silence stall — an open track's newest completed round is older
//     than the same threshold derived from its recent round cadence.
//
// Thresholds are relative to each session's own recent behavior, so a
// slow-cadence session (60 s rounds) is not flagged by a fast session's
// standards, and a fast session's wedge is caught in seconds instead of
// after a fixed generic timeout. Closed tracks (session destroyed or
// failed) are exempt; the floor `min_stall_ns` keeps startup jitter and
// tiny-sample p99s from causing flaps.
//
// HealthModel::Update() is called by the Watchdog thread (or a test, or
// a /healthz handler) — never by the data plane. Results surface as:
//   * gauges: ldpids_health_stalled_sessions, ldpids_health_up
//   * the HealthReport consumed by the /healthz endpoint (200/503).
//
// The clock is injectable so tests can stage a stall without sleeping.
#ifndef LDPIDS_OBS_HEALTH_H_
#define LDPIDS_OBS_HEALTH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace ldpids::obs {

struct HealthOptions {
  // A stage/round is stalled when its age exceeds
  // max(min_stall_ns, stall_multiplier * rolling_p99).
  double stall_multiplier = 8.0;
  uint64_t min_stall_ns = 2ull * 1000 * 1000 * 1000;  // 2 s floor
  // Completed durations retained per (track, stage) for the p99.
  std::size_t duration_window = 64;
  // Rounds a track must complete before silence stalls apply (in-flight
  // stalls apply immediately — a begun stage carries its own evidence).
  std::size_t min_rounds_for_silence = 3;
  // Injectable steady clock; defaults to NowNs.
  std::function<uint64_t()> now;
};

struct StallFinding {
  std::string session;
  std::string stage;      // stage name, or "round_gap" for silence stalls
  uint64_t round_index = 0;
  uint64_t age_ns = 0;        // how long it has been stuck
  uint64_t threshold_ns = 0;  // the limit it blew through
};

struct HealthReport {
  bool live = true;      // process-level: always true once constructed
  bool ready = true;     // no session stalled
  uint64_t checked_at_ns = 0;
  std::size_t open_sessions = 0;
  std::vector<StallFinding> stalls;

  // {"live":true,"ready":false,"open_sessions":N,"stalls":[...]}
  std::string ToJson() const;
};

class HealthModel {
 public:
  // `registry` may be null (no gauges published); `recorder` must
  // outlive the model.
  HealthModel(MetricsRegistry* registry, const FlightRecorder* recorder,
              HealthOptions opts = {});

  // Pulls events recorded since the last call into the rolling windows,
  // evaluates every open track, publishes gauges, and returns the
  // report. Thread-safe (serialized internally) but designed for one
  // poller — the Watchdog or a test.
  HealthReport Update();

  // Most recent report without re-evaluating (for cheap /healthz reads
  // between watchdog ticks). Falls back to Update() before first run.
  HealthReport LastReport();

 private:
  struct TrackModel {
    DurationWindow stage_durations[kNumStages];
    DurationWindow round_gaps;       // t_end deltas of completed rounds
    uint64_t newest_end_ns = 0;      // newest completed event end
    uint64_t newest_round = 0;
    std::size_t rounds_seen = 0;
  };

  uint64_t StallThreshold(const DurationWindow& window) const;

  MetricsRegistry* registry_;
  const FlightRecorder* recorder_;
  HealthOptions opts_;

  std::mutex mu_;
  uint64_t consumed_events_ = 0;  // recorder tickets already folded in
  std::map<uint32_t, TrackModel> tracks_;
  HealthReport last_;
  bool has_report_ = false;
};

// Background poller: calls model->Update() every `period_ms` until
// destroyed. Owns nothing else; destruction joins promptly.
class Watchdog {
 public:
  Watchdog(HealthModel* model, uint64_t period_ms = 500);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

 private:
  HealthModel* model_;
  uint64_t period_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace ldpids::obs

#endif  // LDPIDS_OBS_HEALTH_H_
