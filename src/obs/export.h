// Exporters for MetricsSnapshot: Prometheus-style text exposition and a
// structured JSON document. Both render from a snapshot (never a live
// registry), so exporting costs the data plane nothing beyond the
// Snapshot() copy.
#ifndef LDPIDS_OBS_EXPORT_H_
#define LDPIDS_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace ldpids::obs {

// Prometheus text exposition (version 0.0.4 shape):
//   # TYPE ldpids_frames_total counter
//   ldpids_frames_total{session="lba0"} 42
// Histograms emit cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count`, with `le` in nanoseconds and a final `+Inf` bucket. Output
// order is the snapshot's (name, labels) order — deterministic.
std::string RenderPrometheus(const MetricsSnapshot& snap);

// Structured JSON snapshot:
//   {"ts_unix_ms": N, "seq": N,
//    "counters": [{"name": ..., "labels": {...}, "value": N}, ...],
//    "gauges": [...],
//    "histograms": [{"name": ..., "labels": {...}, "count": N,
//                    "sum_ns": N, "p50_ns": N, "p99_ns": N,
//                    "buckets": [{"le_ns": N, "count": N}, ...]}, ...]}
// Empty histogram buckets are elided; quantiles are precomputed so
// downstream tooling (run_benches.sh, check_bench_regression.py) can
// consume stage latencies without reimplementing the interpolation.
std::string RenderJson(const MetricsSnapshot& snap);

}  // namespace ldpids::obs

#endif  // LDPIDS_OBS_EXPORT_H_
