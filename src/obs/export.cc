#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace ldpids::obs {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

// `name{labels}` or bare `name`; `extra` ("le=\"...\"") is appended to
// the label list when non-empty.
void AppendSeries(std::string* out, const std::string& name,
                  const Labels& labels, const std::string& extra) {
  *out += name;
  std::string rendered = RenderLabels(labels);
  if (!rendered.empty() || !extra.empty()) {
    *out += '{';
    *out += rendered;
    if (!rendered.empty() && !extra.empty()) *out += ',';
    *out += extra;
    *out += '}';
  }
  *out += ' ';
}

void AppendTypeHeader(std::string* out, std::string* last_name,
                      const std::string& name, const char* type) {
  if (name == *last_name) return;
  *last_name = name;
  *out += "# TYPE ";
  *out += name;
  *out += ' ';
  *out += type;
  *out += '\n';
}

void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendJsonLabels(std::string* out, const Labels& labels) {
  *out += "\"labels\":{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) *out += ',';
    first = false;
    AppendJsonString(out, key);
    *out += ':';
    AppendJsonString(out, value);
  }
  *out += '}';
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snap) {
  std::string out;
  std::string last_name;
  for (const auto& c : snap.counters) {
    AppendTypeHeader(&out, &last_name, c.name, "counter");
    AppendSeries(&out, c.name, c.labels, "");
    AppendU64(&out, c.value);
    out += '\n';
  }
  for (const auto& g : snap.gauges) {
    AppendTypeHeader(&out, &last_name, g.name, "gauge");
    AppendSeries(&out, g.name, g.labels, "");
    AppendI64(&out, g.value);
    out += '\n';
  }
  for (const auto& h : snap.histograms) {
    AppendTypeHeader(&out, &last_name, h.name, "histogram");
    uint64_t cumulative = 0;
    for (std::size_t k = 0; k + 1 < Histogram::kNumBuckets; ++k) {
      if (h.buckets[k] == 0) continue;  // elide empty buckets
      cumulative += h.buckets[k];
      std::string le = "le=\"";
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%" PRIu64,
                    Histogram::BucketUpperBound(k));
      le += buf;
      le += '"';
      AppendSeries(&out, h.name + "_bucket", h.labels, le);
      AppendU64(&out, cumulative);
      out += '\n';
    }
    // Terminal +Inf bucket (covers the open-ended top bucket) equals
    // _count, always emitted.
    AppendSeries(&out, h.name + "_bucket", h.labels, "le=\"+Inf\"");
    AppendU64(&out, h.count);
    out += '\n';
    AppendSeries(&out, h.name + "_sum", h.labels, "");
    AppendU64(&out, h.sum);
    out += '\n';
    AppendSeries(&out, h.name + "_count", h.labels, "");
    AppendU64(&out, h.count);
    out += '\n';
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snap) {
  // ts_unix_ms + seq lead the document so scraped snapshots can be
  // ordered (and counter deltas rated) offline without trusting the
  // scraper's clock or delivery order.
  std::string out = "{\"ts_unix_ms\":";
  AppendU64(&out, snap.ts_unix_ms);
  out += ",\"seq\":";
  AppendU64(&out, snap.seq);
  out += ",\"counters\":[";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, c.name);
    out += ',';
    AppendJsonLabels(&out, c.labels);
    out += ",\"value\":";
    AppendU64(&out, c.value);
    out += '}';
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& g : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, g.name);
    out += ',';
    AppendJsonLabels(&out, g.labels);
    out += ",\"value\":";
    AppendI64(&out, g.value);
    out += '}';
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, h.name);
    out += ',';
    AppendJsonLabels(&out, h.labels);
    out += ",\"count\":";
    AppendU64(&out, h.count);
    out += ",\"sum_ns\":";
    AppendU64(&out, h.sum);
    out += ",\"p50_ns\":";
    AppendU64(&out, h.Quantile(0.50));
    out += ",\"p99_ns\":";
    AppendU64(&out, h.Quantile(0.99));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t k = 0; k < Histogram::kNumBuckets; ++k) {
      if (h.buckets[k] == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += "{\"le_ns\":";
      AppendU64(&out, Histogram::BucketUpperBound(k));
      out += ",\"count\":";
      AppendU64(&out, h.buckets[k]);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace ldpids::obs
