// Per-round pipeline stage tracing.
//
// The serving data plane processes each round through a fixed sequence
// of stages; under pipelining (pipeline_depth >= 2) round t+1's
// transport overlaps round t's estimation, so per-stage durations are
// the only way to see where a deployment's time actually goes. Each
// stage gets one `ldpids_stage_duration_ns` histogram instance labeled
// {stage=..., session=...}; a StageSet caches the eight histogram
// pointers so recording a duration is a single Observe.
#ifndef LDPIDS_OBS_STAGE_TRACE_H_
#define LDPIDS_OBS_STAGE_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace ldpids::obs {

// One pipeline stage of a round's life, in data-plane order.
enum class Stage : uint8_t {
  kAnnounce = 0,      // mechanism announces the round to clients
  kTransportRtt,      // client round-trip outside aggregator compute
  kFrameDecode,       // wire frames -> packets (socket recv drains)
  kArenaDecode,       // packets -> columnar ReportArena rows
  kShardFold,         // arena slices folded into per-shard sketches
  kMerge,             // shard sketches merged into the round sketch
  kSketchMerge,       // children's partial sketches folded at a tree root
  kEstimate,          // sketch -> frequency estimate vector
  kPostProcess,       // mechanism post-processing + release publication
};
inline constexpr std::size_t kNumStages = 9;

// Canonical label value for a stage ("announce", "transport_rtt", ...).
const char* StageName(Stage stage);

// The metric family every stage duration lands in.
inline constexpr char kStageDurationMetric[] = "ldpids_stage_duration_ns";

// Caches the per-stage histogram handles for one session label so the
// hot path never touches the registry mutex. Null-registry constructed
// sets are inert: Record() is a no-op, so call sites don't branch.
class StageSet {
 public:
  StageSet() = default;
  // Registers all kNumStages histograms labeled {session=session_label,
  // stage=<name>} (session label omitted when empty).
  StageSet(MetricsRegistry* registry, const std::string& session_label);

  void Record(Stage stage, uint64_t duration_ns) {
    Histogram* h = histograms_[static_cast<std::size_t>(stage)];
    if (h != nullptr) h->Observe(duration_ns);
  }

  bool enabled() const { return histograms_[0] != nullptr; }

 private:
  Histogram* histograms_[kNumStages] = {};
};

// RAII wall-clock timer recording into one stage on destruction.
class StageTimer {
 public:
  StageTimer(StageSet* set, Stage stage)
      : set_(set), stage_(stage), start_ns_(NowNs()) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() {
    if (set_ != nullptr) set_->Record(stage_, NowNs() - start_ns_);
  }

  uint64_t elapsed_ns() const { return NowNs() - start_ns_; }

 private:
  StageSet* set_;
  Stage stage_;
  uint64_t start_ns_;
};

}  // namespace ldpids::obs

#endif  // LDPIDS_OBS_STAGE_TRACE_H_
