#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace ldpids::obs {

namespace {

Labels SortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

// Registry map key: name and rendered labels separated by a unit
// separator that cannot appear in a metric name.
std::string EntryKey(const std::string& name, const Labels& sorted) {
  return name + '\x1f' + RenderLabels(sorted);
}

}  // namespace

std::string RenderLabels(const Labels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ',';
    out += key;
    out += "=\"";
    for (char c : value) {
      // Prometheus label-value escaping.
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  return out;
}

uint64_t HistogramSample::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based; ceil so p100 is the max
  // bucket and p0 the min.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (std::size_t k = 0; k < Histogram::kNumBuckets; ++k) {
    if (buckets[k] == 0) continue;
    if (seen + buckets[k] < rank) {
      seen += buckets[k];
      continue;
    }
    if (k == 0) return 0;
    // Interpolate linearly inside [2^(k-1), 2^k) by the rank's position
    // within this bucket's observations.
    double lo = static_cast<double>(uint64_t{1} << (k - 1));
    double hi = static_cast<double>(Histogram::BucketUpperBound(k));
    double frac =
        static_cast<double>(rank - seen) / static_cast<double>(buckets[k]);
    return static_cast<uint64_t>(lo + frac * (hi - lo));
  }
  return 0;
}

namespace {

template <typename Sample>
const Sample* FindSample(const std::vector<Sample>& samples,
                         const std::string& name, const Labels& labels) {
  Labels sorted = SortedLabels(labels);
  for (const auto& s : samples) {
    if (s.name == name && s.labels == sorted) return &s;
  }
  return nullptr;
}

}  // namespace

const CounterSample* MetricsSnapshot::FindCounter(const std::string& name,
                                                  const Labels& labels) const {
  return FindSample(counters, name, labels);
}

const HistogramSample* MetricsSnapshot::FindHistogram(
    const std::string& name, const Labels& labels) const {
  return FindSample(histograms, name, labels);
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& name,
                                                  const Labels& labels,
                                                  Kind kind) {
  Labels sorted = SortedLabels(labels);
  std::string key = EntryKey(name, sorted);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    entry.name = name;
    entry.labels = std::move(sorted);
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(std::move(key), std::move(entry)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + name +
                           "' registered with conflicting types");
  }
  return it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  return *GetEntry(name, labels, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  return *GetEntry(name, labels, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  return *GetEntry(name, labels, Kind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.ts_unix_ms = UnixMillis();
  snap.seq = snapshot_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : entries_) {
    (void)key;
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.push_back(
            {entry.name, entry.labels, entry.counter->value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({entry.name, entry.labels, entry.gauge->value()});
        break;
      case Kind::kHistogram: {
        HistogramSample s;
        s.name = entry.name;
        s.labels = entry.labels;
        s.count = entry.histogram->count();
        s.sum = entry.histogram->sum();
        for (std::size_t k = 0; k < Histogram::kNumBuckets; ++k) {
          s.buckets[k] = entry.histogram->bucket(k);
        }
        snap.histograms.push_back(std::move(s));
        break;
      }
    }
  }
  return snap;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t UnixMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace ldpids::obs
