#include "transport/frame.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fo/wire.h"

namespace ldpids::transport {

namespace {

constexpr uint8_t kMagic0 = 0x4C;  // 'L'
constexpr uint8_t kMagic1 = 0xDF;
constexpr uint8_t kVersion = 1;
constexpr std::size_t kHeaderSize = 24;
constexpr std::size_t kChecksumSize = 4;
constexpr std::size_t kLengthOffset = 20;

}  // namespace

const char* FrameErrorName(FrameError error) {
  switch (error) {
    case FrameError::kOk: return "ok";
    case FrameError::kIncomplete: return "incomplete";
    case FrameError::kBadMagic: return "bad magic";
    case FrameError::kBadVersion: return "bad version";
    case FrameError::kBadKind: return "bad kind";
    case FrameError::kOversize: return "payload oversize";
    case FrameError::kChecksumMismatch: return "checksum mismatch";
    case FrameError::kBadControl: return "bad control payload";
  }
  return "?";
}

std::size_t EncodedFrameSize(std::size_t payload_size) {
  return kHeaderSize + payload_size + kChecksumSize;
}

Frame MakeDataFrame(uint64_t session_id, uint64_t timestamp,
                    PayloadRef payload) {
  Frame frame;
  frame.session_id = session_id;
  frame.timestamp = timestamp;
  frame.kind = FrameKind::kData;
  frame.payload = std::move(payload);
  return frame;
}

Frame MakeEndRoundFrame(uint64_t session_id, uint64_t timestamp,
                        uint64_t expected_data_frames) {
  Frame frame;
  frame.session_id = session_id;
  frame.timestamp = timestamp;
  frame.kind = FrameKind::kEndRound;
  std::vector<uint8_t> bytes;
  PutU64Le(&bytes, expected_data_frames);
  frame.payload = std::move(bytes);
  return frame;
}

Frame MakePartialSketchFrame(uint64_t session_id, uint64_t timestamp,
                             PayloadRef payload) {
  Frame frame;
  frame.session_id = session_id;
  frame.timestamp = timestamp;
  frame.kind = FrameKind::kPartialSketch;
  frame.payload = std::move(payload);
  return frame;
}

uint64_t EndRoundExpected(const Frame& frame) {
  if (frame.kind != FrameKind::kEndRound || frame.payload.size() != 8) {
    throw std::invalid_argument("not an end-of-round frame");
  }
  return GetU64Le(frame.payload.data());
}

void AppendEncodedFrame(const Frame& frame, std::vector<uint8_t>* out) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw std::invalid_argument("frame payload exceeds kMaxFramePayload");
  }
  const std::size_t start = out->size();
  out->reserve(start + EncodedFrameSize(frame.payload.size()));
  out->push_back(kMagic0);
  out->push_back(kMagic1);
  out->push_back(kVersion);
  out->push_back(static_cast<uint8_t>(frame.kind));
  PutU64Le(out, frame.session_id);
  PutU64Le(out, frame.timestamp);
  PutU32Le(out, static_cast<uint32_t>(frame.payload.size()));
  out->insert(out->end(), frame.payload.begin(), frame.payload.end());
  PutU32Le(out, WireChecksum(out->data() + start, out->size() - start));
}

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  std::vector<uint8_t> out;
  AppendEncodedFrame(frame, &out);
  return out;
}

namespace {

// Validates the fixed prefix field by field so corruption is detected at
// the earliest byte that can prove it — resync then costs one skip, not a
// wait for bytes that never arrive. On kOk the frame is structurally
// complete ([0, *total) buffered, prefix fields valid); the checksum and
// the control-payload shape are NOT yet checked — they follow in exactly
// that order, matching the classification of the original one-shot
// decoder (a frame failing both counts as a checksum mismatch).
FrameError ParseFrameShape(const uint8_t* data, std::size_t size,
                           std::size_t* total) {
  if (size < 1) return FrameError::kIncomplete;
  if (data[0] != kMagic0) return FrameError::kBadMagic;
  if (size < 2) return FrameError::kIncomplete;
  if (data[1] != kMagic1) return FrameError::kBadMagic;
  if (size < 3) return FrameError::kIncomplete;
  if (data[2] != kVersion) return FrameError::kBadVersion;
  if (size < 4) return FrameError::kIncomplete;
  if (data[3] > static_cast<uint8_t>(FrameKind::kPartialSketch)) {
    return FrameError::kBadKind;
  }
  if (size < kHeaderSize) return FrameError::kIncomplete;
  const uint32_t payload_len = GetU32Le(data + kLengthOffset);
  if (payload_len > kMaxFramePayload) return FrameError::kOversize;
  *total = EncodedFrameSize(payload_len);
  if (size < *total) return FrameError::kIncomplete;
  return FrameError::kOk;
}

void FillFrameHeader(const uint8_t* data, Frame* out) {
  out->session_id = GetU64Le(data + 4);
  out->timestamp = GetU64Le(data + 12);
  out->kind = static_cast<FrameKind>(data[3]);
}

}  // namespace

FrameError TryDecodeFrame(const uint8_t* data, std::size_t size, Frame* out,
                          std::size_t* consumed) {
  std::size_t total = 0;
  const FrameError shape = ParseFrameShape(data, size, &total);
  if (shape != FrameError::kOk) return shape;
  const uint32_t stored = GetU32Le(data + total - kChecksumSize);
  if (stored != WireChecksum(data, total - kChecksumSize)) {
    return FrameError::kChecksumMismatch;
  }
  const std::size_t payload_len = total - kHeaderSize - kChecksumSize;
  if (data[3] == static_cast<uint8_t>(FrameKind::kEndRound) &&
      payload_len != 8) {
    return FrameError::kBadControl;
  }
  FillFrameHeader(data, out);
  // The standalone decoder borrows nothing: the caller's buffer may die
  // right after this returns, so the payload is copied into an owning ref.
  out->payload = std::vector<uint8_t>(data + kHeaderSize,
                                      data + kHeaderSize + payload_len);
  *consumed = total;
  return FrameError::kOk;
}

void FrameDecoder::Append(const uint8_t* data, std::size_t size) {
  std::memcpy(Reserve(size), data, size);
  Commit(size);
}

uint8_t* FrameDecoder::Reserve(std::size_t size) {
  if (block_ == nullptr) {
    block_ = pool_.Get(size);
    pos_ = end_ = 0;
  } else if (block_->size() - end_ < size) {
    const std::size_t unparsed = end_ - pos_;
    if (block_.use_count() == 1 && block_->size() >= unparsed + size) {
      // No payload still references the block: compact in place.
      std::memmove(block_->data(), block_->data() + pos_, unparsed);
    } else {
      // Outstanding payload refs pin the bytes (or the block is simply too
      // small): move the unparsed tail to a fresh pooled block. The old
      // block recycles when its last payload ref drops.
      std::shared_ptr<std::vector<uint8_t>> fresh =
          pool_.Get(unparsed + size);
      std::memcpy(fresh->data(), block_->data() + pos_, unparsed);
      block_ = std::move(fresh);
    }
    pos_ = 0;
    end_ = unparsed;
    cache_valid_ = false;  // offsets moved
  }
  return block_->data() + end_;
}

void FrameDecoder::Commit(std::size_t size) {
  end_ += size;
  cache_valid_ = false;
}

void FrameDecoder::BuildVerifiedRun() {
  verified_.clear();
  verified_idx_ = 0;
  cache_valid_ = true;
  if (block_ == nullptr) return;
  const uint8_t* base = block_->data();
  std::size_t cursor = pos_;
  while (cursor < end_) {
    std::size_t total = 0;
    if (ParseFrameShape(base + cursor, end_ - cursor, &total) !=
        FrameError::kOk) {
      break;  // incomplete tail or a corrupt byte: the step path takes over
    }
    verified_.push_back({cursor, total, false});
    cursor += total;
  }
  if (verified_.empty()) return;
  verify_datas_.clear();
  verify_sizes_.clear();
  for (const VerifiedFrame& v : verified_) {
    verify_datas_.push_back(base + v.offset);
    verify_sizes_.push_back(v.total);
  }
  verify_ok_.assign(verified_.size(), 0);
  // One batched checksum pass over the whole run — the same VerifyChecksums
  // entry the arena decoder uses (frame trailer layout matches the wire
  // envelope's: 4 checksum bytes over everything before them).
  VerifyChecksums(verify_datas_.data(), verify_sizes_.data(),
                  verified_.size(), verify_ok_.data());
  for (std::size_t i = 0; i < verified_.size(); ++i) {
    verified_[i].ok = verify_ok_[i] != 0;
  }
}

FrameError FrameDecoder::DecodeStep(bool have_verdict, bool checksum_ok,
                                    Frame* out, std::size_t* consumed) {
  const uint8_t* data = block_->data() + pos_;
  std::size_t total = 0;
  const FrameError shape = ParseFrameShape(data, end_ - pos_, &total);
  if (shape != FrameError::kOk) return shape;
  if (have_verdict ? !checksum_ok
                   : GetU32Le(data + total - kChecksumSize) !=
                         WireChecksum(data, total - kChecksumSize)) {
    return FrameError::kChecksumMismatch;
  }
  const std::size_t payload_len = total - kHeaderSize - kChecksumSize;
  if (data[3] == static_cast<uint8_t>(FrameKind::kEndRound) &&
      payload_len != 8) {
    return FrameError::kBadControl;
  }
  FillFrameHeader(data, out);
  // Zero-copy hand-off: the payload aliases the pooled block and keeps it
  // alive until consumed.
  out->payload = PayloadRef(block_, data + kHeaderSize, payload_len);
  *consumed = total;
  return FrameError::kOk;
}

bool FrameDecoder::Next(Frame* out) {
  while (pos_ < end_) {
    if (!cache_valid_) BuildVerifiedRun();
    // Resyncs may have advanced the cursor past cached entries.
    while (verified_idx_ < verified_.size() &&
           verified_[verified_idx_].offset < pos_) {
      ++verified_idx_;
    }
    const bool have_verdict = verified_idx_ < verified_.size() &&
                              verified_[verified_idx_].offset == pos_;
    const bool checksum_ok = have_verdict && verified_[verified_idx_].ok;
    if (have_verdict) ++verified_idx_;
    std::size_t consumed = 0;
    const FrameError err = DecodeStep(have_verdict, checksum_ok, out,
                                      &consumed);
    if (err == FrameError::kOk) {
      pos_ += consumed;
      ++stats_.frames;
      stats_.bytes += consumed;
      switch (out->kind) {
        case FrameKind::kData: ++stats_.data_frames; break;
        case FrameKind::kEndRound: ++stats_.end_round_frames; break;
        case FrameKind::kPartialSketch:
          ++stats_.partial_sketch_frames;
          break;
      }
      return true;
    }
    if (err == FrameError::kIncomplete) return false;
    // Hard reject at this offset: count the reason, skip one byte, rescan.
    switch (err) {
      case FrameError::kBadMagic: ++stats_.bad_magic; break;
      case FrameError::kBadVersion: ++stats_.bad_version; break;
      case FrameError::kBadKind: ++stats_.bad_kind; break;
      case FrameError::kOversize: ++stats_.oversize; break;
      case FrameError::kChecksumMismatch: ++stats_.checksum_mismatch; break;
      case FrameError::kBadControl: ++stats_.bad_control; break;
      case FrameError::kOk:
      case FrameError::kIncomplete: break;  // unreachable
    }
    ++pos_;
    ++stats_.skipped_bytes;
  }
  return false;
}

FrameStats& FrameStats::operator+=(const FrameStats& other) {
  frames += other.frames;
  data_frames += other.data_frames;
  end_round_frames += other.end_round_frames;
  partial_sketch_frames += other.partial_sketch_frames;
  bytes += other.bytes;
  bad_magic += other.bad_magic;
  bad_version += other.bad_version;
  bad_kind += other.bad_kind;
  oversize += other.oversize;
  checksum_mismatch += other.checksum_mismatch;
  bad_control += other.bad_control;
  skipped_bytes += other.skipped_bytes;
  return *this;
}

std::string FrameStats::ToString() const {
  char buf[240];
  std::snprintf(
      buf, sizeof(buf),
      "frames=%llu (data=%llu end_round=%llu partial_sketch=%llu) "
      "bytes=%llu errors=%llu "
      "(magic=%llu version=%llu kind=%llu oversize=%llu checksum=%llu "
      "control=%llu) skipped_bytes=%llu",
      static_cast<unsigned long long>(frames),
      static_cast<unsigned long long>(data_frames),
      static_cast<unsigned long long>(end_round_frames),
      static_cast<unsigned long long>(partial_sketch_frames),
      static_cast<unsigned long long>(bytes),
      static_cast<unsigned long long>(errors()),
      static_cast<unsigned long long>(bad_magic),
      static_cast<unsigned long long>(bad_version),
      static_cast<unsigned long long>(bad_kind),
      static_cast<unsigned long long>(oversize),
      static_cast<unsigned long long>(checksum_mismatch),
      static_cast<unsigned long long>(bad_control),
      static_cast<unsigned long long>(skipped_bytes));
  return buf;
}

}  // namespace ldpids::transport
