#include "transport/frame.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fo/wire.h"

namespace ldpids::transport {

namespace {

constexpr uint8_t kMagic0 = 0x4C;  // 'L'
constexpr uint8_t kMagic1 = 0xDF;
constexpr uint8_t kVersion = 1;
constexpr std::size_t kHeaderSize = 24;
constexpr std::size_t kChecksumSize = 4;
constexpr std::size_t kLengthOffset = 20;

}  // namespace

const char* FrameErrorName(FrameError error) {
  switch (error) {
    case FrameError::kOk: return "ok";
    case FrameError::kIncomplete: return "incomplete";
    case FrameError::kBadMagic: return "bad magic";
    case FrameError::kBadVersion: return "bad version";
    case FrameError::kBadKind: return "bad kind";
    case FrameError::kOversize: return "payload oversize";
    case FrameError::kChecksumMismatch: return "checksum mismatch";
    case FrameError::kBadControl: return "bad control payload";
  }
  return "?";
}

std::size_t EncodedFrameSize(std::size_t payload_size) {
  return kHeaderSize + payload_size + kChecksumSize;
}

Frame MakeDataFrame(uint64_t session_id, uint64_t timestamp,
                    std::vector<uint8_t> payload) {
  Frame frame;
  frame.session_id = session_id;
  frame.timestamp = timestamp;
  frame.kind = FrameKind::kData;
  frame.payload = std::move(payload);
  return frame;
}

Frame MakeEndRoundFrame(uint64_t session_id, uint64_t timestamp,
                        uint64_t expected_data_frames) {
  Frame frame;
  frame.session_id = session_id;
  frame.timestamp = timestamp;
  frame.kind = FrameKind::kEndRound;
  PutU64Le(&frame.payload, expected_data_frames);
  return frame;
}

uint64_t EndRoundExpected(const Frame& frame) {
  if (frame.kind != FrameKind::kEndRound || frame.payload.size() != 8) {
    throw std::invalid_argument("not an end-of-round frame");
  }
  return GetU64Le(frame.payload.data());
}

void AppendEncodedFrame(const Frame& frame, std::vector<uint8_t>* out) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw std::invalid_argument("frame payload exceeds kMaxFramePayload");
  }
  const std::size_t start = out->size();
  out->reserve(start + EncodedFrameSize(frame.payload.size()));
  out->push_back(kMagic0);
  out->push_back(kMagic1);
  out->push_back(kVersion);
  out->push_back(static_cast<uint8_t>(frame.kind));
  PutU64Le(out, frame.session_id);
  PutU64Le(out, frame.timestamp);
  PutU32Le(out, static_cast<uint32_t>(frame.payload.size()));
  out->insert(out->end(), frame.payload.begin(), frame.payload.end());
  PutU32Le(out, WireChecksum(out->data() + start, out->size() - start));
}

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  std::vector<uint8_t> out;
  AppendEncodedFrame(frame, &out);
  return out;
}

FrameError TryDecodeFrame(const uint8_t* data, std::size_t size, Frame* out,
                          std::size_t* consumed) {
  // Validate the fixed prefix field by field so corruption is detected at
  // the earliest byte that can prove it — resync then costs one skip, not
  // a wait for bytes that never arrive.
  if (size < 1) return FrameError::kIncomplete;
  if (data[0] != kMagic0) return FrameError::kBadMagic;
  if (size < 2) return FrameError::kIncomplete;
  if (data[1] != kMagic1) return FrameError::kBadMagic;
  if (size < 3) return FrameError::kIncomplete;
  if (data[2] != kVersion) return FrameError::kBadVersion;
  if (size < 4) return FrameError::kIncomplete;
  if (data[3] > static_cast<uint8_t>(FrameKind::kEndRound)) {
    return FrameError::kBadKind;
  }
  if (size < kHeaderSize) return FrameError::kIncomplete;
  const uint32_t payload_len = GetU32Le(data + kLengthOffset);
  if (payload_len > kMaxFramePayload) return FrameError::kOversize;
  const std::size_t total = EncodedFrameSize(payload_len);
  if (size < total) return FrameError::kIncomplete;
  const uint32_t stored = GetU32Le(data + total - kChecksumSize);
  if (stored != WireChecksum(data, total - kChecksumSize)) {
    return FrameError::kChecksumMismatch;
  }
  const FrameKind kind = static_cast<FrameKind>(data[3]);
  if (kind == FrameKind::kEndRound && payload_len != 8) {
    return FrameError::kBadControl;
  }
  out->session_id = GetU64Le(data + 4);
  out->timestamp = GetU64Le(data + 12);
  out->kind = kind;
  out->payload.assign(data + kHeaderSize, data + kHeaderSize + payload_len);
  *consumed = total;
  return FrameError::kOk;
}

void FrameDecoder::Append(const uint8_t* data, std::size_t size) {
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

bool FrameDecoder::Next(Frame* out) {
  while (pos_ < buffer_.size()) {
    std::size_t consumed = 0;
    const FrameError err =
        TryDecodeFrame(buffer_.data() + pos_, buffer_.size() - pos_, out,
                       &consumed);
    if (err == FrameError::kOk) {
      pos_ += consumed;
      ++stats_.frames;
      stats_.bytes += consumed;
      if (out->kind == FrameKind::kData) {
        ++stats_.data_frames;
      } else {
        ++stats_.end_round_frames;
      }
      return true;
    }
    if (err == FrameError::kIncomplete) return false;
    // Hard reject at this offset: count the reason, skip one byte, rescan.
    switch (err) {
      case FrameError::kBadMagic: ++stats_.bad_magic; break;
      case FrameError::kBadVersion: ++stats_.bad_version; break;
      case FrameError::kBadKind: ++stats_.bad_kind; break;
      case FrameError::kOversize: ++stats_.oversize; break;
      case FrameError::kChecksumMismatch: ++stats_.checksum_mismatch; break;
      case FrameError::kBadControl: ++stats_.bad_control; break;
      case FrameError::kOk:
      case FrameError::kIncomplete: break;  // unreachable
    }
    ++pos_;
    ++stats_.skipped_bytes;
  }
  return false;
}

FrameStats& FrameStats::operator+=(const FrameStats& other) {
  frames += other.frames;
  data_frames += other.data_frames;
  end_round_frames += other.end_round_frames;
  bytes += other.bytes;
  bad_magic += other.bad_magic;
  bad_version += other.bad_version;
  bad_kind += other.bad_kind;
  oversize += other.oversize;
  checksum_mismatch += other.checksum_mismatch;
  bad_control += other.bad_control;
  skipped_bytes += other.skipped_bytes;
  return *this;
}

std::string FrameStats::ToString() const {
  char buf[240];
  std::snprintf(
      buf, sizeof(buf),
      "frames=%llu (data=%llu end_round=%llu) bytes=%llu errors=%llu "
      "(magic=%llu version=%llu kind=%llu oversize=%llu checksum=%llu "
      "control=%llu) skipped_bytes=%llu",
      static_cast<unsigned long long>(frames),
      static_cast<unsigned long long>(data_frames),
      static_cast<unsigned long long>(end_round_frames),
      static_cast<unsigned long long>(bytes),
      static_cast<unsigned long long>(errors()),
      static_cast<unsigned long long>(bad_magic),
      static_cast<unsigned long long>(bad_version),
      static_cast<unsigned long long>(bad_kind),
      static_cast<unsigned long long>(oversize),
      static_cast<unsigned long long>(checksum_mismatch),
      static_cast<unsigned long long>(bad_control),
      static_cast<unsigned long long>(skipped_bytes));
  return buf;
}

}  // namespace ldpids::transport
