#include "transport/batch_file.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ldpids::transport {

FrameLogWriter::FrameLogWriter(const std::string& path,
                               std::size_t flush_bytes)
    : file_(std::fopen(path.c_str(), "wb")), flush_bytes_(flush_bytes) {
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open frame log for writing: " + path);
  }
  buffer_.reserve(flush_bytes_ + kMaxFramePayload);
}

FrameLogWriter::~FrameLogWriter() {
  try {
    Close();
  } catch (...) {
    // Destructor: a full disk must not escalate to std::terminate; losing
    // an unflushed tail on teardown is the caller's bug (call Close()).
  }
}

void FrameLogWriter::Send(const Frame& frame) {
  if (file_ == nullptr) {
    throw std::logic_error("frame log already closed");
  }
  const std::size_t before = buffer_.size();
  AppendEncodedFrame(frame, &buffer_);
  ++frames_written_;
  bytes_written_ += buffer_.size() - before;
  if (buffer_.size() >= flush_bytes_) Flush();
}

void FrameLogWriter::Flush() {
  if (file_ == nullptr || buffer_.empty()) return;
  if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
      buffer_.size()) {
    throw std::runtime_error("frame log write failed");
  }
  buffer_.clear();
  std::fflush(file_);
}

void FrameLogWriter::Close() {
  if (file_ == nullptr) return;
  Flush();
  std::fclose(file_);
  file_ = nullptr;
}

FrameStats ReplayFrameLog(const std::string& path,
                          const FrameHandler& handler,
                          std::size_t chunk_bytes) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw std::runtime_error("cannot open frame log for reading: " + path);
  }
  FrameDecoder decoder;
  const std::size_t chunk = chunk_bytes > 0 ? chunk_bytes : 1;
  Frame frame;
  for (;;) {
    // Read straight into the decoder's pooled block (same zero-copy intake
    // as the socket reader).
    const std::size_t n = std::fread(decoder.Reserve(chunk), 1, chunk, file);
    if (n == 0) break;
    decoder.Commit(n);
    while (decoder.Next(&frame)) handler(std::move(frame));
  }
  std::fclose(file);
  return decoder.stats();
}

}  // namespace ldpids::transport
