// Length-prefixed framing for LDP report streams.
//
// A wire report (fo/wire.h) is one self-contained datagram; a byte stream
// (TCP socket, append-only log file) needs boundaries on top. A `Frame`
// wraps one report — or one control marker — for transmission:
//
//   byte 0      magic 'L' (0x4C)
//   byte 1      magic 0xDF ("LDP frame")
//   byte 2      version (1)
//   byte 3      kind (0 = data, 1 = end-of-round marker)
//   bytes 4-11  session id (uint64, little-endian)
//   bytes 12-19 timestamp (uint64, little-endian; the serving layer puts
//               the session's round index here — a mechanism can run two
//               FO rounds at one mechanism timestamp, so the round index,
//               not the timestamp, is what keys reassembly)
//   bytes 20-23 payload length (uint32, little-endian)
//   bytes 24..  payload (data: one encoded wire report, opaque here;
//               end-of-round: uint64 LE count of data frames the sender
//               transmitted for the round)
//   last 4      checksum of everything before it (fo/wire.h WireChecksum)
//
// Decoding is stream-oriented and defensive in the style of fo/wire.h's
// `TryDecode*`: `TryDecodeFrame` is non-throwing and returns a typed
// `FrameError`, and `FrameDecoder` reassembles frames from arbitrary read
// chunks (split and merged TCP reads), resynchronizing past corrupt bytes
// instead of crashing or trusting an unchecksummed byte.
//
// Zero-copy: a decoded frame's payload is a PayloadRef aliasing the
// decoder's pooled receive block (util/buffer_pool.h) — no per-frame
// allocation or copy on the hot path. The block stays alive until the last
// payload referencing it is consumed, then recycles through the decoder's
// pool. Transports can skip the staging copy entirely by receiving straight
// into the decoder via Reserve()/Commit().
#ifndef LDPIDS_TRANSPORT_FRAME_H_
#define LDPIDS_TRANSPORT_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/buffer_pool.h"

namespace ldpids::transport {

enum class FrameKind : uint8_t {
  kData = 0,      // payload is one encoded wire report
  kEndRound = 1,  // payload is the round's transmitted data-frame count
  // Payload is one encoded partial sketch (fo/sketch_wire.h): an
  // aggregator node's resolved round aggregate, shipped up the merge
  // tree. The frame codec and RoundBuffer treat it exactly like data —
  // buffered under its round, deduplicated by PacketIdentity (the
  // emitting node id), late/early/duplicate handling unchanged — only
  // the consumer differs (the root merges instead of ingesting).
  kPartialSketch = 2,
};

struct Frame {
  uint64_t session_id = 0;
  uint64_t timestamp = 0;  // round index in the serving integration
  FrameKind kind = FrameKind::kData;
  PayloadRef payload;
};

// Precise decode outcome. kOk is 0 so results can be truth-tested;
// kIncomplete means "valid so far, feed me more bytes", every later value
// is a hard reject at the current offset.
enum class FrameError : uint8_t {
  kOk = 0,
  kIncomplete,         // prefix valid but the frame is not fully buffered
  kBadMagic,
  kBadVersion,
  kBadKind,
  kOversize,           // declared payload length above the decoder's limit
  kChecksumMismatch,
  kBadControl,         // end-of-round payload is not exactly 8 bytes
};

const char* FrameErrorName(FrameError error);

// Hard ceiling on payload bytes a decoder will buffer for one frame; a
// garbage length field must not turn into an unbounded allocation.
constexpr std::size_t kMaxFramePayload = std::size_t{1} << 20;

// Encoded size of a frame carrying `payload_size` payload bytes.
std::size_t EncodedFrameSize(std::size_t payload_size);

// Convenience constructors for the frame kinds.
Frame MakeDataFrame(uint64_t session_id, uint64_t timestamp,
                    PayloadRef payload);
Frame MakeEndRoundFrame(uint64_t session_id, uint64_t timestamp,
                        uint64_t expected_data_frames);
Frame MakePartialSketchFrame(uint64_t session_id, uint64_t timestamp,
                             PayloadRef payload);

// Data-frame count carried by an end-of-round marker. Throws
// std::invalid_argument on a non-marker frame (a decoded marker is always
// well-formed; TryDecodeFrame validates the payload shape).
uint64_t EndRoundExpected(const Frame& frame);

// Appends the encoded frame to `*out` (batched writers fill one buffer
// with many frames before a single send/write). Throws
// std::invalid_argument if the payload exceeds kMaxFramePayload.
void AppendEncodedFrame(const Frame& frame, std::vector<uint8_t>* out);
std::vector<uint8_t> EncodeFrame(const Frame& frame);

// Attempts to decode one frame from the start of [data, data + size).
// On kOk, `*out` holds the frame and `*consumed` the encoded size.
// On kIncomplete, nothing is consumed: append more bytes and retry.
// On any other error, the byte at offset 0 is bad; skip it and rescan.
FrameError TryDecodeFrame(const uint8_t* data, std::size_t size, Frame* out,
                          std::size_t* consumed);

// Per-stream decode accounting (one decoder = one connection or one log).
struct FrameStats {
  uint64_t frames = 0;           // well-formed frames delivered
  uint64_t data_frames = 0;
  uint64_t end_round_frames = 0;
  uint64_t partial_sketch_frames = 0;
  uint64_t bytes = 0;            // bytes consumed by well-formed frames
  uint64_t bad_magic = 0;        // resync skips by first bad byte's reason
  uint64_t bad_version = 0;
  uint64_t bad_kind = 0;
  uint64_t oversize = 0;
  uint64_t checksum_mismatch = 0;
  uint64_t bad_control = 0;
  uint64_t skipped_bytes = 0;    // total bytes discarded while resyncing

  uint64_t errors() const {
    return bad_magic + bad_version + bad_kind + oversize +
           checksum_mismatch + bad_control;
  }
  // Every decode outcome: delivered frames plus resync skips by reason
  // (aggregation parity with the service-side stats structs).
  uint64_t total() const { return frames + errors(); }
  FrameStats& operator+=(const FrameStats& other);
  std::string ToString() const;
};

// Incremental frame reassembly over a byte stream. Feed it whatever the
// transport produced — single bytes, half frames, ten frames in one read —
// and pull complete frames out. Corruption never throws: the decoder
// counts the typed reason, skips one byte, and rescans for the next valid
// frame, so one flipped byte costs at most the frame it hit.
//
// Internally the stream accumulates in pooled blocks (util/buffer_pool.h)
// and emitted payloads alias the block they arrived in — zero copies after
// the bytes enter the decoder (and zero before it, with Reserve/Commit).
// After each intake the decoder scans the structurally complete frames
// ahead and verifies their checksums in one batched VerifyChecksums pass
// (fo/wire.h); Next() then serves the verified run without touching the
// payload bytes again. Any frame that fails the batch — or any resync —
// falls back to the exact per-frame path, so error classification and
// stats are byte-for-byte those of the incremental decoder.
class FrameDecoder {
 public:
  FrameDecoder() = default;

  void Append(const uint8_t* data, std::size_t size);
  void Append(const std::vector<uint8_t>& bytes) {
    Append(bytes.data(), bytes.size());
  }

  // Zero-copy intake: Reserve(n) returns a scratch span of at least n
  // bytes for the transport to read into (recv, fread); Commit(k) then
  // publishes the k bytes actually written. Reserve without Commit is
  // idempotent; a commit larger than the last reservation is undefined.
  uint8_t* Reserve(std::size_t size);
  void Commit(std::size_t size);

  // Extracts the next complete frame, advancing past any corrupt bytes in
  // front of it. Returns false when the buffer holds no complete frame
  // (call Append and retry). The frame's payload aliases decoder-owned
  // storage and remains valid for the payload's lifetime (it keeps the
  // block alive), independent of further decoder use.
  bool Next(Frame* out);

  const FrameStats& stats() const { return stats_; }
  // Bytes buffered but not yet decoded (an in-flight partial frame).
  std::size_t pending_bytes() const { return end_ - pos_; }
  // Pool accounting, for tests pinning the no-allocation steady state.
  const BufferPool& pool() const { return pool_; }

 private:
  // One structurally complete frame found ahead of the cursor, with its
  // batched checksum verdict.
  struct VerifiedFrame {
    std::size_t offset = 0;  // into the current block
    std::size_t total = 0;   // encoded size
    bool ok = false;         // checksum matched in the batch pass
  };

  // Re-scan [pos_, end_) for structurally complete frames and batch-verify
  // their checksums. Valid until the cursor leaves the run or bytes move.
  void BuildVerifiedRun();
  // One decode attempt at pos_ — TryDecodeFrame's exact logic, with the
  // checksum comparison optionally replaced by the batched verdict and the
  // payload emitted as a block-aliasing PayloadRef.
  FrameError DecodeStep(bool have_verdict, bool checksum_ok, Frame* out,
                        std::size_t* consumed);

  BufferPool pool_;
  std::shared_ptr<std::vector<uint8_t>> block_;
  std::size_t pos_ = 0;  // consumed prefix within block_
  std::size_t end_ = 0;  // valid bytes within block_
  std::vector<VerifiedFrame> verified_;
  std::size_t verified_idx_ = 0;
  bool cache_valid_ = false;
  // Scratch for the batched checksum pass; reused across intakes.
  std::vector<const uint8_t*> verify_datas_;
  std::vector<std::size_t> verify_sizes_;
  std::vector<uint8_t> verify_ok_;
  FrameStats stats_;
};

// Destination of decoded frames (a RoundBuffer demux, a recorder, a test
// probe). Invoked by transports on their own threads; implementations
// synchronize internally.
using FrameHandler = std::function<void(Frame&&)>;

// Sender half shared by every transport: the loopback/TCP socket client,
// the batch-file log writer, and in-process test doubles. Send may buffer;
// Flush pushes everything to the peer/disk.
class FrameSender {
 public:
  virtual ~FrameSender() = default;
  virtual void Send(const Frame& frame) = 0;
  virtual void Flush() {}
};

}  // namespace ldpids::transport

#endif  // LDPIDS_TRANSPORT_FRAME_H_
