// Batch-file transport: an append-only log of encoded frames.
//
// The writer side is a FrameSender, so anything that can talk to a socket
// can record to disk instead (or in addition — tests tee every frame they
// send). The reader side replays a recorded log into a FrameHandler in
// file order, which re-drives a server deterministically: same frames in,
// same releases out (pinned in tests/transport_test.cc). Recorded traffic
// is also the reproducer format for ingest-edge bugs — a crashing capture
// can be replayed under a debugger or a sanitizer byte for byte.
#ifndef LDPIDS_TRANSPORT_BATCH_FILE_H_
#define LDPIDS_TRANSPORT_BATCH_FILE_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "transport/frame.h"

namespace ldpids::transport {

// Appends encoded frames to a file through a batching buffer. Not
// thread-safe; one writer per log.
class FrameLogWriter : public FrameSender {
 public:
  // Creates/truncates `path` ("w" mode) — a frame log is one recording,
  // not a ring. Throws std::runtime_error if the file cannot be opened.
  explicit FrameLogWriter(const std::string& path,
                          std::size_t flush_bytes = 64 * 1024);
  ~FrameLogWriter() override;

  FrameLogWriter(const FrameLogWriter&) = delete;
  FrameLogWriter& operator=(const FrameLogWriter&) = delete;

  void Send(const Frame& frame) override;
  void Flush() override;
  // Flushes and closes the file; further Send calls throw.
  void Close();

  uint64_t frames_written() const { return frames_written_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::FILE* file_ = nullptr;
  std::vector<uint8_t> buffer_;
  std::size_t flush_bytes_;
  uint64_t frames_written_ = 0;
  uint64_t bytes_written_ = 0;
};

// Replays a frame log: reads `path` in `chunk_bytes` slices, runs them
// through a FrameDecoder (so a truncated or bit-flipped log degrades to
// typed error counts, never a crash) and hands every decoded frame to
// `handler` in file order. Returns the decode stats; corrupt or trailing
// partial bytes show up there as errors/skips. Throws std::runtime_error
// only if the file cannot be opened.
FrameStats ReplayFrameLog(const std::string& path,
                          const FrameHandler& handler,
                          std::size_t chunk_bytes = 64 * 1024);

}  // namespace ldpids::transport

#endif  // LDPIDS_TRANSPORT_BATCH_FILE_H_
