// Small shared POSIX socket helpers used by both the frame transport
// (transport/socket.cc) and the observability scrape server
// (obs/http_server.cc): errno-to-exception reporting, full-buffer send,
// and loopback listener setup with ephemeral-port resolution. Kept tiny
// on purpose — both servers own their accept/reader threading themselves;
// only the syscall boilerplate is worth sharing.
#ifndef LDPIDS_TRANSPORT_SOCKET_UTIL_H_
#define LDPIDS_TRANSPORT_SOCKET_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace ldpids::transport {

// Throws std::runtime_error("<what>: <strerror(errno)>").
[[noreturn]] void ThrowErrno(const std::string& what);

// Sends the whole buffer (retrying on EINTR and short sends) with
// MSG_NOSIGNAL, so a peer that closed mid-write surfaces as an exception
// instead of SIGPIPE. Throws on any other send error.
void SendAll(int fd, const uint8_t* data, std::size_t size);

// Creates a TCP listener bound to 127.0.0.1:`port` (0 picks an ephemeral
// port), with SO_REUSEADDR set and a listen backlog. Returns the listening
// fd and stores the resolved port in `*bound_port`. Throws on failure
// (the fd is closed before throwing).
int BindLoopbackListener(uint16_t port, uint16_t* bound_port);

}  // namespace ldpids::transport

#endif  // LDPIDS_TRANSPORT_SOCKET_UTIL_H_
