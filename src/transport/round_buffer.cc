#include "transport/round_buffer.h"

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <unordered_set>
#include <vector>

#include "fo/sketch_wire.h"
#include "fo/wire.h"
#include "obs/stats_feed.h"
#include "service/ingest.h"

namespace ldpids::transport {

const char* DeliverResultName(DeliverResult result) {
  switch (result) {
    case DeliverResult::kBuffered: return "buffered";
    case DeliverResult::kEndMarker: return "end marker";
    case DeliverResult::kClosedRound: return "closed round";
    case DeliverResult::kTooLate: return "too late";
    case DeliverResult::kTooEarly: return "too early";
  }
  return "?";
}

RoundBufferStats& RoundBufferStats::operator+=(const RoundBufferStats& other) {
  buffered += other.buffered;
  end_markers += other.end_markers;
  closed_round_drops += other.closed_round_drops;
  too_late_drops += other.too_late_drops;
  too_early_drops += other.too_early_drops;
  rounds_drained += other.rounds_drained;
  packets_drained += other.packets_drained;
  deadline_flushes += other.deadline_flushes;
  duplicate_frames += other.duplicate_frames;
  masked_losses += other.masked_losses;
  return *this;
}

std::string RoundBufferStats::ToString() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "buffered=%llu markers=%llu drained=%llu/%llu dropped=%llu "
      "(closed=%llu late=%llu early=%llu) duplicates=%llu "
      "deadline_flushes=%llu masked_losses=%llu",
      static_cast<unsigned long long>(buffered),
      static_cast<unsigned long long>(end_markers),
      static_cast<unsigned long long>(packets_drained),
      static_cast<unsigned long long>(rounds_drained),
      static_cast<unsigned long long>(dropped()),
      static_cast<unsigned long long>(closed_round_drops),
      static_cast<unsigned long long>(too_late_drops),
      static_cast<unsigned long long>(too_early_drops),
      static_cast<unsigned long long>(duplicate_frames),
      static_cast<unsigned long long>(deadline_flushes),
      static_cast<unsigned long long>(masked_losses));
  return buf;
}

uint64_t PacketIdentity(const uint8_t* data, std::size_t size) {
  uint64_t nonce = 0;
  if (PeekWireNonce(data, size, &nonce)) {
    // Well-formed envelope prefix: the user nonce is the packet's logical
    // identity (retransmitted copies share it even if other bytes were
    // corrupted in one copy).
    return nonce;
  }
  uint64_t node_id = 0;
  if (PeekPartialSketchNodeId(data, size, &node_id)) {
    // Partial-sketch payload: the emitting aggregator is the identity, so
    // a node's re-sent partial counts once toward completion while two
    // nodes' byte-identical partials (e.g. zero-report rounds) stay
    // distinct. SplitMix-step the id so small node indexes cannot collide
    // with small user nonces in a buffer that sees both kinds.
    uint64_t z = node_id + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  // Too mangled to carry a nonce: fall back to the raw bytes (FNV-1a).
  // Byte-identical re-deliveries still collapse; distinct corrupted
  // packets stay distinct.
  uint64_t hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash = (hash ^ data[i]) * 0x100000001b3ull;
  }
  return hash;
}

RoundBuffer::RoundBuffer(RoundBufferOptions options) : options_(options) {}

RoundBuffer::~RoundBuffer() = default;

void RoundBuffer::AttachMetrics(obs::MetricsRegistry* registry,
                                const std::string& label) {
  obs::Labels labels;
  if (!label.empty()) labels.emplace_back("session", label);
  std::lock_guard<std::mutex> lock(mu_);
  metrics_feed_ =
      std::make_unique<obs::RoundBufferStatsFeed>(registry, labels);
}

DeliverResult RoundBuffer::Deliver(Frame&& frame) {
  const uint64_t round = frame.timestamp;
  // The identity depends only on the frame bytes — hash before taking the
  // lock so concurrent transport readers don't serialize on an O(payload)
  // scan (a wasted hash on the rare dropped frame is the cheaper side).
  const uint64_t identity =
      frame.kind != FrameKind::kEndRound
          ? PacketIdentity(frame.payload.data(), frame.payload.size())
          : 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (round < next_round_) {
    ++stats_.closed_round_drops;
    return DeliverResult::kClosedRound;
  }
  if (round + options_.max_lateness < newest_round_) {
    ++stats_.too_late_drops;
    return DeliverResult::kTooLate;
  }
  if (round >= next_round_ + options_.max_buffered_rounds) {
    ++stats_.too_early_drops;
    return DeliverResult::kTooEarly;
  }
  // Only an *admitted* frame advances the lateness clock — a single forged
  // far-future round index must not poison the watermark and starve every
  // legitimate round behind it.
  if (round > newest_round_) newest_round_ = round;
  PendingRound& pending = pending_[round];
  if (frame.kind == FrameKind::kEndRound) {
    ++stats_.end_markers;
    if (!pending.marker_seen) {
      pending.marker_seen = true;
      pending.expected = EndRoundExpected(frame);
    }
    if (Complete(pending)) complete_cv_.notify_all();
    return DeliverResult::kEndMarker;
  }
  if (!pending.identities.insert(identity).second) {
    ++stats_.duplicate_frames;
  }
  // Duplicates are still buffered — the ingest edge owns exact per-round
  // duplicate rejection (by nonce) and its acceptance accounting — but
  // only the first copy advanced the completion count above.
  pending.packets.push_back(std::move(frame.payload));
  ++stats_.buffered;
  if (Complete(pending)) complete_cv_.notify_all();
  return DeliverResult::kBuffered;
}

std::vector<PayloadRef> RoundBuffer::TakeRound(uint64_t round) {
  std::unique_lock<std::mutex> lock(mu_);
  if (round != next_round_) {
    throw std::logic_error("rounds must be taken strictly in order");
  }
  const bool complete = complete_cv_.wait_for(
      lock, options_.round_deadline,
      [&] { return Complete(pending_[round]); });
  if (!complete) {
    ++stats_.deadline_flushes;
    const PendingRound& p = pending_[round];
    if (p.marker_seen && p.packets.size() >= p.expected) {
      // Raw arrivals reached the announced count but distinct ones did
      // not: a duplicate masked a genuine loss. The pre-distinct
      // accounting released this round as "complete".
      ++stats_.masked_losses;
    }
  }
  std::vector<PayloadRef> packets = std::move(pending_[round].packets);
  pending_.erase(round);
  next_round_ = round + 1;
  ++stats_.rounds_drained;
  stats_.packets_drained += packets.size();
  if (metrics_feed_ != nullptr) {
    // Once per drained round, still under mu_: per-frame delivery stays
    // untouched and only the draining side pays the publication.
    metrics_feed_->Publish(stats_);
    metrics_feed_->SetPending(pending_.size());
  }
  return packets;
}

uint64_t RoundBuffer::next_round() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_round_;
}

std::size_t RoundBuffer::pending_rounds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

RoundBufferStats RoundBuffer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FrameDemux::Register(uint64_t session_id, RoundBuffer* buffer) {
  if (buffer == nullptr) {
    throw std::invalid_argument("demux needs a buffer");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!buffers_.emplace(session_id, buffer).second) {
    throw std::invalid_argument("session id already registered");
  }
}

void FrameDemux::Deliver(Frame&& frame) {
  RoundBuffer* buffer = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = buffers_.find(frame.session_id);
    if (it == buffers_.end()) {
      ++unknown_session_drops_;
      return;
    }
    buffer = it->second;
  }
  buffer->Deliver(std::move(frame));
}

FrameHandler FrameDemux::Handler() {
  return [this](Frame&& frame) { Deliver(std::move(frame)); };
}

uint64_t FrameDemux::unknown_session_drops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unknown_session_drops_;
}

service::RoundTransport MakeBufferedTransport(RoundBuffer& buffer,
                                              AnnounceFn announce,
                                              std::size_t num_threads) {
  return [&buffer, announce = std::move(announce), num_threads](
             const service::RoundRequest& request,
             service::ReportRouter& router) {
    if (announce) announce(request);
    router.IngestBatch(buffer.TakeRound(request.round_index), num_threads);
  };
}

service::SplitRoundTransport MakeBufferedSplitTransport(
    RoundBuffer& buffer, AnnounceFn announce, std::size_t num_threads) {
  service::SplitRoundTransport split;
  split.announce = std::move(announce);
  split.ingest = [&buffer, num_threads](const service::RoundRequest& request,
                                        service::ReportRouter& router) {
    router.IngestBatch(buffer.TakeRound(request.round_index), num_threads);
  };
  return split;
}

void SendRoundFrames(FrameSender& sender, uint64_t session_id,
                     uint64_t round,
                     const std::vector<std::vector<uint8_t>>& packets) {
  SendRoundFrames(std::vector<FrameSender*>{&sender}, session_id, round,
                  packets);
}

void SendRoundFrames(const std::vector<FrameSender*>& senders,
                     uint64_t session_id, uint64_t round,
                     const std::vector<std::vector<uint8_t>>& packets) {
  if (senders.empty()) {
    throw std::invalid_argument("SendRoundFrames needs at least one sender");
  }
  for (FrameSender* sender : senders) {
    if (sender == nullptr) {
      throw std::invalid_argument("SendRoundFrames got a null sender");
    }
  }
  std::unordered_set<uint64_t> identities;
  identities.reserve(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const std::vector<uint8_t>& packet = packets[i];
    identities.insert(PacketIdentity(packet.data(), packet.size()));
    senders[i % senders.size()]->Send(
        MakeDataFrame(session_id, round, packet));
  }
  // Every connection is flushed before the single whole-round marker goes
  // out on senders[0]. The marker could legally race data still in flight
  // on other connections — the RoundBuffer waits for the announced count
  // regardless of arrival order — but flushing first keeps the common case
  // "marker last", so deadline flushes only happen on real loss.
  for (FrameSender* sender : senders) sender->Flush();
  senders[0]->Send(
      MakeEndRoundFrame(session_id, round, identities.size()));
  senders[0]->Flush();
}

void SendPartialSketch(FrameSender& sender, uint64_t session_id,
                       uint64_t round, std::vector<uint8_t> payload) {
  sender.Send(MakePartialSketchFrame(session_id, round, std::move(payload)));
  sender.Flush();
}

}  // namespace ldpids::transport
