#include "transport/socket_util.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace ldpids::transport {

void ThrowErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void SendAll(int fd, const uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("socket send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

int BindLoopbackListener(uint16_t port, uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    ThrowErrno("bind 127.0.0.1");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    ThrowErrno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    ThrowErrno("getsockname");
  }
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace ldpids::transport
