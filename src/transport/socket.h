// Loopback/TCP socket transport for frame streams (POSIX sockets).
//
// `SocketListener` is the server edge: it binds a TCP port (0 picks an
// ephemeral one), accepts connections on a background thread, runs one
// reader thread per connection, and pushes every decoded frame into the
// caller's FrameHandler. Each connection gets its own FrameDecoder, so
// split/merged reads and mid-stream corruption degrade to typed per-reason
// stats, never a crash — the same defensive posture as the wire decoders
// one layer down.
//
// `SocketClient` is the device edge: it connects and sends frames through
// a batching buffer (one send(2) per ~flush_bytes, not per report — at
// ~50 B per frame, syscall-per-frame would dominate the protocol cost).
//
// Threading: the handler runs on listener-owned reader threads. It must
// synchronize internally (RoundBuffer and FrameDemux do). Stop() — and the
// destructor — closes the sockets and joins every thread.
#ifndef LDPIDS_TRANSPORT_SOCKET_H_
#define LDPIDS_TRANSPORT_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "transport/frame.h"

namespace ldpids::obs {
class MetricsRegistry;
class Histogram;
class FrameStatsFeed;
}  // namespace ldpids::obs

namespace ldpids::transport {

class SocketListener {
 public:
  // Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts
  // accepting. Throws std::runtime_error on socket/bind/listen failure.
  SocketListener(uint16_t port, FrameHandler handler);
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  // Observability (optional): publishes closed connections' decoder stats
  // to the canonical ldpids_frame_* metrics and records each recv drain's
  // decode+deliver time into the frame_decode stage histogram, labeled
  // {session=label} when `label` is non-empty. Attach before clients
  // connect — a reader started earlier keeps running uninstrumented.
  // Registry must outlive the listener.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& label = {});

  // Stops accepting, closes every connection and joins all threads.
  // Frames already buffered in a connection's decoder are delivered first.
  void Stop();

  uint16_t port() const { return port_; }
  // Decode accounting summed over every *closed* connection (a live
  // connection's decoder folds in when it closes); call after Stop() for
  // the full picture.
  FrameStats stats() const;
  // Per-connection decode accounting, one entry per closed connection in
  // close order; stats() is their FrameStats::operator+= sum.
  std::vector<FrameStats> connection_stats() const;
  uint64_t connections() const;

 private:
  void AcceptLoop();
  void ReadLoop(int fd);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  FrameHandler handler_;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  bool stopping_ = false;
  std::vector<std::thread> readers_;
  std::vector<int> reader_fds_;
  FrameStats stats_;
  std::vector<FrameStats> connection_stats_;
  uint64_t connections_ = 0;
  // Observability (null until AttachMetrics). The histogram is recorded
  // from reader threads (Observe is lock-free); the feed is only touched
  // at connection close, under mu_.
  obs::Histogram* decode_hist_ = nullptr;
  std::unique_ptr<obs::FrameStatsFeed> metrics_feed_;
};

class SocketClient : public FrameSender {
 public:
  // Connects to 127.0.0.1:`port`. Throws std::runtime_error on failure.
  explicit SocketClient(uint16_t port, std::size_t flush_bytes = 64 * 1024);
  ~SocketClient() override;

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  void Send(const Frame& frame) override;
  void Flush() override;
  // Flushes and closes the connection; further Send calls throw.
  void Close();

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  int fd_ = -1;
  std::vector<uint8_t> buffer_;
  std::size_t flush_bytes_;
  uint64_t frames_sent_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace ldpids::transport

#endif  // LDPIDS_TRANSPORT_SOCKET_H_
