#include "transport/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/stage_trace.h"
#include "obs/stats_feed.h"
#include "transport/socket_util.h"

namespace ldpids::transport {

SocketListener::SocketListener(uint16_t port, FrameHandler handler)
    : handler_(std::move(handler)) {
  if (!handler_) {
    throw std::invalid_argument("listener needs a frame handler");
  }
  listen_fd_ = BindLoopbackListener(port, &port_);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

SocketListener::~SocketListener() { Stop(); }

void SocketListener::AttachMetrics(obs::MetricsRegistry* registry,
                                   const std::string& label) {
  obs::Labels labels{{"stage", obs::StageName(obs::Stage::kFrameDecode)}};
  obs::Labels feed_labels;
  if (!label.empty()) {
    labels.emplace_back("session", label);
    feed_labels.emplace_back("session", label);
  }
  std::lock_guard<std::mutex> lock(mu_);
  decode_hist_ =
      &registry->GetHistogram(obs::kStageDurationMetric, labels);
  metrics_feed_ =
      std::make_unique<obs::FrameStatsFeed>(registry, feed_labels);
}

void SocketListener::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or a fatal accept error)
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    ++connections_;
    reader_fds_.push_back(fd);
    readers_.emplace_back([this, fd] { ReadLoop(fd); });
  }
}

void SocketListener::ReadLoop(int fd) {
  FrameDecoder decoder;
  Frame frame;
  constexpr std::size_t kChunk = 64 * 1024;
  // Latch the stage histogram once: the reader was minted under mu_, so an
  // AttachMetrics that happened-before this connection is visible here.
  obs::Histogram* decode_hist;
  {
    std::lock_guard<std::mutex> lock(mu_);
    decode_hist = decode_hist_;
  }
  for (;;) {
    // Zero-copy intake: recv straight into the decoder's pooled block; the
    // bytes are never staged in a side buffer, and decoded payloads alias
    // them in place all the way into the round buffer.
    const ssize_t n = ::recv(fd, decoder.Reserve(kChunk), kChunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or shutdown
    decoder.Commit(static_cast<std::size_t>(n));
    if (decode_hist != nullptr) {
      // One observation per recv drain: frame reassembly plus handler
      // delivery, the time the bytes spend on this reader thread.
      const uint64_t t0 = obs::NowNs();
      while (decoder.Next(&frame)) handler_(std::move(frame));
      decode_hist->Observe(obs::NowNs() - t0);
    } else {
      while (decoder.Next(&frame)) handler_(std::move(frame));
    }
  }
  {
    // Deregister before closing: once the fd is closed the kernel may
    // recycle its number, and Stop() must never shutdown() a stale entry.
    std::lock_guard<std::mutex> lock(mu_);
    stats_ += decoder.stats();
    connection_stats_.push_back(decoder.stats());
    if (metrics_feed_ != nullptr) metrics_feed_->Add(decoder.stats());
    for (int& reader_fd : reader_fds_) {
      if (reader_fd == fd) {
        reader_fd = -1;
        break;
      }
    }
  }
  ::close(fd);
}

void SocketListener::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopped (Stop then destructor is the common sequence).
      if (!accept_thread_.joinable() && readers_.empty()) return;
    }
    stopping_ = true;
  }
  // Unblock accept(), then stop minting readers before touching them.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : reader_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  readers_.clear();
  reader_fds_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

FrameStats SocketListener::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<FrameStats> SocketListener::connection_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connection_stats_;
}

uint64_t SocketListener::connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connections_;
}

SocketClient::SocketClient(uint16_t port, std::size_t flush_bytes)
    : flush_bytes_(flush_bytes) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    ThrowErrno("connect 127.0.0.1");
  }
  buffer_.reserve(flush_bytes_ + kMaxFramePayload);
}

SocketClient::~SocketClient() {
  try {
    Close();
  } catch (...) {
    // Destructor: the peer may already be gone; losing the tail of an
    // unflushed buffer on teardown is the caller's bug (call Close()).
  }
}

void SocketClient::Send(const Frame& frame) {
  if (fd_ < 0) throw std::logic_error("socket client already closed");
  const std::size_t before = buffer_.size();
  AppendEncodedFrame(frame, &buffer_);
  ++frames_sent_;
  bytes_sent_ += buffer_.size() - before;
  if (buffer_.size() >= flush_bytes_) Flush();
}

void SocketClient::Flush() {
  if (fd_ < 0 || buffer_.empty()) return;
  SendAll(fd_, buffer_.data(), buffer_.size());
  buffer_.clear();
}

void SocketClient::Close() {
  if (fd_ < 0) return;
  Flush();
  ::shutdown(fd_, SHUT_WR);  // EOF to the peer after the last frame
  ::close(fd_);
  fd_ = -1;
}

}  // namespace ldpids::transport
