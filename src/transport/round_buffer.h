// Out-of-order round reassembly between a transport and the sharded
// ingest.
//
// PR 3's serving layer assumed a polite network: a round's packets arrive
// exactly while that round is open, in order, once. Real networks deliver
// early (the next round's reports while this one is still estimating),
// late (stragglers after the round moved on), duplicated (retries) and
// shuffled. The RoundBuffer absorbs all of that: transports push frames in
// whatever order they arrive, the buffer queues them per round behind a
// watermark policy, and the session side drains exactly one round's
// packets when the mechanism opens that round.
//
// Keying: frames are keyed by Frame::timestamp, which the serving
// integration sets to the session's *round index* (RoundRequest::
// round_index) — a mechanism may run two FO rounds at one mechanism
// timestamp, so the round index is the unit of reassembly. Rounds are
// drained strictly in order.
//
// Completion: the sender finishes a round with an end-of-round marker
// carrying the number of *distinct* packets it transmitted for the round
// (SendRoundFrames computes that count itself via PacketIdentity). The
// round is complete when the marker has been seen and that many distinct
// packets have arrived — in any order; "late" packets that arrive after
// the marker still count. Distinctness matters: completion used to count
// raw arrivals, so a frame duplicated in flight could mask a lost frame —
// the round was released as "complete" while silently missing a real
// packet (the duplicate was only rejected later by the ingest nonce
// check). Duplicates are still buffered (the ingest edge owns per-round
// duplicate accounting) but no longer advance completion; they are counted
// in `duplicate_frames`, and a deadline flush whose raw arrivals reached
// the marker's count while distinct ones did not is counted in
// `masked_losses` — the exact case the old accounting released silently.
// If the deadline passes first, the round is flushed with whatever arrived
// (the session decides whether a partial — possibly empty — round is
// fatal) and a deadline flush is counted.
//
// Watermark policy, applied at admission (per-reason drop stats):
//   * a frame for an already-drained round is dropped (kClosedRound);
//   * a frame more than `max_lateness` rounds behind the newest round
//     ever seen is dropped (kTooLate) even if its round has not drained —
//     a straggler that far behind live traffic is noise or replay;
//   * a frame more than `max_buffered_rounds` ahead of the next round to
//     drain is dropped (kTooEarly) — bounds memory against a runaway or
//     hostile sender. Batch-file replays that deliver a whole recording
//     up front size this knob to the recording (or disable with a large
//     value).
// The admission checks run before any per-round state is touched and apply
// to end-of-round markers exactly as to data frames: a marker for an
// already-drained round is a kClosedRound drop and a marker outside the
// admission window is a kTooLate/kTooEarly drop — never a fresh
// PendingRound that could pin memory for a round that will never drain
// (regression-tested via pending_rounds()).
//
// Thread model: Deliver/EndRound are called from transport threads (socket
// readers, replayers, test drivers); TakeRound blocks the session side on
// a condition variable. All state is behind one mutex; the hot work
// (decode, sketch folding) happens outside the buffer.
#ifndef LDPIDS_TRANSPORT_ROUND_BUFFER_H_
#define LDPIDS_TRANSPORT_ROUND_BUFFER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "service/session.h"
#include "transport/frame.h"

namespace ldpids::obs {
class MetricsRegistry;
class RoundBufferStatsFeed;
}  // namespace ldpids::obs

namespace ldpids::transport {

struct RoundBufferOptions {
  // Admission window behind the newest round seen, in rounds.
  uint64_t max_lateness = 4;
  // Admission window ahead of the next round to drain, in rounds.
  uint64_t max_buffered_rounds = 1024;
  // How long TakeRound waits for a round to complete before flushing
  // partial.
  std::chrono::milliseconds round_deadline{10000};
};

enum class DeliverResult : uint8_t {
  kBuffered = 0,
  kEndMarker,    // control frame, recorded (repeats are counted, harmless)
  kClosedRound,  // round already drained
  kTooLate,      // beyond max_lateness behind the newest round seen
  kTooEarly,     // beyond max_buffered_rounds ahead of the next round
};

const char* DeliverResultName(DeliverResult result);

struct RoundBufferStats {
  uint64_t buffered = 0;          // data frames queued
  uint64_t end_markers = 0;       // markers seen (including repeats)
  uint64_t closed_round_drops = 0;
  uint64_t too_late_drops = 0;
  uint64_t too_early_drops = 0;
  uint64_t rounds_drained = 0;
  uint64_t packets_drained = 0;
  uint64_t deadline_flushes = 0;  // rounds flushed incomplete
  // Buffered data frames whose identity (PacketIdentity) was already seen
  // in their round: re-deliveries that must not advance completion.
  uint64_t duplicate_frames = 0;
  // Deadline flushes where raw arrivals had reached the marker's count but
  // distinct ones had not — a duplicate masking a genuine loss, which the
  // pre-distinct accounting would have released as "complete".
  uint64_t masked_losses = 0;

  uint64_t dropped() const {
    return closed_round_drops + too_late_drops + too_early_drops;
  }
  // Every admission outcome: each delivered frame lands in exactly one of
  // buffered / end_markers / dropped() (duplicate_frames is a subset of
  // buffered, masked_losses of deadline_flushes — neither adds here).
  uint64_t total() const { return buffered + end_markers + dropped(); }
  RoundBufferStats& operator+=(const RoundBufferStats& other);
  std::string ToString() const;
};

class RoundBuffer {
 public:
  explicit RoundBuffer(RoundBufferOptions options = {});
  ~RoundBuffer();

  // Observability (optional): publishes this buffer's cumulative stats to
  // the canonical ldpids_roundbuf_* metrics — labeled {session=label}
  // when `label` is non-empty — once per drained round (at the end of
  // TakeRound), plus the pending-rounds gauge. Registry must outlive the
  // buffer. Publication is write-only: admission and draining behave
  // identically with or without it.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& label = {});

  // Transport side (thread-safe). Data frames queue under their round;
  // end-of-round markers arm the round's completion count. The frame's
  // session id is not inspected — demultiplex with FrameDemux first.
  DeliverResult Deliver(Frame&& frame);

  // Session side. Blocks until round `round` is complete (marker seen and
  // its data-frame count arrived) or options.round_deadline elapses, then
  // drains and closes the round, returning its packets in arrival order.
  // Packets are the frames' payload refs — still aliasing the transport
  // decoders' pooled blocks, which recycle once the round is consumed.
  // Rounds must be taken strictly in order (throws std::logic_error
  // otherwise) — the session's round_index increments by one per round.
  std::vector<PayloadRef> TakeRound(uint64_t round);

  // Next round TakeRound will accept; all earlier rounds are closed.
  uint64_t next_round() const;
  // Rounds currently buffered (undrained state). Out-of-window markers and
  // data must never arm state here — regression-tested against pinning
  // memory for rounds that can never drain.
  std::size_t pending_rounds() const;
  RoundBufferStats stats() const;

 private:
  struct PendingRound {
    std::vector<PayloadRef> packets;
    // Identities of the packets buffered so far; completion counts these,
    // not raw arrivals, so a duplicate cannot mask a loss.
    std::unordered_set<uint64_t> identities;
    bool marker_seen = false;
    uint64_t expected = 0;  // distinct packets announced; valid once marker_seen
  };
  bool Complete(const PendingRound& p) const {
    return p.marker_seen && p.identities.size() >= p.expected;
  }

  const RoundBufferOptions options_;
  mutable std::mutex mu_;
  std::condition_variable complete_cv_;
  std::map<uint64_t, PendingRound> pending_;
  uint64_t next_round_ = 0;     // lowest undrained round
  uint64_t newest_round_ = 0;   // highest round ever seen (admission clock)
  RoundBufferStats stats_;
  // Written under mu_ from the draining (session) side only.
  std::unique_ptr<obs::RoundBufferStatsFeed> metrics_feed_;
};

// Routes frames to per-session RoundBuffers by Frame::session_id: one
// listener socket (or one replayed log) can feed every session of a
// StreamServer. Register before traffic flows; delivery is thread-safe
// (one mutex — contention is negligible next to socket reads and sketch
// folding).
class FrameDemux {
 public:
  // Registers `buffer` for `session_id`; the buffer must outlive the
  // demux's traffic. Throws std::invalid_argument on a duplicate id.
  void Register(uint64_t session_id, RoundBuffer* buffer);

  // Delivers one frame to its session's buffer; frames for unregistered
  // sessions are counted and dropped.
  void Deliver(Frame&& frame);

  // Adapter for transports that want a FrameHandler.
  FrameHandler Handler();

  uint64_t unknown_session_drops() const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, RoundBuffer*> buffers_;
  uint64_t unknown_session_drops_ = 0;
};

// --- serving-layer integration -------------------------------------------

// Announces a round the session just opened. In a deployment this is the
// server's control plane: push the round descriptor (round index, epsilon,
// oracle, cohort) to the devices so they report. In tests and demos it is
// where the simulated fleet produces and transmits the round's packets
// over the data plane (socket, log file, direct delivery).
using AnnounceFn = std::function<void(const service::RoundRequest&)>;

// A service::RoundTransport backed by a RoundBuffer: on each round it
// (1) announces the request, (2) blocks in TakeRound for the round's
// packets (out-of-order/late/duplicate delivery already absorbed), and
// (3) feeds them to the sharded ingest. With this, a MechanismSession —
// and therefore a whole StreamServer — runs over any byte transport that
// can deliver frames into the buffer.
service::RoundTransport MakeBufferedTransport(RoundBuffer& buffer,
                                              AnnounceFn announce,
                                              std::size_t num_threads);

// The same transport split at the announce/ingest seam for pipelined
// sessions (SessionOptions::pipeline_depth > 1): `announce` fires on the
// session thread the moment a round is opened — including a pre-announced
// planned round — while the TakeRound + IngestBatch half runs on the
// session's ingest worker. With this, round t+1's packets are produced,
// transmitted and folded while round t is still estimating. The announce
// callback may run concurrently with the ingest half of an *earlier*
// round, so it must not share unsynchronized state with it (delivering
// into the RoundBuffer is always safe; the buffer locks internally).
service::SplitRoundTransport MakeBufferedSplitTransport(
    RoundBuffer& buffer, AnnounceFn announce, std::size_t num_threads);

// Identity of one data payload for completion accounting: the wire user
// nonce when the payload carries a readable one (PeekWireNonce), else a
// 64-bit hash of the raw bytes. Re-deliveries of one packet — and sender
// retransmissions of one user's report — share an identity, so they count
// once toward a round's completion. Both ends of the protocol use this
// same function: RoundBuffer to count distinct arrivals, SendRoundFrames
// to compute the distinct count its end-of-round marker announces.
uint64_t PacketIdentity(const uint8_t* data, std::size_t size);

// Sender-side helper: transmits one round's packets as data frames
// followed by the end-of-round marker, then flushes. `round` must be the
// session's RoundRequest::round_index. The marker announces the number of
// *distinct* packets (PacketIdentity) in `packets`, so callers may include
// deliberate duplicates without wedging the receiver's completion count.
void SendRoundFrames(FrameSender& sender, uint64_t session_id,
                     uint64_t round,
                     const std::vector<std::vector<uint8_t>>& packets);

// Multi-connection variant: stripes the round's data frames round-robin
// across `senders` (packet i goes to sender i % K) and announces ONE
// end-of-round marker — with the distinct count of the whole round — via
// senders[0] after flushing every connection. The receiver's RoundBuffer
// honors the first marker it sees and counts distinct arrivals across all
// connections, so completion, dedup and the released estimates are
// bit-identical to the single-connection send regardless of how the K
// streams interleave. Throws std::invalid_argument when `senders` is empty
// or holds a null pointer.
void SendRoundFrames(const std::vector<FrameSender*>& senders,
                     uint64_t session_id, uint64_t round,
                     const std::vector<std::vector<uint8_t>>& packets);

// Aggregator-side helper of the merge tree: transmits one round's partial
// sketch (fo/sketch_wire.h payload) as a kPartialSketch frame, then
// flushes. Deliberately no end-of-round marker — a child knows only its
// own contribution; the *root* announces the expected child count into
// its own buffer (service::RootSession), since only it knows the tree's
// fan-in. Completion, dedup (by emitting node id via PacketIdentity) and
// late/duplicate absorption then ride the existing RoundBuffer machinery
// unchanged.
void SendPartialSketch(FrameSender& sender, uint64_t session_id,
                       uint64_t round, std::vector<uint8_t> payload);

}  // namespace ldpids::transport

#endif  // LDPIDS_TRANSPORT_ROUND_BUFFER_H_
