#include "cdp/laplace.h"

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "util/distributions.h"

namespace ldpids {

Histogram LaplacePerturbHistogram(const Histogram& frequencies, double epsilon,
                                  uint64_t n, double sensitivity, Rng& rng) {
  if (!(epsilon > 0.0)) throw std::invalid_argument("epsilon must be > 0");
  if (n == 0) throw std::invalid_argument("population must be positive");
  const double scale = sensitivity / (static_cast<double>(n) * epsilon);
  Histogram out(frequencies.size());
  for (std::size_t k = 0; k < frequencies.size(); ++k) {
    out[k] = frequencies[k] + SampleLaplace(rng, scale);
  }
  return out;
}

double LaplaceVariance(double epsilon, uint64_t n, double sensitivity) {
  const double scale = sensitivity / (static_cast<double>(n) * epsilon);
  return 2.0 * scale * scale;
}

}  // namespace ldpids
