// Centralized-DP Laplace histogram release — the substrate of the paper's
// CDP reference methods (Kellaris et al., VLDB 2014), reimplemented so the
// ablation benches can quantify the CDP->LDP utility gap that motivates
// LDP-IDS (Sections 1-2).
//
// The trusted aggregator sees the true frequency histogram c_t over N users
// and releases c_t + Lap(s / (N * eps)) per bin, where `s` is the L1
// sensitivity in count space (one user changing their value moves two bins
// by 1, so s = 2 for full histograms; s = 1 for per-bin counting queries).
#ifndef LDPIDS_CDP_LAPLACE_H_
#define LDPIDS_CDP_LAPLACE_H_

#include <cstdint>

#include "util/histogram.h"
#include "util/rng.h"

namespace ldpids {

// Frequency-space Laplace mechanism: adds i.i.d. Lap(sensitivity/(n*eps))
// noise to each bin of `frequencies`.
Histogram LaplacePerturbHistogram(const Histogram& frequencies, double epsilon,
                                  uint64_t n, double sensitivity, Rng& rng);

// Per-bin variance of the above: 2 * (sensitivity / (n * eps))^2.
double LaplaceVariance(double epsilon, uint64_t n, double sensitivity);

}  // namespace ldpids

#endif  // LDPIDS_CDP_LAPLACE_H_
