// w-event CDP stream mechanisms (Kellaris et al., VLDB 2014; paper Section
// 3.2) — Uniform, Sampling, Budget Distribution (BD) and Budget Absorption
// (BA), all on the trusted-aggregator Laplace substrate.
//
// These exist to reproduce the motivating comparison: with a trusted server,
// budget division degrades utility only quadratically (Laplace variance is
// O(1/eps^2)), whereas LDP budget division degrades roughly exponentially —
// which is why the paper replaces budget division with population division.
// `bench_ablation_cdp_gap` plays these against LBD/LBA on the same streams.
//
// To stay directly comparable with our LDP implementations, BD/BA use the
// same MSE-based dissimilarity/error comparison as LBD/LBA (squared-distance
// dissimilarity debiased by the Laplace variance, error = Laplace variance)
// instead of Kellaris's mean-absolute formulation; the strategy logic and
// budget schedules follow the original.
#ifndef LDPIDS_CDP_BASELINES_H_
#define LDPIDS_CDP_BASELINES_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/budget_ledger.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace ldpids {

struct CdpConfig {
  double epsilon = 1.0;
  std::size_t window = 20;
  uint64_t num_users = 1;     // for count->frequency noise scaling
  double sensitivity = 2.0;   // L1 sensitivity in count space
  uint64_t seed = 11;
};

// Sequential w-event CDP releaser over true frequency histograms.
class CdpStreamMechanism {
 public:
  virtual ~CdpStreamMechanism() = default;
  virtual std::string name() const = 0;

  // Releases r_t given the true c_t; must be called in stream order.
  virtual Histogram Step(const Histogram& true_frequencies) = 0;

  // Convenience: run over a whole stream prefix.
  std::vector<Histogram> Run(const std::vector<Histogram>& stream);
};

// eps/w Laplace release at every timestamp.
std::unique_ptr<CdpStreamMechanism> MakeCdpUniform(const CdpConfig& config);
// Full-eps Laplace release every w timestamps, approximation in between.
std::unique_ptr<CdpStreamMechanism> MakeCdpSampling(const CdpConfig& config);
// Kellaris Budget Distribution (exponentially decaying publication budget).
std::unique_ptr<CdpStreamMechanism> MakeCdpBudgetDistribution(
    const CdpConfig& config);
// Kellaris Budget Absorption (uniform allocation with absorb/nullify).
std::unique_ptr<CdpStreamMechanism> MakeCdpBudgetAbsorption(
    const CdpConfig& config);

// Name-based factory: "Uniform" | "Sampling" | "BD" | "BA".
std::unique_ptr<CdpStreamMechanism> CreateCdpMechanism(const std::string& name,
                                                       const CdpConfig& config);

}  // namespace ldpids

#endif  // LDPIDS_CDP_BASELINES_H_
