#include "cdp/baselines.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cdp/laplace.h"
#include "core/dissimilarity.h"

namespace ldpids {

std::vector<Histogram> CdpStreamMechanism::Run(
    const std::vector<Histogram>& stream) {
  std::vector<Histogram> releases;
  releases.reserve(stream.size());
  for (const Histogram& c : stream) releases.push_back(Step(c));
  return releases;
}

namespace {

// Shared state/helpers for the four CDP methods.
class CdpBase : public CdpStreamMechanism {
 public:
  explicit CdpBase(const CdpConfig& config)
      : config_(config),
        rng_(config.seed),
        ledger_(config.epsilon, config.window) {
    if (config.window == 0) throw std::invalid_argument("window must be >= 1");
    if (config.num_users == 0) {
      throw std::invalid_argument("population must be positive");
    }
  }

 protected:
  Histogram Publish(const Histogram& c, double epsilon) {
    return LaplacePerturbHistogram(c, epsilon, config_.num_users,
                                   config_.sensitivity, rng_);
  }
  double Variance(double epsilon) const {
    return LaplaceVariance(epsilon, config_.num_users, config_.sensitivity);
  }
  void EnsureInit(const Histogram& c) {
    if (last_release_.empty()) last_release_.assign(c.size(), 0.0);
    if (last_release_.size() != c.size()) {
      throw std::invalid_argument("stream domain changed mid-run");
    }
  }

  CdpConfig config_;
  Rng rng_;
  BudgetLedger ledger_;
  Histogram last_release_;
  std::size_t t_ = 0;
};

class CdpUniform final : public CdpBase {
 public:
  using CdpBase::CdpBase;
  std::string name() const override { return "CDP-Uniform"; }
  Histogram Step(const Histogram& c) override {
    EnsureInit(c);
    const double eps =
        config_.epsilon / static_cast<double>(config_.window);
    last_release_ = Publish(c, eps);
    ledger_.Record(0.0, eps);
    ++t_;
    return last_release_;
  }
};

class CdpSampling final : public CdpBase {
 public:
  using CdpBase::CdpBase;
  std::string name() const override { return "CDP-Sampling"; }
  Histogram Step(const Histogram& c) override {
    EnsureInit(c);
    if (t_ % config_.window == 0) {
      last_release_ = Publish(c, config_.epsilon);
      ledger_.Record(0.0, config_.epsilon);
    } else {
      ledger_.Record(0.0, 0.0);
    }
    ++t_;
    return last_release_;
  }
};

class CdpBudgetDistribution final : public CdpBase {
 public:
  using CdpBase::CdpBase;
  std::string name() const override { return "CDP-BD"; }
  Histogram Step(const Histogram& c) override {
    EnsureInit(c);
    const double eps_dis =
        config_.epsilon / (2.0 * static_cast<double>(config_.window));
    const Histogram noisy = Publish(c, eps_dis);
    const double dis =
        EstimateDissimilarity(noisy, last_release_, Variance(eps_dis));

    const double remaining = config_.epsilon / 2.0 -
                             ledger_.PublicationSpentInActiveWindow();
    const double eps_pub = std::max(0.0, remaining / 2.0);
    double spent = 0.0;
    if (eps_pub > 0.0 && dis > Variance(eps_pub)) {
      last_release_ = Publish(c, eps_pub);
      spent = eps_pub;
    }
    ledger_.Record(eps_dis, spent);
    ++t_;
    return last_release_;
  }
};

class CdpBudgetAbsorption final : public CdpBase {
 public:
  using CdpBase::CdpBase;
  std::string name() const override { return "CDP-BA"; }
  Histogram Step(const Histogram& c) override {
    EnsureInit(c);
    const double unit =
        config_.epsilon / (2.0 * static_cast<double>(config_.window));
    const Histogram noisy = Publish(c, unit);
    const double dis =
        EstimateDissimilarity(noisy, last_release_, Variance(unit));

    const std::int64_t t_nullified =
        static_cast<std::int64_t>(std::llround(last_pub_epsilon_ / unit)) - 1;
    const std::int64_t since_last =
        static_cast<std::int64_t>(t_) - last_pub_;
    double spent = 0.0;
    if (since_last > t_nullified) {
      const std::int64_t t_absorb =
          static_cast<std::int64_t>(t_) - (last_pub_ + t_nullified);
      const double eps_pub =
          unit *
          static_cast<double>(std::min<std::int64_t>(
              t_absorb, static_cast<std::int64_t>(config_.window)));
      if (dis > Variance(eps_pub)) {
        last_release_ = Publish(c, eps_pub);
        spent = eps_pub;
        last_pub_ = static_cast<std::int64_t>(t_);
        last_pub_epsilon_ = eps_pub;
      }
    }
    ledger_.Record(unit, spent);
    ++t_;
    return last_release_;
  }

 private:
  std::int64_t last_pub_ = -1;
  double last_pub_epsilon_ = 0.0;
};

}  // namespace

std::unique_ptr<CdpStreamMechanism> MakeCdpUniform(const CdpConfig& config) {
  return std::make_unique<CdpUniform>(config);
}
std::unique_ptr<CdpStreamMechanism> MakeCdpSampling(const CdpConfig& config) {
  return std::make_unique<CdpSampling>(config);
}
std::unique_ptr<CdpStreamMechanism> MakeCdpBudgetDistribution(
    const CdpConfig& config) {
  return std::make_unique<CdpBudgetDistribution>(config);
}
std::unique_ptr<CdpStreamMechanism> MakeCdpBudgetAbsorption(
    const CdpConfig& config) {
  return std::make_unique<CdpBudgetAbsorption>(config);
}

std::unique_ptr<CdpStreamMechanism> CreateCdpMechanism(
    const std::string& name, const CdpConfig& config) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "UNIFORM") return MakeCdpUniform(config);
  if (upper == "SAMPLING") return MakeCdpSampling(config);
  if (upper == "BD") return MakeCdpBudgetDistribution(config);
  if (upper == "BA") return MakeCdpBudgetAbsorption(config);
  throw std::invalid_argument("unknown CDP mechanism: " + name);
}

}  // namespace ldpids
