#include "fo/fo_kernels.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "fo/fo_kernels_internal.h"
#include "util/fastdiv.h"
#include "util/rng.h"
#include "util/simd/mix64.h"
#include "util/simd/simd.h"

namespace ldpids::fokernels {
namespace {

// HashCounter's mixing constants live in fo_kernels_internal.h, shared
// with the AVX-512 kernel TU so the two hash constructions cannot drift.
using internal::kGolden;
using internal::kMulB;
using internal::kOlhHashStream;
using internal::kStreamA;
using internal::kStreamB;

using simd::Mix64V;

}  // namespace

const char* BackendName() { return simd::kBackendName; }

void EstimateAffine(const uint64_t* counts, std::size_t d, double inv_n,
                    double q, double denom, double* est) {
  const simd::F64x inv_v = simd::BroadcastF64(inv_n);
  const simd::F64x q_v = simd::BroadcastF64(q);
  const simd::F64x denom_v = simd::BroadcastF64(denom);
  std::size_t k = 0;
  for (; k + simd::kLanes <= d; k += simd::kLanes) {
    const simd::F64x c = simd::U64ToF64(simd::LoadU64(counts + k));
    simd::StoreF64(
        est + k,
        simd::DivF64(simd::SubF64(simd::MulF64(c, inv_v), q_v), denom_v));
  }
  for (; k < d; ++k) {
    est[k] = (static_cast<double>(counts[k]) * inv_n - q) / denom;
  }
}

void FoldBitColumns(const uint64_t* bit_words, std::size_t words_per_report,
                    const uint32_t* indices, std::size_t count, std::size_t d,
                    uint64_t* counts) {
  static const uint64_t kIota[simd::kLanes] = {0, 1, 2, 3};
  const simd::U64x iota = simd::LoadU64(kIota);
  const simd::U64x one = simd::BroadcastU64(1);
  for (std::size_t r = 0; r < count; ++r) {
    const std::size_t row = indices != nullptr ? indices[r] : r;
    const uint64_t* words = bit_words + row * words_per_report;
    for (std::size_t w = 0; w < words_per_report; ++w) {
      const std::size_t nbits = std::min<std::size_t>(64, d - w * 64);
      const simd::U64x word_v = simd::BroadcastU64(words[w]);
      uint64_t* base = counts + w * 64;
      std::size_t b = 0;
      for (; b + simd::kLanes <= nbits; b += simd::kLanes) {
        const simd::U64x shifts =
            simd::AddU64(iota, simd::BroadcastU64(static_cast<uint64_t>(b)));
        const simd::U64x bits =
            simd::AndU64(simd::ShrVarU64(word_v, shifts), one);
        simd::StoreU64(base + b,
                       simd::AddU64(simd::LoadU64(base + b), bits));
      }
      for (; b < nbits; ++b) base[b] += (words[w] >> b) & 1u;
    }
  }
}

void OlhSupportScan(const uint64_t* seeds, const uint64_t* buckets,
                    std::size_t count, std::size_t d, uint64_t g,
                    uint64_t* support_counts) {
  // 8-lane AVX-512 pass when compiled in, the CPU has it and g is a power
  // of two; bit-identical, so the dispatch never shows in results.
  if (internal::OlhSupportScanAvx512(seeds, buckets, count, d, g,
                                     support_counts)) {
    return;
  }
  const U64Divisor div(g);
  const bool pow2 = div.magic() == 0;
  const bool add_fixup = div.add_fixup();
  const unsigned shift = div.shift();
  const simd::U64x magic_v = simd::BroadcastU64(div.magic());
  const simd::U64x g_v = simd::BroadcastU64(g);
  const simd::U64x g_mask = simd::BroadcastU64(g - 1);
  const simd::U64x b_term =
      simd::BroadcastU64(kOlhHashStream * kMulB + kStreamB);
  const std::size_t vec_count = count & ~(simd::kLanes - 1);
  for (std::size_t k = 0; k < d; ++k) {
    // Per-value hash constants are loop-invariant across reports, which is
    // why the scan is value-major.
    const uint64_t a_term = static_cast<uint64_t>(k) * kGolden + kStreamA;
    const simd::U64x a_v = simd::BroadcastU64(a_term);
    simd::U64x acc = simd::ZeroU64();
    for (std::size_t i = 0; i < vec_count; i += simd::kLanes) {
      simd::U64x x = simd::LoadU64(seeds + i);
      x = Mix64V(simd::XorU64(x, a_v));
      x = Mix64V(simd::XorU64(x, b_term));
      simd::U64x bucket;
      if (pow2) {
        bucket = simd::AndU64(x, g_mask);
      } else {
        const simd::U64x hi = simd::MulHiU64(x, magic_v);
        const simd::U64x quot =
            add_fixup
                ? simd::ShrU64(
                      simd::AddU64(simd::ShrU64(simd::SubU64(x, hi), 1), hi),
                      shift)
                : simd::ShrU64(hi, shift);
        bucket = simd::SubU64(x, simd::MulLoU64(quot, g_v));
      }
      // Matching lanes come back as all-ones (-1); subtracting the mask adds
      // one per match.
      acc = simd::SubU64(acc,
                         simd::CmpEqU64(bucket, simd::LoadU64(buckets + i)));
    }
    uint64_t supports = simd::ReduceAddU64(acc);
    for (std::size_t i = vec_count; i < count; ++i) {
      const uint64_t h =
          HashCounter(seeds[i], static_cast<uint64_t>(k), kOlhHashStream);
      supports += div.Mod(h) == buckets[i] ? 1 : 0;
    }
    support_counts[k] += supports;
  }
}

void Fwht(int64_t* data, std::size_t n) {
  for (std::size_t h = 1; h < n; h <<= 1) {
    for (std::size_t i = 0; i < n; i += h << 1) {
      for (std::size_t j = i; j < i + h; ++j) {
        const int64_t u = data[j];
        const int64_t v = data[j + h];
        data[j] = u + v;
        data[j + h] = u - v;
      }
    }
  }
}

}  // namespace ldpids::fokernels
