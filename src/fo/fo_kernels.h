// Shared vectorized kernels for the frequency-oracle hot loops.
//
// Every sketch's AddReports/EstimateInto override bottoms out in one of
// these four routines, so the bit-identity story lives in exactly one
// place. Each kernel is specified as a scalar loop (documented below) and
// implemented over the 4-lane SIMD layer (util/simd/simd.h) with a scalar
// tail; tests/fo_kernel_test.cc pins the vector path against the scalar
// reference on both backends.
//
// Floating-point contract: EstimateAffine performs, per bin, exactly
//   est[k] = (double(count[k]) * inv_n - q) / denom
// with one multiply, one subtract, one divide — no FMA contraction (the
// build compiles with -ffp-contract=off and the kernel never calls fused
// ops). This keeps estimates byte-identical across backends and to the
// pre-columnar scalar loops, which used the same operation sequence.
#ifndef LDPIDS_FO_FO_KERNELS_H_
#define LDPIDS_FO_FO_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace ldpids::fokernels {

// Name of the SIMD backend the kernels were compiled against ("avx2" or
// "generic"); surfaced by benches so recorded numbers say what ran.
const char* BackendName();

// est[k] = (double(counts[k]) * inv_n - q) / denom  for k in [0, d).
// The exact affine estimator shared by all five oracles; only (q, denom)
// differ per oracle.
void EstimateAffine(const uint64_t* counts, std::size_t d, double inv_n,
                    double q, double denom, double* est);

// Unary-encoding fold (OUE/SUE): for each staged row r in indices[0..count),
// add bit k of its packed LSB-first bit vector to counts[k], for k < d.
// bit_words is the arena's row-major column block, words_per_report u64
// words per row; padding bits past d are never read. indices == nullptr
// folds rows 0..count contiguously (the identity ArenaSlice shape).
void FoldBitColumns(const uint64_t* bit_words, std::size_t words_per_report,
                    const uint32_t* indices, std::size_t count, std::size_t d,
                    uint64_t* counts);

// OLH support scan: for each value k in [0, d) and each pending report i in
// [0, count), add 1 to support_counts[k] when
//   HashCounter(seeds[i], k, kOlhHashStream) % g == buckets[i].
// Value-major so the per-k hash constants are loop-invariant; the `% g`
// uses the exact Granlund–Montgomery recipe (util/fastdiv.h), so every
// lane computes precisely HashToBucket(seed, k, g).
void OlhSupportScan(const uint64_t* seeds, const uint64_t* buckets,
                    std::size_t count, std::size_t d, uint64_t g,
                    uint64_t* support_counts);

// In-place Walsh–Hadamard transform of data[0..n), n a power of two, using
// the unnormalized butterfly (u, v) -> (u + v, u - v). Exact in int64 for
// the column-count magnitudes HR feeds it.
void Fwht(int64_t* data, std::size_t n);

}  // namespace ldpids::fokernels

#endif  // LDPIDS_FO_FO_KERNELS_H_
