#include "fo/wire.h"

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace ldpids {

namespace {

constexpr uint8_t kMagic = 0xAD;
constexpr uint8_t kVersion = 1;
constexpr std::size_t kHeaderSize = 11;
constexpr std::size_t kChecksumSize = 4;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

std::size_t GrrValueBytes(std::size_t domain) {
  if (domain <= 256) return 1;
  if (domain <= 65536) return 2;
  return 4;
}

std::vector<uint8_t> BuildEnvelope(OracleId oracle, uint32_t timestamp,
                                   const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kHeaderSize + payload.size() + kChecksumSize);
  out.push_back(kMagic);
  out.push_back(kVersion);
  out.push_back(static_cast<uint8_t>(oracle));
  PutU32(&out, timestamp);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  PutU32(&out, WireChecksum(out.data(), out.size()));
  return out;
}

}  // namespace

uint32_t WireChecksum(const uint8_t* data, std::size_t size) {
  // Mix the bytes through SplitMix64 word-wise; take the low 32 bits.
  uint64_t acc = 0x5DEECE66DULL ^ size;
  for (std::size_t i = 0; i < size; ++i) {
    acc = Mix64(acc ^ (static_cast<uint64_t>(data[i]) + i * 0x9E37ULL));
  }
  return static_cast<uint32_t>(acc);
}

std::vector<uint8_t> EncodeGrrReport(uint32_t value, std::size_t domain,
                                     uint32_t timestamp) {
  if (value >= domain) throw std::invalid_argument("value outside domain");
  std::vector<uint8_t> payload;
  const std::size_t bytes = GrrValueBytes(domain);
  for (std::size_t i = 0; i < bytes; ++i) {
    payload.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
  return BuildEnvelope(OracleId::kGrr, timestamp, payload);
}

std::vector<uint8_t> EncodeBitVectorReport(const std::vector<bool>& bits,
                                           OracleId oracle,
                                           uint32_t timestamp) {
  if (oracle != OracleId::kOue && oracle != OracleId::kSue) {
    throw std::invalid_argument("bit-vector payloads are OUE/SUE only");
  }
  std::vector<uint8_t> payload((bits.size() + 7) / 8, 0);
  for (std::size_t k = 0; k < bits.size(); ++k) {
    if (bits[k]) payload[k / 8] |= static_cast<uint8_t>(1u << (k % 8));
  }
  return BuildEnvelope(oracle, timestamp, payload);
}

std::vector<uint8_t> EncodeOlhReport(uint64_t seed, uint32_t bucket,
                                     uint32_t timestamp) {
  std::vector<uint8_t> payload;
  PutU64(&payload, seed);
  PutU32(&payload, bucket);
  return BuildEnvelope(OracleId::kOlh, timestamp, payload);
}

std::vector<uint8_t> EncodeHrReport(uint32_t column, uint32_t timestamp) {
  std::vector<uint8_t> payload;
  PutU32(&payload, column);
  return BuildEnvelope(OracleId::kHr, timestamp, payload);
}

WireEnvelope DecodeEnvelope(const std::vector<uint8_t>& packet) {
  if (packet.size() < kHeaderSize + kChecksumSize) {
    throw std::runtime_error("wire: packet too short");
  }
  if (packet[0] != kMagic) throw std::runtime_error("wire: bad magic");
  if (packet[1] != kVersion) throw std::runtime_error("wire: bad version");
  const uint8_t oracle_raw = packet[2];
  if (oracle_raw < 1 || oracle_raw > 5) {
    throw std::runtime_error("wire: unknown oracle id");
  }
  const uint32_t payload_len = GetU32(packet.data() + 7);
  if (packet.size() != kHeaderSize + payload_len + kChecksumSize) {
    throw std::runtime_error("wire: length mismatch");
  }
  const uint32_t stored =
      GetU32(packet.data() + packet.size() - kChecksumSize);
  const uint32_t computed =
      WireChecksum(packet.data(), packet.size() - kChecksumSize);
  if (stored != computed) throw std::runtime_error("wire: checksum mismatch");

  WireEnvelope env;
  env.oracle = static_cast<OracleId>(oracle_raw);
  env.timestamp = GetU32(packet.data() + 3);
  env.payload.assign(packet.begin() + kHeaderSize,
                     packet.end() - kChecksumSize);
  return env;
}

GrrWireReport DecodeGrrPayload(const WireEnvelope& envelope,
                               std::size_t domain) {
  if (envelope.oracle != OracleId::kGrr) {
    throw std::runtime_error("wire: not a GRR payload");
  }
  const std::size_t bytes = GrrValueBytes(domain);
  if (envelope.payload.size() != bytes) {
    throw std::runtime_error("wire: GRR payload size mismatch");
  }
  uint32_t value = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    value |= static_cast<uint32_t>(envelope.payload[i]) << (8 * i);
  }
  if (value >= domain) throw std::runtime_error("wire: GRR value overflow");
  return {value};
}

BitVectorWireReport DecodeBitVectorPayload(const WireEnvelope& envelope,
                                           std::size_t domain) {
  if (envelope.oracle != OracleId::kOue &&
      envelope.oracle != OracleId::kSue) {
    throw std::runtime_error("wire: not a bit-vector payload");
  }
  if (envelope.payload.size() != (domain + 7) / 8) {
    throw std::runtime_error("wire: bit-vector size mismatch");
  }
  BitVectorWireReport out;
  out.bits.resize(domain);
  for (std::size_t k = 0; k < domain; ++k) {
    out.bits[k] = (envelope.payload[k / 8] >> (k % 8)) & 1u;
  }
  return out;
}

OlhWireReport DecodeOlhPayload(const WireEnvelope& envelope) {
  if (envelope.oracle != OracleId::kOlh) {
    throw std::runtime_error("wire: not an OLH payload");
  }
  if (envelope.payload.size() != 12) {
    throw std::runtime_error("wire: OLH payload size mismatch");
  }
  return {GetU64(envelope.payload.data()), GetU32(envelope.payload.data() + 8)};
}

HrWireReport DecodeHrPayload(const WireEnvelope& envelope) {
  if (envelope.oracle != OracleId::kHr) {
    throw std::runtime_error("wire: not an HR payload");
  }
  if (envelope.payload.size() != 4) {
    throw std::runtime_error("wire: HR payload size mismatch");
  }
  return {GetU32(envelope.payload.data())};
}

std::size_t EncodedReportSize(OracleId oracle, std::size_t domain) {
  std::size_t payload = 0;
  switch (oracle) {
    case OracleId::kGrr: payload = GrrValueBytes(domain); break;
    case OracleId::kOue:
    case OracleId::kSue: payload = (domain + 7) / 8; break;
    case OracleId::kOlh: payload = 12; break;
    case OracleId::kHr: payload = 4; break;
  }
  return kHeaderSize + payload + kChecksumSize;
}

}  // namespace ldpids
