#include "fo/wire.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "fo/wire_internal.h"
#include "util/rng.h"
#include "util/simd/avx512.h"
#include "util/simd/mix64.h"
#include "util/simd/simd.h"

namespace ldpids {

void PutU32Le(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64Le(std::vector<uint8_t>* out, uint64_t v) {
  PutU32Le(out, static_cast<uint32_t>(v));
  PutU32Le(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64Le(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32Le(p)) |
         (static_cast<uint64_t>(GetU32Le(p + 4)) << 32);
}

namespace {

constexpr uint8_t kMagic = 0xAD;
constexpr uint8_t kVersion = 2;  // v2 added the 8-byte user nonce
constexpr std::size_t kHeaderSize = 19;
constexpr std::size_t kChecksumSize = 4;
constexpr std::size_t kNonceOffset = 7;
constexpr std::size_t kLengthOffset = 15;

std::size_t GrrValueBytes(std::size_t domain) {
  if (domain <= 256) return 1;
  if (domain <= 65536) return 2;
  return 4;
}

std::vector<uint8_t> BuildEnvelope(OracleId oracle, uint32_t timestamp,
                                   uint64_t nonce,
                                   const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kHeaderSize + payload.size() + kChecksumSize);
  out.push_back(kMagic);
  out.push_back(kVersion);
  out.push_back(static_cast<uint8_t>(oracle));
  PutU32Le(&out, timestamp);
  PutU64Le(&out, nonce);
  PutU32Le(&out, static_cast<uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  PutU32Le(&out, WireChecksum(out.data(), out.size()));
  return out;
}

// Shared by the throwing wrappers.
[[noreturn]] void ThrowWire(WireError error) {
  throw std::runtime_error(std::string("wire: ") + WireErrorName(error));
}

// Legacy alias kept for the envelope-based code below; the view itself is
// public now (WireEnvelopeView) so the batch staging path (report_arena)
// decodes headers through exactly the same validation.
using EnvelopeView = WireEnvelopeView;

WireError ViewEnvelope(const uint8_t* data, std::size_t size,
                       EnvelopeView* out) {
  return ViewWireEnvelope(data, size, out);
}

WireError BitVectorPayloadFromBytes(const uint8_t* payload, std::size_t size,
                                    std::size_t domain,
                                    BitVectorWireReport* out) {
  if (!BitVectorPayloadSizeOk(size, domain)) return WireError::kPayloadSize;
  // assign reuses the caller's bit buffer, so a reused DecodedReport
  // scratch makes this allocation-free after the first packet.
  out->bits.assign(domain, false);
  for (std::size_t k = 0; k < domain; ++k) {
    out->bits[k] = (payload[k / 8] >> (k % 8)) & 1u;
  }
  return WireError::kOk;
}

}  // namespace

namespace {

// Structural half of envelope validation: everything before the checksum,
// in the fixed classification order size -> magic -> version -> oracle ->
// length. Shared by the lazy-checksum and prechecked-checksum views so the
// two can never classify a packet differently.
WireError ViewStructural(const uint8_t* data, std::size_t size,
                         uint32_t* payload_len) {
  if (size < kHeaderSize + kChecksumSize) return WireError::kTooShort;
  if (data[0] != kMagic) return WireError::kBadMagic;
  if (data[1] != kVersion) return WireError::kBadVersion;
  const uint8_t oracle_raw = data[2];
  if (oracle_raw < 1 || oracle_raw > 5) return WireError::kUnknownOracle;
  *payload_len = GetU32Le(data + kLengthOffset);
  if (size != kHeaderSize + *payload_len + kChecksumSize) {
    return WireError::kLengthMismatch;
  }
  return WireError::kOk;
}

void FillView(const uint8_t* data, uint32_t payload_len,
              WireEnvelopeView* out) {
  out->oracle = static_cast<OracleId>(data[2]);
  out->timestamp = GetU32Le(data + 3);
  out->nonce = GetU64Le(data + kNonceOffset);
  out->payload = data + kHeaderSize;
  out->payload_size = payload_len;
}

}  // namespace

WireError ViewWireEnvelope(const uint8_t* data, std::size_t size,
                           WireEnvelopeView* out) {
  uint32_t payload_len = 0;
  const WireError err = ViewStructural(data, size, &payload_len);
  if (err != WireError::kOk) return err;
  const uint32_t stored = GetU32Le(data + size - kChecksumSize);
  const uint32_t computed = WireChecksum(data, size - kChecksumSize);
  if (stored != computed) return WireError::kChecksumMismatch;
  FillView(data, payload_len, out);
  return WireError::kOk;
}

WireError ViewWireEnvelopePrechecked(const uint8_t* data, std::size_t size,
                                     bool checksum_ok,
                                     WireEnvelopeView* out) {
  uint32_t payload_len = 0;
  const WireError err = ViewStructural(data, size, &payload_len);
  if (err != WireError::kOk) return err;
  if (!checksum_ok) return WireError::kChecksumMismatch;
  FillView(data, payload_len, out);
  return WireError::kOk;
}

WireError GrrPayloadFromBytes(const uint8_t* payload, std::size_t size,
                              std::size_t domain, GrrWireReport* out) {
  const std::size_t bytes = GrrValueBytes(domain);
  if (size != bytes) return WireError::kPayloadSize;
  uint32_t value = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    value |= static_cast<uint32_t>(payload[i]) << (8 * i);
  }
  if (value >= domain) return WireError::kValueOutOfDomain;
  out->value = value;
  return WireError::kOk;
}

WireError OlhPayloadFromBytes(const uint8_t* payload, std::size_t size,
                              OlhWireReport* out) {
  if (size != 12) return WireError::kPayloadSize;
  out->seed = GetU64Le(payload);
  out->bucket = GetU32Le(payload + 8);
  return WireError::kOk;
}

WireError HrPayloadFromBytes(const uint8_t* payload, std::size_t size,
                             HrWireReport* out) {
  if (size != 4) return WireError::kPayloadSize;
  out->column = GetU32Le(payload);
  return WireError::kOk;
}

bool BitVectorPayloadSizeOk(std::size_t size, std::size_t domain) {
  return size == (domain + 7) / 8;
}

std::size_t GrrWireValueBytes(std::size_t domain) {
  return GrrValueBytes(domain);
}

std::vector<OracleId> AllOracleIds() {
  return {OracleId::kGrr, OracleId::kOue, OracleId::kOlh, OracleId::kSue,
          OracleId::kHr};
}

const char* OracleIdName(OracleId oracle) {
  switch (oracle) {
    case OracleId::kGrr: return "GRR";
    case OracleId::kOue: return "OUE";
    case OracleId::kOlh: return "OLH";
    case OracleId::kSue: return "SUE";
    case OracleId::kHr: return "HR";
  }
  return "?";
}

OracleId OracleIdFromName(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (OracleId id : AllOracleIds()) {
    if (upper == OracleIdName(id)) return id;
  }
  throw std::invalid_argument("unknown oracle name: " + name);
}

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kOk: return "ok";
    case WireError::kTooShort: return "packet too short";
    case WireError::kBadMagic: return "bad magic";
    case WireError::kBadVersion: return "bad version";
    case WireError::kUnknownOracle: return "unknown oracle id";
    case WireError::kLengthMismatch: return "length mismatch";
    case WireError::kChecksumMismatch: return "checksum mismatch";
    case WireError::kWrongOracle: return "payload oracle mismatch";
    case WireError::kPayloadSize: return "payload size mismatch";
    case WireError::kValueOutOfDomain: return "value outside domain";
  }
  return "?";
}

namespace {

// Byte layout of the checksum input is defined little-endian so the value
// is identical across hosts; packet bytes can sit at any alignment, so
// words are assembled with memcpy, never by reinterpreting the pointer.
inline uint64_t ChecksumLoadLe64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap64(v);
#endif
  return v;
}

inline simd::U64x ChecksumLoadBlock(const uint8_t* p) {
  alignas(32) uint64_t w[simd::kLanes] = {
      ChecksumLoadLe64(p), ChecksumLoadLe64(p + 8), ChecksumLoadLe64(p + 16),
      ChecksumLoadLe64(p + 24)};
  return simd::LoadU64(w);
}

// Distinct lane seeds (hex digits of pi) so lanes never collapse to the
// same stream; lane 0 additionally folds in the input size. Shared with
// the AVX-512 batch verifier (wire_internal.h) so the two constructions
// can never drift apart.
using wire_internal::kChecksumSeed0;
using wire_internal::kChecksumSeed1;
using wire_internal::kChecksumSeed2;
using wire_internal::kChecksumSeed3;

}  // namespace

uint32_t WireChecksum(const uint8_t* data, std::size_t size) {
  // Four SplitMix64 lanes, each absorbing one 64-bit word per 32-byte
  // block: lane[j] = Mix64(lane[j] ^ word[j]). The per-block recurrence is
  // serial but the four lanes run in parallel across the SIMD layer (AVX2
  // or the generic scalar backend — bit-identical by construction, pinned
  // by wire_fuzz_test's parity fuzz). A short tail is absorbed as one
  // zero-padded block; the finalizer folds the lanes at distinct rotations
  // plus the size, so truncation, extension and any single-bit flip all
  // change the value.
  alignas(32) uint64_t seed[simd::kLanes] = {
      kChecksumSeed0 ^ static_cast<uint64_t>(size), kChecksumSeed1,
      kChecksumSeed2, kChecksumSeed3};
  simd::U64x lanes = simd::LoadU64(seed);
  const std::size_t blocks = size / 32;
  for (std::size_t b = 0; b < blocks; ++b) {
    lanes = simd::Mix64V(simd::XorU64(lanes, ChecksumLoadBlock(data + 32 * b)));
  }
  const std::size_t rem = size - 32 * blocks;
  if (rem != 0) {
    uint8_t tail[32] = {0};
    std::memcpy(tail, data + 32 * blocks, rem);
    lanes = simd::Mix64V(simd::XorU64(lanes, ChecksumLoadBlock(tail)));
  }
  alignas(32) uint64_t l[simd::kLanes];
  simd::StoreU64(l, lanes);
  return static_cast<uint32_t>(Mix64(static_cast<uint64_t>(size) ^ l[0] ^
                                     std::rotl(l[1], 17) ^
                                     std::rotl(l[2], 34) ^
                                     std::rotl(l[3], 51)));
}

namespace {

inline uint8_t VerifyOneChecksum(const uint8_t* data, std::size_t size) {
  return size >= kChecksumSize &&
                 GetU32Le(data + size - kChecksumSize) ==
                     WireChecksum(data, size - kChecksumSize)
             ? 1
             : 0;
}

}  // namespace

void VerifyChecksums(const uint8_t* const* datas, const std::size_t* sizes,
                     std::size_t n, uint8_t* ok) {
  std::size_t i = 0;
  // Fast path: a run of 8 equal-size packets (one FO round is uniform by
  // construction) verifies in one 8-wide AVX-512 pass. Ragged spots fall
  // through one packet at a time; verdicts are identical either way.
  if (simd::Avx512Available()) {
    while (i + 8 <= n) {
      const std::size_t size = sizes[i];
      bool uniform = size >= kChecksumSize;
      for (std::size_t j = 1; j < 8 && uniform; ++j) {
        uniform = sizes[i + j] == size;
      }
      if (!uniform || !wire_internal::VerifyChecksums8Avx512(datas + i, size,
                                                             ok + i)) {
        ok[i] = VerifyOneChecksum(datas[i], sizes[i]);
        ++i;
        continue;
      }
      i += 8;
    }
  }
  for (; i < n; ++i) {
    ok[i] = VerifyOneChecksum(datas[i], sizes[i]);
  }
}

std::vector<uint8_t> EncodeGrrReport(uint32_t value, std::size_t domain,
                                     uint32_t timestamp, uint64_t nonce) {
  if (value >= domain) throw std::invalid_argument("value outside domain");
  std::vector<uint8_t> payload;
  const std::size_t bytes = GrrValueBytes(domain);
  for (std::size_t i = 0; i < bytes; ++i) {
    payload.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
  return BuildEnvelope(OracleId::kGrr, timestamp, nonce, payload);
}

std::vector<uint8_t> EncodeBitVectorReport(const std::vector<bool>& bits,
                                           OracleId oracle,
                                           uint32_t timestamp,
                                           uint64_t nonce) {
  if (oracle != OracleId::kOue && oracle != OracleId::kSue) {
    throw std::invalid_argument("bit-vector payloads are OUE/SUE only");
  }
  std::vector<uint8_t> payload((bits.size() + 7) / 8, 0);
  for (std::size_t k = 0; k < bits.size(); ++k) {
    if (bits[k]) payload[k / 8] |= static_cast<uint8_t>(1u << (k % 8));
  }
  return BuildEnvelope(oracle, timestamp, nonce, payload);
}

std::vector<uint8_t> EncodeOlhReport(uint64_t seed, uint32_t bucket,
                                     uint32_t timestamp, uint64_t nonce) {
  std::vector<uint8_t> payload;
  PutU64Le(&payload, seed);
  PutU32Le(&payload, bucket);
  return BuildEnvelope(OracleId::kOlh, timestamp, nonce, payload);
}

std::vector<uint8_t> EncodeHrReport(uint32_t column, uint32_t timestamp,
                                    uint64_t nonce) {
  std::vector<uint8_t> payload;
  PutU32Le(&payload, column);
  return BuildEnvelope(OracleId::kHr, timestamp, nonce, payload);
}

bool PeekWireNonce(const uint8_t* data, std::size_t size, uint64_t* nonce) {
  if (size < kHeaderSize + kChecksumSize) return false;
  if (data[0] != kMagic || data[1] != kVersion) return false;
  *nonce = GetU64Le(data + kNonceOffset);
  return true;
}

WireError TryDecodeEnvelope(const uint8_t* data, std::size_t size,
                            WireEnvelope* out) {
  EnvelopeView view;
  const WireError err = ViewEnvelope(data, size, &view);
  if (err != WireError::kOk) return err;
  out->oracle = view.oracle;
  out->timestamp = view.timestamp;
  out->nonce = view.nonce;
  out->payload.assign(view.payload, view.payload + view.payload_size);
  return WireError::kOk;
}

WireError TryDecodeEnvelope(const std::vector<uint8_t>& packet,
                            WireEnvelope* out) {
  return TryDecodeEnvelope(packet.data(), packet.size(), out);
}

WireError TryDecodeGrrPayload(const WireEnvelope& envelope,
                              std::size_t domain, GrrWireReport* out) {
  if (envelope.oracle != OracleId::kGrr) return WireError::kWrongOracle;
  return GrrPayloadFromBytes(envelope.payload.data(),
                             envelope.payload.size(), domain, out);
}

WireError TryDecodeBitVectorPayload(const WireEnvelope& envelope,
                                    std::size_t domain,
                                    BitVectorWireReport* out) {
  if (envelope.oracle != OracleId::kOue &&
      envelope.oracle != OracleId::kSue) {
    return WireError::kWrongOracle;
  }
  return BitVectorPayloadFromBytes(envelope.payload.data(),
                                   envelope.payload.size(), domain, out);
}

WireError TryDecodeOlhPayload(const WireEnvelope& envelope,
                              OlhWireReport* out) {
  if (envelope.oracle != OracleId::kOlh) return WireError::kWrongOracle;
  return OlhPayloadFromBytes(envelope.payload.data(),
                             envelope.payload.size(), out);
}

WireError TryDecodeHrPayload(const WireEnvelope& envelope, HrWireReport* out) {
  if (envelope.oracle != OracleId::kHr) return WireError::kWrongOracle;
  return HrPayloadFromBytes(envelope.payload.data(), envelope.payload.size(),
                            out);
}

WireError TryDecodeReport(const uint8_t* data, std::size_t size,
                          std::size_t domain, DecodedReport* out) {
  // Hot path: validate through a zero-copy view — no payload
  // materialization, and with a reused DecodedReport no allocation at all.
  EnvelopeView view;
  const WireError err = ViewEnvelope(data, size, &view);
  if (err != WireError::kOk) return err;
  out->oracle = view.oracle;
  out->timestamp = view.timestamp;
  out->nonce = view.nonce;
  switch (view.oracle) {
    case OracleId::kGrr:
      return GrrPayloadFromBytes(view.payload, view.payload_size, domain,
                                 &out->grr);
    case OracleId::kOue:
    case OracleId::kSue:
      return BitVectorPayloadFromBytes(view.payload, view.payload_size,
                                       domain, &out->bits);
    case OracleId::kOlh:
      return OlhPayloadFromBytes(view.payload, view.payload_size, &out->olh);
    case OracleId::kHr:
      return HrPayloadFromBytes(view.payload, view.payload_size, &out->hr);
  }
  return WireError::kUnknownOracle;  // unreachable after envelope validation
}

WireError TryDecodeReport(const std::vector<uint8_t>& packet,
                          std::size_t domain, DecodedReport* out) {
  return TryDecodeReport(packet.data(), packet.size(), domain, out);
}

WireEnvelope DecodeEnvelope(const std::vector<uint8_t>& packet) {
  WireEnvelope env;
  const WireError err = TryDecodeEnvelope(packet, &env);
  if (err != WireError::kOk) ThrowWire(err);
  return env;
}

GrrWireReport DecodeGrrPayload(const WireEnvelope& envelope,
                               std::size_t domain) {
  GrrWireReport out;
  const WireError err = TryDecodeGrrPayload(envelope, domain, &out);
  if (err != WireError::kOk) ThrowWire(err);
  return out;
}

BitVectorWireReport DecodeBitVectorPayload(const WireEnvelope& envelope,
                                           std::size_t domain) {
  BitVectorWireReport out;
  const WireError err = TryDecodeBitVectorPayload(envelope, domain, &out);
  if (err != WireError::kOk) ThrowWire(err);
  return out;
}

OlhWireReport DecodeOlhPayload(const WireEnvelope& envelope) {
  OlhWireReport out;
  const WireError err = TryDecodeOlhPayload(envelope, &out);
  if (err != WireError::kOk) ThrowWire(err);
  return out;
}

HrWireReport DecodeHrPayload(const WireEnvelope& envelope) {
  HrWireReport out;
  const WireError err = TryDecodeHrPayload(envelope, &out);
  if (err != WireError::kOk) ThrowWire(err);
  return out;
}

std::size_t EncodedReportSize(OracleId oracle, std::size_t domain) {
  std::size_t payload = 0;
  switch (oracle) {
    case OracleId::kGrr: payload = GrrValueBytes(domain); break;
    case OracleId::kOue:
    case OracleId::kSue: payload = (domain + 7) / 8; break;
    case OracleId::kOlh: payload = 12; break;
    case OracleId::kHr: payload = 4; break;
  }
  return kHeaderSize + payload + kChecksumSize;
}

}  // namespace ldpids
