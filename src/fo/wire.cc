#include "fo/wire.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"

namespace ldpids {

void PutU32Le(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64Le(std::vector<uint8_t>* out, uint64_t v) {
  PutU32Le(out, static_cast<uint32_t>(v));
  PutU32Le(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64Le(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32Le(p)) |
         (static_cast<uint64_t>(GetU32Le(p + 4)) << 32);
}

namespace {

constexpr uint8_t kMagic = 0xAD;
constexpr uint8_t kVersion = 2;  // v2 added the 8-byte user nonce
constexpr std::size_t kHeaderSize = 19;
constexpr std::size_t kChecksumSize = 4;
constexpr std::size_t kNonceOffset = 7;
constexpr std::size_t kLengthOffset = 15;

std::size_t GrrValueBytes(std::size_t domain) {
  if (domain <= 256) return 1;
  if (domain <= 65536) return 2;
  return 4;
}

std::vector<uint8_t> BuildEnvelope(OracleId oracle, uint32_t timestamp,
                                   uint64_t nonce,
                                   const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kHeaderSize + payload.size() + kChecksumSize);
  out.push_back(kMagic);
  out.push_back(kVersion);
  out.push_back(static_cast<uint8_t>(oracle));
  PutU32Le(&out, timestamp);
  PutU64Le(&out, nonce);
  PutU32Le(&out, static_cast<uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  PutU32Le(&out, WireChecksum(out.data(), out.size()));
  return out;
}

// Shared by the throwing wrappers.
[[noreturn]] void ThrowWire(WireError error) {
  throw std::runtime_error(std::string("wire: ") + WireErrorName(error));
}

// Legacy alias kept for the envelope-based code below; the view itself is
// public now (WireEnvelopeView) so the batch staging path (report_arena)
// decodes headers through exactly the same validation.
using EnvelopeView = WireEnvelopeView;

WireError ViewEnvelope(const uint8_t* data, std::size_t size,
                       EnvelopeView* out) {
  return ViewWireEnvelope(data, size, out);
}

WireError BitVectorPayloadFromBytes(const uint8_t* payload, std::size_t size,
                                    std::size_t domain,
                                    BitVectorWireReport* out) {
  if (!BitVectorPayloadSizeOk(size, domain)) return WireError::kPayloadSize;
  // assign reuses the caller's bit buffer, so a reused DecodedReport
  // scratch makes this allocation-free after the first packet.
  out->bits.assign(domain, false);
  for (std::size_t k = 0; k < domain; ++k) {
    out->bits[k] = (payload[k / 8] >> (k % 8)) & 1u;
  }
  return WireError::kOk;
}

}  // namespace

WireError ViewWireEnvelope(const uint8_t* data, std::size_t size,
                           WireEnvelopeView* out) {
  if (size < kHeaderSize + kChecksumSize) return WireError::kTooShort;
  if (data[0] != kMagic) return WireError::kBadMagic;
  if (data[1] != kVersion) return WireError::kBadVersion;
  const uint8_t oracle_raw = data[2];
  if (oracle_raw < 1 || oracle_raw > 5) return WireError::kUnknownOracle;
  const uint32_t payload_len = GetU32Le(data + kLengthOffset);
  if (size != kHeaderSize + payload_len + kChecksumSize) {
    return WireError::kLengthMismatch;
  }
  const uint32_t stored = GetU32Le(data + size - kChecksumSize);
  const uint32_t computed = WireChecksum(data, size - kChecksumSize);
  if (stored != computed) return WireError::kChecksumMismatch;

  out->oracle = static_cast<OracleId>(oracle_raw);
  out->timestamp = GetU32Le(data + 3);
  out->nonce = GetU64Le(data + kNonceOffset);
  out->payload = data + kHeaderSize;
  out->payload_size = payload_len;
  return WireError::kOk;
}

WireError GrrPayloadFromBytes(const uint8_t* payload, std::size_t size,
                              std::size_t domain, GrrWireReport* out) {
  const std::size_t bytes = GrrValueBytes(domain);
  if (size != bytes) return WireError::kPayloadSize;
  uint32_t value = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    value |= static_cast<uint32_t>(payload[i]) << (8 * i);
  }
  if (value >= domain) return WireError::kValueOutOfDomain;
  out->value = value;
  return WireError::kOk;
}

WireError OlhPayloadFromBytes(const uint8_t* payload, std::size_t size,
                              OlhWireReport* out) {
  if (size != 12) return WireError::kPayloadSize;
  out->seed = GetU64Le(payload);
  out->bucket = GetU32Le(payload + 8);
  return WireError::kOk;
}

WireError HrPayloadFromBytes(const uint8_t* payload, std::size_t size,
                             HrWireReport* out) {
  if (size != 4) return WireError::kPayloadSize;
  out->column = GetU32Le(payload);
  return WireError::kOk;
}

bool BitVectorPayloadSizeOk(std::size_t size, std::size_t domain) {
  return size == (domain + 7) / 8;
}

std::size_t GrrWireValueBytes(std::size_t domain) {
  return GrrValueBytes(domain);
}

std::vector<OracleId> AllOracleIds() {
  return {OracleId::kGrr, OracleId::kOue, OracleId::kOlh, OracleId::kSue,
          OracleId::kHr};
}

const char* OracleIdName(OracleId oracle) {
  switch (oracle) {
    case OracleId::kGrr: return "GRR";
    case OracleId::kOue: return "OUE";
    case OracleId::kOlh: return "OLH";
    case OracleId::kSue: return "SUE";
    case OracleId::kHr: return "HR";
  }
  return "?";
}

OracleId OracleIdFromName(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (OracleId id : AllOracleIds()) {
    if (upper == OracleIdName(id)) return id;
  }
  throw std::invalid_argument("unknown oracle name: " + name);
}

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kOk: return "ok";
    case WireError::kTooShort: return "packet too short";
    case WireError::kBadMagic: return "bad magic";
    case WireError::kBadVersion: return "bad version";
    case WireError::kUnknownOracle: return "unknown oracle id";
    case WireError::kLengthMismatch: return "length mismatch";
    case WireError::kChecksumMismatch: return "checksum mismatch";
    case WireError::kWrongOracle: return "payload oracle mismatch";
    case WireError::kPayloadSize: return "payload size mismatch";
    case WireError::kValueOutOfDomain: return "value outside domain";
  }
  return "?";
}

uint32_t WireChecksum(const uint8_t* data, std::size_t size) {
  // Mix the bytes through SplitMix64 word-wise; take the low 32 bits.
  uint64_t acc = 0x5DEECE66DULL ^ size;
  for (std::size_t i = 0; i < size; ++i) {
    acc = Mix64(acc ^ (static_cast<uint64_t>(data[i]) + i * 0x9E37ULL));
  }
  return static_cast<uint32_t>(acc);
}

std::vector<uint8_t> EncodeGrrReport(uint32_t value, std::size_t domain,
                                     uint32_t timestamp, uint64_t nonce) {
  if (value >= domain) throw std::invalid_argument("value outside domain");
  std::vector<uint8_t> payload;
  const std::size_t bytes = GrrValueBytes(domain);
  for (std::size_t i = 0; i < bytes; ++i) {
    payload.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
  return BuildEnvelope(OracleId::kGrr, timestamp, nonce, payload);
}

std::vector<uint8_t> EncodeBitVectorReport(const std::vector<bool>& bits,
                                           OracleId oracle,
                                           uint32_t timestamp,
                                           uint64_t nonce) {
  if (oracle != OracleId::kOue && oracle != OracleId::kSue) {
    throw std::invalid_argument("bit-vector payloads are OUE/SUE only");
  }
  std::vector<uint8_t> payload((bits.size() + 7) / 8, 0);
  for (std::size_t k = 0; k < bits.size(); ++k) {
    if (bits[k]) payload[k / 8] |= static_cast<uint8_t>(1u << (k % 8));
  }
  return BuildEnvelope(oracle, timestamp, nonce, payload);
}

std::vector<uint8_t> EncodeOlhReport(uint64_t seed, uint32_t bucket,
                                     uint32_t timestamp, uint64_t nonce) {
  std::vector<uint8_t> payload;
  PutU64Le(&payload, seed);
  PutU32Le(&payload, bucket);
  return BuildEnvelope(OracleId::kOlh, timestamp, nonce, payload);
}

std::vector<uint8_t> EncodeHrReport(uint32_t column, uint32_t timestamp,
                                    uint64_t nonce) {
  std::vector<uint8_t> payload;
  PutU32Le(&payload, column);
  return BuildEnvelope(OracleId::kHr, timestamp, nonce, payload);
}

bool PeekWireNonce(const uint8_t* data, std::size_t size, uint64_t* nonce) {
  if (size < kHeaderSize + kChecksumSize) return false;
  if (data[0] != kMagic || data[1] != kVersion) return false;
  *nonce = GetU64Le(data + kNonceOffset);
  return true;
}

WireError TryDecodeEnvelope(const uint8_t* data, std::size_t size,
                            WireEnvelope* out) {
  EnvelopeView view;
  const WireError err = ViewEnvelope(data, size, &view);
  if (err != WireError::kOk) return err;
  out->oracle = view.oracle;
  out->timestamp = view.timestamp;
  out->nonce = view.nonce;
  out->payload.assign(view.payload, view.payload + view.payload_size);
  return WireError::kOk;
}

WireError TryDecodeEnvelope(const std::vector<uint8_t>& packet,
                            WireEnvelope* out) {
  return TryDecodeEnvelope(packet.data(), packet.size(), out);
}

WireError TryDecodeGrrPayload(const WireEnvelope& envelope,
                              std::size_t domain, GrrWireReport* out) {
  if (envelope.oracle != OracleId::kGrr) return WireError::kWrongOracle;
  return GrrPayloadFromBytes(envelope.payload.data(),
                             envelope.payload.size(), domain, out);
}

WireError TryDecodeBitVectorPayload(const WireEnvelope& envelope,
                                    std::size_t domain,
                                    BitVectorWireReport* out) {
  if (envelope.oracle != OracleId::kOue &&
      envelope.oracle != OracleId::kSue) {
    return WireError::kWrongOracle;
  }
  return BitVectorPayloadFromBytes(envelope.payload.data(),
                                   envelope.payload.size(), domain, out);
}

WireError TryDecodeOlhPayload(const WireEnvelope& envelope,
                              OlhWireReport* out) {
  if (envelope.oracle != OracleId::kOlh) return WireError::kWrongOracle;
  return OlhPayloadFromBytes(envelope.payload.data(),
                             envelope.payload.size(), out);
}

WireError TryDecodeHrPayload(const WireEnvelope& envelope, HrWireReport* out) {
  if (envelope.oracle != OracleId::kHr) return WireError::kWrongOracle;
  return HrPayloadFromBytes(envelope.payload.data(), envelope.payload.size(),
                            out);
}

WireError TryDecodeReport(const uint8_t* data, std::size_t size,
                          std::size_t domain, DecodedReport* out) {
  // Hot path: validate through a zero-copy view — no payload
  // materialization, and with a reused DecodedReport no allocation at all.
  EnvelopeView view;
  const WireError err = ViewEnvelope(data, size, &view);
  if (err != WireError::kOk) return err;
  out->oracle = view.oracle;
  out->timestamp = view.timestamp;
  out->nonce = view.nonce;
  switch (view.oracle) {
    case OracleId::kGrr:
      return GrrPayloadFromBytes(view.payload, view.payload_size, domain,
                                 &out->grr);
    case OracleId::kOue:
    case OracleId::kSue:
      return BitVectorPayloadFromBytes(view.payload, view.payload_size,
                                       domain, &out->bits);
    case OracleId::kOlh:
      return OlhPayloadFromBytes(view.payload, view.payload_size, &out->olh);
    case OracleId::kHr:
      return HrPayloadFromBytes(view.payload, view.payload_size, &out->hr);
  }
  return WireError::kUnknownOracle;  // unreachable after envelope validation
}

WireError TryDecodeReport(const std::vector<uint8_t>& packet,
                          std::size_t domain, DecodedReport* out) {
  return TryDecodeReport(packet.data(), packet.size(), domain, out);
}

WireEnvelope DecodeEnvelope(const std::vector<uint8_t>& packet) {
  WireEnvelope env;
  const WireError err = TryDecodeEnvelope(packet, &env);
  if (err != WireError::kOk) ThrowWire(err);
  return env;
}

GrrWireReport DecodeGrrPayload(const WireEnvelope& envelope,
                               std::size_t domain) {
  GrrWireReport out;
  const WireError err = TryDecodeGrrPayload(envelope, domain, &out);
  if (err != WireError::kOk) ThrowWire(err);
  return out;
}

BitVectorWireReport DecodeBitVectorPayload(const WireEnvelope& envelope,
                                           std::size_t domain) {
  BitVectorWireReport out;
  const WireError err = TryDecodeBitVectorPayload(envelope, domain, &out);
  if (err != WireError::kOk) ThrowWire(err);
  return out;
}

OlhWireReport DecodeOlhPayload(const WireEnvelope& envelope) {
  OlhWireReport out;
  const WireError err = TryDecodeOlhPayload(envelope, &out);
  if (err != WireError::kOk) ThrowWire(err);
  return out;
}

HrWireReport DecodeHrPayload(const WireEnvelope& envelope) {
  HrWireReport out;
  const WireError err = TryDecodeHrPayload(envelope, &out);
  if (err != WireError::kOk) ThrowWire(err);
  return out;
}

std::size_t EncodedReportSize(OracleId oracle, std::size_t domain) {
  std::size_t payload = 0;
  switch (oracle) {
    case OracleId::kGrr: payload = GrrValueBytes(domain); break;
    case OracleId::kOue:
    case OracleId::kSue: payload = (domain + 7) / 8; break;
    case OracleId::kOlh: payload = 12; break;
    case OracleId::kHr: payload = 4; break;
  }
  return kHeaderSize + payload + kChecksumSize;
}

}  // namespace ldpids
