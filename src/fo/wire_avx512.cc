// AVX-512 batch wire-checksum verification: eight packets per pass, lane p
// of every vector carrying packet p. Compiled with the AVX-512 flags only
// when CMake's probe succeeds (LDPIDS_AVX512_COMPILED); otherwise this TU
// degrades to a return-false stub and VerifyChecksums stays on the
// per-packet 4-lane path.
//
// The win over the per-packet checksum is lane utilization: a report packet
// is one or two 32-byte blocks, so the 4-lane-within-a-packet scheme spends
// most of its time in the scalar finalizer and the per-call setup. Across
// packets the whole pipeline — lane seeding, block absorption, the rotate
// fold and the final Mix64 — runs 8 packets wide with native 64-bit
// multiplies (_mm512_mullo_epi64), and the per-packet recurrence is the
// exact scalar sequence, so the verdicts are byte-identical (pinned by
// wire_fuzz_test's parity fuzz, which runs the batched entry too).
#include "fo/wire_internal.h"

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "util/simd/avx512.h"

namespace ldpids::wire_internal {

#if defined(LDPIDS_AVX512_COMPILED) && defined(__AVX512F__) && \
    defined(__AVX512DQ__)

namespace {

using simd::Broadcast8;
using simd::Mix64V8;

// vindex of the 8 staged tail rows (32 bytes apart) for word-j gathers.
inline __m512i TailRowIndex() {
  return _mm512_setr_epi64(0, 32, 64, 96, 128, 160, 192, 224);
}

// All-lane gather through the masked form: GCC's plain gather intrinsic
// feeds an undefined source register, which -Werror=maybe-uninitialized
// rejects; an explicit zero source with a full mask is the same operation.
inline __m512i Gather8(__m512i vindex, const void* base) {
  return _mm512_mask_i64gather_epi64(_mm512_setzero_si512(),
                                     static_cast<__mmask8>(0xFF), vindex,
                                     base, 1);
}

}  // namespace

bool VerifyChecksums8Avx512(const uint8_t* const* datas, std::size_t size,
                            uint8_t* ok) {
  if (!simd::Avx512Available()) return false;
  const std::size_t input = size - kWireChecksumSize;

  // Lane p of addrs is packet p's base address; gathers with scale 1 pull
  // word j of block b from all 8 packets at once. x86-64 only (the guard
  // above), so the loads are little-endian by construction, matching
  // ChecksumLoadLe64.
  const __m512i addrs = _mm512_loadu_si512(datas);
  __m512i l0 = Broadcast8(kChecksumSeed0 ^ static_cast<uint64_t>(input));
  __m512i l1 = Broadcast8(kChecksumSeed1);
  __m512i l2 = Broadcast8(kChecksumSeed2);
  __m512i l3 = Broadcast8(kChecksumSeed3);

  const std::size_t blocks = input / 32;
  for (std::size_t b = 0; b < blocks; ++b) {
    const __m512i at = _mm512_add_epi64(addrs, Broadcast8(32 * b));
    l0 = Mix64V8(_mm512_xor_si512(l0, Gather8(at, nullptr)));
    l1 = Mix64V8(_mm512_xor_si512(
        l1, Gather8(_mm512_add_epi64(at, Broadcast8(8)), nullptr)));
    l2 = Mix64V8(_mm512_xor_si512(
        l2, Gather8(_mm512_add_epi64(at, Broadcast8(16)), nullptr)));
    l3 = Mix64V8(_mm512_xor_si512(
        l3, Gather8(_mm512_add_epi64(at, Broadcast8(24)), nullptr)));
  }
  const std::size_t rem = input - 32 * blocks;
  if (rem != 0) {
    // Zero-padded tail block, staged so the gathers never read past a
    // packet's end (the scalar path pads identically).
    alignas(64) uint8_t tail[8 * 32];
    std::memset(tail, 0, sizeof(tail));
    for (std::size_t p = 0; p < 8; ++p) {
      std::memcpy(tail + 32 * p, datas[p] + 32 * blocks, rem);
    }
    const __m512i rows = TailRowIndex();
    l0 = Mix64V8(_mm512_xor_si512(l0, Gather8(rows, tail)));
    l1 = Mix64V8(_mm512_xor_si512(l1, Gather8(rows, tail + 8)));
    l2 = Mix64V8(_mm512_xor_si512(l2, Gather8(rows, tail + 16)));
    l3 = Mix64V8(_mm512_xor_si512(l3, Gather8(rows, tail + 24)));
  }

  const __m512i folded = _mm512_xor_si512(
      _mm512_xor_si512(Broadcast8(static_cast<uint64_t>(input)), l0),
      _mm512_xor_si512(_mm512_rol_epi64(l1, 17),
                       _mm512_xor_si512(_mm512_rol_epi64(l2, 34),
                                        _mm512_rol_epi64(l3, 51))));
  alignas(64) uint64_t computed[8];
  _mm512_store_si512(computed, Mix64V8(folded));

  for (std::size_t p = 0; p < 8; ++p) {
    uint32_t stored;
    std::memcpy(&stored, datas[p] + input, sizeof(stored));
    ok[p] = static_cast<uint32_t>(computed[p]) == stored ? 1 : 0;
  }
  return true;
}

#else  // !LDPIDS_AVX512_COMPILED

bool VerifyChecksums8Avx512(const uint8_t* const*, std::size_t, uint8_t*) {
  return false;
}

#endif

}  // namespace ldpids::wire_internal
