#include "fo/frequency_oracle.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fo/grr.h"
#include "fo/hr.h"
#include "fo/olh.h"
#include "fo/oue.h"
#include "fo/report_arena.h"
#include "fo/sue.h"

namespace ldpids {

void FoSketch::AddReports(const ArenaSlice& slice) {
  // Scalar reference: reconstruct each staged row and fold it through the
  // single-report path. Oracles override this with vectorized column
  // kernels; fo_kernel_test pins those overrides against this loop.
  DecodedReport scratch;
  for (std::size_t i = 0; i < slice.count; ++i) {
    slice.arena->ReportAt(slice.indices != nullptr ? slice.indices[i] : i,
                          &scratch);
    if (!AddReport(scratch)) {
      throw std::logic_error("AddReports: slice row rejected by the sketch");
    }
  }
}

void FoSketch::AddUsers(const std::vector<uint32_t>& values, Rng& rng) {
  // Batches too small to be worth a d-sized tally always take the exact
  // per-user protocol.
  constexpr std::size_t kMinTallyBatch = 8;
  if (values.size() < kMinTallyBatch) {
    for (uint32_t v : values) AddUser(v, rng);
    return;
  }
  const std::size_t d = domain();
  Counts counts(d, 0);
  for (uint32_t v : values) {
    if (v >= d) throw std::out_of_range("FO value out of domain");
    ++counts[v];
  }
  if (CohortPaysOff(values.size(), counts)) {
    AddCohort(counts, rng);
  } else {
    for (uint32_t v : values) AddUser(v, rng);
  }
}

void ValidateFoParams(const FoParams& params) {
  if (params.domain < 2) {
    throw std::invalid_argument("FO domain must have at least 2 values");
  }
  if (!(params.epsilon > 0.0)) {
    throw std::invalid_argument("FO epsilon must be positive");
  }
}

const FrequencyOracle& GetFrequencyOracle(const std::string& name) {
  static const GrrOracle grr;
  static const OueOracle oue;
  static const OlhOracle olh;
  static const SueOracle sue;
  static const HrOracle hr;
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "GRR") return grr;
  if (upper == "OUE") return oue;
  if (upper == "OLH") return olh;
  if (upper == "SUE") return sue;
  if (upper == "HR") return hr;
  throw std::invalid_argument("unknown frequency oracle: " + name);
}

std::vector<std::string> AllFrequencyOracleNames() {
  return {"GRR", "OUE", "OLH", "SUE", "HR"};
}

}  // namespace ldpids
