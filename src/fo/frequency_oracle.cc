#include "fo/frequency_oracle.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <string>
#include <vector>

#include "fo/grr.h"
#include "fo/hr.h"
#include "fo/olh.h"
#include "fo/oue.h"
#include "fo/sue.h"

namespace ldpids {

void ValidateFoParams(const FoParams& params) {
  if (params.domain < 2) {
    throw std::invalid_argument("FO domain must have at least 2 values");
  }
  if (!(params.epsilon > 0.0)) {
    throw std::invalid_argument("FO epsilon must be positive");
  }
}

const FrequencyOracle& GetFrequencyOracle(const std::string& name) {
  static const GrrOracle grr;
  static const OueOracle oue;
  static const OlhOracle olh;
  static const SueOracle sue;
  static const HrOracle hr;
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "GRR") return grr;
  if (upper == "OUE") return oue;
  if (upper == "OLH") return olh;
  if (upper == "SUE") return sue;
  if (upper == "HR") return hr;
  throw std::invalid_argument("unknown frequency oracle: " + name);
}

std::vector<std::string> AllFrequencyOracleNames() {
  return {"GRR", "OUE", "OLH", "SUE", "HR"};
}

}  // namespace ldpids
