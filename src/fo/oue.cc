#include "fo/oue.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "fo/fo_kernels.h"
#include "fo/report_arena.h"
#include "fo/wire.h"
#include "util/distributions.h"

namespace ldpids {

namespace {

class OueSketch final : public FoSketch {
 public:
  explicit OueSketch(const FoParams& params)
      : d_(params.domain),
        q_(OueOracle::ZeroFlipProbability(params.epsilon)),
        one_counts_(params.domain, 0) {}

  void AddUser(uint32_t true_value, Rng& rng) override {
    if (true_value >= d_) throw std::out_of_range("OUE value out of domain");
    for (std::size_t k = 0; k < d_; ++k) {
      const double pr = (k == true_value) ? 0.5 : q_;
      if (rng.Bernoulli(pr)) ++one_counts_[k];
    }
    ++num_users_;
  }

  void AddCohort(const Counts& true_counts, Rng& rng) override {
    if (true_counts.size() != d_) {
      throw std::invalid_argument("OUE cohort domain mismatch");
    }
    uint64_t n = 0;
    for (uint64_t m : true_counts) n += m;
    // OUE bits are independent across positions, so the per-bin aggregate is
    // exactly Binomial(m_k, 1/2) + Binomial(n - m_k, q).
    for (std::size_t k = 0; k < d_; ++k) {
      one_counts_[k] += SampleBinomial(rng, true_counts[k], 0.5) +
                        SampleBinomial(rng, n - true_counts[k], q_);
    }
    num_users_ += n;
  }

  bool AddReport(const DecodedReport& report) override {
    if (report.oracle != OracleId::kOue) return false;
    if (report.bits.bits.size() != d_) return false;
    for (std::size_t k = 0; k < d_; ++k) {
      if (report.bits.bits[k]) ++one_counts_[k];
    }
    ++num_users_;
    return true;
  }

  void AddReports(const ArenaSlice& slice) override {
    // Slice rows stream straight from the arena's packed bit columns; the
    // kernel spreads four bins per step instead of testing one bool at a
    // time through a rebuilt std::vector<bool>.
    fokernels::FoldBitColumns(slice.arena->bit_words(),
                              slice.arena->words_per_report(), slice.indices,
                              slice.count, d_, one_counts_.data());
    num_users_ += slice.count;
  }

  void MergeFrom(const FoSketch& other) override {
    const auto* peer = dynamic_cast<const OueSketch*>(&other);
    if (peer == nullptr || peer == this || peer->d_ != d_ ||
        peer->q_ != q_) {
      throw std::invalid_argument("OUE merge: incompatible sketch");
    }
    for (std::size_t k = 0; k < d_; ++k) {
      one_counts_[k] += peer->one_counts_[k];
    }
    num_users_ += peer->num_users_;
  }

  void ExportResolvedCounts(Counts* out) const override {
    *out = one_counts_;
  }

  bool AbsorbCounts(const uint64_t* counts, std::size_t count,
                    uint64_t num_users) override {
    if (count != d_) return false;
    for (std::size_t k = 0; k < d_; ++k) one_counts_[k] += counts[k];
    num_users_ += num_users;
    return true;
  }

  void EstimateInto(Histogram* out) const override {
    if (num_users_ == 0) throw std::logic_error("OUE sketch has no users");
    out->resize(d_);
    Histogram& est = *out;
    const double inv_n = 1.0 / static_cast<double>(num_users_);
    fokernels::EstimateAffine(one_counts_.data(), d_, inv_n, q_, 0.5 - q_,
                              est.data());
  }

  std::size_t domain() const override { return d_; }

 private:
  std::size_t d_;
  double q_;
  Counts one_counts_;
};

}  // namespace

double OueOracle::ZeroFlipProbability(double epsilon) {
  return 1.0 / (std::exp(epsilon) + 1.0);
}

std::unique_ptr<FoSketch> OueOracle::CreateSketch(
    const FoParams& params) const {
  ValidateFoParams(params);
  return std::make_unique<OueSketch>(params);
}

double OueOracle::Variance(double epsilon, uint64_t n, std::size_t domain,
                           double f) const {
  (void)domain;  // OUE variance does not depend on d
  const double p = 0.5;
  const double q = ZeroFlipProbability(epsilon);
  const double numer = f * p * (1.0 - p) + (1.0 - f) * q * (1.0 - q);
  return numer / (static_cast<double>(n) * (p - q) * (p - q));
}

double OueOracle::MeanVariance(double epsilon, uint64_t n,
                               std::size_t domain) const {
  // Mean over bins with sum f_k = 1: mean f = 1/d.
  return Variance(epsilon, n, domain, 1.0 / static_cast<double>(domain));
}

std::size_t OueOracle::BytesPerReport(std::size_t domain) const {
  return (domain + 7) / 8;  // d-bit vector
}

}  // namespace ldpids
