#include "fo/client.h"

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "fo/grr.h"

namespace ldpids {

GrrClient::GrrClient(uint64_t seed) : rng_(seed) {}

uint32_t GrrClient::Perturb(uint32_t true_value, double epsilon,
                            std::size_t d) {
  if (true_value >= d) throw std::out_of_range("value outside domain");
  const double p = GrrOracle::KeepProbability(epsilon, d);
  if (rng_.Bernoulli(p)) return true_value;
  const uint32_t r = static_cast<uint32_t>(rng_.UniformInt(d - 1));
  return (r >= true_value) ? r + 1 : r;
}

GrrAggregator::GrrAggregator(double epsilon, std::size_t d)
    : d_(d),
      p_(GrrOracle::KeepProbability(epsilon, d)),
      q_(GrrOracle::LieProbability(epsilon, d)),
      counts_(d, 0) {
  if (d < 2) throw std::invalid_argument("domain must have >= 2 values");
}

void GrrAggregator::Consume(uint32_t report) {
  if (report >= d_) throw std::out_of_range("report outside domain");
  ++counts_[report];
  ++n_;
}

Histogram GrrAggregator::Estimate() const {
  if (n_ == 0) throw std::logic_error("no reports to aggregate");
  Histogram est(d_);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t k = 0; k < d_; ++k) {
    est[k] = (static_cast<double>(counts_[k]) * inv_n - q_) / (p_ - q_);
  }
  return est;
}

}  // namespace ldpids
