#include "fo/client.h"

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "fo/grr.h"
#include "fo/hr.h"
#include "fo/olh.h"
#include "fo/oue.h"
#include "fo/sue.h"
#include "fo/wire.h"

namespace ldpids {

namespace {

// GRR client draw, shared with GrrClient::Perturb: keep w.p. p, otherwise
// uniform over the d-1 other values.
uint32_t GrrDraw(uint32_t true_value, double epsilon, std::size_t d,
                 Rng& rng) {
  const double p = GrrOracle::KeepProbability(epsilon, d);
  if (rng.Bernoulli(p)) return true_value;
  const uint32_t r = static_cast<uint32_t>(rng.UniformInt(d - 1));
  return (r >= true_value) ? r + 1 : r;
}

}  // namespace

std::vector<uint8_t> PerturbToWire(OracleId oracle, uint32_t true_value,
                                   double epsilon, std::size_t domain,
                                   uint32_t timestamp, uint64_t nonce,
                                   Rng& rng) {
  if (domain < 2) throw std::invalid_argument("domain must have >= 2 values");
  if (!(epsilon > 0.0)) throw std::invalid_argument("epsilon must be > 0");
  if (true_value >= domain) throw std::out_of_range("value outside domain");
  switch (oracle) {
    case OracleId::kGrr:
      return EncodeGrrReport(GrrDraw(true_value, epsilon, domain, rng),
                             domain, timestamp, nonce);
    case OracleId::kOue: {
      const double q = OueOracle::ZeroFlipProbability(epsilon);
      std::vector<bool> bits(domain);
      for (std::size_t k = 0; k < domain; ++k) {
        bits[k] = rng.Bernoulli(k == true_value ? 0.5 : q);
      }
      return EncodeBitVectorReport(bits, OracleId::kOue, timestamp, nonce);
    }
    case OracleId::kSue: {
      const double p = SueOracle::KeepProbability(epsilon);
      std::vector<bool> bits(domain);
      for (std::size_t k = 0; k < domain; ++k) {
        bits[k] = rng.Bernoulli(k == true_value ? p : 1.0 - p);
      }
      return EncodeBitVectorReport(bits, OracleId::kSue, timestamp, nonce);
    }
    case OracleId::kOlh: {
      const uint64_t g = OlhOracle::BucketCount(epsilon);
      if (g > std::numeric_limits<uint32_t>::max()) {
        throw std::invalid_argument("OLH bucket does not fit the wire");
      }
      const double p = OlhOracle::KeepProbability(epsilon);
      const uint64_t seed = rng.NextU64();
      const uint64_t own = OlhOracle::HashToBucket(seed, true_value, g);
      uint64_t report = own;
      if (!rng.Bernoulli(p)) {
        const uint64_t r = rng.UniformInt(g - 1);
        report = (r >= own) ? r + 1 : r;
      }
      return EncodeOlhReport(seed, static_cast<uint32_t>(report), timestamp,
                             nonce);
    }
    case OracleId::kHr: {
      const uint64_t k = HrOracle::HadamardSize(domain);
      if (k > std::numeric_limits<uint32_t>::max()) {
        throw std::invalid_argument("HR column does not fit the wire");
      }
      const double p = HrOracle::KeepProbability(epsilon);
      const uint64_t row = static_cast<uint64_t>(true_value) + 1;
      const bool want_positive = rng.Bernoulli(p);
      uint64_t y;
      do {
        y = rng.UniformInt(k);
      } while (HrOracle::HadamardPositive(row, y) != want_positive);
      return EncodeHrReport(static_cast<uint32_t>(y), timestamp, nonce);
    }
  }
  throw std::invalid_argument("unknown oracle id");
}

GrrClient::GrrClient(uint64_t seed) : rng_(seed) {}

uint32_t GrrClient::Perturb(uint32_t true_value, double epsilon,
                            std::size_t d) {
  if (true_value >= d) throw std::out_of_range("value outside domain");
  return GrrDraw(true_value, epsilon, d, rng_);
}

GrrAggregator::GrrAggregator(double epsilon, std::size_t d)
    : d_(d),
      p_(GrrOracle::KeepProbability(epsilon, d)),
      q_(GrrOracle::LieProbability(epsilon, d)),
      counts_(d, 0) {
  if (d < 2) throw std::invalid_argument("domain must have >= 2 values");
}

void GrrAggregator::Consume(uint32_t report) {
  if (report >= d_) throw std::out_of_range("report outside domain");
  ++counts_[report];
  ++n_;
}

Histogram GrrAggregator::Estimate() const {
  if (n_ == 0) throw std::logic_error("no reports to aggregate");
  Histogram est(d_);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t k = 0; k < d_; ++k) {
    est[k] = (static_cast<double>(counts_[k]) * inv_n - q_) / (p_ - q_);
  }
  return est;
}

}  // namespace ldpids
