#include "fo/report_arena.h"

#include <cstdint>
#include <cstdio>
#include <stdexcept>

#include "fo/hr.h"
#include "fo/olh.h"

namespace ldpids {

ArenaDecodeStats& ArenaDecodeStats::operator+=(const ArenaDecodeStats& other) {
  decoded += other.decoded;
  malformed += other.malformed;
  wrong_oracle += other.wrong_oracle;
  wrong_timestamp += other.wrong_timestamp;
  for (std::size_t i = 0; i < kWireErrorCount; ++i) {
    wire_errors[i] += other.wire_errors[i];
  }
  return *this;
}

std::string ArenaDecodeStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "decoded=%llu malformed=%llu wrong_oracle=%llu "
                "wrong_timestamp=%llu",
                static_cast<unsigned long long>(decoded),
                static_cast<unsigned long long>(malformed),
                static_cast<unsigned long long>(wrong_oracle),
                static_cast<unsigned long long>(wrong_timestamp));
  return buf;
}

void ReportArena::BeginRound(OracleId oracle, uint32_t timestamp,
                             const FoParams& params) {
  ValidateFoParams(params);
  oracle_ = oracle;
  timestamp_ = timestamp;
  domain_ = params.domain;
  words_per_report_ = 0;
  range_bound_ = 0;
  switch (oracle) {
    case OracleId::kOue:
    case OracleId::kSue:
      words_per_report_ = (domain_ + 63) / 64;
      break;
    case OracleId::kOlh:
      range_bound_ = OlhOracle::BucketCount(params.epsilon);
      break;
    case OracleId::kHr:
      range_bound_ = HrOracle::HadamardSize(domain_);
      break;
    case OracleId::kGrr:
      break;
  }
  nonces_.clear();
  values_.clear();
  olh_seeds_.clear();
  olh_buckets_.clear();
  hr_columns_.clear();
  bit_words_.clear();
  in_range_.clear();
  stats_ = ArenaDecodeStats{};
}

void ReportArena::Append(const uint8_t* data, std::size_t size) {
  WireEnvelopeView view;
  AppendClassified(view, ViewWireEnvelope(data, size, &view));
}

void ReportArena::AppendVerified(const uint8_t* data, std::size_t size,
                                 bool checksum_ok) {
  WireEnvelopeView view;
  AppendClassified(view,
                   ViewWireEnvelopePrechecked(data, size, checksum_ok, &view));
}

void ReportArena::AppendClassified(const WireEnvelopeView& view,
                                   WireError err) {
  GrrWireReport grr;
  OlhWireReport olh;
  HrWireReport hr;
  if (err == WireError::kOk) {
    // Validate the payload against the oracle the packet CLAIMS, exactly
    // like TryDecodeReport: a mis-sized OLH payload is malformed even when
    // this round expects GRR, and a GRR value is checked against this
    // round's domain before the oracle comparison.
    switch (view.oracle) {
      case OracleId::kGrr:
        err = GrrPayloadFromBytes(view.payload, view.payload_size, domain_,
                                  &grr);
        break;
      case OracleId::kOue:
      case OracleId::kSue:
        err = BitVectorPayloadSizeOk(view.payload_size, domain_)
                  ? WireError::kOk
                  : WireError::kPayloadSize;
        break;
      case OracleId::kOlh:
        err = OlhPayloadFromBytes(view.payload, view.payload_size, &olh);
        break;
      case OracleId::kHr:
        err = HrPayloadFromBytes(view.payload, view.payload_size, &hr);
        break;
    }
  }
  if (err != WireError::kOk) {
    ++stats_.malformed;
    ++stats_.wire_errors[static_cast<std::size_t>(err)];
    return;
  }
  if (view.oracle != oracle_) {
    ++stats_.wrong_oracle;
    return;
  }
  if (view.timestamp != timestamp_) {
    ++stats_.wrong_timestamp;
    return;
  }

  nonces_.push_back(view.nonce);
  switch (oracle_) {
    case OracleId::kGrr:
      values_.push_back(grr.value);
      in_range_.push_back(1);  // decode already bounded the value
      break;
    case OracleId::kOue:
    case OracleId::kSue: {
      // Repack ceil(d/8) payload bytes into ceil(d/64) LSB-first words;
      // a partial tail word is zero-padded (the fold only reads bits < d).
      const std::size_t full = view.payload_size / 8;
      for (std::size_t w = 0; w < full; ++w) {
        bit_words_.push_back(GetU64Le(view.payload + 8 * w));
      }
      if (full < words_per_report_) {
        uint64_t tail = 0;
        for (std::size_t b = 8 * full; b < view.payload_size; ++b) {
          tail |= static_cast<uint64_t>(view.payload[b]) << (8 * (b % 8));
        }
        bit_words_.push_back(tail);
      }
      in_range_.push_back(1);  // decode already checked the width
      break;
    }
    case OracleId::kOlh:
      olh_seeds_.push_back(olh.seed);
      olh_buckets_.push_back(olh.bucket);
      in_range_.push_back(olh.bucket < range_bound_ ? 1 : 0);
      break;
    case OracleId::kHr:
      hr_columns_.push_back(hr.column);
      in_range_.push_back(hr.column < range_bound_ ? 1 : 0);
      break;
  }
  ++stats_.decoded;
}

template <typename Packet>
void ReportArena::AppendRangeImpl(const std::vector<Packet>& packets,
                                  std::size_t begin, std::size_t end) {
  // Batched checksum pass first: one VerifyChecksums call over the whole
  // range (the same entry the transport FrameDecoder funnels through),
  // then the classification loop consults the verdicts instead of hashing
  // per packet. Classification order is unchanged — the prechecked view
  // consults the verdict exactly where the lazy path would compute it.
  const std::size_t n = end - begin;
  verify_datas_.clear();
  verify_sizes_.clear();
  verify_datas_.reserve(n);
  verify_sizes_.reserve(n);
  for (std::size_t i = begin; i < end; ++i) {
    verify_datas_.push_back(packets[i].data());
    verify_sizes_.push_back(packets[i].size());
  }
  // resize, not assign: VerifyChecksums writes every verdict slot.
  verify_ok_.resize(n);
  VerifyChecksums(verify_datas_.data(), verify_sizes_.data(), n,
                  verify_ok_.data());
  // Reserve the active columns once for the whole range; rejected packets
  // over-reserve slightly, which the next round reuses anyway.
  nonces_.reserve(nonces_.size() + n);
  in_range_.reserve(in_range_.size() + n);
  switch (oracle_) {
    case OracleId::kGrr:
      values_.reserve(values_.size() + n);
      break;
    case OracleId::kOue:
    case OracleId::kSue:
      bit_words_.reserve(bit_words_.size() + n * words_per_report_);
      break;
    case OracleId::kOlh:
      olh_seeds_.reserve(olh_seeds_.size() + n);
      olh_buckets_.reserve(olh_buckets_.size() + n);
      break;
    case OracleId::kHr:
      hr_columns_.reserve(hr_columns_.size() + n);
      break;
  }
  for (std::size_t i = 0; i < n; ++i) {
    AppendVerified(verify_datas_[i], verify_sizes_[i], verify_ok_[i] != 0);
  }
}

void ReportArena::AppendBatch(const std::vector<std::vector<uint8_t>>& packets) {
  AppendRangeImpl(packets, 0, packets.size());
}

void ReportArena::AppendBatch(const std::vector<PayloadRef>& packets) {
  AppendRangeImpl(packets, 0, packets.size());
}

void ReportArena::AppendRange(const std::vector<std::vector<uint8_t>>& packets,
                              std::size_t begin, std::size_t end) {
  AppendRangeImpl(packets, begin, end);
}

void ReportArena::AppendRange(const std::vector<PayloadRef>& packets,
                              std::size_t begin, std::size_t end) {
  AppendRangeImpl(packets, begin, end);
}

void ReportArena::Concat(const ReportArena& other) {
  if (other.oracle_ != oracle_ || other.timestamp_ != timestamp_ ||
      other.domain_ != domain_ || other.range_bound_ != range_bound_ ||
      other.words_per_report_ != words_per_report_) {
    throw std::invalid_argument("arena concat: round configuration differs");
  }
  nonces_.insert(nonces_.end(), other.nonces_.begin(), other.nonces_.end());
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  olh_seeds_.insert(olh_seeds_.end(), other.olh_seeds_.begin(),
                    other.olh_seeds_.end());
  olh_buckets_.insert(olh_buckets_.end(), other.olh_buckets_.begin(),
                      other.olh_buckets_.end());
  hr_columns_.insert(hr_columns_.end(), other.hr_columns_.begin(),
                     other.hr_columns_.end());
  bit_words_.insert(bit_words_.end(), other.bit_words_.begin(),
                    other.bit_words_.end());
  in_range_.insert(in_range_.end(), other.in_range_.begin(),
                   other.in_range_.end());
  stats_ += other.stats_;
}

void ReportArena::ReportAt(std::size_t i, DecodedReport* out) const {
  if (i >= size()) throw std::out_of_range("arena row out of range");
  out->oracle = oracle_;
  out->timestamp = timestamp_;
  out->nonce = nonces_[i];
  switch (oracle_) {
    case OracleId::kGrr:
      out->grr.value = values_[i];
      break;
    case OracleId::kOue:
    case OracleId::kSue: {
      const uint64_t* words = bit_words_.data() + i * words_per_report_;
      out->bits.bits.assign(domain_, false);
      for (std::size_t k = 0; k < domain_; ++k) {
        out->bits.bits[k] = (words[k / 64] >> (k % 64)) & 1u;
      }
      break;
    }
    case OracleId::kOlh:
      out->olh.seed = olh_seeds_[i];
      out->olh.bucket = olh_buckets_[i];
      break;
    case OracleId::kHr:
      out->hr.column = hr_columns_[i];
      break;
  }
}

}  // namespace ldpids
