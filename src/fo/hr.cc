#include "fo/hr.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "fo/fo_kernels.h"
#include "fo/report_arena.h"
#include "fo/wire.h"
#include "util/distributions.h"

namespace ldpids {

namespace {

// H[row][col] = +1 iff popcount(row & col) is even.
inline bool HadamardPositive(uint64_t row, uint64_t col) {
  return HrOracle::HadamardPositive(row, col);
}

class HrSketch final : public FoSketch {
 public:
  explicit HrSketch(const FoParams& params)
      : d_(params.domain),
        k_(HrOracle::HadamardSize(params.domain)),
        p_(HrOracle::KeepProbability(params.epsilon)),
        support_counts_(params.domain, 0),
        pending_columns_(k_, 0) {}

  void AddUser(uint32_t true_value, Rng& rng) override {
    if (true_value >= d_) throw std::out_of_range("HR value out of domain");
    const uint64_t row = static_cast<uint64_t>(true_value) + 1;
    const bool want_positive = rng.Bernoulli(p_);
    // Rejection-sample a uniform column of the wanted sign; each Hadamard
    // row (other than row 0) has exactly K/2 columns of each sign, so the
    // expected number of draws is 2.
    uint64_t y;
    do {
      y = rng.UniformInt(k_);
    } while (HadamardPositive(row, y) != want_positive);
    // Server side: O(1) — just count the column. The per-value support
    // ("all v whose row is positive at y", formerly an O(d) popcount sweep
    // per report) falls out of one Walsh–Hadamard transform of the column
    // histogram at resolve time; see ResolvePending.
    TallyColumn(y);
    ++num_users_;
  }

  void AddCohort(const Counts& true_counts, Rng& rng) override {
    if (true_counts.size() != d_) {
      throw std::invalid_argument("HR cohort domain mismatch");
    }
    uint64_t n = 0;
    for (uint64_t m : true_counts) n += m;
    // Per-bin marginals: own users support with probability p, all other
    // users with probability exactly 1/2.
    for (std::size_t v = 0; v < d_; ++v) {
      support_counts_[v] += SampleBinomial(rng, true_counts[v], p_) +
                            SampleBinomial(rng, n - true_counts[v], 0.5);
    }
    num_users_ += n;
  }

  bool AddReport(const DecodedReport& report) override {
    if (report.oracle != OracleId::kHr) return false;
    if (report.hr.column >= k_) return false;
    TallyColumn(report.hr.column);
    ++num_users_;
    return true;
  }

  void AddReports(const ArenaSlice& slice) override {
    // Columns arrive pre-checked (< K) via the arena's in_range flag.
    const uint32_t* columns = slice.arena->hr_columns();
    if (slice.indices == nullptr) {
      for (std::size_t i = 0; i < slice.count; ++i) {
        ++pending_columns_[columns[i]];
      }
    } else {
      for (std::size_t i = 0; i < slice.count; ++i) {
        ++pending_columns_[columns[slice.indices[i]]];
      }
    }
    pending_count_ += slice.count;
    num_users_ += slice.count;
  }

  void MergeFrom(const FoSketch& other) override {
    const auto* peer = dynamic_cast<const HrSketch*>(&other);
    if (peer == nullptr || peer == this || peer->d_ != d_ ||
        peer->k_ != k_ || peer->p_ != p_) {
      throw std::invalid_argument("HR merge: incompatible sketch");
    }
    ResolvePending();
    peer->ResolvePending();
    for (std::size_t v = 0; v < d_; ++v) {
      support_counts_[v] += peer->support_counts_[v];
    }
    num_users_ += peer->num_users_;
  }

  void ExportResolvedCounts(Counts* out) const override {
    ResolvePending();
    *out = support_counts_;
  }

  bool AbsorbCounts(const uint64_t* counts, std::size_t count,
                    uint64_t num_users) override {
    if (count != d_) return false;
    // The pending FWHT batch resolves into support_counts_ additively, so
    // absorb order relative to resolution cannot change the result.
    for (std::size_t v = 0; v < d_; ++v) support_counts_[v] += counts[v];
    num_users_ += num_users;
    return true;
  }

  void EstimateInto(Histogram* out) const override {
    if (num_users_ == 0) throw std::logic_error("HR sketch has no users");
    ResolvePending();
    out->resize(d_);
    Histogram& est = *out;
    const double inv_n = 1.0 / static_cast<double>(num_users_);
    fokernels::EstimateAffine(support_counts_.data(), d_, inv_n, 0.5,
                              p_ - 0.5, est.data());
  }

  std::size_t domain() const override { return d_; }

 private:
  void TallyColumn(uint64_t column) {
    ++pending_columns_[column];
    ++pending_count_;
  }

  // Folds the pending column histogram into support_counts_ via one
  // unnormalized Walsh–Hadamard transform. For a batch of m reported
  // columns with histogram a[], W = FWHT(a) gives
  //   W[r] = sum_c a[c] * (-1)^popcount(r & c) = (#positive) - (#negative)
  // at row r, so the support gained by value v (#columns where row v+1 is
  // positive) is exactly (m + W[v+1]) / 2 — an integer, since m and W[r]
  // always share parity. This replaces m O(d) per-report sweeps with one
  // O(K log K) transform, exactly, in int64 (|W[r]| <= m).
  void ResolvePending() const {
    if (pending_count_ == 0) return;
    fwht_scratch_ = pending_columns_;
    fokernels::Fwht(fwht_scratch_.data(), k_);
    const int64_t m = static_cast<int64_t>(pending_count_);
    for (std::size_t v = 0; v < d_; ++v) {
      support_counts_[v] += static_cast<uint64_t>((m + fwht_scratch_[v + 1]) / 2);
    }
    std::fill(pending_columns_.begin(), pending_columns_.end(), int64_t{0});
    pending_count_ = 0;
  }

  std::size_t d_;
  uint64_t k_;
  double p_;
  // Mutable: resolution from the const Estimate path is caching, not
  // observable behaviour (same justification as OlhSketch's pending batch).
  mutable Counts support_counts_;
  mutable std::vector<int64_t> pending_columns_;
  mutable uint64_t pending_count_ = 0;
  mutable std::vector<int64_t> fwht_scratch_;
};

}  // namespace

bool HrOracle::HadamardPositive(uint64_t row, uint64_t column) {
  return (std::popcount(row & column) & 1) == 0;
}

uint64_t HrOracle::HadamardSize(std::size_t domain) {
  uint64_t k = 2;
  while (k <= domain) k <<= 1;
  return k;
}

double HrOracle::KeepProbability(double epsilon) {
  const double e = std::exp(epsilon);
  return e / (e + 1.0);
}

std::unique_ptr<FoSketch> HrOracle::CreateSketch(
    const FoParams& params) const {
  ValidateFoParams(params);
  return std::make_unique<HrSketch>(params);
}

double HrOracle::Variance(double epsilon, uint64_t n, std::size_t domain,
                          double f) const {
  (void)domain;
  const double p = KeepProbability(epsilon);
  const double numer = f * p * (1.0 - p) + (1.0 - f) * 0.25;
  return numer / (static_cast<double>(n) * (p - 0.5) * (p - 0.5));
}

double HrOracle::MeanVariance(double epsilon, uint64_t n,
                              std::size_t domain) const {
  return Variance(epsilon, n, domain, 1.0 / static_cast<double>(domain));
}

std::size_t HrOracle::BytesPerReport(std::size_t domain) const {
  // One column index of the K x K Hadamard matrix: log2(K) bits.
  const uint64_t k = HadamardSize(domain);
  return (static_cast<std::size_t>(std::bit_width(k - 1)) + 7) / 8;
}

}  // namespace ldpids
