#include "fo/hr.h"

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "fo/wire.h"
#include "util/distributions.h"

namespace ldpids {

namespace {

// H[row][col] = +1 iff popcount(row & col) is even.
inline bool HadamardPositive(uint64_t row, uint64_t col) {
  return HrOracle::HadamardPositive(row, col);
}

class HrSketch final : public FoSketch {
 public:
  explicit HrSketch(const FoParams& params)
      : d_(params.domain),
        k_(HrOracle::HadamardSize(params.domain)),
        p_(HrOracle::KeepProbability(params.epsilon)),
        support_counts_(params.domain, 0) {}

  void AddUser(uint32_t true_value, Rng& rng) override {
    if (true_value >= d_) throw std::out_of_range("HR value out of domain");
    const uint64_t row = static_cast<uint64_t>(true_value) + 1;
    const bool want_positive = rng.Bernoulli(p_);
    // Rejection-sample a uniform column of the wanted sign; each Hadamard
    // row (other than row 0) has exactly K/2 columns of each sign, so the
    // expected number of draws is 2.
    uint64_t y;
    do {
      y = rng.UniformInt(k_);
    } while (HadamardPositive(row, y) != want_positive);
    // Server side: tally all domain values whose row is positive at y.
    for (uint32_t v = 0; v < d_; ++v) {
      if (HadamardPositive(static_cast<uint64_t>(v) + 1, y)) {
        ++support_counts_[v];
      }
    }
    ++num_users_;
  }

  void AddCohort(const Counts& true_counts, Rng& rng) override {
    if (true_counts.size() != d_) {
      throw std::invalid_argument("HR cohort domain mismatch");
    }
    uint64_t n = 0;
    for (uint64_t m : true_counts) n += m;
    // Per-bin marginals: own users support with probability p, all other
    // users with probability exactly 1/2.
    for (std::size_t v = 0; v < d_; ++v) {
      support_counts_[v] += SampleBinomial(rng, true_counts[v], p_) +
                            SampleBinomial(rng, n - true_counts[v], 0.5);
    }
    num_users_ += n;
  }

  bool AddReport(const DecodedReport& report) override {
    if (report.oracle != OracleId::kHr) return false;
    if (report.hr.column >= k_) return false;
    for (uint32_t v = 0; v < d_; ++v) {
      if (HadamardPositive(static_cast<uint64_t>(v) + 1, report.hr.column)) {
        ++support_counts_[v];
      }
    }
    ++num_users_;
    return true;
  }

  void MergeFrom(const FoSketch& other) override {
    const auto* peer = dynamic_cast<const HrSketch*>(&other);
    if (peer == nullptr || peer == this || peer->d_ != d_ ||
        peer->k_ != k_ || peer->p_ != p_) {
      throw std::invalid_argument("HR merge: incompatible sketch");
    }
    for (std::size_t v = 0; v < d_; ++v) {
      support_counts_[v] += peer->support_counts_[v];
    }
    num_users_ += peer->num_users_;
  }

  void EstimateInto(Histogram* out) const override {
    if (num_users_ == 0) throw std::logic_error("HR sketch has no users");
    out->resize(d_);
    Histogram& est = *out;
    const double inv_n = 1.0 / static_cast<double>(num_users_);
    const double denom = p_ - 0.5;
    for (std::size_t v = 0; v < d_; ++v) {
      est[v] =
          (static_cast<double>(support_counts_[v]) * inv_n - 0.5) / denom;
    }
  }

  std::size_t domain() const override { return d_; }

 private:
  std::size_t d_;
  uint64_t k_;
  double p_;
  Counts support_counts_;
};

}  // namespace

bool HrOracle::HadamardPositive(uint64_t row, uint64_t column) {
  return (std::popcount(row & column) & 1) == 0;
}

uint64_t HrOracle::HadamardSize(std::size_t domain) {
  uint64_t k = 2;
  while (k <= domain) k <<= 1;
  return k;
}

double HrOracle::KeepProbability(double epsilon) {
  const double e = std::exp(epsilon);
  return e / (e + 1.0);
}

std::unique_ptr<FoSketch> HrOracle::CreateSketch(
    const FoParams& params) const {
  ValidateFoParams(params);
  return std::make_unique<HrSketch>(params);
}

double HrOracle::Variance(double epsilon, uint64_t n, std::size_t domain,
                          double f) const {
  (void)domain;
  const double p = KeepProbability(epsilon);
  const double numer = f * p * (1.0 - p) + (1.0 - f) * 0.25;
  return numer / (static_cast<double>(n) * (p - 0.5) * (p - 0.5));
}

double HrOracle::MeanVariance(double epsilon, uint64_t n,
                              std::size_t domain) const {
  return Variance(epsilon, n, domain, 1.0 / static_cast<double>(domain));
}

std::size_t HrOracle::BytesPerReport(std::size_t domain) const {
  // One column index of the K x K Hadamard matrix: log2(K) bits.
  const uint64_t k = HadamardSize(domain);
  return (static_cast<std::size_t>(std::bit_width(k - 1)) + 7) / 8;
}

}  // namespace ldpids
