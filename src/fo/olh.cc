#include "fo/olh.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "util/distributions.h"

namespace ldpids {

namespace {

// Pairwise-uniform hash of value `v` under seed `s` into [0, g).
inline uint64_t HashToBucket(uint64_t seed, uint32_t v, uint64_t g) {
  return HashCounter(seed, v, 0x01F) % g;
}

class OlhSketch final : public FoSketch {
 public:
  explicit OlhSketch(const FoParams& params)
      : d_(params.domain),
        g_(OlhOracle::BucketCount(params.epsilon)),
        p_(OlhOracle::KeepProbability(params.epsilon)),
        support_counts_(params.domain, 0) {}

  void AddUser(uint32_t true_value, Rng& rng) override {
    if (true_value >= d_) throw std::out_of_range("OLH value out of domain");
    const uint64_t seed = rng.NextU64();
    const uint64_t own_bucket = HashToBucket(seed, true_value, g_);
    uint64_t report = own_bucket;
    if (!rng.Bernoulli(p_)) {
      const uint64_t r = rng.UniformInt(g_ - 1);
      report = (r >= own_bucket) ? r + 1 : r;
    }
    // Server side: tally every domain value whose hash equals the report.
    for (uint32_t k = 0; k < d_; ++k) {
      if (HashToBucket(seed, k, g_) == report) ++support_counts_[k];
    }
    ++num_users_;
  }

  void AddCohort(const Counts& true_counts, Rng& rng) override {
    if (true_counts.size() != d_) {
      throw std::invalid_argument("OLH cohort domain mismatch");
    }
    uint64_t n = 0;
    for (uint64_t m : true_counts) n += m;
    const double q = 1.0 / static_cast<double>(g_);
    for (std::size_t k = 0; k < d_; ++k) {
      support_counts_[k] += SampleBinomial(rng, true_counts[k], p_) +
                            SampleBinomial(rng, n - true_counts[k], q);
    }
    num_users_ += n;
  }

  Histogram Estimate() const override {
    if (num_users_ == 0) throw std::logic_error("OLH sketch has no users");
    Histogram est(d_);
    const double inv_n = 1.0 / static_cast<double>(num_users_);
    const double q = 1.0 / static_cast<double>(g_);
    const double denom = p_ - q;
    for (std::size_t k = 0; k < d_; ++k) {
      est[k] = (static_cast<double>(support_counts_[k]) * inv_n - q) / denom;
    }
    return est;
  }

 private:
  std::size_t d_;
  uint64_t g_;
  double p_;
  Counts support_counts_;
};

}  // namespace

uint64_t OlhOracle::BucketCount(double epsilon) {
  const uint64_t g =
      static_cast<uint64_t>(std::llround(std::exp(epsilon))) + 1;
  return g < 2 ? 2 : g;
}

double OlhOracle::KeepProbability(double epsilon) {
  const double e = std::exp(epsilon);
  const double g = static_cast<double>(BucketCount(epsilon));
  return e / (e + g - 1.0);
}

std::unique_ptr<FoSketch> OlhOracle::CreateSketch(
    const FoParams& params) const {
  ValidateFoParams(params);
  return std::make_unique<OlhSketch>(params);
}

double OlhOracle::Variance(double epsilon, uint64_t n, std::size_t domain,
                           double f) const {
  (void)domain;
  const double p = KeepProbability(epsilon);
  const double q = 1.0 / static_cast<double>(BucketCount(epsilon));
  const double numer = f * p * (1.0 - p) + (1.0 - f) * q * (1.0 - q);
  return numer / (static_cast<double>(n) * (p - q) * (p - q));
}

double OlhOracle::MeanVariance(double epsilon, uint64_t n,
                               std::size_t domain) const {
  return Variance(epsilon, n, domain, 1.0 / static_cast<double>(domain));
}

std::size_t OlhOracle::BytesPerReport(std::size_t domain) const {
  (void)domain;
  return 8 + 4;  // 64-bit hash seed + bucket index
}

}  // namespace ldpids
