#include "fo/olh.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "fo/fo_kernels.h"
#include "fo/report_arena.h"
#include "fo/wire.h"
#include "util/distributions.h"

namespace ldpids {

namespace {

// Pairwise-uniform hash of value `v` under seed `s` into [0, g).
inline uint64_t HashToBucket(uint64_t seed, uint32_t v, uint64_t g) {
  return OlhOracle::HashToBucket(seed, v, g);
}

class OlhSketch final : public FoSketch {
 public:
  explicit OlhSketch(const FoParams& params)
      : d_(params.domain),
        g_(OlhOracle::BucketCount(params.epsilon)),
        p_(OlhOracle::KeepProbability(params.epsilon)),
        support_counts_(params.domain, 0) {}

  void AddUser(uint32_t true_value, Rng& rng) override {
    if (true_value >= d_) throw std::out_of_range("OLH value out of domain");
    const uint64_t seed = rng.NextU64();
    const uint64_t own_bucket = HashToBucket(seed, true_value, g_);
    uint64_t report = own_bucket;
    if (!rng.Bernoulli(p_)) {
      const uint64_t r = rng.UniformInt(g_ - 1);
      report = (r >= own_bucket) ? r + 1 : r;
    }
    // The server-side support scan is deferred: reports accumulate per seed
    // and are resolved in value-major batches (ResolvePending), instead of
    // one O(d) hash sweep per user interleaved with the client sampling.
    pending_seeds_.push_back(seed);
    pending_reports_.push_back(report);
    if (pending_seeds_.size() >= kResolveBatch) ResolvePending();
    ++num_users_;
  }

  void AddCohort(const Counts& true_counts, Rng& rng) override {
    if (true_counts.size() != d_) {
      throw std::invalid_argument("OLH cohort domain mismatch");
    }
    uint64_t n = 0;
    for (uint64_t m : true_counts) n += m;
    const double q = 1.0 / static_cast<double>(g_);
    for (std::size_t k = 0; k < d_; ++k) {
      support_counts_[k] += SampleBinomial(rng, true_counts[k], p_) +
                            SampleBinomial(rng, n - true_counts[k], q);
    }
    num_users_ += n;
  }

  bool AddReport(const DecodedReport& report) override {
    if (report.oracle != OracleId::kOlh) return false;
    if (report.olh.bucket >= g_) return false;
    // Same deferred value-major resolution as AddUser — resolution is pure
    // bookkeeping, so batching does not change any count.
    pending_seeds_.push_back(report.olh.seed);
    pending_reports_.push_back(report.olh.bucket);
    if (pending_seeds_.size() >= kResolveBatch) ResolvePending();
    ++num_users_;
    return true;
  }

  void AddReports(const ArenaSlice& slice) override {
    // Rows arrive with bucket < g already checked (the arena's in_range
    // column), so they go straight into the pending columns. One resolve
    // sweep then covers the whole slice plus whatever was already pending.
    const uint64_t* seeds = slice.arena->olh_seeds();
    const uint32_t* buckets = slice.arena->olh_buckets();
    if (slice.indices == nullptr) {
      // Contiguous slice: the arena columns ARE the pending layout, so the
      // append is two bulk copies instead of a per-row gather.
      pending_seeds_.insert(pending_seeds_.end(), seeds, seeds + slice.count);
      pending_reports_.insert(pending_reports_.end(), buckets,
                              buckets + slice.count);
    } else {
      for (std::size_t i = 0; i < slice.count; ++i) {
        const uint32_t row = slice.indices[i];
        pending_seeds_.push_back(seeds[row]);
        pending_reports_.push_back(buckets[row]);
      }
    }
    num_users_ += slice.count;
    if (pending_seeds_.size() >= kResolveBatch) ResolvePending();
  }

  void MergeFrom(const FoSketch& other) override {
    const auto* peer = dynamic_cast<const OlhSketch*>(&other);
    if (peer == nullptr || peer == this || peer->d_ != d_ ||
        peer->g_ != g_ || peer->p_ != p_) {
      throw std::invalid_argument("OLH merge: incompatible sketch");
    }
    peer->ResolvePending();
    for (std::size_t k = 0; k < d_; ++k) {
      support_counts_[k] += peer->support_counts_[k];
    }
    num_users_ += peer->num_users_;
  }

  void ExportResolvedCounts(Counts* out) const override {
    ResolvePending();
    *out = support_counts_;
  }

  bool AbsorbCounts(const uint64_t* counts, std::size_t count,
                    uint64_t num_users) override {
    if (count != d_) return false;
    // Pending reports resolve into support_counts_ by pure integer adds,
    // so absorbing before or after resolution is bit-identical.
    for (std::size_t k = 0; k < d_; ++k) support_counts_[k] += counts[k];
    num_users_ += num_users;
    return true;
  }

  void EstimateInto(Histogram* out) const override {
    if (num_users_ == 0) throw std::logic_error("OLH sketch has no users");
    ResolvePending();
    out->resize(d_);
    Histogram& est = *out;
    const double inv_n = 1.0 / static_cast<double>(num_users_);
    const double q = 1.0 / static_cast<double>(g_);
    fokernels::EstimateAffine(support_counts_.data(), d_, inv_n, q, p_ - q,
                              est.data());
  }

  std::size_t domain() const override { return d_; }

 private:
  // Batch size for deferred resolution: large enough to amortize the sweep
  // setup, small enough that the pending columns (16 B per report) stay in
  // L1 while every one of the d value sweeps re-reads them. AddReports may
  // grow the batch past this before resolving; ResolvePending re-chunks the
  // scan to this window so the streamed columns never fall out of L1.
  // Counts are plain integer adds, so the chunking never changes a count.
  static constexpr std::size_t kResolveBatch = 512;

  // Tallies the pending reports into support_counts_ value-major: the
  // per-value count accumulates in a register while the compact seed/bucket
  // columns are streamed, instead of walking the d-sized count array once
  // per user. The scan itself (4-lane hash + exact `% g` + match count)
  // lives in fokernels::OlhSupportScan and computes precisely
  // HashToBucket(seed, k, g) == bucket per pair. Resolution is pure
  // bookkeeping (no RNG), so deferring it does not change any count.
  void ResolvePending() const {
    for (std::size_t off = 0; off < pending_seeds_.size();
         off += kResolveBatch) {
      const std::size_t n =
          std::min(kResolveBatch, pending_seeds_.size() - off);
      fokernels::OlhSupportScan(pending_seeds_.data() + off,
                                pending_reports_.data() + off, n, d_, g_,
                                support_counts_.data());
    }
    pending_seeds_.clear();
    pending_reports_.clear();
  }

  std::size_t d_;
  uint64_t g_;
  double p_;
  // Mutable: resolution from the const Estimate path is caching, not
  // observable behaviour (same justification as StreamDataset's count cache).
  mutable Counts support_counts_;
  // Not-yet-resolved client reports, struct-of-arrays so the resolve scan
  // streams plain u64 columns.
  mutable std::vector<uint64_t> pending_seeds_;
  mutable std::vector<uint64_t> pending_reports_;
};

}  // namespace

uint64_t OlhOracle::HashToBucket(uint64_t seed, uint32_t value, uint64_t g) {
  return HashCounter(seed, value, 0x01F) % g;
}

uint64_t OlhOracle::BucketCount(double epsilon) {
  const uint64_t g =
      static_cast<uint64_t>(std::llround(std::exp(epsilon))) + 1;
  return g < 2 ? 2 : g;
}

double OlhOracle::KeepProbability(double epsilon) {
  const double e = std::exp(epsilon);
  const double g = static_cast<double>(BucketCount(epsilon));
  return e / (e + g - 1.0);
}

std::unique_ptr<FoSketch> OlhOracle::CreateSketch(
    const FoParams& params) const {
  ValidateFoParams(params);
  return std::make_unique<OlhSketch>(params);
}

double OlhOracle::Variance(double epsilon, uint64_t n, std::size_t domain,
                           double f) const {
  (void)domain;
  const double p = KeepProbability(epsilon);
  const double q = 1.0 / static_cast<double>(BucketCount(epsilon));
  const double numer = f * p * (1.0 - p) + (1.0 - f) * q * (1.0 - q);
  return numer / (static_cast<double>(n) * (p - q) * (p - q));
}

double OlhOracle::MeanVariance(double epsilon, uint64_t n,
                               std::size_t domain) const {
  return Variance(epsilon, n, domain, 1.0 / static_cast<double>(domain));
}

std::size_t OlhOracle::BytesPerReport(std::size_t domain) const {
  (void)domain;
  return 8 + 4;  // 64-bit hash seed + bucket index
}

}  // namespace ldpids
