#include "fo/olh.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "fo/wire.h"
#include "util/distributions.h"

namespace ldpids {

namespace {

// Pairwise-uniform hash of value `v` under seed `s` into [0, g).
inline uint64_t HashToBucket(uint64_t seed, uint32_t v, uint64_t g) {
  return OlhOracle::HashToBucket(seed, v, g);
}

class OlhSketch final : public FoSketch {
 public:
  explicit OlhSketch(const FoParams& params)
      : d_(params.domain),
        g_(OlhOracle::BucketCount(params.epsilon)),
        p_(OlhOracle::KeepProbability(params.epsilon)),
        support_counts_(params.domain, 0) {}

  void AddUser(uint32_t true_value, Rng& rng) override {
    if (true_value >= d_) throw std::out_of_range("OLH value out of domain");
    const uint64_t seed = rng.NextU64();
    const uint64_t own_bucket = HashToBucket(seed, true_value, g_);
    uint64_t report = own_bucket;
    if (!rng.Bernoulli(p_)) {
      const uint64_t r = rng.UniformInt(g_ - 1);
      report = (r >= own_bucket) ? r + 1 : r;
    }
    // The server-side support scan is deferred: reports accumulate per seed
    // and are resolved in value-major batches (ResolvePending), instead of
    // one O(d) hash sweep per user interleaved with the client sampling.
    pending_.push_back({seed, report});
    if (pending_.size() >= kResolveBatch) ResolvePending();
    ++num_users_;
  }

  void AddCohort(const Counts& true_counts, Rng& rng) override {
    if (true_counts.size() != d_) {
      throw std::invalid_argument("OLH cohort domain mismatch");
    }
    uint64_t n = 0;
    for (uint64_t m : true_counts) n += m;
    const double q = 1.0 / static_cast<double>(g_);
    for (std::size_t k = 0; k < d_; ++k) {
      support_counts_[k] += SampleBinomial(rng, true_counts[k], p_) +
                            SampleBinomial(rng, n - true_counts[k], q);
    }
    num_users_ += n;
  }

  bool AddReport(const DecodedReport& report) override {
    if (report.oracle != OracleId::kOlh) return false;
    if (report.olh.bucket >= g_) return false;
    // Same deferred value-major resolution as AddUser — resolution is pure
    // bookkeeping, so batching does not change any count.
    pending_.push_back({report.olh.seed, report.olh.bucket});
    if (pending_.size() >= kResolveBatch) ResolvePending();
    ++num_users_;
    return true;
  }

  void MergeFrom(const FoSketch& other) override {
    const auto* peer = dynamic_cast<const OlhSketch*>(&other);
    if (peer == nullptr || peer == this || peer->d_ != d_ ||
        peer->g_ != g_ || peer->p_ != p_) {
      throw std::invalid_argument("OLH merge: incompatible sketch");
    }
    peer->ResolvePending();
    for (std::size_t k = 0; k < d_; ++k) {
      support_counts_[k] += peer->support_counts_[k];
    }
    num_users_ += peer->num_users_;
  }

  void EstimateInto(Histogram* out) const override {
    if (num_users_ == 0) throw std::logic_error("OLH sketch has no users");
    ResolvePending();
    out->resize(d_);
    Histogram& est = *out;
    const double inv_n = 1.0 / static_cast<double>(num_users_);
    const double q = 1.0 / static_cast<double>(g_);
    const double denom = p_ - q;
    for (std::size_t k = 0; k < d_; ++k) {
      est[k] = (static_cast<double>(support_counts_[k]) * inv_n - q) / denom;
    }
  }

  std::size_t domain() const override { return d_; }

 private:
  // One not-yet-resolved client report: the hash seed and the perturbed
  // bucket the user sent.
  struct PendingReport {
    uint64_t seed;
    uint64_t report;
  };

  // Batch size for deferred resolution: large enough to amortize the sweep
  // setup, small enough that the pending array (16 B each) stays in L1.
  static constexpr std::size_t kResolveBatch = 512;

  // Tallies the pending reports into support_counts_ value-major: the
  // per-value count accumulates in a register while the compact report
  // array is streamed, instead of walking the d-sized count array once per
  // user. Resolution is pure bookkeeping (no RNG), so deferring it does not
  // change any sampled stream.
  void ResolvePending() const {
    if (pending_.empty()) return;
    for (uint32_t k = 0; k < d_; ++k) {
      uint64_t supports = 0;
      for (const PendingReport& r : pending_) {
        supports += HashToBucket(r.seed, k, g_) == r.report ? 1 : 0;
      }
      support_counts_[k] += supports;
    }
    pending_.clear();
  }

  std::size_t d_;
  uint64_t g_;
  double p_;
  // Mutable: resolution from the const Estimate path is caching, not
  // observable behaviour (same justification as StreamDataset's count cache).
  mutable Counts support_counts_;
  mutable std::vector<PendingReport> pending_;
};

}  // namespace

uint64_t OlhOracle::HashToBucket(uint64_t seed, uint32_t value, uint64_t g) {
  return HashCounter(seed, value, 0x01F) % g;
}

uint64_t OlhOracle::BucketCount(double epsilon) {
  const uint64_t g =
      static_cast<uint64_t>(std::llround(std::exp(epsilon))) + 1;
  return g < 2 ? 2 : g;
}

double OlhOracle::KeepProbability(double epsilon) {
  const double e = std::exp(epsilon);
  const double g = static_cast<double>(BucketCount(epsilon));
  return e / (e + g - 1.0);
}

std::unique_ptr<FoSketch> OlhOracle::CreateSketch(
    const FoParams& params) const {
  ValidateFoParams(params);
  return std::make_unique<OlhSketch>(params);
}

double OlhOracle::Variance(double epsilon, uint64_t n, std::size_t domain,
                           double f) const {
  (void)domain;
  const double p = KeepProbability(epsilon);
  const double q = 1.0 / static_cast<double>(BucketCount(epsilon));
  const double numer = f * p * (1.0 - p) + (1.0 - f) * q * (1.0 - q);
  return numer / (static_cast<double>(n) * (p - q) * (p - q));
}

double OlhOracle::MeanVariance(double epsilon, uint64_t n,
                               std::size_t domain) const {
  return Variance(epsilon, n, domain, 1.0 / static_cast<double>(domain));
}

std::size_t OlhOracle::BytesPerReport(std::size_t domain) const {
  (void)domain;
  return 8 + 4;  // 64-bit hash seed + bucket index
}

}  // namespace ldpids
