// Internals shared between wire.cc and the optional AVX-512 checksum
// translation unit (wire_avx512.cc). Not part of the public wire API.
#ifndef LDPIDS_FO_WIRE_INTERNAL_H_
#define LDPIDS_FO_WIRE_INTERNAL_H_

#include <cstddef>
#include <cstdint>

namespace ldpids::wire_internal {

// Distinct lane seeds (hex digits of pi) so the four checksum lanes never
// collapse to the same stream; lane 0 additionally folds in the input size
// (see WireChecksum, wire.cc). The AVX-512 batch verifier replays exactly
// this construction 8 packets at a time, so the seeds must be shared, not
// duplicated.
inline constexpr uint64_t kChecksumSeed0 = 0x243F6A8885A308D3ULL;
inline constexpr uint64_t kChecksumSeed1 = 0x13198A2E03707344ULL;
inline constexpr uint64_t kChecksumSeed2 = 0xA4093822299F31D0ULL;
inline constexpr uint64_t kChecksumSeed3 = 0x082EFA98EC4E6C89ULL;

inline constexpr std::size_t kWireChecksumSize = 4;

// Verifies eight packets of identical total size `size` (>= 4) in one
// AVX-512 pass: ok[p] = 1 iff packet p's trailing 4-byte checksum matches
// WireChecksum over its first size-4 bytes. Lane p of every vector is
// packet p, so the per-packet math is the exact scalar/4-lane sequence.
// Returns false (having written nothing) when the AVX-512 kernels are not
// compiled in or the CPU lacks them — the caller then takes the per-packet
// path.
bool VerifyChecksums8Avx512(const uint8_t* const* datas, std::size_t size,
                            uint8_t* ok);

}  // namespace ldpids::wire_internal

#endif  // LDPIDS_FO_WIRE_INTERNAL_H_
