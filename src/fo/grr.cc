#include "fo/grr.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "fo/fo_kernels.h"
#include "fo/report_arena.h"
#include "fo/wire.h"
#include "util/distributions.h"

namespace ldpids {

namespace {

class GrrSketch final : public FoSketch {
 public:
  explicit GrrSketch(const FoParams& params)
      : d_(params.domain),
        p_(GrrOracle::KeepProbability(params.epsilon, params.domain)),
        q_(GrrOracle::LieProbability(params.epsilon, params.domain)),
        report_counts_(params.domain, 0),
        uniform_other_(params.domain - 1, 1.0) {}

  void AddUser(uint32_t true_value, Rng& rng) override {
    if (true_value >= d_) throw std::out_of_range("GRR value out of domain");
    uint32_t report = true_value;
    if (!rng.Bernoulli(p_)) {
      // Uniform over the d-1 other values: draw in [0, d-1) and skip self.
      const uint32_t r = static_cast<uint32_t>(rng.UniformInt(d_ - 1));
      report = (r >= true_value) ? r + 1 : r;
    }
    ++report_counts_[report];
    ++num_users_;
  }

  void AddCohort(const Counts& true_counts, Rng& rng) override {
    if (true_counts.size() != d_) {
      throw std::invalid_argument("GRR cohort domain mismatch");
    }
    // For the m_k users holding value k: kept ~ Binomial(m_k, p); the lies
    // spread uniformly (multinomially) over the other d-1 values. This is
    // exactly the distribution of the per-user protocol. The uniform weight
    // vector is hoisted into the sketch and the spread lands in a reused
    // scratch buffer, so the per-value loop does no allocation.
    for (std::size_t k = 0; k < d_; ++k) {
      const uint64_t m = true_counts[k];
      if (m == 0) continue;
      const uint64_t kept = SampleBinomial(rng, m, p_);
      report_counts_[k] += kept;
      const uint64_t lies = m - kept;
      if (lies > 0) {
        SampleMultinomial(rng, lies, uniform_other_, &spread_scratch_);
        for (std::size_t j = 0; j < d_ - 1; ++j) {
          const std::size_t target = (j >= k) ? j + 1 : j;
          report_counts_[target] += spread_scratch_[j];
        }
      }
      num_users_ += m;
    }
  }

  bool AddReport(const DecodedReport& report) override {
    if (report.oracle != OracleId::kGrr) return false;
    if (report.grr.value >= d_) return false;
    ++report_counts_[report.grr.value];
    ++num_users_;
    return true;
  }

  void AddReports(const ArenaSlice& slice) override {
    // Decode already bounds GRR values to the domain, so the slice rows
    // scatter straight into the histogram. Data-dependent indices keep this
    // scalar; the win over AddReport is skipping the DecodedReport rebuild.
    const uint32_t* values = slice.arena->values();
    if (slice.indices == nullptr) {
      for (std::size_t i = 0; i < slice.count; ++i) {
        ++report_counts_[values[i]];
      }
    } else {
      for (std::size_t i = 0; i < slice.count; ++i) {
        ++report_counts_[values[slice.indices[i]]];
      }
    }
    num_users_ += slice.count;
  }

  void MergeFrom(const FoSketch& other) override {
    const auto* peer = dynamic_cast<const GrrSketch*>(&other);
    if (peer == nullptr || peer == this || peer->d_ != d_ ||
        peer->p_ != p_) {
      throw std::invalid_argument("GRR merge: incompatible sketch");
    }
    for (std::size_t k = 0; k < d_; ++k) {
      report_counts_[k] += peer->report_counts_[k];
    }
    num_users_ += peer->num_users_;
  }

  void ExportResolvedCounts(Counts* out) const override {
    *out = report_counts_;
  }

  bool AbsorbCounts(const uint64_t* counts, std::size_t count,
                    uint64_t num_users) override {
    if (count != d_) return false;
    for (std::size_t k = 0; k < d_; ++k) report_counts_[k] += counts[k];
    num_users_ += num_users;
    return true;
  }

  void EstimateInto(Histogram* out) const override {
    if (num_users_ == 0) throw std::logic_error("GRR sketch has no users");
    out->resize(d_);
    Histogram& est = *out;
    const double inv_n = 1.0 / static_cast<double>(num_users_);
    fokernels::EstimateAffine(report_counts_.data(), d_, inv_n, q_, p_ - q_,
                              est.data());
  }

  std::size_t domain() const override { return d_; }

 protected:
  // GRR's per-user client is O(1) while AddCohort pays one binomial plus an
  // O(d) multinomial spread for every nonzero bin, so the cohort path only
  // wins when the batch dwarfs (nonzero bins) x d — i.e. for concentrated
  // or very large batches, not for counts spread across the domain.
  bool CohortPaysOff(std::size_t batch_size,
                     const Counts& true_counts) const override {
    std::size_t nonzero = 0;
    for (uint64_t c : true_counts) nonzero += c > 0 ? 1 : 0;
    return nonzero * (d_ + 1) < batch_size;
  }

 private:
  std::size_t d_;
  double p_;
  double q_;
  Counts report_counts_;
  const std::vector<double> uniform_other_;
  std::vector<uint64_t> spread_scratch_;
};

}  // namespace

double GrrOracle::KeepProbability(double epsilon, std::size_t domain) {
  const double e = std::exp(epsilon);
  return e / (e + static_cast<double>(domain) - 1.0);
}

double GrrOracle::LieProbability(double epsilon, std::size_t domain) {
  const double e = std::exp(epsilon);
  return 1.0 / (e + static_cast<double>(domain) - 1.0);
}

std::unique_ptr<FoSketch> GrrOracle::CreateSketch(
    const FoParams& params) const {
  ValidateFoParams(params);
  return std::make_unique<GrrSketch>(params);
}

double GrrOracle::Variance(double epsilon, uint64_t n, std::size_t domain,
                           double f) const {
  // Fixed-composition cohort: the f*n users holding value k each report k
  // with probability p, the rest with probability q, so
  //   Var(c'[k]) = n [f p(1-p) + (1-f) q(1-q)],
  // and the estimator divides by (p - q). This expands exactly to the
  // paper's Eq. (2): (d-2+e^eps)/(n(e^eps-1)^2) + f(d-2)/(n(e^eps-1)).
  const double p = KeepProbability(epsilon, domain);
  const double q = LieProbability(epsilon, domain);
  const double numer = f * p * (1.0 - p) + (1.0 - f) * q * (1.0 - q);
  return numer / (static_cast<double>(n) * (p - q) * (p - q));
}

double GrrOracle::MeanVariance(double epsilon, uint64_t n,
                               std::size_t domain) const {
  // (1/d) sum_k Var is exactly Variance at the mean frequency f = 1/d,
  // because Var is affine in f.
  return Variance(epsilon, n, domain, 1.0 / static_cast<double>(domain));
}

std::size_t GrrOracle::BytesPerReport(std::size_t domain) const {
  // One value index; 1, 2 or 4 bytes depending on domain size.
  if (domain <= 256) return 1;
  if (domain <= 65536) return 2;
  return 4;
}

}  // namespace ldpids
