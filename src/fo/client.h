// Explicit client/server protocol objects for GRR.
//
// The `FoSketch` interface fuses perturbation and aggregation because that is
// what the simulation needs; this header instead exposes the two halves of
// the deployment protocol separately, so the examples (and downstream users
// embedding the library in a real client) can see exactly which messages
// cross the network:
//
//   client:  GrrClient c(user_seed);
//            uint32_t wire = c.Perturb(true_value, eps, d);   // -> server
//   server:  GrrAggregator agg(eps, d);
//            agg.Consume(wire);  ...
//            Histogram estimate = agg.Estimate();
#ifndef LDPIDS_FO_CLIENT_H_
#define LDPIDS_FO_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fo/wire.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace ldpids {

// One-shot client side of the deployment protocol for any oracle: runs the
// client perturbation of `oracle` on `true_value` (per-user budget
// `epsilon`, domain size `domain`) and returns the encoded wire packet a
// device would send. `nonce` identifies the device within the round (the
// serving layer passes the user id) so the ingest edge can reject network
// duplicates instead of double-counting. Randomness is drawn from `rng` in
// exactly the same order as the corresponding FoSketch::AddUser, so a
// server-side sketch fed the decoded packets of a same-seeded RNG stream
// reproduces the simulation sketch bit for bit (pinned in
// tests/service_test.cc). Throws std::out_of_range for a value outside the
// domain and std::invalid_argument for parameters the wire format cannot
// carry.
std::vector<uint8_t> PerturbToWire(OracleId oracle, uint32_t true_value,
                                   double epsilon, std::size_t domain,
                                   uint32_t timestamp, uint64_t nonce,
                                   Rng& rng);

// User-side GRR perturbation. One instance per (simulated) device.
class GrrClient {
 public:
  explicit GrrClient(uint64_t seed);

  // Applies eps-LDP GRR over a domain of size `d` to `true_value` and
  // returns the single value that would be sent on the wire.
  uint32_t Perturb(uint32_t true_value, double epsilon, std::size_t d);

 private:
  Rng rng_;
};

// Server-side GRR aggregation for one collection round at fixed (eps, d).
class GrrAggregator {
 public:
  GrrAggregator(double epsilon, std::size_t d);

  // Ingests one wire report.
  void Consume(uint32_t report);

  // Unbiased frequency estimates from all reports so far. Requires at least
  // one report.
  Histogram Estimate() const;

  uint64_t num_reports() const { return n_; }

 private:
  std::size_t d_;
  double p_;
  double q_;
  Counts counts_;
  uint64_t n_ = 0;
};

}  // namespace ldpids

#endif  // LDPIDS_FO_CLIENT_H_
