#include "fo/sue.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "fo/fo_kernels.h"
#include "fo/report_arena.h"
#include "fo/wire.h"
#include "util/distributions.h"

namespace ldpids {

namespace {

class SueSketch final : public FoSketch {
 public:
  explicit SueSketch(const FoParams& params)
      : d_(params.domain),
        p_(SueOracle::KeepProbability(params.epsilon)),
        one_counts_(params.domain, 0) {}

  void AddUser(uint32_t true_value, Rng& rng) override {
    if (true_value >= d_) throw std::out_of_range("SUE value out of domain");
    for (std::size_t k = 0; k < d_; ++k) {
      // True bit (1 for the held value, 0 otherwise) sent faithfully w.p. p.
      const bool bit_is_one = (k == true_value);
      const double pr_one = bit_is_one ? p_ : 1.0 - p_;
      if (rng.Bernoulli(pr_one)) ++one_counts_[k];
    }
    ++num_users_;
  }

  void AddCohort(const Counts& true_counts, Rng& rng) override {
    if (true_counts.size() != d_) {
      throw std::invalid_argument("SUE cohort domain mismatch");
    }
    uint64_t n = 0;
    for (uint64_t m : true_counts) n += m;
    for (std::size_t k = 0; k < d_; ++k) {
      one_counts_[k] += SampleBinomial(rng, true_counts[k], p_) +
                        SampleBinomial(rng, n - true_counts[k], 1.0 - p_);
    }
    num_users_ += n;
  }

  bool AddReport(const DecodedReport& report) override {
    if (report.oracle != OracleId::kSue) return false;
    if (report.bits.bits.size() != d_) return false;
    for (std::size_t k = 0; k < d_; ++k) {
      if (report.bits.bits[k]) ++one_counts_[k];
    }
    ++num_users_;
    return true;
  }

  void AddReports(const ArenaSlice& slice) override {
    fokernels::FoldBitColumns(slice.arena->bit_words(),
                              slice.arena->words_per_report(), slice.indices,
                              slice.count, d_, one_counts_.data());
    num_users_ += slice.count;
  }

  void MergeFrom(const FoSketch& other) override {
    const auto* peer = dynamic_cast<const SueSketch*>(&other);
    if (peer == nullptr || peer == this || peer->d_ != d_ ||
        peer->p_ != p_) {
      throw std::invalid_argument("SUE merge: incompatible sketch");
    }
    for (std::size_t k = 0; k < d_; ++k) {
      one_counts_[k] += peer->one_counts_[k];
    }
    num_users_ += peer->num_users_;
  }

  void ExportResolvedCounts(Counts* out) const override {
    *out = one_counts_;
  }

  bool AbsorbCounts(const uint64_t* counts, std::size_t count,
                    uint64_t num_users) override {
    if (count != d_) return false;
    for (std::size_t k = 0; k < d_; ++k) one_counts_[k] += counts[k];
    num_users_ += num_users;
    return true;
  }

  void EstimateInto(Histogram* out) const override {
    if (num_users_ == 0) throw std::logic_error("SUE sketch has no users");
    out->resize(d_);
    Histogram& est = *out;
    const double inv_n = 1.0 / static_cast<double>(num_users_);
    const double q = 1.0 - p_;
    fokernels::EstimateAffine(one_counts_.data(), d_, inv_n, q, p_ - q,
                              est.data());
  }

  std::size_t domain() const override { return d_; }

 private:
  std::size_t d_;
  double p_;
  Counts one_counts_;
};

}  // namespace

double SueOracle::KeepProbability(double epsilon) {
  const double e_half = std::exp(epsilon / 2.0);
  return e_half / (e_half + 1.0);
}

std::unique_ptr<FoSketch> SueOracle::CreateSketch(
    const FoParams& params) const {
  ValidateFoParams(params);
  return std::make_unique<SueSketch>(params);
}

double SueOracle::Variance(double epsilon, uint64_t n, std::size_t domain,
                           double f) const {
  (void)domain;
  const double p = KeepProbability(epsilon);
  const double q = 1.0 - p;
  const double numer = f * p * (1.0 - p) + (1.0 - f) * q * (1.0 - q);
  return numer / (static_cast<double>(n) * (p - q) * (p - q));
}

double SueOracle::MeanVariance(double epsilon, uint64_t n,
                               std::size_t domain) const {
  return Variance(epsilon, n, domain, 1.0 / static_cast<double>(domain));
}

std::size_t SueOracle::BytesPerReport(std::size_t domain) const {
  return (domain + 7) / 8;
}

}  // namespace ldpids
