// Generalized Randomized Response (GRR), the paper's reference FO (Eq. 1).
//
// Client: report the true value with probability p = e^eps / (e^eps + d - 1),
// otherwise a uniformly random *other* value (each with probability
// q = 1 / (e^eps + d - 1)).
//
// Server: unbiased estimate c_hat[k] = (c'[k]/n - q) / (p - q) where c'[k]
// is the fraction of reports equal to k.
//
// Per-bin variance (exact, equal to the paper's Eq. (2)):
//   Var(c_hat[k]) = [f_k p(1-p) + (1-f_k) q(1-q)] / (n (p - q)^2)
//                 = (d-2+e^eps)/(n(e^eps-1)^2) + f_k (d-2)/(n(e^eps-1)).
#ifndef LDPIDS_FO_GRR_H_
#define LDPIDS_FO_GRR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "fo/frequency_oracle.h"

namespace ldpids {

class GrrOracle final : public FrequencyOracle {
 public:
  std::string name() const override { return "GRR"; }
  std::unique_ptr<FoSketch> CreateSketch(const FoParams& params) const override;
  double Variance(double epsilon, uint64_t n, std::size_t domain,
                  double f) const override;
  double MeanVariance(double epsilon, uint64_t n,
                      std::size_t domain) const override;
  std::size_t BytesPerReport(std::size_t domain) const override;

  // Keep-probability p and lie-probability q for the given parameters;
  // exposed for tests of the LDP guarantee (p/q <= e^eps).
  static double KeepProbability(double epsilon, std::size_t domain);
  static double LieProbability(double epsilon, std::size_t domain);
};

}  // namespace ldpids

#endif  // LDPIDS_FO_GRR_H_
