// AVX-512 OLH support scan: the d x count double loop of pairwise hashes
// is the single hottest estimate-side kernel (every OLH release hashes
// every report's seed against every domain value). The 4-lane AVX2 path
// emulates 64-bit multiplies in 8+ instructions; AVX-512DQ has a native
// _mm512_mullo_epi64, so 8 lanes cost less than 4 did. Power-of-two bucket
// counts only (the epsilon grid's g is a power of two; anything else falls
// back) — the per-report hash sequence is the exact scalar HashCounter, and
// the accumulation is order-free integer counts, so results stay
// bit-identical (pinned by fo_kernel_test).
#include "fo/fo_kernels_internal.h"

#include <cstddef>
#include <cstdint>

#include "util/rng.h"
#include "util/simd/avx512.h"

namespace ldpids::fokernels::internal {

#if defined(LDPIDS_AVX512_COMPILED) && defined(__AVX512F__) && \
    defined(__AVX512DQ__)

bool OlhSupportScanAvx512(const uint64_t* seeds, const uint64_t* buckets,
                          std::size_t count, std::size_t d, uint64_t g,
                          uint64_t* support_counts) {
  if (!simd::Avx512Available()) return false;
  if (g == 0 || (g & (g - 1)) != 0) return false;

  using simd::Broadcast8;
  using simd::Mix64V8;
  const __m512i g_mask = Broadcast8(g - 1);
  const __m512i b_term = Broadcast8(kOlhHashStream * kMulB + kStreamB);
  const std::size_t vec_count = count & ~std::size_t{7};
  for (std::size_t k = 0; k < d; ++k) {
    const uint64_t a_term = static_cast<uint64_t>(k) * kGolden + kStreamA;
    const __m512i a_v = Broadcast8(a_term);
    uint64_t supports = 0;
    for (std::size_t i = 0; i < vec_count; i += 8) {
      __m512i x = _mm512_loadu_si512(seeds + i);
      x = Mix64V8(_mm512_xor_si512(x, a_v));
      x = Mix64V8(_mm512_xor_si512(x, b_term));
      const __mmask8 hit = _mm512_cmpeq_epu64_mask(
          _mm512_and_si512(x, g_mask), _mm512_loadu_si512(buckets + i));
      supports += static_cast<unsigned>(__builtin_popcount(hit));
    }
    for (std::size_t i = vec_count; i < count; ++i) {
      const uint64_t h =
          HashCounter(seeds[i], static_cast<uint64_t>(k), kOlhHashStream);
      supports += (h & (g - 1)) == buckets[i] ? 1 : 0;
    }
    support_counts[k] += supports;
  }
  return true;
}

#else  // !LDPIDS_AVX512_COMPILED

bool OlhSupportScanAvx512(const uint64_t*, const uint64_t*, std::size_t,
                          std::size_t, uint64_t, uint64_t*) {
  return false;
}

#endif

}  // namespace ldpids::fokernels::internal
