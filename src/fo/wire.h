// Wire format for LDP reports.
//
// The simulation-facing API exchanges in-memory values, but a deployment
// sends bytes. This header defines a compact, versioned envelope for every
// report a client can emit:
//
//   byte 0      magic (0xLD -> 0xAD)
//   byte 1      version (2)
//   byte 2      oracle id (see OracleId)
//   bytes 3-6   timestamp (uint32, little-endian)
//   bytes 7-14  user nonce (uint64, little-endian)
//   bytes 15-18 payload length (uint32, little-endian)
//   bytes 19..  payload (oracle-specific, below)
//   last 4      CRC32C-style checksum of everything before it
//
// The nonce identifies the reporting device within one collection round
// (the serving layer uses the stable per-user id). It carries no private
// information — in an LDP deployment the aggregator already knows *who*
// reports, only the *value* is perturbed — and it is what lets the ingest
// edge reject a duplicated report instead of double-counting the user, and
// lets the report router keep all of one user's (possibly duplicated)
// packets on the same shard so shard count never changes results.
//
// Payloads:
//   GRR  — the reported value index (1/2/4 bytes by domain, LE);
//   OUE / SUE — the perturbed bit vector, packed LSB-first, ceil(d/8) bytes;
//   OLH  — 8-byte hash seed + 4-byte bucket index;
//   HR   — Hadamard column index (4 bytes).
//
// Decoding comes in two flavours:
//
//   * `TryDecode*` — validates magic, version, length, checksum and payload
//     shape and returns a typed `WireError` instead of throwing. This is
//     the serving hot path (src/service/): a busy ingest loop must never
//     pay exception machinery for routine corruption, and a server must
//     never crash on a malformed client packet.
//   * `Decode*` — thin wrappers that throw std::runtime_error carrying the
//     same reason, for callers where a bad packet is exceptional.
#ifndef LDPIDS_FO_WIRE_H_
#define LDPIDS_FO_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ldpids {

enum class OracleId : uint8_t {
  kGrr = 1,
  kOue = 2,
  kOlh = 3,
  kSue = 4,
  kHr = 5,
};

// All wire oracle ids, in id order; for parameterized tests and sweeps.
std::vector<OracleId> AllOracleIds();

// Canonical name of an oracle id ("GRR", "OUE", ...), matching
// GetFrequencyOracle's naming.
const char* OracleIdName(OracleId oracle);

// Inverse of OracleIdName (case-insensitive). Throws std::invalid_argument
// for unknown names.
OracleId OracleIdFromName(const std::string& name);

// Precise decode outcome. kOk is 0 so results can be truth-tested.
enum class WireError : uint8_t {
  kOk = 0,
  kTooShort,           // smaller than header + checksum
  kBadMagic,
  kBadVersion,
  kUnknownOracle,      // oracle id outside [kGrr, kHr]
  kLengthMismatch,     // declared payload length != actual
  kChecksumMismatch,
  kWrongOracle,        // payload decoder for a different oracle
  kPayloadSize,        // payload length wrong for the oracle/domain
  kValueOutOfDomain,   // decoded value does not fit the domain
};

// Number of WireError enumerators (for per-reason counters indexed by the
// enum value; kOk is index 0).
inline constexpr std::size_t kWireErrorCount = 10;

// Human-readable reason, for logs and rejection reports.
const char* WireErrorName(WireError error);

// Oracle-specific report payloads, in decoded form.
struct GrrWireReport {
  uint32_t value = 0;
};
struct BitVectorWireReport {  // OUE and SUE
  std::vector<bool> bits;
};
struct OlhWireReport {
  uint64_t seed = 0;
  uint32_t bucket = 0;
};
struct HrWireReport {
  uint32_t column = 0;
};

// A decoded envelope: which oracle, which timestamp and reporter, raw
// payload bytes.
struct WireEnvelope {
  OracleId oracle = OracleId::kGrr;
  uint32_t timestamp = 0;
  uint64_t nonce = 0;
  std::vector<uint8_t> payload;
};

// A fully decoded report, ready for server-side folding
// (FoSketch::AddReport). Only the member matching `oracle` is meaningful.
struct DecodedReport {
  OracleId oracle = OracleId::kGrr;
  uint32_t timestamp = 0;
  uint64_t nonce = 0;
  GrrWireReport grr;
  BitVectorWireReport bits;
  OlhWireReport olh;
  HrWireReport hr;
};

// Checksum used by the envelope (and by the transport frame codec one
// layer up): four SplitMix64 lanes over 32-byte blocks, run across the
// SIMD layer (util/simd/) — AVX2 and the generic scalar backend produce
// byte-identical values, stable across platforms.
uint32_t WireChecksum(const uint8_t* data, std::size_t size);

// Batched verification of whole packets (header + payload + trailing
// 4-byte checksum): ok[i] = 1 iff packet i's stored checksum matches the
// bytes before it. The entry point the ReportArena batch decoder and the
// transport FrameDecoder funnel through, so the hottest shared loop is in
// one place.
void VerifyChecksums(const uint8_t* const* datas, const std::size_t* sizes,
                     std::size_t n, uint8_t* ok);

// Little-endian integer (de)serialization shared by the report envelope
// and the frame codec one layer up (transport/frame.h).
void PutU32Le(std::vector<uint8_t>* out, uint32_t v);
void PutU64Le(std::vector<uint8_t>* out, uint64_t v);
uint32_t GetU32Le(const uint8_t* p);
uint64_t GetU64Le(const uint8_t* p);

// --- encoding ---
std::vector<uint8_t> EncodeGrrReport(uint32_t value, std::size_t domain,
                                     uint32_t timestamp, uint64_t nonce = 0);
std::vector<uint8_t> EncodeBitVectorReport(const std::vector<bool>& bits,
                                           OracleId oracle,
                                           uint32_t timestamp,
                                           uint64_t nonce = 0);
std::vector<uint8_t> EncodeOlhReport(uint64_t seed, uint32_t bucket,
                                     uint32_t timestamp, uint64_t nonce = 0);
std::vector<uint8_t> EncodeHrReport(uint32_t column, uint32_t timestamp,
                                    uint64_t nonce = 0);

// Reads the user nonce out of an encoded report without validating or
// decoding the rest (only the magic/version prefix and the length are
// checked). Lets the report router pick a shard for a packet before paying
// for the full decode; returns false for anything too mangled to carry a
// nonce — such packets are rejected downstream wherever they land.
bool PeekWireNonce(const uint8_t* data, std::size_t size, uint64_t* nonce);

// --- zero-copy decoding (batch staging path) ---
// A validated envelope viewing the caller's packet buffer: no payload
// materialization. This is what ReportArena (fo/report_arena.h) builds its
// columns from — the envelope is decoded exactly once per packet and the
// nonce column carried through routing, dedup and fold.
struct WireEnvelopeView {
  OracleId oracle = OracleId::kGrr;
  uint32_t timestamp = 0;
  uint64_t nonce = 0;
  const uint8_t* payload = nullptr;
  std::size_t payload_size = 0;
};

// Validates magic/version/oracle-range/length/checksum and fills the view.
// The view borrows `data`; it is valid only while the packet buffer lives.
WireError ViewWireEnvelope(const uint8_t* data, std::size_t size,
                           WireEnvelopeView* out);

// ViewWireEnvelope with the checksum comparison replaced by a caller-
// provided verdict (from a batched VerifyChecksums pass). Classification
// order is identical — the flag is only consulted at the position the lazy
// path would compute the checksum — so ArenaDecodeStats breakdowns cannot
// differ between the batched and per-packet decoders.
WireError ViewWireEnvelopePrechecked(const uint8_t* data, std::size_t size,
                                     bool checksum_ok,
                                     WireEnvelopeView* out);

// Payload decoders over raw bytes, shared by the envelope-based Try* API
// and the batch staging path. Validation and outputs are identical to the
// corresponding TryDecode*Payload.
WireError GrrPayloadFromBytes(const uint8_t* payload, std::size_t size,
                              std::size_t domain, GrrWireReport* out);
WireError OlhPayloadFromBytes(const uint8_t* payload, std::size_t size,
                              OlhWireReport* out);
WireError HrPayloadFromBytes(const uint8_t* payload, std::size_t size,
                             HrWireReport* out);
// Bit-vector payloads validate by size only ((domain+7)/8 bytes, LSB-first
// packing); the batch path copies the raw bytes into 64-bit word columns
// instead of a vector<bool>, so there is no FromBytes materializer here.
bool BitVectorPayloadSizeOk(std::size_t size, std::size_t domain);

// Bytes of one encoded GRR value for `domain` (1, 2 or 4).
std::size_t GrrWireValueBytes(std::size_t domain);

// --- non-throwing decoding (serving hot path) ---
// Each validates fully and writes `*out` only on kOk; on error the output
// is left in an unspecified but valid state.
WireError TryDecodeEnvelope(const uint8_t* data, std::size_t size,
                            WireEnvelope* out);
WireError TryDecodeEnvelope(const std::vector<uint8_t>& packet,
                            WireEnvelope* out);
WireError TryDecodeGrrPayload(const WireEnvelope& envelope,
                              std::size_t domain, GrrWireReport* out);
WireError TryDecodeBitVectorPayload(const WireEnvelope& envelope,
                                    std::size_t domain,
                                    BitVectorWireReport* out);
WireError TryDecodeOlhPayload(const WireEnvelope& envelope,
                              OlhWireReport* out);
WireError TryDecodeHrPayload(const WireEnvelope& envelope, HrWireReport* out);

// One-shot envelope + payload decode of whatever oracle the packet claims,
// validated against `domain`. The workhorse of service::IngestShard.
WireError TryDecodeReport(const uint8_t* data, std::size_t size,
                          std::size_t domain, DecodedReport* out);
WireError TryDecodeReport(const std::vector<uint8_t>& packet,
                          std::size_t domain, DecodedReport* out);

// --- throwing decoding ---
// Parses and validates the envelope; throws std::runtime_error with the
// WireErrorName reason on any corruption.
WireEnvelope DecodeEnvelope(const std::vector<uint8_t>& packet);

// Payload decoders; `domain` is needed to size GRR values and bit vectors.
GrrWireReport DecodeGrrPayload(const WireEnvelope& envelope,
                               std::size_t domain);
BitVectorWireReport DecodeBitVectorPayload(const WireEnvelope& envelope,
                                           std::size_t domain);
OlhWireReport DecodeOlhPayload(const WireEnvelope& envelope);
HrWireReport DecodeHrPayload(const WireEnvelope& envelope);

// Size in bytes of an encoded report for capacity planning.
std::size_t EncodedReportSize(OracleId oracle, std::size_t domain);

}  // namespace ldpids

#endif  // LDPIDS_FO_WIRE_H_
