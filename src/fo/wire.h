// Wire format for LDP reports.
//
// The simulation-facing API exchanges in-memory values, but a deployment
// sends bytes. This header defines a compact, versioned envelope for every
// report a client can emit:
//
//   byte 0      magic (0xLD -> 0xAD)
//   byte 1      version (1)
//   byte 2      oracle id (see OracleId)
//   bytes 3-6   timestamp (uint32, little-endian)
//   bytes 7-10  payload length (uint32, little-endian)
//   bytes 11..  payload (oracle-specific, below)
//   last 4      CRC32C-style checksum of everything before it
//
// Payloads:
//   GRR  — the reported value index (1/2/4 bytes by domain, LE);
//   OUE / SUE — the perturbed bit vector, packed LSB-first, ceil(d/8) bytes;
//   OLH  — 8-byte hash seed + 4-byte bucket index;
//   HR   — Hadamard column index (4 bytes).
//
// Decoding validates the magic, version, length and checksum and throws
// std::runtime_error with a precise reason on any corruption — a server
// must never crash on a malformed client packet.
#ifndef LDPIDS_FO_WIRE_H_
#define LDPIDS_FO_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ldpids {

enum class OracleId : uint8_t {
  kGrr = 1,
  kOue = 2,
  kOlh = 3,
  kSue = 4,
  kHr = 5,
};

// Oracle-specific report payloads, in decoded form.
struct GrrWireReport {
  uint32_t value = 0;
};
struct BitVectorWireReport {  // OUE and SUE
  std::vector<bool> bits;
};
struct OlhWireReport {
  uint64_t seed = 0;
  uint32_t bucket = 0;
};
struct HrWireReport {
  uint32_t column = 0;
};

// A decoded envelope: which oracle, which timestamp, raw payload bytes.
struct WireEnvelope {
  OracleId oracle = OracleId::kGrr;
  uint32_t timestamp = 0;
  std::vector<uint8_t> payload;
};

// Checksum used by the envelope (simple but robust 32-bit mix; stable
// across platforms).
uint32_t WireChecksum(const uint8_t* data, std::size_t size);

// --- encoding ---
std::vector<uint8_t> EncodeGrrReport(uint32_t value, std::size_t domain,
                                     uint32_t timestamp);
std::vector<uint8_t> EncodeBitVectorReport(const std::vector<bool>& bits,
                                           OracleId oracle,
                                           uint32_t timestamp);
std::vector<uint8_t> EncodeOlhReport(uint64_t seed, uint32_t bucket,
                                     uint32_t timestamp);
std::vector<uint8_t> EncodeHrReport(uint32_t column, uint32_t timestamp);

// --- decoding ---
// Parses and validates the envelope; throws std::runtime_error on
// corruption (bad magic/version/length/checksum).
WireEnvelope DecodeEnvelope(const std::vector<uint8_t>& packet);

// Payload decoders; `domain` is needed to size GRR values and bit vectors.
GrrWireReport DecodeGrrPayload(const WireEnvelope& envelope,
                               std::size_t domain);
BitVectorWireReport DecodeBitVectorPayload(const WireEnvelope& envelope,
                                           std::size_t domain);
OlhWireReport DecodeOlhPayload(const WireEnvelope& envelope);
HrWireReport DecodeHrPayload(const WireEnvelope& envelope);

// Size in bytes of an encoded report for capacity planning.
std::size_t EncodedReportSize(OracleId oracle, std::size_t domain);

}  // namespace ldpids

#endif  // LDPIDS_FO_WIRE_H_
