// Columnar staging of one round's wire reports — the struct-of-arrays
// counterpart of per-packet TryDecodeReport.
//
// The serving path used to decode, validate and fold one packet at a time
// (IngestShard::Ingest -> FoSketch::AddReport), re-reading the envelope
// header once for routing (PeekWireNonce) and once for ingest. A
// ReportArena instead batch-decodes a whole (session, round)'s packets
// exactly once into contiguous columns:
//
//   nonces[]       u64  routing/dedup key, carried from the envelope
//   values[]       u32  GRR value index
//   olh_seeds[]    u64  \  OLH report pair
//   olh_buckets[]  u32  /
//   hr_columns[]   u32  HR Hadamard column
//   bit_words[]    u64  OUE/SUE packed bit rows, words_per_report() each,
//                       LSB-first (bit k of a report = word k/64, bit k%64)
//   in_range[]     u8   1 iff the payload passes the sketch's range check
//                       (OLH bucket < g, HR column < K; always 1 for
//                       GRR/OUE/SUE whose decode already validates range)
//
// in the style of arbor's multi_event_stream staged event ranges: decode
// once, then every downstream stage (shard routing, duplicate rejection,
// vectorized sketch folds — FoSketch::AddReports) streams plain arrays.
//
// Classification mirrors IngestShard exactly and in the same order: a
// packet failing envelope or claimed-oracle payload validation is
// `malformed` (with a per-WireError breakdown), then a valid packet for
// another oracle is `wrong_oracle`, then a wrong-round packet is
// `wrong_timestamp`; only the survivors get a row. Duplicate and
// sketch-rejected classification is deliberately NOT done here — it is
// order-dependent state owned by the ingest shards (a nonce is burned only
// on acceptance), which is why rows carry the in_range flag instead.
//
// Only the expected oracle's columns are populated; rows are appended in
// packet order, and Concat preserves that order across chunk-parallel
// decodes. An arena does not own packet buffers and copies everything it
// keeps, so the packets may be freed after Append returns.
#ifndef LDPIDS_FO_REPORT_ARENA_H_
#define LDPIDS_FO_REPORT_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fo/frequency_oracle.h"
#include "fo/wire.h"
#include "util/buffer_pool.h"

namespace ldpids {

// Per-reason decode accounting for one round's staged batch.
struct ArenaDecodeStats {
  uint64_t decoded = 0;          // packets that became rows
  uint64_t malformed = 0;        // any WireError, including out-of-domain
  uint64_t wrong_oracle = 0;     // valid packet for a different oracle
  uint64_t wrong_timestamp = 0;  // valid packet for a different round
  // Breakdown of `malformed` by WireError (indexed by enum value).
  uint64_t wire_errors[kWireErrorCount] = {};

  uint64_t total() const {
    return decoded + malformed + wrong_oracle + wrong_timestamp;
  }
  ArenaDecodeStats& operator+=(const ArenaDecodeStats& other);
  std::string ToString() const;
};

class ReportArena {
 public:
  // Configures the arena for one round and clears previous rows/stats
  // (column capacity is kept, so a reused arena stops allocating after the
  // first round). Derives the OLH bucket count g from params.epsilon and
  // the HR Hadamard size K from params.domain for the in_range flags.
  void BeginRound(OracleId oracle, uint32_t timestamp, const FoParams& params);

  // Decodes one packet: classifies it into stats() and, when fully valid
  // for this round, appends its row. Never throws on packet content.
  void Append(const uint8_t* data, std::size_t size);
  void Append(const std::vector<uint8_t>& packet) {
    Append(packet.data(), packet.size());
  }
  // Batch decode. Checksums are verified for the whole batch in one
  // batched VerifyChecksums pass (fo/wire.h) before the per-packet
  // classification loop; the classification itself — order, per-reason
  // stats, rows — is identical to calling Append per packet. The
  // PayloadRef overloads consume transport frame payloads in place (no
  // per-packet copy between the socket and the columns).
  void AppendBatch(const std::vector<std::vector<uint8_t>>& packets);
  void AppendBatch(const std::vector<PayloadRef>& packets);
  // Contiguous sub-range [begin, end) of a batch, for chunked decode.
  void AppendRange(const std::vector<std::vector<uint8_t>>& packets,
                   std::size_t begin, std::size_t end);
  void AppendRange(const std::vector<PayloadRef>& packets, std::size_t begin,
                   std::size_t end);

  // Ordered concatenation of another arena staged with the same BeginRound
  // configuration (throws std::invalid_argument otherwise): rows keep
  // their relative order, stats are summed. This is how chunk-parallel
  // decoders merge back into one arena in chunk order.
  void Concat(const ReportArena& other);

  OracleId oracle() const { return oracle_; }
  uint32_t timestamp() const { return timestamp_; }
  std::size_t domain() const { return domain_; }
  std::size_t size() const { return nonces_.size(); }
  // 64-bit words per OUE/SUE row; 0 for other oracles.
  std::size_t words_per_report() const { return words_per_report_; }
  const ArenaDecodeStats& stats() const { return stats_; }

  const uint64_t* nonces() const { return nonces_.data(); }
  const uint32_t* values() const { return values_.data(); }
  const uint64_t* olh_seeds() const { return olh_seeds_.data(); }
  const uint32_t* olh_buckets() const { return olh_buckets_.data(); }
  const uint32_t* hr_columns() const { return hr_columns_.data(); }
  const uint64_t* bit_words() const { return bit_words_.data(); }
  const uint8_t* in_range() const { return in_range_.data(); }

  // Rebuilds row `i` as a classic DecodedReport — the scalar reference
  // path (FoSketch::AddReports' default implementation) and tests use it;
  // the vectorized folds read the columns directly.
  void ReportAt(std::size_t i, DecodedReport* out) const;

 private:
  // Append with the checksum verdict precomputed by the batched pass.
  void AppendVerified(const uint8_t* data, std::size_t size,
                      bool checksum_ok);
  // Shared batch body over any packet container exposing data()/size().
  template <typename Packet>
  void AppendRangeImpl(const std::vector<Packet>& packets, std::size_t begin,
                       std::size_t end);
  // Classification + row append shared by the lazy and prechecked paths.
  void AppendClassified(const WireEnvelopeView& view, WireError err);

  OracleId oracle_ = OracleId::kGrr;
  uint32_t timestamp_ = 0;
  std::size_t domain_ = 0;
  std::size_t words_per_report_ = 0;
  uint64_t range_bound_ = 0;  // OLH: g; HR: K; others unused

  // Scratch for the batched checksum pass; reused across batches.
  std::vector<const uint8_t*> verify_datas_;
  std::vector<std::size_t> verify_sizes_;
  std::vector<uint8_t> verify_ok_;

  std::vector<uint64_t> nonces_;
  std::vector<uint32_t> values_;
  std::vector<uint64_t> olh_seeds_;
  std::vector<uint32_t> olh_buckets_;
  std::vector<uint32_t> hr_columns_;
  std::vector<uint64_t> bit_words_;
  std::vector<uint8_t> in_range_;
  ArenaDecodeStats stats_;
};

// A view of selected arena rows (in the given order) handed to
// FoSketch::AddReports. The ingest edge builds one per shard from the rows
// that survived duplicate rejection and the in_range check, so sketches
// fold every listed row unconditionally. indices == nullptr with count > 0
// means the contiguous identity slice — row i of the slice is arena row i —
// which is the common clean-stream shape (single shard, nothing rejected)
// and lets folds stream the columns without an indirection.
struct ArenaSlice {
  const ReportArena* arena = nullptr;
  const uint32_t* indices = nullptr;
  std::size_t count = 0;
};

}  // namespace ldpids

#endif  // LDPIDS_FO_REPORT_ARENA_H_
