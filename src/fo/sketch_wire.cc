#include "fo/sketch_wire.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>

#include "util/histogram.h"

namespace ldpids {

namespace {

constexpr uint8_t kMagic0 = 0x50;  // 'P'
constexpr uint8_t kMagic1 = 0x53;  // 'S'
constexpr uint8_t kVersion = 1;
constexpr std::size_t kChecksumSize = 4;

bool OracleIdInRange(uint8_t id) {
  return id >= static_cast<uint8_t>(OracleId::kGrr) &&
         id <= static_cast<uint8_t>(OracleId::kHr);
}

}  // namespace

const char* SketchWireErrorName(SketchWireError error) {
  switch (error) {
    case SketchWireError::kOk: return "ok";
    case SketchWireError::kTooShort: return "too short";
    case SketchWireError::kBadMagic: return "bad magic";
    case SketchWireError::kBadVersion: return "bad version";
    case SketchWireError::kUnknownOracle: return "unknown oracle";
    case SketchWireError::kLengthMismatch: return "length mismatch";
    case SketchWireError::kChecksumMismatch: return "checksum mismatch";
  }
  return "?";
}

std::size_t EncodedPartialSketchSize(std::size_t count_len) {
  return kSketchWireHeaderSize + 8 * count_len + kChecksumSize;
}

uint64_t EpsilonBits(double epsilon) {
  return std::bit_cast<uint64_t>(epsilon);
}

double EpsilonFromBits(uint64_t bits) { return std::bit_cast<double>(bits); }

std::vector<uint8_t> EncodePartialSketch(const FoSketch& sketch,
                                         OracleId oracle, uint64_t node_id,
                                         uint64_t round_index,
                                         uint32_t timestamp,
                                         double epsilon) {
  Counts counts;
  sketch.ExportResolvedCounts(&counts);
  std::vector<uint8_t> out;
  out.reserve(EncodedPartialSketchSize(counts.size()));
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kVersion);
  out.push_back(static_cast<uint8_t>(oracle));
  PutU64Le(&out, node_id);
  PutU64Le(&out, round_index);
  PutU32Le(&out, timestamp);
  PutU64Le(&out, EpsilonBits(epsilon));
  PutU64Le(&out, static_cast<uint64_t>(sketch.domain()));
  PutU64Le(&out, sketch.num_users());
  PutU64Le(&out, static_cast<uint64_t>(counts.size()));
  for (uint64_t c : counts) PutU64Le(&out, c);
  PutU32Le(&out, WireChecksum(out.data(), out.size()));
  return out;
}

SketchWireError TryViewPartialSketch(const uint8_t* data, std::size_t size,
                                     PartialSketchView* out) {
  if (size < kSketchWireHeaderSize + kChecksumSize) {
    return SketchWireError::kTooShort;
  }
  if (data[0] != kMagic0 || data[1] != kMagic1) {
    return SketchWireError::kBadMagic;
  }
  if (data[2] != kVersion) return SketchWireError::kBadVersion;
  if (!OracleIdInRange(data[3])) return SketchWireError::kUnknownOracle;
  const uint64_t count_len = GetU64Le(data + 48);
  // Overflow-safe shape check: the bytes available for counts bound the
  // believable length before 8 * count_len is ever computed.
  const std::size_t count_bytes =
      size - kSketchWireHeaderSize - kChecksumSize;
  if (count_len != count_bytes / 8 || count_bytes % 8 != 0) {
    return SketchWireError::kLengthMismatch;
  }
  const uint32_t stored = GetU32Le(data + size - kChecksumSize);
  if (stored != WireChecksum(data, size - kChecksumSize)) {
    return SketchWireError::kChecksumMismatch;
  }
  out->oracle = static_cast<OracleId>(data[3]);
  out->node_id = GetU64Le(data + 4);
  out->round_index = GetU64Le(data + 12);
  out->timestamp = GetU32Le(data + 20);
  out->epsilon_bits = GetU64Le(data + 24);
  out->domain = GetU64Le(data + 32);
  out->num_users = GetU64Le(data + 40);
  out->counts = data + kSketchWireHeaderSize;
  out->count_len = static_cast<std::size_t>(count_len);
  return SketchWireError::kOk;
}

SketchWireError TryViewPartialSketch(const std::vector<uint8_t>& payload,
                                     PartialSketchView* out) {
  return TryViewPartialSketch(payload.data(), payload.size(), out);
}

bool PeekPartialSketchNodeId(const uint8_t* data, std::size_t size,
                             uint64_t* node_id) {
  if (size < 12) return false;
  if (data[0] != kMagic0 || data[1] != kMagic1 || data[2] != kVersion) {
    return false;
  }
  *node_id = GetU64Le(data + 4);
  return true;
}

SketchMergeStats& SketchMergeStats::operator+=(
    const SketchMergeStats& other) {
  merged += other.merged;
  users_merged += other.users_merged;
  malformed += other.malformed;
  wrong_oracle += other.wrong_oracle;
  wrong_round += other.wrong_round;
  params_mismatch += other.params_mismatch;
  duplicate_node += other.duplicate_node;
  missing += other.missing;
  return *this;
}

std::string SketchMergeStats::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "merged=%llu users=%llu malformed=%llu wrong_oracle=%llu "
      "wrong_round=%llu params_mismatch=%llu duplicate_node=%llu "
      "missing=%llu",
      static_cast<unsigned long long>(merged),
      static_cast<unsigned long long>(users_merged),
      static_cast<unsigned long long>(malformed),
      static_cast<unsigned long long>(wrong_oracle),
      static_cast<unsigned long long>(wrong_round),
      static_cast<unsigned long long>(params_mismatch),
      static_cast<unsigned long long>(duplicate_node),
      static_cast<unsigned long long>(missing));
  return buf;
}

bool MergePartialSketch(const uint8_t* data, std::size_t size,
                        OracleId oracle, uint64_t round_index,
                        double epsilon, std::size_t domain, FoSketch* sketch,
                        std::vector<uint64_t>* seen_nodes,
                        SketchMergeStats* stats) {
  PartialSketchView view;
  if (TryViewPartialSketch(data, size, &view) != SketchWireError::kOk) {
    ++stats->malformed;
    return false;
  }
  if (view.oracle != oracle) {
    ++stats->wrong_oracle;
    return false;
  }
  if (view.round_index != round_index) {
    ++stats->wrong_round;
    return false;
  }
  if (view.epsilon_bits != EpsilonBits(epsilon) || view.domain != domain) {
    ++stats->params_mismatch;
    return false;
  }
  if (std::find(seen_nodes->begin(), seen_nodes->end(), view.node_id) !=
      seen_nodes->end()) {
    ++stats->duplicate_node;
    return false;
  }
  // Materialize the LE counts once; a handful of partials per round makes
  // this a cold path next to the slices they summarize.
  Counts counts(view.count_len);
  for (std::size_t i = 0; i < view.count_len; ++i) {
    counts[i] = view.CountAt(i);
  }
  if (!sketch->AbsorbCounts(counts.data(), counts.size(), view.num_users)) {
    // A checksummed payload whose count length disagrees with the round's
    // sketch (hostile sender): typed reject, sketch untouched.
    ++stats->params_mismatch;
    return false;
  }
  seen_nodes->push_back(view.node_id);
  ++stats->merged;
  stats->users_merged += view.num_users;
  return true;
}

}  // namespace ldpids
