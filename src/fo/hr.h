// Hadamard Response (HR) frequency oracle
// (Acharya, Sun, Zhang — "Hadamard Response: Estimating Distributions
// Privately, Efficiently, and with Little Communication", AISTATS 2019;
// binary-output variant).
//
// Let K be the smallest power of two with K > d, and H the K x K Hadamard
// matrix H[a][b] = (-1)^{popcount(a & b)}. A user holding value v is
// associated with row v+1 (row 0 is all-ones and carries no signal). The
// client samples a column index y in [K]:
//   with probability p = e^eps / (e^eps + 1), y is uniform over the K/2
//   columns where H[v+1][y] = +1; otherwise uniform over the -1 columns.
// Only log2(K) bits cross the wire.
//
// Server: a report y "supports" value v iff H[v+1][y] = +1. For the true
// row the support probability is p; for any other nonzero row exactly 1/2
// (distinct nonzero rows agree on exactly half the columns), giving the
// unbiased estimator f_hat = (S_v/n - 1/2) / (p - 1/2).
#ifndef LDPIDS_FO_HR_H_
#define LDPIDS_FO_HR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "fo/frequency_oracle.h"

namespace ldpids {

class HrOracle final : public FrequencyOracle {
 public:
  std::string name() const override { return "HR"; }
  std::unique_ptr<FoSketch> CreateSketch(const FoParams& params) const override;
  double Variance(double epsilon, uint64_t n, std::size_t domain,
                  double f) const override;
  double MeanVariance(double epsilon, uint64_t n,
                      std::size_t domain) const override;
  std::size_t BytesPerReport(std::size_t domain) const override;

  // Smallest power of two strictly greater than `domain`.
  static uint64_t HadamardSize(std::size_t domain);
  // p = e^eps / (e^eps + 1).
  static double KeepProbability(double epsilon);
  // H[row][col] = +1 iff popcount(row & col) is even. Exposed so wire
  // clients (fo/client.h) sample columns exactly like the sketch.
  static bool HadamardPositive(uint64_t row, uint64_t column);
};

}  // namespace ldpids

#endif  // LDPIDS_FO_HR_H_
