// Optimized Unary Encoding (OUE) frequency oracle
// (Wang, Blocki, Li, Jha — USENIX Security 2017).
//
// Client: encode the value as a d-bit one-hot vector, then send each bit
// independently perturbed — the '1' bit is transmitted as 1 with probability
// p = 1/2 and the '0' bits as 1 with probability q = 1 / (e^eps + 1). The
// asymmetric (p, q) choice minimizes estimation variance at
// Var = 4 e^eps / (n (e^eps - 1)^2) while keeping
// (p (1-q)) / (q (1-p)) = e^eps, i.e. eps-LDP.
//
// Server: per-bit counting; unbiased estimate (ones[k]/n - q) / (p - q).
#ifndef LDPIDS_FO_OUE_H_
#define LDPIDS_FO_OUE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "fo/frequency_oracle.h"

namespace ldpids {

class OueOracle final : public FrequencyOracle {
 public:
  std::string name() const override { return "OUE"; }
  std::unique_ptr<FoSketch> CreateSketch(const FoParams& params) const override;
  double Variance(double epsilon, uint64_t n, std::size_t domain,
                  double f) const override;
  double MeanVariance(double epsilon, uint64_t n,
                      std::size_t domain) const override;
  std::size_t BytesPerReport(std::size_t domain) const override;

  static double OneProbability() { return 0.5; }
  static double ZeroFlipProbability(double epsilon);
};

}  // namespace ldpids

#endif  // LDPIDS_FO_OUE_H_
