// Optimized Local Hashing (OLH) frequency oracle
// (Wang, Blocki, Li, Jha — USENIX Security 2017).
//
// Client: pick a random hash seed s, hash the true value into g buckets
// (g = round(e^eps) + 1, the variance-optimal choice), and report
// (s, GRR_g(h_s(v))). Server: a report (s, y) "supports" value k iff
// h_s(k) == y; estimate (support[k]/n - 1/g) / (p - 1/g) with
// p = e^eps / (e^eps + g - 1).
//
// The cohort path draws per-bin support counts from their exact marginal
// distribution Binomial(m_k, p) + Binomial(n - m_k, 1/g) (cross-bin
// correlations, which no estimator here uses, are not reproduced — see
// DESIGN.md §3).
#ifndef LDPIDS_FO_OLH_H_
#define LDPIDS_FO_OLH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "fo/frequency_oracle.h"

namespace ldpids {

class OlhOracle final : public FrequencyOracle {
 public:
  std::string name() const override { return "OLH"; }
  std::unique_ptr<FoSketch> CreateSketch(const FoParams& params) const override;
  double Variance(double epsilon, uint64_t n, std::size_t domain,
                  double f) const override;
  double MeanVariance(double epsilon, uint64_t n,
                      std::size_t domain) const override;
  std::size_t BytesPerReport(std::size_t domain) const override;

  // Variance-optimal bucket count g = round(e^eps) + 1 (>= 2).
  static uint64_t BucketCount(double epsilon);
  // GRR keep-probability inside the g-bucket domain.
  static double KeepProbability(double epsilon);
  // The pairwise-uniform hash h_s(v) into [0, g) shared by the client
  // protocol and the server-side support scan. Exposed so wire clients
  // (fo/client.h) hash exactly like the sketch.
  static uint64_t HashToBucket(uint64_t seed, uint32_t value, uint64_t g);
};

}  // namespace ldpids

#endif  // LDPIDS_FO_OLH_H_
