// Internals shared between fo_kernels.cc and the optional AVX-512 kernel
// translation unit (fo_kernels_avx512.cc). Not part of the public kernel
// API (fo/fo_kernels.h).
#ifndef LDPIDS_FO_FO_KERNELS_INTERNAL_H_
#define LDPIDS_FO_FO_KERNELS_INTERNAL_H_

#include <cstddef>
#include <cstdint>

namespace ldpids::fokernels::internal {

// HashCounter's mixing constants (util/rng.cc), replicated per lane. Every
// vectorized hash must stay the exact SplitMix64 finalizer sequence — any
// drift breaks protocol compatibility with clients using the scalar
// HashToBucket, and fo_kernel_test's pinning would catch it.
inline constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
inline constexpr uint64_t kStreamA = 0x165667B19E3779F9ULL;
inline constexpr uint64_t kMulB = 0xC2B2AE3D27D4EB4FULL;
inline constexpr uint64_t kStreamB = 0x27D4EB2F165667C5ULL;
// olh.cc's HashToBucket stream id.
inline constexpr uint64_t kOlhHashStream = 0x01F;

// 8-lane OLH support scan for power-of-two bucket counts (the default
// epsilon grid always lands there). Returns false — having touched nothing
// — when the AVX-512 kernels are not compiled in, the CPU lacks them, or g
// is not a power of two; the caller then runs the 4-lane scan. Counts are
// added into support_counts[0..d), identical to the portable scan (order-
// free integer accumulation).
bool OlhSupportScanAvx512(const uint64_t* seeds, const uint64_t* buckets,
                          std::size_t count, std::size_t d, uint64_t g,
                          uint64_t* support_counts);

}  // namespace ldpids::fokernels::internal

#endif  // LDPIDS_FO_FO_KERNELS_INTERNAL_H_
