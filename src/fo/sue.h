// Symmetric Unary Encoding (SUE) — the one-time ("basic") RAPPOR of
// Erlingsson et al. (CCS 2014), in the taxonomy of Wang et al. (USENIX
// Security 2017).
//
// Client: one-hot encode the value; transmit each bit flipped with the
// symmetric probabilities p = e^{eps/2} / (e^{eps/2} + 1) for keeping and
// q = 1 - p; the per-bit ratio (p/q)^2 = e^eps over the two differing bits
// of neighbouring one-hot vectors gives eps-LDP.
//
// SUE is dominated by OUE in variance (that is OUE's raison d'etre) but is
// historically important and included as a reference point; the ablation
// bench quantifies the gap.
#ifndef LDPIDS_FO_SUE_H_
#define LDPIDS_FO_SUE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "fo/frequency_oracle.h"

namespace ldpids {

class SueOracle final : public FrequencyOracle {
 public:
  std::string name() const override { return "SUE"; }
  std::unique_ptr<FoSketch> CreateSketch(const FoParams& params) const override;
  double Variance(double epsilon, uint64_t n, std::size_t domain,
                  double f) const override;
  double MeanVariance(double epsilon, uint64_t n,
                      std::size_t domain) const override;
  std::size_t BytesPerReport(std::size_t domain) const override;

  // P[bit transmitted as its true value] = e^{eps/2} / (e^{eps/2} + 1).
  static double KeepProbability(double epsilon);
};

}  // namespace ldpids

#endif  // LDPIDS_FO_SUE_H_
