// LDP frequency oracles (FO) — the building block of every LDP-IDS
// mechanism (paper Section 3.4).
//
// An FO protocol lets an untrusted server estimate the frequency of every
// value in a categorical domain Omega (|Omega| = d) from users' locally
// perturbed reports, under epsilon-LDP. The library ships three oracles:
//
//   * GRR — Generalized Randomized Response (the paper's running example),
//   * OUE — Optimized Unary Encoding (Wang et al., USENIX Security 2017),
//   * OLH — Optimized Local Hashing (ibid.),
//
// all behind one interface so the stream mechanisms are FO-agnostic, exactly
// like the paper's abstract V(eps, n) variance notation.
//
// Two simulation paths (see DESIGN.md §3):
//   * `FoSketch::AddUser(v, rng)` performs the exact client-side protocol for
//     one user — what a real deployment would run on-device.
//   * `FoSketch::AddCohort(counts, rng)` draws the server-side aggregate
//     directly from its sampling distribution given the cohort's true-value
//     counts (binomial/multinomial composition). This is distribution-
//     equivalent per bin and O(d)-O(d^2) instead of O(n).
#ifndef LDPIDS_FO_FREQUENCY_ORACLE_H_
#define LDPIDS_FO_FREQUENCY_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fo/wire.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace ldpids {

struct ArenaSlice;  // fo/report_arena.h

// Perturbation/aggregation parameters of one FO collection round.
struct FoParams {
  double epsilon = 1.0;    // LDP budget of each participating user
  std::size_t domain = 2;  // |Omega|
};

// Server-side aggregation state for one collection round. Create one sketch
// per round, feed it users (or cohorts), then call Estimate().
class FoSketch {
 public:
  virtual ~FoSketch() = default;

  // Simulates one user running the client-side protocol with true value
  // `v` (in [0, domain)) and folds the report into the sketch.
  virtual void AddUser(uint32_t true_value, Rng& rng) = 0;

  // Folds an entire cohort described by its per-value true counts. Drawn
  // from the same per-bin distribution AddUser would induce, in O(d)-O(d^2).
  virtual void AddCohort(const Counts& true_counts, Rng& rng) = 0;

  // Batched ingestion of a timestamp's worth of users: equivalent in
  // distribution to calling AddUser for every element of `values`. Tiny
  // batches run the exact per-user protocol; larger ones are tallied and,
  // when the oracle's cost model says the cohort sampling path wins
  // (CohortPaysOff), folded via AddCohort — turning per-timestamp ingestion
  // cost from O(n * per-user-cost) into O(n + cohort-cost).
  void AddUsers(const std::vector<uint32_t>& values, Rng& rng);

  // Online ingestion: folds one decoded wire report (fo/wire.h) into the
  // sketch. This is the pure server side of the protocol — no RNG, just
  // bookkeeping over what a real client sent. Returns false without
  // mutating the sketch when the report does not belong here (different
  // oracle, wrong bit-vector width, bucket/column out of range); the
  // serving layer counts such rejects instead of crashing or throwing.
  virtual bool AddReport(const DecodedReport& report) = 0;

  // Batched online ingestion over columnar-staged rows (fo/report_arena.h):
  // folds the slice's rows in order, with results bit-identical to calling
  // AddReport on each row's reconstructed report. The caller must pass only
  // rows this sketch accepts — matching oracle and in_range payloads; the
  // ingest edge guarantees that by filtering on the arena's in_range column
  // after duplicate rejection — so every row is folded unconditionally
  // (std::logic_error if a row violates the contract). The base
  // implementation is the scalar reference loop; the oracles override it
  // with vectorized column kernels pinned against it in fo_kernel_test.
  virtual void AddReports(const ArenaSlice& slice);

  // Shard-reduce: folds another sketch of the same oracle and parameters
  // into this one, as if its users had reported here directly. Because all
  // sketch state is additive integer counts, merging K shards yields
  // bit-identical estimates to single-sketch ingestion of the same reports
  // no matter how they were partitioned. Throws std::invalid_argument when
  // `other` is a different oracle or was created with different FoParams.
  virtual void MergeFrom(const FoSketch& other) = 0;

  // Assigns this sketch's *resolved* additive count vector to `*out`,
  // forcing resolution of any deferred per-report state first (OLH's
  // pending support scan, HR's pending FWHT batch) — the same resolution
  // MergeFrom performs on both sides. Together with num_users() this is
  // the sketch's complete merge state: it is the serialization boundary
  // of the distributed merge tree (fo/sketch_wire.h). Every shipped
  // oracle's resolved vector has exactly domain() elements.
  virtual void ExportResolvedCounts(Counts* out) const = 0;

  // Exact inverse of ExportResolvedCounts for merging: adds `counts`
  // (`count` elements) and `num_users` into this sketch. Absorbing a
  // peer sketch's exported counts is bit-identical to MergeFrom(peer) —
  // all state is additive integers, so resolution order cannot matter.
  // Returns false without mutating the sketch when `count` does not match
  // this sketch's resolved vector length (the serving edge counts such
  // rejects instead of throwing, like AddReport).
  virtual bool AbsorbCounts(const uint64_t* counts, std::size_t count,
                            uint64_t num_users) = 0;

  // Writes the unbiased frequency estimates for all d values into `*out`
  // (resized to domain()), reusing the caller's buffer across rounds.
  // Requires at least one user; throws std::logic_error otherwise.
  virtual void EstimateInto(Histogram* out) const = 0;

  // Allocating convenience wrapper around EstimateInto.
  Histogram Estimate() const {
    Histogram out;
    EstimateInto(&out);
    return out;
  }

  // |Omega| this sketch aggregates over.
  virtual std::size_t domain() const = 0;

  uint64_t num_users() const { return num_users_; }

 protected:
  // Cost-model hook for AddUsers: given a tallied batch of `batch_size`
  // users, should the sketch fold it via AddCohort instead of replaying the
  // per-user protocol? The default says yes, which is right for oracles
  // whose per-user simulation is Theta(d) (OUE, SUE, OLH, HR) — their whole
  // cohort costs about two binomials per bin. GRR overrides it: its client
  // is O(1) per user while its cohort pays an O(d) multinomial spread per
  // nonzero bin, so cohort sampling only wins for concentrated batches.
  virtual bool CohortPaysOff(std::size_t batch_size,
                             const Counts& true_counts) const {
    (void)batch_size;
    (void)true_counts;
    return true;
  }

  uint64_t num_users_ = 0;
};

// Stateless factory + analytic formulas for one FO protocol. Instances are
// process-lifetime singletons obtained via GetFrequencyOracle().
class FrequencyOracle {
 public:
  virtual ~FrequencyOracle() = default;

  virtual std::string name() const = 0;

  // New aggregation sketch for one round. `params.domain` >= 2 and
  // `params.epsilon` > 0 are required.
  virtual std::unique_ptr<FoSketch> CreateSketch(
      const FoParams& params) const = 0;

  // Exact estimation variance of one bin whose true frequency is `f`, from
  // `n` users with budget `epsilon` over a domain of size `domain`.
  // For GRR this expands to the paper's Eq. (2).
  virtual double Variance(double epsilon, uint64_t n, std::size_t domain,
                          double f) const = 0;

  // The paper's V(eps, n): mean per-bin variance (1/d) sum_k Var(c[k]) under
  // sum_k f_k = 1. Since Variance() is affine in f for all shipped oracles,
  // this equals Variance at f = 1/d exactly. It is the quantity the adaptive
  // mechanisms use as the potential publication error `err` (Eq. 6), which
  // is deliberately independent of the unknown data.
  virtual double MeanVariance(double epsilon, uint64_t n,
                              std::size_t domain) const = 0;

  // Size of one perturbed report on the wire, for communication accounting.
  virtual std::size_t BytesPerReport(std::size_t domain) const = 0;
};

// Returns the singleton oracle with the given name ("GRR", "OUE", "OLH";
// case-insensitive). Throws std::invalid_argument for unknown names.
const FrequencyOracle& GetFrequencyOracle(const std::string& name);

// Names of all registered oracles, for parameterized tests and sweeps.
std::vector<std::string> AllFrequencyOracleNames();

// Validates FoParams; throws std::invalid_argument on bad input. Shared by
// the concrete oracles.
void ValidateFoParams(const FoParams& params);

}  // namespace ldpids

#endif  // LDPIDS_FO_FREQUENCY_ORACLE_H_
