// Wire format for *resolved* partial sketches — the serialization
// boundary of the distributed merge tree.
//
// An aggregator node ingests its slice of the client fleet's reports into
// a local FoSketch and ships the round's aggregate upstream as one
// partial-sketch payload. The payload carries the sketch's resolved
// additive count vector (FoSketch::ExportResolvedCounts — MergeFrom
// already forces resolution on both sides, so resolved counts plus
// num_users are the complete merge state) together with a params digest
// the root validates before folding. Because every field the root adds is
// an integer count, merging K children's partials is bit-identical to
// single-process ingestion of the union of their slices, no matter how
// users were partitioned.
//
// Envelope (all integers little-endian):
//
//   byte 0      magic 0x50 ('P')
//   byte 1      magic 0x53 ('S', "partial sketch")
//   byte 2      version (1)
//   byte 3      oracle id (fo/wire.h OracleId)
//   bytes 4-11  node id (uint64): the emitting aggregator. Gives every
//               node's partial a distinct identity for the RoundBuffer's
//               completion accounting even when two children's count
//               vectors are byte-identical (e.g. zero-report rounds).
//   bytes 12-19 round index (uint64)
//   bytes 20-23 timestamp (uint32)
//   bytes 24-31 epsilon bits (uint64: the bit pattern of the double —
//               params must match *exactly*, so the digest compares bit
//               patterns, never rounded text)
//   bytes 32-39 domain (uint64)
//   bytes 40-47 num_users (uint64)
//   bytes 48-55 count vector length (uint64; every shipped oracle's
//               resolved vector is exactly `domain` long, but the absorb
//               edge re-validates rather than trusting the wire)
//   bytes 56..  counts (uint64 each)
//   last 4      checksum of everything before it (fo/wire.h WireChecksum)
//
// Decoding follows the TryDecode* discipline of fo/wire.h: non-throwing,
// typed errors, and the output view is written only on kOk — corrupt
// bytes can never half-decode. MergePartialSketch adds the round-scoped
// validation (oracle/round/params digest, per-round node dedup) with a
// typed SketchMergeStats reason for every rejection; a mismatched partial
// is never silently folded.
#ifndef LDPIDS_FO_SKETCH_WIRE_H_
#define LDPIDS_FO_SKETCH_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fo/frequency_oracle.h"
#include "fo/wire.h"

namespace ldpids {

// Precise decode outcome. kOk is 0 so results can be truth-tested.
enum class SketchWireError : uint8_t {
  kOk = 0,
  kTooShort,           // smaller than header + checksum
  kBadMagic,
  kBadVersion,
  kUnknownOracle,      // oracle id outside [kGrr, kHr]
  kLengthMismatch,     // declared count length does not match the bytes
  kChecksumMismatch,
};

// Number of SketchWireError enumerators (for per-reason counters).
inline constexpr std::size_t kSketchWireErrorCount = 7;

const char* SketchWireErrorName(SketchWireError error);

// Fixed bytes before the count vector.
inline constexpr std::size_t kSketchWireHeaderSize = 56;

// Encoded size of a partial sketch carrying `count_len` counts.
std::size_t EncodedPartialSketchSize(std::size_t count_len);

// A validated partial sketch viewing the caller's payload buffer (no
// count materialization; the view borrows `data`).
struct PartialSketchView {
  OracleId oracle = OracleId::kGrr;
  uint64_t node_id = 0;
  uint64_t round_index = 0;
  uint32_t timestamp = 0;
  uint64_t epsilon_bits = 0;
  uint64_t domain = 0;
  uint64_t num_users = 0;
  const uint8_t* counts = nullptr;  // count_len uint64 LE values
  std::size_t count_len = 0;

  uint64_t CountAt(std::size_t i) const { return GetU64Le(counts + 8 * i); }
};

// The bit pattern of an epsilon for the params digest (and its inverse).
uint64_t EpsilonBits(double epsilon);
double EpsilonFromBits(uint64_t bits);

// Encodes `sketch`'s resolved state (ExportResolvedCounts + num_users)
// under the given round coordinates. `epsilon` must be the FoParams
// epsilon the sketch was created with — the digest the root validates.
std::vector<uint8_t> EncodePartialSketch(const FoSketch& sketch,
                                         OracleId oracle, uint64_t node_id,
                                         uint64_t round_index,
                                         uint32_t timestamp, double epsilon);

// Validates magic/version/oracle-range/length/checksum and fills the
// view. `*out` is written only on kOk.
SketchWireError TryViewPartialSketch(const uint8_t* data, std::size_t size,
                                     PartialSketchView* out);
SketchWireError TryViewPartialSketch(const std::vector<uint8_t>& payload,
                                     PartialSketchView* out);

// Reads the node id out of an encoded partial sketch without validating
// the rest (magic/version prefix and minimum length only) — the
// transport's PacketIdentity hook, mirroring PeekWireNonce: re-deliveries
// of one node's partial share an identity, distinct nodes never collide.
bool PeekPartialSketchNodeId(const uint8_t* data, std::size_t size,
                             uint64_t* node_id);

// Typed accounting of a root's partial-sketch merges. `merged` partials
// were folded; every other counter is a rejection reason (a rejected
// partial never touches the round sketch). `missing` is owned by the
// caller: announced children whose partial never arrived before the
// round flushed (the failed-aggregator signal).
struct SketchMergeStats {
  uint64_t merged = 0;
  uint64_t users_merged = 0;     // sum of merged partials' num_users
  uint64_t malformed = 0;        // wire-level reject (TryViewPartialSketch)
  uint64_t wrong_oracle = 0;
  uint64_t wrong_round = 0;
  uint64_t params_mismatch = 0;  // epsilon bits, domain or count length
  uint64_t duplicate_node = 0;   // same node id twice within one round
  uint64_t missing = 0;

  uint64_t rejected() const {
    return malformed + wrong_oracle + wrong_round + params_mismatch +
           duplicate_node;
  }
  // Every payload handed to MergePartialSketch lands in exactly one of
  // merged / rejected() (`missing` and `users_merged` do not add here).
  uint64_t total() const { return merged + rejected(); }
  SketchMergeStats& operator+=(const SketchMergeStats& other);
  std::string ToString() const;
};

// Validates one encoded partial sketch against the round's expectations
// and folds it into `*sketch` (AbsorbCounts) when everything matches.
// Never throws on wire-level garbage: exactly one SketchMergeStats
// counter advances per call. `seen_nodes` dedups emitters within the
// round (caller clears it per round). Returns true iff the payload was
// folded.
bool MergePartialSketch(const uint8_t* data, std::size_t size,
                        OracleId oracle, uint64_t round_index,
                        double epsilon, std::size_t domain, FoSketch* sketch,
                        std::vector<uint64_t>* seen_nodes,
                        SketchMergeStats* stats);

}  // namespace ldpids

#endif  // LDPIDS_FO_SKETCH_WIRE_H_
