// Composable nodes of the distributed aggregation tier.
//
// The session monolith is split at its natural seam: the *ingest half* of
// a round (open a sharded ReportRouter, deliver the cohort's wire packets,
// close into a resolved FoSketch) is an `AggregatorNode`, reusable on its
// own — a leaf process in a merge tree runs one per round and ships the
// resolved sketch upstream as a partial-sketch frame (fo/sketch_wire.h);
// the estimate / post-process / mechanism half stays in MechanismSession,
// which now drives any RoundSource.
//
// `RootSession` composes the two the other way around: a MechanismSession
// whose RoundSource is not local ingestion but an exact merge of K
// children's partial sketches drained from a transport::RoundBuffer.
// Because a partial carries the child's complete additive merge state,
// the root's releases are bit-identical to a single process ingesting the
// union of the children's report slices — the tree changes where folding
// happens, never what is folded.
//
// Topology (K aggregators, one root):
//
//   clients ──packets──> AggregatorNode 0 ─┐
//   clients ──packets──> AggregatorNode 1 ─┼─partial sketches─> RootSession
//   clients ──packets──> ...              ─┘       (RoundBuffer → merge →
//                                                   estimate → mechanism)
//
// Failure semantics at the root reuse the session's burned-round contract:
// a child whose partial never arrives before the round's deadline counts
// as `missing` in SketchMergeStats; if *no* child contributes any users
// the round has zero reports and the session permanently fails (see
// MechanismSession::Advance).
#ifndef LDPIDS_SERVICE_AGGREGATOR_H_
#define LDPIDS_SERVICE_AGGREGATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/mechanism.h"
#include "fo/frequency_oracle.h"
#include "fo/sketch_wire.h"
#include "service/ingest.h"
#include "service/session.h"
#include "transport/frame.h"
#include "transport/round_buffer.h"

namespace ldpids::obs {
class Counter;
class IngestStatsFeed;
}  // namespace ldpids::obs

namespace ldpids::service {

struct AggregatorOptions {
  // Ingestion shards per round; 0 = adaptive (see ReportRouter).
  std::size_t num_shards = 1;
  // Identity this node stamps into the partials it emits. Must be unique
  // within one merge tree — the root dedups partials by it.
  uint64_t node_id = 0;
  // Observability (optional): registers ldpids_aggregator_* counters and
  // the canonical ingest metrics, labeled {node=metrics_label} (unlabeled
  // when the label is empty). Write-only, like SessionOptions::metrics.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_label;
};

// The ingest half of the session stack as a standalone component: one
// node executes collection rounds against a RoundTransport and produces
// resolved sketches — optionally encoded and shipped upstream as partial
// sketches. Stateless across rounds except for cumulative accounting;
// not thread-safe (one node per ingest thread, like one session).
class AggregatorNode {
 public:
  AggregatorNode(const FrequencyOracle& fo, OracleId oracle,
                 std::size_t domain, AggregatorOptions options = {});
  // Out of line: the feed member's type is incomplete here.
  ~AggregatorNode();

  // Executes one round's ingest: ReportRouter open → `ingest` delivers
  // the packets → close into `out->sketch`, with stats and (when `timed`)
  // stage windows. Exceptions from the transport propagate; `*out` is
  // discarded wholesale by callers on throw.
  void ExecuteRound(const RoundRequest& request, const RoundTransport& ingest,
                    bool timed, RoundOutcome* out);

  // ExecuteRound + partial-sketch encoding: one leaf round of the merge
  // tree. A round that accepted zero reports still encodes a valid
  // (all-zero, num_users = 0) partial — whether the *tree's* round is
  // burned is the root's call, not a leaf's.
  std::vector<uint8_t> RunRoundToPartial(const RoundRequest& request,
                                         const RoundTransport& ingest,
                                         IngestStats* stats = nullptr);

  // RunRoundToPartial + upstream transmission as a kPartialSketch frame.
  void RunRoundUpstream(const RoundRequest& request,
                        const RoundTransport& ingest,
                        transport::FrameSender& upstream,
                        uint64_t session_id);

  uint64_t node_id() const { return options_.node_id; }
  std::size_t domain() const { return domain_; }
  OracleId oracle() const { return oracle_; }
  // Rounds executed and acceptance accounting accumulated across them.
  uint64_t rounds() const { return rounds_; }
  const IngestStats& stats() const { return stats_; }

 private:
  const FrequencyOracle& fo_;
  const OracleId oracle_;
  const std::size_t domain_;
  AggregatorOptions options_;
  uint64_t rounds_ = 0;
  IngestStats stats_;
  // Observability (null when options_.metrics is).
  std::unique_ptr<obs::IngestStatsFeed> ingest_feed_;
  obs::Counter* rounds_counter_ = nullptr;
  obs::Counter* partials_counter_ = nullptr;
  obs::Counter* partial_bytes_counter_ = nullptr;
};

// Which aggregator a user reports to. Both modes are deterministic pure
// functions of (user, num_nodes[, salt]), so every party — fleet
// simulation, real client, test — computes the same slice without
// coordination, and the union of the slices is exactly the population.
enum class AssignMode : uint8_t {
  // splitmix64(user ^ salt) % num_nodes: stable under population growth
  // (a user's node never depends on num_users) and load-balanced in
  // expectation for arbitrary user-id distributions.
  kStableHash = 0,
  // Contiguous balanced ranges: node = user * num_nodes / num_users.
  // Deterministic equal-size slices (±1), the natural mode for dense
  // 0..n-1 simulated populations and for the pinned exactness tests.
  kRange = 1,
};

// Load-balance policy mapping users onto the tree's aggregators.
class UserAssignment {
 public:
  // `num_users` is the population size range mode slices over (ignored by
  // stable-hash except for Partition's output sizing). Throws
  // std::invalid_argument when num_nodes is 0 or (range mode) num_users
  // is 0.
  UserAssignment(std::size_t num_nodes, uint64_t num_users,
                 AssignMode mode = AssignMode::kRange, uint64_t salt = 0);

  std::size_t num_nodes() const { return num_nodes_; }
  AssignMode mode() const { return mode_; }

  // Node of one user (user < num_users for range mode).
  std::size_t NodeOf(uint32_t user) const;

  // Splits the whole population 0..num_users-1 into per-node cohorts,
  // each in increasing user order.
  std::vector<std::vector<uint32_t>> PartitionAll() const;

  // Splits an explicit cohort into per-node slices, preserving the
  // cohort's order within each slice — so each node's slice is exactly
  // the subsequence of the round's cohort it owns, and the concatenation
  // across nodes is a permutation of the cohort.
  std::vector<std::vector<uint32_t>> Partition(
      const std::vector<uint32_t>& cohort) const;

 private:
  std::size_t num_nodes_;
  uint64_t num_users_;
  AssignMode mode_;
  uint64_t salt_;
};

// A mechanism session whose rounds are collected by a merge tree: the
// root drains K children's partial sketches from `buffer` and folds them
// into the round sketch with full typed rejection accounting
// (sketch_merge_stats()); estimation and the mechanism run untouched.
//
// Round lifecycle: at announce time the root (a) forwards the request to
// the caller's announce hook — which must make the children run the round
// (example_merge_tree pushes round descriptors down pipes) — and (b)
// injects a synthetic end-of-round marker with expected count K into its
// own buffer: children never send markers, because only the root knows
// the tree's fan-in. The RoundBuffer then provides completion, node-level
// dedup (PacketIdentity = emitting node id) and late/duplicate absorption
// exactly as it does for report frames.
class RootSession {
 public:
  // `num_children` is the tree's fan-in K (> 0); `session_id` keys the
  // synthetic markers (must match the id children stamp on their partial
  // frames). `buffer` must outlive the session and its round deadline
  // bounds how long a round waits for slow or dead children.
  RootSession(std::unique_ptr<StreamMechanism> mechanism, std::size_t domain,
              SessionOptions options, std::size_t num_children,
              uint64_t session_id, transport::RoundBuffer& buffer,
              RoundAnnounce announce = nullptr);

  // See MechanismSession::Advance — identical contract, including the
  // zero-report burn (here: no child contributed any users) and permanent
  // failure semantics.
  StepResult Advance() { return session_->Advance(); }
  bool failed() const { return session_->failed(); }

  MechanismSession& session() { return *session_; }
  const MechanismSession& session() const { return *session_; }
  const SketchMergeStats& merge_stats() const {
    return session_->sketch_merge_stats();
  }
  std::size_t num_children() const { return num_children_; }

 private:
  void MergeRound(const RoundRequest& request, bool timed, RoundOutcome* out);

  const FrequencyOracle& fo_;
  const OracleId oracle_;
  const std::size_t num_children_;
  const uint64_t session_id_;
  transport::RoundBuffer& buffer_;
  std::unique_ptr<MechanismSession> session_;
};

}  // namespace ldpids::service

#endif  // LDPIDS_SERVICE_AGGREGATOR_H_
