#include "service/session.h"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/collector.h"
#include "obs/flight_recorder.h"
#include "service/aggregator.h"
#include "obs/stage_trace.h"
#include "obs/stats_feed.h"
#include "util/histogram.h"

namespace ldpids::service {

// Implements the mechanism-facing CollectorContext by opening one sharded
// ingestion round per Collect call.
//
// Serial mode (pipeline_depth == 1): each round is announced, ingested
// and estimated synchronously inside Collect.
//
// Pipelined mode (pipeline_depth > 1): a round becomes a RoundJob. Its
// announce half fires on the session thread the moment the round is
// opened; its ingest half (transport -> shard fold -> merge) runs on one
// dedicated worker thread that executes jobs strictly in round_index
// order (RoundBuffer::TakeRound requires in-order draining). When the
// mechanism pre-declares its next round via PlanNextCollect, that round
// is announced while the current round is still folding or estimating —
// the announce/ingest stage of round r+1 overlaps the estimate stage of
// round r. Claiming (waiting for a job, accumulating its stats, running
// EstimateInto) always happens on the session thread in round order, so
// results and accounting are bit-identical to the serial path.
class MechanismSession::WireCollector final : public CollectorContext {
 public:
  WireCollector(MechanismSession& session, OracleId oracle,
                std::size_t domain, uint64_t num_users)
      : session_(session),
        oracle_(oracle),
        domain_(domain),
        num_users_(num_users),
        pipelined_(session.options_.pipeline_depth > 1) {
    if (pipelined_) {
      worker_ = std::thread([this] { WorkerLoop(); });
    }
  }

  ~WireCollector() override {
    if (!pipelined_) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    // The worker drains every queued job before exiting: each was already
    // announced, so its frames must leave the RoundBuffer deterministically
    // (bounded by the buffer's round deadline if the packets never come).
    worker_.join();
  }

  std::size_t domain() const override { return domain_; }
  uint64_t num_users() const override { return num_users_; }

  void Collect(std::size_t t, double epsilon,
               const std::vector<uint32_t>* subset, uint64_t* n_out,
               Histogram* out) override {
    JobPtr job;
    if (!prefetched_.empty()) {
      // The mechanism planned this round and it is already announced (and
      // possibly folded). A plan is a budget commitment, so the call must
      // match it exactly.
      job = std::move(prefetched_.front());
      prefetched_.pop_front();
      if (job->request.timestamp != t || job->request.epsilon != epsilon ||
          subset != nullptr) {
        throw std::logic_error(
            "mechanism broke its pipelined round plan: the announced round "
            "does not match this Collect call");
      }
    } else {
      job = EnqueueRound(t, epsilon, subset);
    }
    // Announce the mechanism's next planned round (if any) before blocking:
    // its ingestion proceeds while this round is estimated.
    FlushPendingPlan();

    if (pipelined_) {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return job->done; });
    }
    if (job->error) std::rethrow_exception(job->error);
    RoundOutcome& outcome = job->outcome;
    session_.stats_ += outcome.stats;  // claim order == round order
    if (session_.merge_source_) {
      session_.sketch_merges_ += outcome.sketch_merges;
    }
    obs::StageSet* stages = session_.stages_.get();
    if (stages != nullptr) {
      // One observation per stage per consumed round, recorded here on
      // the session thread. Transport RTT is the transport-call wall time
      // minus the router's own busy time inside it — the portion spent
      // waiting on clients and the network, valid for inproc and buffered
      // socket transports alike.
      const uint64_t busy =
          outcome.router_ns.arena_decode + outcome.router_ns.shard_fold;
      stages->Record(obs::Stage::kTransportRtt,
                     outcome.transport_ns > busy
                         ? outcome.transport_ns - busy
                         : 0);
      stages->Record(obs::Stage::kArenaDecode, outcome.router_ns.arena_decode);
      stages->Record(obs::Stage::kShardFold, outcome.router_ns.shard_fold);
      stages->Record(obs::Stage::kMerge, outcome.router_ns.merge);
      if (session_.merge_source_) {
        stages->Record(obs::Stage::kSketchMerge, outcome.sketch_merge_ns);
      }
      if (session_.ingest_feed_) session_.ingest_feed_->Add(outcome.stats);
      if (session_.arena_feed_) {
        session_.arena_feed_->Add(outcome.decode_stats);
      }
      if (session_.sketch_merge_feed_) {
        session_.sketch_merge_feed_->Add(outcome.sketch_merges);
      }
    }
    obs::FlightRecorder* recorder = session_.recorder_;
    if (recorder != nullptr) {
      const uint64_t round = job->request.round_index;
      const uint32_t track = session_.track_;
      recorder->Record(track, obs::Stage::kAnnounce, round,
                       job->announce_start_ns, job->announce_end_ns);
      // The full transport-call wall window (waiting on clients + the
      // router's own folding inside it); clears the in-flight mark.
      recorder->Record(track, obs::Stage::kTransportRtt, round,
                       outcome.ingest_start_ns, outcome.ingest_end_ns,
                       outcome.stats.accepted, outcome.stats.rejected());
      // Arena decode and shard folding run interleaved inside the
      // transport window (per IngestBatch call), so they have no single
      // wall window of their own; anchor them as tail slices of the
      // ingest window so the trace shows their share without inventing
      // an ordering. Saturate: summed-across-shards fold time can exceed
      // the wall window on multi-thread routers.
      const uint64_t end = outcome.ingest_end_ns;
      const uint64_t fold = outcome.router_ns.shard_fold;
      const uint64_t arena = outcome.router_ns.arena_decode;
      const uint64_t fold_start = end > fold ? end - fold : 0;
      const uint64_t arena_start =
          fold_start > arena ? fold_start - arena : 0;
      recorder->Record(track, obs::Stage::kArenaDecode, round, arena_start,
                       fold_start, outcome.stats.accepted,
                       outcome.stats.rejected());
      recorder->Record(track, obs::Stage::kShardFold, round, fold_start, end,
                       outcome.stats.accepted, outcome.stats.rejected());
      recorder->Record(track, obs::Stage::kMerge, round,
                       outcome.merge_start_ns, outcome.merge_end_ns,
                       outcome.stats.accepted);
      if (session_.merge_source_) {
        recorder->Record(track, obs::Stage::kSketchMerge, round,
                         outcome.sketch_merge_start_ns,
                         outcome.sketch_merge_end_ns,
                         outcome.sketch_merges.merged,
                         outcome.sketch_merges.rejected());
      }
      last_round_index_ = round;
    }
    if (outcome.sketch->num_users() == 0) {
      throw std::runtime_error("collection round accepted zero reports");
    }
    if (n_out != nullptr) *n_out = outcome.sketch->num_users();
    if (stages != nullptr || recorder != nullptr) {
      const uint64_t t0 = obs::NowNs();
      outcome.sketch->EstimateInto(out);
      const uint64_t t1 = obs::NowNs();
      if (stages != nullptr) stages->Record(obs::Stage::kEstimate, t1 - t0);
      if (recorder != nullptr) {
        recorder->Record(session_.track_, obs::Stage::kEstimate,
                         job->request.round_index, t0, t1);
      }
      step_estimate_end_ns_ = t1;
    } else {
      outcome.sketch->EstimateInto(out);
    }
  }

  // End of the latest EstimateInto in the current step, 0 when no round
  // has been consumed since the last call. Advance() uses it to time the
  // post-process stage (mechanism logic after its last estimate).
  uint64_t TakeStepEstimateEnd() {
    const uint64_t t = step_estimate_end_ns_;
    step_estimate_end_ns_ = 0;
    return t;
  }

  // Round index of the newest consumed round (only meaningful when a
  // recorder is attached; Advance tags the post-process event with it).
  uint64_t last_round_index() const { return last_round_index_; }

  void PlanNextCollect(std::size_t t, double epsilon) override {
    if (!pipelined_) return;  // serial collectors ignore the hint
    if (has_plan_) {
      throw std::logic_error(
          "mechanism planned two rounds without collecting in between");
    }
    has_plan_ = true;
    plan_t_ = t;
    plan_epsilon_ = epsilon;
  }

  // Announces the pending plan once pipeline_depth allows another round in
  // flight. Called inside Collect and again at the end of Advance (a step
  // that ends without a publication plans its next round after its last
  // Collect returned).
  void FlushPendingPlan() {
    if (!has_plan_) return;
    if (prefetched_.size() + 1 >= session_.options_.pipeline_depth) return;
    has_plan_ = false;
    prefetched_.push_back(EnqueueRound(plan_t_, plan_epsilon_, nullptr));
  }

 private:
  // One FO collection round in flight. `request.cohort` (when non-null)
  // points at the calling mechanism's cohort vector, which outlives the
  // job because Collect blocks until the job is done; planned rounds are
  // always whole-population.
  struct RoundJob {
    RoundRequest request;
    // Sketch + accounting + timing, filled by RunJob (possibly on the
    // ingest worker) through the session's RoundSource and read by the
    // session thread strictly after the `done` handshake — the mutex
    // hand-off orders these plain fields, so all histogram recording
    // stays on the session thread.
    RoundOutcome outcome;
    std::exception_ptr error;
    bool done = false;
    // Announce wall window, stamped on the session thread in EnqueueRound
    // (0 when no recorder is attached).
    uint64_t announce_start_ns = 0;
    uint64_t announce_end_ns = 0;
  };
  using JobPtr = std::shared_ptr<RoundJob>;

  // Session thread only: assigns the round index, fires the announce half
  // and hands the ingest half to the worker (or runs it inline when
  // serial).
  JobPtr EnqueueRound(std::size_t t, double epsilon,
                      const std::vector<uint32_t>* cohort) {
    if (t > std::numeric_limits<uint32_t>::max()) {
      throw std::invalid_argument("timestamp does not fit the wire");
    }
    auto job = std::make_shared<RoundJob>();
    job->request.timestamp = t;
    job->request.epsilon = epsilon;
    job->request.domain = domain_;
    job->request.oracle = oracle_;
    job->request.cohort = cohort;
    job->request.round_index = session_.rounds_++;
    if (session_.rounds_counter_ != nullptr) session_.rounds_counter_->Add(1);
    if (session_.stages_ != nullptr || session_.recorder_ != nullptr) {
      const uint64_t t0 = obs::NowNs();
      if (session_.announce_) session_.announce_(job->request);
      const uint64_t t1 = obs::NowNs();
      if (session_.stages_ != nullptr) {
        session_.stages_->Record(obs::Stage::kAnnounce, t1 - t0);
      }
      job->announce_start_ns = t0;
      job->announce_end_ns = t1;
    } else if (session_.announce_) {
      session_.announce_(job->request);
    }
    if (pipelined_) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(job);
      }
      work_cv_.notify_all();
    } else {
      RunJob(*job);
      job->done = true;
    }
    return job;
  }

  // The ingest stage of one round, delegated to the session's RoundSource
  // (local sharded ingestion via an AggregatorNode, or a root's
  // partial-sketch merge).
  void RunJob(RoundJob& job) {
    obs::FlightRecorder* recorder = session_.recorder_;
    if (recorder != nullptr) {
      // In-flight mark: the health model sees this round's ingest as begun
      // until the matching Record on the session thread (or the EndStage
      // below on the error path) clears it.
      recorder->BeginStage(session_.track_, obs::Stage::kTransportRtt,
                           job.request.round_index, obs::NowNs());
    }
    try {
      const bool timed = session_.stages_ != nullptr || recorder != nullptr;
      session_.source_(job.request, timed, &job.outcome);
    } catch (...) {
      job.error = std::current_exception();
      if (recorder != nullptr) {
        recorder->EndStage(session_.track_, obs::Stage::kTransportRtt);
      }
    }
  }

  void WorkerLoop() {
    for (;;) {
      JobPtr job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop requested and fully drained
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      RunJob(*job);
      {
        std::lock_guard<std::mutex> lock(mu_);
        job->done = true;
      }
      done_cv_.notify_all();
    }
  }

  MechanismSession& session_;
  const OracleId oracle_;
  const std::size_t domain_;
  const uint64_t num_users_;
  const bool pipelined_;

  // Session-thread state: the mechanism's recorded-but-unannounced plan
  // and the announced-but-unclaimed rounds, in round order.
  uint64_t step_estimate_end_ns_ = 0;  // see TakeStepEstimateEnd
  uint64_t last_round_index_ = 0;      // newest consumed round (recorder)
  bool has_plan_ = false;
  std::size_t plan_t_ = 0;
  double plan_epsilon_ = 0.0;
  std::deque<JobPtr> prefetched_;

  // Worker handoff (pipelined mode only).
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<JobPtr> queue_;
  bool stop_ = false;
  std::thread worker_;
};

MechanismSession::MechanismSession(
    std::unique_ptr<StreamMechanism> mechanism, std::size_t domain,
    SessionOptions options, RoundTransport transport)
    : MechanismSession(std::move(mechanism), domain, options,
                       SplitRoundTransport{nullptr, std::move(transport)}) {}

MechanismSession::MechanismSession(
    std::unique_ptr<StreamMechanism> mechanism, std::size_t domain,
    SessionOptions options, SplitRoundTransport transport)
    : MechanismSession(std::move(mechanism), domain, options,
                       std::move(transport.announce),
                       /*merge_source=*/false) {
  if (!transport.ingest) {
    throw std::invalid_argument("session needs a transport");
  }
  AggregatorOptions agg;
  agg.num_shards = options_.num_shards;
  aggregator_ = std::make_unique<AggregatorNode>(
      GetFrequencyOracle(mechanism_->config().fo),
      OracleIdFromName(mechanism_->config().fo), domain, agg);
  source_ = [this, ingest = std::move(transport.ingest)](
                const RoundRequest& request, bool timed,
                RoundOutcome* out) {
    aggregator_->ExecuteRound(request, ingest, timed, out);
  };
}

MechanismSession::MechanismSession(
    std::unique_ptr<StreamMechanism> mechanism, std::size_t domain,
    SessionOptions options, RoundAnnounce announce, RoundSource source)
    : MechanismSession(std::move(mechanism), domain, options,
                       std::move(announce), /*merge_source=*/true) {
  if (!source) {
    throw std::invalid_argument("session needs a round source");
  }
  source_ = std::move(source);
}

MechanismSession::MechanismSession(
    std::unique_ptr<StreamMechanism> mechanism, std::size_t domain,
    SessionOptions options, RoundAnnounce announce, bool merge_source)
    : mechanism_(std::move(mechanism)),
      announce_(std::move(announce)),
      merge_source_(merge_source),
      options_(options) {
  if (mechanism_ == nullptr) {
    throw std::invalid_argument("session needs a mechanism");
  }
  if (domain < 2) {
    throw std::invalid_argument("session domain must have >= 2 values");
  }
  if (options_.num_threads == 0) {
    throw std::invalid_argument("session threads must be >= 1");
  }
  if (options_.pipeline_depth == 0) {
    throw std::invalid_argument("session pipeline depth must be >= 1");
  }
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    obs::Labels labels;
    if (!options_.metrics_label.empty()) {
      labels.emplace_back("session", options_.metrics_label);
    }
    stages_ =
        std::make_unique<obs::StageSet>(&reg, options_.metrics_label);
    ingest_feed_ = std::make_unique<obs::IngestStatsFeed>(&reg, labels);
    arena_feed_ = std::make_unique<obs::ArenaDecodeStatsFeed>(&reg, labels);
    if (merge_source_) {
      sketch_merge_feed_ =
          std::make_unique<obs::SketchMergeStatsFeed>(&reg, labels);
    }
    rounds_counter_ = &reg.GetCounter("ldpids_session_rounds_total", labels);
    advances_counter_ =
        &reg.GetCounter("ldpids_session_advances_total", labels);
    // Static descriptors for /statusz: which mechanism/oracle/topology
    // this session label maps to.
    obs::Labels info = labels;
    info.emplace_back("mechanism", mechanism_->name());
    info.emplace_back("fo", mechanism_->config().fo);
    info.emplace_back("pipeline", std::to_string(options_.pipeline_depth));
    info.emplace_back("shards", std::to_string(options_.num_shards));
    reg.GetGauge("ldpids_session_info", info).Set(1);
  }
  if (options_.recorder != nullptr) {
    recorder_ = options_.recorder;
    track_ = recorder_->RegisterTrack(
        options_.metrics_label.empty() ? "session" : options_.metrics_label);
  }
  collector_ = std::make_unique<WireCollector>(
      *this, OracleIdFromName(mechanism_->config().fo), domain,
      mechanism_->num_users());
}

MechanismSession::~MechanismSession() {
  // Join the ingest worker before anything else dies: a prefetched round
  // may still be running against source_/aggregator_ (and the mechanism's
  // oracle), which are destroyed after collector_ in member order.
  collector_.reset();
  // Worker joined: nothing will touch the track again. Close it so the
  // health model reads this session's silence as "finished", not stalled.
  if (recorder_ != nullptr) recorder_->CloseTrack(track_);
}

std::size_t MechanismSession::domain() const { return collector_->domain(); }

StepResult MechanismSession::Advance() {
  if (failed_) {
    throw std::logic_error(
        "session failed in an earlier round; its w-event accounting is "
        "unrecoverable — create a fresh session");
  }
  try {
    StepResult result = mechanism_->Step(*collector_, next_t_);
    if (stages_ != nullptr || recorder_ != nullptr) {
      // Post-process: mechanism work after its last estimate of the step
      // (smoothing, budget bookkeeping, release assembly).
      const uint64_t estimate_end = collector_->TakeStepEstimateEnd();
      if (estimate_end != 0) {
        const uint64_t now = obs::NowNs();
        if (stages_ != nullptr) {
          stages_->Record(obs::Stage::kPostProcess, now - estimate_end);
        }
        if (recorder_ != nullptr) {
          recorder_->Record(track_, obs::Stage::kPostProcess,
                            collector_->last_round_index(), estimate_end,
                            now);
        }
      }
    }
    if (advances_counter_ != nullptr) advances_counter_->Add(1);
    // A step that ends without a publication records its plan after its
    // last Collect returned; announce it now so the next timestamp's round
    // is in flight before Advance returns.
    collector_->FlushPendingPlan();
    ++next_t_;
    return result;
  } catch (...) {
    failed_ = true;
    // A failed session will never progress again by contract; close its
    // track immediately so the watchdog reports the failure as "session
    // gone", not as a permanently-stalled round.
    if (recorder_ != nullptr) recorder_->CloseTrack(track_);
    throw;
  }
}

}  // namespace ldpids::service
