#include "service/session.h"

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/collector.h"
#include "util/histogram.h"

namespace ldpids::service {

// Implements the mechanism-facing CollectorContext by opening one sharded
// ingestion round per Collect call.
class MechanismSession::WireCollector final : public CollectorContext {
 public:
  WireCollector(MechanismSession& session, const FrequencyOracle& fo,
                OracleId oracle, std::size_t domain, uint64_t num_users)
      : session_(session),
        fo_(fo),
        oracle_(oracle),
        domain_(domain),
        num_users_(num_users) {}

  std::size_t domain() const override { return domain_; }
  uint64_t num_users() const override { return num_users_; }

  void Collect(std::size_t t, double epsilon,
               const std::vector<uint32_t>* subset, uint64_t* n_out,
               Histogram* out) override {
    if (t > std::numeric_limits<uint32_t>::max()) {
      throw std::invalid_argument("timestamp does not fit the wire");
    }
    const FoParams params{epsilon, domain_};
    ReportRouter router(fo_, params, oracle_, static_cast<uint32_t>(t),
                        session_.options_.num_shards);
    RoundRequest request;
    request.timestamp = t;
    request.epsilon = epsilon;
    request.domain = domain_;
    request.oracle = oracle_;
    request.cohort = subset;
    request.round_index = session_.rounds_++;
    session_.transport_(request, router);
    std::unique_ptr<FoSketch> merged = router.Close(&session_.stats_);
    if (merged->num_users() == 0) {
      throw std::runtime_error("collection round accepted zero reports");
    }
    if (n_out != nullptr) *n_out = merged->num_users();
    merged->EstimateInto(out);
  }

 private:
  MechanismSession& session_;
  const FrequencyOracle& fo_;
  const OracleId oracle_;
  const std::size_t domain_;
  const uint64_t num_users_;
};

MechanismSession::MechanismSession(
    std::unique_ptr<StreamMechanism> mechanism, std::size_t domain,
    SessionOptions options, RoundTransport transport)
    : mechanism_(std::move(mechanism)),
      transport_(std::move(transport)),
      options_(options) {
  if (mechanism_ == nullptr) {
    throw std::invalid_argument("session needs a mechanism");
  }
  if (domain < 2) {
    throw std::invalid_argument("session domain must have >= 2 values");
  }
  if (options_.num_threads == 0) {
    throw std::invalid_argument("session threads must be >= 1");
  }
  if (!transport_) {
    throw std::invalid_argument("session needs a transport");
  }
  collector_ = std::make_unique<WireCollector>(
      *this, GetFrequencyOracle(mechanism_->config().fo),
      OracleIdFromName(mechanism_->config().fo), domain,
      mechanism_->num_users());
}

MechanismSession::~MechanismSession() = default;

std::size_t MechanismSession::domain() const { return collector_->domain(); }

StepResult MechanismSession::Advance() {
  if (failed_) {
    throw std::logic_error(
        "session failed in an earlier round; its w-event accounting is "
        "unrecoverable — create a fresh session");
  }
  try {
    StepResult result = mechanism_->Step(*collector_, next_t_);
    ++next_t_;
    return result;
  } catch (...) {
    failed_ = true;
    throw;
  }
}

}  // namespace ldpids::service
