#include "service/ingest.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace ldpids::service {

const char* IngestResultName(IngestResult result) {
  switch (result) {
    case IngestResult::kAccepted: return "accepted";
    case IngestResult::kMalformed: return "malformed";
    case IngestResult::kWrongOracle: return "wrong oracle";
    case IngestResult::kWrongTimestamp: return "wrong timestamp";
    case IngestResult::kDuplicate: return "duplicate";
    case IngestResult::kSketchRejected: return "sketch rejected";
  }
  return "?";
}

IngestStats& IngestStats::operator+=(const IngestStats& other) {
  accepted += other.accepted;
  malformed += other.malformed;
  wrong_oracle += other.wrong_oracle;
  wrong_timestamp += other.wrong_timestamp;
  duplicate += other.duplicate;
  sketch_rejected += other.sketch_rejected;
  return *this;
}

std::string IngestStats::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "accepted=%llu malformed=%llu wrong_oracle=%llu "
                "wrong_timestamp=%llu duplicate=%llu sketch_rejected=%llu",
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(malformed),
                static_cast<unsigned long long>(wrong_oracle),
                static_cast<unsigned long long>(wrong_timestamp),
                static_cast<unsigned long long>(duplicate),
                static_cast<unsigned long long>(sketch_rejected));
  return buf;
}

IngestShard::IngestShard(const FrequencyOracle& fo, const FoParams& params,
                         OracleId oracle, uint32_t timestamp)
    : sketch_(fo.CreateSketch(params)),
      oracle_(oracle),
      timestamp_(timestamp),
      domain_(params.domain) {}

IngestResult IngestShard::Ingest(const uint8_t* data, std::size_t size) {
  if (sketch_ == nullptr) {
    throw std::logic_error("ingest shard already closed");
  }
  if (TryDecodeReport(data, size, domain_, &scratch_) != WireError::kOk) {
    ++stats_.malformed;
    return IngestResult::kMalformed;
  }
  if (scratch_.oracle != oracle_) {
    ++stats_.wrong_oracle;
    return IngestResult::kWrongOracle;
  }
  if (scratch_.timestamp != timestamp_) {
    ++stats_.wrong_timestamp;
    return IngestResult::kWrongTimestamp;
  }
  if (seen_.count(scratch_.nonce) != 0) {
    ++stats_.duplicate;
    return IngestResult::kDuplicate;
  }
  if (!sketch_->AddReport(scratch_)) {
    ++stats_.sketch_rejected;
    return IngestResult::kSketchRejected;
  }
  // Burn the nonce only on acceptance: a forged packet that decoded but
  // failed the sketch's range check must not lock its user out.
  seen_.insert(scratch_.nonce);
  ++stats_.accepted;
  return IngestResult::kAccepted;
}

ReportRouter::ReportRouter(const FrequencyOracle& fo, const FoParams& params,
                           OracleId oracle, uint32_t timestamp,
                           std::size_t num_shards) {
  if (num_shards == 0) num_shards = HardwareThreads();
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.emplace_back(fo, params, oracle, timestamp);
  }
}

std::size_t ReportRouter::ShardOf(const uint8_t* data, std::size_t size,
                                  std::size_t fallback) const {
  uint64_t nonce = 0;
  if (!PeekWireNonce(data, size, &nonce)) {
    // Too mangled to carry a nonce; it will be rejected wherever it lands,
    // so any deterministic spread works.
    return fallback % shards_.size();
  }
  return static_cast<std::size_t>(Mix64(nonce)) % shards_.size();
}

IngestResult ReportRouter::Ingest(const std::vector<uint8_t>& packet) {
  if (closed_) throw std::logic_error("router already closed");
  return shards_[ShardOf(packet.data(), packet.size(), 0)].Ingest(packet);
}

void ReportRouter::IngestBatch(
    const std::vector<std::vector<uint8_t>>& packets,
    std::size_t num_threads) {
  if (closed_) throw std::logic_error("router already closed");
  const std::size_t k = shards_.size();
  // Deterministic nonce partition, computed serially (a header peek per
  // packet) so every copy of one user's report lands on the same shard and
  // the per-shard index lists are in global packet order.
  std::vector<std::vector<uint32_t>> slices(k);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    slices[ShardOf(packets[i].data(), packets[i].size(), i)].push_back(
        static_cast<uint32_t>(i));
  }
  ParallelFor(num_threads, k, [&](std::size_t shard) {
    for (const uint32_t i : slices[shard]) {
      shards_[shard].Ingest(packets[i]);
    }
  });
}

std::unique_ptr<FoSketch> ReportRouter::Close(IngestStats* stats) {
  if (closed_) throw std::logic_error("router already closed");
  closed_ = true;
  std::unique_ptr<FoSketch> merged = shards_[0].TakeSketch();
  if (stats != nullptr) *stats += shards_[0].stats();
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    merged->MergeFrom(shards_[i].sketch());
    if (stats != nullptr) *stats += shards_[i].stats();
  }
  return merged;
}

}  // namespace ldpids::service
