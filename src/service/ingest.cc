#include "service/ingest.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace ldpids::service {

const char* IngestResultName(IngestResult result) {
  switch (result) {
    case IngestResult::kAccepted: return "accepted";
    case IngestResult::kMalformed: return "malformed";
    case IngestResult::kWrongOracle: return "wrong oracle";
    case IngestResult::kWrongTimestamp: return "wrong timestamp";
    case IngestResult::kSketchRejected: return "sketch rejected";
  }
  return "?";
}

IngestStats& IngestStats::operator+=(const IngestStats& other) {
  accepted += other.accepted;
  malformed += other.malformed;
  wrong_oracle += other.wrong_oracle;
  wrong_timestamp += other.wrong_timestamp;
  sketch_rejected += other.sketch_rejected;
  return *this;
}

std::string IngestStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "accepted=%llu malformed=%llu wrong_oracle=%llu "
                "wrong_timestamp=%llu sketch_rejected=%llu",
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(malformed),
                static_cast<unsigned long long>(wrong_oracle),
                static_cast<unsigned long long>(wrong_timestamp),
                static_cast<unsigned long long>(sketch_rejected));
  return buf;
}

IngestShard::IngestShard(const FrequencyOracle& fo, const FoParams& params,
                         OracleId oracle, uint32_t timestamp)
    : sketch_(fo.CreateSketch(params)),
      oracle_(oracle),
      timestamp_(timestamp),
      domain_(params.domain) {}

IngestResult IngestShard::Ingest(const uint8_t* data, std::size_t size) {
  if (sketch_ == nullptr) {
    throw std::logic_error("ingest shard already closed");
  }
  if (TryDecodeReport(data, size, domain_, &scratch_) != WireError::kOk) {
    ++stats_.malformed;
    return IngestResult::kMalformed;
  }
  if (scratch_.oracle != oracle_) {
    ++stats_.wrong_oracle;
    return IngestResult::kWrongOracle;
  }
  if (scratch_.timestamp != timestamp_) {
    ++stats_.wrong_timestamp;
    return IngestResult::kWrongTimestamp;
  }
  if (!sketch_->AddReport(scratch_)) {
    ++stats_.sketch_rejected;
    return IngestResult::kSketchRejected;
  }
  ++stats_.accepted;
  return IngestResult::kAccepted;
}

ReportRouter::ReportRouter(const FrequencyOracle& fo, const FoParams& params,
                           OracleId oracle, uint32_t timestamp,
                           std::size_t num_shards) {
  if (num_shards == 0) {
    throw std::invalid_argument("router needs at least one shard");
  }
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.emplace_back(fo, params, oracle, timestamp);
  }
}

IngestResult ReportRouter::Ingest(const std::vector<uint8_t>& packet) {
  if (closed_) throw std::logic_error("router already closed");
  const IngestResult result = shards_[next_shard_].Ingest(packet);
  next_shard_ = (next_shard_ + 1) % shards_.size();
  return result;
}

void ReportRouter::IngestBatch(
    const std::vector<std::vector<uint8_t>>& packets,
    std::size_t num_threads) {
  if (closed_) throw std::logic_error("router already closed");
  const std::size_t k = shards_.size();
  ParallelFor(num_threads, k, [&](std::size_t shard) {
    for (std::size_t i = shard; i < packets.size(); i += k) {
      shards_[shard].Ingest(packets[i]);
    }
  });
}

std::unique_ptr<FoSketch> ReportRouter::Close(IngestStats* stats) {
  if (closed_) throw std::logic_error("router already closed");
  closed_ = true;
  std::unique_ptr<FoSketch> merged = shards_[0].TakeSketch();
  if (stats != nullptr) *stats += shards_[0].stats();
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    merged->MergeFrom(shards_[i].sketch());
    if (stats != nullptr) *stats += shards_[i].stats();
  }
  return merged;
}

}  // namespace ldpids::service
