#include "service/ingest.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ldpids::service {

const char* IngestResultName(IngestResult result) {
  switch (result) {
    case IngestResult::kAccepted: return "accepted";
    case IngestResult::kMalformed: return "malformed";
    case IngestResult::kWrongOracle: return "wrong oracle";
    case IngestResult::kWrongTimestamp: return "wrong timestamp";
    case IngestResult::kDuplicate: return "duplicate";
    case IngestResult::kSketchRejected: return "sketch rejected";
  }
  return "?";
}

IngestStats& IngestStats::operator+=(const IngestStats& other) {
  accepted += other.accepted;
  malformed += other.malformed;
  wrong_oracle += other.wrong_oracle;
  wrong_timestamp += other.wrong_timestamp;
  duplicate += other.duplicate;
  sketch_rejected += other.sketch_rejected;
  return *this;
}

std::string IngestStats::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "accepted=%llu malformed=%llu wrong_oracle=%llu "
                "wrong_timestamp=%llu duplicate=%llu sketch_rejected=%llu",
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(malformed),
                static_cast<unsigned long long>(wrong_oracle),
                static_cast<unsigned long long>(wrong_timestamp),
                static_cast<unsigned long long>(duplicate),
                static_cast<unsigned long long>(sketch_rejected));
  return buf;
}

IngestShard::IngestShard(const FrequencyOracle& fo, const FoParams& params,
                         OracleId oracle, uint32_t timestamp)
    : sketch_(fo.CreateSketch(params)),
      oracle_(oracle),
      timestamp_(timestamp),
      domain_(params.domain) {}

IngestResult IngestShard::Ingest(const uint8_t* data, std::size_t size) {
  if (sketch_ == nullptr) {
    throw std::logic_error("ingest shard already closed");
  }
  if (TryDecodeReport(data, size, domain_, &scratch_) != WireError::kOk) {
    ++stats_.malformed;
    return IngestResult::kMalformed;
  }
  if (scratch_.oracle != oracle_) {
    ++stats_.wrong_oracle;
    return IngestResult::kWrongOracle;
  }
  if (scratch_.timestamp != timestamp_) {
    ++stats_.wrong_timestamp;
    return IngestResult::kWrongTimestamp;
  }
  if (seen_.Contains(scratch_.nonce)) {
    ++stats_.duplicate;
    return IngestResult::kDuplicate;
  }
  if (!sketch_->AddReport(scratch_)) {
    ++stats_.sketch_rejected;
    return IngestResult::kSketchRejected;
  }
  // Burn the nonce only on acceptance: a forged packet that decoded but
  // failed the sketch's range check must not lock its user out.
  seen_.Insert(scratch_.nonce);
  ++stats_.accepted;
  return IngestResult::kAccepted;
}

void IngestShard::IngestSlice(const ReportArena& arena,
                              const uint32_t* indices, std::size_t count) {
  if (sketch_ == nullptr) {
    throw std::logic_error("ingest shard already closed");
  }
  const uint64_t* nonces = arena.nonces();
  const uint8_t* in_range = arena.in_range();
  // Clean-stream fast path: while every row is accepted, the accept list
  // is just the input slice (or the identity when indices == nullptr), so
  // nothing is materialized. The first rejected row backfills the accepted
  // prefix into the scratch list and the loop continues in push mode.
  bool rejected = false;
  accept_scratch_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const uint32_t row =
        indices != nullptr ? indices[i] : static_cast<uint32_t>(i);
    const uint64_t nonce = nonces[row];
    // Same outcome order as Ingest: a re-delivered nonce is a duplicate
    // even when its payload is out of range, and an out-of-range row does
    // not burn its nonce.
    if (seen_.Contains(nonce)) {
      ++stats_.duplicate;
    } else if (in_range[row] == 0) {
      ++stats_.sketch_rejected;
    } else {
      seen_.Insert(nonce);
      if (rejected) accept_scratch_.push_back(row);
      continue;
    }
    if (!rejected) {
      rejected = true;
      accept_scratch_.reserve(count);
      for (std::size_t j = 0; j < i; ++j) {
        accept_scratch_.push_back(
            indices != nullptr ? indices[j] : static_cast<uint32_t>(j));
      }
    }
  }
  if (!rejected) {
    if (count != 0) {
      sketch_->AddReports(ArenaSlice{&arena, indices, count});
      stats_.accepted += count;
    }
  } else if (!accept_scratch_.empty()) {
    sketch_->AddReports(
        ArenaSlice{&arena, accept_scratch_.data(), accept_scratch_.size()});
    stats_.accepted += accept_scratch_.size();
  }
}

ReportRouter::ReportRouter(const FrequencyOracle& fo, const FoParams& params,
                           OracleId oracle, uint32_t timestamp,
                           std::size_t num_shards)
    : params_(params), oracle_(oracle), timestamp_(timestamp) {
  if (num_shards == 0) num_shards = HardwareThreads();
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.emplace_back(fo, params, oracle, timestamp);
  }
}

std::size_t ReportRouter::ShardOf(const uint8_t* data, std::size_t size,
                                  std::size_t fallback) const {
  uint64_t nonce = 0;
  if (!PeekWireNonce(data, size, &nonce)) {
    // Too mangled to carry a nonce; it will be rejected wherever it lands,
    // so any deterministic spread works.
    return fallback % shards_.size();
  }
  return static_cast<std::size_t>(Mix64(nonce)) % shards_.size();
}

IngestResult ReportRouter::Ingest(const std::vector<uint8_t>& packet) {
  if (closed_) throw std::logic_error("router already closed");
  return shards_[ShardOf(packet.data(), packet.size(), 0)].Ingest(packet);
}

void ReportRouter::IngestBatch(
    const std::vector<std::vector<uint8_t>>& packets,
    std::size_t num_threads) {
  IngestBatchImpl(packets, num_threads);
}

void ReportRouter::IngestBatch(const std::vector<PayloadRef>& packets,
                               std::size_t num_threads) {
  IngestBatchImpl(packets, num_threads);
}

template <typename Packet>
void ReportRouter::IngestBatchImpl(const std::vector<Packet>& packets,
                                   std::size_t num_threads) {
  if (closed_) throw std::logic_error("router already closed");
  const std::size_t n = packets.size();
  // Minimum packets per decode chunk: below this the pool hand-off costs
  // more than the decode itself.
  constexpr std::size_t kDecodeChunk = 4096;
  // Serial-path staging block: small enough that a block's columns (plus
  // the checksum staging arrays) are still cache-hot when the shard fold
  // re-reads them. Block boundaries never change outcomes — rows keep
  // packet order, duplicate state lives in the shards, and wire-level
  // rejects accumulate across blocks.
  constexpr std::size_t kIngestBlock = 2048;

  // Per-stage wall clock (EnableStageTiming): reads the clock only at the
  // existing decode/fold boundaries, so timing never reorders work.
  uint64_t t0 = timing_ ? obs::NowNs() : 0;

  if (num_threads <= 1) {
    for (std::size_t b = 0; b < n; b += kIngestBlock) {
      arena_.BeginRound(oracle_, timestamp_, params_);
      arena_.AppendRange(packets, b, std::min(n, b + kIngestBlock));
      decode_stats_ += arena_.stats();
      if (timing_) {
        const uint64_t t1 = obs::NowNs();
        stage_nanos_.arena_decode += t1 - t0;
        t0 = t1;
      }
      IngestStaged(num_threads);
      if (timing_) {
        const uint64_t t1 = obs::NowNs();
        stage_nanos_.shard_fold += t1 - t0;
        t0 = t1;
      }
    }
    return;
  }

  // Stage 1: decode and checksum every packet exactly once into the
  // columnar arena. Rows keep global packet order (Concat preserves chunk
  // order), so dedup outcomes do not depend on the chunking.
  arena_.BeginRound(oracle_, timestamp_, params_);
  if (n < 2 * kDecodeChunk) {
    arena_.AppendBatch(packets);
  } else {
    const std::size_t chunks =
        std::min(num_threads, (n + kDecodeChunk - 1) / kDecodeChunk);
    decode_chunks_.resize(chunks);
    const std::size_t per = (n + chunks - 1) / chunks;
    ParallelFor(num_threads, chunks, [&](std::size_t c) {
      ReportArena& chunk = decode_chunks_[c];
      chunk.BeginRound(oracle_, timestamp_, params_);
      chunk.AppendRange(packets, c * per, std::min(n, (c + 1) * per));
    });
    for (const ReportArena& chunk : decode_chunks_) arena_.Concat(chunk);
  }
  decode_stats_ += arena_.stats();
  if (timing_) {
    const uint64_t t1 = obs::NowNs();
    stage_nanos_.arena_decode += t1 - t0;
    t0 = t1;
  }
  IngestStaged(num_threads);
  if (timing_) stage_nanos_.shard_fold += obs::NowNs() - t0;
}

void ReportRouter::IngestStaged(std::size_t num_threads) {
  // Stage 2: deterministic nonce partition straight off the staged nonce
  // column — no second envelope peek. A single shard owns every row in
  // arena order, which the contiguous (nullptr-indices) slice expresses
  // without materializing an identity index array.
  const std::size_t k = shards_.size();
  const std::size_t rows = arena_.size();
  if (k == 1) {
    shards_[0].IngestSlice(arena_, nullptr, rows);
    return;
  }
  slices_.resize(k);
  for (std::vector<uint32_t>& s : slices_) s.clear();
  const uint64_t* nonces = arena_.nonces();
  for (std::size_t i = 0; i < rows; ++i) {
    slices_[static_cast<std::size_t>(Mix64(nonces[i])) % k].push_back(
        static_cast<uint32_t>(i));
  }

  // Stage 3: per-shard dedup + one vectorized fold per shard.
  ParallelFor(num_threads, k, [&](std::size_t shard) {
    shards_[shard].IngestSlice(arena_, slices_[shard].data(),
                               slices_[shard].size());
  });
}

std::unique_ptr<FoSketch> ReportRouter::Close(IngestStats* stats) {
  if (closed_) throw std::logic_error("router already closed");
  closed_ = true;
  const uint64_t t0 = timing_ ? obs::NowNs() : 0;
  std::unique_ptr<FoSketch> merged = shards_[0].TakeSketch();
  if (stats != nullptr) *stats += shards_[0].stats();
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    merged->MergeFrom(shards_[i].sketch());
    if (stats != nullptr) *stats += shards_[i].stats();
  }
  if (stats != nullptr) {
    // Wire-level rejects from the batch path are counted once at the
    // router (the arena classifies them before rows exist), so the summed
    // stats stay identical to the per-packet path.
    stats->malformed += decode_stats_.malformed;
    stats->wrong_oracle += decode_stats_.wrong_oracle;
    stats->wrong_timestamp += decode_stats_.wrong_timestamp;
  }
  if (timing_) stage_nanos_.merge += obs::NowNs() - t0;
  return merged;
}

}  // namespace ldpids::service
