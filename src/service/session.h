// Incremental mechanism sessions: a StreamMechanism driven one timestamp
// at a time by externally supplied wire reports instead of simulating its
// own cohort.
//
// Per timestamp, the mechanism's DoStep performs up to two FO collection
// rounds (dissimilarity estimate, then publication) whose budgets and
// cohorts are decided mid-step from noisy state — so the rounds cannot be
// precomputed. The session inverts control: each time the mechanism asks
// its CollectorContext for a round, the session opens a sharded
// `ReportRouter`, hands a `RoundRequest` to the caller's transport (which
// makes the cohort's packets arrive — a simulated client fleet, a network
// stub, a replay log), then closes the round and feeds the merged estimate
// back to the mechanism. The server side only ever sees perturbed wire
// bytes, which is the deployment model the paper assumes.
#ifndef LDPIDS_SERVICE_SESSION_H_
#define LDPIDS_SERVICE_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/mechanism.h"
#include "fo/frequency_oracle.h"
#include "fo/wire.h"
#include "service/ingest.h"

namespace ldpids::service {

// One FO collection round the mechanism asked for. Handed to the
// transport, which must deliver the cohort's reports into the router.
struct RoundRequest {
  std::size_t timestamp = 0;
  double epsilon = 0.0;        // per-user budget of this round
  std::size_t domain = 0;
  OracleId oracle = OracleId::kGrr;
  // nullptr: the whole population reports (budget division). Otherwise
  // exactly the listed users (population division). Only valid during the
  // transport call.
  const std::vector<uint32_t>* cohort = nullptr;
  // Rounds issued by this session so far; unique per round, so transports
  // can derive per-round randomness statelessly.
  uint64_t round_index = 0;
};

// Delivers one round's packets into the router (synchronously; typically
// via ReportRouter::IngestBatch). Runs inside Advance().
using RoundTransport = std::function<void(const RoundRequest&,
                                          ReportRouter&)>;

struct SessionOptions {
  // Ingestion shards per round; 0 = adaptive (one per hardware thread,
  // resolved by ReportRouter).
  std::size_t num_shards = 1;
  std::size_t num_threads = 1;  // pool lanes for sharded ingestion
};

// Owns one mechanism and advances it timestamp by timestamp over wire
// ingestion. Not thread-safe itself; distinct sessions are independent
// (StreamServer drives many concurrently).
class MechanismSession {
 public:
  // `mechanism` must be non-null; `domain` is the stream's |Omega| (the
  // mechanism latches it on the first step). The FO and oracle id derive
  // from the mechanism's config.
  MechanismSession(std::unique_ptr<StreamMechanism> mechanism,
                   std::size_t domain, SessionOptions options,
                   RoundTransport transport);
  ~MechanismSession();

  // Processes the next timestamp: runs the mechanism's step logic, calling
  // the transport once per FO round it performs. Returns the release r_t.
  //
  // Failure semantics: if a round ends with zero accepted reports (an
  // estimate from nobody is meaningless) or the transport throws, the
  // exception propagates AND the session is permanently failed — the
  // mechanism's w-event budget/population accounting was interrupted
  // mid-step and cannot be rolled back, so replaying or skipping the
  // timestamp would void the privacy invariant. Every later Advance()
  // throws std::logic_error immediately (see failed()); the caller's
  // recovery unit is the session, not the round.
  StepResult Advance();

  // True once an Advance() failed; the session refuses further work.
  bool failed() const { return failed_; }

  const StreamMechanism& mechanism() const { return *mechanism_; }
  std::size_t domain() const;
  // Timestamp the next Advance() will process.
  std::size_t next_timestamp() const { return next_t_; }
  // Rounds issued so far.
  uint64_t rounds() const { return rounds_; }
  // Acceptance accounting accumulated over every round so far.
  const IngestStats& stats() const { return stats_; }

 private:
  class WireCollector;  // CollectorContext over sharded ingestion

  std::unique_ptr<StreamMechanism> mechanism_;
  std::unique_ptr<WireCollector> collector_;
  RoundTransport transport_;
  SessionOptions options_;
  std::size_t next_t_ = 0;
  uint64_t rounds_ = 0;
  bool failed_ = false;
  IngestStats stats_;
};

}  // namespace ldpids::service

#endif  // LDPIDS_SERVICE_SESSION_H_
