// Incremental mechanism sessions: a StreamMechanism driven one timestamp
// at a time by externally supplied wire reports instead of simulating its
// own cohort.
//
// Per timestamp, the mechanism's DoStep performs up to two FO collection
// rounds (dissimilarity estimate, then publication) whose budgets and
// cohorts are decided mid-step from noisy state — so the rounds cannot be
// precomputed. The session inverts control: each time the mechanism asks
// its CollectorContext for a round, the session opens a sharded
// `ReportRouter`, hands a `RoundRequest` to the caller's transport (which
// makes the cohort's packets arrive — a simulated client fleet, a network
// stub, a replay log), then closes the round and feeds the merged estimate
// back to the mechanism. The server side only ever sees perturbed wire
// bytes, which is the deployment model the paper assumes.
//
// Pipelined mode (SessionOptions::pipeline_depth > 1) splits each round at
// the announce/ingest vs estimate/post-process seam: rounds a mechanism
// pre-declares via CollectorContext::PlanNextCollect are announced on the
// session thread immediately and folded on a dedicated ingest worker, so
// round t+1's client production, network transit and IngestShard folding
// run concurrently with round t's EstimateInto and the mechanism's
// post-processing. Rounds are consumed strictly in round_index order and
// the partition/merge is order-invariant, so releases are bit-identical
// to the serial path at every depth.
#ifndef LDPIDS_SERVICE_SESSION_H_
#define LDPIDS_SERVICE_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/mechanism.h"
#include "fo/frequency_oracle.h"
#include "fo/sketch_wire.h"
#include "fo/wire.h"
#include "service/ingest.h"

namespace ldpids::obs {
class MetricsRegistry;
class Counter;
class StageSet;
class IngestStatsFeed;
class ArenaDecodeStatsFeed;
class SketchMergeStatsFeed;
class FlightRecorder;
}  // namespace ldpids::obs

namespace ldpids::service {

class AggregatorNode;  // service/aggregator.h

// One FO collection round the mechanism asked for. Handed to the
// transport, which must deliver the cohort's reports into the router.
struct RoundRequest {
  std::size_t timestamp = 0;
  double epsilon = 0.0;        // per-user budget of this round
  std::size_t domain = 0;
  OracleId oracle = OracleId::kGrr;
  // nullptr: the whole population reports (budget division). Otherwise
  // exactly the listed users (population division). Only valid during the
  // transport call.
  const std::vector<uint32_t>* cohort = nullptr;
  // Rounds issued by this session so far; unique per round, so transports
  // can derive per-round randomness statelessly.
  uint64_t round_index = 0;
};

// Delivers one round's packets into the router (synchronously; typically
// via ReportRouter::IngestBatch). Runs inside Advance() — or, when the
// session is pipelined, on the session's ingest worker thread.
using RoundTransport = std::function<void(const RoundRequest&,
                                          ReportRouter&)>;

// Announces one round to the clients (the control plane: push the round
// descriptor so the cohort reports). Fired on the session thread the
// moment the round is opened — for a pipelined session that is while the
// *previous* round is still folding on the ingest worker, which is where
// the overlap comes from: announce early, let production/transit/ingest
// of round r+1 run under round r's estimation.
using RoundAnnounce = std::function<void(const RoundRequest&)>;

// A round transport split at the announce/ingest seam, for pipelining.
// `announce` (optional) fires on the session thread at announcement time
// and must return quickly — posting a descriptor, not producing packets;
// `ingest` runs on the ingest stage (the worker thread when pipelined)
// and delivers the round's packets into the router, typically by blocking
// in RoundBuffer::TakeRound and folding via ReportRouter::IngestBatch
// (see transport::MakeBufferedSplitTransport). The two halves of
// *different* rounds run concurrently in a pipelined session, so they
// must not share unsynchronized mutable state.
struct SplitRoundTransport {
  RoundAnnounce announce;
  RoundTransport ingest;
};

// Everything the ingest/estimate seam hands across for one round: the
// round's resolved sketch plus acceptance accounting and stage timing.
// Produced by a RoundSource — an AggregatorNode's local sharded ingestion,
// or a RootSession's partial-sketch merge — and consumed strictly on the
// session thread (stats accumulation, stage recording, EstimateInto).
struct RoundOutcome {
  std::unique_ptr<FoSketch> sketch;
  IngestStats stats;
  ArenaDecodeStats decode_stats;   // wire-level reject accounting
  // Root-merge sessions only: this round's partial-sketch merge verdicts
  // (merged/malformed/params_mismatch/duplicate_node/missing, see
  // fo/sketch_wire.h). Zero-valued for local-ingest sources.
  SketchMergeStats sketch_merges;
  RouterStageNanos router_ns;      // arena decode / shard fold / merge
  uint64_t transport_ns = 0;       // wall time waiting on the transport
  uint64_t sketch_merge_ns = 0;    // root partial-merge wall time
  // Absolute steady-clock windows for the flight recorder (0 when the
  // round was not timed).
  uint64_t ingest_start_ns = 0;    // transport call wall window
  uint64_t ingest_end_ns = 0;
  uint64_t merge_start_ns = 0;     // router Close (shard merge) window
  uint64_t merge_end_ns = 0;
  uint64_t sketch_merge_start_ns = 0;  // root partial-merge window
  uint64_t sketch_merge_end_ns = 0;
};

// The generalized ingest half of one round: fills `*out` with the round's
// sketch and accounting (never leaving *out partially filled on throw —
// the session discards it wholesale). `timed` requests stage timing; the
// source may skip all *_ns fields when it is false. Runs inside Advance()
// — or, when the session is pipelined, on the session's ingest worker
// thread, so a source must not share unsynchronized mutable state with
// the announce half of other rounds.
using RoundSource =
    std::function<void(const RoundRequest&, bool timed, RoundOutcome*)>;

struct SessionOptions {
  // Ingestion shards per round; 0 = adaptive (one per hardware thread,
  // resolved by ReportRouter).
  std::size_t num_shards = 1;
  std::size_t num_threads = 1;  // pool lanes for sharded ingestion
  // Maximum FO rounds in flight (announced but not yet consumed by the
  // mechanism). 1 = the serial path: each round is announced, ingested
  // and estimated synchronously inside Advance(). >= 2 enables the
  // pipelined path: rounds a mechanism pre-declares via
  // CollectorContext::PlanNextCollect are announced immediately and
  // ingested on a dedicated worker thread, overlapping the current
  // round's EstimateInto and the mechanism's post-processing. Releases
  // are bit-identical at every depth — pipelining reorders work, never
  // packets (ingest is order/shard invariant and rounds are claimed
  // strictly in round_index order). With the current mechanisms at most
  // one round ahead is ever plannable (the next publication is decided
  // mid-step from noisy state), so depths beyond 2 behave like 2.
  std::size_t pipeline_depth = 1;
  // Observability (optional). When non-null the session registers its
  // per-stage latency histograms (obs/stage_trace.h), round/advance
  // counters, and the canonical ingest/arena stats metrics here, labeled
  // {session=metrics_label} (unlabeled when the label is empty).
  // Instrumentation is write-only — it never changes what the session
  // ingests or releases, so results stay bit-identical with metrics on.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_label;
  // Flight recorder (optional, independent of `metrics`). When non-null
  // the session registers one track named `metrics_label` (or "session")
  // and records a structured event per pipeline stage per round —
  // absolute wall windows, so a pipelined session's round overlap is
  // visible in the Chrome-trace export. Same write-only contract as
  // `metrics`: releases stay bit-identical with the recorder attached.
  obs::FlightRecorder* recorder = nullptr;
};

// Owns one mechanism and advances it timestamp by timestamp over wire
// ingestion. Not thread-safe itself; distinct sessions are independent
// (StreamServer drives many concurrently).
class MechanismSession {
 public:
  // `mechanism` must be non-null; `domain` is the stream's |Omega| (the
  // mechanism latches it on the first step). The FO and oracle id derive
  // from the mechanism's config.
  MechanismSession(std::unique_ptr<StreamMechanism> mechanism,
                   std::size_t domain, SessionOptions options,
                   RoundTransport transport);

  // Split-transport form: required to get real overlap out of
  // pipeline_depth > 1 (an opaque RoundTransport still pipelines, but its
  // announce half is then serialized behind the previous round's fold on
  // the worker).
  MechanismSession(std::unique_ptr<StreamMechanism> mechanism,
                   std::size_t domain, SessionOptions options,
                   SplitRoundTransport transport);

  // Source form: the round's sketch comes from an arbitrary RoundSource
  // instead of local sharded ingestion — this is how a RootSession swaps
  // the ingest half for a partial-sketch merge while the estimate /
  // post-process / mechanism side runs untouched. The session assumes the
  // source merges partial sketches and records the kSketchMerge stage and
  // sketch_merge_stats() from the outcomes it returns.
  MechanismSession(std::unique_ptr<StreamMechanism> mechanism,
                   std::size_t domain, SessionOptions options,
                   RoundAnnounce announce, RoundSource source);

  // Joins the ingest worker first: every round announced by this session
  // — including a prefetched round the mechanism never consumed — is
  // ingested (and, if unconsumed, discarded) before destruction returns,
  // so no announced round's frames are left pinned in a RoundBuffer.
  ~MechanismSession();

  // Processes the next timestamp: runs the mechanism's step logic, calling
  // the transport once per FO round it performs. Returns the release r_t.
  //
  // Failure semantics: if a round ends with zero accepted reports (an
  // estimate from nobody is meaningless) or the transport throws, the
  // exception propagates AND the session is permanently failed — the
  // mechanism's w-event budget/population accounting was interrupted
  // mid-step and cannot be rolled back, so replaying or skipping the
  // timestamp would void the privacy invariant. Every later Advance()
  // throws std::logic_error immediately (see failed()); the caller's
  // recovery unit is the session, not the round.
  //
  // Round-index contract on failure: a round's index is consumed when the
  // round is announced (clients derive per-round randomness from it), so
  // a round whose transport then fails has "burned" its index — rounds()
  // counts it, and it is never reissued (the session is dead; a retry
  // under the same index could double-count users). Frames already
  // buffered for a burned index live in the caller's RoundBuffer and die
  // with it: discard the buffer together with the failed session. The
  // pipelined path additionally guarantees that every *announced* round
  // is drained from the buffer (see ~MechanismSession), and that a
  // pending plan is never announced after a failure.
  StepResult Advance();

  // True once an Advance() failed; the session refuses further work.
  bool failed() const { return failed_; }

  const StreamMechanism& mechanism() const { return *mechanism_; }
  std::size_t domain() const;
  // Timestamp the next Advance() will process.
  std::size_t next_timestamp() const { return next_t_; }
  // Round indexes consumed so far: every announced round, including one
  // whose transport later failed (see Advance) and — when pipelined — a
  // prefetched round the mechanism has not consumed yet.
  uint64_t rounds() const { return rounds_; }
  // Acceptance accounting accumulated over every round the mechanism has
  // consumed, in round order (a prefetched round counts once claimed).
  const IngestStats& stats() const { return stats_; }
  // Partial-sketch merge accounting, accumulated like stats(). All-zero
  // unless this session was built on a merge RoundSource.
  const SketchMergeStats& sketch_merge_stats() const {
    return sketch_merges_;
  }

 private:
  class WireCollector;  // CollectorContext over a RoundSource

  // Common init: validates, wires observability, builds the collector.
  // The public ctors delegate here and then install source_ (and, for
  // transport-built sessions, aggregator_) — no round can be in flight
  // before the first Advance(), so the late install is unobservable.
  MechanismSession(std::unique_ptr<StreamMechanism> mechanism,
                   std::size_t domain, SessionOptions options,
                   RoundAnnounce announce, bool merge_source);

  std::unique_ptr<StreamMechanism> mechanism_;
  std::unique_ptr<WireCollector> collector_;
  // Transport-built sessions own the node that runs their local sharded
  // ingestion; source-built sessions have none.
  std::unique_ptr<AggregatorNode> aggregator_;
  RoundAnnounce announce_;  // may be null (opaque-transport sessions)
  RoundSource source_;
  // True when source_ merges partial sketches (the RoundSource ctor):
  // enables kSketchMerge stage recording and sketch_merges_ accounting.
  bool merge_source_ = false;
  SessionOptions options_;
  std::size_t next_t_ = 0;
  uint64_t rounds_ = 0;
  bool failed_ = false;
  IngestStats stats_;
  SketchMergeStats sketch_merges_;

  // Observability (all null when SessionOptions::metrics is). Stage
  // recording and feed publication happen on the session thread only (the
  // ingest worker hands timing back through the RoundJob done-handshake),
  // so per-session instrumentation needs no locking of its own.
  std::unique_ptr<obs::StageSet> stages_;
  std::unique_ptr<obs::IngestStatsFeed> ingest_feed_;
  std::unique_ptr<obs::ArenaDecodeStatsFeed> arena_feed_;
  std::unique_ptr<obs::SketchMergeStatsFeed> sketch_merge_feed_;
  obs::Counter* rounds_counter_ = nullptr;
  obs::Counter* advances_counter_ = nullptr;
  // Flight-recorder attachment (null when SessionOptions::recorder is).
  // Event recording happens on the session thread after the done
  // handshake; only the in-flight begin/end marks are touched from the
  // ingest worker (the recorder is lock-free and thread-safe).
  obs::FlightRecorder* recorder_ = nullptr;
  uint32_t track_ = 0;
};

}  // namespace ldpids::service

#endif  // LDPIDS_SERVICE_SESSION_H_
