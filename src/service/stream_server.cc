#include "service/stream_server.h"

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace ldpids::service {

StreamServer::StreamServer(std::size_t num_threads)
    : num_threads_(num_threads) {
  if (num_threads_ == 0) {
    throw std::invalid_argument("server needs at least one thread");
  }
}

std::size_t StreamServer::AddSession(
    std::string name, std::unique_ptr<MechanismSession> session) {
  if (session == nullptr) {
    throw std::invalid_argument("null session");
  }
  names_.push_back(std::move(name));
  sessions_.push_back(std::move(session));
  return sessions_.size() - 1;
}

std::vector<StepResult> StreamServer::AdvanceAll() {
  std::vector<StepResult> releases(sessions_.size());
  ParallelFor(num_threads_, sessions_.size(), [&](std::size_t i) {
    releases[i] = sessions_[i]->Advance();
  });
  return releases;
}

}  // namespace ldpids::service
