#include "service/stream_server.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/stats_feed.h"
#include "util/thread_pool.h"

namespace ldpids::service {

StreamServer::StreamServer(std::size_t num_threads)
    : num_threads_(num_threads) {
  if (num_threads_ == 0) {
    throw std::invalid_argument("server needs at least one thread");
  }
}

StreamServer::~StreamServer() = default;

void StreamServer::AttachMetrics(obs::MetricsRegistry* registry) {
  sessions_gauge_ = &registry->GetGauge("ldpids_server_sessions");
  advances_counter_ = &registry->GetCounter("ldpids_server_advances_total");
  advance_hist_ =
      &registry->GetHistogram("ldpids_server_advance_duration_ns");
  fleet_feed_ = std::make_unique<obs::IngestStatsFeed>(
      registry, obs::Labels{{"scope", "fleet"}});
  sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
}

std::size_t StreamServer::AddSession(
    std::string name, std::unique_ptr<MechanismSession> session) {
  if (session == nullptr) {
    throw std::invalid_argument("null session");
  }
  names_.push_back(std::move(name));
  sessions_.push_back(std::move(session));
  if (sessions_gauge_ != nullptr) {
    sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
  }
  return sessions_.size() - 1;
}

std::vector<StepResult> StreamServer::AdvanceAll() {
  std::vector<StepResult> releases(sessions_.size());
  const uint64_t t0 = advance_hist_ != nullptr ? obs::NowNs() : 0;
  ParallelFor(num_threads_, sessions_.size(), [&](std::size_t i) {
    releases[i] = sessions_[i]->Advance();
  });
  if (advance_hist_ != nullptr) {
    advance_hist_->Observe(obs::NowNs() - t0);
    advances_counter_->Add(sessions_.size());
    // Fleet rollup: the sum of every session's cumulative acceptance
    // accounting, published as a delta against the last sweep.
    IngestStats fleet;
    for (const auto& session : sessions_) fleet += session->stats();
    fleet_feed_->Publish(fleet);
  }
  return releases;
}

}  // namespace ldpids::service
