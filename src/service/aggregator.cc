#include "service/aggregator.h"

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "obs/stats_feed.h"
#include "util/histogram.h"

namespace ldpids::service {

// --- AggregatorNode -------------------------------------------------------

AggregatorNode::~AggregatorNode() = default;

AggregatorNode::AggregatorNode(const FrequencyOracle& fo, OracleId oracle,
                               std::size_t domain, AggregatorOptions options)
    : fo_(fo), oracle_(oracle), domain_(domain), options_(std::move(options)) {
  if (domain_ < 2) {
    throw std::invalid_argument("aggregator domain must have >= 2 values");
  }
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    obs::Labels labels;
    if (!options_.metrics_label.empty()) {
      labels.emplace_back("node", options_.metrics_label);
    }
    ingest_feed_ = std::make_unique<obs::IngestStatsFeed>(&reg, labels);
    rounds_counter_ =
        &reg.GetCounter("ldpids_aggregator_rounds_total", labels);
    partials_counter_ =
        &reg.GetCounter("ldpids_aggregator_partials_emitted_total", labels);
    partial_bytes_counter_ =
        &reg.GetCounter("ldpids_aggregator_partial_bytes_total", labels);
  }
}

void AggregatorNode::ExecuteRound(const RoundRequest& request,
                                  const RoundTransport& ingest, bool timed,
                                  RoundOutcome* out) {
  if (request.timestamp > std::numeric_limits<uint32_t>::max()) {
    throw std::invalid_argument("timestamp does not fit the wire");
  }
  const FoParams params{request.epsilon, domain_};
  ReportRouter router(fo_, params, oracle_,
                      static_cast<uint32_t>(request.timestamp),
                      options_.num_shards);
  uint64_t t0 = 0;
  if (timed) {
    router.EnableStageTiming();
    t0 = obs::NowNs();
  }
  ingest(request, router);
  if (timed) {
    out->ingest_start_ns = t0;
    out->ingest_end_ns = obs::NowNs();
    out->transport_ns = out->ingest_end_ns - t0;
  }
  out->sketch = router.Close(&out->stats);
  if (timed) {
    out->merge_start_ns = out->ingest_end_ns;
    out->merge_end_ns = obs::NowNs();
    out->router_ns = router.stage_nanos();
    out->decode_stats = router.decode_stats();
  }
  ++rounds_;
  stats_ += out->stats;
  if (rounds_counter_ != nullptr) rounds_counter_->Add(1);
  if (ingest_feed_ != nullptr) ingest_feed_->Add(out->stats);
}

std::vector<uint8_t> AggregatorNode::RunRoundToPartial(
    const RoundRequest& request, const RoundTransport& ingest,
    IngestStats* stats) {
  RoundOutcome outcome;
  ExecuteRound(request, ingest, /*timed=*/false, &outcome);
  if (stats != nullptr) *stats = outcome.stats;
  std::vector<uint8_t> payload = EncodePartialSketch(
      *outcome.sketch, oracle_, options_.node_id, request.round_index,
      static_cast<uint32_t>(request.timestamp), request.epsilon);
  if (partials_counter_ != nullptr) partials_counter_->Add(1);
  if (partial_bytes_counter_ != nullptr) {
    partial_bytes_counter_->Add(payload.size());
  }
  return payload;
}

void AggregatorNode::RunRoundUpstream(const RoundRequest& request,
                                      const RoundTransport& ingest,
                                      transport::FrameSender& upstream,
                                      uint64_t session_id) {
  transport::SendPartialSketch(upstream, session_id, request.round_index,
                               RunRoundToPartial(request, ingest));
}

// --- UserAssignment -------------------------------------------------------

namespace {

uint64_t SplitMix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

UserAssignment::UserAssignment(std::size_t num_nodes, uint64_t num_users,
                               AssignMode mode, uint64_t salt)
    : num_nodes_(num_nodes), num_users_(num_users), mode_(mode), salt_(salt) {
  if (num_nodes_ == 0) {
    throw std::invalid_argument("assignment needs >= 1 node");
  }
  if (mode_ == AssignMode::kRange && num_users_ == 0) {
    throw std::invalid_argument("range assignment needs >= 1 user");
  }
}

std::size_t UserAssignment::NodeOf(uint32_t user) const {
  if (mode_ == AssignMode::kStableHash) {
    return static_cast<std::size_t>(SplitMix64(user ^ salt_) % num_nodes_);
  }
  // Range: u128-free balanced split — user/num_users scaled to num_nodes.
  // num_nodes * user cannot overflow: user < 2^32 and realistic fan-ins
  // are tiny, but guard with the order that keeps intermediates small.
  const uint64_t u = user < num_users_ ? user : num_users_ - 1;
  return static_cast<std::size_t>((u * num_nodes_) / num_users_);
}

std::vector<std::vector<uint32_t>> UserAssignment::PartitionAll() const {
  std::vector<std::vector<uint32_t>> slices(num_nodes_);
  for (uint64_t u = 0; u < num_users_; ++u) {
    slices[NodeOf(static_cast<uint32_t>(u))].push_back(
        static_cast<uint32_t>(u));
  }
  return slices;
}

std::vector<std::vector<uint32_t>> UserAssignment::Partition(
    const std::vector<uint32_t>& cohort) const {
  std::vector<std::vector<uint32_t>> slices(num_nodes_);
  for (uint32_t user : cohort) slices[NodeOf(user)].push_back(user);
  return slices;
}

// --- RootSession ----------------------------------------------------------

namespace {

// Null check usable from a member-init list (the wrapped MechanismSession
// would reject null too, but only after fo_/oracle_ dereferenced it).
const std::string& MechanismFoName(
    const std::unique_ptr<StreamMechanism>& mechanism) {
  if (mechanism == nullptr) {
    throw std::invalid_argument("session needs a mechanism");
  }
  return mechanism->config().fo;
}

}  // namespace

RootSession::RootSession(std::unique_ptr<StreamMechanism> mechanism,
                         std::size_t domain, SessionOptions options,
                         std::size_t num_children, uint64_t session_id,
                         transport::RoundBuffer& buffer,
                         RoundAnnounce announce)
    : fo_(GetFrequencyOracle(MechanismFoName(mechanism))),
      oracle_(OracleIdFromName(mechanism->config().fo)),
      num_children_(num_children),
      session_id_(session_id),
      buffer_(buffer) {
  if (num_children_ == 0) {
    throw std::invalid_argument("root needs >= 1 child");
  }
  // Wrap the caller's announce: after the round is pushed to the children,
  // tell our own buffer how many partials complete it. First-marker-wins
  // in the buffer, and children never send markers, so K is authoritative.
  RoundAnnounce root_announce =
      [this, user = std::move(announce)](const RoundRequest& request) {
        if (user) user(request);
        buffer_.Deliver(transport::MakeEndRoundFrame(
            session_id_, request.round_index, num_children_));
      };
  session_ = std::make_unique<MechanismSession>(
      std::move(mechanism), domain, options, std::move(root_announce),
      [this](const RoundRequest& request, bool timed, RoundOutcome* out) {
        MergeRound(request, timed, out);
      });
}

void RootSession::MergeRound(const RoundRequest& request, bool timed,
                             RoundOutcome* out) {
  const uint64_t t0 = timed ? obs::NowNs() : 0;
  // Blocks until K distinct partials arrived or the buffer's deadline
  // flushed the round (dead children) — the root's "transport RTT".
  const std::vector<PayloadRef> partials =
      buffer_.TakeRound(request.round_index);
  if (timed) {
    out->ingest_start_ns = t0;
    out->ingest_end_ns = obs::NowNs();
    out->transport_ns = out->ingest_end_ns - t0;
  }
  const FoParams params{request.epsilon, request.domain};
  out->sketch = fo_.CreateSketch(params);
  const uint64_t m0 = timed ? obs::NowNs() : 0;
  std::vector<uint64_t> seen;
  seen.reserve(num_children_);
  for (const PayloadRef& partial : partials) {
    MergePartialSketch(partial.data(), partial.size(), oracle_,
                       request.round_index, request.epsilon, request.domain,
                       out->sketch.get(), &seen, &out->sketch_merges);
  }
  if (out->sketch_merges.merged < num_children_) {
    // Announced children whose partial never made it: the typed
    // failed-aggregator signal (PR 5 burned-round contract kicks in only
    // if the survivors contributed zero users in total).
    out->sketch_merges.missing +=
        num_children_ - out->sketch_merges.merged;
  }
  if (timed) {
    out->sketch_merge_start_ns = m0;
    out->sketch_merge_end_ns = obs::NowNs();
    out->sketch_merge_ns = out->sketch_merge_end_ns - m0;
  }
  // IngestStats parity so session-level accounting (stats(), the ingest
  // feed, the recorder's accepted/rejected annotations) keeps meaning
  // "reports this round speaks for" at every tier of the tree.
  out->stats.accepted = out->sketch_merges.users_merged;
  out->stats.malformed = out->sketch_merges.malformed;
  out->stats.wrong_oracle = out->sketch_merges.wrong_oracle;
  out->stats.wrong_timestamp = out->sketch_merges.wrong_round;
  out->stats.duplicate = out->sketch_merges.duplicate_node;
  out->stats.sketch_rejected = out->sketch_merges.params_mismatch;
}

}  // namespace ldpids::service
