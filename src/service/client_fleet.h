// A simulated population of client devices for the serving layer's demos,
// tests and benchmarks.
//
// Each user holds a true value per timestamp (supplied by a callback, e.g.
// an adapter over a StreamDataset) and, when a round request names them,
// runs the real client-side protocol (fo/client.h PerturbToWire) and emits
// a checksummed wire packet. User u's randomness in round r derives
// statelessly from (fleet seed, u, r), so a fleet is reproducible and its
// packets are identical regardless of production order or thread count.
#ifndef LDPIDS_SERVICE_CLIENT_FLEET_H_
#define LDPIDS_SERVICE_CLIENT_FLEET_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "service/ingest.h"
#include "service/session.h"

namespace ldpids::service {

class ClientFleet {
 public:
  // True value of `user` at timestamp `t`; must be pure and in-domain.
  using ValueFn = std::function<uint32_t(uint64_t user, std::size_t t)>;

  ClientFleet(uint64_t num_users, ValueFn values, uint64_t seed);

  // Produces the round's packets — one per cohort member (or per user when
  // the request's cohort is null), in cohort order — fanning production
  // across up to `num_threads` pool lanes.
  std::vector<std::vector<uint8_t>> ProduceRound(
      const RoundRequest& request, std::size_t num_threads) const;

  // A RoundTransport that produces the round's packets and ingests them
  // into the router (`ReportRouter::IngestBatch`), both across up to
  // `num_threads` lanes. `mangle`, when set, may corrupt or drop packets
  // in transit (hostile-network simulation): it is applied to every packet
  // before ingestion; returning false drops the packet.
  using MangleFn = std::function<bool(std::vector<uint8_t>& packet,
                                      uint64_t user, uint64_t round)>;
  RoundTransport Transport(std::size_t num_threads,
                           MangleFn mangle = nullptr) const;

  uint64_t num_users() const { return num_users_; }

 private:
  uint64_t num_users_;
  ValueFn values_;
  uint64_t seed_;
};

}  // namespace ldpids::service

#endif  // LDPIDS_SERVICE_CLIENT_FLEET_H_
