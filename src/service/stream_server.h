// Multi-session serving front end: drives N independent mechanism sessions
// (one per monitored stream — e.g. one per metric, region or tenant) one
// timestamp at a time, fanning the session advances across the shared
// thread pool.
//
// Sessions are independent by construction — each owns its mechanism,
// transport and ingestion rounds — so AdvanceAll is embarrassingly
// parallel, and results are returned in session order regardless of which
// lane ran which session. Nested parallelism (a session's transport doing
// sharded IngestBatch inside a pool lane) degrades to inline execution in
// the pool, so it never deadlocks.
//
// Pipelined serving: sessions built with SessionOptions::pipeline_depth
// > 1 compose directly — each owns its ingest worker, so with N pipelined
// sessions the server overlaps round t+1 ingestion with round t
// estimation *within* every stream on top of the across-stream
// parallelism of AdvanceAll, and releases stay bit-identical to serial
// sessions (pinned in pipeline_test). Successive AdvanceAll calls may run
// one session on different pool lanes; that is safe because the pool's
// completion barrier orders them.
#ifndef LDPIDS_SERVICE_STREAM_SERVER_H_
#define LDPIDS_SERVICE_STREAM_SERVER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/mechanism.h"
#include "service/session.h"

namespace ldpids::obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
class IngestStatsFeed;
}  // namespace ldpids::obs

namespace ldpids::service {

class StreamServer {
 public:
  // `num_threads` pool lanes are used to advance sessions concurrently.
  explicit StreamServer(std::size_t num_threads);
  ~StreamServer();

  // Observability (optional): fleet-wide rollup on top of whatever the
  // individual sessions register (give them per-session metrics_labels in
  // SessionOptions). Exposes the ldpids_server_sessions gauge, the
  // ldpids_server_advances_total counter, a wall-clock histogram per
  // AdvanceAll sweep, and the fleet's summed ingest stats under
  // ldpids_ingest_reports_total{scope="fleet"} — a separate instance from
  // the per-session series, so nothing double-counts. Registry must
  // outlive the server.
  void AttachMetrics(obs::MetricsRegistry* registry);

  // Registers a session under `name`; returns its index. Sessions cannot
  // be removed (a stream, once public, keeps its release history).
  std::size_t AddSession(std::string name,
                         std::unique_ptr<MechanismSession> session);

  // Advances every session by one timestamp and returns the releases in
  // session order. The first exception thrown by any session propagates
  // after all lanes settle — the healthy sessions have then already
  // advanced, and the failing one is permanently failed (see
  // MechanismSession::Advance's failure semantics), so the caller's
  // recovery unit is replacing that session, never retrying AdvanceAll
  // wholesale.
  std::vector<StepResult> AdvanceAll();

  std::size_t num_sessions() const { return sessions_.size(); }
  const std::string& name(std::size_t i) const { return names_[i]; }
  const MechanismSession& session(std::size_t i) const {
    return *sessions_[i];
  }

 private:
  std::size_t num_threads_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<MechanismSession>> sessions_;
  // Observability (all null until AttachMetrics). Updated on the caller's
  // thread only — sessions advance on pool lanes, the rollup happens
  // after the completion barrier.
  obs::Gauge* sessions_gauge_ = nullptr;
  obs::Counter* advances_counter_ = nullptr;
  obs::Histogram* advance_hist_ = nullptr;
  std::unique_ptr<obs::IngestStatsFeed> fleet_feed_;
};

}  // namespace ldpids::service

#endif  // LDPIDS_SERVICE_STREAM_SERVER_H_
