// Sharded wire-report ingestion — the server edge of the online serving
// layer.
//
// One FO collection round at one timestamp is ingested by a `ReportRouter`
// holding K `IngestShard`s. Each shard decodes envelopes defensively
// (typed `WireError` results, no exceptions on the hot path), validates
// them against the round's oracle/timestamp/domain, and folds accepted
// reports into its own `FoSketch`. At timestamp close the shards are
// merged (`FoSketch::MergeFrom`) into one sketch whose estimate is
// bit-identical to single-shard ingestion of the same packets — sketch
// state is additive integer counts, so the partition never shows.
//
// Batch path: `IngestBatch` stages the whole batch through a columnar
// ReportArena (fo/report_arena.h) — every packet is decoded and
// checksummed exactly once (the old path peeked the envelope for routing
// and decoded it again inside the shard), malformed/wrong-round packets
// are counted at the router, and the surviving rows are partitioned by the
// staged nonce column. Each shard then deduplicates its rows against its
// flat nonce set and folds the survivors in one vectorized
// `FoSketch::AddReports` call.
//
// Thread model: one shard is single-threaded; different shards are
// independent, so `IngestBatch` fans the decode chunks and the K shard
// slices across the shared thread pool (util/thread_pool.h). Rows are
// partitioned by their wire nonce (hash(nonce) mod K) — deterministic, and
// it keeps every copy of one user's report on the same shard, so per-round
// duplicate rejection is exact and merged results are reproducible at
// every shard and thread count.
#ifndef LDPIDS_SERVICE_INGEST_H_
#define LDPIDS_SERVICE_INGEST_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fo/frequency_oracle.h"
#include "fo/report_arena.h"
#include "fo/wire.h"
#include "util/u64_set.h"

namespace ldpids::service {

// Why a packet was (not) folded into the round's sketch.
enum class IngestResult : uint8_t {
  kAccepted = 0,
  kMalformed,        // wire-level corruption (any WireError)
  kWrongOracle,      // valid packet, but for a different oracle
  kWrongTimestamp,   // valid packet, but stale or from the future
  kDuplicate,        // this round already accepted this user nonce
  kSketchRejected,   // decoded fine, out of range for the sketch params
};

const char* IngestResultName(IngestResult result);

// Per-round acceptance accounting, kept per shard and summed at close.
struct IngestStats {
  uint64_t accepted = 0;
  uint64_t malformed = 0;
  uint64_t wrong_oracle = 0;
  uint64_t wrong_timestamp = 0;
  uint64_t duplicate = 0;
  uint64_t sketch_rejected = 0;

  uint64_t total() const {
    return accepted + malformed + wrong_oracle + wrong_timestamp +
           duplicate + sketch_rejected;
  }
  uint64_t rejected() const { return total() - accepted; }
  IngestStats& operator+=(const IngestStats& other);
  std::string ToString() const;
};

// One shard: a defensive decoder in front of a FoSketch. Single-threaded.
class IngestShard {
 public:
  // `oracle` and `timestamp` pin what this round accepts; `params` sizes
  // the sketch (domain) and fixes the per-user budget (epsilon).
  IngestShard(const FrequencyOracle& fo, const FoParams& params,
              OracleId oracle, uint32_t timestamp);

  IngestShard(IngestShard&&) = default;
  IngestShard& operator=(IngestShard&&) = delete;

  // Decodes and folds one packet; never throws on packet content.
  IngestResult Ingest(const uint8_t* data, std::size_t size);
  IngestResult Ingest(const std::vector<uint8_t>& packet) {
    return Ingest(packet.data(), packet.size());
  }

  // Batch path: deduplicates `indices[0..count)` (rows of `arena`, in
  // order) against this shard's seen nonces, counts out-of-range rows as
  // sketch-rejected, and folds the survivors in one FoSketch::AddReports
  // call. Classification order per row matches Ingest exactly: duplicate
  // before sketch-rejected, and a nonce is burned only on acceptance.
  // The arena rows must already be valid for this round (the arena's
  // decode handles malformed/wrong-oracle/wrong-timestamp classification).
  void IngestSlice(const ReportArena& arena, const uint32_t* indices,
                   std::size_t count);

  const IngestStats& stats() const { return stats_; }
  const FoSketch& sketch() const { return *sketch_; }

  // Releases the shard's sketch for merging; the shard must not ingest
  // afterwards.
  std::unique_ptr<FoSketch> TakeSketch() { return std::move(sketch_); }

 private:
  std::unique_ptr<FoSketch> sketch_;
  OracleId oracle_;
  uint32_t timestamp_;
  std::size_t domain_;
  IngestStats stats_;
  DecodedReport scratch_;  // reused across packets; no per-packet alloc
  // Nonces accepted this round: a re-delivered packet (retry, duplicating
  // network, replayed log) must not double-count its user.
  U64Set seen_;
  // Accepted arena rows of the current IngestSlice call; reused.
  std::vector<uint32_t> accept_scratch_;
};

// Wall-clock nanoseconds the router's batch path spent in each internal
// stage, accumulated across one round's IngestBatch calls (and the merge
// at Close). Only filled after EnableStageTiming(): an unobserved router
// pays zero clock reads. The session layer turns these into the
// `ldpids_stage_duration_ns{stage=arena_decode|shard_fold|merge}`
// histograms (obs/stage_trace.h) — plain integers here keep this header
// free of obs dependencies.
struct RouterStageNanos {
  uint64_t arena_decode = 0;  // packets -> columnar rows (incl. checksums)
  uint64_t shard_fold = 0;    // nonce partition + per-shard dedup/fold
  uint64_t merge = 0;         // shard sketch reduce at Close
};

// Routes one round's packets across K shards and shard-reduces at close.
class ReportRouter {
 public:
  // `num_shards == 0` picks the adaptive default: one shard per hardware
  // thread (the knee of bench_service_throughput's shards -> reports/sec
  // curve sits at the core count; beyond it the merge at Close only adds
  // work).
  ReportRouter(const FrequencyOracle& fo, const FoParams& params,
               OracleId oracle, uint32_t timestamp, std::size_t num_shards);

  // Serial single-packet path: routes the packet by its wire nonce.
  IngestResult Ingest(const std::vector<uint8_t>& packet);

  // Batch path: stages the packets through the columnar arena (decoding
  // each exactly once, chunk-parallel for large batches), partitions the
  // staged rows by nonce, and ingests the K shard slices concurrently
  // across up to `num_threads` pool lanes. The assignment is deterministic
  // and order-independent, so results are identical at every thread and
  // shard count. Wire-level rejects (malformed / wrong oracle / wrong
  // timestamp) are accounted at the router and folded into Close()'s
  // stats; per-shard stats carry only row-level outcomes on this path.
  // The PayloadRef overload is the zero-copy transport hand-off
  // (RoundBuffer::TakeRound): the arena decodes the frame payloads in
  // place, straight out of the socket decoders' pooled blocks.
  void IngestBatch(const std::vector<std::vector<uint8_t>>& packets,
                   std::size_t num_threads);
  void IngestBatch(const std::vector<PayloadRef>& packets,
                   std::size_t num_threads);

  // Merges all shards into one sketch and returns it, accumulating the
  // shards' acceptance stats into `*stats` when non-null. The router is
  // closed afterwards: further Ingest calls throw std::logic_error.
  std::unique_ptr<FoSketch> Close(IngestStats* stats = nullptr);

  std::size_t num_shards() const { return shards_.size(); }
  const IngestShard& shard(std::size_t i) const { return shards_[i]; }

  // Opt into per-stage wall-clock accounting on the batch path (default
  // off). Timing never changes what is ingested — it only reads the clock
  // around existing stage boundaries.
  void EnableStageTiming() { timing_ = true; }
  const RouterStageNanos& stage_nanos() const { return stage_nanos_; }
  // Wire-level reject accounting summed over this round's batches.
  const ArenaDecodeStats& decode_stats() const { return decode_stats_; }

 private:
  // Shard index for one packet: nonce-keyed so duplicates colocate.
  std::size_t ShardOf(const uint8_t* data, std::size_t size,
                      std::size_t fallback) const;
  // Shared batch body over any packet container exposing data()/size().
  template <typename Packet>
  void IngestBatchImpl(const std::vector<Packet>& packets,
                       std::size_t num_threads);
  // Stages 2+3 over the currently staged arena_: nonce partition and the
  // per-shard dedup + fold. Called once per staged block/batch.
  void IngestStaged(std::size_t num_threads);

  std::vector<IngestShard> shards_;
  // Round configuration, kept so IngestBatch can stage arenas.
  FoParams params_;
  OracleId oracle_;
  uint32_t timestamp_;
  bool closed_ = false;
  // Batch staging state, reused across IngestBatch calls (capacity
  // persists, so steady-state batches do not allocate).
  ReportArena arena_;
  std::vector<ReportArena> decode_chunks_;
  std::vector<std::vector<uint32_t>> slices_;
  // Wire-level rejects summed over this round's batches.
  ArenaDecodeStats decode_stats_;
  // Optional per-stage wall-clock accounting (EnableStageTiming).
  bool timing_ = false;
  RouterStageNanos stage_nanos_;
};

}  // namespace ldpids::service

#endif  // LDPIDS_SERVICE_INGEST_H_
