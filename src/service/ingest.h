// Sharded wire-report ingestion — the server edge of the online serving
// layer.
//
// One FO collection round at one timestamp is ingested by a `ReportRouter`
// holding K `IngestShard`s. Each shard decodes envelopes defensively
// (typed `WireError` results, no exceptions on the hot path), validates
// them against the round's oracle/timestamp/domain, and folds accepted
// reports into its own `FoSketch`. At timestamp close the shards are
// merged (`FoSketch::MergeFrom`) into one sketch whose estimate is
// bit-identical to single-shard ingestion of the same packets — sketch
// state is additive integer counts, so the partition never shows.
//
// Thread model: one shard is single-threaded; different shards are
// independent, so `IngestBatch` fans the K shard slices across the shared
// thread pool (util/thread_pool.h). Packets are partitioned by their wire
// nonce (hash(nonce) mod K; packets too mangled to carry a nonce fall back
// to index mod K) — deterministic, and it keeps every copy of one user's
// report on the same shard, so per-round duplicate rejection is exact and
// merged results are reproducible at every shard and thread count.
#ifndef LDPIDS_SERVICE_INGEST_H_
#define LDPIDS_SERVICE_INGEST_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "fo/frequency_oracle.h"
#include "fo/wire.h"

namespace ldpids::service {

// Why a packet was (not) folded into the round's sketch.
enum class IngestResult : uint8_t {
  kAccepted = 0,
  kMalformed,        // wire-level corruption (any WireError)
  kWrongOracle,      // valid packet, but for a different oracle
  kWrongTimestamp,   // valid packet, but stale or from the future
  kDuplicate,        // this round already accepted this user nonce
  kSketchRejected,   // decoded fine, out of range for the sketch params
};

const char* IngestResultName(IngestResult result);

// Per-round acceptance accounting, kept per shard and summed at close.
struct IngestStats {
  uint64_t accepted = 0;
  uint64_t malformed = 0;
  uint64_t wrong_oracle = 0;
  uint64_t wrong_timestamp = 0;
  uint64_t duplicate = 0;
  uint64_t sketch_rejected = 0;

  uint64_t total() const {
    return accepted + malformed + wrong_oracle + wrong_timestamp +
           duplicate + sketch_rejected;
  }
  uint64_t rejected() const { return total() - accepted; }
  IngestStats& operator+=(const IngestStats& other);
  std::string ToString() const;
};

// One shard: a defensive decoder in front of a FoSketch. Single-threaded.
class IngestShard {
 public:
  // `oracle` and `timestamp` pin what this round accepts; `params` sizes
  // the sketch (domain) and fixes the per-user budget (epsilon).
  IngestShard(const FrequencyOracle& fo, const FoParams& params,
              OracleId oracle, uint32_t timestamp);

  IngestShard(IngestShard&&) = default;
  IngestShard& operator=(IngestShard&&) = delete;

  // Decodes and folds one packet; never throws on packet content.
  IngestResult Ingest(const uint8_t* data, std::size_t size);
  IngestResult Ingest(const std::vector<uint8_t>& packet) {
    return Ingest(packet.data(), packet.size());
  }

  const IngestStats& stats() const { return stats_; }
  const FoSketch& sketch() const { return *sketch_; }

  // Releases the shard's sketch for merging; the shard must not ingest
  // afterwards.
  std::unique_ptr<FoSketch> TakeSketch() { return std::move(sketch_); }

 private:
  std::unique_ptr<FoSketch> sketch_;
  OracleId oracle_;
  uint32_t timestamp_;
  std::size_t domain_;
  IngestStats stats_;
  DecodedReport scratch_;  // reused across packets; no per-packet alloc
  // Nonces accepted this round: a re-delivered packet (retry, duplicating
  // network, replayed log) must not double-count its user.
  std::unordered_set<uint64_t> seen_;
};

// Routes one round's packets across K shards and shard-reduces at close.
class ReportRouter {
 public:
  // `num_shards == 0` picks the adaptive default: one shard per hardware
  // thread (the knee of bench_service_throughput's shards -> reports/sec
  // curve sits at the core count; beyond it the merge at Close only adds
  // work).
  ReportRouter(const FrequencyOracle& fo, const FoParams& params,
               OracleId oracle, uint32_t timestamp, std::size_t num_shards);

  // Serial single-packet path: routes the packet by its wire nonce.
  IngestResult Ingest(const std::vector<uint8_t>& packet);

  // Batch path: packets are partitioned by nonce and the K shard slices
  // are ingested concurrently across up to `num_threads` pool lanes. The
  // assignment is deterministic and order-independent, so results are
  // identical at every thread and shard count.
  void IngestBatch(const std::vector<std::vector<uint8_t>>& packets,
                   std::size_t num_threads);

  // Merges all shards into one sketch and returns it, accumulating the
  // shards' acceptance stats into `*stats` when non-null. The router is
  // closed afterwards: further Ingest calls throw std::logic_error.
  std::unique_ptr<FoSketch> Close(IngestStats* stats = nullptr);

  std::size_t num_shards() const { return shards_.size(); }
  const IngestShard& shard(std::size_t i) const { return shards_[i]; }

 private:
  // Shard index for one packet: nonce-keyed so duplicates colocate.
  std::size_t ShardOf(const uint8_t* data, std::size_t size,
                      std::size_t fallback) const;

  std::vector<IngestShard> shards_;
  bool closed_ = false;
};

}  // namespace ldpids::service

#endif  // LDPIDS_SERVICE_INGEST_H_
