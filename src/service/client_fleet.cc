#include "service/client_fleet.h"

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fo/client.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ldpids::service {

ClientFleet::ClientFleet(uint64_t num_users, ValueFn values, uint64_t seed)
    : num_users_(num_users), values_(std::move(values)), seed_(seed) {
  if (num_users_ == 0) {
    throw std::invalid_argument("fleet must have at least one user");
  }
  if (!values_) {
    throw std::invalid_argument("fleet needs a value function");
  }
}

std::vector<std::vector<uint8_t>> ClientFleet::ProduceRound(
    const RoundRequest& request, std::size_t num_threads) const {
  const std::size_t cohort_size =
      request.cohort != nullptr ? request.cohort->size()
                                : static_cast<std::size_t>(num_users_);
  std::vector<std::vector<uint8_t>> packets(cohort_size);
  ParallelFor(num_threads, cohort_size, [&](std::size_t i) {
    const uint64_t user =
        request.cohort != nullptr ? (*request.cohort)[i] : i;
    // Stateless per-(user, round) stream: reproducible at any thread count.
    // The wire nonce is the user id, so the ingest edge can reject a
    // duplicated packet without un-blinding anything it did not know.
    Rng rng(HashCounter(seed_, user, request.round_index));
    packets[i] = PerturbToWire(
        request.oracle, values_(user, request.timestamp), request.epsilon,
        request.domain, static_cast<uint32_t>(request.timestamp), user, rng);
  });
  return packets;
}

RoundTransport ClientFleet::Transport(std::size_t num_threads,
                                      MangleFn mangle) const {
  return [this, num_threads, mangle](const RoundRequest& request,
                                     ReportRouter& router) {
    std::vector<std::vector<uint8_t>> packets =
        ProduceRound(request, num_threads);
    if (mangle) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < packets.size(); ++i) {
        const uint64_t user =
            request.cohort != nullptr ? (*request.cohort)[i]
                                      : static_cast<uint64_t>(i);
        if (mangle(packets[i], user, request.round_index)) {
          if (kept != i) packets[kept] = std::move(packets[i]);
          ++kept;
        }
      }
      packets.resize(kept);
    }
    router.IngestBatch(packets, num_threads);
  };
}

}  // namespace ldpids::service
