// Probability-process models for synthetic streams (paper Section 7.1.1).
//
// A binary synthetic dataset is driven by a probability sequence
// (p_1, ..., p_T): at timestamp t a fraction p_t of users hold value 1.
// The paper uses three generators:
//
//   * LNS — linear noisy series p_t = p_{t-1} + N(0, Q), p_0 = 0.05,
//     sqrt(Q) = 0.0025 (a Gaussian random walk; Q controls fluctuation);
//   * Sin — p_t = A sin(b t) + h with A = 0.05, b = 0.01, h = 0.075;
//   * Log — p_t = A / (1 + e^{-b t}) with A = 0.25, b = 0.01.
//
// All sequences are reflected into [kMinProb, kMaxProb] so the walk cannot
// leave the valid probability range on long horizons.
#ifndef LDPIDS_DATAGEN_PROBABILITY_MODEL_H_
#define LDPIDS_DATAGEN_PROBABILITY_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ldpids {

inline constexpr double kMinProb = 0.001;
inline constexpr double kMaxProb = 0.999;

// Reflects `p` into [kMinProb, kMaxProb] (mirror boundaries).
double ReflectIntoUnit(double p);

// Gaussian random walk, the paper's LNS model. `sqrt_q` is the per-step
// standard deviation (paper default 0.0025).
std::vector<double> GenerateLnsSequence(std::size_t length, double p0,
                                        double sqrt_q, uint64_t seed);

// Sine series p_t = amplitude * sin(b * t) + offset (paper's Sin model).
// Larger `b` means faster oscillation, i.e. larger fluctuation.
std::vector<double> GenerateSinSequence(std::size_t length, double amplitude,
                                        double b, double offset);

// Logistic series p_t = amplitude / (1 + e^{-b t}) (paper's Log model) —
// a smooth, nearly-monotone ramp; the "few changes" regime.
std::vector<double> GenerateLogSequence(std::size_t length, double amplitude,
                                        double b);

// Piecewise-constant series alternating between `low` and `high` every
// `segment` timestamps — the worst case for sampling-based methods (LSP)
// and the workload where adaptivity pays most.
std::vector<double> GenerateStepSequence(std::size_t length, double low,
                                         double high, std::size_t segment);

// Baseline `base` with short bursts to `peak`: each timestamp starts a
// burst of `burst_length` steps with probability `burst_rate`. This is the
// event-monitoring workload (Fig. 7's regime, where stale releases miss
// events).
std::vector<double> GenerateSpikeSequence(std::size_t length, double base,
                                          double peak,
                                          std::size_t burst_length,
                                          double burst_rate, uint64_t seed);

// Paper defaults, exposed for the bench harness.
struct LnsDefaults {
  static constexpr double kP0 = 0.05;
  static constexpr double kSqrtQ = 0.0025;
};
struct SinDefaults {
  static constexpr double kAmplitude = 0.05;
  static constexpr double kB = 0.01;
  static constexpr double kOffset = 0.075;
};
struct LogDefaults {
  static constexpr double kAmplitude = 0.25;
  static constexpr double kB = 0.01;
};

}  // namespace ldpids

#endif  // LDPIDS_DATAGEN_PROBABILITY_MODEL_H_
