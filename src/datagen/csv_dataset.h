// Loader for externally supplied stream datasets.
//
// When you have the genuine Taxi / Foursquare / Taobao data (or any other
// user-value stream), export it as a dense CSV where row u holds the T
// comma-separated integer values of user u:
//
//     3,3,2,0,...,1
//     0,1,1,1,...,4
//
// and load it with `LoadCsvDataset`. The whole matrix is held in memory
// (uint16 per cell), so this is intended for datasets up to a few hundred
// million cells.
#ifndef LDPIDS_DATAGEN_CSV_DATASET_H_
#define LDPIDS_DATAGEN_CSV_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stream/dataset.h"

namespace ldpids {

// In-memory dense dataset; also handy for crafting exact fixtures in tests.
class InMemoryDataset final : public StreamDataset {
 public:
  // `values[u]` is user u's stream; all rows must have equal length, and
  // every value must be < `domain`.
  InMemoryDataset(std::string name, std::vector<std::vector<uint16_t>> values,
                  std::size_t domain);

  std::string name() const override { return name_; }
  uint64_t num_users() const override { return values_.size(); }
  std::size_t length() const override { return length_; }
  std::size_t domain() const override { return domain_; }
  uint32_t value(uint64_t user, std::size_t t) const override;

 private:
  std::string name_;
  std::vector<std::vector<uint16_t>> values_;
  std::size_t length_;
  std::size_t domain_;
};

// Parses the CSV format described above. `domain` of 0 means "infer as
// max value + 1". Throws std::runtime_error on I/O or format errors.
std::shared_ptr<InMemoryDataset> LoadCsvDataset(const std::string& path,
                                                std::size_t domain = 0,
                                                std::string name = "csv");

}  // namespace ldpids

#endif  // LDPIDS_DATAGEN_CSV_DATASET_H_
