#include "datagen/realworld_sim.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/distributions.h"
#include "util/rng.h"

namespace ldpids {

namespace {

uint64_t ScaleCount(uint64_t value, double scale) {
  const double scaled = static_cast<double>(value) * std::min(scale, 1.0);
  return std::max<uint64_t>(1, static_cast<uint64_t>(scaled));
}

std::size_t ScaleLength(std::size_t value, double scale) {
  const double scaled = static_cast<double>(value) * std::min(scale, 1.0);
  return std::max<std::size_t>(4, static_cast<std::size_t>(scaled));
}

}  // namespace

std::shared_ptr<DistributionSequenceDataset> MakeDriftingZipfDataset(
    std::string name, uint64_t num_users, std::size_t length,
    std::size_t domain, std::size_t timestamps_per_day,
    const RealWorldSimOptions& options) {
  Rng rng(options.seed ^ Mix64(domain * 1315423911ULL + length));

  // Base log-weights from a Zipf marginal, randomly permuted so the heavy
  // values are not always the low indices.
  std::vector<double> base_logit(domain);
  {
    const std::vector<double> zipf = ZipfWeights(domain, options.zipf_exponent);
    std::vector<std::size_t> perm(domain);
    for (std::size_t k = 0; k < domain; ++k) perm[k] = k;
    for (std::size_t k = domain; k > 1; --k) {
      std::swap(perm[k - 1], perm[rng.UniformInt(k)]);
    }
    for (std::size_t k = 0; k < domain; ++k) {
      base_logit[k] = std::log(zipf[perm[k]]);
    }
  }

  // Per-value phase for the diurnal cycle.
  std::vector<double> phase(domain);
  for (double& ph : phase) ph = rng.NextDouble() * 2.0 * M_PI;

  std::vector<double> walk(domain, 0.0);        // slow random-walk drift
  std::vector<double> spike(domain, 0.0);       // decaying burst boosts
  std::vector<Histogram> distributions;
  distributions.reserve(length);

  const double two_pi = 2.0 * M_PI;
  for (std::size_t t = 0; t < length; ++t) {
    // Advance drift and decay running spikes.
    for (std::size_t k = 0; k < domain; ++k) {
      walk[k] += SampleGaussian(rng, 0.0, options.drift_stddev);
      // Keep the walk bounded so no value drifts away forever
      // (Ornstein-Uhlenbeck style pull towards 0).
      walk[k] *= 0.995;
      spike[k] *= 0.9;
    }
    // Occasionally a random value bursts (news event, traffic jam, flash
    // sale). Bursts decay geometrically over ~20 timestamps.
    if (rng.Bernoulli(options.spike_probability)) {
      spike[rng.UniformInt(domain)] += options.spike_magnitude;
    }

    Histogram pi(domain);
    double total = 0.0;
    const double day_pos =
        timestamps_per_day > 0
            ? two_pi * static_cast<double>(t % timestamps_per_day) /
                  static_cast<double>(timestamps_per_day)
            : 0.0;
    for (std::size_t k = 0; k < domain; ++k) {
      double logit = base_logit[k] + walk[k] + spike[k];
      if (timestamps_per_day > 0) {
        logit += options.daily_amplitude * std::sin(day_pos + phase[k]);
      }
      pi[k] = std::exp(logit);
      total += pi[k];
    }
    for (double& p : pi) p /= total;
    distributions.push_back(std::move(pi));
  }

  return std::make_shared<DistributionSequenceDataset>(
      std::move(name), num_users, std::move(distributions),
      options.seed * 0x9E3779B97F4A7C15ULL + 7);
}

std::shared_ptr<DistributionSequenceDataset> MakeTaxiLikeDataset(
    const RealWorldSimOptions& options) {
  RealWorldSimOptions o = options;
  o.zipf_exponent = 0.8;  // 5 regions, moderately skewed
  return MakeDriftingZipfDataset(
      "Taxi", ScaleCount(10357, options.scale),
      ScaleLength(886, options.scale), /*domain=*/5,
      /*timestamps_per_day=*/144, o);
}

std::shared_ptr<DistributionSequenceDataset> MakeFoursquareLikeDataset(
    const RealWorldSimOptions& options) {
  RealWorldSimOptions o = options;
  o.zipf_exponent = 1.2;  // country check-ins are heavily skewed
  return MakeDriftingZipfDataset(
      "Foursquare", ScaleCount(265149, options.scale),
      ScaleLength(447, options.scale), /*domain=*/77,
      /*timestamps_per_day=*/0, o);
}

std::shared_ptr<DistributionSequenceDataset> MakeTaobaoLikeDataset(
    const RealWorldSimOptions& options) {
  RealWorldSimOptions o = options;
  o.zipf_exponent = 1.1;
  return MakeDriftingZipfDataset(
      "Taobao", ScaleCount(1023154, options.scale),
      ScaleLength(432, options.scale), /*domain=*/117,
      /*timestamps_per_day=*/144, o);
}

}  // namespace ldpids
