// Simulators for the paper's three real-world datasets (Section 7.1.2).
//
// The original Taxi (T-Drive), Foursquare and Taobao datasets are
// proprietary or not redistributable, so — per the substitution rule in
// DESIGN.md §4 — we synthesize streams with the *published shape*:
//
//   Taxi        N = 10,357    T = 886   d = 5    (Beijing taxis, 5 grids)
//   Foursquare  N = 265,149   T = 447   d = 77   (check-ins, 77 countries)
//   Taobao      N = 1,023,154 T = 432   d = 117  (ad clicks, 117 categories)
//
// and the qualitative structure the mechanisms react to:
//   * skewed (Zipf-like) marginal over the domain,
//   * smooth temporal drift (logit-space Gaussian random walk) — streams are
//     strongly autocorrelated, which is what makes approximation worthwhile,
//   * daily periodicity for Taxi/Taobao (10-minute slots, 144 per day),
//   * occasional bursts (spikes) so event monitoring has positives.
//
// Mechanisms interact with a stream only through per-timestamp histograms
// and sampled user values, so matching (N, T, d, skew, smoothness,
// burstiness) preserves every behaviour the evaluation exercises. Load the
// genuine datasets through datagen/csv_dataset.h when available.
#ifndef LDPIDS_DATAGEN_REALWORLD_SIM_H_
#define LDPIDS_DATAGEN_REALWORLD_SIM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "datagen/synthetic.h"

namespace ldpids {

// Tunable knobs shared by the three simulators; defaults give the paper's
// shapes. `scale` in (0, 1] multiplies N and T for quick runs.
struct RealWorldSimOptions {
  double scale = 1.0;
  double zipf_exponent = 1.1;     // domain skew
  double drift_stddev = 0.04;     // per-step logit-space random walk
  double daily_amplitude = 0.35;  // strength of the diurnal cycle
  double spike_probability = 0.01;   // chance a timestamp starts a burst
  double spike_magnitude = 1.5;      // logit boost of the bursting value
  uint64_t seed = 42;
};

// Beijing-taxi-like location density stream: d = 5 regions.
std::shared_ptr<DistributionSequenceDataset> MakeTaxiLikeDataset(
    const RealWorldSimOptions& options = {});

// Foursquare-like check-in stream: d = 77 countries, no diurnal term
// (aggregated world-wide check-ins drift slowly).
std::shared_ptr<DistributionSequenceDataset> MakeFoursquareLikeDataset(
    const RealWorldSimOptions& options = {});

// Taobao-like ad-click stream: d = 117 categories over 3 days.
std::shared_ptr<DistributionSequenceDataset> MakeTaobaoLikeDataset(
    const RealWorldSimOptions& options = {});

// Generic builder the three factories share; exposed for tests and custom
// workloads.
std::shared_ptr<DistributionSequenceDataset> MakeDriftingZipfDataset(
    std::string name, uint64_t num_users, std::size_t length,
    std::size_t domain, std::size_t timestamps_per_day,
    const RealWorldSimOptions& options);

}  // namespace ldpids

#endif  // LDPIDS_DATAGEN_REALWORLD_SIM_H_
