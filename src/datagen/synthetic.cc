#include "datagen/synthetic.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "datagen/probability_model.h"
#include "util/rng.h"

namespace ldpids {

BinarySyntheticDataset::BinarySyntheticDataset(
    std::string name, uint64_t num_users, std::vector<double> probabilities,
    uint64_t seed)
    : name_(std::move(name)),
      num_users_(num_users),
      probabilities_(std::move(probabilities)),
      seed_(seed) {
  if (num_users_ == 0) throw std::invalid_argument("need at least one user");
  if (probabilities_.empty()) {
    throw std::invalid_argument("probability sequence must be non-empty");
  }
  for (double p : probabilities_) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument("probabilities must lie in [0, 1]");
    }
  }
}

uint32_t BinarySyntheticDataset::value(uint64_t user, std::size_t t) const {
  // Uniform [0,1) deterministic in (seed, user, t).
  const double u = static_cast<double>(HashCounter(seed_, user, t) >> 11) *
                   0x1.0p-53;
  return u < probabilities_[t] ? 1u : 0u;
}

DistributionSequenceDataset::DistributionSequenceDataset(
    std::string name, uint64_t num_users,
    std::vector<Histogram> distributions, uint64_t seed)
    : name_(std::move(name)), num_users_(num_users), seed_(seed) {
  if (num_users_ == 0) throw std::invalid_argument("need at least one user");
  if (distributions.empty()) {
    throw std::invalid_argument("need at least one timestamp");
  }
  domain_ = distributions.front().size();
  if (domain_ < 2) throw std::invalid_argument("domain must have >= 2 values");
  cdfs_.reserve(distributions.size());
  for (const Histogram& pi : distributions) {
    if (pi.size() != domain_) {
      throw std::invalid_argument("inconsistent domain across timestamps");
    }
    double total = 0.0;
    for (double p : pi) {
      if (p < 0.0) throw std::invalid_argument("negative probability");
      total += p;
    }
    if (total <= 0.0) throw std::invalid_argument("all-zero distribution");
    std::vector<double> cdf(domain_);
    double acc = 0.0;
    for (std::size_t k = 0; k < domain_; ++k) {
      acc += pi[k] / total;
      cdf[k] = acc;
    }
    cdf.back() = 1.0;  // guard against rounding
    cdfs_.push_back(std::move(cdf));
  }
}

uint32_t DistributionSequenceDataset::value(uint64_t user,
                                            std::size_t t) const {
  const double u = static_cast<double>(HashCounter(seed_, user, t) >> 11) *
                   0x1.0p-53;
  const auto& cdf = cdfs_[t];
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  return static_cast<uint32_t>(std::min<std::ptrdiff_t>(
      it - cdf.begin(), static_cast<std::ptrdiff_t>(domain_ - 1)));
}

Histogram DistributionSequenceDataset::DistributionAt(std::size_t t) const {
  const auto& cdf = cdfs_.at(t);
  Histogram pi(domain_);
  double prev = 0.0;
  for (std::size_t k = 0; k < domain_; ++k) {
    pi[k] = cdf[k] - prev;
    prev = cdf[k];
  }
  return pi;
}

std::shared_ptr<BinarySyntheticDataset> MakeLnsDataset(uint64_t num_users,
                                                       std::size_t length,
                                                       double sqrt_q,
                                                       uint64_t seed) {
  return std::make_shared<BinarySyntheticDataset>(
      "LNS", num_users,
      GenerateLnsSequence(length, LnsDefaults::kP0, sqrt_q, seed ^ 0xB0B),
      seed);
}

std::shared_ptr<BinarySyntheticDataset> MakeSinDataset(uint64_t num_users,
                                                       std::size_t length,
                                                       double b,
                                                       uint64_t seed) {
  return std::make_shared<BinarySyntheticDataset>(
      "Sin", num_users,
      GenerateSinSequence(length, SinDefaults::kAmplitude, b,
                          SinDefaults::kOffset),
      seed);
}

std::shared_ptr<BinarySyntheticDataset> MakeLogDataset(uint64_t num_users,
                                                       std::size_t length,
                                                       uint64_t seed) {
  return std::make_shared<BinarySyntheticDataset>(
      "Log", num_users,
      GenerateLogSequence(length, LogDefaults::kAmplitude, LogDefaults::kB),
      seed);
}

}  // namespace ldpids
