// Synthetic stream datasets (paper Section 7.1.1).
//
// `BinarySyntheticDataset` realizes a probability sequence (p_1, ..., p_T)
// as a binary stream over N users: value(u, t) ~ Bernoulli(p_t),
// independently per user, materialized lazily via counter-based hashing
// (value(u, t) is a pure function of (seed, u, t)). For large N the realized
// fraction of ones concentrates on p_t — statistically equivalent to the
// paper's "choose a p_t portion of users" construction.
//
// `DistributionSequenceDataset` generalizes this to arbitrary categorical
// distributions per timestamp: value(u, t) is drawn from distribution pi_t
// by inverse-CDF over the hash. The real-world-like simulators in
// realworld_sim.h are built on it.
#ifndef LDPIDS_DATAGEN_SYNTHETIC_H_
#define LDPIDS_DATAGEN_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stream/dataset.h"
#include "util/histogram.h"

namespace ldpids {

// Binary stream (d = 2): value 1 with probability p_t, else 0.
class BinarySyntheticDataset final : public StreamDataset {
 public:
  BinarySyntheticDataset(std::string name, uint64_t num_users,
                         std::vector<double> probabilities, uint64_t seed);

  std::string name() const override { return name_; }
  uint64_t num_users() const override { return num_users_; }
  std::size_t length() const override { return probabilities_.size(); }
  std::size_t domain() const override { return 2; }
  uint32_t value(uint64_t user, std::size_t t) const override;

  const std::vector<double>& probabilities() const { return probabilities_; }

 private:
  std::string name_;
  uint64_t num_users_;
  std::vector<double> probabilities_;
  uint64_t seed_;
};

// Categorical stream: at timestamp t users draw i.i.d. from distribution
// pi_t (a d-entry probability vector). CDFs are precomputed per timestamp;
// value lookup is a hash plus a binary search.
class DistributionSequenceDataset final : public StreamDataset {
 public:
  // `distributions` is a T x d matrix of probability vectors; each row must
  // be non-negative (rows are normalized internally).
  DistributionSequenceDataset(std::string name, uint64_t num_users,
                              std::vector<Histogram> distributions,
                              uint64_t seed);

  std::string name() const override { return name_; }
  uint64_t num_users() const override { return num_users_; }
  std::size_t length() const override { return cdfs_.size(); }
  std::size_t domain() const override { return domain_; }
  uint32_t value(uint64_t user, std::size_t t) const override;

  // The (normalized) generating distribution at timestamp t.
  Histogram DistributionAt(std::size_t t) const;

 private:
  std::string name_;
  uint64_t num_users_;
  std::size_t domain_;
  std::vector<std::vector<double>> cdfs_;  // per-t inclusive-prefix CDF
  uint64_t seed_;
};

// Convenience factories matching the paper's default synthetic datasets
// (N = 200,000 users, T = 800 timestamps unless overridden).
std::shared_ptr<BinarySyntheticDataset> MakeLnsDataset(
    uint64_t num_users = 200000, std::size_t length = 800,
    double sqrt_q = 0.0025, uint64_t seed = 1);
std::shared_ptr<BinarySyntheticDataset> MakeSinDataset(
    uint64_t num_users = 200000, std::size_t length = 800, double b = 0.01,
    uint64_t seed = 2);
std::shared_ptr<BinarySyntheticDataset> MakeLogDataset(
    uint64_t num_users = 200000, std::size_t length = 800, uint64_t seed = 3);

}  // namespace ldpids

#endif  // LDPIDS_DATAGEN_SYNTHETIC_H_
