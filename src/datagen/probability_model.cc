#include "datagen/probability_model.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/distributions.h"
#include "util/rng.h"

namespace ldpids {

double ReflectIntoUnit(double p) {
  // Mirror at both boundaries until inside; at most a few iterations for any
  // realistic input.
  while (p < kMinProb || p > kMaxProb) {
    if (p < kMinProb) p = 2.0 * kMinProb - p;
    if (p > kMaxProb) p = 2.0 * kMaxProb - p;
  }
  return p;
}

std::vector<double> GenerateLnsSequence(std::size_t length, double p0,
                                        double sqrt_q, uint64_t seed) {
  if (sqrt_q < 0.0) throw std::invalid_argument("sqrt_q must be >= 0");
  Rng rng(seed);
  std::vector<double> seq(length);
  double p = ReflectIntoUnit(p0);
  for (std::size_t t = 0; t < length; ++t) {
    p = ReflectIntoUnit(p + SampleGaussian(rng, 0.0, sqrt_q));
    seq[t] = p;
  }
  return seq;
}

std::vector<double> GenerateSinSequence(std::size_t length, double amplitude,
                                        double b, double offset) {
  std::vector<double> seq(length);
  for (std::size_t t = 0; t < length; ++t) {
    seq[t] = ReflectIntoUnit(
        amplitude * std::sin(b * static_cast<double>(t)) + offset);
  }
  return seq;
}

std::vector<double> GenerateLogSequence(std::size_t length, double amplitude,
                                        double b) {
  std::vector<double> seq(length);
  for (std::size_t t = 0; t < length; ++t) {
    seq[t] = ReflectIntoUnit(amplitude /
                             (1.0 + std::exp(-b * static_cast<double>(t))));
  }
  return seq;
}

std::vector<double> GenerateStepSequence(std::size_t length, double low,
                                         double high, std::size_t segment) {
  if (segment == 0) throw std::invalid_argument("segment must be >= 1");
  std::vector<double> seq(length);
  for (std::size_t t = 0; t < length; ++t) {
    seq[t] = ReflectIntoUnit((t / segment) % 2 == 0 ? low : high);
  }
  return seq;
}

std::vector<double> GenerateSpikeSequence(std::size_t length, double base,
                                          double peak,
                                          std::size_t burst_length,
                                          double burst_rate, uint64_t seed) {
  if (burst_length == 0) {
    throw std::invalid_argument("burst length must be >= 1");
  }
  Rng rng(seed);
  std::vector<double> seq(length, ReflectIntoUnit(base));
  std::size_t remaining_burst = 0;
  for (std::size_t t = 0; t < length; ++t) {
    if (remaining_burst == 0 && rng.Bernoulli(burst_rate)) {
      remaining_burst = burst_length;
    }
    if (remaining_burst > 0) {
      seq[t] = ReflectIntoUnit(peak);
      --remaining_burst;
    }
  }
  return seq;
}

}  // namespace ldpids
