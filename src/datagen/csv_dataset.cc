#include "datagen/csv_dataset.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ldpids {

InMemoryDataset::InMemoryDataset(std::string name,
                                 std::vector<std::vector<uint16_t>> values,
                                 std::size_t domain)
    : name_(std::move(name)), values_(std::move(values)), domain_(domain) {
  if (values_.empty()) throw std::invalid_argument("dataset has no users");
  length_ = values_.front().size();
  if (length_ == 0) throw std::invalid_argument("dataset has no timestamps");
  if (domain_ < 2) throw std::invalid_argument("domain must have >= 2 values");
  for (const auto& row : values_) {
    if (row.size() != length_) {
      throw std::invalid_argument("ragged dataset rows");
    }
    for (uint16_t v : row) {
      if (v >= domain_) throw std::invalid_argument("value outside domain");
    }
  }
}

uint32_t InMemoryDataset::value(uint64_t user, std::size_t t) const {
  return values_[user][t];
}

std::shared_ptr<InMemoryDataset> LoadCsvDataset(const std::string& path,
                                                std::size_t domain,
                                                std::string name) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open dataset file: " + path);
  std::vector<std::vector<uint16_t>> values;
  std::string line;
  uint16_t max_value = 0;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<uint16_t> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        const long v = std::stol(cell);
        if (v < 0 || v > 65535) throw std::out_of_range("range");
        row.push_back(static_cast<uint16_t>(v));
        max_value = std::max(max_value, row.back());
      } catch (const std::exception&) {
        std::ostringstream msg;
        msg << path << ":" << line_no << ": bad cell '" << cell << "'";
        throw std::runtime_error(msg.str());
      }
    }
    values.push_back(std::move(row));
  }
  if (domain == 0) domain = static_cast<std::size_t>(max_value) + 1;
  return std::make_shared<InMemoryDataset>(std::move(name), std::move(values),
                                           std::max<std::size_t>(domain, 2));
}

}  // namespace ldpids
