#include "util/simd/avx512.h"

namespace ldpids::simd {

bool Avx512Available() {
#if defined(LDPIDS_AVX512_COMPILED) && defined(__x86_64__)
  // The kernels use 64-bit lane compares and _mm512_mullo_epi64 (DQ), and
  // VL keeps the compiler free to narrow; require all three.
  static const bool available = __builtin_cpu_supports("avx512f") &&
                                __builtin_cpu_supports("avx512dq") &&
                                __builtin_cpu_supports("avx512vl");
  return available;
#else
  return false;
#endif
}

}  // namespace ldpids::simd
