// Mix64 (the SplitMix64 finalizer, util/rng.cc) replicated across the four
// SIMD lanes of util/simd/simd.h. Shared by the frequency-oracle kernels
// (src/fo/fo_kernels.cc, vectorized HashCounter) and the wire checksum
// (src/fo/wire.cc, lane mixing): the sequence must stay the exact scalar
// finalizer — any drift breaks protocol compatibility with clients hashing
// through the scalar Mix64, and fo_kernel_test / wire_fuzz_test pin it.
#ifndef LDPIDS_UTIL_SIMD_MIX64_H_
#define LDPIDS_UTIL_SIMD_MIX64_H_

#include <cstdint>

#include "util/simd/simd.h"

namespace ldpids::simd {

// SplitMix64's golden-gamma increment, applied by Mix64 before finalizing.
inline constexpr uint64_t kMix64Golden = 0x9E3779B97F4A7C15ULL;

inline U64x Mix64V(U64x x) {
  U64x z = AddU64(x, BroadcastU64(kMix64Golden));
  z = MulLoU64(XorU64(z, ShrU64(z, 30)),
               BroadcastU64(0xBF58476D1CE4E5B9ULL));
  z = MulLoU64(XorU64(z, ShrU64(z, 27)),
               BroadcastU64(0x94D049BB133111EBULL));
  return XorU64(z, ShrU64(z, 31));
}

}  // namespace ldpids::simd

#endif  // LDPIDS_UTIL_SIMD_MIX64_H_
