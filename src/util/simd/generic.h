// Generic scalar backend for the SIMD abstraction (see simd.h).
//
// Four lanes held in plain arrays, every op a four-iteration loop. This is
// the portable fallback (non-x86, pre-AVX2 x86) and the reference the AVX2
// backend is pinned against in tests/simd_test.cc; it is also what a
// -DLDPIDS_FORCE_SCALAR=ON build compiles everywhere, keeping these bodies
// exercised in CI. The fixed 4-lane shape gives autovectorizers on other
// ISAs (NEON, SVE, RVV) a clean unroll to chew on.
#ifndef LDPIDS_UTIL_SIMD_GENERIC_H_
#define LDPIDS_UTIL_SIMD_GENERIC_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace ldpids::simd {

inline constexpr std::size_t kLanes = 4;
inline constexpr const char* kBackendName = "generic";

struct U64x {
  uint64_t lane[kLanes];
};

struct F64x {
  double lane[kLanes];
};

// ---- u64 lanes ----------------------------------------------------------

inline U64x LoadU64(const uint64_t* p) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = p[i];
  return r;
}

inline void StoreU64(uint64_t* p, U64x v) {
  for (std::size_t i = 0; i < kLanes; ++i) p[i] = v.lane[i];
}

inline U64x BroadcastU64(uint64_t x) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = x;
  return r;
}

inline U64x ZeroU64() { return BroadcastU64(0); }

inline U64x AddU64(U64x a, U64x b) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] + b.lane[i];
  return r;
}

inline U64x SubU64(U64x a, U64x b) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] - b.lane[i];
  return r;
}

inline U64x XorU64(U64x a, U64x b) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] ^ b.lane[i];
  return r;
}

inline U64x AndU64(U64x a, U64x b) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] & b.lane[i];
  return r;
}

inline U64x OrU64(U64x a, U64x b) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] | b.lane[i];
  return r;
}

// Uniform shifts; `k` must be < 64.
inline U64x ShrU64(U64x v, unsigned k) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = v.lane[i] >> k;
  return r;
}

inline U64x ShlU64(U64x v, unsigned k) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = v.lane[i] << k;
  return r;
}

// Per-lane variable right shift; counts >= 64 yield 0 (matches vpsrlvq).
inline U64x ShrVarU64(U64x v, U64x counts) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i)
    r.lane[i] = counts.lane[i] < 64 ? v.lane[i] >> counts.lane[i] : 0;
  return r;
}

// Low 64 bits of the per-lane product (wrapping).
inline U64x MulLoU64(U64x a, U64x b) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] * b.lane[i];
  return r;
}

// High 64 bits of the per-lane full 128-bit product.
inline U64x MulHiU64(U64x a, U64x b) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.lane[i] = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(a.lane[i]) * b.lane[i]) >> 64);
  }
  return r;
}

// All-ones lane where equal, zero lane where not.
inline U64x CmpEqU64(U64x a, U64x b) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i)
    r.lane[i] = a.lane[i] == b.lane[i] ? ~uint64_t{0} : 0;
  return r;
}

// Lane-wise mask ? a : b. Mask lanes must be all-ones or all-zero
// (as produced by CmpEqU64).
inline U64x SelectU64(U64x mask, U64x a, U64x b) {
  U64x r;
  for (std::size_t i = 0; i < kLanes; ++i)
    r.lane[i] = (a.lane[i] & mask.lane[i]) | (b.lane[i] & ~mask.lane[i]);
  return r;
}

// Fixed combination order so every backend reduces to the same value.
inline uint64_t ReduceAddU64(U64x v) {
  return (v.lane[0] + v.lane[1]) + (v.lane[2] + v.lane[3]);
}

inline uint64_t GetU64(U64x v, std::size_t i) { return v.lane[i]; }

// ---- f64 lanes ----------------------------------------------------------

inline F64x LoadF64(const double* p) {
  F64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = p[i];
  return r;
}

inline void StoreF64(double* p, F64x v) {
  for (std::size_t i = 0; i < kLanes; ++i) p[i] = v.lane[i];
}

inline F64x BroadcastF64(double x) {
  F64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = x;
  return r;
}

inline F64x AddF64(F64x a, F64x b) {
  F64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] + b.lane[i];
  return r;
}

inline F64x SubF64(F64x a, F64x b) {
  F64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] - b.lane[i];
  return r;
}

inline F64x MulF64(F64x a, F64x b) {
  F64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] * b.lane[i];
  return r;
}

inline F64x DivF64(F64x a, F64x b) {
  F64x r;
  for (std::size_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] / b.lane[i];
  return r;
}

// Single-rounding fused multiply-add per lane (a * b + c).
inline F64x FmaF64(F64x a, F64x b, F64x c) {
  F64x r;
  for (std::size_t i = 0; i < kLanes; ++i)
    r.lane[i] = std::fma(a.lane[i], b.lane[i], c.lane[i]);
  return r;
}

// Exact (correctly rounded) per-lane u64 -> f64 conversion; both backends
// route through scalar converts, so this is identical everywhere.
inline F64x U64ToF64(U64x v) {
  F64x r;
  for (std::size_t i = 0; i < kLanes; ++i)
    r.lane[i] = static_cast<double>(v.lane[i]);
  return r;
}

// Fixed combination order so every backend reduces to the same value.
inline double ReduceAddF64(F64x v) {
  return (v.lane[0] + v.lane[1]) + (v.lane[2] + v.lane[3]);
}

inline double GetF64(F64x v, std::size_t i) { return v.lane[i]; }

}  // namespace ldpids::simd

#endif  // LDPIDS_UTIL_SIMD_GENERIC_H_
