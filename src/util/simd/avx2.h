// AVX2 backend for the SIMD abstraction (see simd.h).
//
// Four 64-bit lanes on __m256i / __m256d. Only selected when the TU is
// compiled with AVX2 enabled (__AVX2__), which the build gates on compiler
// support for -mavx2 on x86-64 (CMake option LDPIDS_AVX2). Lane semantics
// are pinned bit-identical to generic.h in tests/simd_test.cc; the notes
// on each op call out the non-obvious equivalences.
#ifndef LDPIDS_UTIL_SIMD_AVX2_H_
#define LDPIDS_UTIL_SIMD_AVX2_H_

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace ldpids::simd {

inline constexpr std::size_t kLanes = 4;
inline constexpr const char* kBackendName = "avx2";

struct U64x {
  __m256i v;
};

struct F64x {
  __m256d v;
};

// ---- u64 lanes ----------------------------------------------------------

inline U64x LoadU64(const uint64_t* p) {
  return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
}

inline void StoreU64(uint64_t* p, U64x v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v.v);
}

inline U64x BroadcastU64(uint64_t x) {
  return {_mm256_set1_epi64x(static_cast<long long>(x))};
}

inline U64x ZeroU64() { return {_mm256_setzero_si256()}; }

inline U64x AddU64(U64x a, U64x b) { return {_mm256_add_epi64(a.v, b.v)}; }
inline U64x SubU64(U64x a, U64x b) { return {_mm256_sub_epi64(a.v, b.v)}; }
inline U64x XorU64(U64x a, U64x b) { return {_mm256_xor_si256(a.v, b.v)}; }
inline U64x AndU64(U64x a, U64x b) { return {_mm256_and_si256(a.v, b.v)}; }
inline U64x OrU64(U64x a, U64x b) { return {_mm256_or_si256(a.v, b.v)}; }

// Uniform shifts; `k` must be < 64. The count goes through an xmm register
// (_mm256_srl_epi64) so it need not be a compile-time immediate.
inline U64x ShrU64(U64x v, unsigned k) {
  return {_mm256_srl_epi64(v.v, _mm_cvtsi32_si128(static_cast<int>(k)))};
}

inline U64x ShlU64(U64x v, unsigned k) {
  return {_mm256_sll_epi64(v.v, _mm_cvtsi32_si128(static_cast<int>(k)))};
}

// Per-lane variable right shift; vpsrlvq yields 0 for counts >= 64, which
// the generic backend mirrors.
inline U64x ShrVarU64(U64x v, U64x counts) {
  return {_mm256_srlv_epi64(v.v, counts.v)};
}

// Low 64 bits of the per-lane product (wrapping). AVX2 has no 64x64 low
// multiply, so compose it from 32x32->64 partial products:
//   a*b mod 2^64 = lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).
inline U64x MulLoU64(U64x a, U64x b) {
  __m256i lo_lo = _mm256_mul_epu32(a.v, b.v);
  __m256i a_hi = _mm256_srli_epi64(a.v, 32);
  __m256i b_hi = _mm256_srli_epi64(b.v, 32);
  __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b.v),
                                   _mm256_mul_epu32(a.v, b_hi));
  return {_mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32))};
}

// High 64 bits of the per-lane full 128-bit product, by schoolbook
// composition of 32x32->64 partials. With a = ah*2^32 + al, b = bh*2^32 + bl:
//   hi(a*b) = ah*bh + carry(al*bl, cross terms).
// The partial sums below cannot overflow 64 bits: each term is at most
// (2^32-1)^2 and the carries are at most 2^32-1.
inline U64x MulHiU64(U64x a, U64x b) {
  __m256i a_hi = _mm256_srli_epi64(a.v, 32);
  __m256i b_hi = _mm256_srli_epi64(b.v, 32);
  __m256i lo_lo = _mm256_mul_epu32(a.v, b.v);
  __m256i hi_lo = _mm256_mul_epu32(a_hi, b.v);
  __m256i lo_hi = _mm256_mul_epu32(a.v, b_hi);
  __m256i hi_hi = _mm256_mul_epu32(a_hi, b_hi);
  __m256i low32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  __m256i t = _mm256_add_epi64(hi_lo, _mm256_srli_epi64(lo_lo, 32));
  __m256i u = _mm256_add_epi64(lo_hi, _mm256_and_si256(t, low32));
  return {_mm256_add_epi64(_mm256_add_epi64(hi_hi, _mm256_srli_epi64(t, 32)),
                           _mm256_srli_epi64(u, 32))};
}

inline U64x CmpEqU64(U64x a, U64x b) {
  return {_mm256_cmpeq_epi64(a.v, b.v)};
}

// Lane-wise mask ? a : b. blendv selects per byte, which equals the lane
// select because mask lanes are all-ones or all-zero.
inline U64x SelectU64(U64x mask, U64x a, U64x b) {
  return {_mm256_blendv_epi8(b.v, a.v, mask.v)};
}

inline uint64_t GetU64(U64x v, std::size_t i) {
  alignas(32) uint64_t tmp[kLanes];
  _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v.v);
  return tmp[i];
}

// Fixed combination order so every backend reduces to the same value.
inline uint64_t ReduceAddU64(U64x v) {
  alignas(32) uint64_t tmp[kLanes];
  _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v.v);
  return (tmp[0] + tmp[1]) + (tmp[2] + tmp[3]);
}

// ---- f64 lanes ----------------------------------------------------------

inline F64x LoadF64(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void StoreF64(double* p, F64x v) { _mm256_storeu_pd(p, v.v); }
inline F64x BroadcastF64(double x) { return {_mm256_set1_pd(x)}; }

inline F64x AddF64(F64x a, F64x b) { return {_mm256_add_pd(a.v, b.v)}; }
inline F64x SubF64(F64x a, F64x b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline F64x MulF64(F64x a, F64x b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline F64x DivF64(F64x a, F64x b) { return {_mm256_div_pd(a.v, b.v)}; }

// Single-rounding fused multiply-add per lane (a * b + c). vfmadd when the
// TU has FMA enabled, else scalar std::fma — same rounding either way.
inline F64x FmaF64(F64x a, F64x b, F64x c) {
#if defined(__FMA__)
  return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
  alignas(32) double ta[kLanes], tb[kLanes], tc[kLanes];
  _mm256_store_pd(ta, a.v);
  _mm256_store_pd(tb, b.v);
  _mm256_store_pd(tc, c.v);
  for (std::size_t i = 0; i < kLanes; ++i) ta[i] = std::fma(ta[i], tb[i], tc[i]);
  return {_mm256_load_pd(ta)};
#endif
}

// Exact (correctly rounded) per-lane u64 -> f64 conversion. AVX2 has no
// packed u64 -> f64 instruction (that is AVX-512DQ), so route through
// scalar converts — identical to the generic backend by construction.
inline F64x U64ToF64(U64x v) {
  alignas(32) uint64_t tmp[kLanes];
  _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v.v);
  return {_mm256_set_pd(
      static_cast<double>(tmp[3]), static_cast<double>(tmp[2]),
      static_cast<double>(tmp[1]), static_cast<double>(tmp[0]))};
}

// Fixed combination order so every backend reduces to the same value.
inline double ReduceAddF64(F64x v) {
  alignas(32) double tmp[kLanes];
  _mm256_store_pd(tmp, v.v);
  return (tmp[0] + tmp[1]) + (tmp[2] + tmp[3]);
}

inline double GetF64(F64x v, std::size_t i) {
  alignas(32) double tmp[kLanes];
  _mm256_store_pd(tmp, v.v);
  return tmp[i];
}

}  // namespace ldpids::simd

#endif  // LDPIDS_UTIL_SIMD_AVX2_H_
