// Portable SIMD abstraction for the frequency-oracle hot kernels.
//
// One small vector-type-and-ops layer in the style of arbor's simd
// headers: kernel bodies (src/fo/fo_kernels.cc) are written once against
// the ops declared here, and a backend supplies the lanes —
//
//   * avx2.h    — 4 x 64-bit integer / 4 x double lanes on __m256i/__m256d
//                 (selected when the translation unit is compiled with
//                 AVX2 enabled, i.e. __AVX2__ is defined);
//   * generic.h — the same 4 lanes as plain arrays with scalar loops
//                 (every other target, and the -DLDPIDS_FORCE_SCALAR=ON
//                 build that keeps the scalar bodies exercised in CI).
//
// The contract that makes the backends interchangeable is *bit-identical
// lane semantics* (pinned in tests/simd_test.cc):
//
//   * integer ops are exact, so any backend trivially agrees;
//   * every f64 op is a single correctly-rounded IEEE-754 operation per
//     lane (add/sub/mul/div map to one vector instruction; Fma is a
//     single-rounding fused multiply-add on both backends — std::fma in
//     generic, vfmadd when the ISA has it);
//   * horizontal reductions fix their combination order explicitly
//     ((lane0 + lane1) + (lane2 + lane3)), so a reduce is the same value
//     everywhere, not "whatever the ISA's hadd does".
//
// Kernels that must match a *scalar* reference loop bit-for-bit (the
// estimate kernels are pinned against the pre-SIMD per-element loops)
// additionally avoid Fma: a fused a*b+c rounds once where mul-then-add
// rounds twice, so such kernels spell Mul/Add/Sub/Div explicitly.
//
// Width is fixed at 4 lanes (kLanes): wide enough for AVX2, small enough
// that the generic backend's unrolled loops still vectorize reasonably on
// NEON/SVE autovectorizers. All loads/stores are unaligned.
#ifndef LDPIDS_UTIL_SIMD_SIMD_H_
#define LDPIDS_UTIL_SIMD_SIMD_H_

#if !defined(LDPIDS_SIMD_FORCE_GENERIC) && defined(__AVX2__)
#include "util/simd/avx2.h"
#else
#include "util/simd/generic.h"
#endif

#endif  // LDPIDS_UTIL_SIMD_SIMD_H_
