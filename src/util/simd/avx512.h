// Optional AVX-512 widening of the SIMD layer: 8-lane u64 helpers used by
// the hottest batched kernels (wire-checksum verification, OLH support
// scan). Unlike util/simd/simd.h this is NOT a portable backend — the
// helpers exist only in translation units compiled with the AVX-512 flags
// (CMake marks those sources and defines LDPIDS_AVX512_COMPILED), and every
// caller dispatches through a kernel that falls back to the 4-lane path, so
// builds without the ISA and the forced-scalar backend are unaffected.
//
// Bit-identity: the 8-lane Mix64V8 below is the exact SplitMix64 finalizer
// (util/rng.cc Mix64, replicated 4-wide in util/simd/mix64.h) — the AVX-512
// kernels reorder independent per-packet/per-report work only, never the
// arithmetic inside one hash, so every result is byte-identical to the
// portable backends (pinned by wire_fuzz_test and fo_kernel_test).
#ifndef LDPIDS_UTIL_SIMD_AVX512_H_
#define LDPIDS_UTIL_SIMD_AVX512_H_

#include <cstdint>

namespace ldpids::simd {

// True when the build compiled the AVX-512 translation units AND the
// running CPU supports AVX-512 F/DQ/VL. Cheap (cached) — kernels call it
// on every dispatch.
bool Avx512Available();

}  // namespace ldpids::simd

#if defined(LDPIDS_AVX512_COMPILED) && defined(__AVX512F__) && \
    defined(__AVX512DQ__)

#include <immintrin.h>

namespace ldpids::simd {

inline __m512i Broadcast8(uint64_t v) {
  return _mm512_set1_epi64(static_cast<long long>(v));
}

// The SplitMix64 finalizer across 8 lanes; must stay in lockstep with
// Mix64 (util/rng.cc) and Mix64V (util/simd/mix64.h).
inline __m512i Mix64V8(__m512i x) {
  __m512i z = _mm512_add_epi64(x, Broadcast8(0x9E3779B97F4A7C15ULL));
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 30)),
                         Broadcast8(0xBF58476D1CE4E5B9ULL));
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 27)),
                         Broadcast8(0x94D049BB133111EBULL));
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

}  // namespace ldpids::simd

#endif  // LDPIDS_AVX512_COMPILED && __AVX512F__ && __AVX512DQ__

#endif  // LDPIDS_UTIL_SIMD_AVX512_H_
