#include "util/table_printer.h"

#include <algorithm>
#include <cstddef>
#include <iomanip>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace ldpids {

std::string FormatDouble(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ldpids
