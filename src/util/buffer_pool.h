// Pooled byte buffers and shared-ownership payload spans — the allocation
// discipline of the zero-copy data plane.
//
// The decode-bound ingest path used to copy every report three times: the
// socket reader copied bytes into the FrameDecoder's buffer, the decoder
// copied each frame's payload into a fresh std::vector, and the RoundBuffer
// moved those vectors around until the arena decoded them. A `PayloadRef`
// replaces the per-frame vector: it is a non-owning (data, size) span plus
// a shared_ptr keeping the backing storage alive, so a decoder can hand a
// frame's payload downstream *in place* — the bytes stay where the socket
// wrote them, inside a pooled block, until the last reference drops.
//
// A `BufferPool` recycles those blocks. It hands out shared_ptr<vector>
// blocks and reclaims one the moment no PayloadRef (or decoder) holds it —
// detected by use_count() == 1 on the pool's own reference, so there is no
// custom deleter and no back-pointer from payloads to the pool. Steady
// state for a socket connection is a small ring of blocks reused round
// after round: zero allocations per packet, zero per round.
//
// PayloadRef is deliberately copyable (a shared_ptr bump): transport tees,
// recorders and round buffers pass frames around by value exactly as they
// did when the payload was a vector.
#ifndef LDPIDS_UTIL_BUFFER_POOL_H_
#define LDPIDS_UTIL_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <vector>

namespace ldpids {

// A byte span with shared ownership of its backing storage. Default
// constructed it is an empty span owning nothing.
class PayloadRef {
 public:
  PayloadRef() = default;

  // Owning: adopts the vector's bytes. Implicit so the vector-based call
  // sites (encoders, tests, fleets) keep reading naturally.
  PayloadRef(std::vector<uint8_t> bytes) {  // NOLINT(google-explicit-*)
    auto owned = std::make_shared<std::vector<uint8_t>>(std::move(bytes));
    data_ = owned->data();
    size_ = owned->size();
    owner_ = std::move(owned);
  }
  PayloadRef(std::initializer_list<uint8_t> bytes)
      : PayloadRef(std::vector<uint8_t>(bytes)) {}

  // Viewing: [data, data + size) must stay valid while `owner` is held —
  // the zero-copy hand-off from a decoder's pooled block.
  PayloadRef(std::shared_ptr<const void> owner, const uint8_t* data,
             std::size_t size)
      : owner_(std::move(owner)), data_(data), size_(size) {}

  const uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }

  std::vector<uint8_t> ToVector() const { return {data_, data_ + size_}; }

 private:
  std::shared_ptr<const void> owner_;
  const uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

// Byte-wise comparison (identity of the bytes, not of the storage).
bool operator==(const PayloadRef& a, const PayloadRef& b);
bool operator==(const PayloadRef& a, const std::vector<uint8_t>& b);
// Batch-to-batch comparison for tests that check a drained round against
// the packets that were sent (found via ADL on PayloadRef).
bool operator==(const std::vector<PayloadRef>& a,
                const std::vector<std::vector<uint8_t>>& b);

// A thread-safe recycler of byte blocks. Get() prefers a pooled block no
// one references anymore; otherwise it allocates. Blocks are returned
// implicitly: dropping the last outside shared_ptr (typically the last
// PayloadRef aliasing the block) makes it reusable on the next Get().
class BufferPool {
 public:
  // Default block size: comfortably many ~50 B report frames per block,
  // small enough that a handful of in-flight blocks is cheap.
  static constexpr std::size_t kDefaultBlockBytes = 256 * 1024;
  // Free blocks beyond this are released instead of pooled, bounding the
  // pool after a burst.
  static constexpr std::size_t kMaxPooledBlocks = 16;

  explicit BufferPool(std::size_t default_block_bytes = kDefaultBlockBytes)
      : default_block_bytes_(default_block_bytes) {}

  // A block with size() >= max(min_bytes, default); contents unspecified.
  std::shared_ptr<std::vector<uint8_t>> Get(std::size_t min_bytes);

  // Blocks ever allocated (not recycled) — the pool's effectiveness gauge.
  uint64_t allocated_blocks() const;
  // Get() calls served from the pool.
  uint64_t reused_blocks() const;

 private:
  const std::size_t default_block_bytes_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<std::vector<uint8_t>>> blocks_;
  uint64_t allocated_ = 0;
  uint64_t reused_ = 0;
};

}  // namespace ldpids

#endif  // LDPIDS_UTIL_BUFFER_POOL_H_
