#include "util/rng.h"

#include <cstdint>

namespace ldpids {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(state);
}

uint64_t HashCounter(uint64_t seed, uint64_t a, uint64_t b) {
  // Feed the three words through the SplitMix64 finalizer sequentially.
  // Multiplying by distinct odd constants before mixing breaks the symmetry
  // between (a, b) and (b, a).
  uint64_t x = seed;
  x = Mix64(x ^ (a * 0x9E3779B97F4A7C15ULL + 0x165667B19E3779F9ULL));
  x = Mix64(x ^ (b * 0xC2B2AE3D27D4EB4FULL + 0x27D4EB2F165667C5ULL));
  return x;
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // Top 53 bits scaled by 2^-53 gives a uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  // Lemire's nearly-divisionless rejection method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0x6A09E667F3BCC909ULL); }

}  // namespace ldpids
