#include "util/sampling.h"

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

namespace ldpids {

std::vector<uint32_t> SampleFromPool(Rng& rng, std::vector<uint32_t>* pool,
                                     std::size_t count) {
  std::vector<uint32_t> picked;
  if (count >= pool->size()) {
    picked = std::move(*pool);
    pool->clear();
    return picked;
  }
  picked.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = static_cast<std::size_t>(
        rng.UniformInt(static_cast<uint64_t>(pool->size())));
    picked.push_back((*pool)[j]);
    (*pool)[j] = pool->back();
    pool->pop_back();
  }
  return picked;
}

std::vector<uint32_t> SampleSubset(Rng& rng, std::size_t n,
                                   std::size_t count) {
  std::vector<uint32_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0u);
  return SampleFromPool(rng, &pool, count);
}

}  // namespace ldpids
