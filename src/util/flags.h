// Tiny flag/environment parser for the bench and example binaries.
//
// Supports `--name=value` and `--name value` command-line forms, falling
// back to an environment variable (upper-cased, prefixed LDPIDS_) and then
// to the compiled default. Benches use this for `--scale` so the full
// paper-sized sweeps can be trimmed on small machines:
//
//   ./bench_fig4_utility_vs_eps --scale=0.1
//   LDPIDS_SCALE=0.1 ./bench_fig4_utility_vs_eps
#ifndef LDPIDS_UTIL_FLAGS_H_
#define LDPIDS_UTIL_FLAGS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ldpids {

class Flags {
 public:
  // Parses argv; unknown arguments are ignored (and kept retrievable via
  // `positional()`), so binaries remain tolerant of harness-injected args.
  Flags(int argc, char** argv);

  // Look-up helpers; each checks, in order: command line, environment
  // variable LDPIDS_<NAME>, then `def`.
  std::string GetString(const std::string& name, const std::string& def) const;
  double GetDouble(const std::string& name, double def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  bool GetBool(const std::string& name, bool def) const;

  const std::string& positional(std::size_t i) const;
  std::size_t num_positional() const { return positional_.size(); }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

// Global experiment scale in (0, 1]: multiplies population sizes and stream
// lengths in the bench harness. Reads flag --scale / env LDPIDS_SCALE.
double BenchScale(const Flags& flags);

// Worker-thread count for the parallel evaluation engine. Reads flag
// --threads / env LDPIDS_THREADS, falling back to `def`. Unlike the lenient
// --scale clamp, malformed or non-positive values (--threads=0, --threads=-2,
// --threads=many) throw std::invalid_argument with the standard flag-error
// message: a typo silently degrading a benchmark to serial would corrupt the
// recorded perf trajectory.
std::size_t ThreadCountFlag(const Flags& flags, std::size_t def);

}  // namespace ldpids

#endif  // LDPIDS_UTIL_FLAGS_H_
