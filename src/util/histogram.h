// Dense frequency histograms over a categorical domain Omega of size d.
//
// Throughout the library a "histogram" is a vector of per-value frequencies
// (fractions of the population), matching the paper's c_t / r_t notation.
// Raw counts are kept as std::vector<uint64_t> and converted with
// `CountsToFrequencies`.
#ifndef LDPIDS_UTIL_HISTOGRAM_H_
#define LDPIDS_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ldpids {

using Histogram = std::vector<double>;
using Counts = std::vector<uint64_t>;

// Converts raw per-value counts into frequencies by dividing by `n`.
// `n` must be positive.
Histogram CountsToFrequencies(const Counts& counts, uint64_t n);

// Builds per-value counts from a list of values in [0, d).
Counts CountValues(const std::vector<uint32_t>& values, std::size_t d);

// (1/d) * sum_k (a[k] - b[k])^2 — the average per-bin squared L2 distance.
// This is the paper's distance used in dis* (Eq. 3) and err (Eq. 5).
double MeanSquaredDistance(const Histogram& a, const Histogram& b);

// sum_k |a[k] - b[k]| — the L1 distance between two histograms.
double L1Distance(const Histogram& a, const Histogram& b);

// sum_k a[k].
double Sum(const Histogram& h);

// mean_k a[k].
double Mean(const Histogram& h);

// Clamps each entry to [0, 1]. LDP estimators are unbiased but can leave the
// simplex; release post-processing may clamp (a standard DP post-processing
// step, privacy-free). Returns the clamped copy.
Histogram ClampToUnit(const Histogram& h);

// Normalizes a non-negative vector to sum to 1 (no-op on an all-zero input).
Histogram Normalize(const Histogram& h);

}  // namespace ldpids

#endif  // LDPIDS_UTIL_HISTOGRAM_H_
