// Exact division/modulo by a runtime-invariant u64 divisor.
//
// The OLH support scan evaluates HashToBucket — a 64-bit hash followed by
// `% g` — for every (report, value) pair, and the hardware 64-bit divide
// is the single most expensive instruction in that loop. A divisor that is
// fixed for the whole scan can be replaced by a multiply-and-shift with a
// precomputed magic number (Granlund & Montgomery, "Division by invariant
// integers using multiplication", PLDI '94; the scheme used by compilers
// for constant divisors and by libdivide for runtime ones).
//
// Exactness is the point, not just speed: HashToBucket's result feeds a
// deterministic protocol, so Div/Mod here must equal the machine `/` and
// `%` for EVERY uint64_t x, not approximately-for-most. The magic is
// chosen per Granlund–Montgomery so that either
//   q = (x * m) >> (64 + s)                      (round-up magic fits), or
//   q = ((x - hi) >> 1 + hi) >> s, hi = mulhi(x, m)   (add-and-halve fixup)
// is exact for all x; tests/simd_test.cc checks Div/Mod against `/` and
// `%` exhaustively over divisor ranges and adversarial x.
#ifndef LDPIDS_UTIL_FASTDIV_H_
#define LDPIDS_UTIL_FASTDIV_H_

#include <cstdint>

namespace ldpids {

class U64Divisor {
 public:
  // `d` must be >= 1.
  explicit U64Divisor(uint64_t d) : d_(d) {
    // floor(log2(d)).
    unsigned log2d = 63u - static_cast<unsigned>(__builtin_clzll(d));
    if ((d & (d - 1)) == 0) {
      // Power of two: a plain shift is exact.
      magic_ = 0;
      shift_ = log2d;
      add_ = false;
      return;
    }
    // proposed_m = floor(2^(64 + log2d) / d), exact via 128-bit arithmetic
    // (64 + log2d <= 126 here since d is not a power of two).
    const unsigned __int128 one = 1;
    unsigned __int128 num = one << (64 + log2d);
    uint64_t proposed_m = static_cast<uint64_t>(num / d);
    uint64_t rem = static_cast<uint64_t>(num % d);
    uint64_t e = d - rem;
    if (e < (uint64_t{1} << log2d)) {
      // The rounded-up magic 1 + proposed_m keeps q exact with a plain
      // mulhi-and-shift.
      magic_ = proposed_m + 1;
      shift_ = log2d;
      add_ = false;
    } else {
      // Magic would need 65 bits; use the doubled magic with the
      // add-and-halve fixup, which recovers the missing bit.
      uint64_t twice_rem = rem + rem;
      proposed_m += proposed_m;
      if (twice_rem >= d || twice_rem < rem) ++proposed_m;
      magic_ = proposed_m + 1;
      shift_ = log2d;
      add_ = true;
    }
  }

  uint64_t divisor() const { return d_; }

  // The raw recipe, for vectorized callers that replicate Div across SIMD
  // lanes (src/fo/fo_kernels.cc). magic() == 0 means d_ is a power of two
  // and Div is the plain shift; add_fixup() selects the add-and-halve path.
  uint64_t magic() const { return magic_; }
  unsigned shift() const { return shift_; }
  bool add_fixup() const { return add_; }

  // Exactly x / d_ for every x.
  uint64_t Div(uint64_t x) const {
    if (magic_ == 0) return x >> shift_;
    uint64_t hi = MulHi(x, magic_);
    if (add_) {
      uint64_t t = ((x - hi) >> 1) + hi;
      return t >> shift_;
    }
    return hi >> shift_;
  }

  // Exactly x % d_ for every x.
  uint64_t Mod(uint64_t x) const { return x - Div(x) * d_; }

  static uint64_t MulHi(uint64_t a, uint64_t b) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(a) * b) >> 64);
  }

 private:
  uint64_t d_;
  uint64_t magic_;
  unsigned shift_;
  bool add_;
};

}  // namespace ldpids

#endif  // LDPIDS_UTIL_FASTDIV_H_
