#include "util/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace ldpids {

double SampleGaussian(Rng& rng) {
  // Marsaglia polar method. Acceptance probability pi/4 ~ 0.785.
  while (true) {
    const double u = 2.0 * rng.NextDouble() - 1.0;
    const double v = 2.0 * rng.NextDouble() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double SampleGaussian(Rng& rng, double mean, double stddev) {
  return mean + stddev * SampleGaussian(rng);
}

double SampleLaplace(Rng& rng, double scale) {
  // Inverse CDF: X = -scale * sign(u) * ln(1 - 2|u|), u ~ U(-1/2, 1/2).
  const double u = rng.NextDouble() - 0.5;
  const double magnitude = -scale * std::log(1.0 - 2.0 * std::fabs(u));
  return u < 0.0 ? -magnitude : magnitude;
}

namespace {

// glibc's lgamma writes the process-global `signgam`, which makes every
// concurrent binomial draw a data race (flagged by the CI TSan job) even
// though the returned value is fine. The reentrant form returns the same
// bits — thread-count invariance of all sampled streams is unaffected.
inline double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

// Sequential CDF inversion ("BINV"); expected cost O(n*p). Exact.
uint64_t BinomialInversion(Rng& rng, uint64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  // f(0) = q^n computed in log space to avoid underflow for large n.
  double f = std::exp(static_cast<double>(n) * std::log1p(-p));
  double u = rng.NextDouble();
  uint64_t k = 0;
  while (u > f) {
    u -= f;
    ++k;
    if (k > n) {
      // Numerically possible only through rounding in the tail; retry.
      f = std::exp(static_cast<double>(n) * std::log1p(-p));
      u = rng.NextDouble();
      k = 0;
      continue;
    }
    f *= s * static_cast<double>(n - k + 1) / static_cast<double>(k);
  }
  return k;
}

// BTRS transformed-rejection sampler (Hormann, "The generation of binomial
// random variates", 1993). Exact, O(1) expected time. Requires
// n * p >= 10 and p <= 0.5.
uint64_t BinomialBtrs(Rng& rng, uint64_t n, double p) {
  const double nd = static_cast<double>(n);
  const double np = nd * p;
  const double q = 1.0 - p;
  const double spq = std::sqrt(np * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = np + 0.5;
  const double vr = 0.92 - 4.2 / b;
  const double urvr = 0.86 * vr;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double lpq = std::log(p / q);
  const double m = std::floor((nd + 1.0) * p);
  const double h = LogGamma(m + 1.0) + LogGamma(nd - m + 1.0);

  while (true) {
    double v = rng.NextDouble();
    double u;
    if (v <= urvr) {
      // Fast path: inside the "squeeze" region, accept immediately.
      u = v / vr - 0.43;
      const double us = 0.5 - std::fabs(u);
      return static_cast<uint64_t>(std::floor((2.0 * a / us + b) * u + c));
    }
    if (v >= vr) {
      u = rng.NextDouble() - 0.5;
    } else {
      u = v / vr - 0.93;
      u = (u < 0.0 ? -0.5 : 0.5) - u;
      v = rng.NextDouble() * vr;
    }
    const double us = 0.5 - std::fabs(u);
    if (us < 0.013 && v > us) continue;  // guard the extreme tails
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    const double logv = std::log(v * alpha / (a / (us * us) + b));
    const double bound =
        h - LogGamma(kd + 1.0) - LogGamma(nd - kd + 1.0) + (kd - m) * lpq;
    if (logv <= bound) return static_cast<uint64_t>(kd);
  }
}

}  // namespace

uint64_t SampleBinomial(Rng& rng, uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - SampleBinomial(rng, n, 1.0 - p);
  if (static_cast<double>(n) * p < 10.0) return BinomialInversion(rng, n, p);
  return BinomialBtrs(rng, n, p);
}

std::vector<uint64_t> SampleMultinomial(Rng& rng, uint64_t n,
                                        const std::vector<double>& weights) {
  std::vector<uint64_t> counts;
  SampleMultinomial(rng, n, weights, &counts);
  return counts;
}

void SampleMultinomial(Rng& rng, uint64_t n, const std::vector<double>& weights,
                       std::vector<uint64_t>* out) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("negative multinomial weight");
    total += w;
  }
  if (weights.empty() || total <= 0.0) {
    throw std::invalid_argument("multinomial weights must have positive sum");
  }
  out->assign(weights.size(), 0);
  std::vector<uint64_t>& counts = *out;
  uint64_t remaining = n;
  double weight_left = total;
  for (std::size_t k = 0; k + 1 < weights.size() && remaining > 0; ++k) {
    const double p =
        weight_left > 0.0 ? std::min(1.0, weights[k] / weight_left) : 0.0;
    counts[k] = SampleBinomial(rng, remaining, p);
    remaining -= counts[k];
    weight_left -= weights[k];
  }
  counts.back() = remaining;
}

namespace {

// Sequential exact hypergeometric draw: pull `draws` elements one at a time.
// O(draws); used when inversion would be slower.
uint64_t HypergeometricSequential(Rng& rng, uint64_t total, uint64_t marked,
                                  uint64_t draws) {
  uint64_t hits = 0;
  uint64_t remaining_total = total;
  uint64_t remaining_marked = marked;
  for (uint64_t i = 0; i < draws; ++i) {
    const double p = static_cast<double>(remaining_marked) /
                     static_cast<double>(remaining_total);
    if (rng.Bernoulli(p)) {
      ++hits;
      --remaining_marked;
    }
    --remaining_total;
    if (remaining_marked == 0) break;
    if (remaining_marked == remaining_total) {
      // All remaining elements are marked.
      hits += draws - i - 1;
      break;
    }
  }
  return hits;
}

// CDF inversion from k = 0; expected cost O(mean). Exact.
uint64_t HypergeometricInversion(Rng& rng, uint64_t total, uint64_t marked,
                                 uint64_t draws) {
  // log f(0) = log C(total-marked, draws) - log C(total, draws)
  //          = sum_{i=0}^{draws-1} log((total-marked-i) / (total-i)).
  double logf = 0.0;
  for (uint64_t i = 0; i < draws; ++i) {
    logf += std::log(static_cast<double>(total - marked - i)) -
            std::log(static_cast<double>(total - i));
  }
  double f = std::exp(logf);
  double u = rng.NextDouble();
  uint64_t k = 0;
  const uint64_t kmax = std::min(marked, draws);
  while (u > f) {
    u -= f;
    if (k >= kmax) {  // numeric tail guard; restart
      f = std::exp(logf);
      u = rng.NextDouble();
      k = 0;
      continue;
    }
    // f(k+1)/f(k) = (marked-k)(draws-k) / ((k+1)(total-marked-draws+k+1)).
    f *= static_cast<double>(marked - k) * static_cast<double>(draws - k) /
         (static_cast<double>(k + 1) *
          static_cast<double>(total - marked - draws + k + 1));
    ++k;
  }
  return k;
}

}  // namespace

uint64_t SampleHypergeometric(Rng& rng, uint64_t total, uint64_t marked,
                              uint64_t draws) {
  assert(marked <= total && draws <= total);
  if (draws == 0 || marked == 0) return 0;
  if (marked == total) return draws;
  if (draws == total) return marked;
  // Symmetry reductions: marked <-> draws leaves the law unchanged; taking
  // complements flips it. Pick the variant with the smallest expected value.
  if (marked > total - marked) {
    return draws - SampleHypergeometric(rng, total, total - marked, draws);
  }
  if (draws > total - draws) {
    return marked - SampleHypergeometric(rng, total, marked, total - draws);
  }
  const double mean = static_cast<double>(draws) *
                      static_cast<double>(marked) /
                      static_cast<double>(total);
  if (mean < 64.0) return HypergeometricInversion(rng, total, marked, draws);
  return HypergeometricSequential(rng, total, marked,
                                  std::min(draws, marked) == draws ? draws
                                                                   : draws);
}

std::vector<uint64_t> SampleMultiHypergeometric(
    Rng& rng, const std::vector<uint64_t>& category_counts, uint64_t draws) {
  uint64_t total = 0;
  for (uint64_t c : category_counts) total += c;
  if (draws > total) {
    throw std::invalid_argument("cannot draw more elements than exist");
  }
  std::vector<uint64_t> out(category_counts.size(), 0);
  uint64_t remaining_draws = draws;
  uint64_t remaining_total = total;
  for (std::size_t k = 0; k < category_counts.size(); ++k) {
    if (remaining_draws == 0) break;
    if (remaining_total == category_counts[k]) {
      out[k] = remaining_draws;
      remaining_draws = 0;
      break;
    }
    out[k] = SampleHypergeometric(rng, remaining_total, category_counts[k],
                                  remaining_draws);
    remaining_draws -= out[k];
    remaining_total -= category_counts[k];
  }
  return out;
}

std::vector<double> ZipfWeights(std::size_t d, double s) {
  std::vector<double> w(d);
  double total = 0.0;
  for (std::size_t k = 0; k < d; ++k) {
    w[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
    total += w[k];
  }
  for (double& x : w) x /= total;
  return w;
}

}  // namespace ldpids
